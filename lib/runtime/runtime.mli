(** Real parallel execution of fork-join programs on OCaml domains.

    Where {!Spr_sched.Sim} {e simulates} a Cilk-style work-stealing
    scheduler in virtual time, this module actually runs the program:
    each worker is a [Domain], deques hold stealable continuations
    (defunctionalized as resumption positions inside
    {!Spr_sched.Sim.frame} records, which this runtime shares with the
    simulator so the same instrumentation — notably
    {!Spr_hybrid.Sp_hybrid.hooks} — plugs into both), and a thread of
    cost [c] spins for [c] calibrated work units.

    Scheduling semantics are the same as the simulator's and the
    paper's: work-first (descend into the spawned child, leave the
    continuation), steal-from-top (the oldest continuation — the P-node
    highest in the victim's walk), and provably-good resume at failed
    syncs by the last returning child.

    Concurrency discipline: each worker owns its deque under a mutex;
    frame counters and park/resume transitions go through a runtime
    mutex; hook callbacks are invoked outside runtime locks (the hybrid
    maintainer serializes its own bookkeeping and keeps queries
    lock-free, as Section 4 prescribes).

    Unlike the simulator, free-running executions are {e not}
    deterministic — tests validate schedule-independent facts (SP
    relations against the a-posteriori reference, the 4s+1 trace law,
    work conservation).  Every lock acquisition and the steal/step loop
    are however routed through {!Spr_schedhook.Hook} yield points
    (workers register as controlled tasks [0 .. workers-1]), so with a
    schedule controller installed (see [Spr_schedtest]) a run becomes a
    deterministic, replayable function of the controller's decision
    sequence; without one the hooks are single-atomic-load no-ops. *)

type result = {
  steals : int;
  steal_attempts : int;
  threads_run : int;
  parks : int;  (** workers parked at a sync with children outstanding *)
  frames : int;
  elapsed_s : float;
}

val run :
  ?hooks:Spr_sched.Sim.hooks ->
  ?seed:int ->
  ?spin:int ->
  workers:int ->
  Spr_prog.Fj_program.t ->
  result
(** Execute the program on [workers] domains.  [spin] (default 200) is
    the number of busy-loop iterations per instruction of thread cost.
    Hook return values (virtual-time charges) are ignored; [~now] is
    passed as 0.
    @raise Invalid_argument if [workers < 1]. *)
