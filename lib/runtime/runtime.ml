open Spr_prog
open Spr_sched

type result = {
  steals : int;
  steal_attempts : int;
  threads_run : int;
  parks : int;
  frames : int;
  elapsed_s : float;
}

(* Scheduler accounting lives in process-wide domain-sharded counters:
   a bump is one plain store into the bumping domain's own cache line
   (no contended [Atomic.incr] on the steal path), and the totals are
   exact once the workers are joined.  [run] reads the counters before
   and after and reports the difference; [Spr_obs.Sharded.default]
   keeps the running process-wide totals for `spview stats` /
   Prometheus exposition. *)
let steals_c = Spr_obs.Sharded.counter Spr_obs.Sharded.default "runtime/steals"

let steal_attempts_c =
  Spr_obs.Sharded.counter Spr_obs.Sharded.default "runtime/steal_attempts"

let threads_run_c =
  Spr_obs.Sharded.counter Spr_obs.Sharded.default "runtime/threads_run"

let parks_c = Spr_obs.Sharded.counter Spr_obs.Sharded.default "runtime/parks"

type worker = {
  wid : int;
  deque : Sim.frame Spr_util.Deque.t;
  dlock : Mutex.t;
  rng : Spr_util.Rng.t;
  mutable current : Sim.frame option;
}

type state = {
  hooks : Sim.hooks;
  workers : worker array;
  (* Serializes frame-protocol transitions: join-counter updates and
     park/resume at syncs.  Deques have their own per-worker locks; the
     protocol lock is never taken while holding a deque lock (and vice
     versa), so there is no lock-order hazard. *)
  proto : Mutex.t;
  done_flag : bool Atomic.t;
  next_fid : int Atomic.t;
  spin : int;
}

let new_frame st proc parent =
  {
    Sim.fid = Atomic.fetch_and_add st.next_fid 1;
    proc;
    parent;
    block = 0;
    item = 0;
    outstanding = 0;
    stalled = false;
  }

(* Busy work standing in for a thread's [cost] instructions. *)
let burn st cost =
  let sink = ref 0 in
  for _ = 1 to cost * st.spin do
    incr sink
  done;
  ignore !sink

module Hook = Spr_schedhook.Hook

(* Named lock acquisitions are schedule-controller decision points;
   without a controller installed this is a plain Mutex.lock. *)
let with_lock ~name m f = Hook.locked ~layer:"runtime" ~name m f

(* A procedure finished. *)
let do_return st w (f : Sim.frame) =
  match f.Sim.parent with
  | None ->
      ignore (st.hooks.Sim.on_return ~wid:w.wid ~now:0 ~child:f ~parent:None ~inline:false);
      Atomic.set st.done_flag true;
      w.current <- None
  | Some p ->
      let popped = with_lock ~name:"dlock" w.dlock (fun () -> Spr_util.Deque.pop_bottom w.deque) in
      (* Steals remove older continuations first, so a non-empty bottom
         is necessarily our direct parent. *)
      (match popped with Some cont -> assert (cont == p) | None -> ());
      let inline = popped <> None in
      (* The instrumentation must see the return *before* the join
         counter drops: otherwise the parent could pass its sync (and
         the maintainer fold its P-bag into its S-bag) while this
         child's threads are still waiting to be filed as parallel. *)
      ignore (st.hooks.Sim.on_return ~wid:w.wid ~now:0 ~child:f ~parent:(Some p) ~inline);
      (* Lost-wakeup audit: parking never sleeps, so there is no wakeup
         to lose.  A parent parks by setting [stalled <- true] under
         [st.proto] (see [step]) and then simply drops the frame — its
         worker goes back to stealing.  Resumption is this ownership
         handoff: the last returning child, also under [st.proto],
         observes [stalled && outstanding = 0], clears [stalled], and
         takes the frame as its own [current].  Both the park decision
         ([outstanding > 0]?) and the resume decision are atomic under
         the same mutex, so the racy pattern "parent checks, child
         decrements, parent sleeps forever" cannot occur: either the
         parent sees [outstanding = 0] and never parks, or the child
         sees [stalled] and adopts the frame.  No condition variable,
         no missed signal.  The deterministic-scheduler regression test
         (test_schedtest.ml, "runtime no lost wakeup") sweeps seeds
         over fork-join programs; a lost wakeup would surface there as
         a Deadlock/Livelock outcome. *)
      let resume =
        with_lock ~name:"proto" st.proto (fun () ->
            p.Sim.outstanding <- p.Sim.outstanding - 1;
            if (not inline) && p.Sim.stalled && p.Sim.outstanding = 0 then begin
              p.Sim.stalled <- false;
              Some p
            end
            else popped)
      in
      w.current <- resume

(* One step of the frame the worker owns. *)
let step st w (f : Sim.frame) =
  let blocks = f.Sim.proc.Fj_program.blocks in
  if f.Sim.item >= Array.length blocks.(f.Sim.block) then begin
    (* At the sync closing the block. *)
    let parked =
      with_lock ~name:"proto" st.proto (fun () ->
          if f.Sim.outstanding > 0 then begin
            f.Sim.stalled <- true;
            true
          end
          else false)
    in
    if parked then begin
      Spr_obs.Sharded.incr parks_c;
      w.current <- None
    end
    else begin
      ignore (st.hooks.Sim.on_block_end ~wid:w.wid ~now:0 f);
      f.Sim.block <- f.Sim.block + 1;
      f.Sim.item <- 0;
      if f.Sim.block >= Array.length blocks then do_return st w f
    end
  end
  else begin
    match blocks.(f.Sim.block).(f.Sim.item) with
    | Fj_program.Run u ->
        f.Sim.item <- f.Sim.item + 1;
        ignore (st.hooks.Sim.on_thread ~wid:w.wid ~now:0 f u);
        Spr_obs.Sharded.incr threads_run_c;
        burn st u.Fj_program.cost
    | Fj_program.Spawn g ->
        f.Sim.item <- f.Sim.item + 1;
        with_lock ~name:"proto" st.proto (fun () -> f.Sim.outstanding <- f.Sim.outstanding + 1);
        let child = new_frame st g (Some f) in
        (* Register the child with the instrumentation *before* the
           continuation becomes stealable: a steal that splits the
           parent's trace must not affect which trace the child (the
           left subtree, U3) inherits. *)
        ignore (st.hooks.Sim.on_spawn ~wid:w.wid ~now:0 ~parent:f ~child);
        with_lock ~name:"dlock" w.dlock (fun () -> Spr_util.Deque.push_bottom w.deque f);
        w.current <- Some child
  end

let try_steal st w =
  let p = Array.length st.workers in
  if p > 1 then begin
    Spr_obs.Sharded.incr steal_attempts_c;
    let victim_id =
      let v = Spr_util.Rng.int w.rng (p - 1) in
      if v >= w.wid then v + 1 else v
    in
    let victim = st.workers.(victim_id) in
    (* The steal hook runs while the victim's deque is still locked:
       successive steals from one victim walk down its spine, and their
       trace splits must happen in that same (outer-to-inner) order —
       two thieves racing to split around nested P-nodes of one trace
       would otherwise interleave the global-tier insertions and corrupt
       the orderings.  (Lock order is always deque -> instrumentation;
       hooks never touch deques.) *)
    let got =
      with_lock ~name:"dlock" victim.dlock (fun () ->
          match Spr_util.Deque.pop_top victim.deque with
          | Some f ->
              Spr_obs.Sharded.incr steals_c;
              ignore (st.hooks.Sim.on_steal ~thief:w.wid ~victim:victim_id ~now:0 f);
              Some f
          | None -> None)
    in
    match got with
    | Some f -> w.current <- Some f
    | None ->
        (* The Spin hint lets a PCT controller rotate an empty-handed
           stealer to the bottom of the priority band, so busy-waiting
           cannot starve the worker that holds the work. *)
        Hook.yield ~hint:Hook.Spin ~layer:"runtime" ~name:"steal-miss" ();
        Domain.cpu_relax ()
  end
  else begin
    Hook.yield ~hint:Hook.Spin ~layer:"runtime" ~name:"steal-miss" ();
    Domain.cpu_relax ()
  end

let worker_loop st w =
  Hook.task_scope ~id:w.wid (fun () ->
      while not (Atomic.get st.done_flag) do
        Hook.yield ~layer:"runtime" ~name:"loop" ();
        match w.current with Some f -> step st w f | None -> try_steal st w
      done)

let run ?(hooks = Sim.no_hooks) ?(seed = 1) ?(spin = 200) ~workers program =
  if workers < 1 then invalid_arg "Runtime.run: need at least one worker";
  let rng = Spr_util.Rng.create seed in
  let st =
    {
      hooks;
      workers =
        Array.init workers (fun wid ->
            {
              wid;
              deque = Spr_util.Deque.create ();
              dlock = Mutex.create ();
              rng = Spr_util.Rng.split rng;
              current = None;
            });
      proto = Mutex.create ();
      done_flag = Atomic.make false;
      next_fid = Atomic.make 0;
      spin;
    }
  in
  let root = new_frame st (Fj_program.main program) None in
  st.workers.(0).current <- Some root;
  let steals0 = Spr_obs.Sharded.read steals_c in
  let attempts0 = Spr_obs.Sharded.read steal_attempts_c in
  let threads0 = Spr_obs.Sharded.read threads_run_c in
  let parks0 = Spr_obs.Sharded.read parks_c in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init (workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop st st.workers.(i + 1)))
  in
  worker_loop st st.workers.(0);
  Array.iter Domain.join domains;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* The workers are joined, so the sharded totals are exact. *)
  {
    steals = Spr_obs.Sharded.read steals_c - steals0;
    steal_attempts = Spr_obs.Sharded.read steal_attempts_c - attempts0;
    threads_run = Spr_obs.Sharded.read threads_run_c - threads0;
    parks = Spr_obs.Sharded.read parks_c - parks0;
    frames = Atomic.get st.next_fid;
    elapsed_s;
  }
