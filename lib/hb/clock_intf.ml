(** The common interface of the happens-before clock engines.

    A clock maps thread slots to logical times; the engine owns a
    buffer pool plus the two counters the EXP-HB crossover experiment
    is stated over:

    - [copied_words]: machine words written while snapshotting a clock
      (every fork copies the forker's knowledge);
    - [joined_words]: machine words examined while folding one clock
      into another (every join merges a finished branch back).

    The vector engine pays Θ(width) for both; the tree engine pays
    O(live) for copies and O(updated subtree) for joins — that gap is
    the entire point of carrying two implementations. *)

module type ENGINE = sig
  type t
  (** Pool + counters, shared by every clock it hands out. *)

  type clock

  val name : string

  val create : unit -> t

  val alloc : t -> clock
  (** An empty clock (pooled: may reuse a released buffer). *)

  val snapshot : t -> clock -> clock
  (** A pooled copy; bumps [copied_words]. *)

  val join : t -> into:clock -> clock -> unit
  (** Pointwise-max merge of the second clock into [into]; bumps
      [joined_words]. *)

  val release : t -> clock -> unit
  (** Return a clock to the pool.  The caller must not use it again. *)

  val tick : t -> clock -> int -> int
  (** [tick t c slot] advances [slot]'s component in [c] and returns
      the new value — the slot's epoch.  In the fork-join IR every
      thread executes exactly once, so each slot is ticked once and
      every epoch is 1; the engines still implement the general
      operation (futures will re-tick). *)

  val get : clock -> int -> int
  (** Component read; 0 for a slot the clock has never seen. *)

  val live_words : clock -> int
  (** Current label footprint in machine words (the Figure-3 "space
      per node" column analog). *)

  val copied_words : t -> int

  val joined_words : t -> int
end
