(* Tree clocks (Mathur, Pavlogiannis, Tunç, Viswanathan: "A Tree Clock
   Data Structure for Causal Orderings in Concurrent Executions").

   A clock is a rooted tree over thread slots stored in parallel int
   arrays indexed by slot: [clk] is the slot's component (0 = the slot
   is not in this clock), [aclk] is the attachment time — the parent's
   component when this child was attached — and [parent]/[child]/
   [next]/[prev] are the tree links, children kept in decreasing-aclk
   order (most recent first).

   The operation that separates this engine from a flat vector is
   [join]: merging a finished branch descends other's tree and stops
   at every node the target already knows — the aclk ordering proves
   that once a child's attachment time is no newer than the target's
   old component of the parent, that child and all its later siblings
   are already incorporated.  Joins therefore cost O(updated subtree)
   where a vector clock pays Θ(width); snapshots stay O(live nodes)
   like a vector's O(width) blit.

   Single-writer discipline: a slot's component may only be advanced
   by the one clock lineage that currently owns it as root — [tick]
   re-roots onto a fresh slot, and the only other advance is the
   target root's increment when a join attaches a new subtree.  The
   driving layers (Sp_clock, Stream_clock) maintain this by ticking a
   fresh strand slot whenever a snapshot is restored into a clock that
   will receive joins. *)

type clock = {
  mutable clk : int array;
  mutable aclk : int array;
  mutable parent : int array;
  mutable child : int array;  (* head of the child list, -1 = none *)
  mutable next : int array;  (* sibling links, decreasing aclk *)
  mutable prev : int array;
  mutable root : int;  (* -1 = empty clock *)
  mutable nlive : int;
  mutable hi : int;  (* 1 + max slot that may be live; indices past it
                        are untouched garbage.  Copies and joins size
                        the target by the source's [hi], never by its
                        capacity — sizing by capacity ratchets pooled
                        buffers' capacities exponentially (each grow
                        doubles, and the doubled capacity becomes the
                        next copy's request). *)
}

type t = {
  mutable pool : clock list;
  mutable copied_words : int;
  mutable joined_words : int;
  (* Shared traversal scratch (clear/copy walks, join work stack and
     per-node child collection), grown on demand. *)
  mutable stk : int array;
  mutable scratch : int array;
}

let name = "tree"

let create () =
  { pool = []; copied_words = 0; joined_words = 0; stk = Array.make 64 0; scratch = Array.make 64 0 }

let fresh_clock () =
  {
    clk = [||];
    aclk = [||];
    parent = [||];
    child = [||];
    next = [||];
    prev = [||];
    root = -1;
    nlive = 0;
    hi = 0;
  }

let cap c = Array.length c.clk

let ensure c n =
  if n > cap c then begin
    let m = max 16 (max n (2 * cap c)) in
    let grow a = Array.append a (Array.make (m - Array.length a) 0) in
    (* Entries past the live tree are garbage by contract ([clk] is
       only trusted for reachable slots after [get]'s bound check), so
       plain zero-fill growth is fine. *)
    c.clk <- grow c.clk;
    c.aclk <- grow c.aclk;
    c.parent <- grow c.parent;
    c.child <- grow c.child;
    c.next <- grow c.next;
    c.prev <- grow c.prev
  end

let get c slot = if slot < cap c then c.clk.(slot) else 0

let ensure_stk t n =
  if n > Array.length t.stk then begin
    let b = Array.make (max n (2 * Array.length t.stk)) 0 in
    Array.blit t.stk 0 b 0 (Array.length t.stk);
    t.stk <- b
  end

let ensure_scratch t n =
  if n > Array.length t.scratch then begin
    let b = Array.make (max n (2 * Array.length t.scratch)) 0 in
    Array.blit t.scratch 0 b 0 (Array.length t.scratch);
    t.scratch <- b
  end

(* Pre-order walk of [c]'s live tree calling [f] on every slot.  Uses
   the shared stack; callers must not re-enter. *)
let iter_live t c f =
  if c.root >= 0 then begin
    ensure_stk t (2 * c.nlive);
    let sp = ref 0 in
    t.stk.(0) <- c.root;
    incr sp;
    while !sp > 0 do
      decr sp;
      let u = t.stk.(!sp) in
      f u;
      let v = ref c.child.(u) in
      while !v >= 0 do
        ensure_stk t (!sp + 1);
        t.stk.(!sp) <- !v;
        incr sp;
        v := c.next.(!v)
      done
    done
  end

let clear t c =
  iter_live t c (fun u -> c.clk.(u) <- 0);
  c.root <- -1;
  c.nlive <- 0;
  c.hi <- 0

let alloc t =
  match t.pool with
  | c :: rest ->
      t.pool <- rest;
      clear t c;
      c
  | [] -> fresh_clock ()

let release t c = t.pool <- c :: t.pool

(* Deep structural copy: six words per live node.  [words] selects the
   counter — a snapshot bills [copied_words], an empty-target join
   bills [joined_words]. *)
let copy_into t ~join dst src =
  clear t dst;
  ensure dst src.hi;
  dst.hi <- src.hi;
  let n = ref 0 in
  iter_live t src (fun u ->
      dst.clk.(u) <- src.clk.(u);
      dst.aclk.(u) <- src.aclk.(u);
      dst.parent.(u) <- src.parent.(u);
      dst.child.(u) <- src.child.(u);
      dst.next.(u) <- src.next.(u);
      dst.prev.(u) <- src.prev.(u);
      incr n);
  dst.root <- src.root;
  dst.nlive <- src.nlive;
  if join then t.joined_words <- t.joined_words + (6 * !n)
  else t.copied_words <- t.copied_words + (6 * !n)

let snapshot t src =
  let dst = alloc t in
  copy_into t ~join:false dst src;
  dst

let tick _t c slot =
  ensure c (slot + 1);
  if slot + 1 > c.hi then c.hi <- slot + 1;
  if c.clk.(slot) <> 0 && c.root >= 0 then
    invalid_arg "Tree_clock.tick: slot already live (slots are single-tick)";
  c.aclk.(slot) <- 0;
  c.parent.(slot) <- (-1);
  c.child.(slot) <- (-1);
  c.next.(slot) <- (-1);
  c.prev.(slot) <- (-1);
  c.clk.(slot) <- 1;
  (if c.root >= 0 then begin
     (* O(1) re-root: the previous root becomes the sole head child of
        the fresh slot, attached at the new root's component. *)
     let r = c.root in
     c.child.(slot) <- r;
     c.parent.(r) <- slot;
     c.aclk.(r) <- 1;
     c.prev.(r) <- (-1);
     c.next.(r) <- (-1)
   end);
  c.root <- slot;
  c.nlive <- c.nlive + 1;
  1

let detach c v =
  let p = c.parent.(v) in
  if p >= 0 then begin
    (if c.prev.(v) >= 0 then c.next.(c.prev.(v)) <- c.next.(v) else c.child.(p) <- c.next.(v));
    if c.next.(v) >= 0 then c.prev.(c.next.(v)) <- c.prev.(v)
  end

let attach c v ~under =
  let h = c.child.(under) in
  c.next.(v) <- h;
  if h >= 0 then c.prev.(h) <- v;
  c.prev.(v) <- (-1);
  c.parent.(v) <- under;
  c.child.(under) <- v

(* Move [v]'s record in [self] to match [other]'s view, re-attaching it
   under [under].  [old] is [self]'s previous component of [v]. *)
let adopt self other v ~old ~under =
  if old > 0 then detach self v
  else begin
    self.child.(v) <- (-1);
    self.nlive <- self.nlive + 1
  end;
  self.clk.(v) <- other.clk.(v);
  self.aclk.(v) <- other.aclk.(v);
  attach self v ~under

let join t ~into:self other =
  if other.root < 0 then ()
  else if self.root < 0 then copy_into t ~join:true self other
  else begin
    let r = other.root in
    (* Containment fast path: knowing other's root at its final
       component means everything other knows arrived earlier. *)
    if get self r >= other.clk.(r) then ()
    else begin
      ensure self other.hi;
      if other.hi > self.hi then self.hi <- other.hi;
      let sp = ref 0 in
      ensure_stk t 2;
      let old_r = get self r in
      if r = self.root then
        (* Unreachable under the single-writer discipline (a clock
           joined into [self] finished before [self]'s root slot was
           ticked); kept total rather than asserted. *)
        self.clk.(r) <- other.clk.(r)
      else begin
        (* The join is a new event on the receiving root: advance its
           component so the attachment time orders this subtree after
           everything the root already had. *)
        self.clk.(self.root) <- self.clk.(self.root) + 1;
        (if old_r > 0 then detach self r
         else begin
           self.child.(r) <- (-1);
           self.nlive <- self.nlive + 1
         end);
        self.clk.(r) <- other.clk.(r);
        self.aclk.(r) <- self.clk.(self.root);
        attach self r ~under:self.root
      end;
      t.stk.(0) <- r;
      t.stk.(1) <- old_r;
      sp := 2;
      while !sp > 0 do
        let old_u = t.stk.(!sp - 1) in
        let u = t.stk.(!sp - 2) in
        sp := !sp - 2;
        t.joined_words <- t.joined_words + 2;
        (* Collect the children of [u] in [other] that carry news,
           stopping at the first sibling attached no later than
           [self]'s old component of [u]: it and everything after it
           (children are in decreasing-aclk order) was already merged
           when [self] learned (u, old_u). *)
        let nc = ref 0 in
        let v = ref other.child.(u) in
        let continue = ref true in
        while !continue && !v >= 0 do
          if other.aclk.(!v) <= old_u then continue := false
          else begin
            t.joined_words <- t.joined_words + 2;
            let ov = get self !v in
            if other.clk.(!v) > ov then begin
              ensure_scratch t (2 * (!nc + 1));
              t.scratch.(2 * !nc) <- !v;
              t.scratch.((2 * !nc) + 1) <- ov;
              incr nc
            end;
            v := other.next.(!v)
          end
        done;
        (* Attach in reverse collection order so the head of [u]'s
           list keeps the highest attachment time. *)
        for i = !nc - 1 downto 0 do
          let v = t.scratch.(2 * i) in
          let ov = t.scratch.((2 * i) + 1) in
          adopt self other v ~old:ov ~under:u;
          ensure_stk t (!sp + 2);
          t.stk.(!sp) <- v;
          t.stk.(!sp + 1) <- ov;
          sp := !sp + 2
        done
      done
    end
  end

(* Six words per live node in this representation: component,
   attachment time and four tree links. *)
let live_words c = 6 * c.nlive

let copied_words t = t.copied_words

let joined_words t = t.joined_words

(* Self-check instrumentation: with SPR_TC_DEBUG set in the
   environment, every mutating operation re-validates the full tree
   invariant (single root, consistent parent/sibling links, positive
   components, nlive exact).  Off by default — the only steady-state
   cost is one branch per operation. *)
let debug = Sys.getenv_opt "SPR_TC_DEBUG" <> None

let validate name c =
  if c.root >= 0 then begin
    let seen = Hashtbl.create 64 in
    let bound = (4 * c.nlive) + 8 in
    let count = ref 0 in
    let stack = ref [ c.root ] in
    let fail fmt = Printf.ksprintf failwith fmt in
    let rec loop () =
      match !stack with
      | [] -> ()
      | u :: rest ->
          stack := rest;
          incr count;
          if !count > bound then fail "%s: walk exceeded %d (nlive %d)" name bound c.nlive;
          if Hashtbl.mem seen u then fail "%s: node %d reached twice" name u;
          Hashtbl.add seen u ();
          if c.clk.(u) = 0 then fail "%s: live node %d has clk 0" name u;
          let v = ref c.child.(u) in
          let sib = ref 0 in
          while !v >= 0 do
            incr sib;
            if !sib > bound then fail "%s: sibling cycle under %d" name u;
            if c.parent.(!v) <> u then fail "%s: node %d parent link wrong" name !v;
            stack := !v :: !stack;
            v := c.next.(!v)
          done;
          loop ()
    in
    loop ();
    if !count <> c.nlive then fail "%s: walk found %d nodes, nlive = %d" name !count c.nlive
  end

let tick t c slot =
  let e = tick t c slot in
  if debug then validate "tick" c;
  e

let snapshot t src =
  let dst = snapshot t src in
  if debug then validate "snapshot" dst;
  dst

let join t ~into other =
  join t ~into other;
  if debug then validate "join" into
