(** Vector clocks over (array, valid-length) buffers: Θ(width)
    snapshot and join, O(1) epoch queries.  See {!Clock_intf.ENGINE}
    for the operation contracts. *)

include Clock_intf.ENGINE
