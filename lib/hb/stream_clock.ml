(* Clock oracles over the `.spr-trace` frame stream.

   The ingest server normally maintains SP relationships by unfolding
   the SP parse tree it reconstructs from frames; the clock oracles
   skip the tree entirely and track happens-before directly on the
   fork-join frame structure:

   - SPAWN   saves a snapshot of the active clock (the continuation's
             view) and lets the child run on the active clock;
   - RETURN  folds the child's leftover pending joins into its final
             clock, accumulates that final into the parent's pending
             set, and restores the continuation snapshot;
   - SYNC    joins the accumulated pending clocks of the current proc
             into the active clock (Cilk semantics: sync joins every
             spawn of the preceding block);
   - THREAD  ticks a fresh slot for the executing thread and records
             its epoch.

   Verdict equivalence with the SP-tree path is checked byte-for-byte
   by the cram tests and the differential fuzzer.

   Strand discipline: whenever a snapshot is restored (or a program /
   child strand begins), a fresh anonymous slot is ticked before the
   clock can receive joins.  The tree engine needs this for its
   single-writer invariant (only the lineage owning a slot as root may
   advance it); the vector engine tolerates the extra slots at a small
   constant width factor, so both engines share the discipline and the
   vector width is O(strands) = O(threads + spawns). *)

type t = {
  name : string;
  reset : unit -> unit;
  spawn : unit -> unit;
  return_ : unit -> unit;
  sync : unit -> unit;
  thread : int -> unit;
  precedes : executed:int -> current:int -> bool;
  words : unit -> int * int;  (* copied, joined — cumulative *)
}

module Make (E : Clock_intf.ENGINE) = struct
  type state = {
    eng : E.t;
    mutable cur : E.clock;
    mutable depth : int;
    mutable snaps : E.clock option array;  (* by parent depth *)
    mutable pending : E.clock option array;  (* by proc depth *)
    mutable slot_of : int array;  (* tid -> slot, -1 *)
    mutable epoch_of : int array;
    mutable next_slot : int;
    mutable max_tid : int;
  }

  let grow_depth s d =
    if d >= Array.length s.snaps then begin
      let n = max 16 (max (d + 1) (2 * Array.length s.snaps)) in
      let g a = Array.append a (Array.make (n - Array.length a) None) in
      s.snaps <- g s.snaps;
      s.pending <- g s.pending
    end

  let grow_tid s tid =
    if tid >= Array.length s.slot_of then begin
      let n = max 16 (max (tid + 1) (2 * Array.length s.slot_of)) in
      let g a = Array.append a (Array.make (n - Array.length a) (-1)) in
      s.slot_of <- g s.slot_of;
      s.epoch_of <- g s.epoch_of
    end

  let fresh_slot s =
    let slot = s.next_slot in
    s.next_slot <- slot + 1;
    slot

  let strand_tick s = ignore (E.tick s.eng s.cur (fresh_slot s))

  let release_opt s a i =
    match a.(i) with
    | Some c ->
        E.release s.eng c;
        a.(i) <- None
    | None -> ()

  let reset s =
    E.release s.eng s.cur;
    for i = 0 to Array.length s.snaps - 1 do
      release_opt s s.snaps i;
      release_opt s s.pending i
    done;
    if s.max_tid >= 0 then Array.fill s.slot_of 0 (min (Array.length s.slot_of) (s.max_tid + 1)) (-1);
    s.max_tid <- (-1);
    s.next_slot <- 0;
    s.depth <- 0;
    s.cur <- E.alloc s.eng;
    strand_tick s

  let spawn s =
    grow_depth s (s.depth + 1);
    s.snaps.(s.depth) <- Some (E.snapshot s.eng s.cur);
    s.depth <- s.depth + 1;
    (* A proc's pending set is consumed by its RETURN, so the slot at
       the child's depth is necessarily free here. *)
    strand_tick s

  let sync s =
    match s.pending.(s.depth) with
    | None -> ()
    | Some p ->
        E.join s.eng ~into:s.cur p;
        E.release s.eng p;
        s.pending.(s.depth) <- None

  let return_ s =
    if s.depth = 0 then invalid_arg "Stream_clock: RETURN at depth 0";
    (* Implicit sync at proc end: unsynced grandchildren flow into the
       child's final clock and become joinable at the parent's next
       SYNC — matching the SP tree, where the parent's sync is serial-
       after the child's whole subtree. *)
    sync s;
    let final = s.cur in
    s.depth <- s.depth - 1;
    (match s.pending.(s.depth) with
    | None -> s.pending.(s.depth) <- Some final  (* steal the buffer *)
    | Some p ->
        E.join s.eng ~into:p final;
        E.release s.eng final);
    (match s.snaps.(s.depth) with
    | Some snap ->
        s.snaps.(s.depth) <- None;
        s.cur <- snap
    | None -> invalid_arg "Stream_clock: RETURN without matching SPAWN");
    strand_tick s

  let thread s tid =
    grow_tid s tid;
    if tid > s.max_tid then s.max_tid <- tid;
    let slot = fresh_slot s in
    s.slot_of.(tid) <- slot;
    s.epoch_of.(tid) <- E.tick s.eng s.cur slot

  let precedes s ~executed ~current =
    if executed = current then true
    else begin
      let slot = if executed < Array.length s.slot_of then s.slot_of.(executed) else -1 in
      if slot < 0 then invalid_arg "Stream_clock.precedes: unknown executed tid";
      E.get s.cur slot >= s.epoch_of.(executed)
    end

  let make () =
    let eng = E.create () in
    let s =
      {
        eng;
        cur = E.alloc eng;
        depth = 0;
        snaps = Array.make 16 None;
        pending = Array.make 16 None;
        slot_of = Array.make 64 (-1);
        epoch_of = Array.make 64 0;
        next_slot = 0;
        max_tid = -1;
      }
    in
    strand_tick s;
    {
      name = "hb-" ^ E.name;
      reset = (fun () -> reset s);
      spawn = (fun () -> spawn s);
      return_ = (fun () -> return_ s);
      sync = (fun () -> sync s);
      thread = (fun tid -> thread s tid);
      precedes = (fun ~executed ~current -> precedes s ~executed ~current);
      words = (fun () -> (E.copied_words eng, E.joined_words eng));
    }
end

module V = Make (Vec_clock)
module T = Make (Tree_clock)

let vector () = V.make ()

let tree () = T.make ()
