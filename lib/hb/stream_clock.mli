(** Happens-before clock oracles over the `.spr-trace` frame stream.

    An oracle tracks the active clock across SPAWN / RETURN / SYNC /
    THREAD frames and answers tid-level precedence, so the ingest
    server can swap it in for the SP-tree maintainer; verdicts must
    stay byte-comparable.  One value per program run is cheap — the
    closures allocate once, the clocks pool. *)

type t = {
  name : string;
  reset : unit -> unit;  (** rewind for the next program *)
  spawn : unit -> unit;
  return_ : unit -> unit;
  sync : unit -> unit;
  thread : int -> unit;  (** the given tid executes next *)
  precedes : executed:int -> current:int -> bool;
      (** Must only be asked while [current] is the executing tid. *)
  words : unit -> int * int;  (** (copied, joined) words, cumulative *)
}

val vector : unit -> t

val tree : unit -> t
