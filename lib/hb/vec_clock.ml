(* Plain vector clocks: one int per thread slot, stored as (array,
   valid length) so a pooled buffer never pays Θ(capacity) zeroing on
   reuse — entries at indices >= [len] are garbage, reads treat them
   as 0 and every extension of [len] zeroes exactly the gap it opens.

   Fork = snapshot (blit of [len] words), join = pointwise max over
   the source's [len] words: both Θ(width), which is the cost the
   EXP-HB crossover measures against the tree engine and against
   SP-order's O(1)-per-query labels. *)

type clock = { mutable a : int array; mutable len : int }

type t = {
  mutable pool : clock list;
  mutable copied_words : int;
  mutable joined_words : int;
}

let name = "vector"

let create () = { pool = []; copied_words = 0; joined_words = 0 }

let alloc t =
  match t.pool with
  | c :: rest ->
      t.pool <- rest;
      c.len <- 0;
      c
  | [] -> { a = [||]; len = 0 }

let release t c = t.pool <- c :: t.pool

let ensure c n =
  if n > Array.length c.a then begin
    let cap = max 16 (max n (2 * Array.length c.a)) in
    let b = Array.make cap 0 in
    Array.blit c.a 0 b 0 c.len;
    c.a <- b
  end

(* Widen the valid prefix to [n] slots, zeroing the newly valid gap. *)
let extend c n =
  if n > c.len then begin
    ensure c n;
    Array.fill c.a c.len (n - c.len) 0;
    c.len <- n
  end

let get c slot = if slot < c.len then c.a.(slot) else 0

let tick _t c slot =
  extend c (slot + 1);
  let e = c.a.(slot) + 1 in
  c.a.(slot) <- e;
  e

let snapshot t src =
  let dst = alloc t in
  ensure dst src.len;
  Array.blit src.a 0 dst.a 0 src.len;
  dst.len <- src.len;
  t.copied_words <- t.copied_words + src.len;
  dst

let join t ~into src =
  extend into src.len;
  for i = 0 to src.len - 1 do
    let v = src.a.(i) in
    if v > into.a.(i) then into.a.(i) <- v
  done;
  t.joined_words <- t.joined_words + src.len

let live_words c = c.len

let copied_words t = t.copied_words

let joined_words t = t.joined_words
