(* Happens-before maintainers over the clock engines.

   [Make] turns a {!Clock_intf.ENGINE} into a serial SP-maintenance
   algorithm (structurally matching [Spr_core.Sp_maintainer.S] — this
   library sits below [spr_core], so the signature cannot be named
   here).  The walk keeps exactly one active clock:

   - [Enter] of a P-node snapshots the active clock (the fork copies
     the forker's knowledge to the spawned branch);
   - [Mid] of a P-node swaps the finished left branch's clock with the
     stored snapshot, so the right branch starts from the fork point;
   - [Exit] of a P-node joins the left branch's final clock back in
     (the join synchronizes both branches into the continuation);
   - S-nodes are free: serial composition just keeps executing on the
     same clock.

   Threads tick a fresh slot each (every leaf executes exactly once in
   this IR, so epochs are all 1 and queries degenerate to presence
   checks — the engines implement general epochs anyway, for the
   futures extension).  [precedes x y] with [y] the currently
   executing thread is then one [get]: x's slot is in the active clock
   iff x happened before the current thread.

   The walk is LIFO over P-nodes, so a single clock stack suffices and
   every snapshot is consumed exactly once — clocks pool cleanly. *)

module Sp_tree = Spr_sptree.Sp_tree

module Make (E : Clock_intf.ENGINE) = struct
  type t = {
    eng : E.t;
    mutable cur : E.clock;
    stack : E.clock Spr_util.Vec.t;
    slot_of : int array;  (* leaf id -> clock slot, -1 until executed *)
    epoch_of : int array;
    mutable next_slot : int;
    mutable threads : int;
    mutable sum_words : int;
    (* Planted faults for the differential oracle (see {!Faulty} in
       lib/check): skip the Exit join, or keep the left branch's clock
       across Mid instead of restoring the fork-point snapshot. *)
    no_join : bool;
    no_restore : bool;
  }

  let name = "hb-" ^ E.name

  let make ~no_join ~no_restore tree =
    let n = Sp_tree.node_count tree in
    let eng = E.create () in
    {
      eng;
      cur = E.alloc eng;
      stack = Spr_util.Vec.create ();
      slot_of = Array.make (max 1 n) (-1);
      epoch_of = Array.make (max 1 n) 0;
      next_slot = 0;
      threads = 0;
      sum_words = 0;
      no_join;
      no_restore;
    }

  let create tree = make ~no_join:false ~no_restore:false tree

  let unbalanced () = invalid_arg (name ^ ": unbalanced P-node events")

  let on_event t (ev : Sp_tree.event) =
    match ev with
    | Enter x ->
        (match Sp_tree.kind x with
        | Series -> ()
        | Parallel -> Spr_util.Vec.push t.stack (E.snapshot t.eng t.cur))
    | Mid x ->
        (match Sp_tree.kind x with
        | Series -> ()
        | Parallel ->
            if not t.no_restore then begin
              match Spr_util.Vec.pop t.stack with
              | Some snap ->
                  Spr_util.Vec.push t.stack t.cur;
                  t.cur <- snap
              | None -> unbalanced ()
            end)
    | Exit x ->
        (match Sp_tree.kind x with
        | Series -> ()
        | Parallel -> (
            match Spr_util.Vec.pop t.stack with
            | Some left ->
                if not t.no_join then E.join t.eng ~into:t.cur left;
                E.release t.eng left
            | None -> unbalanced ()))
    | Thread u ->
        let slot = t.next_slot in
        t.next_slot <- slot + 1;
        let e = E.tick t.eng t.cur slot in
        t.slot_of.(u.Sp_tree.id) <- slot;
        t.epoch_of.(u.Sp_tree.id) <- e;
        t.threads <- t.threads + 1;
        t.sum_words <- t.sum_words + E.live_words t.cur

  let precedes t (x : Sp_tree.node) (y : Sp_tree.node) =
    (not (x == y))
    &&
    let sx = t.slot_of.(x.Sp_tree.id) in
    if sx < 0 then invalid_arg (name ^ ".precedes: operand has not executed");
    E.get t.cur sx >= t.epoch_of.(x.Sp_tree.id)

  let parallel t x y = (not (x == y)) && not (precedes t x y)

  let requires_current_operand = true

  let leaves_only = true

  (* Mean active-clock footprint observed at thread execution — the
     Figure-3 "space per node" analog for clock detectors. *)
  let avg_label_words t =
    if t.threads = 0 then 0.0 else float_of_int t.sum_words /. float_of_int t.threads

  (* Counter taps for the EXP-HB bench (not part of the maintainer
     signature; reached by calling the functor output directly). *)
  let copied_words t = E.copied_words t.eng

  let joined_words t = E.joined_words t.eng
end

module Vector = Make (Vec_clock)
module Tree = Make (Tree_clock)

(* Deliberately broken variants, one per engine, for proving the
   three-way differential oracle actually discriminates (see ISSUE-10
   satellite 3).  [No_join] forgets the Exit join: threads after a
   join look parallel to the joined branch — false positives on
   race-free programs.  [No_restore] leaks the left branch's clock
   into the right branch: siblings look ordered — false negatives on
   planted races. *)
module Vector_no_join = struct
  include Vector

  let name = "hb-vector-nojoin"

  let create tree = make ~no_join:true ~no_restore:false tree
end

module Tree_no_restore = struct
  include Tree

  let name = "hb-tree-norestore"

  let create tree = make ~no_join:false ~no_restore:true tree
end
