(** Tree clocks (Mathur–Pavlogiannis–Tunç–Viswanathan): direct-tree
    clock representation whose join examines only the updated subtree
    plus its pruning boundary, instead of a vector's Θ(width) sweep.
    See {!Clock_intf.ENGINE} for the operation contracts and the .ml
    header for the single-writer discipline callers must keep. *)

include Clock_intf.ENGINE
