(* Post-mortem flight recorder.

   An always-on, fixed-size, per-lane ring of recent trace events kept
   in plain int arrays: recording is cheap enough to leave armed for a
   whole fuzzing campaign, and when a failing execution is found the
   rings (plus a final metrics snapshot) are dumped to a compact
   binary [.spr-flight] file so the shrunk repro ships with the
   telemetry that led up to it.

   A lane is a single-writer ring: the harness maps each worker id to
   its own lane, so an emit is seven plain int stores and a counter
   bump — no synchronization, no allocation, and (single writer) no
   torn events.  Each slot is [stride] = 8 words, one cache line, so
   writers on different lanes never share a line.  Readers are
   expected to run after the writers quiesce (post-mortem, as the name
   says).

   Event payloads are ints; structure names are interned into a small
   copy-on-append table so the hot path stores an id.  The on-disk
   format is deterministic: magic, varint-coded header + events
   (oldest first per lane), then the optional canonical-JSON metrics
   snapshot.  Identical runs produce byte-identical dumps, which the
   cram tests pin. *)

let stride = 8

type lane = { buf : int array; mutable count : int (* total ever emitted *) }

type t = {
  lanes : lane array;
  cap : int; (* events per lane *)
  mutable names : string array; (* intern table: immutable, copy-on-append *)
  names_lock : Mutex.t;
}

let create ?(lanes = 1) ?(capacity = 512) () =
  let lanes = max 1 lanes and cap = max 1 capacity in
  {
    lanes = Array.init lanes (fun _ -> { buf = Array.make (cap * stride) 0; count = 0 });
    cap;
    names = [||];
    names_lock = Mutex.create ();
  }

let lanes t = Array.length t.lanes

let capacity t = t.cap

(* --- Interning --------------------------------------------------- *)

(* Iterative scan: the emit path calls this per event, so it must not
   allocate (a local recursive function would box its closure). *)
let find_name arr s =
  let n = Array.length arr in
  let i = ref 0 in
  let found = ref (-1) in
  while !found < 0 && !i < n do
    if String.equal arr.(!i) s then found := !i;
    incr i
  done;
  !found

let intern t s =
  let i = find_name t.names s in
  if i >= 0 then i
  else begin
    Mutex.lock t.names_lock;
    let arr = t.names in
    let i = find_name arr s in
    let i =
      if i >= 0 then i
      else begin
        let n = Array.length arr in
        let bigger = Array.make (n + 1) s in
        Array.blit arr 0 bigger 0 n;
        t.names <- bigger;
        n
      end
    in
    Mutex.unlock t.names_lock;
    i
  end

let name t i = if i >= 0 && i < Array.length t.names then t.names.(i) else "?"

(* --- Emit -------------------------------------------------------- *)

(* Tag values are part of the on-disk format; never renumber. *)
let tag_spawn = 1
let tag_sync = 2
let tag_steal = 3
let tag_return = 4
let tag_thread_run = 5
let tag_trace_split = 6
let tag_lock_span = 7
let tag_om_insert = 8
let tag_om_relabel = 9
let tag_om_bucket_split = 10
let tag_race_query = 11

let emit_raw t ~lane ~ts ~wid ~tag ~a ~b ~c ~d ~e =
  let l = t.lanes.(lane mod Array.length t.lanes) in
  let i = l.count mod t.cap * stride in
  let buf = l.buf in
  buf.(i) <- tag;
  buf.(i + 1) <- ts;
  buf.(i + 2) <- wid;
  buf.(i + 3) <- a;
  buf.(i + 4) <- b;
  buf.(i + 5) <- c;
  buf.(i + 6) <- d;
  buf.(i + 7) <- e;
  l.count <- l.count + 1

let emit t ~lane ~ts ~wid (kind : Trace.kind) =
  let tag, a, b, c, d, e =
    match kind with
    | Trace.Spawn { parent; child } -> (tag_spawn, parent, child, 0, 0, 0)
    | Trace.Sync { frame } -> (tag_sync, frame, 0, 0, 0, 0)
    | Trace.Steal { thief; victim; frame } -> (tag_steal, thief, victim, frame, 0, 0)
    | Trace.Return { frame; inline } ->
        (tag_return, frame, (if inline then 1 else 0), 0, 0, 0)
    | Trace.Thread_run { tid; cost } -> (tag_thread_run, tid, cost, 0, 0, 0)
    | Trace.Trace_split { victim_trace; u1; u2; u4; u5 } ->
        (tag_trace_split, victim_trace, u1, u2, u4, u5)
    | Trace.Lock_span { wait; hold } -> (tag_lock_span, wait, hold, 0, 0, 0)
    | Trace.Om_insert { om } -> (tag_om_insert, intern t om, 0, 0, 0, 0)
    | Trace.Om_relabel { om; moved } -> (tag_om_relabel, intern t om, moved, 0, 0, 0)
    | Trace.Om_bucket_split { om } -> (tag_om_bucket_split, intern t om, 0, 0, 0, 0)
    | Trace.Race_query { tid; queries } -> (tag_race_query, tid, queries, 0, 0, 0)
  in
  emit_raw t ~lane ~ts ~wid ~tag ~a ~b ~c ~d ~e

(* --- Decode ------------------------------------------------------ *)

let decode_kind names tag a b c d e : Trace.kind =
  let nm i = if i >= 0 && i < Array.length names then names.(i) else "?" in
  if tag = tag_spawn then Trace.Spawn { parent = a; child = b }
  else if tag = tag_sync then Trace.Sync { frame = a }
  else if tag = tag_steal then Trace.Steal { thief = a; victim = b; frame = c }
  else if tag = tag_return then Trace.Return { frame = a; inline = b <> 0 }
  else if tag = tag_thread_run then Trace.Thread_run { tid = a; cost = b }
  else if tag = tag_trace_split then
    Trace.Trace_split { victim_trace = a; u1 = b; u2 = c; u4 = d; u5 = e }
  else if tag = tag_lock_span then Trace.Lock_span { wait = a; hold = b }
  else if tag = tag_om_insert then Trace.Om_insert { om = nm a }
  else if tag = tag_om_relabel then Trace.Om_relabel { om = nm a; moved = b }
  else if tag = tag_om_bucket_split then Trace.Om_bucket_split { om = nm a }
  else if tag = tag_race_query then Trace.Race_query { tid = a; queries = b }
  else failwith (Printf.sprintf "Flight: unknown event tag %d" tag)

let lane_length t lane = min t.lanes.(lane).count t.cap

let lane_dropped t lane = max 0 (t.lanes.(lane).count - t.cap)

(* Oldest first. *)
let lane_events t lane =
  let l = t.lanes.(lane) in
  let live = min l.count t.cap in
  let names = t.names in
  List.init live (fun k ->
      let seq = l.count - live + k in
      let i = seq mod t.cap * stride in
      let buf = l.buf in
      {
        Trace.ts = buf.(i + 1);
        wid = buf.(i + 2);
        kind =
          decode_kind names buf.(i) buf.(i + 3) buf.(i + 4) buf.(i + 5)
            buf.(i + 6) buf.(i + 7);
      })

let clear t =
  Array.iter
    (fun l ->
      l.count <- 0;
      Array.fill l.buf 0 (Array.length l.buf) 0)
    t.lanes

(* --- On-disk format ---------------------------------------------- *)

let magic = "SPRFLIGHT1\n"

(* The LEB128 primitive lives in Spr_util.Varint (shared with the
   trace-ingestion codec); the dump format is unchanged byte for
   byte.  Truncation is rewrapped to keep this module's historical
   diagnostic. *)
let put_varint = Spr_util.Varint.put

let get_varint s pos =
  try Spr_util.Varint.get s pos
  with Spr_util.Varint.Truncated -> failwith "Flight: truncated varint"

let to_bytes ?snapshot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  put_varint buf 1 (* version *);
  put_varint buf (Array.length t.lanes);
  put_varint buf t.cap;
  put_varint buf (Array.length t.names);
  Array.iter
    (fun s ->
      put_varint buf (String.length s);
      Buffer.add_string buf s)
    t.names;
  Array.iteri
    (fun li l ->
      put_varint buf l.count;
      let live = min l.count t.cap in
      for k = 0 to live - 1 do
        let seq = l.count - live + k in
        let i = seq mod t.cap * stride in
        for j = 0 to stride - 1 do
          put_varint buf l.buf.(i + j)
        done
      done;
      ignore li)
    t.lanes;
  (match snapshot with
  | None -> Buffer.add_char buf '\000'
  | Some json ->
      Buffer.add_char buf '\001';
      let s = Json.to_string json in
      put_varint buf (String.length s);
      Buffer.add_string buf s);
  Buffer.contents buf

let write_file ?snapshot t path =
  let oc = open_out_bin path in
  output_string oc (to_bytes ?snapshot t);
  close_out oc

type dump = {
  d_capacity : int;
  d_names : string array;
  d_counts : int array; (* total emitted per lane *)
  d_events : Trace.event list array; (* per lane, oldest first *)
  d_snapshot : Json.t option;
}

let of_bytes s =
  let mlen = String.length magic in
  if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic)
  then failwith "Flight: bad magic (not a .spr-flight file)";
  let pos = ref mlen in
  let version = get_varint s pos in
  if version <> 1 then failwith (Printf.sprintf "Flight: unknown version %d" version);
  let nlanes = get_varint s pos in
  let cap = get_varint s pos in
  let nnames = get_varint s pos in
  let names =
    Array.init nnames (fun _ ->
        let len = get_varint s pos in
        if !pos + len > String.length s then failwith "Flight: truncated name";
        let v = String.sub s !pos len in
        pos := !pos + len;
        v)
  in
  let counts = Array.make nlanes 0 in
  let events =
    Array.init nlanes (fun li ->
        let count = get_varint s pos in
        counts.(li) <- count;
        let live = min count cap in
        List.init live (fun _ ->
            let w = Array.init stride (fun _ -> get_varint s pos) in
            {
              Trace.ts = w.(1);
              wid = w.(2);
              kind = decode_kind names w.(0) w.(3) w.(4) w.(5) w.(6) w.(7);
            }))
  in
  let snap =
    if !pos >= String.length s then failwith "Flight: truncated snapshot flag"
    else begin
      let flag = Char.code s.[!pos] in
      incr pos;
      if flag = 0 then None
      else begin
        let len = get_varint s pos in
        if !pos + len > String.length s then failwith "Flight: truncated snapshot";
        let j = String.sub s !pos len in
        pos := !pos + len;
        match Json.of_string j with
        | Ok v -> Some v
        | Error e -> failwith ("Flight: bad snapshot JSON: " ^ e)
      end
    end
  in
  { d_capacity = cap; d_names = names; d_counts = counts; d_events = events; d_snapshot = snap }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_bytes s

let kind_label (k : Trace.kind) =
  match k with
  | Trace.Spawn _ -> "spawn"
  | Trace.Sync _ -> "sync"
  | Trace.Steal _ -> "steal"
  | Trace.Return _ -> "return"
  | Trace.Thread_run _ -> "thread_run"
  | Trace.Trace_split _ -> "trace_split"
  | Trace.Lock_span _ -> "lock_span"
  | Trace.Om_insert _ -> "om_insert"
  | Trace.Om_relabel _ -> "om_relabel"
  | Trace.Om_bucket_split _ -> "om_bucket_split"
  | Trace.Race_query _ -> "race_query"

let pp_dump ppf d =
  Format.fprintf ppf "flight recorder: %d lane%s, capacity %d@."
    (Array.length d.d_events)
    (if Array.length d.d_events = 1 then "" else "s")
    d.d_capacity;
  Array.iteri
    (fun li evs ->
      let dropped = max 0 (d.d_counts.(li) - d.d_capacity) in
      let tally = Hashtbl.create 8 in
      List.iter
        (fun (e : Trace.event) ->
          let k = kind_label e.kind in
          Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
        evs;
      let parts =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
      in
      Format.fprintf ppf "  lane %d: %d event%s, %d dropped%s@." li
        (List.length evs)
        (if List.length evs = 1 then "" else "s")
        dropped
        (if parts = [] then ""
         else
           " — "
           ^ String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) parts)))
    d.d_events
