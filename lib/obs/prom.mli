(** Prometheus text exposition (format 0.0.4) of {!Metrics}
    snapshots — the scrape-side face of the observability layer.

    Keys map to metric names as [prefix ^ "_" ^ key] with every
    non-[[a-zA-Z0-9_]] byte replaced by ['_'] (so ["om/inserts"]
    renders as [spr_om_inserts]).  Counters and gauges are single
    samples with a [# TYPE] line; log-scale histograms render as
    cumulative [le] buckets (inclusive upper bound [2^(i+1)-1] for
    bucket [i]) plus [_sum]/[_count].  Deterministic: follows the
    snapshot's sorted key order. *)

val sanitize : prefix:string -> string -> string

val render : ?prefix:string -> Metrics.snapshot -> string
(** Default [prefix] is ["spr"]. *)
