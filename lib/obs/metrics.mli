(** Typed, hierarchical metrics: counters, gauges and log-scale
    histograms keyed by ["subsystem/name"].

    Instruments are cheap mutable cells resolved once (by key) and then
    bumped with a single store, so instrumented hot paths pay no
    hashing.  A {!snapshot} freezes the registry into a sorted
    association list that can be {!diff}ed against an earlier one —
    the bench harness wraps each experiment this way.  Renders are
    deterministic: keys sort lexicographically. *)

type t
(** A registry. *)

val create : unit -> t

val default : t
(** The process-wide registry (CLIs and the bench harness record here
    when no explicit registry is given). *)

(** {1 Instruments} *)

type counter

type gauge

type histogram

val counter : t -> string -> counter
(** Find or register the counter at [key].
    @raise Invalid_argument if [key] names an instrument of another
    kind. *)

val gauge : t -> string -> gauge

val histogram : t -> string -> histogram

val add : counter -> int -> unit

val incr : counter -> unit

val set : gauge -> float -> unit

val observe : histogram -> int -> unit
(** Record one non-negative sample (negatives clamp to 0).  Buckets are
    powers of two: bucket [i] counts samples with [floor (lg v) = i]. *)

val quantile : histogram -> float -> float
(** Approximate q-th quantile from the log-scale buckets (each bucket
    answers with its midpoint, capped at the true maximum); 0 on an
    empty histogram.  Built on {!Spr_util.Stats.quantile_counts}. *)

(** {1 Snapshots} *)

type hist_data = { count : int; sum : int; max : int; buckets : int array }

type datum = C of int | G of float | H of hist_data

type snapshot = (string * datum) list
(** Sorted by key. *)

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: the activity window between two snapshots —
    counters and histogram counts subtract, gauges and histogram maxima
    keep the later value. *)

val reset : t -> unit
(** Zero every instrument (registrations are kept). *)

(** {1 Renderers} *)

val pp : Format.formatter -> t -> unit
(** Pretty, grouped by subsystem; histograms show n/mean/p50/p90/p99/max. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val to_json : t -> Json.t
(** Flat object keyed by full path: counters as numbers, gauges as
    floats, histograms as [{count, sum, max, p50, p90, p99}]. *)

val snapshot_to_json : snapshot -> Json.t
