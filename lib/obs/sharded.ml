(* Domain-sharded counters.

   The serial [Metrics] registry is a single set of mutable cells: one
   plain [int ref] per counter.  Bumping those cells from several
   OCaml 5 domains at once is a data race — increments are lost and,
   worse, every domain fights over the same cache line.  This module
   keeps the bump-path a single unsynchronized store while making
   cross-domain totals exact: each domain owns a private block of
   cells (one cache line per instrument, see [stride]) and a snapshot
   sums the per-domain blocks.

   Layout.  Instrument ids are allocated from one process-wide atomic
   counter so an id means the same slot in every domain's block.  A
   block is a plain [int array] indexed by [id * stride]; [stride] is
   8 words = 64 bytes, so two instruments never share a cache line and
   a bump never invalidates another domain's line (the array tag word
   puts cell 0 off the block's first line, which only matters for the
   neighbouring allocation — false sharing between instruments is what
   costs, and that is gone).

   Memory model.  A cell has exactly one writer (its owning domain);
   readers sum the cells with plain loads.  A concurrent read may miss
   the very latest bumps — that is inherent to any sharded counter —
   but no update is ever lost: after the writing domains have been
   joined (or any other happens-before edge), a snapshot is exact.
   Blocks are registered once under a mutex and kept alive after their
   domain dies, so totals survive domain termination.

   One global [Domain.DLS] key serves every registry: DLS keys are
   never reclaimed in OCaml 5.1, so a key per registry (of which the
   fuzzer makes thousands of short-lived ones) would leak.  Instrument
   names live in per-registry tables, ids in the one global space. *)

(* Cells per instrument: 8 words = 64 bytes = one cache line. *)
let stride = 8

type block = { mutable cells : int array }

let blocks_lock = Mutex.create ()

(* Every domain's block, living as long as the process so that counts
   from terminated domains keep contributing to totals. *)
let blocks : block list ref = ref []

let next_id = Atomic.make 0

let key : block Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { cells = Array.make (stride * 64) 0 } in
      Mutex.lock blocks_lock;
      blocks := b :: !blocks;
      Mutex.unlock blocks_lock;
      b)

type counter = int

(* Grow-on-demand, owner-only: copy the old cells, store the pending
   bump, then publish.  A concurrent reader sees either array; the old
   one merely lacks this bump, which plain-load readers may miss
   anyway. *)
let grow_and_add (b : block) (slot : int) (n : int) =
  let old = b.cells in
  let cap = max (2 * Array.length old) (slot + stride) in
  let bigger = Array.make cap 0 in
  Array.blit old 0 bigger 0 (Array.length old);
  bigger.(slot) <- bigger.(slot) + n;
  b.cells <- bigger

let add (c : counter) n =
  let b = Domain.DLS.get key in
  let slot = c * stride in
  let cells = b.cells in
  if slot < Array.length cells then cells.(slot) <- cells.(slot) + n
  else grow_and_add b slot n

let incr (c : counter) = add c 1

let read (c : counter) =
  let slot = c * stride in
  Mutex.lock blocks_lock;
  let bs = !blocks in
  Mutex.unlock blocks_lock;
  List.fold_left
    (fun acc b ->
      let cells = b.cells in
      if slot < Array.length cells then acc + cells.(slot) else acc)
    0 bs

(* Registries: a name -> id table.  Only naming is per-registry; the
   cells behind the ids are global (see the DLS note above). *)

type t = { mutable names : (string * counter) list; lock : Mutex.t }

let create () = { names = []; lock = Mutex.create () }

let default = create ()

let counter t name =
  Mutex.lock t.lock;
  let id =
    match List.assoc_opt name t.names with
    | Some id -> id
    | None ->
        let id = Atomic.fetch_and_add next_id 1 in
        t.names <- (name, id) :: t.names;
        id
  in
  Mutex.unlock t.lock;
  id

let snapshot t =
  Mutex.lock t.lock;
  let names = t.names in
  Mutex.unlock t.lock;
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun (name, id) -> (name, read id)) names)

let metrics_snapshot t : Metrics.snapshot =
  List.map (fun (name, v) -> (name, Metrics.C v)) (snapshot t)
