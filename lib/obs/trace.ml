(* Structured event trace: a fixed-capacity ring buffer of typed
   events stamped with the simulator's virtual clock and a worker id,
   exportable as Chrome trace_event JSON (loadable in chrome://tracing
   and Perfetto). *)

type kind =
  | Spawn of { parent : int; child : int }  (* frame ids *)
  | Sync of { frame : int }  (* a sync block's join was passed *)
  | Steal of { thief : int; victim : int; frame : int }
  | Return of { frame : int; inline : bool }
  | Thread_run of { tid : int; cost : int }
  | Trace_split of { victim_trace : int; u1 : int; u2 : int; u4 : int; u5 : int }
  | Lock_span of { wait : int; hold : int }  (* global-tier lock acquire..release *)
  | Om_insert of { om : string }
  | Om_relabel of { om : string; moved : int }
  | Om_bucket_split of { om : string }
  | Race_query of { tid : int; queries : int }

type event = { ts : int; wid : int; kind : kind }

type t = {
  capacity : int;
  buf : event array;
  mutable len : int;  (* live events, <= capacity *)
  mutable head : int;  (* index of the oldest event once wrapped *)
  mutable dropped : int;  (* events overwritten after wrap-around *)
}

let dummy = { ts = 0; wid = 0; kind = Sync { frame = 0 } }

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; len = 0; head = 0; dropped = 0 }

let emit t ~ts ~wid kind =
  let e = { ts; wid; kind } in
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest so the buffer keeps the tail of the
       run, which is usually the interesting part. *)
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let length t = t.len

let dropped t = t.dropped

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod t.capacity)
  done

let events t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.dropped <- 0

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export.                                          *)

let name_of = function
  | Spawn _ -> "spawn"
  | Sync _ -> "sync"
  | Steal _ -> "steal"
  | Return _ -> "return"
  | Thread_run _ -> "thread"
  | Trace_split _ -> "trace-split"
  | Lock_span _ -> "global-lock"
  | Om_insert _ -> "om-insert"
  | Om_relabel _ -> "om-relabel"
  | Om_bucket_split _ -> "om-bucket-split"
  | Race_query _ -> "race-query"

let cat_of = function
  | Spawn _ | Sync _ | Steal _ | Return _ | Thread_run _ -> "sched"
  | Trace_split _ | Lock_span _ -> "hybrid"
  | Om_insert _ | Om_relabel _ | Om_bucket_split _ -> "om"
  | Race_query _ -> "race"

let args_of = function
  | Spawn { parent; child } -> [ ("parent", Json.Int parent); ("child", Json.Int child) ]
  | Sync { frame } -> [ ("frame", Json.Int frame) ]
  | Steal { thief; victim; frame } ->
      [ ("thief", Json.Int thief); ("victim", Json.Int victim); ("frame", Json.Int frame) ]
  | Return { frame; inline } -> [ ("frame", Json.Int frame); ("inline", Json.Bool inline) ]
  | Thread_run { tid; cost } -> [ ("tid", Json.Int tid); ("cost", Json.Int cost) ]
  | Trace_split { victim_trace; u1; u2; u4; u5 } ->
      [
        ("victim_trace", Json.Int victim_trace);
        ("u1", Json.Int u1);
        ("u2", Json.Int u2);
        ("u4", Json.Int u4);
        ("u5", Json.Int u5);
      ]
  | Lock_span { wait; hold } -> [ ("wait", Json.Int wait); ("hold", Json.Int hold) ]
  | Om_insert { om } -> [ ("om", Json.String om) ]
  | Om_relabel { om; moved } -> [ ("om", Json.String om); ("moved", Json.Int moved) ]
  | Om_bucket_split { om } -> [ ("om", Json.String om) ]
  | Race_query { tid; queries } -> [ ("tid", Json.Int tid); ("queries", Json.Int queries) ]

(* Chrome's trace_event schema: every event carries name/cat/ph/ts/
   pid/tid.  Durations (thread execution, the global-lock span) are
   "complete" events (ph = "X" with [dur]); everything else is a
   thread-scoped instant (ph = "i", s = "t").  One virtual tick maps
   to one microsecond, the unit of [ts]. *)
let chrome_of_event (e : event) =
  let dur =
    match e.kind with
    | Thread_run { cost; _ } -> Some cost
    | Lock_span { wait; hold } -> Some (wait + hold)
    | _ -> None
  in
  let base =
    [
      ("name", Json.String (name_of e.kind));
      ("cat", Json.String (cat_of e.kind));
      ("ph", Json.String (match dur with Some _ -> "X" | None -> "i"));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int e.wid);
    ]
  in
  let dur = match dur with Some d -> [ ("dur", Json.Int d) ] | None -> [ ("s", Json.String "t") ] in
  Json.Obj (base @ dur @ [ ("args", Json.Obj (args_of e.kind)) ])

let chrome_objects t =
  let evs = List.map chrome_of_event (events t) in
  (* Metadata events name the virtual workers in the viewer. *)
  let wids = List.sort_uniq compare (List.map (fun e -> e.wid) (events t)) in
  let meta =
    List.map
      (fun wid ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("pid", Json.Int 0);
            ("tid", Json.Int wid);
            ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "worker %d" wid)) ]);
          ])
      wids
  in
  meta @ evs

let to_chrome ?(other_data = []) t =
  Json.Obj
    [
      ("traceEvents", Json.List (chrome_objects t));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          ([ ("events", Json.Int t.len); ("dropped", Json.Int t.dropped) ] @ other_data) );
    ]
