(** Post-mortem flight recorder: always-on per-lane rings of recent
    trace events, dumped (with a final metrics snapshot) to a
    deterministic binary [.spr-flight] file when a harness hits a
    failing execution.

    A lane is a {e single-writer} ring — the harness maps each worker
    id to its own lane — so {!emit} is a handful of plain int stores:
    no locks, no allocation, and no torn events by construction.
    Slots are cache-line-sized, so writers on different lanes do not
    share lines.  Read the rings only after the writers quiesce. *)

type t

val create : ?lanes:int -> ?capacity:int -> unit -> t
(** [lanes] single-writer rings (default 1) of [capacity] events each
    (default 512); once a lane is full its oldest events are
    overwritten, keeping the tail of the run. *)

val lanes : t -> int

val capacity : t -> int

val intern : t -> string -> int
(** Id of the string in the recorder's name table, adding it on first
    use.  Resolve once per structure, then pass the id to
    {!emit_raw}. *)

val name : t -> int -> string

(** {1 Recording} *)

(** Event tags for {!emit_raw} — the on-disk numbering, one per
    {!Trace.kind} constructor. *)

val tag_spawn : int
val tag_sync : int
val tag_steal : int
val tag_return : int
val tag_thread_run : int
val tag_trace_split : int
val tag_lock_span : int
val tag_om_insert : int
val tag_om_relabel : int
val tag_om_bucket_split : int
val tag_race_query : int

val emit_raw :
  t ->
  lane:int ->
  ts:int ->
  wid:int ->
  tag:int ->
  a:int ->
  b:int ->
  c:int ->
  d:int ->
  e:int ->
  unit
(** Record a pre-encoded event: plain stores only, allocation-free.
    [lane] is reduced mod {!lanes}; the caller must ensure one writer
    per lane.  Payload fields [a]–[e] are the tag's operands in
    {!Trace.kind} field order (string fields as {!intern} ids, unused
    fields 0). *)

val emit : t -> lane:int -> ts:int -> wid:int -> Trace.kind -> unit
(** Encode and record a typed event (interns names as needed). *)

(** {1 Reading back} *)

val lane_length : t -> int -> int

val lane_dropped : t -> int -> int

val lane_events : t -> int -> Trace.event list
(** Decoded events of one lane, oldest first. *)

val clear : t -> unit

(** {1 Dump files} *)

val to_bytes : ?snapshot:Json.t -> t -> string
(** The deterministic binary [.spr-flight] image: magic + varint-coded
    names, per-lane counts and live events (oldest first), then the
    optional canonical-JSON metrics snapshot. *)

val write_file : ?snapshot:Json.t -> t -> string -> unit

type dump = {
  d_capacity : int;
  d_names : string array;
  d_counts : int array;  (** total events ever emitted, per lane *)
  d_events : Trace.event list array;  (** per lane, oldest first *)
  d_snapshot : Json.t option;
}

val of_bytes : string -> dump
(** @raise Failure on bad magic, version or truncation. *)

val read_file : string -> dump

val kind_label : Trace.kind -> string

val pp_dump : Format.formatter -> dump -> unit
(** Per-lane event counts by kind plus drop accounting. *)
