(* Typed, hierarchical metrics registry.

   Every instrument is keyed by a "subsystem/name" path ("om/inserts",
   "sched/steals"): the pretty renderer groups on the part before the
   first '/', the JSON renderer keeps the flat key.  Renders are sorted
   by key so output is deterministic regardless of registration or
   hashing order. *)

type counter = { mutable c : int }

type gauge = { mutable g : float }

(* Log-scale histogram of non-negative integer samples: bucket [i]
   counts samples with floor(lg v) = i (bucket 0 takes 0 and 1).  62
   buckets cover the whole OCaml int range. *)
let hist_buckets = 62

type histogram = {
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
  hbuckets : int array;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

(* Process-wide registry: the bench harness and CLIs record here when
   no explicit registry is supplied. *)
let default = create ()

let find_or_add t key make =
  match Hashtbl.find_opt t.tbl key with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.add t.tbl key i;
      i

let counter t key =
  match find_or_add t key (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" key)

let gauge t key =
  match find_or_add t key (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" key)

let histogram t key =
  match
    find_or_add t key (fun () ->
        Histogram { hcount = 0; hsum = 0; hmax = 0; hbuckets = Array.make hist_buckets 0 })
  with
  | Histogram h -> h
  | _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" key)

let add c n = c.c <- c.c + n

let incr c = add c 1

let set g v = g.g <- v

let bucket_of v =
  if v <= 1 then 0
  else begin
    let rec go i = if v lsr i <= 1 then i else go (i + 1) in
    min (hist_buckets - 1) (go 1)
  end

let observe h v =
  let v = max 0 v in
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v;
  if v > h.hmax then h.hmax <- v;
  let i = bucket_of v in
  h.hbuckets.(i) <- h.hbuckets.(i) + 1

(* Representative value of bucket [i] for quantile estimation: the
   midpoint of [2^i, 2^(i+1)) — log-scale histograms only ever give
   approximate quantiles. *)
let bucket_repr i = if i = 0 then 1.0 else 1.5 *. float_of_int (1 lsl i)

let quantile h q =
  if h.hcount = 0 then 0.0
  else begin
    let pairs = Array.init hist_buckets (fun i -> (bucket_repr i, h.hbuckets.(i))) in
    Float.min (Spr_util.Stats.quantile_counts pairs q) (float_of_int h.hmax)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type hist_data = { count : int; sum : int; max : int; buckets : int array }

type datum = C of int | G of float | H of hist_data

type snapshot = (string * datum) list

let snapshot t =
  Hashtbl.fold
    (fun key i acc ->
      let d =
        match i with
        | Counter c -> C c.c
        | Gauge g -> G g.g
        | Histogram h ->
            H { count = h.hcount; sum = h.hsum; max = h.hmax; buckets = Array.copy h.hbuckets }
      in
      (key, d) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* [diff later earlier]: counters and histogram counts subtract (a
   window of activity); gauges and histogram maxima keep the later
   value.  Keys only present in [later] pass through. *)
let diff later earlier =
  List.map
    (fun (key, d) ->
      match (d, List.assoc_opt key earlier) with
      | C c, Some (C c0) -> (key, C (c - c0))
      | H h, Some (H h0) ->
          ( key,
            H
              {
                count = h.count - h0.count;
                sum = h.sum - h0.sum;
                max = h.max;
                buckets = Array.mapi (fun i b -> b - h0.buckets.(i)) h.buckets;
              } )
      | d, _ -> (key, d))
    later

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          h.hcount <- 0;
          h.hsum <- 0;
          h.hmax <- 0;
          Array.fill h.hbuckets 0 hist_buckets 0)
    t.tbl

(* ------------------------------------------------------------------ *)
(* Renderers.                                                          *)

let hist_quantile_of_data (h : hist_data) q =
  if h.count = 0 then 0.0
  else begin
    let pairs = Array.init hist_buckets (fun i -> (bucket_repr i, h.buckets.(i))) in
    Float.min (Spr_util.Stats.quantile_counts pairs q) (float_of_int h.max)
  end

let pp_snapshot ppf (s : snapshot) =
  let subsystem key = match String.index_opt key '/' with Some i -> String.sub key 0 i | None -> "" in
  let leaf key =
    match String.index_opt key '/' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  let last = ref None in
  List.iter
    (fun (key, d) ->
      let sub = subsystem key in
      if !last <> Some sub then begin
        if !last <> None then Format.fprintf ppf "@.";
        Format.fprintf ppf "%s/@." (if sub = "" then "(top)" else sub);
        last := Some sub
      end;
      match d with
      | C c -> Format.fprintf ppf "  %-28s %d@." (leaf key) c
      | G g -> Format.fprintf ppf "  %-28s %g@." (leaf key) g
      | H h ->
          if h.count = 0 then Format.fprintf ppf "  %-28s (empty)@." (leaf key)
          else
            Format.fprintf ppf "  %-28s n=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%d@."
              (leaf key) h.count
              (float_of_int h.sum /. float_of_int h.count)
              (hist_quantile_of_data h 0.5) (hist_quantile_of_data h 0.9)
              (hist_quantile_of_data h 0.99) h.max)
    s

let pp ppf t = pp_snapshot ppf (snapshot t)

let datum_to_json = function
  | C c -> Json.Int c
  | G g -> Json.Float g
  | H h ->
      Json.Obj
        [
          ("count", Json.Int h.count);
          ("sum", Json.Int h.sum);
          ("max", Json.Int h.max);
          ("p50", Json.Float (hist_quantile_of_data h 0.5));
          ("p90", Json.Float (hist_quantile_of_data h 0.9));
          ("p99", Json.Float (hist_quantile_of_data h 0.99));
        ]

let snapshot_to_json (s : snapshot) = Json.Obj (List.map (fun (k, d) -> (k, datum_to_json d)) s)

let to_json t = snapshot_to_json (snapshot t)
