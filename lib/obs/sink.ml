(* The instrumentation hook handed to the library layers.

   A sink bundles an optional event-trace buffer, an optional metrics
   registry, and the current (virtual time, worker) context, which the
   scheduler updates as it steps so that layers with no clock of their
   own (the OM structures, the race detector) stamp their events
   correctly.

   [null] is the process-wide disabled sink: every path is
   instrumented against it by default and pays only a field load and
   an option match — the bechamel microbenchmarks guard this. *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  mutable now : int;
  mutable wid : int;
}

let null = { trace = None; metrics = None; now = 0; wid = 0 }

let make ?trace ?metrics () = { trace; metrics; now = 0; wid = 0 }

let is_null s = s == null

let trace s = s.trace

let metrics s = s.metrics

let set_context s ~now ~wid =
  if s != null then begin
    s.now <- now;
    s.wid <- wid
  end

let set_now s ~now = if s != null then s.now <- now

let now s = s.now

let emit s kind =
  match s.trace with None -> () | Some tr -> Trace.emit tr ~ts:s.now ~wid:s.wid kind

let emit_at s ~ts ~wid kind =
  match s.trace with None -> () | Some tr -> Trace.emit tr ~ts ~wid kind
