(* The instrumentation hook handed to the library layers.

   A sink bundles an optional event-trace buffer, an optional metrics
   registry, an optional flight recorder and the current (virtual
   time, worker) context, which the scheduler updates as it steps so
   that layers with no clock of their own (the OM structures, the race
   detector) stamp their events correctly.

   [null] is the process-wide disabled sink: every path is
   instrumented against it by default and pays only a field load and
   an option match — the bechamel microbenchmarks guard this.

   The typed [emit_om_*] entry points below exist for zero-allocation
   hot paths: the generic [emit] forces its caller to build a
   [Trace.kind] value even when the sink is disabled, which is exactly
   the minor-heap traffic the bench alloc-gate forbids in the packed-OM
   steady state.  The typed forms take immediate arguments and only
   materialize an event once a trace buffer is attached; the flight
   path stores plain ints.  Structure names are interned per emit via a
   short scan of the recorder's name table — allocation-free. *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  flight : Flight.t option;
  mutable now : int;
  mutable wid : int;
}

let null = { trace = None; metrics = None; flight = None; now = 0; wid = 0 }

let make ?trace ?metrics ?flight () = { trace; metrics; flight; now = 0; wid = 0 }

let is_null s = s == null

let trace s = s.trace

let metrics s = s.metrics

let flight s = s.flight

let set_context s ~now ~wid =
  if s != null then begin
    s.now <- now;
    s.wid <- wid
  end

let set_now s ~now = if s != null then s.now <- now

let now s = s.now

let emit s kind =
  (match s.trace with None -> () | Some tr -> Trace.emit tr ~ts:s.now ~wid:s.wid kind);
  match s.flight with
  | None -> ()
  | Some fl -> Flight.emit fl ~lane:s.wid ~ts:s.now ~wid:s.wid kind

let emit_at s ~ts ~wid kind =
  (match s.trace with None -> () | Some tr -> Trace.emit tr ~ts ~wid kind);
  match s.flight with
  | None -> ()
  | Some fl -> Flight.emit fl ~lane:wid ~ts ~wid kind

(* Typed, allocation-free-when-disabled emitters for the OM hot
   paths. *)

let emit_om_insert s ~om =
  (match s.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~ts:s.now ~wid:s.wid (Trace.Om_insert { om }));
  match s.flight with
  | None -> ()
  | Some fl ->
      Flight.emit_raw fl ~lane:s.wid ~ts:s.now ~wid:s.wid
        ~tag:Flight.tag_om_insert ~a:(Flight.intern fl om) ~b:0 ~c:0 ~d:0 ~e:0

let emit_om_relabel s ~om ~moved =
  (match s.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~ts:s.now ~wid:s.wid (Trace.Om_relabel { om; moved }));
  match s.flight with
  | None -> ()
  | Some fl ->
      Flight.emit_raw fl ~lane:s.wid ~ts:s.now ~wid:s.wid
        ~tag:Flight.tag_om_relabel ~a:(Flight.intern fl om) ~b:moved ~c:0 ~d:0
        ~e:0

let emit_om_bucket_split s ~om =
  (match s.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~ts:s.now ~wid:s.wid (Trace.Om_bucket_split { om }));
  match s.flight with
  | None -> ()
  | Some fl ->
      Flight.emit_raw fl ~lane:s.wid ~ts:s.now ~wid:s.wid
        ~tag:Flight.tag_om_bucket_split ~a:(Flight.intern fl om) ~b:0 ~c:0 ~d:0
        ~e:0
