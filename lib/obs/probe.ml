(* Scoped probes: wall-time + GC/allocation attribution per named
   region.

   The gate mirrors [spr_schedhook]: an uninstalled probe is one
   atomic load and a branch, so [span] can wrap production hot paths
   (the bench probe-gate holds this under 5 ns).  Installed, a span
   reads [Gc.quick_stat] at entry and exit and charges the deltas —
   minor-heap words, promoted words, direct major words, collection
   counts — to its region, plus wall time.

   Measurement subtlety: the probe's own bookkeeping allocates a small
   constant number of minor words *inside* its measurement window
   ([Gc.quick_stat] boxes its result after reading the counters, and
   the wall-clock read boxes a float), so the raw delta of an empty
   span is a nonzero constant.  [install] calibrates that constant by
   timing empty spans and every span subtracts it; a region that
   reports 0 minor words therefore really allocated nothing.  The same
   calibration backs [alloc_words], which the bench alloc-gate uses to
   prove the packed-OM steady state allocation-free.

   GC pauses are attributed through the runtime's own event stream
   ([Runtime_events], in-process cursor): minor/major collection
   begin/end pairs are drained at every span boundary and their
   durations charged to the region that was active when they fired —
   i.e. to the phase the collector interrupted.  Pauses seen outside
   any span land in the ["(unattributed)"] region. *)

type region = {
  rname : string;
  mutable spans : int;
  mutable wall_ns : int;
  mutable minor_words : int;
  mutable promoted_words : int;
  mutable major_words : int;
  mutable minor_gcs : int;
  mutable major_gcs : int;
  mutable minor_pause_ns : int;
  mutable major_pause_ns : int;
  mutable gc_events : int;
}

type stat = {
  s_spans : int;
  s_wall_ns : int;
  s_minor_words : int;
  s_promoted_words : int;
  s_major_words : int;
  s_minor_gcs : int;
  s_major_gcs : int;
  s_minor_pause_ns : int;
  s_major_pause_ns : int;
  s_gc_events : int;
}

let installed_flag = Atomic.make false

let is_installed () = Atomic.get installed_flag

let regions_lock = Mutex.create ()

let regions : (string, region) Hashtbl.t = Hashtbl.create 16

let make_region rname =
  {
    rname;
    spans = 0;
    wall_ns = 0;
    minor_words = 0;
    promoted_words = 0;
    major_words = 0;
    minor_gcs = 0;
    major_gcs = 0;
    minor_pause_ns = 0;
    major_pause_ns = 0;
    gc_events = 0;
  }

let region name =
  Mutex.lock regions_lock;
  let r =
    match Hashtbl.find_opt regions name with
    | Some r -> r
    | None ->
        let r = make_region name in
        Hashtbl.add regions name r;
        r
  in
  Mutex.unlock regions_lock;
  r

let unattributed = region "(unattributed)"

(* The region whose span is currently open; GC pauses drained from the
   runtime-events stream are charged to it.  Last-enter-wins across
   domains: probes measure harness phases, which run one at a time. *)
let current : region option ref = ref None

(* --- Runtime_events bridge ------------------------------------- *)

let cursor : Runtime_events.cursor option ref = ref None

(* Open collection phases: (ring domain, 0=minor/1=major) -> begin ts. *)
let open_phases : (int * int, int64) Hashtbl.t = Hashtbl.create 16

let phase_tag = function
  | Runtime_events.EV_MINOR -> 0
  | Runtime_events.EV_MAJOR -> 1
  | _ -> -1

let callbacks =
  lazy
    (let on_begin ring ts phase =
       let tag = phase_tag phase in
       if tag >= 0 then
         Hashtbl.replace open_phases (ring, tag)
           (Runtime_events.Timestamp.to_int64 ts)
     in
     let on_end ring ts phase =
       let tag = phase_tag phase in
       if tag >= 0 then
         match Hashtbl.find_opt open_phases (ring, tag) with
         | None -> ()
         | Some t0 ->
             Hashtbl.remove open_phases (ring, tag);
             let dur =
               Int64.to_int
                 (Int64.sub (Runtime_events.Timestamp.to_int64 ts) t0)
             in
             let r = match !current with Some r -> r | None -> unattributed in
             r.gc_events <- r.gc_events + 1;
             if tag = 0 then r.minor_pause_ns <- r.minor_pause_ns + dur
             else r.major_pause_ns <- r.major_pause_ns + dur
     in
     Runtime_events.Callbacks.create ~runtime_begin:on_begin
       ~runtime_end:on_end ())

let poll_gc_events () =
  match !cursor with
  | None -> ()
  | Some c -> ignore (Runtime_events.read_poll c (Lazy.force callbacks) None)

(* --- Spans ------------------------------------------------------ *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Minor words an empty span's own bookkeeping allocates inside its
   measurement window (boxed floats from quick_stat/gettimeofday);
   calibrated by [install], subtracted from every span's delta. *)
let span_overhead_w = ref 0

(* Minor-word deltas come from [Gc.minor_words] (which reads the
   domain's young pointer, so it is exact at any moment), not from the
   [quick_stat] field of the same name: on OCaml 5 the latter only
   advances at minor collections, so short spans would read 0 and spans
   crossing a collection would snap to whole minor-heap multiples. *)
let leave r saved (s : Gc.stat) m0 t0 =
  let m1 = Gc.minor_words () in
  let t1 = now_ns () in
  let e = Gc.quick_stat () in
  poll_gc_events ();
  current := saved;
  r.spans <- r.spans + 1;
  r.wall_ns <- r.wall_ns + (t1 - t0);
  let minor = int_of_float (m1 -. m0) - !span_overhead_w in
  if minor > 0 then r.minor_words <- r.minor_words + minor;
  let promoted = int_of_float (e.promoted_words -. s.promoted_words) in
  r.promoted_words <- r.promoted_words + promoted;
  let major = int_of_float (e.major_words -. s.major_words) - promoted in
  if major > 0 then r.major_words <- r.major_words + major;
  r.minor_gcs <- r.minor_gcs + (e.minor_collections - s.minor_collections);
  r.major_gcs <- r.major_gcs + (e.major_collections - s.major_collections)

let span r f =
  if not (Atomic.get installed_flag) then f ()
  else begin
    (* Drain pauses that belong to the enclosing scope, and do all of
       our own allocation (the [Some r] cell) before the entry read so
       it is not charged to [r]. *)
    poll_gc_events ();
    let saved = !current in
    current := Some r;
    let s = Gc.quick_stat () in
    let m0 = Gc.minor_words () in
    let t0 = now_ns () in
    match f () with
    | v ->
        leave r saved s m0 t0;
        v
    | exception exn ->
        leave r saved s m0 t0;
        raise exn
  end

(* [alloc_words] has its own (smaller) constant window overhead: the
   boxed float returned by the first [Gc.minor_words] read. *)
let alloc_overhead_w = ref (-1)

let alloc_words_raw f =
  let mw0 = Gc.minor_words () in
  let v = f () in
  let mw1 = Gc.minor_words () in
  (v, int_of_float (mw1 -. mw0))

let calibrate_alloc () =
  let best = ref max_int in
  for _ = 1 to 5 do
    let (), w = alloc_words_raw (fun () -> ()) in
    if w < !best then best := w
  done;
  alloc_overhead_w := !best

let alloc_words f =
  if !alloc_overhead_w < 0 then calibrate_alloc ();
  let v, raw = alloc_words_raw f in
  (v, max 0 (raw - !alloc_overhead_w))

(* --- Install / calibration -------------------------------------- *)

let calibrate_span () =
  span_overhead_w := 0;
  let scratch = make_region "(calibration)" in
  let best = ref max_int in
  for _ = 1 to 5 do
    let before = scratch.minor_words in
    span scratch (fun () -> ());
    let w = scratch.minor_words - before in
    if w < !best then best := w
  done;
  span_overhead_w := !best

let install ?(runtime_events = false) () =
  if runtime_events && !cursor = None then begin
    Runtime_events.start ();
    cursor := Some (Runtime_events.create_cursor None)
  end;
  if not (Atomic.get installed_flag) then begin
    Atomic.set installed_flag true;
    calibrate_span ()
  end

let uninstall () =
  Atomic.set installed_flag false;
  (match !cursor with
  | None -> ()
  | Some c ->
      poll_gc_events ();
      Runtime_events.free_cursor c;
      Runtime_events.pause ();
      cursor := None);
  current := None

(* --- Snapshots --------------------------------------------------- *)

let stats (r : region) =
  {
    s_spans = r.spans;
    s_wall_ns = r.wall_ns;
    s_minor_words = r.minor_words;
    s_promoted_words = r.promoted_words;
    s_major_words = r.major_words;
    s_minor_gcs = r.minor_gcs;
    s_major_gcs = r.major_gcs;
    s_minor_pause_ns = r.minor_pause_ns;
    s_major_pause_ns = r.major_pause_ns;
    s_gc_events = r.gc_events;
  }

let snapshot () =
  Mutex.lock regions_lock;
  let rs = Hashtbl.fold (fun name r acc -> (name, stats r) :: acc) regions [] in
  Mutex.unlock regions_lock;
  List.sort (fun (a, _) (b, _) -> compare a b)
    (List.filter (fun (_, s) -> s.s_spans > 0 || s.s_gc_events > 0) rs)

let reset () =
  Mutex.lock regions_lock;
  Hashtbl.iter
    (fun _ r ->
      r.spans <- 0;
      r.wall_ns <- 0;
      r.minor_words <- 0;
      r.promoted_words <- 0;
      r.major_words <- 0;
      r.minor_gcs <- 0;
      r.major_gcs <- 0;
      r.minor_pause_ns <- 0;
      r.major_pause_ns <- 0;
      r.gc_events <- 0)
    regions;
  Mutex.unlock regions_lock

let pp_snapshot ppf snap =
  Format.fprintf ppf "%-28s %8s %12s %10s %10s %6s %6s %10s@."
    "region" "spans" "wall ns" "minor w" "promoted" "minGC" "majGC" "pause ns";
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%-28s %8d %12d %10d %10d %6d %6d %10d@."
        name s.s_spans s.s_wall_ns s.s_minor_words s.s_promoted_words
        s.s_minor_gcs s.s_major_gcs
        (s.s_minor_pause_ns + s.s_major_pause_ns))
    snap

let pp ppf () = pp_snapshot ppf (snapshot ())
