(** Structured event trace: a ring buffer of typed events stamped with
    the simulator's virtual clock ([ts], one tick = one exported
    microsecond) and the worker id that produced them, exportable as
    Chrome [trace_event] JSON (load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}). *)

type kind =
  | Spawn of { parent : int; child : int }
  | Sync of { frame : int }
  | Steal of { thief : int; victim : int; frame : int }
  | Return of { frame : int; inline : bool }
  | Thread_run of { tid : int; cost : int }
  | Trace_split of { victim_trace : int; u1 : int; u2 : int; u4 : int; u5 : int }
  | Lock_span of { wait : int; hold : int }
  | Om_insert of { om : string }
  | Om_relabel of { om : string; moved : int }
  | Om_bucket_split of { om : string }
  | Race_query of { tid : int; queries : int }

type event = { ts : int; wid : int; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer holding at most [capacity] (default 2{^16}) events;
    once full, the oldest events are overwritten (and counted in
    {!dropped}) so the buffer keeps the tail of the run. *)

val emit : t -> ts:int -> wid:int -> kind -> unit

val length : t -> int

val dropped : t -> int

val events : t -> event list
(** Oldest first. *)

val iter : t -> (event -> unit) -> unit

val clear : t -> unit

val chrome_of_event : event -> Json.t
(** One Chrome [trace_event] object: always carries [name], [cat],
    [ph], [ts], [pid], [tid] plus either [dur] (complete events:
    thread execution, the global-lock span) or [s] (instants), and an
    [args] object with the typed payload. *)

val to_chrome : ?other_data:(string * Json.t) list -> t -> Json.t
(** The full JSON-object-format trace: [traceEvents] (worker-naming
    metadata first, then every buffered event, oldest first) plus an
    [otherData] section with buffer accounting and the caller's extra
    fields. *)
