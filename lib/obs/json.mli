(** Minimal dependency-free JSON values and canonical printer.

    Used by the metrics JSON renderer and the Chrome trace exporter.
    Printing is canonical (members in insertion order, stable number
    formatting) so fixed-seed runs serialize byte-for-byte
    identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val member : string -> t -> t option
(** [member key j] is the value bound to [key] when [j] is an object
    containing it (schema-validation helper). *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Accepts the full RFC 8259 value grammar
    (whitespace, nesting, string escapes); [Error msg] carries the
    offset of the first syntax error.  Round-trips everything
    [to_string] emits — the benchmark regression gate reads committed
    baselines back through this. *)
