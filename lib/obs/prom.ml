(* Prometheus text exposition (format 0.0.4) of a metrics snapshot.

   Keys like "om/relabel/items_moved" become "spr_om_relabel_items_moved":
   a configurable prefix, '/' and every other non-[a-zA-Z0-9_] byte
   mapped to '_'.  Counters and gauges render as single samples; the
   log-scale histograms render as cumulative `le` buckets (bucket [i]
   holds samples with floor(lg v) = i, so its inclusive upper bound is
   2^(i+1)-1) plus `_sum` and `_count`.  Output order follows the
   snapshot (sorted by key), so rendering is deterministic. *)

let sanitize ~prefix key =
  let b = Buffer.create (String.length key + String.length prefix + 1) in
  if prefix <> "" then begin
    Buffer.add_string b prefix;
    Buffer.add_char b '_'
  end;
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    key;
  let s = Buffer.contents b in
  match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render_to ?(prefix = "spr") buf (snap : Metrics.snapshot) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (key, datum) ->
      let name = sanitize ~prefix key in
      match (datum : Metrics.datum) with
      | Metrics.C v ->
          line "# TYPE %s counter" name;
          line "%s %d" name v
      | Metrics.G v ->
          line "# TYPE %s gauge" name;
          line "%s %s" name (float_str v)
      | Metrics.H h ->
          line "# TYPE %s histogram" name;
          let n = Array.length h.Metrics.buckets in
          (* Last bucket with samples; everything above is implied by
             +Inf. *)
          let last = ref (-1) in
          Array.iteri (fun i c -> if c > 0 then last := i) h.Metrics.buckets;
          let cum = ref 0 in
          for i = 0 to !last do
            cum := !cum + h.Metrics.buckets.(i);
            let le = if i >= 62 || i >= n then max_int else (1 lsl (i + 1)) - 1 in
            line "%s_bucket{le=\"%d\"} %d" name le !cum
          done;
          line "%s_bucket{le=\"+Inf\"} %d" name h.Metrics.count;
          line "%s_sum %d" name h.Metrics.sum;
          line "%s_count %d" name h.Metrics.count)
    snap

let render ?prefix snap =
  let buf = Buffer.create 1024 in
  render_to ?prefix buf snap;
  Buffer.contents buf
