(** Instrumentation sink threaded through the library layers.

    Bundles an optional {!Trace} buffer, an optional {!Metrics}
    registry and the current (virtual time, worker id) context.  The
    scheduler owns the context: it calls {!set_context} as it steps so
    that clock-less layers (order maintenance, the race detector)
    stamp events with the right virtual time.

    {!null} is the default everywhere: emitting against it is a single
    option match, so instrumentation is free unless a recording sink
    is installed. *)

type t

val null : t
(** The disabled sink.  Shared and immutable: setters are no-ops on
    it. *)

val make : ?trace:Trace.t -> ?metrics:Metrics.t -> ?flight:Flight.t -> unit -> t

val is_null : t -> bool

val trace : t -> Trace.t option

val metrics : t -> Metrics.t option

val flight : t -> Flight.t option

val set_context : t -> now:int -> wid:int -> unit

val set_now : t -> now:int -> unit

val now : t -> int

val emit : t -> Trace.kind -> unit
(** Emit at the current context into the trace buffer and the flight
    recorder (flight lane = current worker id); no-op when neither is
    attached.  Note the caller has already allocated the [Trace.kind]
    value — hot paths that must stay allocation-free use the typed
    emitters below instead. *)

val emit_at : t -> ts:int -> wid:int -> Trace.kind -> unit

(** {1 Typed emitters}

    Allocation-free when the sink records nothing: arguments are
    immediates and the event value is only built once a trace buffer
    is attached (the flight recorder stores plain ints).  The bench
    alloc-gate relies on these in the packed-OM steady state. *)

val emit_om_insert : t -> om:string -> unit

val emit_om_relabel : t -> om:string -> moved:int -> unit

val emit_om_bucket_split : t -> om:string -> unit
