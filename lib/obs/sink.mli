(** Instrumentation sink threaded through the library layers.

    Bundles an optional {!Trace} buffer, an optional {!Metrics}
    registry and the current (virtual time, worker id) context.  The
    scheduler owns the context: it calls {!set_context} as it steps so
    that clock-less layers (order maintenance, the race detector)
    stamp events with the right virtual time.

    {!null} is the default everywhere: emitting against it is a single
    option match, so instrumentation is free unless a recording sink
    is installed. *)

type t

val null : t
(** The disabled sink.  Shared and immutable: setters are no-ops on
    it. *)

val make : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t

val is_null : t -> bool

val trace : t -> Trace.t option

val metrics : t -> Metrics.t option

val set_context : t -> now:int -> wid:int -> unit

val set_now : t -> now:int -> unit

val now : t -> int

val emit : t -> Trace.kind -> unit
(** Emit at the current context; no-op without a trace buffer. *)

val emit_at : t -> ts:int -> wid:int -> Trace.kind -> unit
