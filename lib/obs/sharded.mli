(** Domain-sharded counters: exact cross-domain totals with a
    plain-store bump path.

    Each instrument owns one cache-line-padded cell per domain; {!add}
    is a [Domain.DLS] lookup plus a single unsynchronized store into
    the calling domain's cell, so concurrent bumps neither race nor
    contend.  {!read} and {!snapshot} sum the per-domain cells; after
    the writing domains have been joined (any happens-before edge), the
    total is exact — no lost updates, unlike bumping a shared
    [Metrics] cell from several domains.

    Cells persist after their domain terminates, so totals include
    work done by joined domains.  Reads that run concurrently with
    writers may miss in-flight bumps (they use plain loads by design);
    they never observe torn or decreasing values from a single
    domain's cell. *)

type t
(** A registry: a name -> instrument table.  Instrument cells live in
    one process-wide space shared by all registries (DLS keys are never
    reclaimed, so registries must not own per-domain state). *)

val create : unit -> t

val default : t
(** The process-wide registry, mirroring {!Metrics.default}. *)

type counter

val counter : t -> string -> counter
(** Find or register the counter named [key] (conventionally
    ["subsystem/name"], like {!Metrics}).  Resolve once, bump many:
    resolution takes the registry lock, bumps never do. *)

val add : counter -> int -> unit
(** One DLS lookup + one plain store into this domain's cell. *)

val incr : counter -> unit

val read : counter -> int
(** Sum of the counter's cells across all domains, live and joined. *)

val snapshot : t -> (string * int) list
(** Every registered counter, sorted by name. *)

val metrics_snapshot : t -> Metrics.snapshot
(** {!snapshot} in {!Metrics.snapshot} form (every entry a
    {!Metrics.C}), for merging with registry snapshots in renderers. *)
