(* Minimal JSON emitter.  The observability layer must stay
   dependency-free (it sits below every other library), so it carries
   its own printer instead of pulling in yojson.  Output is canonical:
   object members keep insertion order, numbers print without a
   trailing dot, and strings escape per RFC 8259 — the trace cram test
   relies on byte-for-byte reproducibility. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 65536 in
  write buf j;
  Buffer.output_buffer oc buf

(* Accessors used by the schema-validation tests. *)
let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
