(* Minimal JSON emitter.  The observability layer must stay
   dependency-free (it sits below every other library), so it carries
   its own printer instead of pulling in yojson.  Output is canonical:
   object members keep insertion order, numbers print without a
   trailing dot, and strings escape per RFC 8259 — the trace cram test
   relies on byte-for-byte reproducibility. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  write buf j;
  Buffer.contents buf

let to_channel oc j =
  let buf = Buffer.create 65536 in
  write buf j;
  Buffer.output_buffer oc buf

(* Accessors used by the schema-validation tests. *)
let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* Recursive-descent parser for the same subset the printer emits.
   The benchmark regression gate reads its committed baselines back
   through this, so the observability layer stays dependency-free in
   both directions.  Accepts arbitrary RFC 8259 input (whitespace,
   nested containers, escapes); rejects trailing garbage. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    && match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | Some c' -> parse_error "expected %C at offset %d, found %C" c p.pos c'
  | None -> parse_error "expected %C at offset %d, found end of input" c p.pos

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" p.pos

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> parse_error "unterminated string at offset %d" p.pos
    | Some '"' -> p.pos <- p.pos + 1
    | Some '\\' -> (
        p.pos <- p.pos + 1;
        match peek p with
        | Some '"' -> Buffer.add_char buf '"'; p.pos <- p.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; p.pos <- p.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; p.pos <- p.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; p.pos <- p.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; p.pos <- p.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; p.pos <- p.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; p.pos <- p.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; p.pos <- p.pos + 1; go ()
        | Some 'u' ->
            if p.pos + 5 > String.length p.src then
              parse_error "truncated \\u escape at offset %d" p.pos;
            let code = int_of_string ("0x" ^ String.sub p.src (p.pos + 1) 4) in
            (* The printer only emits \u for control characters; decode
               the BMP code point as UTF-8 so round-trips are lossless. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            p.pos <- p.pos + 5;
            go ()
        | _ -> parse_error "bad escape at offset %d" p.pos)
    | Some c ->
        Buffer.add_char buf c;
        p.pos <- p.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while p.pos < String.length p.src && is_num_char p.src.[p.pos] do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> parse_error "unexpected end of input at offset %d" p.pos
  | Some '"' -> String (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some '[' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else
        let rec elems acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              p.pos <- p.pos + 1;
              List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" p.pos
        in
        List (elems [])
  | Some '{' ->
      p.pos <- p.pos + 1;
      skip_ws p;
      if peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else
        let rec members acc =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              p.pos <- p.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              p.pos <- p.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" p.pos
        in
        Obj (members [])
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error msg -> Error msg
