(** Scoped probes: per-region wall-time and GC/allocation attribution.

    A probe {!span} wraps a named phase of the computation (a region).
    Uninstalled — the default — a span costs one atomic load and a
    branch, mirroring [spr_schedhook], so hot paths can stay
    instrumented permanently.  After {!install}, each span charges its
    region with wall time and the [Gc.quick_stat] deltas: minor-heap
    words, promoted words, words allocated directly on the major heap,
    and minor/major collection counts.

    The probe's own bookkeeping allocates a small constant inside its
    measurement window; {!install} calibrates that constant with empty
    spans and every span subtracts it, so a reported 0 is a true zero.
    This backs the bench [--alloc-gate].

    With [install ~runtime_events:true], the runtime's event stream is
    read through an in-process cursor and minor/major collection
    pauses are attributed (duration in ns) to the region whose span
    the collector interrupted; pauses outside any span accrue to the
    ["(unattributed)"] region. *)

type region

type stat = {
  s_spans : int;
  s_wall_ns : int;
  s_minor_words : int;  (** words allocated on the minor heap *)
  s_promoted_words : int;
  s_major_words : int;  (** words allocated directly on the major heap *)
  s_minor_gcs : int;
  s_major_gcs : int;
  s_minor_pause_ns : int;
  s_major_pause_ns : int;
  s_gc_events : int;  (** collection pauses attributed via runtime events *)
}

val region : string -> region
(** Find or register the region named [name].  Resolve once, span
    many. *)

val span : region -> (unit -> 'a) -> 'a
(** Run the thunk inside the region.  One atomic load when probes are
    uninstalled; exceptions propagate after the region is charged. *)

val alloc_words : (unit -> 'a) -> 'a * int
(** [(f (), minor-heap words f allocated)], with the measurement's own
    constant overhead calibrated out — 0 means allocation-free.
    Independent of {!install}. *)

val install : ?runtime_events:bool -> unit -> unit
(** Arm probes (idempotent) and calibrate the span overhead.  With
    [~runtime_events:true] (default false), also start the runtime
    event ring and attribute GC pauses to regions. *)

val uninstall : unit -> unit

val is_installed : unit -> bool

val poll_gc_events : unit -> unit
(** Drain pending runtime events now (spans do this at entry/exit). *)

val stats : region -> stat

val snapshot : unit -> (string * stat) list
(** Regions with activity, sorted by name. *)

val reset : unit -> unit

val pp_snapshot : Format.formatter -> (string * stat) list -> unit

val pp : Format.formatter -> unit -> unit
(** [pp_snapshot] of the current {!snapshot}. *)
