(** Address-range-sharded shadow memory.

    The per-location shadow state (writer + two readers) evolves
    independently across locations, and SP precedence between two
    already-executed threads never changes as the walk continues — so
    access checks can be {e deferred} and partitioned by address
    without changing any verdict.  The server exploits both: accesses
    are appended to per-shard batches (3 ints each: packed loc/rw,
    tid, global access sequence number) and, when any batch fills, all
    shards drain concurrently — each domain owning its address
    partition's packed shadow cells exclusively while the fused
    SP-order structure is shared read-only.  Race reports keep their
    sequence numbers, so the server can merge the per-shard lists back
    into the exact serial detection order.

    One shard = one {!Spr_race.Detector} over the partition
    [\[base, base+width)] with locations translated to shard-local
    offsets.  [prepare] re-partitions in place per program (detector
    recreated only when the partition outgrows every previous one), so
    a resident server's steady state allocates nothing here.

    The drain loop passes {!Spr_schedhook.Hook} yield points
    ([ingest/drain-batch], [ingest/drain-step]), so the schedule
    explorer can drive the hand-off path through adversarial
    interleavings. *)

type t

val create :
  id:int -> precedes:(executed:int -> current:int -> bool) -> unit -> t
(** [precedes] answers on {e thread ids} (the server closes it over
    the fused SP order and the tid→leaf map); all shards share it. *)

val prepare : t -> base:int -> width:int -> batch:int -> unit
(** Re-partition for a new program: own locations
    [\[base, base+width)], size the batch buffer to [batch] entries,
    clear shadow memory, pending entries and race sequence numbers. *)

val base : t -> int

val push : t -> loc:int -> write:bool -> tid:int -> seq:int -> unit
(** Append one access (loc already verified to fall in this shard's
    range).  Allocation-free. *)

val is_full : t -> bool

val pending : t -> int
(** Entries currently batched. *)

val drain : t -> unit
(** Run every batched access through this shard's detector, in batch
    order, tagging each reported race with its access sequence number;
    empties the batch.  The only writers during a concurrent drain are
    shard-local, so draining all shards from distinct domains is
    race-free. *)

val detector : t -> Spr_race.Detector.t

val race_seqs : t -> int Spr_util.Vec.t
(** Sequence number of each race in [Detector.races], same order. *)

val accesses_drained : t -> int
(** Total accesses this shard has checked since [prepare]. *)

(** A persistent pool of worker domains for concurrent drains.  The
    coordinator broadcasts an array of thunks (one per shard); worker
    [i] runs thunk [i], the coordinator runs thunk 0 itself, and
    {!Pool.run} returns when all have finished.  Publication happens
    entirely through the pool mutex (release on broadcast, acquire on
    completion), so the drains see every batch entry written before
    the flush. *)
module Pool : sig
  type pool

  val create : workers:int -> pool
  (** Spawn [workers] domains ([workers] = shards − 1; the coordinator
      is the remaining one). *)

  val run : pool -> (unit -> unit) array -> unit
  (** Execute [thunks.(1..)] on the workers and [thunks.(0)] on the
      calling domain; barrier on completion.  The array must have at
      most [workers + 1] elements. *)

  val shutdown : pool -> unit
  (** Join every domain.  Idempotent. *)
end
