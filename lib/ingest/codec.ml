module V = Spr_util.Varint
module Fj = Spr_prog.Fj_program

let magic = "SPRTRACE1\n"

let version = 1

(* Tag values are part of the on-disk format; never renumber. *)
let tag_prog = 1

let tag_thread = 2

let tag_read = 3

let tag_write = 4

let tag_read_locked = 5

let tag_write_locked = 6

let tag_spawn = 7

let tag_return = 8

let tag_sync = 9

let tag_prog_end = 10

(* Hint caps: large enough for any workload this repo generates, small
   enough that a corrupted header cannot OOM the decoder. *)
let max_threads = 1 lsl 26

let max_locs = 1 lsl 27

let max_nodes = 1 lsl 28

let max_locks_held = 4096

type error = { offset : int; frame : int; msg : string }

exception Corrupt of error

let corrupt ~offset ~frame fmt =
  Printf.ksprintf (fun msg -> raise (Corrupt { offset; frame; msg })) fmt

let pp_error ppf e =
  Format.fprintf ppf "offset %d (frame %d): %s" e.offset e.frame e.msg

(* Char-by-char so the resident server's per-trace header check stays
   allocation-free (String.sub would box a fresh string every call). *)
let rec magic_matches s pos i =
  i >= String.length magic
  || (String.unsafe_get s (pos + i) = String.unsafe_get magic i
     && magic_matches s pos (i + 1))

let check_header s pos =
  let mlen = String.length magic in
  if String.length s - !pos < mlen || not (magic_matches s !pos 0) then
    corrupt ~offset:!pos ~frame:0 "bad magic (not a .spr-trace file)";
  pos := !pos + mlen;
  let v =
    try V.get s pos
    with V.Truncated -> corrupt ~offset:!pos ~frame:0 "truncated version"
  in
  if v <> version then corrupt ~offset:!pos ~frame:0 "unknown version %d" v

let write_header buf =
  Buffer.add_string buf magic;
  V.put buf version

(* --- Encoding ----------------------------------------------------- *)

(* The body is serialized first (into [body]) so the PROG header can
   carry exact sizing hints: the decoder pre-sizes its node-id space to
   [nodes] and treats any drift as corruption.  The node budget mirrors
   the streaming construction (see server.ml): the root, plus two fresh
   ids per sync block, per thread and per spawn. *)
let encode_program buf (program : Fj.t) =
  let body = Buffer.create 4096 in
  let events = ref 0 in
  let blocks = ref 0 in
  let frame tag =
    V.put body tag;
    incr events
  in
  let access (a : Fj.access) =
    (match a.locks with
    | [] ->
        frame (if a.write then tag_write else tag_read);
        V.put body a.loc
    | locks ->
        frame (if a.write then tag_write_locked else tag_read_locked);
        V.put body a.loc;
        V.put body (List.length locks);
        List.iter (V.put body) locks)
  in
  let rec proc (p : Fj.proc) =
    Array.iteri
      (fun bi blk ->
        if bi > 0 then frame tag_sync;
        incr blocks;
        Array.iter item blk)
      p.Fj.blocks
  and item = function
    | Fj.Run u ->
        frame tag_thread;
        V.put body u.Fj.tid;
        V.put body u.Fj.cost;
        Array.iter access u.Fj.accesses
    | Fj.Spawn child ->
        frame tag_spawn;
        proc child;
        frame tag_return
  in
  proc (Fj.main program);
  let threads = Fj.thread_count program in
  let locs = 1 + Spr_race.Detector.max_loc program in
  let nodes = 1 + (2 * (threads + Fj.spawn_count program + !blocks)) in
  V.put buf tag_prog;
  V.put buf threads;
  V.put buf locs;
  V.put buf nodes;
  Buffer.add_buffer buf body;
  V.put buf tag_prog_end;
  V.put buf !events

let capture programs =
  let buf = Buffer.create 65536 in
  write_header buf;
  List.iter (encode_program buf) programs;
  Buffer.contents buf

let capture_file path programs =
  let s = capture programs in
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc;
  String.length s

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s
