module Fj = Spr_prog.Fj_program
module W = Spr_workloads.Progs

type result = {
  shards : int;
  samples : float list;
  programs : int;
  access_events : int;
  total_events : int;
  races : int;
  sp_queries : int;
  trace_bytes : int;
}

(* Rotation of realistic shapes: reduction tree, sort, read-mostly
   fan-out, seeded random (the only racy one — the race counter stays
   deterministic because the rng is).  Sizes put each program in the
   10-30k-access range, so a full-size (2M-event) run streams a few
   hundred programs through the resident server. *)
let spmix ~events ~seed =
  let rng = Spr_util.Rng.create seed in
  let acc = ref [] in
  let total = ref 0 in
  let i = ref 0 in
  while !total < events do
    let p =
      match !i mod 4 with
      | 0 -> W.dc_sum ~leaves:768 ~grain:12 ()
      | 1 -> W.mergesort ~n:1024 ~grain:32 ()
      | 2 -> W.shared_readers ~readers:512 ~reads:24 ()
      | _ ->
          W.random_prog ~rng ~threads:1024 ~locs:512 ~accesses_per_thread:12 ()
    in
    acc := p :: !acc;
    total := !total + Fj.access_count p;
    incr i
  done;
  List.rev !acc

let capture_spmix ~events ~seed = Codec.capture (spmix ~events ~seed)

let events_per_sec ns_per_access = 1e9 /. ns_per_access

let measure ?(repeats = 5) ?(batch = 8192) ~shards trace =
  Gc.compact ();
  let srv = Server.create ~shards ~batch () in
  let counters =
    match Server.run_string srv trace with
    | Error e -> failwith (Format.asprintf "ingest bench: corrupt trace: %a" Codec.pp_error e)
    | Ok results ->
        List.fold_left
          (fun (p, a, ev, r, q) (res : Server.program_result) ->
            ( p + 1,
              a + res.Server.accesses,
              ev + res.Server.events,
              r + List.length res.Server.races,
              q + res.Server.sp_queries ))
          (0, 0, 0, 0, 0) results
  in
  let programs, access_events, total_events, races, sp_queries = counters in
  let samples =
    List.init repeats (fun _ ->
        let t0 = Unix.gettimeofday () in
        Server.drive srv trace;
        let t1 = Unix.gettimeofday () in
        (t1 -. t0) *. 1e9 /. float_of_int (max 1 access_events))
  in
  Server.close srv;
  {
    shards;
    samples;
    programs;
    access_events;
    total_events;
    races;
    sp_queries;
    trace_bytes = String.length trace;
  }
