(** Resident streaming race detector: many programs' traces, one
    detector.

    The server decodes a [.spr-trace] stream frame by frame and
    maintains the SP relationships {e online}: structural frames drive
    the fused English/Hebrew order ({!Spr_core.Sp_order_fused}) through
    exactly the insertions the canonical parse-tree walk would make —
    a continuation context per procedure-call frame, split at every
    [SYNC] — so no parse tree is ever materialized, and access frames
    are checked against shadow memory immediately (single-shard) or
    batched into address-range shards and drained across domains
    ({!Shard}).  A [PROG] frame rewinds everything in place (O(1)
    {!Spr_core.Sp_order_fused.reset}, shadow/batch clears), which is
    what makes the server resident: steady state across programs
    allocates nothing on the decode path.

    Race reports are byte-identical to
    {!Spr_race.Drivers.detect_serial} on the original program — same
    races in the same order, same racy locations, same SP query count
    — for any shard count.  The test suite pins this differentially
    over every workload generator. *)

type t

type runner = (unit -> unit) array -> unit
(** How to execute one drain thunk per shard "concurrently".  The
    default is a persistent {!Shard.Pool} of domains; tests substitute
    [Spr_schedtest.Control.run] to schedule the hand-off
    adversarially. *)

type program_result = {
  index : int;  (** 0-based position in the trace *)
  threads : int;
  accesses : int;
  events : int;  (** body frames decoded *)
  races : Spr_race.Detector.race list;  (** serial detection order *)
  racy_locs : int list;
  sp_queries : int;
}

type stats = {
  programs : int;
  events : int;
  accesses : int;
  races : int;
  sp_queries : int;
  flushes : int;
}
(** Totals since {!create}. *)

type oracle = Sp_fused | Hb_vector | Hb_tree
(** Which happens-before oracle answers the detector's SP queries.
    [Sp_fused] (the default) is the fused English/Hebrew order; the
    clock oracles ({!Spr_hb.Stream_clock}) track happens-before
    directly on SPAWN/RETURN/SYNC/THREAD frames — an independent code
    path whose verdicts must stay byte-identical. *)

val create : ?shards:int -> ?batch:int -> ?oracle:oracle -> ?runner:runner -> unit -> t
(** [shards] (default 1) partitions the address space across that many
    domains ([shards - 1] worker domains are spawned unless [runner]
    is given); [batch] (default 8192) is the per-shard batch capacity
    in accesses.  @raise Invalid_argument if [shards] is outside
    [1, 64], [batch < 1], or a clock [oracle] is combined with
    [shards > 1] (sharding defers queries past the evolving clock). *)

val shards : t -> int

val run_string : ?collect:bool -> t -> string -> (program_result list, Codec.error) result
(** Ingest a complete trace.  With [collect:false] race lists are not
    materialized (throughput mode; totals still accumulate in
    {!stats}).  Any malformed input yields [Error] — never an
    exception, never a partial result — and leaves the server ready
    for the next trace.  Publishes [ingest/*] counters to
    {!Spr_obs.Sharded.default}, including per-shard
    [ingest/shard<i>/accesses]. *)

val run_file : ?collect:bool -> t -> string -> (program_result list, Codec.error) result
(** {!run_string} on a file's contents; unreadable files surface as
    [Error] too. *)

val drive : t -> string -> unit
(** The allocation-gate entry: {!run_string} with no result
    collection, no counter publication and no [result] boxing — a
    steady-state call allocates zero minor words on a race-free trace.
    @raise Codec.Corrupt on malformed input. *)

val stats : t -> stats

val close : t -> unit
(** Join the worker domains.  Idempotent. *)
