(** The [.spr-trace] wire format: a stream of fork-join execution
    events as LEB128-varint frames ({!Spr_util.Varint}).

    A trace file is

    {v magic "SPRTRACE1\n" · version · program · program · ... v}

    and each program is one [PROG] header frame (thread count, location
    count, parse-tree node budget — the decoder's sizing hints), a body
    of structural and access frames emitted in serial (left-to-right)
    execution order, and a [PROG_END] trailer carrying the body's frame
    count as a corruption tripwire:

    - [THREAD tid cost] — the thread starts executing; subsequent
      access frames belong to it
    - [READ loc] / [WRITE loc] — a shared-memory access by the current
      thread
    - [READL loc k l1..lk] / [WRITEL ...] — ditto, holding [k] locks
    - [SPAWN] — push a child procedure (its frames follow inline)
    - [RETURN] — the child procedure ended; resume the parent block
    - [SYNC] — join everything spawned in the current block; a new
      sync block begins

    The body is exactly a pre-order serialization of the program's
    canonical parse-tree walk, which is why the streaming server can
    rebuild SP relationships on the fly with no lookahead: every frame
    advances the English/Hebrew orders the same way the in-process
    serial driver does.

    Encoding and decoding are allocation-free per frame ([put]/[get]
    are pure-int; capture appends to one scratch [Buffer]).  All
    decode-side errors — truncation, bad magic, unknown tags, hint or
    budget mismatches — surface as {!Corrupt} with the byte offset and
    frame ordinal, never as partial silent results. *)

val magic : string
(** ["SPRTRACE1\n"]. *)

val version : int

(** Frame tags.  Part of the on-disk format; never renumber. *)

val tag_prog : int

val tag_thread : int

val tag_read : int

val tag_write : int

val tag_read_locked : int

val tag_write_locked : int

val tag_spawn : int

val tag_return : int

val tag_sync : int

val tag_prog_end : int

(** Sanity caps on [PROG] header hints, so a corrupted or hostile
    header cannot make the decoder allocate unbounded arrays before
    the body betrays it. *)

val max_threads : int

val max_locs : int

val max_nodes : int

val max_locks_held : int

type error = {
  offset : int;  (** byte offset into the trace where decoding failed *)
  frame : int;  (** 0-based ordinal of the frame being decoded *)
  msg : string;
}

exception Corrupt of error

val corrupt : offset:int -> frame:int -> ('a, unit, string, 'b) format4 -> 'a
(** [corrupt ~offset ~frame fmt ...] raises {!Corrupt}. *)

val pp_error : Format.formatter -> error -> unit
(** ["offset N (frame K): msg"]. *)

val check_header : string -> int ref -> unit
(** Verify magic + version at [!pos], advancing past them.
    @raise Corrupt on mismatch or truncation. *)

val write_header : Buffer.t -> unit

val encode_program : Buffer.t -> Spr_prog.Fj_program.t -> unit
(** Append one program (header + body + trailer) in serial execution
    order. *)

val capture : Spr_prog.Fj_program.t list -> string
(** A complete trace: header + each program in order. *)

val capture_file : string -> Spr_prog.Fj_program.t list -> int
(** Write {!capture} to a file; returns the byte count. *)

val read_file : string -> string
(** Slurp a trace file ([Sys_error] propagates). *)
