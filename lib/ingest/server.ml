module V = Spr_util.Varint
module D = Spr_race.Detector
module Sp = Spr_core.Sp_order_fused
module Hook = Spr_schedhook.Hook
module Sharded = Spr_obs.Sharded

type runner = (unit -> unit) array -> unit

(* Which happens-before oracle answers the detector's SP queries.  The
   default drives the fused English/Hebrew order; the clock oracles
   track happens-before directly on the frame structure
   ({!Spr_hb.Stream_clock}) and exist to pin, byte for byte, that a
   vector or tree clock reaches the same verdicts through a completely
   independent code path. *)
type oracle = Sp_fused | Hb_vector | Hb_tree

type program_result = {
  index : int;
  threads : int;
  accesses : int;
  events : int;
  races : D.race list;
  racy_locs : int list;
  sp_queries : int;
}

type stats = {
  programs : int;
  events : int;
  accesses : int;
  races : int;
  sp_queries : int;
  flushes : int;
}

(* All decode-loop state lives in mutable fields (plus the one [int
   ref] the varint reader wants), and the decode functions below are
   top-level and tail-recursive: a steady-state [drive] allocates no
   refs, no closures, no frames. *)
type t = {
  nshards : int;
  batch : int;
  run_tasks : runner;
  pool : Shard.Pool.pool option;
  shard_arr : Shard.t array;  (* empty when nshards = 1 *)
  tasks : (unit -> unit) array;  (* drain thunks, built once *)
  sp : Sp.t;
  clock : Spr_hb.Stream_clock.t option;  (* Some iff a clock oracle *)
  leaf : int array ref;  (* tid -> leaf node id, -1 = not yet run *)
  precedes : executed:int -> current:int -> bool;
  mutable det : D.t;  (* the single-shard detector *)
  mutable det_locs : int;
  mutable pctx : int array;  (* per call frame: current procedure context *)
  mutable resume : int array;  (* per call frame: continuation after RETURN *)
  pos : int ref;
  (* Per-program decode state. *)
  mutable depth : int;
  mutable ictx : int;  (* context the next item splices under *)
  mutable cur_tid : int;  (* -1 between THREAD frames *)
  mutable next : int;  (* next free node id *)
  mutable nodes_bound : int;
  mutable p_threads : int;
  mutable p_locs : int;
  mutable width : int;  (* address-partition width (sharded) *)
  mutable p_events : int;
  mutable p_accesses : int;
  mutable frame : int;  (* frame ordinal, for diagnostics *)
  mutable seq : int;  (* global access sequence number *)
  mutable index : int;  (* program ordinal in the current trace *)
  mutable acc : program_result list;  (* collected results, reversed *)
  (* Aggregates since create. *)
  mutable a_programs : int;
  mutable a_events : int;
  mutable a_accesses : int;
  mutable a_races : int;
  mutable a_queries : int;
  mutable a_flushes : int;
  shard_acc : int array;  (* per-shard accesses drained, cumulative *)
  (* Sharded counters, resolved once. *)
  c_programs : Sharded.counter;
  c_events : Sharded.counter;
  c_accesses : Sharded.counter;
  c_races : Sharded.counter;
  c_queries : Sharded.counter;
  c_flushes : Sharded.counter;
  c_shard : Sharded.counter array;
}

let shards t = t.nshards

let create ?(shards = 1) ?(batch = 8192) ?(oracle = Sp_fused) ?runner () =
  if shards < 1 || shards > 64 then
    invalid_arg "Server.create: shards must be in [1, 64]";
  if batch < 1 then invalid_arg "Server.create: batch must be positive";
  (* Sharding defers shadow queries into batch drains, but a clock
     oracle answers against the one evolving active clock — by drain
     time it has moved past the access.  The fused order keeps every
     node's label live, so only it supports deferred queries. *)
  if oracle <> Sp_fused && shards > 1 then
    invalid_arg "Server.create: clock oracles (hb-vector, hb-tree) require shards = 1";
  let sp = Sp.create_raw () in
  Sp.reset sp ~nodes:1 ~root:0;
  let leaf = ref (Array.make 64 (-1)) in
  let clock =
    match oracle with
    | Sp_fused -> None
    | Hb_vector -> Some (Spr_hb.Stream_clock.vector ())
    | Hb_tree -> Some (Spr_hb.Stream_clock.tree ())
  in
  let precedes =
    match clock with
    | Some c -> c.Spr_hb.Stream_clock.precedes
    | None ->
        fun ~executed ~current ->
          let l = !leaf in
          Sp.precedes_id sp l.(executed) l.(current)
  in
  let shard_arr =
    if shards = 1 then [||]
    else Array.init shards (fun id -> Shard.create ~id ~precedes ())
  in
  let pool, run_tasks =
    if shards = 1 then (None, fun _ -> ())
    else
      match runner with
      | Some f -> (None, f)
      | None ->
          let p = Shard.Pool.create ~workers:(shards - 1) in
          (Some p, Shard.Pool.run p)
  in
  let reg = Sharded.default in
  {
    nshards = shards;
    batch;
    run_tasks;
    pool;
    shard_arr;
    tasks = Array.map (fun sh () -> Shard.drain sh) shard_arr;
    sp;
    clock;
    leaf;
    precedes;
    det = D.create ~locs:1 ~precedes ();
    det_locs = 1;
    pctx = Array.make 64 0;
    resume = Array.make 64 0;
    pos = ref 0;
    depth = 0;
    ictx = 0;
    cur_tid = -1;
    next = 0;
    nodes_bound = 0;
    p_threads = 0;
    p_locs = 0;
    width = 1;
    p_events = 0;
    p_accesses = 0;
    frame = 0;
    seq = 0;
    index = 0;
    acc = [];
    a_programs = 0;
    a_events = 0;
    a_accesses = 0;
    a_races = 0;
    a_queries = 0;
    a_flushes = 0;
    shard_acc = Array.make shards 0;
    c_programs = Sharded.counter reg "ingest/programs";
    c_events = Sharded.counter reg "ingest/events";
    c_accesses = Sharded.counter reg "ingest/accesses";
    c_races = Sharded.counter reg "ingest/races";
    c_queries = Sharded.counter reg "ingest/sp_queries";
    c_flushes = Sharded.counter reg "ingest/flushes";
    c_shard =
      Array.init shards (fun i ->
          Sharded.counter reg (Printf.sprintf "ingest/shard%d/accesses" i));
  }

let close t = match t.pool with None -> () | Some p -> Shard.Pool.shutdown p

(* --- Streaming SP construction ------------------------------------ *)

let corrupt_here t fmt = Codec.corrupt ~offset:!(t.pos) ~frame:(t.frame - 1) fmt

let alloc2 t =
  if t.next + 2 > t.nodes_bound then
    corrupt_here t "node budget exhausted (header declared %d nodes)" t.nodes_bound;
  let n = t.next in
  t.next <- n + 2;
  n

(* Start a new sync block of the procedure on top of the call stack:
   S(block, rest) under the procedure context, then descend into
   [block].  The extra S-nodes this introduces relative to the
   canonical parse tree are precedence-transparent — an S-composition
   with an empty continuation relates its left subtree to the rest of
   the walk exactly as the canonical shape does. *)
let block_split t =
  let b = alloc2 t in
  Sp.enter t.sp ~parent:t.pctx.(t.depth - 1) ~left:b ~right:(b + 1) ~parallel:false;
  t.pctx.(t.depth - 1) <- b + 1;
  t.ictx <- b;
  t.cur_tid <- -1

let ensure_frames t depth =
  if depth >= Array.length t.pctx then begin
    let cap = max 64 (2 * (depth + 1)) in
    let np = Array.make cap 0 and nr = Array.make cap 0 in
    Array.blit t.pctx 0 np 0 (Array.length t.pctx);
    Array.blit t.resume 0 nr 0 (Array.length t.resume);
    t.pctx <- np;
    t.resume <- nr
  end

(* --- The frame loop ----------------------------------------------- *)

let check_access t loc =
  if t.cur_tid < 0 then corrupt_here t "access frame outside a running thread";
  if loc < 0 || loc >= t.p_locs then
    corrupt_here t "access location %d out of range (header declared %d)" loc t.p_locs

let flush t =
  Hook.yield ~layer:"ingest" ~name:"flush-publish" ();
  t.a_flushes <- t.a_flushes + 1;
  t.run_tasks t.tasks;
  Hook.yield ~layer:"ingest" ~name:"flush-join" ()

let record_access t ~loc ~write =
  check_access t loc;
  if t.nshards = 1 then D.access_raw t.det ~current:t.cur_tid ~loc ~write
  else begin
    let sh = t.shard_arr.(loc / t.width) in
    Shard.push sh ~loc ~write ~tid:t.cur_tid ~seq:t.seq;
    if Shard.is_full sh then flush t
  end;
  t.seq <- t.seq + 1;
  t.p_accesses <- t.p_accesses + 1

let skip_locks t s =
  let k = V.get s t.pos in
  if k < 0 || k > Codec.max_locks_held then
    corrupt_here t "implausible lock count %d" k;
  for _ = 1 to k do
    ignore (V.get s t.pos)
  done

(* Decode body frames until PROG_END.  Tail-recursive: the OCaml
   compiler turns this into a loop, so a million-frame program costs
   no stack and no allocation. *)
let rec body t s =
  t.frame <- t.frame + 1;
  let tag = V.get s t.pos in
  if tag = Codec.tag_read then begin
    t.p_events <- t.p_events + 1;
    let loc = V.get s t.pos in
    record_access t ~loc ~write:false;
    body t s
  end
  else if tag = Codec.tag_write then begin
    t.p_events <- t.p_events + 1;
    let loc = V.get s t.pos in
    record_access t ~loc ~write:true;
    body t s
  end
  else if tag = Codec.tag_thread then begin
    t.p_events <- t.p_events + 1;
    let tid = V.get s t.pos in
    let _cost = V.get s t.pos in
    if tid < 0 || tid >= t.p_threads then
      corrupt_here t "thread id %d out of range (header declared %d)" tid t.p_threads;
    let l = !(t.leaf) in
    if l.(tid) >= 0 then corrupt_here t "duplicate THREAD frame for tid %d" tid;
    let n = alloc2 t in
    Sp.enter t.sp ~parent:t.ictx ~left:n ~right:(n + 1) ~parallel:false;
    l.(tid) <- n;
    t.ictx <- n + 1;
    t.cur_tid <- tid;
    (match t.clock with Some c -> c.Spr_hb.Stream_clock.thread tid | None -> ());
    body t s
  end
  else if tag = Codec.tag_spawn then begin
    t.p_events <- t.p_events + 1;
    let n = alloc2 t in
    Sp.enter t.sp ~parent:t.ictx ~left:n ~right:(n + 1) ~parallel:true;
    ensure_frames t t.depth;
    t.pctx.(t.depth) <- n;
    t.resume.(t.depth) <- n + 1;
    t.depth <- t.depth + 1;
    block_split t;
    (match t.clock with Some c -> c.Spr_hb.Stream_clock.spawn () | None -> ());
    body t s
  end
  else if tag = Codec.tag_return then begin
    t.p_events <- t.p_events + 1;
    if t.depth <= 1 then corrupt_here t "RETURN without a matching SPAWN";
    t.depth <- t.depth - 1;
    t.ictx <- t.resume.(t.depth);
    t.cur_tid <- -1;
    (match t.clock with Some c -> c.Spr_hb.Stream_clock.return_ () | None -> ());
    body t s
  end
  else if tag = Codec.tag_sync then begin
    t.p_events <- t.p_events + 1;
    block_split t;
    (match t.clock with Some c -> c.Spr_hb.Stream_clock.sync () | None -> ());
    body t s
  end
  else if tag = Codec.tag_read_locked || tag = Codec.tag_write_locked then begin
    t.p_events <- t.p_events + 1;
    let loc = V.get s t.pos in
    skip_locks t s;
    (* Locks are carried for future lock-aware modes; the determinacy
       protocol checks the access like any other. *)
    record_access t ~loc ~write:(tag = Codec.tag_write_locked);
    body t s
  end
  else if tag = Codec.tag_prog_end then begin
    let claimed = V.get s t.pos in
    if claimed <> t.p_events then
      corrupt_here t "event-count mismatch (trailer says %d, decoded %d)" claimed
        t.p_events;
    if t.depth <> 1 then
      corrupt_here t "PROG_END with %d unreturned spawn frame(s)" (t.depth - 1);
    if t.next <> t.nodes_bound then
      corrupt_here t "node-budget mismatch (header declared %d, walk used %d)"
        t.nodes_bound t.next;
    if t.nshards > 1 then flush t
  end
  else corrupt_here t "unknown frame tag %d" tag

(* --- Per-program setup and teardown ------------------------------- *)

let start_program t s =
  let threads = V.get s t.pos in
  let locs = V.get s t.pos in
  let nodes = V.get s t.pos in
  (* Decode-side allocation is proportional to these hints, so a
     corrupted header must not be able to demand gigabytes the body
     can never justify: every thread costs a >= 3-byte THREAD frame,
     the node budget is 3 + 2*threads + 4*spawns + 2*syncs <= 3 + 4x
     the body bytes, and shadow memory gets a 64x sparseness allowance
     (locations are declared as [1 + max_loc], so a short trace may
     legitimately address a moderately larger space than it fills). *)
  let remaining = String.length s - !(t.pos) in
  if threads < 0 || threads > Codec.max_threads || threads > remaining then
    corrupt_here t "implausible thread count %d" threads;
  if locs < 0 || locs > Codec.max_locs || locs > 64 * remaining then
    corrupt_here t "implausible location count %d" locs;
  if nodes < 1 || nodes > Codec.max_nodes || nodes > (4 * remaining) + 3 then
    corrupt_here t "implausible node budget %d" nodes;
  t.p_threads <- threads;
  t.p_locs <- locs;
  t.nodes_bound <- nodes;
  Sp.reset t.sp ~nodes ~root:0;
  if threads > Array.length !(t.leaf) then t.leaf := Array.make (2 * threads) (-1)
  else Array.fill !(t.leaf) 0 threads (-1);
  if t.nshards = 1 then begin
    let locs = max 1 locs in
    if locs > t.det_locs then begin
      t.det <- D.create ~locs ~precedes:t.precedes ();
      t.det_locs <- locs
    end
    else D.reset t.det
  end
  else begin
    let width = max 1 ((locs + t.nshards - 1) / t.nshards) in
    t.width <- width;
    Array.iteri
      (fun i sh -> Shard.prepare sh ~base:(i * width) ~width ~batch:t.batch)
      t.shard_arr
  end;
  t.depth <- 1;
  t.pctx.(0) <- 0;
  t.next <- 1;
  t.ictx <- 0;
  t.cur_tid <- -1;
  t.p_events <- 0;
  t.p_accesses <- 0;
  (match t.clock with Some c -> c.Spr_hb.Stream_clock.reset () | None -> ());
  block_split t

(* Races/queries for the just-finished program, without materializing
   lists (throughput and gate paths). *)
let program_race_count t =
  if t.nshards = 1 then D.race_count t.det
  else Array.fold_left (fun acc sh -> acc + D.race_count (Shard.detector sh)) 0 t.shard_arr

let program_query_count t =
  if t.nshards = 1 then D.query_count t.det
  else
    Array.fold_left (fun acc sh -> acc + D.query_count (Shard.detector sh)) 0 t.shard_arr

(* Merge the per-shard race lists back into serial detection order:
   each report carries the sequence number of the access that exposed
   it; one access lives in exactly one shard, so ordering by
   (sequence, within-shard rank) is total and equals the order the
   single-shard detector reports. *)
let merged_races t =
  if t.nshards = 1 then D.races t.det
  else begin
    let tagged = ref [] in
    Array.iter
      (fun sh ->
        let base = Shard.base sh in
        let seqs = Shard.race_seqs sh in
        List.iteri
          (fun i (r : D.race) ->
            tagged :=
              (Spr_util.Vec.get seqs i, i, { r with D.loc = r.D.loc + base }) :: !tagged)
          (D.races (Shard.detector sh)))
      t.shard_arr;
    List.sort
      (fun (s1, i1, _) (s2, i2, _) -> if s1 <> s2 then compare s1 s2 else compare i1 i2)
      !tagged
    |> List.map (fun (_, _, r) -> r)
  end

let finish_program t ~collect =
  let races_n = program_race_count t in
  let queries = program_query_count t in
  t.a_programs <- t.a_programs + 1;
  t.a_events <- t.a_events + t.p_events;
  t.a_accesses <- t.a_accesses + t.p_accesses;
  t.a_races <- t.a_races + races_n;
  t.a_queries <- t.a_queries + queries;
  if t.nshards > 1 then
    Array.iteri
      (fun i sh -> t.shard_acc.(i) <- t.shard_acc.(i) + Shard.accesses_drained sh)
      t.shard_arr;
  if collect then begin
    let races = merged_races t in
    let racy_locs = List.sort_uniq compare (List.map (fun r -> r.D.loc) races) in
    t.acc <-
      {
        index = t.index;
        threads = t.p_threads;
        accesses = t.p_accesses;
        events = t.p_events;
        races;
        racy_locs;
        sp_queries = queries;
      }
      :: t.acc
  end;
  t.index <- t.index + 1

(* Top-level trace loop: one PROG..PROG_END per iteration. *)
let rec programs t s ~collect =
  if !(t.pos) < String.length s then begin
    t.frame <- t.frame + 1;
    let tag = V.get s t.pos in
    if tag <> Codec.tag_prog then
      corrupt_here t "expected a PROG frame, got tag %d" tag;
    start_program t s;
    body t s;
    finish_program t ~collect;
    programs t s ~collect
  end

let ingest t s ~collect =
  t.acc <- [];
  t.pos := 0;
  t.frame <- 0;
  t.index <- 0;
  Codec.check_header s t.pos;
  try programs t s ~collect
  with V.Truncated ->
    Codec.corrupt ~offset:(String.length s) ~frame:t.frame
      "truncated varint (unexpected end of trace)"

let drive t s = ingest t s ~collect:false

let publish t ~programs0 ~events0 ~accesses0 ~races0 ~queries0 ~flushes0 ~shard0 =
  Sharded.add t.c_programs (t.a_programs - programs0);
  Sharded.add t.c_events (t.a_events - events0);
  Sharded.add t.c_accesses (t.a_accesses - accesses0);
  Sharded.add t.c_races (t.a_races - races0);
  Sharded.add t.c_queries (t.a_queries - queries0);
  Sharded.add t.c_flushes (t.a_flushes - flushes0);
  Array.iteri (fun i c -> Sharded.add c (t.shard_acc.(i) - shard0.(i))) t.c_shard

let run_string ?(collect = true) t s =
  let programs0 = t.a_programs
  and events0 = t.a_events
  and accesses0 = t.a_accesses
  and races0 = t.a_races
  and queries0 = t.a_queries
  and flushes0 = t.a_flushes in
  let shard0 = Array.copy t.shard_acc in
  let out =
    try
      ingest t s ~collect;
      Ok (List.rev t.acc)
    with Codec.Corrupt e -> Error e
  in
  publish t ~programs0 ~events0 ~accesses0 ~races0 ~queries0 ~flushes0 ~shard0;
  out

let run_file ?collect t path =
  match Codec.read_file path with
  | s -> run_string ?collect t s
  | exception Sys_error msg -> Error { Codec.offset = 0; frame = 0; msg }

let stats t =
  {
    programs = t.a_programs;
    events = t.a_events;
    accesses = t.a_accesses;
    races = t.a_races;
    sp_queries = t.a_queries;
    flushes = t.a_flushes;
  }
