module D = Spr_race.Detector
module Hook = Spr_schedhook.Hook

type t = {
  id : int;
  precedes : executed:int -> current:int -> bool;
  mutable det : D.t;
  mutable det_width : int;  (* shadow capacity; grows monotonically *)
  mutable base_ : int;
  mutable buf : int array;  (* 3 ints per entry: loc<<1|write, tid, seq *)
  mutable cap : int;  (* batch capacity, in entries *)
  mutable len : int;
  seqs : int Spr_util.Vec.t;  (* race seq numbers, aligned with det races *)
  mutable drained : int;
}

let create ~id ~precedes () =
  {
    id;
    precedes;
    det = D.create ~locs:1 ~precedes ();
    det_width = 1;
    base_ = 0;
    buf = [||];
    cap = 0;
    len = 0;
    seqs = Spr_util.Vec.create ();
    drained = 0;
  }

let prepare t ~base ~width ~batch =
  if width > t.det_width then begin
    t.det <- D.create ~locs:width ~precedes:t.precedes ();
    t.det_width <- width
  end
  else D.reset t.det;
  if batch * 3 > Array.length t.buf then t.buf <- Array.make (batch * 3) 0;
  t.cap <- batch;
  t.base_ <- base;
  t.len <- 0;
  Spr_util.Vec.clear t.seqs;
  t.drained <- 0

let base t = t.base_

let push t ~loc ~write ~tid ~seq =
  let k = t.len * 3 in
  t.buf.(k) <- ((loc - t.base_) lsl 1) lor (if write then 1 else 0);
  t.buf.(k + 1) <- tid;
  t.buf.(k + 2) <- seq;
  t.len <- t.len + 1

let is_full t = t.len >= t.cap

let pending t = t.len

let drain t =
  Hook.yield ~layer:"ingest" ~name:"drain-batch" ();
  let n = t.len in
  let buf = t.buf in
  let det = t.det in
  for i = 0 to n - 1 do
    if i > 0 && i land 1023 = 0 then
      Hook.yield ~layer:"ingest" ~name:"drain-step" ();
    let k = i * 3 in
    let lw = buf.(k) in
    let before = D.race_count det in
    D.access_raw det ~current:buf.(k + 1) ~loc:(lw lsr 1) ~write:(lw land 1 = 1);
    (* A single access can expose up to three races (writer + two
       readers); stamp each with the access's sequence number so the
       server can restore global detection order. *)
    for _ = D.race_count det - before downto 1 do
      Spr_util.Vec.push t.seqs buf.(k + 2)
    done
  done;
  t.drained <- t.drained + n;
  t.len <- 0

let detector t = t.det

let race_seqs t = t.seqs

let accesses_drained t = t.drained

(* --- Worker-domain pool ------------------------------------------- *)

module Pool = struct
  type pool = {
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable gen : int;  (* bumped per broadcast *)
    mutable tasks : (unit -> unit) array;
    mutable remaining : int;
    mutable quit : bool;
    mutable domains : unit Domain.t array;
  }

  let worker p slot () =
    let seen = ref 0 in
    let stop = ref false in
    while not !stop do
      Mutex.lock p.m;
      while p.gen = !seen && not p.quit do
        Condition.wait p.work_cv p.m
      done;
      if p.quit then begin
        Mutex.unlock p.m;
        stop := true
      end
      else begin
        seen := p.gen;
        let tasks = p.tasks in
        Mutex.unlock p.m;
        let slot_task = slot + 1 in
        if slot_task < Array.length tasks then tasks.(slot_task) ();
        Mutex.lock p.m;
        p.remaining <- p.remaining - 1;
        if p.remaining = 0 then Condition.signal p.done_cv;
        Mutex.unlock p.m
      end
    done

  let create ~workers =
    let p =
      {
        m = Mutex.create ();
        work_cv = Condition.create ();
        done_cv = Condition.create ();
        gen = 0;
        tasks = [||];
        remaining = 0;
        quit = false;
        domains = [||];
      }
    in
    p.domains <- Array.init (max 0 workers) (fun i -> Domain.spawn (worker p i));
    p

  let run p tasks =
    let workers = Array.length p.domains in
    if Array.length tasks > workers + 1 then
      invalid_arg "Shard.Pool.run: more tasks than domains";
    Mutex.lock p.m;
    p.tasks <- tasks;
    p.gen <- p.gen + 1;
    p.remaining <- workers;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    if Array.length tasks > 0 then tasks.(0) ();
    Mutex.lock p.m;
    while p.remaining > 0 do
      Condition.wait p.done_cv p.m
    done;
    Mutex.unlock p.m

  let shutdown p =
    Mutex.lock p.m;
    p.quit <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
end
