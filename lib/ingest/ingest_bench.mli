(** The ingestion throughput harness, shared by [spingest bench] and
    [bench/exp_ingest.ml] so the CLI and the regression-gated
    experiment measure exactly the same thing.

    The workload is "spmix": a deterministic rotation of
    divide-and-conquer reduction, mergesort, shared-reader fan-out and
    seeded random programs, concatenated until the captured trace
    carries at least [events] access events — many programs through
    one resident server, the ROADMAP's "millions of users" shape. *)

type result = {
  shards : int;
  samples : float list;  (** ns per access event, one per repeat *)
  programs : int;
  access_events : int;
  total_events : int;  (** all body frames (structure + accesses) *)
  races : int;
  sp_queries : int;
  trace_bytes : int;
}

val spmix : events:int -> seed:int -> Spr_prog.Fj_program.t list
(** Deterministic program mix with >= [events] total accesses. *)

val capture_spmix : events:int -> seed:int -> string
(** {!spmix} through {!Codec.capture}. *)

val measure : ?repeats:int -> ?batch:int -> shards:int -> string -> result
(** Ingest the trace [repeats] times (default 5) in throughput mode
    (plus one collected warm-up run that fills the deterministic
    counters), on a fresh server with that shard count.  Fails on a
    malformed trace. *)

val events_per_sec : float -> float
(** Convert a ns-per-access median to access events/sec. *)
