(* Arena parse tree derived from a fork-join program.

   Same canonical shape as {!Prog_tree} — a [Spawn] becomes a P-node
   over (child procedure, block continuation), sync blocks S-compose
   left to right, a block ending in [Spawn] gets a synthetic
   continuation leaf — but built into an {!Spr_sptree.Sp_arena} with
   flat int side-tables instead of boxed nodes, options and closures.
   [build] rewinds the holder and rebuilds in place, so repeated runs
   over same-shape programs allocate zero minor words once the arrays
   have grown to size (the end-to-end alloc-gate drives exactly this). *)

open Spr_sptree

type t = {
  arena : Sp_arena.t;
  mutable root : int;
  mutable leaf_of_tid : int array;  (* tid -> arena node id *)
  mutable tid_of_leaf : int array;  (* arena node id -> tid, -1 for synthetic *)
  mutable nthreads : int;
  mutable synthetic : int;
}

let create () =
  {
    arena = Sp_arena.create ();
    root = -1;
    leaf_of_tid = Array.make 64 (-1);
    tid_of_leaf = Array.make 64 (-1);
    nthreads = 0;
    synthetic = 0;
  }

(* Top-level recursion with explicit arguments — nested closures would
   allocate on every build. *)
let rec build_proc t (p : Fj_program.proc) = build_blocks t p.Fj_program.blocks 0

and build_blocks t blocks bi =
  let blk_tree = build_items t blocks.(bi) 0 in
  if bi = Array.length blocks - 1 then blk_tree
  else Sp_arena.series t.arena blk_tree (build_blocks t blocks (bi + 1))

and build_items t blk i =
  if i >= Array.length blk then begin
    (* Only reached when a block ends in a Spawn: synthetic leaf. *)
    t.synthetic <- t.synthetic + 1;
    Sp_arena.leaf t.arena
  end
  else
    match blk.(i) with
    | Fj_program.Run u ->
        let leaf = Sp_arena.leaf t.arena in
        t.leaf_of_tid.(u.Fj_program.tid) <- leaf;
        if i = Array.length blk - 1 then leaf
        else Sp_arena.series t.arena leaf (build_items t blk (i + 1))
    | Fj_program.Spawn f ->
        let child = build_proc t f in
        let cont = build_items t blk (i + 1) in
        Sp_arena.parallel t.arena child cont

let grow_to a n fill =
  if Array.length a >= n then a
  else Array.make (max n (2 * Array.length a)) fill

let build t program =
  Sp_arena.reset t.arena;
  let nthreads = Fj_program.thread_count program in
  t.leaf_of_tid <- grow_to t.leaf_of_tid nthreads (-1);
  t.nthreads <- nthreads;
  t.synthetic <- 0;
  t.root <- build_proc t (Fj_program.main program);
  let slots = Sp_arena.slots t.arena in
  if Array.length t.tid_of_leaf < slots then
    t.tid_of_leaf <- Array.make (max slots (2 * Array.length t.tid_of_leaf)) (-1)
  else Array.fill t.tid_of_leaf 0 (Array.length t.tid_of_leaf) (-1);
  for tid = 0 to nthreads - 1 do
    t.tid_of_leaf.(t.leaf_of_tid.(tid)) <- tid
  done

let of_program program =
  let t = create () in
  build t program;
  t

let arena t = t.arena

let root t = t.root

let node_slots t = Sp_arena.slots t.arena

let leaf_of_thread t tid =
  if tid < 0 || tid >= t.nthreads then invalid_arg "Prog_arena.leaf_of_thread";
  t.leaf_of_tid.(tid)

let thread_of_leaf t n = t.tid_of_leaf.(n)

let thread_count t = t.nthreads

let synthetic_count t = t.synthetic
