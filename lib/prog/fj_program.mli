(** Fork-join programs in canonical Cilk form (paper, Figure 10).

    A {e program} is a tree of procedures.  A procedure is a sequence
    of {e sync blocks}; a sync block is a sequence of items — [Run] a
    thread (a serial block of [cost] instructions, possibly touching
    shared memory) or [Spawn] a child procedure — terminated by an
    implicit [sync] that joins every child spawned in the block.

    This is the input representation for the work-stealing simulator
    ({!Spr_sched.Sim}) and SP-hybrid; {!Prog_tree} derives the
    corresponding SP parse tree (with canonical shape: a [Spawn]
    becomes a P-node whose left subtree is the child procedure and
    whose right subtree is the continuation of the block), which is
    what the serial algorithms and the reference relation consume. *)

type access = {
  loc : int;
  write : bool;
  locks : int list;  (** locks held at the access (sorted; for the All-Sets-style detector) *)
}
(** One shared-memory access performed by a thread. *)

type thread = {
  tid : int;  (** dense id within the program *)
  cost : int;  (** instruction count; >= 1 *)
  accesses : access array;  (** accesses, in program order *)
}

type item = Run of thread | Spawn of proc

and proc = { pid : int; blocks : item array array }

type t

(** Programs are assembled bottom-up; ids are dense per program. *)
module Builder : sig
  type b

  val create : unit -> b

  val thread : b -> ?accesses:access list -> cost:int -> unit -> thread
  (** A fresh thread.  @raise Invalid_argument if [cost < 1]. *)

  val proc : b -> item list list -> proc
  (** A procedure from its sync blocks.  Blocks must be non-empty and
      there must be at least one block. *)

  val finish : b -> proc -> t
  (** Close the builder; [proc] becomes the main procedure. *)
end

val main : t -> proc

val thread_count : t -> int

val proc_count : t -> int

val threads : t -> thread array
(** All threads indexed by [tid]. *)

val work : t -> int
(** T{_1}: total instruction count of all threads. *)

val access_count : t -> int
(** Total shared-memory accesses across all threads (the event count
    the ingestion benchmarks normalize by). *)

val span : t -> int
(** T{_∞}: critical-path instruction count (computed on the canonical
    parse tree: S adds, P maxes). *)

val spawn_count : t -> int
(** Total number of [Spawn] items (= P-nodes in the canonical parse
    tree). *)

val iter_threads : t -> (thread -> unit) -> unit

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: threads, procs, work, span, parallelism. *)
