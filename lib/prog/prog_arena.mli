(** Arena parse tree of a fork-join program — {!Prog_tree}'s canonical
    shape ([Spawn] → P-node over child/continuation, blocks S-composed
    left to right, synthetic continuation leaf when a block ends in a
    spawn) built into an {!Spr_sptree.Sp_arena} with flat [int]
    side-tables instead of boxed nodes.

    {!build} rebuilds in place: the arena is rewound (O(1)) and the
    tid↔leaf tables refilled, so steady-state rebuilds of same-shape
    programs allocate zero minor words.  This is the front half of the
    zero-allocation race-detection pipeline
    ({!Spr_race.Drivers.Fused}). *)

type t

val create : unit -> t
(** An empty holder; call {!build} before querying. *)

val build : t -> Fj_program.t -> unit
(** Derive the program's parse tree into the holder, reusing all
    internal arrays (they grow monotonically across builds). *)

val of_program : Fj_program.t -> t
(** [create] + [build]. *)

val arena : t -> Spr_sptree.Sp_arena.t

val root : t -> int
(** Arena id of the root node. *)

val node_slots : t -> int
(** Arena high-water mark — bounds every node id; the right size for
    id-indexed side tables. *)

val leaf_of_thread : t -> int -> int
(** Arena leaf id of a tid.
    @raise Invalid_argument out of range. *)

val thread_of_leaf : t -> int -> int
(** tid of an arena leaf id, or [-1] for synthetic leaves. *)

val thread_count : t -> int

val synthetic_count : t -> int
(** Synthetic continuation leaves added (blocks ending in a spawn). *)
