type access = { loc : int; write : bool; locks : int list }

type thread = { tid : int; cost : int; accesses : access array }

type item = Run of thread | Spawn of proc

and proc = { pid : int; blocks : item array array }

type t = { main : proc; threads_arr : thread array; nprocs : int }

module Builder = struct
  type b = {
    mutable next_tid : int;
    mutable next_pid : int;
    thr : thread Spr_util.Vec.t;
    mutable closed : bool;
  }

  let create () = { next_tid = 0; next_pid = 0; thr = Spr_util.Vec.create (); closed = false }

  let check_open b = if b.closed then invalid_arg "Fj_program.Builder: already finished"

  let thread b ?(accesses = []) ~cost () =
    check_open b;
    if cost < 1 then invalid_arg "Fj_program.Builder.thread: cost must be >= 1";
    let t = { tid = b.next_tid; cost; accesses = Array.of_list accesses } in
    b.next_tid <- b.next_tid + 1;
    Spr_util.Vec.push b.thr t;
    t

  let proc b blocks =
    check_open b;
    if blocks = [] then invalid_arg "Fj_program.Builder.proc: need at least one block";
    if List.exists (fun blk -> blk = []) blocks then
      invalid_arg "Fj_program.Builder.proc: empty sync block";
    let p = { pid = b.next_pid; blocks = Array.of_list (List.map Array.of_list blocks) } in
    b.next_pid <- b.next_pid + 1;
    p

  let finish b main =
    check_open b;
    b.closed <- true;
    { main; threads_arr = Spr_util.Vec.to_array b.thr; nprocs = b.next_pid }
end

let main t = t.main

let thread_count t = Array.length t.threads_arr

let proc_count t = t.nprocs

let threads t = t.threads_arr

let work t = Array.fold_left (fun acc u -> acc + u.cost) 0 t.threads_arr

let access_count t =
  Array.fold_left (fun acc u -> acc + Array.length u.accesses) 0 t.threads_arr

(* Critical path: a Spawn runs in parallel with the remainder of its
   block; blocks of a procedure are serial. *)
let rec span_proc p =
  Array.fold_left (fun acc blk -> acc + span_items blk 0) 0 p.blocks

and span_items blk i =
  if i >= Array.length blk then 0
  else begin
    match blk.(i) with
    | Run u -> u.cost + span_items blk (i + 1)
    | Spawn f -> max (span_proc f) (span_items blk (i + 1))
  end

let span t = span_proc t.main

let rec spawns_proc p =
  Array.fold_left
    (fun acc blk ->
      Array.fold_left
        (fun acc it -> match it with Run _ -> acc | Spawn f -> acc + 1 + spawns_proc f)
        acc blk)
    0 p.blocks

let spawn_count t = spawns_proc t.main

let iter_threads t f = Array.iter f t.threads_arr

let pp_stats ppf t =
  let w = work t and s = span t in
  Format.fprintf ppf "threads=%d procs=%d work=%d span=%d parallelism=%.1f" (thread_count t)
    (proc_count t) w s
    (float_of_int w /. float_of_int (max 1 s))
