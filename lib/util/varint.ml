exception Truncated

(* Both directions avoid [Int64]: its arithmetic boxes, and these run
   inside loops that are gated at zero minor-heap words.  The int-only
   code is byte-equivalent to the Int64 formulation: a non-negative
   [int] has the same 64-bit pattern as its 63-bit one, and a negative
   [int] sign-extends — bits 0..62 come straight from the OCaml int
   (logical shifts) and bit 63 duplicates bit 62, i.e. the final group
   of the 10-byte encoding is the constant [0x01]. *)

let put buf n =
  if n >= 0 then begin
    let n = ref n in
    let fin = ref false in
    while not !fin do
      let b = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        Buffer.add_char buf (Char.unsafe_chr b);
        fin := true
      end
      else Buffer.add_char buf (Char.unsafe_chr (b lor 0x80))
    done
  end
  else begin
    (* Negative: 64-bit two's complement, always 10 bytes.  Groups 0-8
       cover bits 0..62 (with bit 62 repeated upward by sign
       extension — [lsr] on the 63-bit int already yields exactly those
       bits); group 9 is bit 63, which sign extension makes 1. *)
    for i = 0 to 8 do
      Buffer.add_char buf (Char.unsafe_chr (((n lsr (7 * i)) land 0x7f) lor 0x80))
    done;
    Buffer.add_char buf '\x01'
  end

let get s pos =
  let v = ref 0 and shift = ref 0 and fin = ref false in
  let len = String.length s in
  while not !fin do
    if !pos >= len then raise Truncated;
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    (* Groups at shift >= 63 lie beyond OCaml's int range; dropping
       them is the [Int64.to_int] truncation (shift = 56 still
       contributes bits 56..62, the top of which is the sign bit). *)
    if !shift < 63 then v := !v lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  !v
