(** LEB128 variable-length integers — the shared wire primitive behind
    the flight recorder ({!Spr_obs.Flight}, [.spr-flight]) and the
    trace-ingestion codec ([Spr_ingest.Codec], [.spr-trace]).

    The encoding is the 64-bit two's-complement LEB128: an OCaml [int]
    is sign-extended to 64 bits and emitted 7 bits per byte, low group
    first, high bit of each byte marking continuation.  Non-negative
    ints below 128 take one byte; negative ints always take 10 bytes.
    Decoding truncates back to OCaml's 63-bit [int] exactly the way
    [Int64.to_int] does (bit 62 becomes the sign), so [get] inverts
    [put] for every [int], including [min_int]/[max_int].

    Both directions are allocation-free on the hot path — [put] writes
    into a caller-supplied [Buffer], [get] is pure [int] arithmetic
    over an immutable [string] — which is what lets a streaming decoder
    sustain 10^7+ events/sec without minor-heap traffic. *)

exception Truncated
(** Raised by {!get} when the string ends mid-varint (a byte with the
    continuation bit set was the last one available). *)

val put : Buffer.t -> int -> unit
(** Append the LEB128 encoding of [n].  Byte-identical to the encoding
    the flight recorder has always written. *)

val get : string -> int ref -> int
(** Decode one varint starting at [!pos]; advances [pos] past it.
    Allocation-free.  @raise Truncated if the string ends first. *)
