let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

(* In-place quickselect: after [select a k], a.(k) holds the k-th
   smallest element.  Median-of-three pivoting keeps the recursion
   deterministic (no RNG) and behaves well on the sorted and
   constant-valued inputs the metrics layer produces. *)
let select a k =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let median3 lo hi =
    let mid = lo + ((hi - lo) / 2) in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi) < a.(lo) then swap hi lo;
    if a.(hi) < a.(mid) then swap hi mid;
    a.(mid)
  in
  let rec go lo hi =
    if lo < hi then begin
      let pivot = median3 lo hi in
      (* Three-way partition: [lo, lt) < pivot, [lt, i) = pivot,
         (gt, hi] > pivot.  Essential for heavily repeated values. *)
      let lt = ref lo and i = ref lo and gt = ref hi in
      while !i <= !gt do
        if a.(!i) < pivot then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if a.(!i) > pivot then begin
          swap !i !gt;
          decr gt
        end
        else incr i
      done;
      if k < !lt then go lo (!lt - 1) else if k > !gt then go (!gt + 1) hi
    end
  in
  go 0 (Array.length a - 1)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty input";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let a = Array.copy xs in
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  select a lo;
  (* Read a.(lo) before the second select: selecting for [hi]
     re-partitions the array and may move another (smaller) element of
     the lower partition into slot [lo]. *)
  let vlo = a.(lo) in
  if lo = hi then vlo
  else begin
    select a hi;
    let frac = rank -. float_of_int lo in
    (vlo *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let quantile_counts pairs q =
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile_counts: q out of range";
  let pairs = Array.of_list (List.filter (fun (_, c) -> c > 0) (Array.to_list pairs)) in
  let n = Array.fold_left (fun acc (_, c) -> acc + c) 0 pairs in
  if n = 0 then invalid_arg "Stats.quantile_counts: empty input";
  Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
  (* Value of the multiset's r-th order statistic via cumulative
     counts. *)
  let value_at r =
    let rec go i seen =
      let v, c = pairs.(i) in
      if r < seen + c then v else go (i + 1) (seen + c)
    in
    go 0 0
  in
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then value_at lo
  else begin
    let frac = rank -. float_of_int lo in
    (value_at lo *. (1.0 -. frac)) +. (value_at hi *. frac)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty input";
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0)) xs

let linear_fit points =
  let n = float_of_int (Array.length points) in
  if n < 2.0 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let denom = (n *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = ((n *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. n in
  (slope, intercept)

let fit_power points =
  let logs =
    Array.of_list
      (Array.fold_left
         (fun acc (x, y) -> if x > 0.0 && y > 0.0 then (log x, log y) :: acc else acc)
         [] points
      |> List.rev)
  in
  let k, logc = linear_fit logs in
  (k, exp logc)

let r_squared points (slope, intercept) =
  let ys = Array.map snd points in
  let m = mean ys in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. m) ** 2.0)) 0.0 ys in
  let ss_res =
    Array.fold_left
      (fun acc (x, y) ->
        let fy = (slope *. x) +. intercept in
        acc +. ((y -. fy) ** 2.0))
      0.0 points
  in
  if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)
