(** Small statistics toolkit for the benchmark harness.

    Besides the usual summary statistics, [fit_power] estimates the
    exponent of a power-law relationship, which the benches use to check
    asymptotic claims ("construction is O(n)" shows up as an exponent
    close to 1 of total time against n, i.e. flat per-node cost). *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val median : float array -> float
(** Median (input is not modified). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]]: the interpolated q-th
    quantile, computed by deterministic quickselect (expected O(n), no
    full sort; the input is not modified).  Agrees with
    [percentile xs (100 q)]; property-tested against a sorted-array
    oracle.
    @raise Invalid_argument on an empty array or [q] outside [\[0,1\]]. *)

val quantile_counts : (float * int) array -> float -> float
(** [quantile_counts pairs q] is [quantile] over the multiset in which
    each [(value, count)] pair contributes [count] copies of [value] —
    the form the observability layer's histograms provide.  Pairs with
    non-positive counts are ignored; pair order is irrelevant.
    @raise Invalid_argument when the multiset is empty or [q] is
    outside [\[0,1\]]. *)

val min_max : float array -> float * float

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] is the least-squares [(slope, intercept)]. *)

val fit_power : (float * float) array -> float * float
(** [fit_power points] fits [y = c * x^k] by regression in log-log
    space and returns [(k, c)].  Points with non-positive coordinates
    are ignored. *)

val r_squared : (float * float) array -> float * float -> float
(** [r_squared points (slope, intercept)] is the coefficient of
    determination of the linear fit. *)
