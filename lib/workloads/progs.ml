open Spr_prog
module B = Fj_program.Builder

let fib ?(cost = 4) ~n () =
  let b = B.create () in
  let rec go n =
    if n < 2 then B.proc b [ [ Fj_program.Run (B.thread b ~cost ()) ] ]
    else begin
      let left = go (n - 1) in
      let right = go (n - 2) in
      B.proc b
        [
          [ Fj_program.Spawn left; Fj_program.Spawn right ];
          [ Fj_program.Run (B.thread b ~cost ()) ];
        ]
    end
  in
  B.finish b (go n)

let deep_spawn ?(cost = 2) ~depth () =
  let b = B.create () in
  let leaf_proc () = B.proc b [ [ Fj_program.Run (B.thread b ~cost ()) ] ] in
  let rec go d acc =
    if d = 0 then acc
    else begin
      let p =
        B.proc b [ [ Fj_program.Spawn acc; Fj_program.Run (B.thread b ~cost ()) ] ]
      in
      go (d - 1) p
    end
  in
  B.finish b (go depth (leaf_proc ()))

let wide ?(cost = 3) ~n () =
  let b = B.create () in
  let children =
    List.init n (fun _ ->
        Fj_program.Spawn (B.proc b [ [ Fj_program.Run (B.thread b ~cost ()) ] ]))
  in
  B.finish b (B.proc b [ children @ [ Fj_program.Run (B.thread b ~cost ()) ] ])

let serial ?(cost = 3) ~n () =
  let b = B.create () in
  let blocks = List.init n (fun _ -> [ Fj_program.Run (B.thread b ~cost ()) ]) in
  B.finish b (B.proc b blocks)

let dc_sum ?(buggy = false) ?(grain = 4) ~leaves () =
  if leaves < 1 then invalid_arg "Progs.dc_sum: need at least one leaf";
  let b = B.create () in
  (* Location space: input cells first, then one accumulator per node
     of the reduction tree (allocated on the fly). *)
  let next_acc = ref (leaves * grain) in
  let fresh_acc () =
    let l = !next_acc in
    incr next_acc;
    l
  in
  let read loc = { Fj_program.loc; write = false; locks = [] } in
  let write loc = { Fj_program.loc; write = true; locks = [] } in
  (* Returns (proc, accumulator written by that proc). *)
  let rec go lo count ~parent_acc =
    if count = 1 then begin
      let acc = fresh_acc () in
      let target = match parent_acc with Some a when buggy -> a | _ -> acc in
      let reads = List.init grain (fun k -> read ((lo * grain) + k)) in
      let accesses = reads @ [ write target ] in
      (B.proc b [ [ Fj_program.Run (B.thread b ~accesses ~cost:(grain + 1) ()) ] ], acc)
    end
    else begin
      let acc = fresh_acc () in
      let half = count / 2 in
      let lproc, lacc = go lo half ~parent_acc:(Some acc) in
      let rproc, racc = go (lo + half) (count - half) ~parent_acc:(Some acc) in
      let combine_reads =
        if buggy then [ read acc ] else [ read lacc; read racc ]
      in
      let combine = B.thread b ~accesses:(combine_reads @ [ write acc ]) ~cost:2 () in
      ( B.proc b
          [
            [ Fj_program.Spawn lproc; Fj_program.Spawn rproc ];
            [ Fj_program.Run combine ];
          ],
        acc )
    end
  in
  let main, _ = go 0 leaves ~parent_acc:None in
  B.finish b main

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let mergesort ?(buggy = false) ?(grain = 4) ~n () =
  let n = round_pow2 (max grain n) in
  let b = B.create () in
  let read loc = { Fj_program.loc; write = false; locks = [] } in
  let write loc = { Fj_program.loc; write = true; locks = [] } in
  let scratch lo len =
    (* Correct code uses private scratch [n+lo, n+lo+len); the bug aims
       every merge at the same scratch window. *)
    if buggy then List.init len (fun k -> n + k) else List.init len (fun k -> n + lo + k)
  in
  let rec sort lo len =
    if len <= grain then begin
      (* Leaf: in-place insertion sort of its run. *)
      let accesses =
        List.concat (List.init len (fun k -> [ read (lo + k); write (lo + k) ]))
      in
      B.proc b [ [ Fj_program.Run (B.thread b ~accesses ~cost:(len * 2) ()) ] ]
    end
    else begin
      let half = len / 2 in
      let left = sort lo half in
      let right = sort (lo + half) half in
      (* Merge: read both sorted halves, stream through scratch, write
         back. *)
      let reads = List.init len (fun k -> read (lo + k)) in
      let scratch_ws = List.map write (scratch lo len) in
      let write_back = List.init len (fun k -> write (lo + k)) in
      let merge =
        B.thread b ~accesses:(reads @ scratch_ws @ write_back) ~cost:(len * 3) ()
      in
      B.proc b
        [
          [ Fj_program.Spawn left; Fj_program.Spawn right ];
          [ Fj_program.Run merge ];
        ]
    end
  in
  B.finish b (sort 0 n)

let matmul ?(buggy = false) ?(grain = 2) ~n () =
  let n = round_pow2 (max grain n) in
  let b = B.create () in
  let idx base i j = base + (i * n) + j in
  let a_cell = idx 0
  and b_cell = idx (n * n)
  and c_cell = idx (2 * n * n) in
  let read loc = { Fj_program.loc; write = false; locks = [] } in
  let write loc = { Fj_program.loc; write = true; locks = [] } in
  (* C[ci.., cj..] += A[ai.., aj..] * B[bi.., bj..], blocks of [size]. *)
  let rec mult ci cj ai aj bi bj size =
    if size <= grain then begin
      let cells f di dj = f (di + size - 1) (dj + size - 1) :: [ f di dj ] in
      let accesses =
        List.map read (cells a_cell ai aj)
        @ List.map read (cells b_cell bi bj)
        @ List.concat
            (List.init size (fun i ->
                 List.concat
                   (List.init size (fun j ->
                        [ read (c_cell (ci + i) (cj + j)); write (c_cell (ci + i) (cj + j)) ]))))
      in
      B.proc b [ [ Fj_program.Run (B.thread b ~accesses ~cost:(size * size * 2) ()) ] ]
    end
    else begin
      let h = size / 2 in
      let spawn ci cj ai aj bi bj = Fj_program.Spawn (mult ci cj ai aj bi bj h) in
      (* First wave: C quadrants get A*1 x B1*; second wave adds
         A*2 x B2*.  The sync between the waves is what the buggy
         variant drops. *)
      let wave1 =
        [
          spawn ci cj ai aj bi bj;
          spawn ci (cj + h) ai aj bi (bj + h);
          spawn (ci + h) cj (ai + h) aj bi bj;
          spawn (ci + h) (cj + h) (ai + h) aj bi (bj + h);
        ]
      in
      let wave2 =
        [
          spawn ci cj ai (aj + h) (bi + h) bj;
          spawn ci (cj + h) ai (aj + h) (bi + h) (bj + h);
          spawn (ci + h) cj (ai + h) (aj + h) (bi + h) bj;
          spawn (ci + h) (cj + h) (ai + h) (aj + h) (bi + h) (bj + h);
        ]
      in
      if buggy then B.proc b [ wave1 @ wave2 ] else B.proc b [ wave1; wave2 ]
    end
  in
  B.finish b (mult 0 0 0 0 0 0 n)

let locked_counter ~mode ~leaves () =
  let b = B.create () in
  let children =
    List.init leaves (fun i ->
        let locks =
          match mode with
          | `Common_lock -> [ 0 ]
          | `Distinct_locks -> [ i ]
          | `No_locks -> []
        in
        let accesses =
          [
            { Fj_program.loc = 0; write = false; locks };
            { Fj_program.loc = 0; write = true; locks };
          ]
        in
        Fj_program.Spawn (B.proc b [ [ Fj_program.Run (B.thread b ~accesses ~cost:2 ()) ] ]))
  in
  B.finish b (B.proc b [ children @ [ Fj_program.Run (B.thread b ~cost:1 ()) ] ])

let shared_readers ?(reads = 16) ~readers () =
  let b = B.create () in
  let shared = 0 in
  let read loc = { Fj_program.loc; write = false; locks = [] } in
  let write loc = { Fj_program.loc; write = true; locks = [] } in
  let w0 = B.thread b ~accesses:[ write shared ] ~cost:1 () in
  let children =
    List.init readers (fun i ->
        let accesses = List.init reads (fun _ -> read shared) @ [ write (1 + i) ] in
        Fj_program.Spawn
          (B.proc b [ [ Fj_program.Run (B.thread b ~accesses ~cost:(reads + 1) ()) ] ]))
  in
  B.finish b
    (B.proc b [ [ Fj_program.Run w0 ]; children @ [ Fj_program.Run (B.thread b ~cost:1 ()) ] ])

let of_tree ?(cost = 1) tree =
  let b = B.create () in
  let tid_of_leaf = Array.make (Spr_sptree.Sp_tree.node_count tree) (-1) in
  let rec blocks_of (n : Spr_sptree.Sp_tree.node) =
    match n.Spr_sptree.Sp_tree.shape with
    | Spr_sptree.Sp_tree.Leaf ->
        let th = B.thread b ~cost () in
        tid_of_leaf.(n.Spr_sptree.Sp_tree.id) <- th.Fj_program.tid;
        [ [ Fj_program.Run th ] ]
    | Spr_sptree.Sp_tree.Internal { kind = Spr_sptree.Sp_tree.Series; left; right } ->
        (* Sequencing: concatenate the sync blocks (the extra joins at
           block boundaries are no-ops for the SP relation). *)
        blocks_of left @ blocks_of right
    | Spr_sptree.Sp_tree.Internal { kind = Spr_sptree.Sp_tree.Parallel; left; right } ->
        (* P(l, r) = spawn both in one sync block: l || r, joined
           together, serial against everything outside — the same SP
           semantics as the original node. *)
        [ [ Fj_program.Spawn (proc_of left); Fj_program.Spawn (proc_of right) ] ]
  and proc_of n = B.proc b (blocks_of n) in
  let main = proc_of (Spr_sptree.Sp_tree.root tree) in
  (B.finish b main, tid_of_leaf)

let random_prog ~rng ~threads ?(spawn_prob = 0.4) ?(max_cost = 5) ?(locs = 0)
    ?(accesses_per_thread = 3) ?(lock_count = 0) () =
  let b = B.create () in
  let mk_thread () =
    let accesses =
      if locs = 0 then []
      else begin
        let k = Spr_util.Rng.int rng (accesses_per_thread + 1) in
        List.init k (fun _ ->
            let locks =
              if lock_count = 0 then []
              else begin
                (* Hold 0-2 random locks. *)
                let n = Spr_util.Rng.int rng 3 in
                List.sort_uniq compare
                  (List.init (min n lock_count) (fun _ -> Spr_util.Rng.int rng lock_count))
              end
            in
            {
              Fj_program.loc = Spr_util.Rng.int rng locs;
              write = Spr_util.Rng.bernoulli rng 0.4;
              locks;
            })
      end
    in
    Fj_program.Run (B.thread b ~accesses ~cost:(1 + Spr_util.Rng.int rng max_cost) ())
  in
  (* Build a procedure with a thread budget; spawns split the budget. *)
  let rec gen_proc budget =
    let nblocks = 1 + Spr_util.Rng.int rng 2 in
    let budgets = Array.make nblocks (budget / nblocks) in
    budgets.(0) <- budgets.(0) + (budget mod nblocks);
    let blocks = Array.to_list (Array.map gen_block budgets) in
    B.proc b blocks
  and gen_block budget =
    if budget <= 1 then [ mk_thread () ]
    else begin
      (* Consume the budget item by item: a thread costs one unit, a
         spawn hands a random chunk of the budget to the child
         procedure — so the program really ends up with ~[threads]
         threads. *)
      let rec items budget acc =
        if budget <= 0 then List.rev acc
        else begin
          let chunk = 1 + Spr_util.Rng.int rng (min 16 budget) in
          if chunk > 1 && Spr_util.Rng.bernoulli rng spawn_prob then
            items (budget - chunk) (Fj_program.Spawn (gen_proc (chunk - 1)) :: acc)
          else items (budget - 1) (mk_thread () :: acc)
        end
      in
      items budget []
    end
  in
  B.finish b (gen_proc threads)

let random_adversarial ~rng ~threads ~shape () =
  let module R = Spr_util.Rng in
  match shape with
  | `Uniform -> random_prog ~rng ~threads ()
  | `Spawn_heavy -> random_prog ~rng ~threads ~spawn_prob:0.85 ~max_cost:2 ()
  | `Deep_serial ->
      (* Long chains of single-item sync blocks — S-composition depth
         close to the thread count — with occasional nested spawns so
         the serial spine still crosses P-nodes now and then. *)
      let b = B.create () in
      let mk () = Fj_program.Run (B.thread b ~cost:(1 + R.int rng 3) ()) in
      let rec go budget =
        let rec blocks budget acc =
          if budget <= 0 then List.rev acc
          else if budget > 3 && R.bernoulli rng 0.15 then begin
            let chunk = 2 + R.int rng (budget - 2) in
            blocks (budget - chunk) ([ Fj_program.Spawn (go (chunk - 1)); mk () ] :: acc)
          end
          else blocks (budget - 1) ([ mk () ] :: acc)
        in
        B.proc b (blocks (max 1 budget) [])
      in
      B.finish b (go threads)
  | `Wide ->
      (* Sync blocks fanning out many children at once: wide P-node
         cascades in the canonical parse tree, steal storms under the
         simulator. *)
      let b = B.create () in
      let mk () = Fj_program.Run (B.thread b ~cost:(1 + R.int rng 3) ()) in
      let rec go budget =
        if budget <= 1 then B.proc b [ [ mk () ] ]
        else begin
          let width = min budget (2 + R.int rng 14) in
          let per_child = max 0 ((budget - 1) / width) in
          let children = List.init width (fun _ -> Fj_program.Spawn (go per_child)) in
          B.proc b [ children @ [ mk () ] ]
        end
      in
      B.finish b (go threads)

(* ------------------------------------------------------------------ *)
(* Named registry: one list behind every CLI (`spview --workload`,
   `spingest capture --workload`) and the capture/replay differential
   tests, so "every workload generator" means exactly this list. *)

let named =
  [
    ("dcsum", fun ~size ~seed:_ -> dc_sum ~leaves:size ());
    ("dcsum-buggy", fun ~size ~seed:_ -> dc_sum ~buggy:true ~leaves:size ());
    ("fib", fun ~size ~seed:_ -> fib ~n:size ());
    ("deep", fun ~size ~seed:_ -> deep_spawn ~depth:size ());
    ("wide", fun ~size ~seed:_ -> wide ~n:size ());
    ("locked", fun ~size ~seed:_ -> locked_counter ~mode:`Common_lock ~leaves:size ());
    ("locked-buggy", fun ~size ~seed:_ -> locked_counter ~mode:`Distinct_locks ~leaves:size ());
    ( "random",
      fun ~size ~seed ->
        random_prog ~rng:(Spr_util.Rng.create seed) ~threads:size ~locs:8
          ~accesses_per_thread:4 () );
    ("serial", fun ~size ~seed:_ -> serial ~n:size ());
    ("mergesort", fun ~size ~seed:_ -> mergesort ~n:size ());
    ("mergesort-buggy", fun ~size ~seed:_ -> mergesort ~buggy:true ~n:size ());
    ("matmul", fun ~size ~seed:_ -> matmul ~n:size ());
    ("matmul-buggy", fun ~size ~seed:_ -> matmul ~buggy:true ~n:size ());
    ("shared-readers", fun ~size ~seed:_ -> shared_readers ~readers:size ());
    ( "adversarial",
      fun ~size ~seed ->
        random_adversarial
          ~rng:(Spr_util.Rng.create seed)
          ~threads:size
          ~shape:(match seed mod 4 with 0 -> `Uniform | 1 -> `Spawn_heavy | 2 -> `Deep_serial | _ -> `Wide)
          () );
  ]

let names = List.map fst named

let find_opt name = List.assoc_opt name named

let unknown name =
  Printf.sprintf "unknown workload %S (valid: %s)" name (String.concat ", " names)
