(** Fork-join program generators.

    These are the workloads the tests, examples and benchmark harness
    run: classic Cilk shapes (fib, divide-and-conquer reductions), the
    adversarial shapes behind Figure 3's columns (deep spawn chains,
    wide flat parallelism, long serial runs), and seeded random
    programs for property-based testing of the scheduler and
    SP-hybrid. *)

val fib : ?cost:int -> n:int -> unit -> Spr_prog.Fj_program.t
(** The canonical Cilk benchmark: [fib n] spawns [fib (n-1)] and
    [fib (n-2)] in one sync block, then adds in a second block.  Base
    cases and adders are threads of [cost] instructions (default 4).
    Work Θ(φ{^n}), span Θ(n) — huge parallelism. *)

val deep_spawn : ?cost:int -> depth:int -> unit -> Spr_prog.Fj_program.t
(** Linear chain of nested spawns: procedure [d] spawns procedure
    [d-1] and runs one thread.  Maximal nesting depth, parallelism ~2:
    the worst case for offset-span labels and a steal-heavy shape. *)

val wide : ?cost:int -> n:int -> unit -> Spr_prog.Fj_program.t
(** One procedure whose single block spawns [n] leaf procedures:
    everything parallel, span O(cost). *)

val serial : ?cost:int -> n:int -> unit -> Spr_prog.Fj_program.t
(** [n] threads in [n] sync blocks of one procedure: no parallelism at
    all; the scheduler must never steal. *)

val dc_sum : ?buggy:bool -> ?grain:int -> leaves:int -> unit -> Spr_prog.Fj_program.t
(** Divide-and-conquer array reduction with realistic shared-memory
    accesses: leaf [i] reads its [grain] input cells and writes its own
    accumulator; each combiner reads its children's accumulators and
    writes its own — determinacy-race-free by construction.  With
    [buggy:true] leaves write their {e parent's} accumulator directly,
    planting a classic sibling write-write race for the detector to
    find. *)

val mergesort : ?buggy:bool -> ?grain:int -> n:int -> unit -> Spr_prog.Fj_program.t
(** Parallel merge sort over an [n]-cell array (locations [0, n)) with
    a scratch buffer (locations [n, 2n)): leaves sort [grain]-sized
    runs in place; each internal procedure spawns the two half-sorts in
    one sync block and merges through the scratch buffer in the next.
    Race-free by construction.  With [buggy:true] every merge writes
    its output at the {e same} scratch offset, so the two logically
    parallel half-merges of any two sibling subtrees collide — a
    write-write race the detector must localize to the scratch cells.
    [n] is rounded up to a power of two. *)

val matmul : ?buggy:bool -> ?grain:int -> n:int -> unit -> Spr_prog.Fj_program.t
(** The classic Cilk divide-and-conquer matrix multiplication
    C += A·B on [n]×[n] blocks (A at locations [0, n²), B at [n², 2n²),
    C at [2n², 3n²)): each level spawns the four products into distinct
    C quadrants in a first sync block and the four complementary
    products in a second — the sync between them is what makes the
    additive updates to C safe.  [buggy:true] removes that sync (all
    eight spawns share one block), reproducing the textbook Cilk race:
    parallel read-modify-writes to every C cell.  [n] is rounded up to
    a power of two; leaves multiply [grain]×[grain] blocks. *)

val locked_counter :
  mode:[ `Common_lock | `Distinct_locks | `No_locks ] -> leaves:int -> unit -> Spr_prog.Fj_program.t
(** [leaves] parallel threads all increment one shared counter.  With
    [`Common_lock] every increment holds lock 0 — an {e apparent} data
    race to a determinacy-race detector but clean under the lockset
    (All-Sets) discipline; [`Distinct_locks] gives each thread its own
    lock (races under both); [`No_locks] holds nothing. *)

val of_tree : ?cost:int -> Spr_sptree.Sp_tree.t -> Spr_prog.Fj_program.t * int array
(** Compile an arbitrary binary SP parse tree into an equivalent
    fork-join program (every P-node becomes a sync block with two
    spawns — the transformation of the paper's footnote 6, which
    preserves all SP relationships).  Returns the program and the map
    from parse-tree leaf node id to the thread id that runs it.
    Recursive in the tree height; meant for test-sized trees. *)

val random_prog :
  rng:Spr_util.Rng.t ->
  threads:int ->
  ?spawn_prob:float ->
  ?max_cost:int ->
  ?locs:int ->
  ?accesses_per_thread:int ->
  ?lock_count:int ->
  unit ->
  Spr_prog.Fj_program.t
(** Seeded random program with roughly [threads] threads: random
    procedure nesting ([spawn_prob] controls fork density), random
    thread costs in [1, max_cost], and, when [locs > 0], random
    reads/writes over a shared location space (races likely — useful
    for cross-checking detectors against the naive checker). *)

val random_adversarial :
  rng:Spr_util.Rng.t ->
  threads:int ->
  shape:[ `Uniform | `Deep_serial | `Wide | `Spawn_heavy ] ->
  unit ->
  Spr_prog.Fj_program.t
(** Random programs biased toward the shapes that historically expose
    SP-maintenance bugs (the fuzzer cycles through them):
    [`Deep_serial] — long chains of sync blocks with rare nested
    spawns, stressing S-composition and bag flow; [`Wide] — sync
    blocks fanning out many spawned children, stressing P-node
    handling and steal storms; [`Spawn_heavy] — [random_prog] with
    very high fork density and tiny costs; [`Uniform] — plain
    [random_prog]. *)

val shared_readers : ?reads:int -> readers:int -> unit -> Spr_prog.Fj_program.t
(** One writer thread in a first sync block, then [readers] parallel
    threads that each read the shared cell [reads] times and write one
    private cell — race-free, and almost all events are accesses.  The
    access-dominated shape of the ingestion throughput benchmarks
    (structure frames amortize to nothing). *)

val named :
  (string * (size:int -> seed:int -> Spr_prog.Fj_program.t)) list
(** The named workload registry behind [spview]/[spingest] [--workload]
    and the capture/replay differential tests.  Buggy variants plant
    known races; [seed] only matters to the random shapes. *)

val names : string list
(** Registry names, in registry order. *)

val find_opt : string -> (size:int -> seed:int -> Spr_prog.Fj_program.t) option

val unknown : string -> string
(** Diagnostic for an unknown workload name, listing the valid ones. *)
