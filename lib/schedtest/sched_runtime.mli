(** Controlled executions of the real multi-domain runtime.

    {!run} installs a fresh {!Control} controller expecting one task
    per worker (the runtime's [worker_loop] registers each worker as
    controlled task [wid]) and executes the program under it: exactly
    one worker advances between yield points, so the whole parallel
    execution — steal victims, park/resume order, hook interleavings —
    is a deterministic function of the strategy.  Same strategy, same
    program: identical decision trace, byte for byte.

    The runtime takes no locks it does not release and parks by
    handing frames over, never by sleeping (see the lost-wakeup audit
    in [runtime.ml]); any [Deadlock] or [Livelock] control outcome is
    therefore a runtime bug, and the seed-sweep regression test keeps
    it that way. *)

type outcome = {
  result : Spr_runtime.Runtime.result option;
      (** [None] iff the controller aborted (deadlock/livelock) *)
  control : Control.outcome;
  trace : int list;  (** the decision trace, for digests and replay *)
}

val run :
  ?max_decisions:int ->
  ?hooks:Spr_sched.Sim.hooks ->
  ?seed:int ->
  workers:int ->
  Control.strategy ->
  Spr_prog.Fj_program.t ->
  outcome
(** [seed] feeds the runtime's victim-selection RNG (kept deterministic
    anyway — the controller serializes everything); [spin] is pinned to
    1 so burn loops stay cheap under serialization. *)
