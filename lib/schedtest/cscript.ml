module Rng = Spr_util.Rng
module Shrink = Spr_check.Shrink

type writer_op = W_head_insert | W_base_insert | W_delete_own

type query = { qx : int; qy : int }

type t = {
  prelude_head : int;
  prelude_base : int;
  writer : writer_op list;
  readers : query list list;
}

let n_prelude s = 1 + s.prelude_base + s.prelude_head

let n_tasks s = 1 + List.length s.readers

let random ~rng ~prelude_head ~prelude_base ~writer_len ~readers ~queries =
  let writer =
    List.init writer_len (fun _ ->
        let d = Rng.int rng 100 in
        if d < 55 then W_head_insert else if d < 80 then W_base_insert else W_delete_own)
  in
  let n = 1 + prelude_base + prelude_head in
  let reader () =
    List.init queries (fun _ -> { qx = Rng.int rng n; qy = Rng.int rng n })
  in
  { prelude_head; prelude_base; writer; readers = List.init readers (fun _ -> reader ()) }

let pp_writer_op fmt = function
  | W_head_insert -> Format.pp_print_string fmt "W_head_insert"
  | W_base_insert -> Format.pp_print_string fmt "W_base_insert"
  | W_delete_own -> Format.pp_print_string fmt "W_delete_own"

let pp fmt s =
  let semi fmt () = Format.fprintf fmt ";@ " in
  Format.fprintf fmt "@[<hv 2>{ prelude_head = %d;@ prelude_base = %d;@ writer = [@[<hv>%a@]];@ readers = [@[<hv>%a@]] }@]"
    s.prelude_head s.prelude_base
    (Format.pp_print_list ~pp_sep:semi pp_writer_op)
    s.writer
    (Format.pp_print_list ~pp_sep:semi (fun fmt r ->
         Format.fprintf fmt "[@[<hv>%a@]]"
           (Format.pp_print_list ~pp_sep:semi (fun fmt q ->
                Format.fprintf fmt "{ qx = %d; qy = %d }" q.qx q.qy))
           r))
    s.readers

type run_result = { report : Control.report; failure : string option }

(* Build the prelude on any OM structure; returns (elems, headmost)
   with elems.(0) the base, then the base-chain in creation order, then
   the head-chain in creation order (so the last entry is the
   head-most element when [prelude_head > 0]). *)
let build_prelude (type s e) ~(create : unit -> s) ~(base : s -> e)
    ~(insert_after : s -> e -> e) ~(insert_before : s -> e -> e) spec =
  let st = create () in
  let n = n_prelude spec in
  let pre = Array.make n (base st) in
  for i = 1 to spec.prelude_base do
    pre.(i) <- insert_after st (base st)
  done;
  let anchor = ref (base st) in
  for i = 1 to spec.prelude_head do
    let y = insert_before st !anchor in
    pre.(spec.prelude_base + i) <- y;
    anchor := y
  done;
  (st, pre, !anchor)

(* Replay the writer ops against any structure.  Deterministic given
   the op list (no dependence on the schedule), which is what lets the
   post-run sweep mirror the writer serially.  Returns the created
   elements in creation order, deleted ones blanked out. *)
let writer_replay (type s e) ~(insert_after : s -> e -> e)
    ~(insert_before : s -> e -> e) ~(delete : s -> e -> unit) st ~headmost ~base ops =
  let anchor = ref headmost in
  let created = ref [] in
  (* surviving base-inserts, most recent first *)
  let base_stack = ref [] in
  List.iter
    (fun op ->
      match op with
      | W_head_insert ->
          let y = insert_before st !anchor in
          anchor := y;
          created := ref (Some y) :: !created
      | W_base_insert ->
          let y = insert_after st base in
          let cell = ref (Some y) in
          created := cell :: !created;
          base_stack := (y, cell) :: !base_stack
      | W_delete_own -> (
          match !base_stack with
          | [] -> ()
          | (y, cell) :: rest ->
              base_stack := rest;
              delete st y;
              cell := None))
    ops;
  List.rev_map (fun cell -> !cell) !created

let run ?(sink = Spr_obs.Sink.null) (module M : Spr_om.Om_intf.CONCURRENT) (s : t) strategy =
  let n = n_prelude s in
  let sut, pre, sut_head =
    build_prelude ~create:M.create ~base:M.base ~insert_after:M.insert_after
      ~insert_before:M.insert_before s
  in
  M.set_sink sut sink;
  let module O = Spr_om.Om in
  let ora, opre, ora_head =
    build_prelude ~create:O.create ~base:O.base ~insert_after:O.insert_after
      ~insert_before:O.insert_before s
  in
  (* The truth matrix: relative order of prelude elements is invariant
     under every schedule (writers only add/remove other elements and
     relabel order-preservingly), so these serial answers are the
     unique correct ones for every concurrent query. *)
  let truth = Array.init n (fun i -> Array.init n (fun j -> O.precedes ora opre.(i) opre.(j))) in
  let prelude_mismatch = ref None in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if !prelude_mismatch = None && M.precedes sut pre.(i) pre.(j) <> truth.(i).(j) then
        prelude_mismatch := Some (i, j)
    done
  done;
  (* Concurrent phase: task 0 = writer, tasks 1.. = readers. *)
  let survivors = ref [] in
  let writer_body () =
    survivors :=
      writer_replay ~insert_after:M.insert_after ~insert_before:M.insert_before
        ~delete:M.delete sut ~headmost:sut_head ~base:(M.base sut) s.writer
  in
  let answers =
    List.map (fun r -> Array.make (List.length r) None) s.readers
  in
  let reader_body r ans () =
    List.iteri
      (fun k q -> ans.(k) <- Some (M.precedes sut pre.(q.qx mod n) pre.(q.qy mod n)))
      r
  in
  let tasks = writer_body :: List.map2 reader_body s.readers answers in
  let report = Control.run strategy ~tasks in
  (* Validation, in increasing order of subtlety; first failure wins. *)
  let fail = ref None in
  let set_fail msg = if !fail = None then fail := Some msg in
  (match report.outcome with
  | Control.Completed -> ()
  | Control.Deadlock ids ->
      set_fail
        (Printf.sprintf "deadlock: tasks [%s] blocked"
           (String.concat "; " (List.map string_of_int ids)))
  | Control.Livelock -> set_fail "livelock: decision budget exhausted");
  List.iter
    (fun (i, e) -> set_fail (Printf.sprintf "task %d raised %s" i (Printexc.to_string e)))
    report.exns;
  (match !prelude_mismatch with
  | Some (i, j) ->
      set_fail (Printf.sprintf "serial prelude disagrees with oracle at (%d, %d)" i j)
  | None -> ());
  List.iteri
    (fun r (queries, ans) ->
      List.iteri
        (fun k q ->
          match ans.(k) with
          | Some a when a <> truth.(q.qx mod n).(q.qy mod n) ->
              set_fail
                (Printf.sprintf
                   "reader %d query %d: precedes(pre.%d, pre.%d) = %b, serial oracle says %b"
                   r k (q.qx mod n) (q.qy mod n) a
                   (truth.(q.qx mod n).(q.qy mod n)))
          | _ -> ())
        queries)
    (List.combine s.readers answers);
  (if !fail = None then
     try M.check_invariants sut
     with e -> set_fail (Printf.sprintf "check_invariants: %s" (Printexc.to_string e)));
  (* A-posteriori sweep: mirror the writer serially on the oracle and
     compare the full final order, prelude and surviving writer
     elements alike. *)
  (if !fail = None && report.outcome = Control.Completed && report.exns = [] then begin
     let osurvivors =
       writer_replay ~insert_after:O.insert_after ~insert_before:O.insert_before
         ~delete:O.delete ora ~headmost:ora_head ~base:(O.base ora) s.writer
     in
     let zip =
       List.filter_map
         (fun (a, b) -> match (a, b) with Some a, Some b -> Some (a, b) | _ -> None)
         (List.combine !survivors osurvivors)
     in
     let all =
       Array.to_list (Array.map2 (fun a b -> (a, b)) pre opre) @ zip
     in
     List.iteri
       (fun i (sx, ox) ->
         List.iteri
           (fun j (sy, oy) ->
             if !fail = None && M.precedes sut sx sy <> O.precedes ora ox oy then
               set_fail (Printf.sprintf "final sweep: pair (%d, %d) disagrees with oracle" i j))
           all)
       all
   end);
  { report; failure = !fail }

let set_nth i v xs = List.mapi (fun j x -> if j = i then v else x) xs

let shrink ~still_failing s0 =
  let s = ref s0 in
  s :=
    { !s with
      writer = Shrink.list ~still_failing:(fun w -> still_failing { !s with writer = w }) !s.writer
    };
  List.iteri
    (fun i _ ->
      let r = List.nth !s.readers i in
      let r' =
        Shrink.list
          ~still_failing:(fun cand -> still_failing { !s with readers = set_nth i cand !s.readers })
          r
      in
      s := { !s with readers = set_nth i r' !s.readers })
    !s.readers;
  let nonempty = List.filter (fun r -> r <> []) !s.readers in
  if List.length nonempty < List.length !s.readers && still_failing { !s with readers = nonempty }
  then s := { !s with readers = nonempty };
  let rec trim get put =
    let v = get !s in
    if v > 0 && still_failing (put !s (v - 1)) then begin
      s := put !s (v - 1);
      trim get put
    end
  in
  trim (fun s -> s.prelude_head) (fun s v -> { s with prelude_head = v });
  trim (fun s -> s.prelude_base) (fun s v -> { s with prelude_base = v });
  !s
