module Hook = Spr_schedhook.Hook
module Rng = Spr_util.Rng

type strategy =
  | Random of int
  | Pct of { seed : int; depth : int; steps : int }
  | Fixed of { prefix : int list; fallback : [ `Round_robin | `Min_id ] }

type step_info = { task : int; point : string; kind : Hook.kind }

type decision = { chosen : int; enabled : step_info list }

type outcome = Completed | Deadlock of int list | Livelock

exception Aborted

type task_state = Unstarted | Parked | Blocked of Mutex.t | Running | Done

(* Mutable per-strategy decision state. *)
type strat_state =
  | S_random of Rng.t
  | S_pct of {
      prio : int array;  (* higher runs first; ties broken by task id *)
      mutable change_points : int list;  (* ascending decision indices *)
      mutable next_low : int;  (* next change-point priority (d-2 downto) *)
      mutable spin_floor : int;  (* rotating bottom band for Spin parkers *)
    }
  | S_fixed of { mutable prefix : int list; fallback : [ `Round_robin | `Min_id ] }

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  expected : int;
  states : task_state array;
  points : step_info array;  (* points.(i): where task i is parked / its pending step *)
  mutable registered : int;
  mutable current : int;  (* granted task, -1 = decision pending *)
  mutable ndecisions : int;
  mutable decisions_rev : decision list;
  mutable aborted : outcome option;
  max_decisions : int;
  strat : strat_state;
}

let create ?(max_decisions = 200_000) ~expected strategy =
  if expected < 1 then invalid_arg "Control.create: need at least one task";
  let strat =
    match strategy with
    | Random seed -> S_random (Rng.create seed)
    | Pct { seed; depth; steps } ->
        let rng = Rng.create seed in
        (* Initial priorities: a random permutation of [d, d+n), so
           every change-point priority (counting down from d-2) sits
           below the whole initial band, and the rotating spin floor
           (-1 and falling) sits below the change points in turn. *)
        let order = Array.init expected (fun i -> i) in
        Rng.shuffle rng order;
        let prio = Array.make expected 0 in
        Array.iteri (fun rank task -> prio.(task) <- depth + rank) order;
        S_pct
          {
            prio;
            change_points =
              List.sort compare
                (List.init (max 0 (depth - 1)) (fun _ -> Rng.int rng (max 1 steps)));
            next_low = depth - 2;
            spin_floor = -1;
          }
    | Fixed { prefix; fallback } -> S_fixed { prefix; fallback }
  in
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    expected;
    states = Array.make expected Unstarted;
    points = Array.init expected (fun task -> { task; point = "task/start"; kind = Hook.Write });
    registered = 0;
    current = -1;
    ndecisions = 0;
    decisions_rev = [];
    aborted = None;
    max_decisions;
    strat;
  }

let enabled_infos t =
  let acc = ref [] in
  for i = t.expected - 1 downto 0 do
    match t.states.(i) with Parked -> acc := t.points.(i) :: !acc | _ -> ()
  done;
  !acc

let choose t (enabled : step_info list) =
  let n = List.length enabled in
  match t.strat with
  | S_random rng -> (List.nth enabled (Rng.int rng n)).task
  | S_pct st ->
      let best =
        List.fold_left
          (fun best (i : step_info) ->
            match best with
            | None -> Some i.task
            | Some b -> if st.prio.(i.task) > st.prio.(b) then Some i.task else best)
          None enabled
      in
      let chosen = Option.get best in
      (match st.change_points with
      | cp :: rest when cp <= t.ndecisions ->
          (* This decision crosses a change point: the task we are about
             to run falls below the initial band. *)
          st.change_points <- rest;
          st.prio.(chosen) <- st.next_low;
          st.next_low <- st.next_low - 1
      | _ -> ());
      chosen
  | S_fixed st ->
      let is_enabled id = List.exists (fun (i : step_info) -> i.task = id) enabled in
      let rec pop () =
        match st.prefix with
        | id :: rest ->
            st.prefix <- rest;
            if is_enabled id then Some id else pop ()
        | [] -> None
      in
      (match pop () with
      | Some id -> id
      | None -> (
          match st.fallback with
          | `Min_id -> (List.hd enabled).task
          | `Round_robin -> (List.nth enabled (t.ndecisions mod n)).task))

let abort t reason =
  t.aborted <- Some reason;
  Condition.broadcast t.cond

let maybe_decide t =
  if t.aborted = None && t.registered = t.expected && t.current < 0 then begin
    let enabled = enabled_infos t in
    match enabled with
    | [] ->
        let blocked = ref [] in
        Array.iteri
          (fun i st -> match st with Blocked _ -> blocked := i :: !blocked | _ -> ())
          t.states;
        if !blocked <> [] then abort t (Deadlock (List.rev !blocked))
        (* else: every task is Done — nothing to schedule. *)
    | _ ->
        if t.ndecisions >= t.max_decisions then abort t Livelock
        else begin
          let chosen = choose t enabled in
          t.decisions_rev <- { chosen; enabled } :: t.decisions_rev;
          t.ndecisions <- t.ndecisions + 1;
          t.current <- chosen;
          t.states.(chosen) <- Running;
          Condition.broadcast t.cond
        end
  end

let with_mutex t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Park the calling task (mutex held) and wait to be granted again.
   Raises [Aborted] (after releasing the mutex, via [with_mutex]'s
   finalizer) on deadlock/livelock so the task unwinds. *)
let park_and_wait t id =
  maybe_decide t;
  while t.aborted = None && t.current <> id do
    Condition.wait t.cond t.mutex
  done;
  if t.aborted <> None then raise Aborted

let c_register t id =
  with_mutex t (fun () ->
      if id < 0 || id >= t.expected then
        invalid_arg (Printf.sprintf "Control: task id %d out of range [0, %d)" id t.expected);
      (match t.states.(id) with
      | Unstarted -> ()
      | _ -> invalid_arg (Printf.sprintf "Control: task id %d registered twice" id));
      t.states.(id) <- Parked;
      t.registered <- t.registered + 1;
      park_and_wait t id)

let c_finish t id =
  with_mutex t (fun () ->
      t.states.(id) <- Done;
      if t.current = id then t.current <- -1;
      maybe_decide t)

let c_yield t ~layer ~name ~kind ~hint =
  with_mutex t (fun () ->
      let id = t.current in
      (* A yield from outside any granted task (harness code running
         while the controller is installed) is ignored. *)
      if id >= 0 then begin
        t.points.(id) <- { task = id; point = layer ^ "/" ^ name; kind };
        (match (t.strat, hint) with
        | S_pct st, Hook.Spin ->
            (* Rotate spinners to the bottom: most recent spinner runs
               last, so a busy-waiting worker cannot pin the top
               priority and starve the task holding the work. *)
            st.prio.(id) <- st.spin_floor;
            st.spin_floor <- st.spin_floor - 1
        | _ -> ());
        t.states.(id) <- Parked;
        t.current <- -1;
        park_and_wait t id
      end)

let c_blocked t m =
  with_mutex t (fun () ->
      let id = t.current in
      if id >= 0 then begin
        (* The pending step is still the same lock acquisition:
           [t.points.(id)] keeps the lock's yield point. *)
        t.states.(id) <- Blocked m;
        t.current <- -1;
        park_and_wait t id
      end)

let c_released t m =
  with_mutex t (fun () ->
      Array.iteri
        (fun i st -> match st with Blocked m' when m' == m -> t.states.(i) <- Parked | _ -> ())
        t.states)

let hook t =
  {
    Hook.c_register = c_register t;
    c_finish = c_finish t;
    c_yield = (fun ~layer ~name ~kind ~hint -> c_yield t ~layer ~name ~kind ~hint);
    c_blocked = c_blocked t;
    c_released = c_released t;
  }

let with_installed t f =
  Hook.install (hook t);
  Fun.protect ~finally:Hook.uninstall f

let outcome t = match t.aborted with Some r -> r | None -> Completed

let decisions t = Array.of_list (List.rev t.decisions_rev)

let trace t = List.rev_map (fun d -> d.chosen) t.decisions_rev

(* FNV-1a, 64-bit, over the little-endian bytes of each choice. *)
let digest tr =
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) 0x100000001b3L
  in
  List.iter
    (fun c ->
      mix c;
      mix (c lsr 8))
    tr;
  Printf.sprintf "%016Lx" !h

let pp_trace fmt tr =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
    Format.pp_print_int fmt tr

type report = { outcome : outcome; decisions : decision array; exns : (int * exn) list }

let run ?max_decisions strategy ~tasks =
  let n = List.length tasks in
  let t = create ?max_decisions ~expected:n strategy in
  let exns = Array.make n None in
  (* The controller must be installed before any task thread reaches
     its [task_scope], or that task would race ahead uncontrolled. *)
  with_installed t (fun () ->
      let threads =
        List.mapi
          (fun i body ->
            Thread.create
              (fun () ->
                try Hook.task_scope ~id:i body with
                | Aborted -> ()
                | e -> exns.(i) <- Some e)
              ())
          tasks
      in
      List.iter Thread.join threads);
  let exn_list =
    Array.to_list exns
    |> List.mapi (fun i e -> (i, e))
    |> List.filter_map (fun (i, e) -> Option.map (fun e -> (i, e)) e)
  in
  { outcome = outcome t; decisions = decisions t; exns = exn_list }
