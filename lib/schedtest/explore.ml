module Hook = Spr_schedhook.Hook
module Shrink = Spr_check.Shrink

type stats = {
  mutable schedules : int;
  mutable pruned : int;
  mutable max_depth : int;
  mutable truncated : bool;
}

type failure = { trace : int list; message : string }

type runner = Control.strategy -> Control.report * string option

let fresh_stats () = { schedules = 0; pruned = 0; max_depth = 0; truncated = false }

let independent (a : Control.step_info) (b : Control.step_info) =
  match (a.kind, b.kind) with
  | Hook.Read, Hook.Read | Hook.Read, Hook.Link | Hook.Link, Hook.Read -> true
  | _ -> false

exception Budget

let record_run stats failures (report : Control.report) fail =
  stats.schedules <- stats.schedules + 1;
  let depth = Array.length report.decisions in
  if depth > stats.max_depth then stats.max_depth <- depth;
  match fail with
  | Some message ->
      failures :=
        { trace = Array.to_list (Array.map (fun d -> d.Control.chosen) report.decisions); message }
        :: !failures
  | None -> ()

let dfs ?(max_schedules = 100_000) ~(run : runner) () =
  let stats = fresh_stats () in
  let failures = ref [] in
  (* Each call performs one complete run forced through [prefix] and
     completed canonically (lowest enabled id), then walks the suffix
     harvesting sibling branch points.  [sleep0] is the sleep set of
     the first free node (depth = length of prefix).  A sleep set holds
     steps already explored from a sibling branch of an ancestor node;
     scheduling one of them first again would commute with everything
     up to that sibling's subtree and reproduce an explored class. *)
  let rec expand prefix sleep0 =
    if stats.schedules >= max_schedules then begin
      stats.truncated <- true;
      raise Budget
    end;
    let report, fail = run (Control.Fixed { prefix; fallback = `Min_id }) in
    record_run stats failures report fail;
    let ds = report.decisions in
    let depth = Array.length ds in
    let rec walk i rev_choices sleep =
      if i < depth then begin
        let d = ds.(i) in
        let in_sleep task = List.exists (fun (p : Control.step_info) -> p.task = task) sleep in
        let chosen_step =
          List.find (fun (p : Control.step_info) -> p.task = d.chosen) d.enabled
        in
        let chosen_sleeping = in_sleep d.chosen in
        (* Steps already explored at this node, the canonical choice
           first (this very run is its exploration). *)
        let explored = ref (if chosen_sleeping then sleep else chosen_step :: sleep) in
        List.iter
          (fun (s : Control.step_info) ->
            if s.task <> d.chosen && not (in_sleep s.task) then begin
              let child_sleep = List.filter (fun p -> independent p s) !explored in
              expand (List.rev (s.task :: rev_choices)) child_sleep;
              explored := s :: !explored
            end)
          d.enabled;
        if chosen_sleeping then
          (* The canonical suffix from here is equivalent to an already
             explored interleaving; count it and stop descending. *)
          stats.pruned <- stats.pruned + 1
        else
          walk (i + 1) (d.chosen :: rev_choices)
            (List.filter (fun p -> independent p chosen_step) sleep)
      end
    in
    (* Replaying a DFS-produced prefix is always feasible (the forced
       choices came from actual enabled sets of a deterministic
       execution), so the first free node sits exactly at its end. *)
    walk (List.length prefix) (List.rev prefix) sleep0
  in
  (try expand [] [] with Budget -> ());
  (stats, List.rev !failures)

let seeded_runs ~seeds ~mk ~(run : runner) =
  let stats = fresh_stats () in
  let failures = ref [] in
  List.iter
    (fun seed ->
      let report, fail = run (mk seed) in
      record_run stats failures report fail)
    seeds;
  (stats, List.rev !failures)

let pct_search ~seeds ~depth ~steps ~run =
  seeded_runs ~seeds ~mk:(fun seed -> Control.Pct { seed; depth; steps }) ~run

let sweep ~seeds ~run = seeded_runs ~seeds ~mk:(fun seed -> Control.Random seed) ~run

let shrink_schedule ?(fallback = `Min_id) ~(run : runner) trace =
  Shrink.list
    ~still_failing:(fun prefix -> snd (run (Control.Fixed { prefix; fallback })) <> None)
    trace
