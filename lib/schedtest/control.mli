(** Schedule controllers: serialize controlled tasks and decide, at
    every {!Spr_schedhook.Hook} yield point, which task runs next.

    A controller owns [expected] tasks (ids [0 .. expected-1]).  Once
    all of them have registered, exactly one task is granted at a time;
    the grant sequence is the {e schedule}, recorded as a decision
    trace.  Because tasks only interact through shared memory between
    yield points and exactly one runs at a time, the whole execution is
    a deterministic function of the strategy (and its seed) — the same
    strategy replays the same schedule byte for byte, a recorded trace
    can be replayed with {!strategy.Fixed}, and a shrunk trace still
    drives a legal schedule (infeasible forced choices are skipped).

    This explores sequentially-consistent interleavings at yield-point
    granularity — the standard stateless-model-checking trade-off (the
    controller cannot produce weak-memory reorderings, and races finer
    than the instrumented points are not varied). *)

type strategy =
  | Random of int
      (** Seeded uniform choice among enabled tasks at every decision —
          the deterministic replayable scheduler. *)
  | Pct of { seed : int; depth : int; steps : int }
      (** PCT (Burckhardt et al., ASPLOS 2010): random distinct initial
          priorities, always run the highest-priority enabled task, and
          at [depth - 1] change points (sampled uniformly from
          [\[0, steps)]) drop the running task's priority below the
          initial band.  Finds any bug of depth [d] with probability
          >= 1/(n * steps^(d-1)) per run.  Tasks that park with the
          [Spin] hint (a failed steal attempt) are rotated to the
          bottom so a busy-waiting worker cannot monopolize the top
          priority. *)
  | Fixed of { prefix : int list; fallback : [ `Round_robin | `Min_id ] }
      (** Replay: force the recorded choices while feasible (entries
          naming tasks that are not currently enabled are skipped, so
          ddmin-shrunk traces remain executable), then fall back to
          round-robin (fair — safe for spinning workers) or to the
          lowest enabled id (the canonical completion the DFS explorer
          uses). *)

type step_info = {
  task : int;
  point : string;  (** "layer/name" of the yield point the task parks at *)
  kind : Spr_schedhook.Hook.kind;  (** footprint of its pending step *)
}

type decision = { chosen : int; enabled : step_info list (** ascending task id *) }

type outcome =
  | Completed
  | Deadlock of int list  (** every live task blocked on a held mutex *)
  | Livelock  (** decision budget exhausted *)

exception Aborted
(** Raised inside parked tasks when the controller aborts (deadlock or
    livelock) so every task unwinds and the harness can report. *)

type t

val create : ?max_decisions:int -> expected:int -> strategy -> t
(** [max_decisions] (default 200_000) bounds the schedule length;
    exceeding it aborts with {!Livelock}. *)

val hook : t -> Spr_schedhook.Hook.controller

val with_installed : t -> (unit -> 'a) -> 'a
(** Install {!hook} for the duration of [f] (uninstalled in a
    finalizer).  The caller must ensure no other controller is
    active. *)

val outcome : t -> outcome

val decisions : t -> decision array
(** The recorded schedule, in decision order. *)

val trace : t -> int list
(** Chosen task ids only. *)

val digest : int list -> string
(** FNV-1a hash of a trace, 16 hex digits — the replayability
    fingerprint printed by [spfuzz --sched]. *)

val pp_trace : Format.formatter -> int list -> unit
(** Compact rendering, e.g. [0 0 1 0 2]. *)

type report = { outcome : outcome; decisions : decision array; exns : (int * exn) list }

val run : ?max_decisions:int -> strategy -> tasks:(unit -> unit) list -> report
(** Spawn one systhread per task (task [i] = [List.nth tasks i]),
    run them under a fresh controller, join, and report.  {!Aborted}
    is absorbed (visible through [outcome]); other task exceptions are
    collected in [exns]. *)
