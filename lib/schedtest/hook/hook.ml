type kind = Read | Link | Write

type hint = Normal | Spin

type controller = {
  c_register : int -> unit;
  c_finish : int -> unit;
  c_yield : layer:string -> name:string -> kind:kind -> hint:hint -> unit;
  c_blocked : Mutex.t -> unit;
  c_released : Mutex.t -> unit;
}

(* The whole disabled-path cost is this one atomic load (a plain load
   on x86) and a branch. *)
let current : controller option Atomic.t = Atomic.make None

let install c = Atomic.set current (Some c)

let uninstall () = Atomic.set current None

let enabled () = Atomic.get current <> None

let yield ?(kind = Write) ?(hint = Normal) ~layer ~name () =
  match Atomic.get current with
  | None -> ()
  | Some c -> c.c_yield ~layer ~name ~kind ~hint

let lock ~layer ~name m =
  match Atomic.get current with
  | None -> Mutex.lock m
  | Some c ->
      (* The decision point sits before the acquisition attempt, so the
         controller chooses the acquisition order of competing lockers;
         acquisition itself never blocks the OS thread (the holder may
         be parked), it parks as blocked instead. *)
      c.c_yield ~layer ~name ~kind:Link ~hint:Normal;
      while not (Mutex.try_lock m) do
        c.c_blocked m
      done

let unlock m =
  Mutex.unlock m;
  match Atomic.get current with None -> () | Some c -> c.c_released m

let locked ~layer ~name m f =
  lock ~layer ~name m;
  Fun.protect ~finally:(fun () -> unlock m) f

let task_scope ~id f =
  match Atomic.get current with
  | None -> f ()
  | Some c ->
      c.c_register id;
      Fun.protect ~finally:(fun () -> c.c_finish id) f
