(** Named yield points for schedule-exploration testing.

    The concurrency hot spots of the library ({!Spr_runtime.Runtime},
    {!Spr_om.Om_concurrent}, {!Spr_om.Om_concurrent2}, the SP-hybrid
    global-tier lock path) call {!yield} at the shared-memory
    operations whose interleavings matter, and acquire their mutexes
    through {!lock}/{!unlock}.  With no controller installed (the
    default, and the only state production code ever sees) every entry
    point is a single atomic load and a branch: [yield] is a no-op,
    [lock] is [Mutex.lock], [task_scope] runs its body directly — the
    compiled behavior is the current, uncontrolled one.

    A schedule controller (see [Spr_schedtest.Control]) installed via
    {!install} turns each yield point into a scheduling decision: the
    calling task parks until the controller grants it the right to run
    the next step.  Exactly one task runs between grants, so the
    execution is a deterministic function of the controller's decision
    sequence — which is what makes schedules replayable, shrinkable and
    exhaustively enumerable.

    Locks are routed through {!lock} so a task that would block on a
    mutex held by a {e parked} task reports itself blocked instead of
    deadlocking the harness: under a controller, [lock] loops on
    [Mutex.try_lock], parking as blocked-on-that-mutex between
    attempts; {!unlock} tells the controller the mutex was released so
    blocked tasks become schedulable again. *)

(** Conservative footprint of the {e step} that starts at a yield point
    (everything the task executes from this park until its next one).
    The DFS explorer's sleep-set pruning treats two steps of different
    tasks as independent only when swapping them provably commutes:

    - [Read]: reads query-visible shared state only (labels, stamps);
      no writes.  Read–Read and Read–Link pairs commute.
    - [Link]: may read query-visible state and may write shared state
      that queries never read (list links, sizes, retry counters,
      mutex acquisition).  Link–Link pairs do {e not} commute (two
      acquirers of one mutex), so only Read–Link is independent.
    - [Write]: may write query-visible state (label/stamp updates,
      bucket splits).  Dependent with everything.

    When unsure, use [Write] — it only costs pruning, never
    soundness. *)
type kind = Read | Link | Write

(** Scheduling hint attached to a yield: [Spin] marks a point on a
    busy-wait path (a failed steal attempt) whose task should be
    deprioritized by priority-based controllers, so PCT does not pin a
    spinning worker at high priority forever. *)
type hint = Normal | Spin

(** What a controller must provide.  All callbacks may assume the
    serialization discipline: [c_yield]/[c_blocked]/[c_released] are
    only ever invoked by the single currently-granted task, [c_register]
    by a task entering its {!task_scope}. *)
type controller = {
  c_register : int -> unit;
      (** [c_register id] announces task [id] and blocks until the
          controller grants it the first step. *)
  c_finish : int -> unit;  (** the task's scope ended *)
  c_yield : layer:string -> name:string -> kind:kind -> hint:hint -> unit;
      (** park at a named point; returns when regranted *)
  c_blocked : Mutex.t -> unit;
      (** [try_lock] failed: park until the mutex has been released at
          least once and the task is regranted *)
  c_released : Mutex.t -> unit;  (** the mutex was just unlocked *)
}

val install : controller -> unit
(** Install a controller process-wide.  Only one can be active; the
    caller is responsible for quiescence (no controlled code running)
    around install/uninstall. *)

val uninstall : unit -> unit

val enabled : unit -> bool

val yield : ?kind:kind -> ?hint:hint -> layer:string -> name:string -> unit -> unit
(** A named yield point.  No-op without a controller.  [kind] defaults
    to [Write] (never prunes), [hint] to [Normal]. *)

val lock : layer:string -> name:string -> Mutex.t -> unit
(** Acquire [m].  Without a controller this is exactly [Mutex.lock m].
    Under a controller it is a decision point followed by a
    [Mutex.try_lock] loop that parks as blocked between attempts. *)

val unlock : Mutex.t -> unit
(** Release [m] and notify the controller (if any). *)

val locked : layer:string -> name:string -> Mutex.t -> (unit -> 'a) -> 'a
(** [locked ~layer ~name m f]: {!lock}, run [f], {!unlock} in a
    [Fun.protect] finalizer. *)

val task_scope : id:int -> (unit -> 'a) -> 'a
(** Run [f] as controlled task [id].  Without a controller this is
    [f ()].  Under one, registers, waits for the first grant, runs [f]
    and reports completion (also on exception). *)
