(** Schedule-space exploration drivers.

    Every entry point is generic over a [run] function mapping a
    {!Control.strategy} to a finished report plus an optional failure
    message; the caller's [run] must build {e fresh} state per call
    (see {!Cscript.run}) and must be deterministic — same strategy,
    same result.  On top of that, this module provides:

    - {!dfs}: bounded exhaustive enumeration of {e all} interleavings,
      with sleep-set pruning (Godefroid) driven by the conservative
      step kinds recorded at each decision;
    - {!pct_search}: one PCT run per seed (see {!Control.strategy.Pct});
    - {!sweep}: one seeded-random run per seed — the replay scheduler
      swept across seeds;
    - {!shrink_schedule}: ddmin a failing decision trace, keeping it
      failing, via {!Spr_check.Shrink.list}. *)

type stats = {
  mutable schedules : int;  (** complete runs executed *)
  mutable pruned : int;  (** subtrees skipped as sleep-set-redundant *)
  mutable max_depth : int;  (** longest decision trace seen *)
  mutable truncated : bool;  (** a budget cut enumeration short *)
}

type failure = { trace : int list; message : string }

type runner = Control.strategy -> Control.report * string option

val independent : Control.step_info -> Control.step_info -> bool
(** Commutation test used for sleep sets: true only for Read–Read,
    Read–Link and Link–Read step pairs (see {!Spr_schedhook.Hook.kind}). *)

val dfs : ?max_schedules:int -> run:runner -> unit -> stats * failure list
(** Depth-first enumeration: run the canonical schedule (lowest
    enabled id at every free decision), then for each decision point
    recursively explore the enabled-but-not-chosen siblings outside the
    node's sleep set, replaying the prefix via
    [Fixed { prefix; fallback = `Min_id }].  A node whose canonical
    choice is already in its sleep set terminates that suffix
    (counted in [pruned]) — the interleaving is equivalent to one
    already explored.  [max_schedules] (default 100_000) bounds the
    run count; hitting it sets [truncated]. *)

val pct_search :
  seeds:int list -> depth:int -> steps:int -> run:runner -> stats * failure list

val sweep : seeds:int list -> run:runner -> stats * failure list
(** [Random seed] runs, one per seed. *)

val shrink_schedule :
  ?fallback:[ `Round_robin | `Min_id ] -> run:runner -> int list -> int list
(** Minimize a failing trace: candidates are replayed as
    [Fixed { prefix; fallback }] (default [`Min_id]) and kept only if
    they still fail.  The result drives a failing schedule when
    replayed the same way. *)
