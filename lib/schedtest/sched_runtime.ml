type outcome = {
  result : Spr_runtime.Runtime.result option;
  control : Control.outcome;
  trace : int list;
}

let run ?max_decisions ?hooks ?seed ~workers strategy program =
  let c = Control.create ?max_decisions ~expected:workers strategy in
  let result = ref None in
  (* On abort (deadlock/livelock — always a bug for this runtime) the
     [Aborted] unwind can leave worker domains unjoined; that only
     happens on a failing path, where the test is about to report
     anyway. *)
  (try
     Control.with_installed c (fun () ->
         result := Some (Spr_runtime.Runtime.run ?hooks ?seed ~spin:1 ~workers program))
   with Control.Aborted -> ());
  { result = !result; control = Control.outcome c; trace = Control.trace c }
