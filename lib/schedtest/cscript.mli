(** Concurrent OM scripts: small multi-task programs over a concurrent
    order-maintenance structure, built so that {e every} interleaving
    has a unique correct answer.

    The key fact making schedule exploration decidable here: writers
    never change the {e relative} order of existing elements (inserts
    add fresh elements, rebalances are order-preserving).  So for any
    two elements created before the concurrent phase ("prelude"
    elements), [precedes x y] has one correct boolean under every
    schedule, precomputable serially.  The harness discipline that
    keeps this airtight:

    - readers query prelude elements only (always alive — no
      use-after-delete, whose answer would be schedule-dependent);
    - the writer deletes only elements it created itself during the
      concurrent phase, and never its own insertion anchors.

    A script is one writer (task 0) plus one or more readers.  The
    writer's op mix is engineered to trigger label rebalances within a
    handful of operations — [W_head_insert] chains insert before the
    current head, which forces a relabel pass over the whole (small)
    list almost immediately — so even DFS-sized scripts (≤ 6–8 ops
    total) drive queries through torn label states. *)

type writer_op =
  | W_head_insert  (** insert before the current head; anchors the next one *)
  | W_base_insert  (** insert immediately after the base element *)
  | W_delete_own
      (** delete the most recent surviving [W_base_insert] element;
          no-op when none — never touches prelude elements or head
          anchors *)

type query = { qx : int; qy : int }
(** A reader op: compare prelude elements [qx mod n] and [qy mod n]
    (n = prelude size incl. base).  Modular resolution keeps every
    sublist of a reader a valid reader — what {!Spr_check.Shrink.list}
    needs. *)

type t = {
  prelude_head : int;  (** serial insert-before-head chain length *)
  prelude_base : int;  (** serial insert-after-base count *)
  writer : writer_op list;
  readers : query list list;  (** task [r+1] runs [List.nth readers r] *)
}

val n_prelude : t -> int
(** Prelude element count including the base element. *)

val n_tasks : t -> int

val random :
  rng:Spr_util.Rng.t ->
  prelude_head:int ->
  prelude_base:int ->
  writer_len:int ->
  readers:int ->
  queries:int ->
  t
(** Reproducible random script; writer ops biased toward
    [W_head_insert] (the rebalance trigger). *)

val pp : Format.formatter -> t -> unit
(** Print as an OCaml-literal-shaped repro. *)

type run_result = {
  report : Control.report;
  failure : string option;
      (** [None] iff: outcome [Completed], no task exception, every
          reader answer matches the precomputed truth, the final state
          passes [check_invariants], and a post-run pairwise sweep
          agrees element-for-element with a serial {!Spr_om.Om} mirror
          of the same prelude + writer ops. *)
}

val run :
  ?sink:Spr_obs.Sink.t ->
  (module Spr_om.Om_intf.CONCURRENT) ->
  t ->
  Control.strategy ->
  run_result
(** Build a fresh structure, run the script's tasks under a fresh
    controller with the given strategy, and validate.  [sink] (default
    {!Spr_obs.Sink.null}) is installed on the structure under test, so
    a flight recorder armed there captures the insert/relabel event
    tail of a failing interleaving.  Deterministic: same script + same
    strategy reproduces the same report (and the same failure) byte
    for byte. *)

val shrink : still_failing:(t -> bool) -> t -> t
(** Minimize a failing script: ddmin the writer, then each reader,
    then trim prelude sizes and drop empty readers — all while
    [still_failing] holds. *)
