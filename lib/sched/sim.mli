(** Deterministic work-stealing scheduler simulator.

    Replaces the paper's Cilk runtime (see DESIGN.md, substitutions):
    [P] virtual workers execute a {!Spr_prog.Fj_program.t} under exact
    Cilk semantics —

    - {e work-first / continuation stealing}: at a [Spawn] the worker
      pushes the parent's continuation on the {e bottom} of its deque
      and descends into the child;
    - {e steal-from-top}: an idle worker picks a uniformly random victim
      and takes the {e oldest} continuation, which corresponds to the
      right subtree of the P-node highest in the victim's parse-tree
      walk — the property Sections 3–5 of the paper rely on;
    - a procedure whose continuation was stolen is resumed at a failed
      sync by the {e last returning child} (provably-good steals).

    Time is discrete: executing a thread costs its instruction count,
    spawn/sync/return bookkeeping and each steal attempt cost one tick.
    Instrumentation (SP-hybrid, race detection) attaches through
    {!hooks}; every hook returns extra virtual ticks to charge the
    current worker, which is how global-tier lock waiting enters the
    model.  Runs are reproducible from the seed. *)

type frame = {
  fid : int;
  proc : Spr_prog.Fj_program.proc;
  parent : frame option;
  mutable block : int;  (** current sync block *)
  mutable item : int;  (** next item within the block *)
  mutable outstanding : int;  (** children spawned in this block, not yet returned *)
  mutable stalled : bool;  (** parked at a failed sync *)
}

type hooks = {
  on_spawn : wid:int -> now:int -> parent:frame -> child:frame -> int;
      (** Fired when a spawn executes (continuation already pushed). *)
  on_thread : wid:int -> now:int -> frame -> Spr_prog.Fj_program.thread -> int;
      (** Fired as a thread starts executing — SP queries of a race
          detector happen here, with this thread as "currently
          executing". *)
  on_steal : thief:int -> victim:int -> now:int -> frame -> int;
      (** Fired when [thief] has taken [frame]'s continuation; the item
          before [frame.item] is the [Spawn] whose P-node the paper
          splits around.  SP-hybrid performs SPLIT + the global-tier
          multi-inserts here; the returned ticks model lock wait +
          insertion work. *)
  on_block_end : wid:int -> now:int -> frame -> int;
      (** Fired when a sync is passed (including the final one before
          the procedure returns). *)
  on_return : wid:int -> now:int -> child:frame -> parent:frame option -> inline:bool -> int;
      (** Fired when a procedure returns.  [inline] is true when this
          worker immediately continues the parent (its continuation was
          not stolen) — SP-hybrid then lets the parent adopt the
          child's trace, mirroring the U' threading of Figure 8. *)
  lock_busy : now:int -> bool;
      (** Used only for accounting: classifies steal attempts into the
          paper's buckets B6 (lock free) and B7 (lock held). *)
}

val no_hooks : hooks
(** All hooks return 0; [lock_busy] is always false. *)

type result = {
  time : int;  (** T{_P}: virtual makespan *)
  steals : int;  (** successful steals [s] *)
  steal_attempts : int;
  steal_attempts_lock_held : int;  (** bucket B7 *)
  work_ticks : int;  (** bucket B1: thread instruction ticks *)
  overhead_ticks : int;  (** spawn/sync/return bookkeeping ticks *)
  steal_ticks : int;  (** ticks spent on steal attempts (B6+B7) *)
  hook_ticks : int;  (** extra ticks charged by hooks (B2-B5) *)
  frames : int;  (** procedure activations *)
}

val run :
  ?hooks:hooks ->
  ?sink:Spr_obs.Sink.t ->
  ?seed:int ->
  ?max_ticks:int ->
  procs:int ->
  Spr_prog.Fj_program.t ->
  result
(** Simulate the program on [procs] virtual workers.

    [sink] (default {!Spr_obs.Sink.null}) receives one trace event per
    spawn, thread execution, passed sync, return and successful steal,
    each stamped with the virtual clock and acting worker; the sink's
    (now, wid) context is kept current across the run so hook-level
    instrumentation (SP-hybrid, OM, race detection) stamps its own
    events consistently.  On completion the [result] buckets are also
    added to the sink's metric registry under [sched/].
    @raise Invalid_argument if [procs < 1].
    @raise Failure if the run exceeds [max_ticks] (a scheduler-bug
    tripwire used by the test suite; default unlimited). *)
