open Spr_prog

type frame = {
  fid : int;
  proc : Fj_program.proc;
  parent : frame option;
  mutable block : int;
  mutable item : int;
  mutable outstanding : int;
  mutable stalled : bool;
}

type hooks = {
  on_spawn : wid:int -> now:int -> parent:frame -> child:frame -> int;
  on_thread : wid:int -> now:int -> frame -> Fj_program.thread -> int;
  on_steal : thief:int -> victim:int -> now:int -> frame -> int;
  on_block_end : wid:int -> now:int -> frame -> int;
  on_return : wid:int -> now:int -> child:frame -> parent:frame option -> inline:bool -> int;
  lock_busy : now:int -> bool;
}

let no_hooks =
  {
    on_spawn = (fun ~wid:_ ~now:_ ~parent:_ ~child:_ -> 0);
    on_thread = (fun ~wid:_ ~now:_ _ _ -> 0);
    on_steal = (fun ~thief:_ ~victim:_ ~now:_ _ -> 0);
    on_block_end = (fun ~wid:_ ~now:_ _ -> 0);
    on_return = (fun ~wid:_ ~now:_ ~child:_ ~parent:_ ~inline:_ -> 0);
    lock_busy = (fun ~now:_ -> false);
  }

type result = {
  time : int;
  steals : int;
  steal_attempts : int;
  steal_attempts_lock_held : int;
  work_ticks : int;
  overhead_ticks : int;
  steal_ticks : int;
  hook_ticks : int;
  frames : int;
}

type worker = {
  wid : int;
  deque : frame Spr_util.Deque.t;
  mutable busy_left : int;  (* remaining ticks of the current activity *)
  mutable continue_with : frame option;  (* what to run when free *)
}

type state = {
  hooks : hooks;
  sink : Spr_obs.Sink.t;
  rng : Spr_util.Rng.t;
  workers : worker array;
  mutable now : int;
  mutable done_ : bool;
  mutable next_fid : int;
  (* accounting *)
  mutable steals : int;
  mutable steal_attempts : int;
  mutable steal_attempts_lock_held : int;
  mutable work_ticks : int;
  mutable overhead_ticks : int;
  mutable steal_ticks : int;
  mutable hook_ticks : int;
}

let new_frame st proc parent =
  let f = { fid = st.next_fid; proc; parent; block = 0; item = 0; outstanding = 0; stalled = false } in
  st.next_fid <- st.next_fid + 1;
  f

(* A procedure finished: notify the parent.  Cilk return protocol: pop
   our own deque — if the parent's continuation is still there, continue
   it inline; otherwise the continuation was stolen, so decrement the
   parent's join counter and resume it only if we are the last child
   arriving at its failed sync. *)
let do_return st w f =
  let parent = f.parent in
  (match parent with Some p -> p.outstanding <- p.outstanding - 1 | None -> ());
  let fid = f.fid in
  let inline =
    match Spr_util.Deque.pop_bottom w.deque with
    | Some cont ->
        (* Steals remove older continuations first, so a non-empty
           bottom is necessarily our direct parent. *)
        assert (match parent with Some p -> p == cont | None -> false);
        w.continue_with <- Some cont;
        true
    | None -> begin
        match parent with
        | None ->
            st.done_ <- true;
            w.continue_with <- None;
            false
        | Some p ->
            if p.stalled && p.outstanding = 0 then begin
              p.stalled <- false;
              w.continue_with <- Some p
            end
            else w.continue_with <- None;
            false
      end
  in
  let h = st.hooks.on_return ~wid:w.wid ~now:st.now ~child:f ~parent ~inline in
  st.hook_ticks <- st.hook_ticks + h;
  w.busy_left <- w.busy_left + h;
  Spr_obs.Sink.emit st.sink (Spr_obs.Trace.Return { frame = fid; inline })

(* Process exactly one step of frame [f]; consumes the current tick and
   possibly schedules more busy ticks. *)
let process_step st w f =
  let blocks = f.proc.Fj_program.blocks in
  if f.item >= Array.length blocks.(f.block) then begin
    (* At the sync closing the current block. *)
    if f.outstanding > 0 then begin
      (* Failed sync: park the frame; the last returning child resumes
         it.  Our deque is empty here (see Sim invariants). *)
      assert (Spr_util.Deque.is_empty w.deque);
      f.stalled <- true;
      w.continue_with <- None;
      st.overhead_ticks <- st.overhead_ticks + 1
    end
    else begin
      let h = st.hooks.on_block_end ~wid:w.wid ~now:st.now f in
      Spr_obs.Sink.emit st.sink (Spr_obs.Trace.Sync { frame = f.fid });
      st.hook_ticks <- st.hook_ticks + h;
      st.overhead_ticks <- st.overhead_ticks + 1;
      f.block <- f.block + 1;
      f.item <- 0;
      if f.block >= Array.length blocks then do_return st w f
      else w.continue_with <- Some f;
      w.busy_left <- w.busy_left + h
    end
  end
  else begin
    match blocks.(f.block).(f.item) with
    | Fj_program.Run u ->
        f.item <- f.item + 1;
        let h = st.hooks.on_thread ~wid:w.wid ~now:st.now f u in
        Spr_obs.Sink.emit st.sink
          (Spr_obs.Trace.Thread_run { tid = u.Fj_program.tid; cost = u.Fj_program.cost });
        st.hook_ticks <- st.hook_ticks + h;
        st.work_ticks <- st.work_ticks + u.Fj_program.cost;
        (* This tick is the first of the thread's cost. *)
        w.busy_left <- u.Fj_program.cost + h - 1;
        w.continue_with <- Some f
    | Fj_program.Spawn g ->
        f.item <- f.item + 1;
        f.outstanding <- f.outstanding + 1;
        Spr_util.Deque.push_bottom w.deque f;
        let child = new_frame st g (Some f) in
        let h = st.hooks.on_spawn ~wid:w.wid ~now:st.now ~parent:f ~child in
        Spr_obs.Sink.emit st.sink (Spr_obs.Trace.Spawn { parent = f.fid; child = child.fid });
        st.hook_ticks <- st.hook_ticks + h;
        st.overhead_ticks <- st.overhead_ticks + 1;
        w.busy_left <- h;
        w.continue_with <- Some child
  end

let attempt_steal st w =
  let p = Array.length st.workers in
  st.steal_attempts <- st.steal_attempts + 1;
  st.steal_ticks <- st.steal_ticks + 1;
  if st.hooks.lock_busy ~now:st.now then
    st.steal_attempts_lock_held <- st.steal_attempts_lock_held + 1;
  if p > 1 then begin
    let victim_id =
      let v = Spr_util.Rng.int st.rng (p - 1) in
      if v >= w.wid then v + 1 else v
    in
    let victim = st.workers.(victim_id) in
    match Spr_util.Deque.pop_top victim.deque with
    | Some f ->
        st.steals <- st.steals + 1;
        Spr_obs.Sink.emit st.sink
          (Spr_obs.Trace.Steal { thief = w.wid; victim = victim_id; frame = f.fid });
        let h = st.hooks.on_steal ~thief:w.wid ~victim:victim_id ~now:st.now f in
        st.hook_ticks <- st.hook_ticks + h;
        w.busy_left <- h;
        w.continue_with <- Some f
    | None -> ()
  end

(* Fold the run's bucket accounting into the sink's metrics registry
   (counters accumulate across runs; diff snapshots to isolate one). *)
let record_metrics sink (r : result) =
  match Spr_obs.Sink.metrics sink with
  | None -> ()
  | Some m ->
      let c key v = Spr_obs.Metrics.add (Spr_obs.Metrics.counter m key) v in
      c "sched/steals" r.steals;
      c "sched/steal_attempts" r.steal_attempts;
      c "sched/steal_attempts_lock_held" r.steal_attempts_lock_held;
      c "sched/work_ticks" r.work_ticks;
      c "sched/overhead_ticks" r.overhead_ticks;
      c "sched/steal_ticks" r.steal_ticks;
      c "sched/hook_ticks" r.hook_ticks;
      c "sched/frames" r.frames;
      Spr_obs.Metrics.set (Spr_obs.Metrics.gauge m "sched/time") (float_of_int r.time)

let run ?(hooks = no_hooks) ?(sink = Spr_obs.Sink.null) ?(seed = 1) ?(max_ticks = max_int) ~procs
    program =
  if procs < 1 then invalid_arg "Sim.run: need at least one worker";
  let st =
    {
      hooks;
      sink;
      rng = Spr_util.Rng.create seed;
      workers =
        Array.init procs (fun wid ->
            { wid; deque = Spr_util.Deque.create (); busy_left = 0; continue_with = None });
      now = 0;
      done_ = false;
      next_fid = 0;
      steals = 0;
      steal_attempts = 0;
      steal_attempts_lock_held = 0;
      work_ticks = 0;
      overhead_ticks = 0;
      steal_ticks = 0;
      hook_ticks = 0;
    }
  in
  let root = new_frame st (Fj_program.main program) None in
  st.workers.(0).continue_with <- Some root;
  while not st.done_ do
    Array.iter
      (fun w ->
        if st.done_ then ()
        else if w.busy_left > 0 then w.busy_left <- w.busy_left - 1
        else begin
          Spr_obs.Sink.set_context sink ~now:st.now ~wid:w.wid;
          match w.continue_with with
          | Some f -> process_step st w f
          | None -> attempt_steal st w
        end)
      st.workers;
    st.now <- st.now + 1;
    if st.now > max_ticks then failwith "Sim.run: max_ticks exceeded (scheduler livelock?)"
  done;
  let r =
    {
      time = st.now;
      steals = st.steals;
      steal_attempts = st.steal_attempts;
      steal_attempts_lock_held = st.steal_attempts_lock_held;
      work_ticks = st.work_ticks;
      overhead_ticks = st.overhead_ticks;
      steal_ticks = st.steal_ticks;
      hook_ticks = st.hook_ticks;
      frames = st.next_fid;
    }
  in
  record_metrics sink r;
  r
