(** Fused packed English/Hebrew order maintenance.

    SP-order (paper Fig. 5) maintains {e two} total orders — English
    and Hebrew — over the {e same} parse-tree nodes.  {!Om_packed}
    removed per-operation allocation for one order; this structure goes
    the rest of the way and stores both orders in a single
    struct-of-arrays: one [int] handle denotes a node in both orders,
    and its English and Hebrew tags/links/bucket indices are
    interleaved in one stride-8 record, so a fork touches one record
    per node and an SP query reads both labels of both operands from
    the same cache lines.

    Each order runs the identical two-level algorithm as {!Om} /
    {!Om_packed} (capacity-62 buckets, Bender-style top-level
    relabeling over the 60-bit universe), and the insertion sequences
    exposed here ({!insert_children}) are exactly those {!Sp_order}
    issues, so the per-plane relabel counters are bit-identical to
    running a boxed English {!Om} and Hebrew {!Om} side by side
    (pinned by qcheck).  Insert, query and delete allocate nothing;
    {!reset} rewinds to a fresh single-element structure without
    touching the GC, which is what lets an end-to-end [sp-order-fused]
    run hold steady at zero minor words. *)

type t

type elt = int
(** Element handle, valid in both orders at once. *)

val name : string
(** ["om-fused"]. *)

val create : unit -> t
(** Fresh structure containing only {!base}. *)

val base : t -> elt
(** The initial element (always [0]); never deletable.  Maps to the
    parse-tree root's position in both orders. *)

val reset : t -> unit
(** Rewind to the create-time state — single base element, empty free
    lists, zeroed counters — without allocating or releasing arrays.
    O(1).  Existing handles other than {!base} become invalid. *)

val insert_children : t -> elt -> parallel:bool -> elt * elt
(** [insert_children t x ~parallel] allocates two fresh elements (the
    left and right children of parse-tree node [x]) and splices them
    into both orders: English always [x; left; right]; Hebrew
    [x; left; right] when [parallel] is [false] (S-node) and
    [x; right; left] when [true] (P-node) — the direction flip of the
    paper's Corollary 2.  Returns [(left, right)].  Allocates the
    result tuple only; use {!insert_children_packed} on zero-alloc
    paths.
    @raise Invalid_argument if [x] was deleted. *)

val insert_children_packed : t -> elt -> parallel:bool -> int
(** Allocation-free variant: result is [(left lsl 31) lor right];
    unpack with {!packed_left} / {!packed_right}. *)

val packed_left : int -> elt

val packed_right : int -> elt

val precedes_eng : t -> elt -> elt -> bool
(** Strict English order.  O(1), allocation-free.
    @raise Invalid_argument on a deleted operand. *)

val precedes_heb : t -> elt -> elt -> bool
(** Strict Hebrew order. *)

val sp_precedes : t -> elt -> elt -> bool
(** Both orders agree: [x] precedes [y] in English {e and} Hebrew —
    the paper's serial-before relation. *)

val sp_parallel : t -> elt -> elt -> bool
(** The orders disagree — the two nodes are logically parallel. *)

val delete : t -> elt -> unit
(** Remove [e] from both orders and recycle its slot through the free
    list.
    @raise Invalid_argument on double delete or on {!base}. *)

val size : t -> int
(** Live elements (counting {!base}). *)

val stats_eng : t -> Om_intf.stats
(** English-plane relabel accounting — bit-identical to a boxed
    English {!Om} driven with the same sequence. *)

val stats_heb : t -> Om_intf.stats
(** Hebrew-plane relabel accounting. *)

val item_slots : t -> int
(** Item slots ever allocated (high-water mark); free-list reuse keeps
    this flat across delete/re-insert churn. *)

val free_items : t -> int
(** Item slots currently on the free list. *)

val bucket_counts : t -> int * int
(** Live bucket counts, [(english, hebrew)]. *)

val set_sink : t -> Spr_obs.Sink.t -> unit
(** Route relabel/bucket-split events to an observability sink
    (no-op-by-default). *)

val check_invariants : t -> unit
(** Verify both planes end-to-end: strictly increasing bucket and
    local tags, consistent prev/next links, bucket membership, size
    and free-list accounting, and that no dead slot is linked in
    either order.  Test hook; O(n).
    @raise Failure on violation. *)
