type elt = {
  mutable tag : int;
  mutable prev : elt option;
  mutable next : elt option;
  mutable alive : bool;
}

type t = {
  base_elt : elt;
  mutable bits : int;  (* universe = 2^bits; kept within [4n, 16n] *)
  mutable size : int;
  mutable rebuilds : int;
  st : Om_intf.stats;
}

let name = "list-labeling(u=O(n))"

let create () =
  let base_elt = { tag = 0; prev = None; next = None; alive = true } in
  { base_elt; bits = 4; size = 1; rebuilds = 0; st = Om_intf.fresh_stats () }

let base t = t.base_elt

let universe t = 1 lsl t.bits

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

let rec head e = match e.prev with Some p -> head p | None -> e

(* Spread all elements evenly over the (possibly freshly doubled)
   universe. *)
let rebuild t =
  t.rebuilds <- t.rebuilds + 1;
  Om_intf.count_pass t.st t.size;
  (* Root density stays below 1/4: u >= 4(n+1). *)
  while 1 lsl t.bits < 4 * (t.size + 1) do
    t.bits <- t.bits + 1
  done;
  (* Spread over size+1 cells so both the head and the tail keep a
     usable gap even at the minimum density (cell = 2). *)
  let cell = universe t / (t.size + 1) in
  let rec assign e j =
    e.tag <- (j + 1) * cell;
    match e.next with Some nxt -> assign nxt (j + 1) | None -> ()
  in
  assign (head t.base_elt) 0

(* Density-based local rebalance: find the smallest aligned range of
   width 2^i around [x] that is sparse enough and respread it evenly. *)
let rebalance t x =
  let range_members x lo hi =
    let rec leftmost e =
      match e.prev with Some p when p.tag >= lo -> leftmost p | _ -> e
    in
    let first = leftmost x in
    let rec count e acc =
      match e.next with Some nxt when nxt.tag < hi -> count nxt (acc + 1) | _ -> acc
    in
    (first, count first 1)
  in
  let rec search i =
    if i > t.bits then None
    else begin
      let width = 1 lsl i in
      let lo = x.tag land lnot (width - 1) in
      let first, count = range_members x lo (lo + width) in
      (* Density thresholds loosen toward the leaves and tighten toward
         the root (the classical calibration): tau = 1/2 for leaf
         ranges down to 1/4 at the root.  A freshly respread level-i
         range leaves every smaller enclosing range with slack
         proportional to the level difference, which is what amortizes
         the relabeling to O(lg^2 n) per insertion. *)
      let frac = float_of_int (i - 1) /. float_of_int (max 1 (t.bits - 1)) in
      let tau = 0.5 -. (0.25 *. frac) in
      if float_of_int count <= tau *. float_of_int width && width >= 2 * (count + 1) then
        Some (first, count, lo, width)
      else search (i + 1)
    end
  in
  match search 1 with
  | None -> rebuild t
  | Some (first, count, lo, width) ->
      Om_intf.count_pass t.st count;
      let cell = width / (count + 1) in
      let rec assign e j =
        e.tag <- lo + ((j + 1) * cell);
        if j + 1 < count then
          match e.next with Some nxt -> assign nxt (j + 1) | None -> assert false
      in
      assign first 0

let gap_after t x =
  let hi = match x.next with Some y -> y.tag | None -> universe t in
  hi - x.tag - 1

let insert_after t x =
  check_alive "Om_file.insert_after" x;
  if 1 lsl t.bits < 4 * (t.size + 1) then rebuild t;
  if gap_after t x < 1 then rebalance t x;
  if gap_after t x < 1 then rebuild t;
  let gap = gap_after t x in
  assert (gap >= 1);
  let y = { tag = x.tag + 1 + ((gap - 1) / 2); prev = Some x; next = x.next; alive = true } in
  (match x.next with Some n -> n.prev <- Some y | None -> ());
  x.next <- Some y;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  y

let insert_before t x =
  check_alive "Om_file.insert_before" x;
  match x.prev with
  | Some p -> insert_after t p
  | None ->
      if x.tag < 1 then rebalance t x;
      if x.tag < 1 then rebuild t;
      assert (x.tag >= 1);
      let y = { tag = x.tag / 2; prev = None; next = Some x; alive = true } in
      x.prev <- Some y;
      t.size <- t.size + 1;
      t.st.inserts <- t.st.inserts + 1;
      y

let insert_many_after t x k =
  let rec go anchor k acc =
    if k = 0 then List.rev acc
    else begin
      let y = insert_after t anchor in
      go y (k - 1) (y :: acc)
    end
  in
  go x k []

let precedes _t x y =
  check_alive "Om_file.precedes" x;
  check_alive "Om_file.precedes" y;
  x.tag < y.tag

let delete t e =
  check_alive "Om_file.delete" e;
  if e == t.base_elt then invalid_arg "Om_file.delete: cannot delete base";
  (match e.prev with Some p -> p.next <- e.next | None -> ());
  (match e.next with Some n -> n.prev <- e.prev | None -> ());
  e.alive <- false;
  t.size <- t.size - 1

let size t = t.size

let tag _t e = e.tag

let stats t = t.st

let rebuilds t = t.rebuilds

(* No structural events to report; accept and ignore the sink so the
   module satisfies Om_intf.S. *)
let set_sink _ _ = ()
