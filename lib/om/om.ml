(* Two-level order maintenance.  Buckets hold at most [capacity] items;
   since capacity = 62 >= lg n for any feasible n, this matches the
   Theta(lg n) bucket size of the classical construction and yields O(1)
   amortized insertions overall. *)

let capacity = 62

type item = {
  mutable ltag : int;
  mutable iprev : item option;
  mutable inext : item option;
  mutable bkt : bucket;
  mutable alive : bool;
}

and bucket = {
  mutable btag : int;
  mutable bprev : bucket option;
  mutable bnext : bucket option;
  mutable first : item option;
  mutable bsize : int;
}

type elt = item

type t = {
  base_item : item;
  t_param : float;
  mutable size : int;
  mutable nbuckets : int;
  st : Om_intf.stats;
  mutable sink : Spr_obs.Sink.t;
}

let name = "om-two-level"

let set_sink t sink = t.sink <- sink

module Top = Labeling.Make (struct
  type elt = bucket

  let tag b = b.btag
  let set_tag b v = b.btag <- v
  let prev b = b.bprev
  let next b = b.bnext
end)

let create () =
  let rec b = { btag = 0; bprev = None; bnext = None; first = Some base_item; bsize = 1 }
  and base_item =
    { ltag = Labeling.universe / 2; iprev = None; inext = None; bkt = b; alive = true }
  in
  {
    base_item;
    t_param = 1.3;
    size = 1;
    nbuckets = 1;
    st = Om_intf.fresh_stats ();
    sink = Spr_obs.Sink.null;
  }

let base t = t.base_item

(* Deleted items are repointed here so they retain no live structure.
   The tombstone is never linked into any bucket list. *)
let tombstone = { btag = min_int; bprev = None; bnext = None; first = None; bsize = 0 }

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

(* ------------------------------------------------------------------ *)
(* Top level: bucket tags via one-level labeling.                      *)

let top_rebalance t b =
  let first, count, lo, width = Top.find_range ~t_param:t.t_param b in
  Om_intf.count_pass t.st count;
  Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
  Top.spread ~lo ~width ~count first

(* Fresh empty bucket placed immediately after [b] in the top order. *)
let new_bucket_after t b =
  if Top.gap_after b < 1 then top_rebalance t b;
  let gap = Top.gap_after b in
  assert (gap >= 1);
  let b' =
    { btag = b.btag + 1 + ((gap - 1) / 2); bprev = Some b; bnext = b.bnext; first = None; bsize = 0 }
  in
  (match b.bnext with Some n -> n.bprev <- Some b' | None -> ());
  b.bnext <- Some b';
  t.nbuckets <- t.nbuckets + 1;
  b'

(* ------------------------------------------------------------------ *)
(* Bottom level: local tags inside one bucket.                         *)

(* Spread the [bsize] items of [b] evenly across the local universe. *)
let respace t b =
  let count = b.bsize in
  if count > 0 then begin
    Om_intf.count_pass t.st count;
    Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
    (* One store and one add per item; the cell division is hoisted. *)
    let cell = Labeling.universe / count in
    let rec assign it tag =
      it.ltag <- tag;
      match it.inext with Some nxt -> assign nxt (tag + cell) | None -> ()
    in
    match b.first with Some f -> assign f (cell / 2) | None -> assert false
  end

(* Split a full bucket: move its upper half into a fresh bucket placed
   right after it, then respace both halves. *)
let split t b =
  let keep = b.bsize / 2 in
  let rec nth it j = if j = 0 then it else nth (Option.get it.inext) (j - 1) in
  let last_kept = nth (Option.get b.first) (keep - 1) in
  let moved_first = Option.get last_kept.inext in
  let b' = new_bucket_after t b in
  last_kept.inext <- None;
  moved_first.iprev <- None;
  b'.first <- Some moved_first;
  b'.bsize <- b.bsize - keep;
  b.bsize <- keep;
  let rec claim it =
    it.bkt <- b';
    match it.inext with Some nxt -> claim nxt | None -> ()
  in
  claim moved_first;
  Spr_obs.Sink.emit_om_bucket_split t.sink ~om:name;
  respace t b;
  respace t b'

let local_gap_after x =
  let hi = match x.inext with Some y -> y.ltag | None -> Labeling.universe in
  hi - x.ltag - 1

let insert_after t x =
  check_alive "Om.insert_after" x;
  if x.bkt.bsize >= capacity then split t x.bkt;
  let b = x.bkt in
  if local_gap_after x < 1 then respace t b;
  let gap = local_gap_after x in
  assert (gap >= 1);
  let y =
    { ltag = x.ltag + 1 + ((gap - 1) / 2); iprev = Some x; inext = x.inext; bkt = b; alive = true }
  in
  (match x.inext with Some n -> n.iprev <- Some y | None -> ());
  x.inext <- Some y;
  b.bsize <- b.bsize + 1;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  y

let insert_before t x =
  check_alive "Om.insert_before" x;
  match x.iprev with
  | Some p -> insert_after t p
  | None ->
      (* [x] heads its bucket. *)
      if x.bkt.bsize >= capacity then split t x.bkt;
      let b = x.bkt in
      if x.ltag < 1 then respace t b;
      assert (x.ltag >= 1);
      let y = { ltag = x.ltag / 2; iprev = None; inext = Some x; bkt = b; alive = true } in
      x.iprev <- Some y;
      b.first <- Some y;
      b.bsize <- b.bsize + 1;
      t.size <- t.size + 1;
      t.st.inserts <- t.st.inserts + 1;
      y

let insert_many_after t x k =
  let rec go anchor k acc =
    if k = 0 then List.rev acc
    else begin
      let y = insert_after t anchor in
      go y (k - 1) (y :: acc)
    end
  in
  go x k []

let precedes _t x y =
  check_alive "Om.precedes" x;
  check_alive "Om.precedes" y;
  if x.bkt == y.bkt then x.ltag < y.ltag else x.bkt.btag < y.bkt.btag

let delete t e =
  check_alive "Om.delete" e;
  if e == t.base_item then invalid_arg "Om.delete: cannot delete base";
  let b = e.bkt in
  (match e.iprev with Some p -> p.inext <- e.inext | None -> b.first <- e.inext);
  (match e.inext with Some n -> n.iprev <- e.iprev | None -> ());
  e.alive <- false;
  e.iprev <- None;
  e.inext <- None;
  e.bkt <- tombstone;
  b.bsize <- b.bsize - 1;
  t.size <- t.size - 1;
  if b.bsize = 0 then begin
    (match b.bprev with Some p -> p.bnext <- b.bnext | None -> ());
    (match b.bnext with Some n -> n.bprev <- b.bprev | None -> ());
    b.bprev <- None;
    b.bnext <- None;
    b.first <- None;
    t.nbuckets <- t.nbuckets - 1
  end

let is_detached e =
  (not e.alive) && e.iprev = None && e.inext = None && e.bkt == tombstone

let size t = t.size

let stats t = t.st

let bucket_count t = t.nbuckets

let check_invariants t =
  (* Find the first bucket by walking left from the base's bucket. *)
  let rec head b = match b.bprev with Some p -> head p | None -> b in
  let rec check_bucket b prev_btag total nbuckets =
    (match prev_btag with
    | Some pt when pt >= b.btag -> failwith "Om.check_invariants: bucket tags not increasing"
    | _ -> ());
    let rec check_items it prev_ltag n =
      (match prev_ltag with
      | Some pl when pl >= it.ltag -> failwith "Om.check_invariants: local tags not increasing"
      | _ -> ());
      if not (it.bkt == b) then failwith "Om.check_invariants: stale bucket pointer";
      if not it.alive then failwith "Om.check_invariants: dead item linked";
      match it.inext with
      | Some nxt ->
          (match nxt.iprev with
          | Some p when p == it -> ()
          | _ -> failwith "Om.check_invariants: broken item back-link");
          check_items nxt (Some it.ltag) (n + 1)
      | None -> n + 1
    in
    let n =
      match b.first with
      | Some f ->
          if f.iprev <> None then failwith "Om.check_invariants: bucket head has iprev";
          check_items f None 0
      | None -> 0
    in
    if n <> b.bsize then failwith "Om.check_invariants: bucket size mismatch";
    if n = 0 then failwith "Om.check_invariants: empty bucket linked";
    match b.bnext with
    | Some nxt ->
        (match nxt.bprev with
        | Some p when p == b -> ()
        | _ -> failwith "Om.check_invariants: broken bucket back-link");
        check_bucket nxt (Some b.btag) (total + n) (nbuckets + 1)
    | None -> (total + n, nbuckets + 1)
  in
  let total, nbuckets = check_bucket (head t.base_item.bkt) None 0 0 in
  if total <> t.size then failwith "Om.check_invariants: size mismatch";
  if nbuckets <> t.nbuckets then failwith "Om.check_invariants: bucket count mismatch"
