type elt = {
  mutable tag : int;
  mutable prev : elt option;
  mutable next : elt option;
  mutable alive : bool;
}

type t = {
  base_elt : elt;
  t_param : float;
  mutable size : int;
  st : Om_intf.stats;
}

let name = "om-label-1level"

module Lab = Labeling.Make (struct
  type nonrec elt = elt

  let tag e = e.tag
  let set_tag e v = e.tag <- v
  let prev e = e.prev
  let next e = e.next
end)

let create_tuned ~t_param =
  if t_param <= 1.0 || t_param >= 2.0 then invalid_arg "Om_label: T must be in (1,2)";
  let base_elt = { tag = 0; prev = None; next = None; alive = true } in
  { base_elt; t_param; size = 1; st = Om_intf.fresh_stats () }

let create () = create_tuned ~t_param:1.3

let base t = t.base_elt

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

let rebalance t x =
  let first, count, lo, width = Lab.find_range ~t_param:t.t_param x in
  Om_intf.count_pass t.st count;
  Lab.spread ~lo ~width ~count first

let insert_after t x =
  check_alive "Om_label.insert_after" x;
  if Lab.gap_after x < 1 then rebalance t x;
  let gap = Lab.gap_after x in
  assert (gap >= 1);
  let y = { tag = x.tag + 1 + ((gap - 1) / 2); prev = Some x; next = x.next; alive = true } in
  (match x.next with Some n -> n.prev <- Some y | None -> ());
  x.next <- Some y;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  y

let insert_before t x =
  check_alive "Om_label.insert_before" x;
  match x.prev with
  | Some p -> insert_after t p
  | None ->
      (* [x] is the head: make room below its tag, then prepend. *)
      if x.tag < 1 then rebalance t x;
      if x.tag < 1 then failwith "Om_label.insert_before: no room below head";
      let y = { tag = x.tag / 2; prev = None; next = Some x; alive = true } in
      x.prev <- Some y;
      t.size <- t.size + 1;
      t.st.inserts <- t.st.inserts + 1;
      y

let insert_many_after t x k =
  let rec go anchor k acc =
    if k = 0 then List.rev acc
    else begin
      let y = insert_after t anchor in
      go y (k - 1) (y :: acc)
    end
  in
  go x k []

let precedes _t x y =
  check_alive "Om_label.precedes" x;
  check_alive "Om_label.precedes" y;
  x.tag < y.tag

let delete t e =
  check_alive "Om_label.delete" e;
  if e == t.base_elt then invalid_arg "Om_label.delete: cannot delete base";
  (match e.prev with Some p -> p.next <- e.next | None -> ());
  (match e.next with Some n -> n.prev <- e.prev | None -> ());
  e.alive <- false;
  t.size <- t.size - 1

let size t = t.size

let tag _t e = e.tag

let stats t = t.st

(* No structural events to report; accept and ignore the sink so the
   module satisfies Om_intf.S. *)
let set_sink _ _ = ()
