(** Shared tag-range machinery for label-based order maintenance.

    The label-based OM structures ([Om_label], [Om], [Om_concurrent])
    all assign integer {e tags} from a 60-bit universe to list elements
    such that list order equals tag order.  When an insertion finds no
    free tag between two neighbours, the structure {e rebalances}: it
    finds the smallest enclosing tag range — aligned, of width 2{^i} —
    that is sparse enough (density below (2/T){^i}/2{^i} for a tuning
    constant 1 < T < 2, after Bender–Cole–Demaine–Farach-Colton–Zito),
    and respreads that range's elements evenly.  This yields O(lg n)
    amortized relabels per insertion for the one-level structure and is
    the building block of the O(1) two-level structure.

    This module factors out the range search and target-tag arithmetic
    so that each structure only implements its own relabel {e commit}
    (the concurrent one needs the paper's five-pass protocol). *)

val universe_bits : int
(** Tag universe is [\[0, 2{^universe_bits})]; 60, so tags and their
    midpoint arithmetic stay within non-negative OCaml ints. *)

val universe : int
(** [2{^universe_bits}]. *)

(** Access to the linked structure being rebalanced.  [prev]/[next]
    traverse the total order; [None] at either end. *)
module type LINKED = sig
  type elt

  val tag : elt -> int
  val set_tag : elt -> int -> unit
  val prev : elt -> elt option
  val next : elt -> elt option
end

module Make (L : LINKED) : sig
  val gap_after : L.elt -> int
  (** Free tag slots strictly between [x] and its successor (the end of
      the universe acts as the right boundary). *)

  val find_range : t_param:float -> L.elt -> L.elt * int * int * int
  (** [find_range ~t_param x] is [(leftmost, count, lo, width)]: the
      smallest aligned enclosing range of some width [2{^i}] around [x]
      that is sparse enough to relabel ([count] elements currently in
      [\[lo, lo+width)], [leftmost] being the first).  Sparse enough
      means [count <= (2/T)^i] {e and} [width / count >= 8] so that the
      even respread leaves usable gaps.
      @raise Failure if the universe itself is too dense (capacity). *)

  val target : lo:int -> width:int -> count:int -> int -> int
  (** [target ~lo ~width ~count j] is the evenly spread tag of the
      [j]th (0-based) of [count] elements: the midpoint of the [j]th of
      [count] equal cells of [\[lo, lo+width)].  Used by the concurrent
      structures, whose multi-pass relabel protocols need one tag at a
      time; serial sweeps should use {!spread}. *)

  val spread : lo:int -> width:int -> count:int -> L.elt -> unit
  (** [spread ~lo ~width ~count first] assigns [target ~lo ~width
      ~count j] to the [j]th member in one sweep from [first], with the
      cell division hoisted out of the loop — the relabel commit for
      serial structures. *)
end
