type elt = {
  mutable rank : int;
  mutable prev : elt option;
  mutable next : elt option;
  mutable alive : bool;
}

type t = { base_elt : elt; mutable size : int; st : Om_intf.stats }

let name = "om-naive"

let create () =
  let base_elt = { rank = 0; prev = None; next = None; alive = true } in
  { base_elt; size = 1; st = Om_intf.fresh_stats () }

let base t = t.base_elt

(* Walk to the true head (the base may have had elements inserted before
   it) and renumber every element.  Every renumber is one relabel pass
   moving all [size] elements — the Θ(n)-per-insert accounting the
   amortized structures are compared against. *)
let renumber t =
  Om_intf.count_pass t.st t.size;
  let rec head e = match e.prev with Some p -> head p | None -> e in
  let rec go i e =
    e.rank <- i;
    match e.next with Some n -> go (i + 1) n | None -> ()
  in
  go 0 (head t.base_elt)

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

let insert_after t x =
  check_alive "Om_naive.insert_after" x;
  let y = { rank = 0; prev = Some x; next = x.next; alive = true } in
  (match x.next with Some n -> n.prev <- Some y | None -> ());
  x.next <- Some y;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  renumber t;
  y

let insert_before t x =
  check_alive "Om_naive.insert_before" x;
  let y = { rank = 0; prev = x.prev; next = Some x; alive = true } in
  (match x.prev with Some p -> p.next <- Some y | None -> ());
  x.prev <- Some y;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  renumber t;
  y

let insert_many_after t x k =
  check_alive "Om_naive.insert_many_after" x;
  let rec go anchor k acc =
    if k = 0 then List.rev acc
    else begin
      let y = insert_after t anchor in
      go y (k - 1) (y :: acc)
    end
  in
  go x k []

let precedes _t x y =
  check_alive "Om_naive.precedes" x;
  check_alive "Om_naive.precedes" y;
  x.rank < y.rank

let delete t e =
  check_alive "Om_naive.delete" e;
  if e == t.base_elt then invalid_arg "Om_naive.delete: cannot delete base";
  (match e.prev with Some p -> p.next <- e.next | None -> ());
  (match e.next with Some n -> n.prev <- e.prev | None -> ());
  e.alive <- false;
  t.size <- t.size - 1;
  renumber t

let size t = t.size

let rank _t e = e.rank

let stats t = t.st

(* No structural events to report; accept and ignore the sink so the
   module satisfies Om_intf.S. *)
let set_sink _ _ = ()
