(* Bit-packed (depth, fork-path) labels, DePa-style.

   A path records, for every parse-tree level below the root, two bits:
   the kind of the internal node left behind (S or P) and the direction
   taken (left or right).  Level i lives at bit [i mod 62] of word
   [i / 62]; the two youngest (possibly partial) words sit unboxed in
   the record and full words are frozen into an immutable spill array
   that children share with their parent, so [extend] is O(1) except at
   a 62-level boundary, where it copies the spill (amortized O(1/62)
   words per level).

   Two distinct paths, neither an ancestor of the other, first differ
   at the direction bit of their LCA's level; [relate] finds that bit
   with word-sized xors, then reads the kind bit at the same position:
   P means the paths are parallel, S means the left one comes first.
   No comparison ever looks past the divergence word, so a query costs
   O(lca-depth / 62) — one compare for any nesting up to 62. *)

type t = {
  depth : int;  (* bits assigned; root = 0 *)
  kinds : int;  (* partial word: bits [0, depth mod 62); 1 = P-node *)
  dirs : int;  (* partial word: 1 = right child *)
  spill : int array;  (* frozen full words, interleaved: (2w) kinds, (2w+1) dirs *)
}

let bits_per_word = 62

let root = { depth = 0; kinds = 0; dirs = 0; spill = [||] }

let depth t = t.depth

(* Occupied packed words (kind/dir pairs), partial word included. *)
let words t = (t.depth + bits_per_word - 1) / bits_per_word

(* Logical footprint in machine words: depth + the packed word pairs.
   The "Space per node" coordinate of Figure 3. *)
let size_words t = 1 + (2 * words t)

let equal a b =
  a.depth = b.depth && a.kinds = b.kinds && a.dirs = b.dirs
  && (a.spill == b.spill || a.spill = b.spill)

let extend t ~parallel ~right =
  let b = t.depth mod bits_per_word in
  let kinds = if parallel then t.kinds lor (1 lsl b) else t.kinds in
  let dirs = if right then t.dirs lor (1 lsl b) else t.dirs in
  let depth = t.depth + 1 in
  if b = bits_per_word - 1 then begin
    (* Word full: freeze it.  The only point where the 62-bit budget
       would otherwise silently overflow — spill instead. *)
    let nw = Array.length t.spill in
    let spill = Array.make (nw + 2) 0 in
    Array.blit t.spill 0 spill 0 nw;
    spill.(nw) <- kinds;
    spill.(nw + 1) <- dirs;
    { depth; kinds = 0; dirs = 0; spill }
  end
  else { depth; kinds; dirs; spill = t.spill }

let kinds_word t w = if 2 * w < Array.length t.spill then t.spill.(2 * w) else t.kinds

let dirs_word t w = if 2 * w < Array.length t.spill then t.spill.((2 * w) + 1) else t.dirs

(* Trailing zeros of a non-zero word (branchy binary descent — the
   query is dominated by the word scan, not this). *)
let ctz v =
  let n = ref 0 and v = ref (v land -v) in
  if !v land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    v := !v lsr 32
  end;
  if !v land 0xFFFF = 0 then begin
    n := !n + 16;
    v := !v lsr 16
  end;
  if !v land 0xFF = 0 then begin
    n := !n + 8;
    v := !v lsr 8
  end;
  if !v land 0xF = 0 then begin
    n := !n + 4;
    v := !v lsr 4
  end;
  if !v land 0x3 = 0 then begin
    n := !n + 2;
    v := !v lsr 2
  end;
  if !v land 0x1 = 0 then incr n;
  !n

type rel = Before | After | Par

let ancestor () = invalid_arg "Fork_path.relate: one path is a prefix of the other"

(* Direction bits determine the tree path, so if the dir words agree
   through the shorter path's last bit, the shorter is an ancestor of
   the longer — an error here (leaves have no descendants; clients
   query leaves).  Otherwise the lowest differing dir bit is exactly
   the LCA level: below it both words carry the identical shared
   prefix, at it the two children split. *)
let relate a b =
  let min_depth = if a.depth < b.depth then a.depth else b.depth in
  if min_depth = 0 then ancestor ();
  let rec go w =
    let da = dirs_word a w and db = dirs_word b w in
    let diff = da lxor db in
    if diff = 0 then
      if (w + 1) * bits_per_word >= min_depth then ancestor () else go (w + 1)
    else begin
      let low = diff land -diff in
      if (w * bits_per_word) + ctz diff >= min_depth then ancestor ()
      else if kinds_word a w land low <> 0 then Par
      else if da land low = 0 then Before
      else After
    end
  in
  go 0

(* The LCA level of two divergent paths — introspection for tests. *)
let divergence_depth a b =
  let min_depth = if a.depth < b.depth then a.depth else b.depth in
  if min_depth = 0 then ancestor ();
  let rec go w =
    let diff = dirs_word a w lxor dirs_word b w in
    if diff = 0 then
      if (w + 1) * bits_per_word >= min_depth then ancestor () else go (w + 1)
    else begin
      let k = (w * bits_per_word) + ctz diff in
      if k >= min_depth then ancestor () else k
    end
  in
  go 0
