(* Fused packed English/Hebrew order maintenance.

   SP-order maintains *two* total orders over the *same* set of
   parse-tree nodes.  Running two independent OM structures (even two
   packed ones) means two allocations' worth of arrays, two handles per
   node, and the English and Hebrew state of a node living on different
   cache lines.  This structure fuses them: one element handle (an
   [int]) denotes the node in both orders, and the per-item state of
   both orders is interleaved in a single struct-of-arrays record of
   stride 8 —

     [e_tag; e_prev; e_next; e_bkt; h_tag; h_prev; h_next; h_bkt]

   — so a fork/join (which touches both orders of three nodes) and an
   SP query (which compares both orders of two nodes) land on the same
   cache lines they would have had to fetch twice from two structures.

   Each order ("plane") runs the exact same two-level algorithm as
   {!Om}/{!Om_packed}: items grouped into buckets of at most [capacity],
   bucket order kept by one-level list labeling over the 60-bit tag
   universe, items inside a bucket carrying evenly spread local tags.
   The per-plane operation sequences are the ones {!Sp_order} issues
   against two separate structures, so the relabel counters are
   bit-identical to running a boxed English {!Om} and Hebrew {!Om} side
   by side (pinned by qcheck).  Item slots are shared between the
   planes and recycled through one intrusive free list; the insert,
   query and delete paths allocate nothing, and {!reset} rewinds to the
   single base element without releasing any array — the property the
   end-to-end alloc-gate leans on. *)

let capacity = 62

let universe = Labeling.universe

let t_param = 1.3

let nil = -1

(* Marks a slot that is not a live member of the orders: deleted (on
   the free list) or never used.  Stored in the English bucket field,
   so liveness checks are one array load. *)
let dead = -2

(* Field offsets inside one stride-8 item record. *)
let stride_bits = 3

let f_tag = 0

let f_prev = 1

let f_next = 2

let f_bkt = 3

let eng_base = 0

let heb_base = 4

type elt = int

type plane = {
  base : int;  (* item-field offset of this plane: 0 English, 4 Hebrew *)
  pname : string;
  (* Buckets, struct-of-arrays, plane-local.  [b_next] doubles as the
     free-list link; [b_first] is [dead] for dead slots. *)
  mutable b_tag : int array;
  mutable b_prev : int array;
  mutable b_next : int array;
  mutable b_first : int array;
  mutable b_size : int array;
  mutable b_top : int;
  mutable b_free : int;
  mutable b_nfree : int;
  mutable nbuckets : int;
  st : Om_intf.stats;
}

type t = {
  (* Items, one interleaved record of 8 ints per slot.  The English
     [f_next] field doubles as the free-list link of dead slots. *)
  mutable items : int array;
  mutable i_top : int;  (* slots ever used *)
  mutable i_free : int;  (* head of the item free list *)
  mutable i_nfree : int;
  mutable size : int;
  eng : plane;
  heb : plane;
  mutable sink : Spr_obs.Sink.t;
}

let name = "om-fused"

let set_sink t sink = t.sink <- sink

let make_plane base pname bcap =
  {
    base;
    pname;
    b_tag = Array.make bcap 0;
    b_prev = Array.make bcap nil;
    b_next = Array.make bcap nil;
    b_first = Array.make bcap dead;
    b_size = Array.make bcap 0;
    b_top = 1;
    b_free = nil;
    b_nfree = 0;
    nbuckets = 1;
    st = Om_intf.fresh_stats ();
  }

(* Restore a plane's bucket 0 to the create-time state: one bucket
   holding exactly the base item. *)
let reset_plane items p =
  p.b_top <- 1;
  p.b_free <- nil;
  p.b_nfree <- 0;
  p.nbuckets <- 1;
  p.b_tag.(0) <- 0;
  p.b_prev.(0) <- nil;
  p.b_next.(0) <- nil;
  p.b_first.(0) <- 0;
  p.b_size.(0) <- 1;
  p.st.Om_intf.inserts <- 0;
  p.st.Om_intf.relabel_passes <- 0;
  p.st.Om_intf.items_moved <- 0;
  p.st.Om_intf.max_range <- 0;
  items.(p.base + f_tag) <- universe / 2;
  items.(p.base + f_prev) <- nil;
  items.(p.base + f_next) <- nil;
  items.(p.base + f_bkt) <- 0

let reset t =
  t.i_top <- 1;
  t.i_free <- nil;
  t.i_nfree <- 0;
  t.size <- 1;
  reset_plane t.items t.eng;
  reset_plane t.items t.heb

let create () =
  let icap = 64 and bcap = 8 in
  let t =
    {
      items = Array.make (icap lsl stride_bits) nil;
      i_top = 1;
      i_free = nil;
      i_nfree = 0;
      size = 1;
      eng = make_plane eng_base "eng" bcap;
      heb = make_plane heb_base "heb" bcap;
      sink = Spr_obs.Sink.null;
    }
  in
  reset t;
  t

let base _t = 0

let alive t e =
  e >= 0 && e < t.i_top && t.items.((e lsl stride_bits) + eng_base + f_bkt) >= 0

let check_alive ctx t e = if not (alive t e) then invalid_arg (ctx ^ ": deleted element")

(* ------------------------------------------------------------------ *)
(* Slot allocation.                                                    *)

let grow a init =
  let n = Array.length a in
  let b = Array.make (2 * n) init in
  Array.blit a 0 b 0 n;
  b

let alloc_item t =
  if t.i_free <> nil then begin
    let s = t.i_free in
    t.i_free <- t.items.((s lsl stride_bits) + eng_base + f_next);
    t.i_nfree <- t.i_nfree - 1;
    s
  end
  else begin
    if t.i_top lsl stride_bits = Array.length t.items then t.items <- grow t.items nil;
    let s = t.i_top in
    t.i_top <- t.i_top + 1;
    s
  end

let alloc_bucket p =
  if p.b_free <> nil then begin
    let s = p.b_free in
    p.b_free <- p.b_next.(s);
    p.b_nfree <- p.b_nfree - 1;
    s
  end
  else begin
    if p.b_top = Array.length p.b_tag then begin
      p.b_tag <- grow p.b_tag 0;
      p.b_prev <- grow p.b_prev nil;
      p.b_next <- grow p.b_next nil;
      p.b_first <- grow p.b_first dead;
      p.b_size <- grow p.b_size 0
    end;
    let s = p.b_top in
    p.b_top <- p.b_top + 1;
    s
  end

(* ------------------------------------------------------------------ *)
(* Top level: bucket tags via one-level labeling, per plane.  Same
   Bender et al. range search as {!Om_packed.top_rebalance}, with the
   density thresholds precomputed so no boxed float crosses a call
   boundary (alloc-gate).                                              *)

let top_thresholds =
  Array.init (Labeling.universe_bits + 1) (fun i -> (2.0 /. t_param) ** float_of_int i)

let top_rebalance t p b =
  ignore t;
  let btag = p.b_tag and bprev = p.b_prev and bnext = p.b_next in
  let i = ref 1 in
  let done_ = ref false in
  while not !done_ do
    if !i > Labeling.universe_bits then failwith "Om_fused: tag universe exhausted";
    let width = 1 lsl !i in
    let lo = btag.(b) land lnot (width - 1) in
    let hi = lo + width in
    let first = ref b in
    let p' = ref bprev.(b) in
    while !p' <> nil && btag.(!p') >= lo do
      first := !p';
      p' := bprev.(!p')
    done;
    let count = ref 1 in
    let nx = ref bnext.(!first) in
    while !nx <> nil && btag.(!nx) < hi do
      incr count;
      nx := bnext.(!nx)
    done;
    if float_of_int !count <= top_thresholds.(!i) && width >= 8 * !count then begin
      let count = !count in
      Om_intf.count_pass p.st count;
      Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
      let cell = width / count in
      let bk = ref !first in
      let tag = ref (lo + (cell / 2)) in
      for _ = 1 to count do
        btag.(!bk) <- !tag;
        tag := !tag + cell;
        bk := bnext.(!bk)
      done;
      done_ := true
    end
    else incr i
  done

let top_gap_after p b =
  let nx = p.b_next.(b) in
  let hi = if nx = nil then universe else p.b_tag.(nx) in
  hi - p.b_tag.(b) - 1

(* Fresh empty bucket placed immediately after [b] in the plane's top
   order. *)
let new_bucket_after t p b =
  if top_gap_after p b < 1 then top_rebalance t p b;
  let gap = top_gap_after p b in
  assert (gap >= 1);
  let b' = alloc_bucket p in
  p.b_tag.(b') <- p.b_tag.(b) + 1 + ((gap - 1) / 2);
  p.b_prev.(b') <- b;
  p.b_next.(b') <- p.b_next.(b);
  p.b_first.(b') <- nil;
  p.b_size.(b') <- 0;
  (if p.b_next.(b) <> nil then p.b_prev.(p.b_next.(b)) <- b');
  p.b_next.(b) <- b';
  p.nbuckets <- p.nbuckets + 1;
  b'

(* ------------------------------------------------------------------ *)
(* Bottom level: local tags inside one bucket of one plane.            *)

let respace t p b =
  let count = p.b_size.(b) in
  if count > 0 then begin
    Om_intf.count_pass p.st count;
    Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
    let cell = universe / count in
    let items = t.items in
    let base = p.base in
    let it = ref p.b_first.(b) in
    let tag = ref (cell / 2) in
    for _ = 1 to count do
      items.((!it lsl stride_bits) + base + f_tag) <- !tag;
      tag := !tag + cell;
      it := items.((!it lsl stride_bits) + base + f_next)
    done
  end

(* Split a full bucket: move its upper half into a fresh bucket placed
   right after it in this plane, then respace both halves. *)
let split t p b =
  let items = t.items in
  let base = p.base in
  let keep = p.b_size.(b) / 2 in
  let last_kept = ref p.b_first.(b) in
  for _ = 2 to keep do
    last_kept := items.((!last_kept lsl stride_bits) + base + f_next)
  done;
  let moved_first = items.((!last_kept lsl stride_bits) + base + f_next) in
  let b' = new_bucket_after t p b in
  items.((!last_kept lsl stride_bits) + base + f_next) <- nil;
  items.((moved_first lsl stride_bits) + base + f_prev) <- nil;
  p.b_first.(b') <- moved_first;
  p.b_size.(b') <- p.b_size.(b) - keep;
  p.b_size.(b) <- keep;
  let it = ref moved_first in
  while !it <> nil do
    items.((!it lsl stride_bits) + base + f_bkt) <- b';
    it := items.((!it lsl stride_bits) + base + f_next)
  done;
  Spr_obs.Sink.emit_om_bucket_split t.sink ~om:name;
  respace t p b;
  respace t p b'

let local_gap_after t p x =
  let items = t.items in
  let nx = items.((x lsl stride_bits) + p.base + f_next) in
  let hi = if nx = nil then universe else items.((nx lsl stride_bits) + p.base + f_tag) in
  hi - items.((x lsl stride_bits) + p.base + f_tag) - 1

(* Link the (already allocated) slot [y] immediately after [x] in plane
   [p] — {!Om_packed.insert_after} with the slot allocation factored
   out, so one slot can be linked into both planes.  The split/respace
   decisions and counter accounting are step-for-step those of
   {!Om}/{!Om_packed}, which is what makes the per-plane counters
   bit-identical to boxed structures driven with the same sequence. *)
let link_after t p x y =
  let bx = t.items.((x lsl stride_bits) + p.base + f_bkt) in
  if p.b_size.(bx) >= capacity then split t p bx;
  let items = t.items in
  let base = p.base in
  let b = items.((x lsl stride_bits) + base + f_bkt) in
  if local_gap_after t p x < 1 then respace t p b;
  let gap = local_gap_after t p x in
  assert (gap >= 1);
  let xr = (x lsl stride_bits) + base and yr = (y lsl stride_bits) + base in
  items.(yr + f_tag) <- items.(xr + f_tag) + 1 + ((gap - 1) / 2);
  items.(yr + f_prev) <- x;
  items.(yr + f_next) <- items.(xr + f_next);
  items.(yr + f_bkt) <- b;
  (if items.(xr + f_next) <> nil then
     items.((items.(xr + f_next) lsl stride_bits) + base + f_prev) <- y);
  items.(xr + f_next) <- y;
  p.b_size.(b) <- p.b_size.(b) + 1;
  p.st.Om_intf.inserts <- p.st.Om_intf.inserts + 1

(* ------------------------------------------------------------------ *)
(* The fused ADT.                                                      *)

(* [insert_children t x ~parallel] allocates two fresh elements (the
   parse-tree children of [x]) and places them in both orders at once:
   English always [x; left; right]; Hebrew [x; left; right] at S-nodes
   and [x; right; left] at P-nodes (the direction flip that makes
   Corollary 2 work).  Returned packed as [(left lsl 31) lor right] so
   the hot path allocates no tuple. *)
let insert_children_packed t x ~parallel =
  check_alive "Om_fused.insert_children" t x;
  let l = alloc_item t in
  let r = alloc_item t in
  (* English: left right after x, right after left. *)
  link_after t t.eng x l;
  link_after t t.eng l r;
  (* Hebrew: flipped at P-nodes. *)
  if parallel then begin
    link_after t t.heb x r;
    link_after t t.heb r l
  end
  else begin
    link_after t t.heb x l;
    link_after t t.heb l r
  end;
  t.size <- t.size + 2;
  (l lsl 31) lor r

let packed_left lr = lr lsr 31

let packed_right lr = lr land 0x7FFFFFFF

let insert_children t x ~parallel =
  let lr = insert_children_packed t x ~parallel in
  (packed_left lr, packed_right lr)

let precedes_plane t p x y =
  let items = t.items in
  let bx = items.((x lsl stride_bits) + p.base + f_bkt)
  and by = items.((y lsl stride_bits) + p.base + f_bkt) in
  if bx = by then
    items.((x lsl stride_bits) + p.base + f_tag) < items.((y lsl stride_bits) + p.base + f_tag)
  else p.b_tag.(bx) < p.b_tag.(by)

let precedes_eng t x y =
  check_alive "Om_fused.precedes" t x;
  check_alive "Om_fused.precedes" t y;
  precedes_plane t t.eng x y

let precedes_heb t x y =
  check_alive "Om_fused.precedes" t x;
  check_alive "Om_fused.precedes" t y;
  precedes_plane t t.heb x y

(* Both labels of both operands come out of two stride-8 records — one
   fused query instead of two structure lookups. *)
let sp_precedes t x y =
  check_alive "Om_fused.sp_precedes" t x;
  check_alive "Om_fused.sp_precedes" t y;
  precedes_plane t t.eng x y && precedes_plane t t.heb x y

let sp_parallel t x y =
  check_alive "Om_fused.sp_parallel" t x;
  check_alive "Om_fused.sp_parallel" t y;
  precedes_plane t t.eng x y <> precedes_plane t t.heb x y

(* Unlink [e] from plane [p], retiring the plane's bucket if it
   empties. *)
let unlink t p e =
  let items = t.items in
  let base = p.base in
  let er = (e lsl stride_bits) + base in
  let b = items.(er + f_bkt) in
  let pv = items.(er + f_prev) and nx = items.(er + f_next) in
  (if pv <> nil then items.((pv lsl stride_bits) + base + f_next) <- nx
   else p.b_first.(b) <- nx);
  (if nx <> nil then items.((nx lsl stride_bits) + base + f_prev) <- pv);
  items.(er + f_prev) <- nil;
  items.(er + f_next) <- nil;
  p.b_size.(b) <- p.b_size.(b) - 1;
  if p.b_size.(b) = 0 then begin
    let bp = p.b_prev.(b) and bn = p.b_next.(b) in
    (if bp <> nil then p.b_next.(bp) <- bn);
    (if bn <> nil then p.b_prev.(bn) <- bp);
    p.b_first.(b) <- dead;
    p.b_prev.(b) <- nil;
    p.b_next.(b) <- p.b_free;
    p.b_free <- b;
    p.b_nfree <- p.b_nfree + 1;
    p.nbuckets <- p.nbuckets - 1
  end

let delete t e =
  check_alive "Om_fused.delete" t e;
  if e = 0 then invalid_arg "Om_fused.delete: cannot delete base";
  unlink t t.heb e;
  unlink t t.eng e;
  (* Retire the slot: mark dead in the English bucket field, chain it
     onto the free list through the English next field. *)
  let er = (e lsl stride_bits) + eng_base in
  t.items.(er + f_bkt) <- dead;
  t.items.(er + f_next) <- t.i_free;
  t.i_free <- e;
  t.i_nfree <- t.i_nfree + 1;
  t.size <- t.size - 1

let size t = t.size

let stats_eng t = t.eng.st

let stats_heb t = t.heb.st

let item_slots t = t.i_top

let free_items t = t.i_nfree

let bucket_counts t = (t.eng.nbuckets, t.heb.nbuckets)

(* ------------------------------------------------------------------ *)
(* O(n) self-check (test hook).                                        *)

let check_plane t p =
  let fail what = failwith ("Om_fused.check_invariants: " ^ p.pname ^ " " ^ what) in
  let items = t.items in
  let base = p.base in
  (* Bucket free list: every listed slot dead, count agrees. *)
  let seen = ref 0 in
  let s = ref p.b_free in
  while !s <> nil do
    if !s < 0 || !s >= p.b_top then fail "bucket free link out of range";
    if p.b_first.(!s) <> dead then fail "live slot on bucket free list";
    incr seen;
    s := p.b_next.(!s)
  done;
  if !seen <> p.b_nfree then fail "bucket free count mismatch";
  if p.b_top - p.b_nfree <> p.nbuckets then fail "bucket slot accounting mismatch";
  (* Walk the bucket list from the head (left of the base's bucket). *)
  let head = ref items.(base + f_bkt) in
  while p.b_prev.(!head) <> nil do
    head := p.b_prev.(!head)
  done;
  let total = ref 0 and nbuckets = ref 0 in
  let b = ref !head and prev_btag = ref min_int and prev_b = ref nil in
  while !b <> nil do
    if p.b_first.(!b) = dead then fail "dead bucket linked";
    if p.b_tag.(!b) <= !prev_btag then fail "bucket tags not increasing";
    if p.b_prev.(!b) <> !prev_b then fail "broken bucket back-link";
    let n = ref 0 in
    let it = ref p.b_first.(!b) and prev_ltag = ref min_int and prev_i = ref nil in
    if !it = nil then fail "empty bucket linked";
    while !it <> nil do
      let ir = (!it lsl stride_bits) + base in
      if items.((!it lsl stride_bits) + eng_base + f_bkt) = dead then fail "dead item linked";
      if items.(ir + f_bkt) <> !b then fail "stale bucket index";
      if items.(ir + f_tag) <= !prev_ltag then fail "local tags not increasing";
      if items.(ir + f_prev) <> !prev_i then fail "broken item back-link";
      incr n;
      prev_ltag := items.(ir + f_tag);
      prev_i := !it;
      it := items.(ir + f_next)
    done;
    if !n <> p.b_size.(!b) then fail "bucket size mismatch";
    total := !total + !n;
    incr nbuckets;
    prev_btag := p.b_tag.(!b);
    prev_b := !b;
    b := p.b_next.(!b)
  done;
  if !total <> t.size then fail "size mismatch";
  if !nbuckets <> p.nbuckets then fail "bucket count mismatch"

let check_invariants t =
  (* Item free list: every listed slot dead, count agrees. *)
  let seen = ref 0 in
  let s = ref t.i_free in
  while !s <> nil do
    if !s < 0 || !s >= t.i_top then failwith "Om_fused.check_invariants: free link out of range";
    if t.items.((!s lsl stride_bits) + eng_base + f_bkt) <> dead then
      failwith "Om_fused.check_invariants: live slot on item free list";
    incr seen;
    s := t.items.((!s lsl stride_bits) + eng_base + f_next)
  done;
  if !seen <> t.i_nfree then failwith "Om_fused.check_invariants: item free count mismatch";
  if t.i_top - t.i_nfree <> t.size then
    failwith "Om_fused.check_invariants: item slot accounting mismatch";
  check_plane t t.eng;
  check_plane t t.heb
