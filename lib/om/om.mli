(** Two-level order maintenance: O(1) amortized insert, O(1) worst-case
    query.

    This is the structure the paper's SP-order algorithm relies on
    (citations [10, 15, 17, 33] there).  Elements are grouped into
    {e buckets} of at most 62 items; bucket order is maintained by
    one-level list labeling over a 60-bit tag universe (cost O(lg #buckets)
    amortized per bucket creation, and a bucket is created at most every
    31 insertions, so per-element cost is O(1) — 62 >= lg n for every
    feasible n), and items inside a bucket carry evenly spread local
    tags.  A query compares (bucket tag, local tag) lexicographically:
    two integer comparisons, O(1) worst case.

    Use this implementation in anything performance-sensitive; use
    {!Om_naive} as the specification and {!Om_label} when you want to
    observe one-level rebalancing behaviour. *)

include Om_intf.S

val stats : t -> Om_intf.stats
(** Relabel accounting across {e both} levels: [relabel_passes] counts
    top-level (bucket) rebalances plus bottom-level respaces;
    [items_moved] counts bucket retags plus item retags.  [inserts]
    counts element insertions.  Total items moved per insert is O(1)
    amortized — the Theorem 5 substrate claim. *)

val bucket_count : t -> int
(** Number of live buckets (introspection). *)

val check_invariants : t -> unit
(** Walk the whole structure and verify ordering invariants: bucket
    tags strictly increase, local tags strictly increase within each
    bucket, sizes are consistent, prev/next links of both levels agree
    (so no emptied bucket or deleted item can still be linked).  Test
    hook; O(n).
    @raise Failure on violation. *)

val is_detached : elt -> bool
(** True iff the element has been deleted {e and} retains no pointer
    into the live structure: its neighbour links are cleared and its
    bucket pointer was moved to a private tombstone, so holding the
    handle leaks O(1) space rather than a chain of buckets.  Test
    hook. *)
