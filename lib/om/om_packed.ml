(* Packed two-level order maintenance.

   Same algorithm as {!Om} — items grouped into buckets of at most
   [capacity], bucket order kept by one-level list labeling over the
   60-bit tag universe, items inside a bucket carrying evenly spread
   local tags — but laid out as struct-of-arrays over integer indices
   instead of boxed records with [option] prev/next links.  An element
   handle is an [int] index into the item arrays; [-1] is nil.  The
   insert/query/delete hot paths touch a handful of int-array cells and
   allocate nothing (array doubling amortizes to O(1) words per
   element); deleted item and bucket slots are recycled through
   intrusive free lists threaded through the [next] arrays. *)

let capacity = 62

let universe = Labeling.universe

let t_param = 1.3

let nil = -1

(* Marks a slot that is not a live member of the order: deleted (on the
   free list) or never used.  Stored in [i_bkt] for items and [b_first]
   for buckets, so liveness checks are one array load. *)
let dead = -2

type elt = int

type t = {
  (* Items, struct-of-arrays.  [i_next] doubles as the free-list link
     of dead slots. *)
  mutable i_tag : int array;
  mutable i_prev : int array;
  mutable i_next : int array;
  mutable i_bkt : int array;
  mutable i_top : int;  (* slots ever used; [i_top <= Array.length i_tag] *)
  mutable i_free : int;  (* head of the item free list *)
  mutable i_nfree : int;
  (* Buckets, struct-of-arrays.  [b_next] doubles as the free-list
     link; [b_first] is [dead] for dead slots. *)
  mutable b_tag : int array;
  mutable b_prev : int array;
  mutable b_next : int array;
  mutable b_first : int array;
  mutable b_size : int array;
  mutable b_top : int;
  mutable b_free : int;
  mutable b_nfree : int;
  mutable size : int;
  mutable nbuckets : int;
  st : Om_intf.stats;
  mutable sink : Spr_obs.Sink.t;
}

let name = "om-packed"

let set_sink t sink = t.sink <- sink

let create () =
  let icap = 64 and bcap = 8 in
  let t =
    {
      i_tag = Array.make icap 0;
      i_prev = Array.make icap nil;
      i_next = Array.make icap nil;
      i_bkt = Array.make icap dead;
      i_top = 1;
      i_free = nil;
      i_nfree = 0;
      b_tag = Array.make bcap 0;
      b_prev = Array.make bcap nil;
      b_next = Array.make bcap nil;
      b_first = Array.make bcap dead;
      b_size = Array.make bcap 0;
      b_top = 1;
      b_free = nil;
      b_nfree = 0;
      size = 1;
      nbuckets = 1;
      st = Om_intf.fresh_stats ();
      sink = Spr_obs.Sink.null;
    }
  in
  (* Slot 0 of each level is the base item in its initial bucket. *)
  t.i_tag.(0) <- universe / 2;
  t.i_bkt.(0) <- 0;
  t.b_first.(0) <- 0;
  t.b_size.(0) <- 1;
  t

let base _t = 0

let alive t e = e >= 0 && e < t.i_top && t.i_bkt.(e) >= 0

let check_alive ctx t e = if not (alive t e) then invalid_arg (ctx ^ ": deleted element")

(* ------------------------------------------------------------------ *)
(* Slot allocation.                                                    *)

let grow a init =
  let n = Array.length a in
  let b = Array.make (2 * n) init in
  Array.blit a 0 b 0 n;
  b

let alloc_item t =
  if t.i_free <> nil then begin
    let s = t.i_free in
    t.i_free <- t.i_next.(s);
    t.i_nfree <- t.i_nfree - 1;
    s
  end
  else begin
    if t.i_top = Array.length t.i_tag then begin
      t.i_tag <- grow t.i_tag 0;
      t.i_prev <- grow t.i_prev nil;
      t.i_next <- grow t.i_next nil;
      t.i_bkt <- grow t.i_bkt dead
    end;
    let s = t.i_top in
    t.i_top <- t.i_top + 1;
    s
  end

let alloc_bucket t =
  if t.b_free <> nil then begin
    let s = t.b_free in
    t.b_free <- t.b_next.(s);
    t.b_nfree <- t.b_nfree - 1;
    s
  end
  else begin
    if t.b_top = Array.length t.b_tag then begin
      t.b_tag <- grow t.b_tag 0;
      t.b_prev <- grow t.b_prev nil;
      t.b_next <- grow t.b_next nil;
      t.b_first <- grow t.b_first dead;
      t.b_size <- grow t.b_size 0
    end;
    let s = t.b_top in
    t.b_top <- t.b_top + 1;
    s
  end

(* ------------------------------------------------------------------ *)
(* Top level: bucket tags via one-level labeling on the index arrays.  *)

(* Smallest aligned enclosing range of some width 2^i around bucket [b]
   that is sparse enough to relabel — the same Bender et al. search as
   {!Labeling.find_range}, inlined over the packed arrays. *)
(* Density thresholds (2/T)^i per range width 2^i, precomputed so the
   range search below never passes a float between calls — a boxed
   float argument per recursion step was the one minor-heap allocation
   left on the relabel path, and the alloc-gate forbids it. *)
let top_thresholds =
  Array.init (Labeling.universe_bits + 1) (fun i ->
      (2.0 /. t_param) ** float_of_int i)

(* The search and the relabel are one function: returning the found
   range would build a tuple, and the relabel path must not touch the
   minor heap (alloc-gate).  Local refs stay register-allocated. *)
let top_rebalance t b =
  let btag = t.b_tag and bprev = t.b_prev and bnext = t.b_next in
  (* Iterative (a local recursive function would allocate its closure;
     the refs below stay register-allocated): widen the aligned range
     around [b] until its density passes the threshold, then relabel
     it in place. *)
  let i = ref 1 in
  let done_ = ref false in
  while not !done_ do
    if !i > Labeling.universe_bits then failwith "Om_packed: tag universe exhausted";
    let width = 1 lsl !i in
    let lo = btag.(b) land lnot (width - 1) in
    let hi = lo + width in
    let first = ref b in
    let p = ref bprev.(b) in
    while !p <> nil && btag.(!p) >= lo do
      first := !p;
      p := bprev.(!p)
    done;
    let count = ref 1 in
    let nx = ref bnext.(!first) in
    while !nx <> nil && btag.(!nx) < hi do
      incr count;
      nx := bnext.(!nx)
    done;
    if float_of_int !count <= top_thresholds.(!i) && width >= 8 * !count then begin
      let count = !count in
      Om_intf.count_pass t.st count;
      Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
      let cell = width / count in
      let bk = ref !first in
      let tag = ref (lo + (cell / 2)) in
      for _ = 1 to count do
        btag.(!bk) <- !tag;
        tag := !tag + cell;
        bk := bnext.(!bk)
      done;
      done_ := true
    end
    else incr i
  done

let top_gap_after t b =
  let nx = t.b_next.(b) in
  let hi = if nx = nil then universe else t.b_tag.(nx) in
  hi - t.b_tag.(b) - 1

(* Fresh empty bucket placed immediately after [b] in the top order. *)
let new_bucket_after t b =
  if top_gap_after t b < 1 then top_rebalance t b;
  let gap = top_gap_after t b in
  assert (gap >= 1);
  let b' = alloc_bucket t in
  t.b_tag.(b') <- t.b_tag.(b) + 1 + ((gap - 1) / 2);
  t.b_prev.(b') <- b;
  t.b_next.(b') <- t.b_next.(b);
  t.b_first.(b') <- nil;
  t.b_size.(b') <- 0;
  (if t.b_next.(b) <> nil then t.b_prev.(t.b_next.(b)) <- b');
  t.b_next.(b) <- b';
  t.nbuckets <- t.nbuckets + 1;
  b'

(* ------------------------------------------------------------------ *)
(* Bottom level: local tags inside one bucket.                         *)

(* Spread the items of [b] evenly across the local universe. *)
let respace t b =
  let count = t.b_size.(b) in
  if count > 0 then begin
    Om_intf.count_pass t.st count;
    Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
    let cell = universe / count in
    let itag = t.i_tag and inext = t.i_next in
    let it = ref t.b_first.(b) in
    let tag = ref (cell / 2) in
    for _ = 1 to count do
      itag.(!it) <- !tag;
      tag := !tag + cell;
      it := inext.(!it)
    done
  end

(* Split a full bucket: move its upper half into a fresh bucket placed
   right after it, then respace both halves. *)
let split t b =
  let keep = t.b_size.(b) / 2 in
  let last_kept = ref t.b_first.(b) in
  for _ = 2 to keep do
    last_kept := t.i_next.(!last_kept)
  done;
  let moved_first = t.i_next.(!last_kept) in
  let b' = new_bucket_after t b in
  t.i_next.(!last_kept) <- nil;
  t.i_prev.(moved_first) <- nil;
  t.b_first.(b') <- moved_first;
  t.b_size.(b') <- t.b_size.(b) - keep;
  t.b_size.(b) <- keep;
  let it = ref moved_first in
  while !it <> nil do
    t.i_bkt.(!it) <- b';
    it := t.i_next.(!it)
  done;
  Spr_obs.Sink.emit_om_bucket_split t.sink ~om:name;
  respace t b;
  respace t b'

let local_gap_after t x =
  let nx = t.i_next.(x) in
  let hi = if nx = nil then universe else t.i_tag.(nx) in
  hi - t.i_tag.(x) - 1

(* ------------------------------------------------------------------ *)
(* The ADT.                                                            *)

let insert_after t x =
  check_alive "Om_packed.insert_after" t x;
  if t.b_size.(t.i_bkt.(x)) >= capacity then split t t.i_bkt.(x);
  let b = t.i_bkt.(x) in
  if local_gap_after t x < 1 then respace t b;
  let gap = local_gap_after t x in
  assert (gap >= 1);
  let y = alloc_item t in
  t.i_tag.(y) <- t.i_tag.(x) + 1 + ((gap - 1) / 2);
  t.i_prev.(y) <- x;
  t.i_next.(y) <- t.i_next.(x);
  t.i_bkt.(y) <- b;
  (if t.i_next.(x) <> nil then t.i_prev.(t.i_next.(x)) <- y);
  t.i_next.(x) <- y;
  t.b_size.(b) <- t.b_size.(b) + 1;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  y

let insert_before t x =
  check_alive "Om_packed.insert_before" t x;
  if t.i_prev.(x) <> nil then insert_after t t.i_prev.(x)
  else begin
    (* [x] heads its bucket. *)
    if t.b_size.(t.i_bkt.(x)) >= capacity then split t t.i_bkt.(x);
    let b = t.i_bkt.(x) in
    if t.i_tag.(x) < 1 then respace t b;
    assert (t.i_tag.(x) >= 1);
    let y = alloc_item t in
    t.i_tag.(y) <- t.i_tag.(x) / 2;
    t.i_prev.(y) <- nil;
    t.i_next.(y) <- x;
    t.i_bkt.(y) <- b;
    t.i_prev.(x) <- y;
    t.b_first.(b) <- y;
    t.b_size.(b) <- t.b_size.(b) + 1;
    t.size <- t.size + 1;
    t.st.inserts <- t.st.inserts + 1;
    y
  end

let insert_many_after t x k =
  let rec go anchor k acc =
    if k = 0 then List.rev acc
    else begin
      let y = insert_after t anchor in
      go y (k - 1) (y :: acc)
    end
  in
  go x k []

let precedes t x y =
  check_alive "Om_packed.precedes" t x;
  check_alive "Om_packed.precedes" t y;
  let bx = t.i_bkt.(x) and by = t.i_bkt.(y) in
  if bx = by then t.i_tag.(x) < t.i_tag.(y) else t.b_tag.(bx) < t.b_tag.(by)

let delete t e =
  check_alive "Om_packed.delete" t e;
  if e = 0 then invalid_arg "Om_packed.delete: cannot delete base";
  let b = t.i_bkt.(e) in
  let p = t.i_prev.(e) and n = t.i_next.(e) in
  (if p <> nil then t.i_next.(p) <- n else t.b_first.(b) <- n);
  (if n <> nil then t.i_prev.(n) <- p);
  (* Retire the slot: mark dead, clear the stale links, chain it onto
     the free list through [i_next]. *)
  t.i_bkt.(e) <- dead;
  t.i_prev.(e) <- nil;
  t.i_next.(e) <- t.i_free;
  t.i_free <- e;
  t.i_nfree <- t.i_nfree + 1;
  t.b_size.(b) <- t.b_size.(b) - 1;
  t.size <- t.size - 1;
  if t.b_size.(b) = 0 then begin
    let bp = t.b_prev.(b) and bn = t.b_next.(b) in
    (if bp <> nil then t.b_next.(bp) <- bn);
    (if bn <> nil then t.b_prev.(bn) <- bp);
    t.b_first.(b) <- dead;
    t.b_prev.(b) <- nil;
    t.b_next.(b) <- t.b_free;
    t.b_free <- b;
    t.b_nfree <- t.b_nfree + 1;
    t.nbuckets <- t.nbuckets - 1
  end

let size t = t.size

let stats t = t.st

let bucket_count t = t.nbuckets

let item_slots t = t.i_top

let free_items t = t.i_nfree

let bucket_slots t = t.b_top

let free_buckets t = t.b_nfree

(* ------------------------------------------------------------------ *)
(* O(n) self-check (test hook).                                        *)

let check_invariants t =
  (* Free lists: every listed slot is dead, counts agree. *)
  let count_free next first top pred_dead what =
    let seen = ref 0 in
    let s = ref first in
    while !s <> nil do
      if !s < 0 || !s >= top then failwith ("Om_packed.check_invariants: " ^ what ^ " free link out of range");
      if not (pred_dead !s) then failwith ("Om_packed.check_invariants: live slot on " ^ what ^ " free list");
      incr seen;
      s := next.(!s)
    done;
    !seen
  in
  let nfi = count_free t.i_next t.i_free t.i_top (fun s -> t.i_bkt.(s) = dead) "item" in
  if nfi <> t.i_nfree then failwith "Om_packed.check_invariants: item free count mismatch";
  let nfb = count_free t.b_next t.b_free t.b_top (fun s -> t.b_first.(s) = dead) "bucket" in
  if nfb <> t.b_nfree then failwith "Om_packed.check_invariants: bucket free count mismatch";
  if t.i_top - t.i_nfree <> t.size then
    failwith "Om_packed.check_invariants: item slot accounting mismatch";
  if t.b_top - t.b_nfree <> t.nbuckets then
    failwith "Om_packed.check_invariants: bucket slot accounting mismatch";
  (* Walk the bucket list from the head (left of the base's bucket). *)
  let head = ref t.i_bkt.(0) in
  while t.b_prev.(!head) <> nil do
    head := t.b_prev.(!head)
  done;
  let total = ref 0 and nbuckets = ref 0 in
  let b = ref !head and prev_btag = ref min_int and prev_b = ref nil in
  while !b <> nil do
    if t.b_first.(!b) = dead then failwith "Om_packed.check_invariants: dead bucket linked";
    if t.b_tag.(!b) <= !prev_btag then
      failwith "Om_packed.check_invariants: bucket tags not increasing";
    if t.b_prev.(!b) <> !prev_b then failwith "Om_packed.check_invariants: broken bucket back-link";
    let n = ref 0 in
    let it = ref t.b_first.(!b) and prev_ltag = ref min_int and prev_i = ref nil in
    if !it = nil then failwith "Om_packed.check_invariants: empty bucket linked";
    while !it <> nil do
      if t.i_bkt.(!it) <> !b then failwith "Om_packed.check_invariants: stale bucket index";
      if t.i_tag.(!it) <= !prev_ltag then
        failwith "Om_packed.check_invariants: local tags not increasing";
      if t.i_prev.(!it) <> !prev_i then failwith "Om_packed.check_invariants: broken item back-link";
      incr n;
      prev_ltag := t.i_tag.(!it);
      prev_i := !it;
      it := t.i_next.(!it)
    done;
    if !n <> t.b_size.(!b) then failwith "Om_packed.check_invariants: bucket size mismatch";
    total := !total + !n;
    incr nbuckets;
    prev_btag := t.b_tag.(!b);
    prev_b := !b;
    b := t.b_next.(!b)
  done;
  if !total <> t.size then failwith "Om_packed.check_invariants: size mismatch";
  if !nbuckets <> t.nbuckets then failwith "Om_packed.check_invariants: bucket count mismatch"
