type elt = {
  label : int Atomic.t;
  stamp : int Atomic.t;
  mutable prev : elt option;
  mutable next : elt option;
  mutable alive : bool;
}

type t = {
  base_elt : elt;
  lock : Mutex.t;
  t_param : float;
  mutable size : int;
  st : Om_intf.stats;
  retries : int Atomic.t;
  mutable sink : Spr_obs.Sink.t;
}

let name = "om-concurrent"

let set_sink t sink = t.sink <- sink

(* Process-wide query accounting, bumped from the lock-free read path:
   domain-sharded cells, so concurrent readers neither race nor share
   a cache line ([t.retries] stays as the per-structure count exposed
   by [query_retries]). *)
let queries_c = Spr_obs.Sharded.counter Spr_obs.Sharded.default "om-concurrent/queries"

let retries_c = Spr_obs.Sharded.counter Spr_obs.Sharded.default "om-concurrent/retries"

(* Schedule-exploration yield points (no-ops unless a controller is
   installed — see Spr_schedhook.Hook).  Placement rule: a yield sits
   *before* the shared-memory operations it names, so the footprint
   kind of a parked task describes the step it is about to run. *)
module Hook = Spr_schedhook.Hook

let yield ?kind pt = Hook.yield ?kind ~layer:name ~name:pt ()

module Lab = Labeling.Make (struct
  type nonrec elt = elt

  let tag e = Atomic.get e.label
  let set_tag e v = Atomic.set e.label v
  let prev e = e.prev
  let next e = e.next
end)

let mk_elt label prev next =
  { label = Atomic.make label; stamp = Atomic.make 0; prev; next; alive = true }

let create () =
  let base_elt = mk_elt 0 None None in
  {
    base_elt;
    lock = Mutex.create ();
    t_param = 1.3;
    size = 1;
    st = Om_intf.fresh_stats ();
    retries = Atomic.make 0;
    sink = Spr_obs.Sink.null;
  }

let base t = t.base_elt

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

(* Five-pass rebalance; caller holds [t.lock]. *)
let rebalance t x =
  yield "relabel";
  (* Pass 1: choose the range. *)
  let first, count, lo, width = Lab.find_range ~t_param:t.t_param x in
  Om_intf.count_pass t.st count;
  Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
  let members = Array.make count first in
  let rec collect e j =
    members.(j) <- e;
    if j + 1 < count then collect (Option.get e.next) (j + 1)
  in
  collect first 0;
  (* Pass 2: bump stamps — queries overlapping pass 3 will notice. *)
  yield "relabel-dirty";
  Array.iter (fun e -> Atomic.incr e.stamp) members;
  (* Pass 3: minimal labels, left to right.  Item j has at least j
     distinct labels >= lo below it inside the range, so lo + j only
     ever decreases a label and order is preserved pointwise. *)
  Array.iteri
    (fun j e ->
      yield "relabel-min";
      Atomic.set e.label (lo + j))
    members;
  (* Pass 4: bump stamps again — queries overlapping pass 5 retry. *)
  yield "relabel-redirty";
  Array.iter (fun e -> Atomic.incr e.stamp) members;
  (* Pass 5: final evenly spread labels, right to left (labels only
     increase, so going right-to-left preserves order throughout). *)
  for j = count - 1 downto 0 do
    yield "relabel-spread";
    Atomic.set members.(j).label (Lab.target ~lo ~width ~count j)
  done

(* Insertion primitives; caller holds [t.lock]. *)
let insert_after_locked t x =
  check_alive "Om_concurrent.insert_after" x;
  if Lab.gap_after x < 1 then rebalance t x;
  let gap = Lab.gap_after x in
  assert (gap >= 1);
  let y = mk_elt (Atomic.get x.label + 1 + ((gap - 1) / 2)) (Some x) x.next in
  (match x.next with Some n -> n.prev <- Some y | None -> ());
  x.next <- Some y;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  Spr_obs.Sink.emit_om_insert t.sink ~om:name;
  y

let insert_before_locked t x =
  check_alive "Om_concurrent.insert_before" x;
  match x.prev with
  | Some p -> insert_after_locked t p
  | None ->
      if Atomic.get x.label < 1 then rebalance t x;
      let xl = Atomic.get x.label in
      assert (xl >= 1);
      let y = mk_elt (xl / 2) None (Some x) in
      x.prev <- Some y;
      t.size <- t.size + 1;
      t.st.inserts <- t.st.inserts + 1;
      Spr_obs.Sink.emit_om_insert t.sink ~om:name;
      y

let with_lock t f = Hook.locked ~layer:name ~name:"lock" t.lock f

let insert_after t x = with_lock t (fun () -> insert_after_locked t x)

let insert_before t x = with_lock t (fun () -> insert_before_locked t x)

let insert_many_after t x k =
  with_lock t (fun () ->
      let rec go anchor k acc =
        if k = 0 then List.rev acc
        else begin
          let y = insert_after_locked t anchor in
          go y (k - 1) (y :: acc)
        end
      in
      go x k [])

let insert_around t x ~before ~after =
  with_lock t (fun () ->
      let rec go_before anchor k acc =
        if k = 0 then acc
        else begin
          let y = insert_before_locked t anchor in
          go_before y (k - 1) (y :: acc)
        end
      in
      (* Building right-to-left keeps the returned list in order. *)
      let befores = go_before x before [] in
      let rec go_after anchor k acc =
        if k = 0 then List.rev acc
        else begin
          let y = insert_after_locked t anchor in
          go_after y (k - 1) (y :: acc)
        end
      in
      let afters = go_after x after [] in
      (befores, afters))

(* Lock-free query with double-read validation.  The two read rounds
   are separate yield points so a schedule controller can interleave a
   writer's relabel passes between them — the race the stamp protocol
   exists to defeat. *)
let precedes t x y =
  check_alive "Om_concurrent.precedes" x;
  check_alive "Om_concurrent.precedes" y;
  Spr_obs.Sharded.incr queries_c;
  let rec attempt () =
    yield ~kind:Hook.Read "q-read1";
    let xl1 = Atomic.get x.label in
    let xs1 = Atomic.get x.stamp in
    let yl1 = Atomic.get y.label in
    let ys1 = Atomic.get y.stamp in
    yield ~kind:Hook.Read "q-read2";
    let xl2 = Atomic.get x.label in
    let xs2 = Atomic.get x.stamp in
    let yl2 = Atomic.get y.label in
    let ys2 = Atomic.get y.stamp in
    if xl1 = xl2 && xs1 = xs2 && yl1 = yl2 && ys1 = ys2 then xl1 < yl1
    else begin
      yield ~kind:Hook.Link "q-retry";
      Atomic.incr t.retries;
      Spr_obs.Sharded.incr retries_c;
      attempt ()
    end
  in
  attempt ()

let delete t e =
  with_lock t (fun () ->
      check_alive "Om_concurrent.delete" e;
      if e == t.base_elt then invalid_arg "Om_concurrent.delete: cannot delete base";
      (match e.prev with Some p -> p.next <- e.next | None -> ());
      (match e.next with Some n -> n.prev <- e.prev | None -> ());
      e.alive <- false;
      (* Drop the neighbour links so a retained handle cannot keep the
         rest of the list reachable. *)
      e.prev <- None;
      e.next <- None;
      t.size <- t.size - 1)

let size t = t.size

let query_retries t = Atomic.get t.retries

let debug_label e = Atomic.get e.label

let stats t = t.st

let check_invariants t =
  with_lock t (fun () ->
      let rec head e = match e.prev with Some p -> head p | None -> e in
      let rec walk e n =
        match e.next with
        | Some nxt ->
            if Atomic.get e.label >= Atomic.get nxt.label then
              failwith "Om_concurrent.check_invariants: labels not increasing";
            walk nxt (n + 1)
        | None -> n + 1
      in
      let n = walk (head t.base_elt) 0 in
      if n <> t.size then failwith "Om_concurrent.check_invariants: size mismatch")
