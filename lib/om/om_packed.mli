(** Packed two-level order maintenance: the same O(1)-amortized-insert,
    O(1)-worst-case-query algorithm as {!Om}, stored as struct-of-arrays
    over [int] indices instead of boxed records with [option] links.

    Why a second two-level backend: every SP-order/SP-hybrid operation
    bottoms out here, and the record layout of {!Om} is pointer-chasing
    — each insert allocates a five-field block, each link hop loads a
    boxed [option], and neighbouring elements land wherever the GC put
    them.  The packed layout keeps tags, links and bucket indices in
    flat [int] arrays ([-1] for nil), so the hot paths are a handful of
    int-array loads/stores with no per-operation allocation, and
    elements that are adjacent in the order tend to be adjacent in
    memory (compare DePa's compact-representation argument, PAPERS.md).
    Deleted item and bucket slots are recycled through intrusive free
    lists, so long-running workloads with deletions stay compact.

    Behaviour (ordering answers, relabel accounting, amortized bounds)
    is identical to {!Om}; spfuzz cross-validates the two on every run. *)

include Om_intf.S

val stats : t -> Om_intf.stats
(** Relabel accounting across both levels, same convention as
    {!Om.stats}. *)

val bucket_count : t -> int
(** Number of live buckets (introspection). *)

val item_slots : t -> int
(** Item slots ever allocated (high-water mark).  With free-list reuse,
    deleting [k] elements and inserting [k] fresh ones leaves this
    unchanged — the property the qcheck suite pins down. *)

val free_items : t -> int
(** Item slots currently on the free list; [item_slots t - free_items t
    = size t]. *)

val bucket_slots : t -> int
(** Bucket slots ever allocated (high-water mark). *)

val free_buckets : t -> int
(** Bucket slots currently on the free list. *)

val check_invariants : t -> unit
(** Walk the whole structure and verify ordering invariants — bucket
    tags strictly increase, local tags strictly increase within each
    bucket, prev/next index links of both levels agree, sizes and
    free-list/slot accounting are consistent, and no dead slot is
    linked.  Test hook; O(n).
    @raise Failure on violation. *)
