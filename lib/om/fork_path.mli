(** Bit-packed (depth, fork-path) labels, DePa-style (Westrick, Wang,
    Acar, "DePa: Simple, Provably Efficient, and Practical Order
    Maintenance for Task Parallelism").

    A label is a root path in a series-parallel parse tree: per level,
    one {e kind} bit (S or P node) and one {e direction} bit (left or
    right child), packed 62 levels to an [int] word.  Construction is
    purely functional — a child's label extends its parent's in O(1),
    sharing the frozen full words — so labeling needs {e no shared
    mutable state, no relabeling, and no locks}: exactly the contrast
    with the paper's OM-backed SP-order whose global tier serializes
    inserts.

    [relate] compares two labels up to their divergence point (the LCA
    level) with word-sized xors: O(⌈lca-depth / 62⌉), a single compare
    for any nesting up to 62 levels.  Past 62 levels the packed words
    {e spill} into an immutable array rather than silently truncating
    — depths 61/62/63 are the regression boundary (see test_om). *)

type t

val root : t
(** The empty path (the parse-tree root). *)

val extend : t -> parallel:bool -> right:bool -> t
(** [extend t ~parallel ~right]: the path one level deeper, recording
    the kind of the node being left ([parallel] = P) and the branch
    taken.  O(1), amortized O(1) at word boundaries (spill copy every
    62 levels). *)

val depth : t -> int
(** Levels below the root (= bits per plane). *)

val words : t -> int
(** Occupied packed words per plane, partial word included:
    ⌈depth / 62⌉. *)

val size_words : t -> int
(** Logical label footprint in machine words: depth field + both
    packed planes ([1 + 2 * words]). *)

val equal : t -> t -> bool

type rel = Before | After | Par

val relate : t -> t -> rel
(** Order of the two paths' endpoints in the series-parallel sense:
    [Before]/[After] when their LCA is an S-node (left subtree first),
    [Par] when it is a P-node.
    @raise Invalid_argument if either path is a prefix of the other
    (ancestor query — clients compare leaves, which are never related
    by ancestry). *)

val divergence_depth : t -> t -> int
(** The LCA level of two divergent paths (introspection for tests).
    @raise Invalid_argument on ancestor/equal paths. *)
