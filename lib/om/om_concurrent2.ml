let capacity = 62

type bucket = {
  blabel : int Atomic.t;
  bstamp : int Atomic.t;
  mutable bprev : bucket option;  (* link fields: writers only, under the lock *)
  mutable bnext : bucket option;
  mutable bfirst : item option;
  mutable bsize : int;
}

and item = {
  label : int Atomic.t;
  stamp : int Atomic.t;
  bkt : bucket Atomic.t;
  mutable iprev : item option;
  mutable inext : item option;
  mutable alive : bool;
}

type elt = item

type t = {
  base_item : item;
  lock : Mutex.t;
  t_param : float;
  mutable size : int;
  mutable nbuckets : int;
  st : Om_intf.stats;
  retries : int Atomic.t;
  mutable sink : Spr_obs.Sink.t;
}

let name = "om-concurrent-2level"

let set_sink t sink = t.sink <- sink

(* Process-wide query accounting from the lock-free path: sharded
   cells, one per domain, so bumps are plain stores (see
   Om_concurrent). *)
let queries_c =
  Spr_obs.Sharded.counter Spr_obs.Sharded.default "om-concurrent-2level/queries"

let retries_c =
  Spr_obs.Sharded.counter Spr_obs.Sharded.default "om-concurrent-2level/retries"

(* Schedule-exploration yield points; no-ops without a controller.
   Mutation steps are Write (they change query-visible labels, stamps,
   or bucket assignments); query read rounds are Read; retries are
   Link (the retry counter is never query-visible). *)
module Hook = Spr_schedhook.Hook

let yield ?kind pt = Hook.yield ?kind ~layer:name ~name:pt ()

module Top = Labeling.Make (struct
  type elt = bucket

  let tag b = Atomic.get b.blabel
  let set_tag b v = Atomic.set b.blabel v
  let prev b = b.bprev
  let next b = b.bnext
end)

let create () =
  (* Tie the bucket/item knot through the atomic pointer. *)
  let dummy =
    { blabel = Atomic.make 0; bstamp = Atomic.make 0; bprev = None; bnext = None; bfirst = None; bsize = 0 }
  in
  let base_item =
    {
      label = Atomic.make (Labeling.universe / 2);
      stamp = Atomic.make 0;
      bkt = Atomic.make dummy;
      iprev = None;
      inext = None;
      alive = true;
    }
  in
  let b =
    {
      blabel = Atomic.make 0;
      bstamp = Atomic.make 0;
      bprev = None;
      bnext = None;
      bfirst = Some base_item;
      bsize = 1;
    }
  in
  Atomic.set base_item.bkt b;
  {
    base_item;
    lock = Mutex.create ();
    t_param = 1.3;
    size = 1;
    nbuckets = 1;
    st = Om_intf.fresh_stats ();
    retries = Atomic.make 0;
    sink = Spr_obs.Sink.null;
  }

let base t = t.base_item

let check_alive ctx e = if not e.alive then invalid_arg (ctx ^ ": deleted element")

(* ------------------------------------------------------------------ *)
(* Writer-side machinery (caller holds [t.lock]).  [dirty]/[clean]
   bracket mutation batches with stamp increments; queries reject any
   odd stamp. *)

let dirty_item (x : item) = Atomic.incr x.stamp

let clean_item (x : item) = Atomic.incr x.stamp

let dirty_bucket (b : bucket) = Atomic.incr b.bstamp

let clean_bucket (b : bucket) = Atomic.incr b.bstamp

let iter_items b f =
  let rec go = function
    | Some it ->
        f it;
        go it.inext
    | None -> ()
  in
  go b.bfirst

(* Evenly respace the items of one bucket over the local universe. *)
let respace t b =
  yield "respace-dirty";
  iter_items b dirty_item;
  let count = b.bsize in
  Om_intf.count_pass t.st count;
  Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
  let cell = Labeling.universe / (count + 1) in
  let j = ref 0 in
  iter_items b (fun it ->
      incr j;
      yield "respace-set";
      Atomic.set it.label (!j * cell));
  yield "respace-clean";
  iter_items b clean_item

(* Relabel the enclosing sparse range of buckets (one-level labeling on
   the top list). *)
let top_rebalance t b =
  let first, count, lo, width = Top.find_range ~t_param:t.t_param b in
  Om_intf.count_pass t.st count;
  Spr_obs.Sink.emit_om_relabel t.sink ~om:name ~moved:count;
  let members = Array.make count first in
  let rec collect bk j =
    members.(j) <- bk;
    if j + 1 < count then collect (Option.get bk.bnext) (j + 1)
  in
  collect first 0;
  yield "top-dirty";
  Array.iter dirty_bucket members;
  Array.iteri
    (fun j bk ->
      yield "top-set";
      Atomic.set bk.blabel (Top.target ~lo ~width ~count j))
    members;
  yield "top-clean";
  Array.iter clean_bucket members

let new_bucket_after t b =
  if Top.gap_after b < 1 then top_rebalance t b;
  let gap = Top.gap_after b in
  assert (gap >= 1);
  let b' =
    {
      blabel = Atomic.make (Atomic.get b.blabel + 1 + ((gap - 1) / 2));
      bstamp = Atomic.make 0;
      bprev = Some b;
      bnext = b.bnext;
      bfirst = None;
      bsize = 0;
    }
  in
  (match b.bnext with Some n -> n.bprev <- Some b' | None -> ());
  b.bnext <- Some b';
  t.nbuckets <- t.nbuckets + 1;
  b'

(* Split a full bucket: fresh bucket after it takes the upper half.
   All items of the old bucket are marked dirty for the duration, so
   queries that touch them retry rather than observe the move. *)
let split t b =
  Spr_obs.Sink.emit_om_bucket_split t.sink ~om:name;
  yield "split-dirty";
  iter_items b dirty_item;
  let b' = new_bucket_after t b in
  let keep = b.bsize / 2 in
  let rec nth it j = if j = 0 then it else nth (Option.get it.inext) (j - 1) in
  let last_kept = nth (Option.get b.bfirst) (keep - 1) in
  let moved_first = Option.get last_kept.inext in
  last_kept.inext <- None;
  moved_first.iprev <- None;
  b'.bfirst <- Some moved_first;
  b'.bsize <- b.bsize - keep;
  b.bsize <- keep;
  let rec claim = function
    | Some it ->
        yield "split-claim";
        Atomic.set it.bkt b';
        claim it.inext
    | None -> ()
  in
  claim (Some moved_first);
  (* Respace both halves while everything is still dirty, then clean
     every item (they all carried one dirty increment). *)
  let assign b =
    Om_intf.count_pass t.st b.bsize;
    let cell = Labeling.universe / (b.bsize + 1) in
    let j = ref 0 in
    iter_items b (fun it ->
        incr j;
        Atomic.set it.label (!j * cell))
  in
  yield "split-assign";
  assign b;
  assign b';
  yield "split-clean";
  iter_items b clean_item;
  iter_items b' clean_item

let local_gap_after (x : item) =
  let hi = match x.inext with Some y -> Atomic.get y.label | None -> Labeling.universe in
  hi - Atomic.get x.label - 1

let mk_item label bkt iprev inext =
  { label = Atomic.make label; stamp = Atomic.make 0; bkt = Atomic.make bkt; iprev; inext; alive = true }

let insert_after_locked t x =
  check_alive "Om_concurrent2.insert_after" x;
  if (Atomic.get x.bkt).bsize >= capacity then split t (Atomic.get x.bkt);
  let b = Atomic.get x.bkt in
  if local_gap_after x < 1 then respace t b;
  let gap = local_gap_after x in
  assert (gap >= 1);
  let y = mk_item (Atomic.get x.label + 1 + ((gap - 1) / 2)) b (Some x) x.inext in
  (match x.inext with Some n -> n.iprev <- Some y | None -> ());
  x.inext <- Some y;
  b.bsize <- b.bsize + 1;
  t.size <- t.size + 1;
  t.st.inserts <- t.st.inserts + 1;
  Spr_obs.Sink.emit_om_insert t.sink ~om:name;
  y

let insert_before_locked t x =
  check_alive "Om_concurrent2.insert_before" x;
  match x.iprev with
  | Some p -> insert_after_locked t p
  | None ->
      if (Atomic.get x.bkt).bsize >= capacity then split t (Atomic.get x.bkt);
      let b = Atomic.get x.bkt in
      if Atomic.get x.label < 1 then respace t b;
      let xl = Atomic.get x.label in
      assert (xl >= 1);
      let y = mk_item (xl / 2) b None (Some x) in
      x.iprev <- Some y;
      b.bfirst <- Some y;
      b.bsize <- b.bsize + 1;
      t.size <- t.size + 1;
      t.st.inserts <- t.st.inserts + 1;
      Spr_obs.Sink.emit_om_insert t.sink ~om:name;
      y

let with_lock t f = Hook.locked ~layer:name ~name:"lock" t.lock f

let insert_after t x = with_lock t (fun () -> insert_after_locked t x)

let insert_before t x = with_lock t (fun () -> insert_before_locked t x)

let insert_many_after t x k =
  with_lock t (fun () ->
      let rec go anchor k acc =
        if k = 0 then List.rev acc
        else begin
          let y = insert_after_locked t anchor in
          go y (k - 1) (y :: acc)
        end
      in
      go x k [])

let insert_around t x ~before ~after =
  with_lock t (fun () ->
      let rec go_before anchor k acc =
        if k = 0 then acc
        else begin
          let y = insert_before_locked t anchor in
          go_before y (k - 1) (y :: acc)
        end
      in
      let befores = go_before x before [] in
      let rec go_after anchor k acc =
        if k = 0 then List.rev acc
        else begin
          let y = insert_after_locked t anchor in
          go_after y (k - 1) (y :: acc)
        end
      in
      (befores, go_after x after []))

(* ------------------------------------------------------------------ *)
(* Lock-free queries.                                                  *)

type view = { vb : bucket; vbl : int; vbs : int; vl : int; vs : int }

let read_view (e : item) =
  let vb = Atomic.get e.bkt in
  let vbl = Atomic.get vb.blabel in
  let vbs = Atomic.get vb.bstamp in
  let vl = Atomic.get e.label in
  let vs = Atomic.get e.stamp in
  { vb; vbl; vbs; vl; vs }

let stable a b =
  a.vb == b.vb && a.vbl = b.vbl && a.vbs = b.vbs && a.vl = b.vl && a.vs = b.vs
  && a.vbs land 1 = 0
  && a.vs land 1 = 0

let precedes t x y =
  check_alive "Om_concurrent2.precedes" x;
  check_alive "Om_concurrent2.precedes" y;
  Spr_obs.Sharded.incr queries_c;
  let rec attempt () =
    yield ~kind:Hook.Read "q-read1";
    let x1 = read_view x in
    let y1 = read_view y in
    yield ~kind:Hook.Read "q-read2";
    let x2 = read_view x in
    let y2 = read_view y in
    if stable x1 x2 && stable y1 y2 then
      if x1.vb == y1.vb then x1.vl < y1.vl else x1.vbl < y1.vbl
    else begin
      yield ~kind:Hook.Link "q-retry";
      Atomic.incr t.retries;
      Spr_obs.Sharded.incr retries_c;
      attempt ()
    end
  in
  attempt ()

(* ------------------------------------------------------------------ *)

let delete t e =
  with_lock t (fun () ->
      check_alive "Om_concurrent2.delete" e;
      if e == t.base_item then invalid_arg "Om_concurrent2.delete: cannot delete base";
      let b = Atomic.get e.bkt in
      (match e.iprev with Some p -> p.inext <- e.inext | None -> b.bfirst <- e.inext);
      (match e.inext with Some n -> n.iprev <- e.iprev | None -> ());
      e.alive <- false;
      (* Clear the links (queries never traverse them, so this is safe
         under the lock): a retained dead handle must not keep live
         items — or, through an emptied bucket, the bucket list —
         reachable. *)
      e.iprev <- None;
      e.inext <- None;
      b.bsize <- b.bsize - 1;
      t.size <- t.size - 1;
      if b.bsize = 0 then begin
        (match b.bprev with Some p -> p.bnext <- b.bnext | None -> ());
        (match b.bnext with Some n -> n.bprev <- b.bprev | None -> ());
        b.bprev <- None;
        b.bnext <- None;
        b.bfirst <- None;
        t.nbuckets <- t.nbuckets - 1
      end)

let size t = t.size

let query_retries t = Atomic.get t.retries

let stats t = t.st

let bucket_count t = t.nbuckets

let check_invariants t =
  with_lock t (fun () ->
      let rec bhead b = match b.bprev with Some p -> bhead p | None -> b in
      let rec check_bucket b prev_lbl total nb =
        if Atomic.get b.bstamp land 1 = 1 then
          failwith "Om_concurrent2.check_invariants: dirty bucket at rest";
        (match prev_lbl with
        | Some pl when pl >= Atomic.get b.blabel ->
            failwith "Om_concurrent2.check_invariants: bucket labels not increasing"
        | _ -> ());
        let n = ref 0 in
        let prev = ref None in
        let prev_it = ref None in
        iter_items b (fun it ->
            incr n;
            if Atomic.get it.stamp land 1 = 1 then
              failwith "Om_concurrent2.check_invariants: dirty item at rest";
            if not (Atomic.get it.bkt == b) then
              failwith "Om_concurrent2.check_invariants: stale bucket pointer";
            (match (it.iprev, !prev_it) with
            | None, None -> ()
            | Some p, Some q when p == q -> ()
            | _ -> failwith "Om_concurrent2.check_invariants: broken item back-link");
            (match !prev with
            | Some pl when pl >= Atomic.get it.label ->
                failwith "Om_concurrent2.check_invariants: item labels not increasing"
            | _ -> ());
            prev := Some (Atomic.get it.label);
            prev_it := Some it);
        if !n <> b.bsize then failwith "Om_concurrent2.check_invariants: size mismatch";
        if !n = 0 then failwith "Om_concurrent2.check_invariants: empty bucket linked";
        match b.bnext with
        | Some nxt ->
            (match nxt.bprev with
            | Some p when p == b -> ()
            | _ -> failwith "Om_concurrent2.check_invariants: broken bucket back-link");
            check_bucket nxt (Some (Atomic.get b.blabel)) (total + !n) (nb + 1)
        | None -> (total + !n, nb + 1)
      in
      let total, nb = check_bucket (bhead (Atomic.get t.base_item.bkt)) None 0 0 in
      if total <> t.size then failwith "Om_concurrent2.check_invariants: total size mismatch";
      if nb <> t.nbuckets then failwith "Om_concurrent2.check_invariants: bucket count mismatch")
