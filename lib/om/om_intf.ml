(** Signature shared by every order-maintenance structure in this repo.

    An order-maintenance (OM) structure maintains a total order over a
    dynamic set of opaque elements and answers, in O(1), "does X come
    before Y?".  This is the abstract data type of Section 2 of the
    paper:

    - [OM-PRECEDES (L, X, Y)]: does X precede Y in the ordering L?
    - [OM-INSERT (L, X, Y1 ... Yk)]: insert fresh elements right after X.

    Every implementation also supports insertion {e before} an element
    (needed by SP-hybrid's global tier, which places subtraces U{^(1)},
    U{^(2)} before the split trace) and deletion. *)

module type S = sig
  type t
  (** An ordering [L]: a totally ordered dynamic set. *)

  type elt
  (** An element of the ordering.  Handles are only meaningful for the
      structure that created them. *)

  val name : string
  (** Implementation name, used in benchmark tables. *)

  val create : unit -> t
  (** A fresh ordering containing exactly one element, [base]. *)

  val base : t -> elt
  (** The element the ordering was created with; the usual anchor for
      the first insertions. *)

  val insert_after : t -> elt -> elt
  (** [insert_after l x] inserts one fresh element immediately after
      [x] and returns it.  Amortized cost depends on implementation. *)

  val insert_before : t -> elt -> elt
  (** [insert_before l x] inserts one fresh element immediately before
      [x]. *)

  val insert_many_after : t -> elt -> int -> elt list
  (** [insert_many_after l x k] is [OM-INSERT(l, x, y1 ... yk)]: [k]
      fresh elements placed after [x], returned in order — so the list
      reads [y1; ...; yk] with y1 right after [x]. *)

  val precedes : t -> elt -> elt -> bool
  (** [precedes l x y] is true iff [x] comes strictly before [y].
      [precedes l x x = false]. *)

  val delete : t -> elt -> unit
  (** Remove an element.  Using a deleted handle afterwards is a
      programming error (checked in debug paths where cheap). *)

  val size : t -> int
  (** Number of live elements. *)

  val set_sink : t -> Spr_obs.Sink.t -> unit
  (** Install an observability sink: inserts, relabel passes and bucket
      splits are emitted as trace/flight events (stamped with the
      sink's current virtual-time context).  Default
      {!Spr_obs.Sink.null}; implementations with nothing to report
      accept and ignore it. *)
end

(** Operation counters exported by every OM implementation so the
    benches can verify the amortized-cost claims empirically.  The two
    dimensions of relabeling cost are kept separate (they amortize
    differently): [relabel_passes] counts {e relabel passes} — each
    invocation of a rebalance, respace, renumber or rebuild — while
    [items_moved] counts the {e entries assigned a new tag} across all
    those passes.  Implementations with several labeling levels (the
    two-level structures) account every level into the same counters,
    so "items moved per insert" compares like with like across
    structures. *)
type stats = {
  mutable inserts : int;  (** total elements ever inserted *)
  mutable relabel_passes : int;  (** relabel/rebalance pass occurrences *)
  mutable items_moved : int;  (** entries retagged across all passes *)
  mutable max_range : int;  (** largest number of entries retagged in one pass *)
}

let fresh_stats () = { inserts = 0; relabel_passes = 0; items_moved = 0; max_range = 0 }

(* Shared accounting helper: one relabel pass that retagged [count]
   entries. *)
let count_pass st count =
  st.relabel_passes <- st.relabel_passes + 1;
  st.items_moved <- st.items_moved + count;
  if count > st.max_range then st.max_range <- count

(** What SP-hybrid's global tier needs from a concurrent
    order-maintenance structure: the base ADT plus atomic multi-insert
    around an element, lock-free-query retry accounting, and an O(n)
    self-check.  Satisfied by {!Om_concurrent} (the one-level structure
    Section 4 describes) and {!Om_concurrent2} (the two-level hierarchy
    its footnote 3 alludes to). *)
module type CONCURRENT = sig
  include S

  val insert_around : t -> elt -> before:int -> after:int -> elt list * elt list

  val query_retries : t -> int

  val check_invariants : t -> unit
end
