(** Concurrent order maintenance — the global tier's engine (Section 4).

    Insertions serialize through a mutex (the paper's global lock), but
    [precedes] is {e lock-free}: each element carries an atomic label
    and an atomic timestamp; a query reads (label, stamp) of X, then Y,
    then X again, then Y again, and succeeds only if both second
    readings match the first — otherwise it retries.  A rebalance
    (performed while holding the insertion lock) follows the paper's
    five passes:

    + determine the range of items to rebalance;
    + increment every member's timestamp (first pass begins);
    + assign minimal labels left-to-right (labels only decrease);
    + increment every member's timestamp (second pass begins);
    + assign final evenly spread labels right-to-left (labels only
      increase).

    Relative order therefore never changes mid-rebalance, and a query
    that witnesses a torn view is guaranteed to observe a timestamp
    change and retry.  Failed attempts are counted so EXP-OM can verify
    the "O(1) failed queries per processor per insertion" accounting of
    Theorem 10's bucket B5. *)

include Om_intf.S

val insert_around : t -> elt -> before:int -> after:int -> elt list * elt list
(** [insert_around l x ~before ~after] atomically (under one lock
    acquisition) inserts [before] fresh elements immediately before [x]
    (returned in order) and [after] fresh elements immediately after
    [x] (in order).  This is exactly the shape OM-MULTI-INSERT needs in
    Figure 8 lines 21–22. *)

val query_retries : t -> int
(** Total failed-and-retried query attempts so far. *)

val debug_label : elt -> int
(** A raw, unvalidated read of the element's current label.  Exposed
    only so the fault-injection harness ([Spr_check.Faulty]) can build
    a deliberately broken [precedes] that skips the stamp-validation
    protocol; production code must never compare labels this way. *)

val stats : t -> Om_intf.stats

val check_invariants : t -> unit
(** Verify label monotonicity along the list (takes the lock; O(n)). *)
