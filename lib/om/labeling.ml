(* OCaml ints are 63-bit; 60 bits of tag space leaves headroom for the
   midpoint arithmetic without overflow. *)
let universe_bits = 60

let universe = 1 lsl universe_bits

module type LINKED = sig
  type elt

  val tag : elt -> int
  val set_tag : elt -> int -> unit
  val prev : elt -> elt option
  val next : elt -> elt option
end

module Make (L : LINKED) = struct
  let gap_after x =
    let hi = match L.next x with Some y -> L.tag y | None -> universe in
    hi - L.tag x - 1

  (* Walk left/right from [x] collecting the contiguous sublist whose
     tags lie in [lo, lo+width).  Tags increase along the list, so the
     members of an enclosing range always form a contiguous sublist. *)
  let range_members x lo hi =
    let rec leftmost e =
      match L.prev e with
      | Some p when L.tag p >= lo -> leftmost p
      | _ -> e
    in
    let first = leftmost x in
    let rec count e acc =
      match L.next e with
      | Some nxt when L.tag nxt < hi -> count nxt (acc + 1)
      | _ -> acc
    in
    (first, count first 1)

  let find_range ~t_param x =
    if t_param <= 1.0 || t_param >= 2.0 then
      invalid_arg "Labeling.find_range: T must lie in (1, 2)";
    let ratio = 2.0 /. t_param in
    let rec search i threshold =
      if i > universe_bits then
        failwith "Labeling.find_range: tag universe exhausted"
      else begin
        let width = 1 lsl i in
        let lo = L.tag x land lnot (width - 1) in
        let first, count = range_members x lo (lo + width) in
        (* Relabel only when sparse enough for amortization *and* the
           respread leaves real gaps (width/count >= 8). *)
        if float_of_int count <= threshold && width >= 8 * count then
          (first, count, lo, width)
        else search (i + 1) (threshold *. ratio)
      end
    in
    search 1 ratio

  let target ~lo ~width ~count j =
    if j < 0 || j >= count then invalid_arg "Labeling.target: index out of range";
    (* Midpoint of the j-th of [count] equal cells; integer arithmetic
       is safe because width <= 2^60 and count >= 1. *)
    let cell = width / count in
    lo + (j * cell) + (cell / 2)

  (* Serial relabel commit: assign the [count] members starting at
     [first] their evenly spread tags in one left-to-right sweep.  The
     cell width is computed once and the running tag carried as an
     accumulator, so the per-item work is one store and one add —
     [target]'s per-item division and range check (and the closure the
     callers used to allocate around it) stay out of the loop.  The
     concurrent structures keep using [target]: their five-pass
     protocol needs the j-th tag in isolation. *)
  let spread ~lo ~width ~count first =
    let cell = width / count in
    let rec go e tag remaining =
      L.set_tag e tag;
      if remaining > 1 then
        match L.next e with
        | Some nxt -> go nxt (tag + cell) (remaining - 1)
        | None -> assert false
    in
    go first (lo + (cell / 2)) count
end
