(** Two-level concurrent order maintenance — the structure the paper's
    footnote 3 says the global tier "actually" maintains.

    Same contract as {!Om_concurrent} (locked inserts, lock-free
    double-read queries), but elements live inside {e buckets} whose
    order is maintained by a concurrent labeled list of its own: an
    element's position is the lexicographic pair (bucket label, item
    label), so the heavy tag arithmetic spreads over two small levels —
    O(1) amortized insertion like {!Om}, rather than the one-level
    O(lg n).

    Concurrency protocol.  Every label-carrying cell (bucket or item)
    pairs its label with a {e version stamp}; a writer brackets a
    mutation batch with one stamp increment on each affected cell
    before and one after, so an odd stamp marks a cell mid-update and
    cells outside the batch never change.  A query reads (bucket,
    bucket label, bucket stamp, item label, item stamp) of both
    operands twice and succeeds only if both views are identical and
    every stamp is even; otherwise it retries — the same failure
    accounting as bucket B5 of Theorem 10.  (This is the coarser
    variant of Section 4's two-pass protocol: queries overlapping a
    rebalance simply retry until it completes, rather than being able
    to succeed between passes.) *)

include Om_intf.CONCURRENT

val stats : t -> Om_intf.stats
(** Relabel accounting covering both levels: a bucket respace, a
    bucket split and a top-level bucket relabel each count as one pass
    in [relabel_passes], with the entries they retag accumulated in
    [items_moved]. *)

val bucket_count : t -> int
