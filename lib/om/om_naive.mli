(** Executable specification of order maintenance.

    Keeps the order as a plain doubly linked list and recomputes integer
    ranks after every insertion — O(n) insert, O(1) query.  Slow but
    obviously correct: the qcheck model tests compare every other OM
    structure against this one on random operation sequences. *)

include Om_intf.S

val rank : t -> elt -> int
(** Current 0-based position of the element (test introspection). *)

val stats : t -> Om_intf.stats
(** Relabel accounting in the shared schema: every renumber is one
    pass moving [size] elements, so [items_moved / inserts] exhibits
    the Θ(n) cost the amortized structures are measured against
    ([max_range] peaks at the largest list renumbered). *)
