(** Arena-allocated SP parse tree: nodes as [int] indices into three
    parallel growable arrays (kind/left/right) instead of the boxed
    {!Sp_tree.node} records.

    Building a node is three array stores; {!reset} rewinds the whole
    arena in O(1) keeping every array, so repeatedly rebuilding
    same-shape trees allocates nothing once the arrays have grown to
    size — the property the end-to-end alloc-gate pins.  A node
    {!release}d (e.g. on Exit, when a detector will never query its
    subtree again) goes onto an intrusive free list and is recycled by
    the next allocation, keeping the arena proportional to the live
    frontier.

    Node ids are dense in allocation order, so they double as indices
    into client side-tables ({!Spr_core.Sp_order_fused}'s id→element
    map, tid maps). *)

type kind = Sp_tree.kind = Series | Parallel

type t

val create : ?capacity:int -> unit -> t

val reset : t -> unit
(** Forget every node, keep every array.  O(1). *)

val leaf : t -> int
(** A fresh thread node. *)

val series : t -> int -> int -> int
(** S-node over two live nodes.
    @raise Invalid_argument on a released operand. *)

val parallel : t -> int -> int -> int

val release : t -> int -> unit
(** Retire a node to the free list; its id may be reissued.
    @raise Invalid_argument on double release. *)

val is_leaf : t -> int -> bool

val kind_of : t -> int -> kind
(** @raise Invalid_argument on a leaf or released node. *)

val left_of : t -> int -> int

val right_of : t -> int -> int

val slots : t -> int
(** Node slots ever allocated (high-water mark); free-list reuse keeps
    this flat across release/re-alloc churn, and it bounds every node
    id ever issued — the right size for id-indexed side tables. *)

val free_count : t -> int
(** Slots currently on the free list. *)

val live : t -> int
(** [slots t - free_count t]. *)

val iter : t -> int -> enter:(int -> unit) -> thread:(int -> unit) -> unit
(** Left-to-right walk from the given root: [enter] fires at each
    internal node before its subtrees (in the {!Sp_tree.iter_events}
    Enter order), [thread] at each leaf.  Iterative — safe on
    degenerate chains.  Allocates its own scratch stack; the
    zero-allocation pipeline in [Spr_race.Drivers] keeps a persistent
    stack instead. *)
