(* Arena-allocated SP parse tree.

   {!Sp_tree} nodes are boxed records with [option] parent links —
   fine for the Figure-3 harness, but every build of a tree allocates
   O(n) blocks and every walk chases pointers the GC scattered.  The
   arena stores a tree as indices into three parallel [int] arrays
   (kind/left/right), so building a node is three stores, [reset]
   rewinds the whole arena in O(1) without releasing anything, and a
   node freed on Exit goes onto an intrusive free list for the next
   Enter to reuse.  Steady-state rebuilds of same-shape trees allocate
   zero minor words — the property the end-to-end alloc-gate pins. *)

let nil = -1

(* kind codes; free slots are marked in [kind] so use-after-release is
   detectable. *)
let k_leaf = 0

let k_series = 1

let k_parallel = 2

let k_free = -2

type kind = Sp_tree.kind = Series | Parallel

type t = {
  mutable kind : int array;
  mutable left : int array;  (* doubles as the free-list link *)
  mutable right : int array;
  mutable top : int;  (* slots ever used (high-water mark) *)
  mutable free : int;  (* head of the free list, threaded through [left] *)
  mutable nfree : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  {
    kind = Array.make capacity k_free;
    left = Array.make capacity nil;
    right = Array.make capacity nil;
    top = 0;
    free = nil;
    nfree = 0;
  }

let reset t =
  t.top <- 0;
  t.free <- nil;
  t.nfree <- 0

let grow a init =
  let n = Array.length a in
  let b = Array.make (2 * n) init in
  Array.blit a 0 b 0 n;
  b

let alloc t =
  if t.free <> nil then begin
    let s = t.free in
    t.free <- t.left.(s);
    t.nfree <- t.nfree - 1;
    s
  end
  else begin
    if t.top = Array.length t.kind then begin
      t.kind <- grow t.kind k_free;
      t.left <- grow t.left nil;
      t.right <- grow t.right nil
    end;
    let s = t.top in
    t.top <- t.top + 1;
    s
  end

let alive t n = n >= 0 && n < t.top && t.kind.(n) <> k_free

let check_alive ctx t n = if not (alive t n) then invalid_arg (ctx ^ ": released node")

let leaf t =
  let s = alloc t in
  t.kind.(s) <- k_leaf;
  t.left.(s) <- nil;
  t.right.(s) <- nil;
  s

let internal ctx code t l r =
  check_alive ctx t l;
  check_alive ctx t r;
  let s = alloc t in
  t.kind.(s) <- code;
  t.left.(s) <- l;
  t.right.(s) <- r;
  s

let series t l r = internal "Sp_arena.series" k_series t l r

let parallel t l r = internal "Sp_arena.parallel" k_parallel t l r

let release t n =
  check_alive "Sp_arena.release" t n;
  t.kind.(n) <- k_free;
  t.left.(n) <- t.free;
  t.free <- n;
  t.nfree <- t.nfree + 1

let is_leaf t n =
  check_alive "Sp_arena.is_leaf" t n;
  t.kind.(n) = k_leaf

let kind_of t n =
  check_alive "Sp_arena.kind_of" t n;
  match t.kind.(n) with
  | c when c = k_series -> Series
  | c when c = k_parallel -> Parallel
  | _ -> invalid_arg "Sp_arena.kind_of: leaf"

let left_of t n =
  check_alive "Sp_arena.left_of" t n;
  if t.kind.(n) = k_leaf then invalid_arg "Sp_arena.left_of: leaf";
  t.left.(n)

let right_of t n =
  check_alive "Sp_arena.right_of" t n;
  if t.kind.(n) = k_leaf then invalid_arg "Sp_arena.right_of: leaf";
  t.right.(n)

let slots t = t.top

let free_count t = t.nfree

let live t = t.top - t.nfree

(* Left-to-right walk from [root] — the same unfolding order as
   {!Sp_tree.iter_events}, restricted to the events the SP-order family
   consumes (Enter at internals, Thread at leaves).  Uses an explicit
   int stack so degenerate chains cannot blow the OCaml stack; the
   stack is caller-provided scratch (a {!Spr_util.Vec} of ints would
   allocate on push past capacity, so this takes a plain ref cell
   protocol: grow-by-doubling int array owned by the caller).  For
   tests and non-hot callers, [iter] below owns a local stack. *)
let iter t root ~enter ~thread =
  check_alive "Sp_arena.iter" t root;
  let stack = ref (Array.make 64 0) in
  let sp = ref 0 in
  let push n =
    if !sp = Array.length !stack then stack := grow !stack 0;
    !stack.(!sp) <- n;
    incr sp
  in
  push root;
  while !sp > 0 do
    decr sp;
    let n = !stack.(!sp) in
    if t.kind.(n) = k_leaf then thread n
    else begin
      enter n;
      (* left is walked first: push right below it. *)
      push t.right.(n);
      push t.left.(n)
    end
  done
