(** Ready-made detection pipelines.

    [detect_serial] replays the program's serial (left-to-right)
    execution, driving any serial SP-maintenance algorithm and the
    Nondeterminator protocol — the configuration of Corollary 6.

    [detect_hybrid] runs the program on the work-stealing simulator
    with SP-hybrid as the oracle, issuing the detector's queries from
    each thread's execution hook — the parallel, on-the-fly
    configuration of Sections 3–7.

    [detect_serial_locked] is the All-Sets-style pipeline. *)

type serial_result = {
  races : Detector.race list;
  racy_locs : int list;
  sp_queries : int;  (** queries issued to the SP oracle *)
}

val detect_serial :
  Spr_prog.Prog_tree.t ->
  (Spr_sptree.Sp_tree.t -> Spr_core.Sp_maintainer.instance) ->
  serial_result
(** Detect with the given serial algorithm (e.g.
    {!Spr_core.Algorithms.sp_order}). *)

type releasing_result = {
  result : serial_result;
  peak_om_nodes : int;  (** high-water mark of the SP-order structures *)
  final_om_nodes : int;
  released : int;  (** threads deleted after leaving shadow memory *)
}

val detect_serial_releasing : Spr_prog.Prog_tree.t -> releasing_result
(** Like [detect_serial] with SP-order, but threads that drop out of
    shadow memory are {e deleted} from the order-maintenance
    structures ({!Spr_core.Sp_order.release}): the structure tracks the
    live frontier, not the whole execution history.  Race reports are
    identical to the non-releasing run. *)

(** The fully packed serial pipeline: arena parse tree
    ({!Spr_prog.Prog_arena}) + fused English/Hebrew SP-order
    ({!Spr_core.Sp_order_fused}) + packed shadow cells, created once
    and rewound in place per run.  A steady-state {!Fused.run} —
    rebuild tree, replay the fork/join walk, issue every access and SP
    query — allocates zero minor words on a race-free program
    (recording a race allocates its report); [regress --alloc-gate
    --e2e] pins this, and the test suite pins answer equality with
    {!detect_serial}. *)
module Fused : sig
  type t

  val create : Spr_prog.Fj_program.t -> t
  (** Size every internal structure for the program and run the
      pipeline's constructor-time allocations. *)

  val run : t -> unit
  (** One full detection pass, in place.  Idempotent across calls —
      each run rewinds and replays. *)

  val detector : t -> Detector.t

  val result : t -> serial_result
  (** Snapshot of the last run (allocates; call outside any probed
      region). *)
end

val detect_serial_fused : Spr_prog.Fj_program.t -> serial_result
(** [Fused.create] + [run] + [result] — drop-in comparison point for
    [detect_serial pt Algorithms.sp_order]. *)

type locked_result = { lock_races : Lockset.race list; racy_locs : int list }

val detect_serial_locked :
  Spr_prog.Prog_tree.t ->
  (Spr_sptree.Sp_tree.t -> Spr_core.Sp_maintainer.instance) ->
  locked_result

type hybrid_result = {
  races : Detector.race list;
  racy_locs : int list;
  sim : Spr_sched.Sim.result;
  hybrid_stats : Spr_hybrid.Sp_hybrid.stats;
}

val detect_hybrid : ?seed:int -> ?procs:int -> Spr_prog.Fj_program.t -> hybrid_result

type hybrid_locked_result = {
  lock_races : Lockset.race list;
  racy_locs : int list;
  sim : Spr_sched.Sim.result;
}

val detect_hybrid_locked :
  ?seed:int -> ?procs:int -> Spr_prog.Fj_program.t -> hybrid_locked_result
(** The All-Sets-style detector with SP-hybrid as the oracle: parallel,
    on-the-fly, lock-aware — the full configuration the paper's
    abstract promises improved bounds for. *)
