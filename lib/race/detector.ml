open Spr_prog

type race = {
  loc : int;
  earlier : int;
  later : int;
  earlier_write : bool;
  later_write : bool;
}

(* Shadow slots are packed int arrays — a slot holds the recorded tid
   or [empty].  Boxed [int option] cells would allocate a [Some] block
   per assignment, which is exactly the traffic the zero-allocation
   end-to-end pipeline exists to remove; tids are >= 0 so the sentinel
   is unambiguous. *)
let empty = -1

type t = {
  writer : int array;
  reader : int array;  (* first reader slot *)
  reader2 : int array;  (* second reader slot *)
  races : race Spr_util.Vec.t;
  precedes : executed:int -> current:int -> bool;
  mutable queries : int;
  (* Shadow reference counts, for the release protocol. *)
  refs : (int, int) Hashtbl.t;
  on_unreferenced : (int -> unit) option;
  sink : Spr_obs.Sink.t;
}

let create ?on_unreferenced ?(sink = Spr_obs.Sink.null) ~locs ~precedes () =
  {
    writer = Array.make (max 1 locs) empty;
    reader = Array.make (max 1 locs) empty;
    reader2 = Array.make (max 1 locs) empty;
    races = Spr_util.Vec.create ();
    precedes;
    queries = 0;
    refs = Hashtbl.create 64;
    on_unreferenced;
    sink;
  }

(* Rewind to the create-time state without allocating (the Hashtbl is
   only touched when the release protocol is armed — [Hashtbl.reset]
   itself allocates a fresh bucket array). *)
let reset t =
  Array.fill t.writer 0 (Array.length t.writer) empty;
  Array.fill t.reader 0 (Array.length t.reader) empty;
  Array.fill t.reader2 0 (Array.length t.reader2) empty;
  Spr_util.Vec.clear t.races;
  t.queries <- 0;
  if Hashtbl.length t.refs > 0 then Hashtbl.reset t.refs

(* Drop one reference to [o]; notify when it leaves shadow memory. *)
let unref t o =
  match t.on_unreferenced with
  | None -> ()
  | Some notify ->
      let c = Hashtbl.find t.refs o - 1 in
      if c = 0 then begin
        Hashtbl.remove t.refs o;
        notify o
      end
      else Hashtbl.replace t.refs o c

(* Replace the occupant of a shadow slot, maintaining reference counts
   and notifying when a thread drops out of shadow memory entirely. *)
let assign t slot loc tid =
  let old = slot.(loc) in
  if old <> tid then begin
    (match t.on_unreferenced with
    | None -> ()
    | Some _ ->
        Hashtbl.replace t.refs tid (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs tid)));
    slot.(loc) <- tid;
    if old <> empty then unref t old
  end

let clear t slot loc =
  let o = slot.(loc) in
  if o <> empty then begin
    slot.(loc) <- empty;
    unref t o
  end

let report t loc earlier later earlier_write later_write =
  Spr_util.Vec.push t.races { loc; earlier; later; earlier_write; later_write }

(* "recorded thread e is concurrent with u": e was seen before, so if
   it does not precede u it runs logically in parallel with u. *)
let concurrent t e ~current =
  t.queries <- t.queries + 1;
  e <> current && not (t.precedes ~executed:e ~current)

(* Reader-subsumption check, hoisted to the top level: a local helper
   closing over [t]/[current] would allocate on every read access. *)
let subsumed t r ~current =
  r = current
  || begin
       t.queries <- t.queries + 1;
       t.precedes ~executed:r ~current
     end

let access_raw t ~current ~loc ~write =
  if write then begin
    let w = t.writer.(loc) in
    if w <> empty && concurrent t w ~current then report t loc w current true true;
    let r = t.reader.(loc) in
    if r <> empty && concurrent t r ~current then report t loc r current false true;
    let r2 = t.reader2.(loc) in
    if r2 <> empty && concurrent t r2 ~current then report t loc r2 current false true;
    assign t t.writer loc current
  end
  else begin
    let w = t.writer.(loc) in
    if w <> empty && concurrent t w ~current then report t loc w current true false;
    (* Shadow-reader policy.  A recorded reader that precedes [current]
       is subsumed by it: any later access parallel to that reader would
       be parallel to [current] too (precedence is transitive and
       [current] cannot precede a thread that has already run).  So
       subsumed readers are replaced and up to two pairwise-concurrent
       readers are kept.  Under a serial (left-to-right) execution one
       slot already suffices (Feng–Leiserson); the second slot covers
       the out-of-order observation orders a parallel schedule produces.
       With three or more pairwise-parallel recorded readers the shadow
       is still an approximation — see the .mli. *)
    let r1 = t.reader.(loc) in
    let s1 = r1 = empty || subsumed t r1 ~current in
    if s1 then begin
      assign t t.reader loc current;
      let r2 = t.reader2.(loc) in
      if r2 = empty || subsumed t r2 ~current then clear t t.reader2 loc
    end
    else begin
      let r2 = t.reader2.(loc) in
      if r2 = empty || subsumed t r2 ~current then assign t t.reader2 loc current
    end
  end

let access t ~current (a : Fj_program.access) =
  access_raw t ~current ~loc:a.loc ~write:a.write

let run_thread t (u : Fj_program.thread) =
  let before = t.queries in
  (match Spr_obs.Sink.metrics t.sink with
  | None -> Array.iter (fun a -> access t ~current:u.Fj_program.tid a) u.Fj_program.accesses
  | Some m ->
      let h = Spr_obs.Metrics.histogram m "race/queries_per_access" in
      Array.iter
        (fun a ->
          let q0 = t.queries in
          access t ~current:u.Fj_program.tid a;
          Spr_obs.Metrics.observe h (t.queries - q0))
        u.Fj_program.accesses;
      Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "race/queries") (t.queries - before);
      Spr_obs.Metrics.add
        (Spr_obs.Metrics.counter m "race/accesses")
        (Array.length u.Fj_program.accesses));
  (* The event record would be constructed (allocated) before [emit]
     could ignore it, so skip explicitly when nothing is listening. *)
  if (not (Spr_obs.Sink.is_null t.sink)) && Array.length u.Fj_program.accesses > 0 then
    Spr_obs.Sink.emit t.sink
      (Spr_obs.Trace.Race_query { tid = u.Fj_program.tid; queries = t.queries - before })

let races t = Spr_util.Vec.to_list t.races

let race_count t = Spr_util.Vec.length t.races

let racy_locs t =
  List.sort_uniq compare (List.map (fun r -> r.loc) (races t))

let query_count t = t.queries

let max_loc program =
  let m = ref (-1) in
  Fj_program.iter_threads program (fun u ->
      Array.iter (fun (a : Fj_program.access) -> if a.loc > !m then m := a.loc) u.Fj_program.accesses);
  !m
