open Spr_prog

type race = {
  loc : int;
  earlier : int;
  later : int;
  earlier_write : bool;
  later_write : bool;
}

type t = {
  writer : int option array;
  reader : int option array;  (* first reader slot *)
  reader2 : int option array;  (* second reader slot *)
  races : race Spr_util.Vec.t;
  precedes : executed:int -> current:int -> bool;
  mutable queries : int;
  (* Shadow reference counts, for the release protocol. *)
  refs : (int, int) Hashtbl.t;
  on_unreferenced : (int -> unit) option;
  sink : Spr_obs.Sink.t;
}

let create ?on_unreferenced ?(sink = Spr_obs.Sink.null) ~locs ~precedes () =
  {
    writer = Array.make (max 1 locs) None;
    reader = Array.make (max 1 locs) None;
    reader2 = Array.make (max 1 locs) None;
    races = Spr_util.Vec.create ();
    precedes;
    queries = 0;
    refs = Hashtbl.create 64;
    on_unreferenced;
    sink;
  }

(* Drop one reference to [o]; notify when it leaves shadow memory. *)
let unref t o =
  match t.on_unreferenced with
  | None -> ()
  | Some notify ->
      let c = Hashtbl.find t.refs o - 1 in
      if c = 0 then begin
        Hashtbl.remove t.refs o;
        notify o
      end
      else Hashtbl.replace t.refs o c

(* Replace the occupant of a shadow slot, maintaining reference counts
   and notifying when a thread drops out of shadow memory entirely. *)
let assign t slot loc tid =
  let old = slot.(loc) in
  if old <> Some tid then begin
    (match t.on_unreferenced with
    | None -> ()
    | Some _ ->
        Hashtbl.replace t.refs tid (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs tid)));
    slot.(loc) <- Some tid;
    match old with None -> () | Some o -> unref t o
  end

let clear t slot loc =
  match slot.(loc) with
  | None -> ()
  | Some o ->
      slot.(loc) <- None;
      unref t o

let report t loc earlier later earlier_write later_write =
  Spr_util.Vec.push t.races { loc; earlier; later; earlier_write; later_write }

(* "recorded thread e is concurrent with u": e was seen before, so if
   it does not precede u it runs logically in parallel with u. *)
let concurrent t e ~current =
  t.queries <- t.queries + 1;
  e <> current && not (t.precedes ~executed:e ~current)

let access t ~current (a : Fj_program.access) =
  let loc = a.loc in
  if a.write then begin
    (match t.writer.(loc) with
    | Some w when concurrent t w ~current -> report t loc w current true true
    | _ -> ());
    (match t.reader.(loc) with
    | Some r when concurrent t r ~current -> report t loc r current false true
    | _ -> ());
    (match t.reader2.(loc) with
    | Some r when concurrent t r ~current -> report t loc r current false true
    | _ -> ());
    assign t t.writer loc current
  end
  else begin
    (match t.writer.(loc) with
    | Some w when concurrent t w ~current -> report t loc w current true false
    | _ -> ());
    (* Shadow-reader policy.  A recorded reader that precedes [current]
       is subsumed by it: any later access parallel to that reader would
       be parallel to [current] too (precedence is transitive and
       [current] cannot precede a thread that has already run).  So
       subsumed readers are replaced and up to two pairwise-concurrent
       readers are kept.  Under a serial (left-to-right) execution one
       slot already suffices (Feng–Leiserson); the second slot covers
       the out-of-order observation orders a parallel schedule produces.
       With three or more pairwise-parallel recorded readers the shadow
       is still an approximation — see the .mli. *)
    let subsumed r = r = current || (t.queries <- t.queries + 1; t.precedes ~executed:r ~current) in
    let s1 = match t.reader.(loc) with None -> true | Some r -> subsumed r in
    let s2 = match t.reader2.(loc) with None -> true | Some r -> subsumed r in
    if s1 then begin
      assign t t.reader loc current;
      if s2 then clear t t.reader2 loc
    end
    else if s2 then assign t t.reader2 loc current
  end

let run_thread t (u : Fj_program.thread) =
  let before = t.queries in
  (match Spr_obs.Sink.metrics t.sink with
  | None -> Array.iter (fun a -> access t ~current:u.Fj_program.tid a) u.Fj_program.accesses
  | Some m ->
      let h = Spr_obs.Metrics.histogram m "race/queries_per_access" in
      Array.iter
        (fun a ->
          let q0 = t.queries in
          access t ~current:u.Fj_program.tid a;
          Spr_obs.Metrics.observe h (t.queries - q0))
        u.Fj_program.accesses;
      Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "race/queries") (t.queries - before);
      Spr_obs.Metrics.add
        (Spr_obs.Metrics.counter m "race/accesses")
        (Array.length u.Fj_program.accesses));
  if Array.length u.Fj_program.accesses > 0 then
    Spr_obs.Sink.emit t.sink
      (Spr_obs.Trace.Race_query { tid = u.Fj_program.tid; queries = t.queries - before })

let races t = Spr_util.Vec.to_list t.races

let racy_locs t =
  List.sort_uniq compare (List.map (fun r -> r.loc) (races t))

let query_count t = t.queries

let max_loc program =
  let m = ref (-1) in
  Fj_program.iter_threads program (fun u ->
      Array.iter (fun (a : Fj_program.access) -> if a.loc > !m then m := a.loc) u.Fj_program.accesses);
  !m
