open Spr_prog
module Sm = Spr_core.Sp_maintainer

type serial_result = {
  races : Detector.race list;
  racy_locs : int list;
  sp_queries : int;
}

(* Shared scaffolding: walk the tree serially, driving the maintainer;
   at each real thread invoke [on_thread] with a tid-level precedes. *)
let serial_walk pt make on_thread =
  let tree = Prog_tree.tree pt in
  let inst = make tree in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let precedes ~executed ~current = Sm.precedes inst (leaf executed) (leaf current) in
  Spr_sptree.Sp_tree.iter_events tree (fun ev ->
      Sm.on_event inst ev;
      match ev with
      | Spr_sptree.Sp_tree.Thread n -> begin
          match Prog_tree.thread_of_leaf pt n with
          | Some u -> on_thread precedes u
          | None -> ()
        end
      | _ -> ())

let detect_serial pt make =
  let program = Prog_tree.program pt in
  let det = ref None in
  serial_walk pt make (fun precedes u ->
      let d =
        match !det with
        | Some d -> d
        | None ->
            let d = Detector.create ~locs:(Detector.max_loc program + 1) ~precedes () in
            det := Some d;
            d
      in
      Detector.run_thread d u);
  match !det with
  | Some d ->
      { races = Detector.races d; racy_locs = Detector.racy_locs d; sp_queries = Detector.query_count d }
  | None -> { races = []; racy_locs = []; sp_queries = 0 }

type releasing_result = {
  result : serial_result;
  peak_om_nodes : int;
  final_om_nodes : int;
  released : int;
}

let detect_serial_releasing pt =
  let program = Prog_tree.program pt in
  let tree = Prog_tree.tree pt in
  let sp = Spr_core.Sp_order.create tree in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let precedes ~executed ~current =
    Spr_core.Sp_order.precedes sp (leaf executed) (leaf current)
  in
  let released = ref 0 in
  let on_unreferenced tid =
    incr released;
    Spr_core.Sp_order.release sp (leaf tid)
  in
  let det =
    Detector.create ~on_unreferenced ~locs:(Detector.max_loc program + 1) ~precedes ()
  in
  let peak = ref 0 in
  Spr_sptree.Sp_tree.iter_events tree (fun ev ->
      Spr_core.Sp_order.on_event sp ev;
      match ev with
      | Spr_sptree.Sp_tree.Thread n -> begin
          match Prog_tree.thread_of_leaf pt n with
          | Some u ->
              Detector.run_thread det u;
              let size = Spr_core.Sp_order.om_size sp in
              if size > !peak then peak := size
          | None -> ()
        end
      | _ -> ());
  {
    result =
      {
        races = Detector.races det;
        racy_locs = Detector.racy_locs det;
        sp_queries = Detector.query_count det;
      };
    peak_om_nodes = !peak;
    final_om_nodes = Spr_core.Sp_order.om_size sp;
    released = !released;
  }

(* ------------------------------------------------------------------ *)
(* The fully packed pipeline: arena parse tree + fused English/Hebrew
   SP-order + packed shadow cells, all pre-sized at [create] and rewound
   in place by [run].  A steady-state [run] — rebuild the tree, replay
   the fork/join walk, issue every access and SP query — performs zero
   minor-heap allocation on a race-free program (recording a race
   pushes a report record); [regress --alloc-gate --e2e] pins this. *)
module Fused = struct
  type t = {
    program : Fj_program.t;
    threads : Fj_program.thread array;
    pa : Prog_arena.t;
    sp : Spr_core.Sp_order_fused.t;
    det : Detector.t;
    (* Persistent walk stack (node ids); Sp_arena.iter allocates its
       own scratch, which would show up in the gate. *)
    mutable stack : int array;
  }

  let create program =
    let pa = Prog_arena.of_program program in
    let sp = Spr_core.Sp_order_fused.create_raw () in
    Spr_core.Sp_order_fused.reset sp ~nodes:(Prog_arena.node_slots pa)
      ~root:(Prog_arena.root pa);
    let precedes ~executed ~current =
      Spr_core.Sp_order_fused.precedes_id sp
        (Prog_arena.leaf_of_thread pa executed)
        (Prog_arena.leaf_of_thread pa current)
    in
    let det = Detector.create ~locs:(Detector.max_loc program + 1) ~precedes () in
    {
      program;
      threads = Fj_program.threads program;
      pa;
      sp;
      det;
      stack = Array.make 64 0;
    }

  let run t =
    Prog_arena.build t.pa t.program;
    Spr_core.Sp_order_fused.reset t.sp ~nodes:(Prog_arena.node_slots t.pa)
      ~root:(Prog_arena.root t.pa);
    Detector.reset t.det;
    let arena = Prog_arena.arena t.pa in
    let sp_top = ref 0 in
    (if Array.length t.stack = 0 then t.stack <- Array.make 64 0);
    t.stack.(0) <- Prog_arena.root t.pa;
    incr sp_top;
    while !sp_top > 0 do
      decr sp_top;
      let n = t.stack.(!sp_top) in
      if Spr_sptree.Sp_arena.is_leaf arena n then begin
        let tid = Prog_arena.thread_of_leaf t.pa n in
        if tid >= 0 then begin
          (* Inline thread run: Detector.run_thread's sink/metrics
             bookkeeping is dead weight here. *)
          let u = t.threads.(tid) in
          let accs = u.Fj_program.accesses in
          for i = 0 to Array.length accs - 1 do
            Detector.access t.det ~current:tid accs.(i)
          done
        end
      end
      else begin
        let left = Spr_sptree.Sp_arena.left_of arena n in
        let right = Spr_sptree.Sp_arena.right_of arena n in
        Spr_core.Sp_order_fused.enter t.sp ~parent:n ~left ~right
          ~parallel:(Spr_sptree.Sp_arena.kind_of arena n = Spr_sptree.Sp_arena.Parallel);
        (if !sp_top + 2 > Array.length t.stack then begin
           let b = Array.make (2 * Array.length t.stack) 0 in
           Array.blit t.stack 0 b 0 !sp_top;
           t.stack <- b
         end);
        (* left walked first: push right below it. *)
        t.stack.(!sp_top) <- right;
        t.stack.(!sp_top + 1) <- left;
        sp_top := !sp_top + 2
      end
    done

  let detector t = t.det

  let result t =
    {
      races = Detector.races t.det;
      racy_locs = Detector.racy_locs t.det;
      sp_queries = Detector.query_count t.det;
    }
end

let detect_serial_fused program =
  let t = Fused.create program in
  Fused.run t;
  Fused.result t

type locked_result = { lock_races : Lockset.race list; racy_locs : int list }

let detect_serial_locked pt make =
  let det = ref None in
  serial_walk pt make (fun precedes u ->
      let d =
        match !det with
        | Some d -> d
        | None ->
            let d = Lockset.create ~precedes in
            det := Some d;
            d
      in
      Lockset.run_thread d u);
  match !det with
  | Some d -> { lock_races = Lockset.races d; racy_locs = Lockset.racy_locs d }
  | None -> { lock_races = []; racy_locs = [] }

type hybrid_result = {
  races : Detector.race list;
  racy_locs : int list;
  sim : Spr_sched.Sim.result;
  hybrid_stats : Spr_hybrid.Sp_hybrid.stats;
}

type hybrid_locked_result = {
  lock_races : Lockset.race list;
  racy_locs : int list;
  sim : Spr_sched.Sim.result;
}

let detect_hybrid_locked ?(seed = 1) ?(procs = 4) program =
  let h = Spr_hybrid.Sp_hybrid.create program in
  let precedes ~executed ~current = Spr_hybrid.Sp_hybrid.precedes h ~executed ~current in
  let det = Lockset.create ~precedes in
  let dlock = Mutex.create () in
  let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
    (* The lockset history is the shared resource; updates serialize,
       the SP queries inside stay lock-free. *)
    Mutex.protect dlock (fun () -> Lockset.run_thread det u);
    Spr_hybrid.Sp_hybrid.charge_query h
  in
  let sim =
    Spr_sched.Sim.run
      ~hooks:(Spr_hybrid.Sp_hybrid.hooks ~on_thread_user h)
      ~seed ~procs program
  in
  { lock_races = Lockset.races det; racy_locs = Lockset.racy_locs det; sim }

let detect_hybrid ?(seed = 1) ?(procs = 4) program =
  let h = Spr_hybrid.Sp_hybrid.create program in
  let precedes ~executed ~current = Spr_hybrid.Sp_hybrid.precedes h ~executed ~current in
  let det = Detector.create ~locs:(Detector.max_loc program + 1) ~precedes () in
  let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
    let before = Detector.query_count det in
    Detector.run_thread det u;
    let queries = Detector.query_count det - before in
    (* Charge virtual time for the SP queries the detector issued. *)
    let cost = ref 0 in
    for _ = 1 to queries do
      cost := !cost + Spr_hybrid.Sp_hybrid.charge_query h
    done;
    !cost
  in
  let sim =
    Spr_sched.Sim.run
      ~hooks:(Spr_hybrid.Sp_hybrid.hooks ~on_thread_user h)
      ~seed ~procs program
  in
  {
    races = Detector.races det;
    racy_locs = Detector.racy_locs det;
    sim;
    hybrid_stats = Spr_hybrid.Sp_hybrid.stats h;
  }
