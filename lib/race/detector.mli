(** Determinacy-race detector — the Nondeterminator protocol
    (Feng–Leiserson 1997), parameterised by an SP-maintenance oracle.

    Shadow memory keeps, per location, the last writer and up to {e
    two} readers.  When the currently executing thread [u] performs an
    access, the detector issues O(1) SP queries against the recorded
    threads:

    - {e read}: a recorded writer not preceding [u] races with [u];
      afterwards every recorded reader that precedes [u] is {e
      subsumed} by it and replaced — this is sound because a later
      access parallel to a subsumed reader is parallel to [u] too
      (precedence is transitive, and [u] cannot precede a thread that
      already ran).  Readers concurrent with [u] are kept, up to two;
      a third pairwise-parallel reader is dropped.
    - {e write}: a recorded writer or reader not preceding [u] races
      with [u]; [u] becomes the recorded writer.

    Over a serial (left-to-right) execution one reader slot already
    reports a race on a location iff the program has one there
    (Feng–Leiserson); the second slot extends that per-location
    guarantee to the out-of-order observation orders of a parallel
    schedule whenever at most two recorded readers of the location are
    pairwise parallel — in particular to every 3-thread program.  With
    three or more pairwise-parallel readers recorded before a
    conflicting write, the bounded shadow remains an approximation
    (full generality needs unbounded read sets); reported races are
    always real.  The [precedes] oracle is whatever SP-maintenance
    algorithm is plugged in — with SP-order, the whole detection pass
    costs O(T{_1}) (Corollary 6). *)

type race = {
  loc : int;
  earlier : int;  (** tid recorded in shadow memory *)
  later : int;  (** tid of the access that exposed the race *)
  earlier_write : bool;
  later_write : bool;
}

type t

val create :
  ?on_unreferenced:(int -> unit) ->
  ?sink:Spr_obs.Sink.t ->
  locs:int ->
  precedes:(executed:int -> current:int -> bool) ->
  unit ->
  t
(** [locs] bounds the shadow-memory address space; [precedes] answers
    "did [executed] logically precede [current]?" for threads already
    seen.

    [sink] (default {!Spr_obs.Sink.null}) receives one [Race_query]
    event per accessing thread run through {!run_thread} and, when a
    metric registry is attached, [race/] counters plus a
    [race/queries_per_access] histogram.

    [on_unreferenced tid] fires when a thread that had entered shadow
    memory loses its last reference (every slot it occupied has been
    overwritten): the detector will never query it again, so an
    SP-maintenance structure that supports deletion (SP-order) can
    release it and track the live frontier instead of the full
    history — see {!Drivers.detect_serial_releasing}. *)

val reset : t -> unit
(** Rewind to the create-time state — empty shadow memory, no recorded
    races, zero query count — reusing every internal array.  In steady
    state (release protocol unarmed) this allocates nothing, which is
    what lets the end-to-end pipeline re-run a program with zero minor
    words. *)

val access : t -> current:int -> Spr_prog.Fj_program.access -> unit
(** Record one access by the currently executing thread.  The shadow
    slots are packed [int] arrays, so an access allocates only when a
    race is recorded. *)

val access_raw : t -> current:int -> loc:int -> write:bool -> unit
(** {!access} without the record: the streaming-ingestion hot path
    decodes (loc, write) straight out of a binary frame and must not
    box them. *)

val run_thread : t -> Spr_prog.Fj_program.thread -> unit
(** All accesses of a thread, in order. *)

val races : t -> race list
(** Every reported race, in detection order. *)

val race_count : t -> int
(** [List.length (races t)], without building the list. *)

val racy_locs : t -> int list
(** Sorted, deduplicated locations involved in reported races. *)

val query_count : t -> int
(** SP queries issued (for Corollary 6 accounting). *)

val max_loc : Spr_prog.Fj_program.t -> int
(** Largest location mentioned by the program (-1 if none); convenience
    for sizing [locs]. *)
