let sp_order tree = Sp_maintainer.Instance ((module Sp_order), Sp_order.create tree)

module Sp_order_packed = struct
  include Sp_order_generic.Make (Spr_om.Om_packed)

  let name = "sp-order-packed"
end

let sp_order_packed tree =
  Sp_maintainer.Instance ((module Sp_order_packed), Sp_order_packed.create tree)

let sp_order_implicit tree =
  Sp_maintainer.Instance ((module Sp_order_implicit), Sp_order_implicit.create tree)

let sp_bags tree = Sp_maintainer.Instance ((module Sp_bags), Sp_bags.create tree)

let sp_bags_no_compression tree =
  Sp_maintainer.Instance
    ( (module struct
        include Sp_bags

        let name = "sp-bags-norank"
      end),
      Sp_bags.create_no_compression tree )

let english_hebrew tree =
  Sp_maintainer.Instance ((module English_hebrew), English_hebrew.create tree)

let offset_span tree = Sp_maintainer.Instance ((module Offset_span), Offset_span.create tree)

let sp_depa tree = Sp_maintainer.Instance ((module Sp_depa), Sp_depa.create tree)

let sp_order_fused tree =
  Sp_maintainer.Instance ((module Sp_order_fused), Sp_order_fused.create tree)

let lca_reference tree = Sp_maintainer.Instance ((module Sp_naive), Sp_naive.create tree)

(* The modern competition (ROADMAP item 1): happens-before clock
   detectors from lib/hb.  The maintainer modules live below this
   library and match {!Sp_maintainer.S} structurally; packing them
   here is where the signature is actually checked. *)
let hb_vector tree =
  Sp_maintainer.Instance ((module Spr_hb.Sp_clock.Vector), Spr_hb.Sp_clock.Vector.create tree)

let hb_tree tree =
  Sp_maintainer.Instance ((module Spr_hb.Sp_clock.Tree), Spr_hb.Sp_clock.Tree.create tree)

let figure3 =
  [
    ("english-hebrew", english_hebrew);
    ("offset-span", offset_span);
    ("sp-bags", sp_bags);
    ("sp-order", sp_order);
  ]

let figure3_modern =
  figure3
  @ [
      ("sp-depa", sp_depa);
      ("sp-order-fused", sp_order_fused);
      ("hb-vector", hb_vector);
      ("hb-tree", hb_tree);
    ]

let all =
  figure3
  @ [
      ("sp-depa", sp_depa);
      ("sp-order-fused", sp_order_fused);
      ("hb-vector", hb_vector);
      ("hb-tree", hb_tree);
      ("sp-order-packed", sp_order_packed);
      ("sp-order-implicit", sp_order_implicit);
      ("sp-bags-norank", sp_bags_no_compression);
      ("lca-reference", lca_reference);
    ]

let names = List.map fst all

let find_opt name = List.assoc_opt name all

let unknown name =
  Printf.sprintf "unknown algorithm %S (valid: %s)" name (String.concat ", " names)

(* The one lookup helper every CLI routes through: an unknown name is a
   user input error with the valid names listed, never a bare
   [Not_found] with a backtrace. *)
let find name tree =
  match find_opt name with
  | Some make -> make tree
  | None -> invalid_arg ("Algorithms.find: " ^ unknown name)
