(* SP-order over the fused packed English/Hebrew structure.

   Same Figure 5 algorithm as {!Sp_order}, but the two orders live in
   one {!Spr_om.Om_fused} and a node's position in both is one [int]
   handle, so Enter is one fused child-pair insertion (no option boxes,
   no tuples) and a query reads both labels of both operands from two
   interleaved records.  The raw-id API ([enter]/[precedes_id]/
   [parallel_id]) plus [reset] is what the zero-allocation end-to-end
   pipeline in {!Spr_race.Drivers} drives; the {!Spr_core.Sp_maintainer.S}
   surface on top is for the registry, Figure-3 tables and
   cross-validation. *)

open Spr_sptree
module Om_fused = Spr_om.Om_fused

type t = {
  om : Om_fused.t;
  (* Node id -> fused element; -1 until discovered (or after release). *)
  mutable elt_of : int array;
}

let name = "sp-order-fused"

let unset = -1

let create_raw () = { om = Om_fused.create (); elt_of = Array.make 64 unset }

(* Rewind for a tree of [nodes] node ids rooted at [root] without
   allocating unless the id space outgrew the map. *)
let reset t ~nodes ~root =
  Om_fused.reset t.om;
  if Array.length t.elt_of < nodes then
    t.elt_of <- Array.make (max nodes (2 * Array.length t.elt_of)) unset
  else Array.fill t.elt_of 0 (Array.length t.elt_of) unset;
  t.elt_of.(root) <- Om_fused.base t.om

let create tree =
  let t = create_raw () in
  reset t ~nodes:(Sp_tree.node_count tree) ~root:(Sp_tree.root tree).id;
  t

let elt t id =
  let e = t.elt_of.(id) in
  if e = unset then invalid_arg "Sp_order_fused: node not discovered (or released)";
  e

(* Lines 4-7 of Figure 5, fused: both orders updated by one packed
   child-pair insertion.  Raw ids; allocation-free. *)
let enter t ~parent ~left ~right ~parallel =
  let lr = Om_fused.insert_children_packed t.om (elt t parent) ~parallel in
  t.elt_of.(left) <- Om_fused.packed_left lr;
  t.elt_of.(right) <- Om_fused.packed_right lr

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind; left; right } ->
          enter t ~parent:x.id ~left:left.id ~right:right.id
            ~parallel:(kind = Parallel)
    end
  | Sp_tree.Mid _ | Sp_tree.Thread _ | Sp_tree.Exit _ -> ()

(* Lines 10-12 of Figure 5 / Corollary 2, on raw ids. *)
let precedes_id t x y = Om_fused.sp_precedes t.om (elt t x) (elt t y)

let parallel_id t x y = Om_fused.sp_parallel t.om (elt t x) (elt t y)

let precedes t (x : Sp_tree.node) (y : Sp_tree.node) = precedes_id t x.id y.id

let parallel t (x : Sp_tree.node) (y : Sp_tree.node) = parallel_id t x.id y.id

let requires_current_operand = false

let leaves_only = false

(* One fused element per node covers both orders — half of {!Sp_order}'s
   two-handles row in the Figure 3 space column. *)
let avg_label_words _ = 1.0

let om_size t = Om_fused.size t.om

let release t (n : Sp_tree.node) =
  let e = t.elt_of.(n.id) in
  if e = unset then invalid_arg "Sp_order_fused.release: node not discovered (or already released)";
  Om_fused.delete t.om e;
  t.elt_of.(n.id) <- unset

let set_sink t sink = Om_fused.set_sink t.om sink

let om t = t.om
