open Spr_sptree
module Fp = Spr_om.Fork_path

(* Each thread carries one immutable (depth, fork-path) label assigned
   at its fork (the parent's Enter event): the bit-packed root path of
   Spr_om.Fork_path.  Fork and join touch no shared structure — there
   is nothing to relabel and nothing to lock — and a query compares the
   two paths' packed words up to the LCA level.  See fork_path.mli for
   the representation and DESIGN.md §5 for the mapping onto the
   paper's English/Hebrew orderings. *)

type t = {
  labels : Fp.t option array;  (* per-node assignment, indexed by id *)
  mutable total_words : int;
  mutable threads : int;
}

let name = "sp-depa"

let create tree =
  let n = Sp_tree.node_count tree in
  let t = { labels = Array.make n None; total_words = 0; threads = 0 } in
  t.labels.((Sp_tree.root tree).id) <- Some Fp.root;
  t

let label t (n : Sp_tree.node) =
  match t.labels.(n.id) with
  | Some l -> l
  | None -> invalid_arg "Sp_depa: node not yet discovered"

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind; left; right } ->
          let p = label t x in
          let parallel = kind = Parallel in
          t.labels.((left : Sp_tree.node).id) <- Some (Fp.extend p ~parallel ~right:false);
          t.labels.((right : Sp_tree.node).id) <- Some (Fp.extend p ~parallel ~right:true)
    end
  | Sp_tree.Thread u ->
      t.total_words <- t.total_words + Fp.size_words (label t u);
      t.threads <- t.threads + 1
  | Sp_tree.Mid _ | Sp_tree.Exit _ -> ()

let precedes t x y = if x == y then false else Fp.relate (label t x) (label t y) = Fp.Before

let parallel t x y = if x == y then false else Fp.relate (label t x) (label t y) = Fp.Par

let requires_current_operand = false

let leaves_only = true

let avg_label_words t =
  if t.threads = 0 then 0.0 else float_of_int t.total_words /. float_of_int t.threads

let label_depth t n = Fp.depth (label t n)

let label_words t n = Fp.size_words (label t n)
