(** Registry of all serial SP-maintenance algorithms.

    One constructor per algorithm, plus [all] for uniform iteration in
    the Figure-3 table, cross-validation tests and the CLI. *)

val sp_order : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance

val sp_order_packed : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** SP-order on the packed struct-of-arrays OM backend
    ({!Spr_om.Om_packed}): same algorithm and answers as {!sp_order},
    allocation-free OM hot paths. *)

val sp_order_implicit : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** SP-order with the English order kept implicitly (paper,
    footnote 2): one OM structure instead of two; thread queries
    only. *)

val sp_bags : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance

val sp_bags_no_compression : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** Union-by-rank-only ablation (Section 5 / Section 7 conjecture). *)

val english_hebrew : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance

val offset_span : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance

val sp_depa : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** DePa-style bit-packed (depth, fork-path) labels ({!Sp_depa}):
    O(1) fork/join with no shared mutable state, lock-free queries. *)

val sp_order_fused : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** SP-order on the fused packed English/Hebrew structure
    ({!Spr_om.Om_fused} via {!Sp_order_fused}): both orders in one
    struct-of-arrays, one handle per node, allocation-free
    fork/join/query. *)

val lca_reference : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance

val hb_vector : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** Vector-clock happens-before detector ({!Spr_hb.Sp_clock.Vector}):
    Θ(width) fork copy and join, O(1) epoch queries — the textbook
    competitor SP-order's O(1)-per-operation labels are measured
    against. *)

val hb_tree : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** Tree-clock happens-before detector ({!Spr_hb.Sp_clock.Tree}):
    joins cost O(updated subtree) instead of Θ(width)
    ({!Spr_hb.Tree_clock}). *)

val all : (string * (Spr_sptree.Sp_tree.t -> Sp_maintainer.instance)) list
(** The four algorithms of Figure 3, in the paper's order, plus the
    modern DePa labeling, the reference oracle and the ablation
    variants. *)

val figure3 : (string * (Spr_sptree.Sp_tree.t -> Sp_maintainer.instance)) list
(** Exactly the four rows of Figure 3. *)

val figure3_modern : (string * (Spr_sptree.Sp_tree.t -> Sp_maintainer.instance)) list
(** The Figure-3 rows plus the post-paper labels-not-clocks competitor
    ([sp-depa]) — what EXP-FIG3 actually tabulates. *)

val names : string list
(** Registered algorithm names, in [all]'s order. *)

val find_opt : string -> (Spr_sptree.Sp_tree.t -> Sp_maintainer.instance) option

val unknown : string -> string
(** [unknown name] is the canonical "unknown algorithm ... (valid:
    ...)" message — the one string every CLI prints for a bad [--algo]
    so the error paths cannot drift. *)

val find : string -> Spr_sptree.Sp_tree.t -> Sp_maintainer.instance
(** Look an algorithm up by name.
    @raise Invalid_argument with {!unknown}'s message on an
    unregistered name (never a bare [Not_found]). *)
