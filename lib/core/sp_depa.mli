(** DePa-style fork-path labeling (Westrick–Wang–Acar, see PAPERS.md).

    Every thread gets, at fork time, one immutable label: its
    bit-packed (depth, fork-path) pair ({!Spr_om.Fork_path}).  Fork and
    join are O(1) (amortized at 62-level word boundaries) and touch
    {e no shared mutable state} — no OM structure, no relabeling, no
    global-tier lock — so SP queries are naturally lock-free: a query
    xors the packed planes to the LCA level and reads two bits.

    Versus the paper's algorithms: query cost is O(⌈lca-depth / 62⌉)
    — one word compare for nesting up to 62, vs SP-order's O(1)-always
    but lock-on-insert shared OM; label space is 1 + 2·⌈depth/62⌉
    words, vs English-Hebrew's Θ(depth) components for the same
    information.  What is given up: no deletion/reuse of labels
    (SP-order's [release]), and queries are valid between {e leaves}
    only. *)

include Sp_maintainer.S

val label_depth : t -> Spr_sptree.Sp_tree.node -> int
(** The thread's parse-tree depth (= label bits per plane). *)

val label_words : t -> Spr_sptree.Sp_tree.node -> int
(** The thread's packed label footprint in machine words. *)
