(** SP-order over the fused packed English/Hebrew structure
    ({!Spr_om.Om_fused}).

    Behaviourally identical to {!Sp_order} — Figure 5's algorithm with
    Corollary 2 queries — but a node's position in {e both} orders is a
    single [int] handle into one struct-of-arrays, so Enter performs
    one fused allocation-free child-pair insertion and a query touches
    two interleaved records instead of four boxed elements across two
    structures.  Cross-validated pairwise against [sp-order] by
    [Sp_check.check_pair] / [Fuzz.sp_pairs].

    Besides the standard {!Spr_core.Sp_maintainer.S} surface, this
    module exposes a raw-node-id API ([enter] / [precedes_id] /
    [parallel_id]) and O(1) [reset], which is what the end-to-end
    zero-allocation race-detection pipeline drives: no
    {!Spr_sptree.Sp_tree.node} records, no event constructors, no
    queries through option boxes. *)

include Sp_maintainer.S

val create_raw : unit -> t
(** A maintainer with no tree attached yet; call {!reset} before use. *)

val reset : t -> nodes:int -> root:int -> unit
(** Rewind for a fresh walk of a tree with node ids in [0, nodes) and
    the given root id.  Reuses all internal arrays (grows the id map
    only if [nodes] exceeds every previous walk) — steady-state resets
    allocate nothing. *)

val enter : t -> parent:int -> left:int -> right:int -> parallel:bool -> unit
(** Raw-id Enter (Figure 5 lines 4-7): splice [left]/[right] after
    [parent] in both orders, Hebrew-flipped when [parallel].
    Allocation-free.
    @raise Invalid_argument if [parent] is undiscovered. *)

val precedes_id : t -> int -> int -> bool
(** [precedes]/[parallel] on raw node ids (allocation-free). *)

val parallel_id : t -> int -> int -> bool

val release : t -> Spr_sptree.Sp_tree.node -> unit
(** Delete a node from both orders and recycle its slot; the structure
    stays proportional to the live frontier. *)

val om_size : t -> int
(** Live elements in the fused structure. *)

val om : t -> Spr_om.Om_fused.t
(** The underlying fused structure (stats/invariant introspection). *)

val set_sink : t -> Spr_obs.Sink.t -> unit
