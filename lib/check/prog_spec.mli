(** A shrink-friendly mirror of {!Spr_prog.Fj_program}.

    [Fj_program.t] is built through a stateful builder and carries
    dense ids, which makes it awkward to mutate structurally during
    shrinking.  A [Prog_spec.t] is the same canonical Cilk shape as a
    plain immutable value — a procedure is a list of sync blocks, a
    block a list of items, an item either a thread of some cost or a
    spawned sub-procedure — that converts losslessly (up to thread
    ids) to and from real programs and prints as a replayable OCaml
    literal. *)

type item = T of int  (** a thread with the given cost (>= 1) *)
          | S of t  (** a spawned sub-procedure *)

and t = item list list
(** A procedure: sync blocks of items. *)

val normalize : t -> t
(** Drop empty blocks (and empty-block-only specs collapse to the
    one-thread program [[[T 1]]]) so that the result always satisfies
    the [Fj_program.Builder.proc] well-formedness rules. *)

val to_program : t -> Spr_prog.Fj_program.t
(** Build the real program ([normalize]d first).  Threads carry no
    accesses — specs describe structure; the SP relation is what the
    fuzzer checks. *)

val of_program : Spr_prog.Fj_program.t -> t
(** Forget ids and accesses, keep the fork-join shape. *)

val thread_count : t -> int
(** Threads in the normalized spec. *)

val pp : Format.formatter -> t -> unit
(** Print as an OCaml literal, e.g. [[[T 1; S [[T 2]; [T 1]]]]] —
    paste it back as a [Prog_spec.t] to replay a repro. *)

val candidates : t -> t list
(** One-step shrinks, most aggressive first: hoist a spawned
    sub-procedure to the top level, drop a block, drop an item,
    collapse a spawn to a single thread, cut a thread's cost to 1,
    shrink inside a sub-procedure.  Every candidate is strictly
    smaller (fewer items or less total cost), so
    {!Shrink.fixpoint} terminates. *)
