(** Differential checking of SP-maintenance algorithms against the LCA
    reference ({!Spr_sptree.Sp_reference}).

    Three execution regimes are covered, mirroring the paper's
    structure: the serial left-to-right walk of Section 2 (every
    algorithm), arbitrary legal unfoldings (SP-order, end of
    Section 2), and SP-hybrid driven by the work-stealing simulator
    under varying worker counts and steal seeds (Sections 3–5).  Every
    check returns the {e first} divergence instead of raising, so the
    fuzzer can shrink around it; exceptions escaping an algorithm are
    reported as divergences too. *)

type divergence = {
  algo : string;  (** algorithm (or "sp-hybrid") that disagreed *)
  schedule : string;  (** e.g. ["serial"], ["unfold seed=3"], ["hybrid procs=4 seed=7"] *)
  detail : string;  (** the failing query and both answers *)
}

val pp_divergence : Format.formatter -> divergence -> unit

type algo = string * (Spr_sptree.Sp_tree.t -> Spr_core.Sp_maintainer.instance)
(** A registry entry, shaped like {!Spr_core.Algorithms.all} so faulty
    injected algorithms can stand in for real ones. *)

val check_serial : Spr_sptree.Sp_tree.t -> algo -> divergence option
(** Left-to-right walk; at every thread execution compare
    [precedes]/[parallel] against the reference for all executed
    threads, honoring the algorithm's declared query semantics
    ([requires_current_operand], reverse direction included when
    allowed). *)

val check_pair : Spr_sptree.Sp_tree.t -> algo -> algo -> divergence option
(** [check_pair tree a b] drives {e both} maintainers through the same
    left-to-right walk and compares their answers to each other — no
    reference oracle involved.  Catches a pair of algorithms that are
    wrong {e the same way} relative to their spec drifting apart in
    practice (the sp-depa vs sp-order cross-validation), and is cheaper
    than two oracle checks since the reference LCA walk is skipped.
    Reverse-direction queries are exercised only when neither side sets
    [requires_current_operand]. *)

val check_unfolded : seed:int -> Spr_sptree.Sp_tree.t -> algo -> divergence option
(** Drive the algorithm with a random {e legal} unfolding
    ({!Spr_sptree.Unfold.random_events}) and audit all pairs of
    discovered threads periodically and at the end.  Only meaningful
    for algorithms that tolerate out-of-order unfolding (SP-order). *)

val check_hybrid :
  ?sink:Spr_obs.Sink.t -> procs:int -> seed:int -> Spr_prog.Fj_program.t -> divergence option
(** Run the program through SP-hybrid on the simulator ([procs]
    workers, steal seed [seed]); at every thread start compare
    [precedes]/[parallel] with the reference for every started thread
    (Theorem 9).  [sink] collects scheduler/hybrid/OM metrics and
    events across the checked runs. *)

val check_program :
  ?sink:Spr_obs.Sink.t ->
  ?algos:algo list ->
  ?pairs:(algo * algo) list ->
  ?unfold_seeds:int list ->
  ?schedules:(int * int) list ->
  Spr_prog.Fj_program.t ->
  divergence option
(** The full battery on one program: [algos] (default
    {!Spr_core.Algorithms.all}) through {!check_serial}, each of
    [pairs] through {!check_pair}, each [unfold_seeds] through
    {!check_unfolded} on SP-order, each [(procs, seed)] in [schedules]
    through {!check_hybrid}. *)
