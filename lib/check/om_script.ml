type op = Insert_after of int | Insert_before of int | Delete of int | Query of int * int

type script = op list

type mix = Uniform | Delete_heavy | Head_heavy

let random_op ~rng ~mix =
  let module R = Spr_util.Rng in
  (* Indices are drawn from a wide range and resolved mod the live
     count at replay time, so the same op stays meaningful as the
     script shrinks around it. *)
  let ix () = R.int rng 1_000_000 in
  let p = R.float rng 1.0 in
  match mix with
  | Uniform ->
      if p < 0.30 then Insert_after (ix ())
      else if p < 0.50 then Insert_before (ix ())
      else if p < 0.70 then Delete (ix ())
      else Query (ix (), ix ())
  | Delete_heavy ->
      if p < 0.25 then Insert_after (ix ())
      else if p < 0.35 then Insert_before (ix ())
      else if p < 0.80 then Delete (ix ())
      else Query (ix (), ix ())
  | Head_heavy ->
      (* [Insert_before 0] lands before the base element — always the
         head of the first bucket — driving the bucket-head relink path
         and, in bursts, splits at capacity. *)
      if p < 0.50 then Insert_before 0
      else if p < 0.70 then Insert_after (ix ())
      else if p < 0.80 then Delete (ix ())
      else Query (ix (), ix ())

let random_script ~rng ~mix ~len = List.init len (fun _ -> random_op ~rng ~mix)

let pp_op fmt = function
  | Insert_after i -> Format.fprintf fmt "Insert_after %d" i
  | Insert_before i -> Format.fprintf fmt "Insert_before %d" i
  | Delete i -> Format.fprintf fmt "Delete %d" i
  | Query (i, j) -> Format.fprintf fmt "Query (%d, %d)" i j

let pp fmt script =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_op)
    script

type divergence = { structure : string; step : int; op : op option; detail : string }

let pp_divergence fmt d =
  match d.op with
  | Some op ->
      Format.fprintf fmt "%s: step %d (%a): %s" d.structure d.step pp_op op d.detail
  | None -> Format.fprintf fmt "%s: final sweep after %d ops: %s" d.structure d.step d.detail

module type SUT = sig
  include Spr_om.Om_intf.S

  val check_invariants : t -> unit
end

module Vec = Spr_util.Vec

(* The default oracle: the naive specification, which needs no
   self-check of its own (every insert renumbers the whole list). *)
let naive_oracle : (module SUT) =
  (module struct
    include Spr_om.Om_naive

    let check_invariants _ = ()
  end)

let replay_vs ?sink ~oracle (module M : SUT) script =
  let (module O : SUT) = oracle in
  let sut = M.create () in
  (* Arm the candidate's sink (flight recorder / trace) so a failing
     script's telemetry survives into the post-mortem dump; the oracle
     stays silent. *)
  (match sink with None -> () | Some s -> M.set_sink sut s);
  let model = O.create () in
  (* Live elements, as (candidate, oracle) pairs; slot 0 is the base. *)
  let live : (M.elt * O.elt) Vec.t = Vec.create () in
  Vec.push live (M.base sut, O.base model);
  let fail step op fmt = Format.kasprintf (fun detail -> Some { structure = M.name; step; op; detail }) fmt in
  let check_query step op i j =
    let a, na = Vec.get live i and b, nb = Vec.get live j in
    let got = M.precedes sut a b and want = O.precedes model na nb in
    if got <> want then fail step op "precedes(#%d, #%d) = %b, oracle says %b" i j got want
    else None
  in
  let after_mutation step op =
    M.check_invariants sut;
    let got = M.size sut and want = O.size model in
    if got <> want then fail step op "size = %d, oracle says %d" got want else None
  in
  let step_op step op =
    let n = Vec.length live in
    match op with
    | Insert_after i ->
        let a, na = Vec.get live (i mod n) in
        Vec.push live (M.insert_after sut a, O.insert_after model na);
        after_mutation step (Some op)
    | Insert_before i ->
        let a, na = Vec.get live (i mod n) in
        Vec.push live (M.insert_before sut a, O.insert_before model na);
        after_mutation step (Some op)
    | Delete i ->
        if n < 2 then None (* only the base is live: skip *)
        else begin
          let idx = 1 + (i mod (n - 1)) in
          let a, na = Vec.get live idx in
          M.delete sut a;
          O.delete model na;
          (* Swap-remove to keep the vector dense. *)
          (match Vec.pop live with
          | Some last -> if idx < Vec.length live then Vec.set live idx last
          | None -> assert false);
          after_mutation step (Some op)
        end
    | Query (i, j) -> (
        match check_query step (Some op) (i mod n) (j mod n) with
        | Some d -> Some d
        | None -> check_query step (Some op) (j mod n) (i mod n))
  in
  let rec run step = function
    | [] ->
        (* Final full pairwise sweep (bounded: scripts are short). *)
        let n = Vec.length live in
        let d = ref None in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if !d = None && i <> j then d := check_query step None i j
          done
        done;
        !d
    | op :: rest -> (
        match
          try step_op step op
          with e -> fail step (Some op) "exception: %s" (Printexc.to_string e)
        with
        | Some d -> Some d
        | None -> run (step + 1) rest)
  in
  run 0 script

let replay ?sink sut script = replay_vs ?sink ~oracle:naive_oracle sut script
