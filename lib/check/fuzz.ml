module Rng = Spr_util.Rng

type config = {
  seed : int;
  iters : int;
  max_threads : int;
  schedules : int;
  algos : Sp_check.algo list;
  sp_pairs : (Sp_check.algo * Sp_check.algo) list;
  om_suts : (string * (module Om_script.SUT)) list;
  om_pairs : (string * (module Om_script.SUT) * (module Om_script.SUT)) list;
  log : string -> unit;
  sink : Spr_obs.Sink.t;
}

(* Give a structure without a native self-check a vacuous one, so the
   SUT list stays uniform. *)
let no_invariants (module M : Spr_om.Om_intf.S) : (module Om_script.SUT) =
  (module struct
    include M

    let check_invariants _ = ()
  end)

let default_om_suts =
  [
    ("om", ((module Spr_om.Om) : (module Om_script.SUT)));
    ("om-packed", (module Spr_om.Om_packed));
    ("om-label", no_invariants (module Spr_om.Om_label));
    ("om-file", no_invariants (module Spr_om.Om_file));
    ("om-concurrent", (module Spr_om.Om_concurrent));
    ("om-concurrent2", (module Spr_om.Om_concurrent2));
  ]

(* Cross-validation pairs: candidate replayed with a non-naive oracle.
   The packed backend implements the exact same algorithm as the boxed
   two-level structure, so their answers must agree op for op — a much
   sharper check than each independently agreeing with the naive
   model's coarse total order. *)
let default_om_pairs =
  [
    ( "om-packed vs om-two-level",
      ((module Spr_om.Om_packed) : (module Om_script.SUT)),
      ((module Spr_om.Om) : (module Om_script.SUT)) );
  ]

(* SP-maintainer cross-validation pairs, same spirit: sp-depa computes
   the relation from immutable fork-path labels, sp-order from a live
   OM structure — totally different failure modes, so answer-for-answer
   agreement on every executed pair is a sharp check that costs no
   extra reference walk. *)
let default_sp_pairs =
  [
    ( ("sp-depa", Spr_core.Algorithms.sp_depa),
      ("sp-order", Spr_core.Algorithms.sp_order) );
    (* The fused backend reimplements the OM substrate (interleaved
       planes, shared slots, packed child-pair insert), so pin it
       answer-for-answer to the boxed reference. *)
    ( ("sp-order-fused", Spr_core.Algorithms.sp_order_fused),
      ("sp-order", Spr_core.Algorithms.sp_order) );
  ]

let default ~seed ~iters =
  {
    seed;
    iters;
    max_threads = 32;
    schedules = 3;
    algos = Spr_core.Algorithms.all;
    sp_pairs = default_sp_pairs;
    om_suts = default_om_suts;
    om_pairs = default_om_pairs;
    log = ignore;
    sink = Spr_obs.Sink.null;
  }

(* Every iteration gets an independent generator, so a repro depends
   only on (seed, iteration). *)
let iter_rng cfg i = Rng.create ((cfg.seed * 1_000_003) + i)

let count cfg key =
  match Spr_obs.Sink.metrics cfg.sink with
  | None -> ()
  | Some m -> Spr_obs.Metrics.incr (Spr_obs.Metrics.counter m key)

let progress cfg i what =
  let every = max 1 (cfg.iters / 10) in
  if i > 0 && i mod every = 0 then cfg.log (Printf.sprintf "%s: %d/%d iterations" what i cfg.iters)

(* ------------------------------------------------------------------ *)
(* SP maintainers                                                      *)

type sp_failure = {
  sp_iter : int;
  sp_spec : Prog_spec.t;
  sp_threads : int;
  sp_divergence : Sp_check.divergence;
}

let pp_sp_failure fmt f =
  Format.fprintf fmt
    "@[<v>SP divergence at iteration %d:@,  %a@,shrunk repro (%d threads), as Prog_spec.t:@,  %a@]"
    f.sp_iter Sp_check.pp_divergence f.sp_divergence f.sp_threads Prog_spec.pp f.sp_spec

let shapes = [| `Uniform; `Deep_serial; `Wide; `Spawn_heavy |]

let run_sp cfg =
  let rec iterate i =
    if i >= cfg.iters then None
    else begin
      progress cfg i "sp";
      let rng = iter_rng cfg i in
      let threads = 2 + Rng.int rng (max 1 (cfg.max_threads - 1)) in
      let shape = shapes.(i mod Array.length shapes) in
      let program = Spr_workloads.Progs.random_adversarial ~rng ~threads ~shape () in
      (* The battery configuration is fixed per iteration so that the
         shrinking predicate replays the exact same checks. *)
      let unfold_seeds = [ (2 * i) + 1; (2 * i) + 2 ] in
      let hybrid =
        List.init cfg.schedules (fun k -> (1 + ((i + k) mod 8), (i * 31) + k))
      in
      let diverges spec =
        Sp_check.check_program ~sink:cfg.sink ~algos:cfg.algos ~pairs:cfg.sp_pairs
          ~unfold_seeds ~schedules:hybrid
          (Prog_spec.to_program spec)
      in
      count cfg "fuzz/sp_programs";
      let spec = Prog_spec.of_program program in
      match diverges spec with
      | None -> iterate (i + 1)
      | Some d ->
          cfg.log (Format.asprintf "sp: divergence at iteration %d (%a), shrinking..." i
                     Sp_check.pp_divergence d);
          let shrunk =
            Shrink.fixpoint ~candidates:Prog_spec.candidates
              ~still_failing:(fun s -> diverges s <> None)
              spec
          in
          let d = match diverges shrunk with Some d -> d | None -> d in
          Some
            {
              sp_iter = i;
              sp_spec = shrunk;
              sp_threads = Prog_spec.thread_count shrunk;
              sp_divergence = d;
            }
    end
  in
  iterate 0

(* ------------------------------------------------------------------ *)
(* Order maintenance                                                   *)

type om_failure = {
  om_iter : int;
  om_structure : string;
  om_script : Om_script.script;
  om_divergence : Om_script.divergence;
}

let pp_om_failure fmt f =
  Format.fprintf fmt
    "@[<v>OM divergence at iteration %d (%s):@,  %a@,shrunk script, as Om_script.script:@,  %a@]"
    f.om_iter f.om_structure Om_script.pp_divergence f.om_divergence Om_script.pp f.om_script

let mixes = [| Om_script.Uniform; Om_script.Delete_heavy; Om_script.Head_heavy |]

let run_om cfg =
  let rec iterate i =
    if i >= cfg.iters then None
    else begin
      progress cfg i "om";
      let rng = iter_rng cfg i in
      let mix = mixes.(i mod Array.length mixes) in
      let len = 30 + Rng.int rng 170 in
      let script = Om_script.random_script ~rng ~mix ~len in
      count cfg "fuzz/om_scripts";
      (* Uniform check list: each SUT against the naive oracle, then
         each cross-validation pair against its own oracle. *)
      let checks =
        List.map
          (fun (n, sut) -> (n, fun s -> Om_script.replay ~sink:cfg.sink sut s))
          cfg.om_suts
        @ List.map
            (fun (n, sut, oracle) ->
              (n, fun s -> Om_script.replay_vs ~sink:cfg.sink ~oracle sut s))
            cfg.om_pairs
      in
      let rec first_failing = function
        | [] -> None
        | (sut_name, check) :: rest -> (
            match check script with
            | None -> first_failing rest
            | Some d ->
                cfg.log
                  (Format.asprintf "om: divergence at iteration %d (%a), shrinking..." i
                     Om_script.pp_divergence d);
                let still_failing ops = check ops <> None in
                let shrunk = Shrink.list ~still_failing script in
                let d = match check shrunk with Some d -> d | None -> d in
                Some
                  { om_iter = i; om_structure = sut_name; om_script = shrunk; om_divergence = d })
      in
      match first_failing checks with None -> iterate (i + 1) | f -> f
    end
  in
  iterate 0
