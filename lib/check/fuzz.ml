module Rng = Spr_util.Rng

type config = {
  seed : int;
  iters : int;
  max_threads : int;
  schedules : int;
  algos : Sp_check.algo list;
  sp_pairs : (Sp_check.algo * Sp_check.algo) list;
  hb_algos : Sp_check.algo list;
  om_suts : (string * (module Om_script.SUT)) list;
  om_pairs : (string * (module Om_script.SUT) * (module Om_script.SUT)) list;
  log : string -> unit;
  sink : Spr_obs.Sink.t;
}

(* Give a structure without a native self-check a vacuous one, so the
   SUT list stays uniform. *)
let no_invariants (module M : Spr_om.Om_intf.S) : (module Om_script.SUT) =
  (module struct
    include M

    let check_invariants _ = ()
  end)

let default_om_suts =
  [
    ("om", ((module Spr_om.Om) : (module Om_script.SUT)));
    ("om-packed", (module Spr_om.Om_packed));
    ("om-label", no_invariants (module Spr_om.Om_label));
    ("om-file", no_invariants (module Spr_om.Om_file));
    ("om-concurrent", (module Spr_om.Om_concurrent));
    ("om-concurrent2", (module Spr_om.Om_concurrent2));
  ]

(* Cross-validation pairs: candidate replayed with a non-naive oracle.
   The packed backend implements the exact same algorithm as the boxed
   two-level structure, so their answers must agree op for op — a much
   sharper check than each independently agreeing with the naive
   model's coarse total order. *)
let default_om_pairs =
  [
    ( "om-packed vs om-two-level",
      ((module Spr_om.Om_packed) : (module Om_script.SUT)),
      ((module Spr_om.Om) : (module Om_script.SUT)) );
  ]

(* SP-maintainer cross-validation pairs, same spirit: sp-depa computes
   the relation from immutable fork-path labels, sp-order from a live
   OM structure — totally different failure modes, so answer-for-answer
   agreement on every executed pair is a sharp check that costs no
   extra reference walk. *)
let default_sp_pairs =
  [
    ( ("sp-depa", Spr_core.Algorithms.sp_depa),
      ("sp-order", Spr_core.Algorithms.sp_order) );
    (* The fused backend reimplements the OM substrate (interleaved
       planes, shared slots, packed child-pair insert), so pin it
       answer-for-answer to the boxed reference. *)
    ( ("sp-order-fused", Spr_core.Algorithms.sp_order_fused),
      ("sp-order", Spr_core.Algorithms.sp_order) );
  ]

(* The clock detectors compared against the fused baseline by the
   three-way race differential ([run_hb]): each one replaces the SP
   oracle under the *same* detection pipeline, so any disagreement in
   races, racy locations or query counts is an oracle bug. *)
let default_hb_algos : Sp_check.algo list =
  [
    ("hb-vector", Spr_core.Algorithms.hb_vector);
    ("hb-tree", Spr_core.Algorithms.hb_tree);
  ]

let default ~seed ~iters =
  {
    seed;
    iters;
    max_threads = 32;
    schedules = 3;
    algos = Spr_core.Algorithms.all;
    sp_pairs = default_sp_pairs;
    hb_algos = default_hb_algos;
    om_suts = default_om_suts;
    om_pairs = default_om_pairs;
    log = ignore;
    sink = Spr_obs.Sink.null;
  }

(* Every iteration gets an independent generator, so a repro depends
   only on (seed, iteration). *)
let iter_rng cfg i = Rng.create ((cfg.seed * 1_000_003) + i)

let count cfg key =
  match Spr_obs.Sink.metrics cfg.sink with
  | None -> ()
  | Some m -> Spr_obs.Metrics.incr (Spr_obs.Metrics.counter m key)

let progress cfg i what =
  let every = max 1 (cfg.iters / 10) in
  if i > 0 && i mod every = 0 then cfg.log (Printf.sprintf "%s: %d/%d iterations" what i cfg.iters)

(* ------------------------------------------------------------------ *)
(* SP maintainers                                                      *)

type sp_failure = {
  sp_iter : int;
  sp_spec : Prog_spec.t;
  sp_threads : int;
  sp_divergence : Sp_check.divergence;
}

let pp_sp_failure fmt f =
  Format.fprintf fmt
    "@[<v>SP divergence at iteration %d:@,  %a@,shrunk repro (%d threads), as Prog_spec.t:@,  %a@]"
    f.sp_iter Sp_check.pp_divergence f.sp_divergence f.sp_threads Prog_spec.pp f.sp_spec

let shapes = [| `Uniform; `Deep_serial; `Wide; `Spawn_heavy |]

let run_sp cfg =
  let rec iterate i =
    if i >= cfg.iters then None
    else begin
      progress cfg i "sp";
      let rng = iter_rng cfg i in
      let threads = 2 + Rng.int rng (max 1 (cfg.max_threads - 1)) in
      let shape = shapes.(i mod Array.length shapes) in
      let program = Spr_workloads.Progs.random_adversarial ~rng ~threads ~shape () in
      (* The battery configuration is fixed per iteration so that the
         shrinking predicate replays the exact same checks. *)
      let unfold_seeds = [ (2 * i) + 1; (2 * i) + 2 ] in
      let hybrid =
        List.init cfg.schedules (fun k -> (1 + ((i + k) mod 8), (i * 31) + k))
      in
      let diverges spec =
        Sp_check.check_program ~sink:cfg.sink ~algos:cfg.algos ~pairs:cfg.sp_pairs
          ~unfold_seeds ~schedules:hybrid
          (Prog_spec.to_program spec)
      in
      count cfg "fuzz/sp_programs";
      let spec = Prog_spec.of_program program in
      match diverges spec with
      | None -> iterate (i + 1)
      | Some d ->
          cfg.log (Format.asprintf "sp: divergence at iteration %d (%a), shrinking..." i
                     Sp_check.pp_divergence d);
          let shrunk =
            Shrink.fixpoint ~candidates:Prog_spec.candidates
              ~still_failing:(fun s -> diverges s <> None)
              spec
          in
          let d = match diverges shrunk with Some d -> d | None -> d in
          Some
            {
              sp_iter = i;
              sp_spec = shrunk;
              sp_threads = Prog_spec.thread_count shrunk;
              sp_divergence = d;
            }
    end
  in
  iterate 0

(* ------------------------------------------------------------------ *)
(* Happens-before triples                                              *)

type hb_failure = {
  hb_iter : int;
  hb_algo : string;
  hb_seed : int;
  hb_spec : Prog_spec.t;
  hb_threads : int;
  hb_detail : string;
}

let pp_hb_failure fmt f =
  Format.fprintf fmt
    "@[<v>HB oracle divergence at iteration %d (%s vs sp-order-fused):@,\
    \  %s@,\
     shrunk repro (%d threads, accesses from seed %d), as Prog_spec.t:@,\
    \  %a@]"
    f.hb_iter f.hb_algo f.hb_detail f.hb_threads f.hb_seed Prog_spec.pp f.hb_spec

(* Specs carry structure only, but the race oracle needs accesses.
   Decorate every thread with a few seeded accesses as a pure function
   of (seed, spec traversal order), so the shrinking predicate stays
   deterministic: the same spec always yields the same program, and a
   smaller spec gets a (different but fixed) smaller decoration. *)
let decorated_program ~seed spec =
  let module Fj = Spr_prog.Fj_program in
  let rng = Rng.create seed in
  let locs = 8 in
  let b = Fj.Builder.create () in
  let rec proc_of spec =
    Fj.Builder.proc b
      (List.map
         (List.map (function
           | Prog_spec.T cost ->
               let accesses =
                 List.init
                   (1 + Rng.int rng 3)
                   (fun _ ->
                     { Fj.loc = Rng.int rng locs; write = Rng.int rng 2 = 0; locks = [] })
               in
               Fj.Run (Fj.Builder.thread b ~accesses ~cost ())
           | Prog_spec.S p -> Fj.Spawn (proc_of p)))
         spec)
  in
  Fj.Builder.finish b (proc_of (Prog_spec.normalize spec))

let race_repr (r : Spr_race.Detector.race) =
  Printf.sprintf "loc=%d %d(%c)->%d(%c)" r.Spr_race.Detector.loc r.Spr_race.Detector.earlier
    (if r.Spr_race.Detector.earlier_write then 'w' else 'r')
    r.Spr_race.Detector.later
    (if r.Spr_race.Detector.later_write then 'w' else 'r')

(* The three-way differential: the detection pipeline's full output
   (race reports in order, racy locations, SP query count) must be
   identical whichever oracle answers the SP queries. *)
let compare_serial (want : Spr_race.Drivers.serial_result)
    (got : Spr_race.Drivers.serial_result) =
  let wr = List.map race_repr want.Spr_race.Drivers.races
  and gr = List.map race_repr got.Spr_race.Drivers.races in
  if wr <> gr then
    Some
      (Printf.sprintf "races differ: baseline [%s], candidate [%s]" (String.concat "; " wr)
         (String.concat "; " gr))
  else if want.Spr_race.Drivers.racy_locs <> got.Spr_race.Drivers.racy_locs then
    Some
      (Printf.sprintf "racy locs differ: baseline [%s], candidate [%s]"
         (String.concat "; " (List.map string_of_int want.Spr_race.Drivers.racy_locs))
         (String.concat "; " (List.map string_of_int got.Spr_race.Drivers.racy_locs)))
  else if want.Spr_race.Drivers.sp_queries <> got.Spr_race.Drivers.sp_queries then
    Some
      (Printf.sprintf "SP query counts differ: baseline %d, candidate %d"
         want.Spr_race.Drivers.sp_queries got.Spr_race.Drivers.sp_queries)
  else None

let run_hb cfg =
  let detect make p =
    Spr_race.Drivers.detect_serial (Spr_prog.Prog_tree.of_program p) make
  in
  let rec iterate i =
    if i >= cfg.iters then None
    else begin
      progress cfg i "hb";
      let rng = iter_rng cfg i in
      let threads = 2 + Rng.int rng (max 1 (cfg.max_threads - 1)) in
      let shape = shapes.(i mod Array.length shapes) in
      let program = Spr_workloads.Progs.random_adversarial ~rng ~threads ~shape () in
      let access_seed = (cfg.seed * 7_368_787) + i in
      let diverges spec =
        let p = decorated_program ~seed:access_seed spec in
        let base = detect Spr_core.Algorithms.sp_order_fused p in
        let rec first = function
          | [] -> None
          | (name, make) :: rest -> (
              match compare_serial base (detect make p) with
              | None -> first rest
              | Some detail -> Some (name, detail))
        in
        first cfg.hb_algos
      in
      count cfg "fuzz/hb_programs";
      let spec = Prog_spec.of_program program in
      match diverges spec with
      | None -> iterate (i + 1)
      | Some (name, detail) ->
          cfg.log
            (Printf.sprintf "hb: divergence at iteration %d (%s: %s), shrinking..." i name detail);
          let shrunk =
            Shrink.fixpoint ~candidates:Prog_spec.candidates
              ~still_failing:(fun s -> diverges s <> None)
              spec
          in
          let name, detail =
            match diverges shrunk with Some nd -> nd | None -> (name, detail)
          in
          Some
            {
              hb_iter = i;
              hb_algo = name;
              hb_seed = access_seed;
              hb_spec = shrunk;
              hb_threads = Prog_spec.thread_count shrunk;
              hb_detail = detail;
            }
    end
  in
  iterate 0

(* ------------------------------------------------------------------ *)
(* Order maintenance                                                   *)

type om_failure = {
  om_iter : int;
  om_structure : string;
  om_script : Om_script.script;
  om_divergence : Om_script.divergence;
}

let pp_om_failure fmt f =
  Format.fprintf fmt
    "@[<v>OM divergence at iteration %d (%s):@,  %a@,shrunk script, as Om_script.script:@,  %a@]"
    f.om_iter f.om_structure Om_script.pp_divergence f.om_divergence Om_script.pp f.om_script

let mixes = [| Om_script.Uniform; Om_script.Delete_heavy; Om_script.Head_heavy |]

let run_om cfg =
  let rec iterate i =
    if i >= cfg.iters then None
    else begin
      progress cfg i "om";
      let rng = iter_rng cfg i in
      let mix = mixes.(i mod Array.length mixes) in
      let len = 30 + Rng.int rng 170 in
      let script = Om_script.random_script ~rng ~mix ~len in
      count cfg "fuzz/om_scripts";
      (* Uniform check list: each SUT against the naive oracle, then
         each cross-validation pair against its own oracle. *)
      let checks =
        List.map
          (fun (n, sut) -> (n, fun s -> Om_script.replay ~sink:cfg.sink sut s))
          cfg.om_suts
        @ List.map
            (fun (n, sut, oracle) ->
              (n, fun s -> Om_script.replay_vs ~sink:cfg.sink ~oracle sut s))
            cfg.om_pairs
      in
      let rec first_failing = function
        | [] -> None
        | (sut_name, check) :: rest -> (
            match check script with
            | None -> first_failing rest
            | Some d ->
                cfg.log
                  (Format.asprintf "om: divergence at iteration %d (%a), shrinking..." i
                     Om_script.pp_divergence d);
                let still_failing ops = check ops <> None in
                let shrunk = Shrink.list ~still_failing script in
                let d = match check shrunk with Some d -> d | None -> d in
                Some
                  { om_iter = i; om_structure = sut_name; om_script = shrunk; om_divergence = d })
      in
      match first_failing checks with None -> iterate (i + 1) | f -> f
    end
  in
  iterate 0
