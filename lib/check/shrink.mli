(** Generic greedy minimizers for failing fuzz cases.

    Both entry points take a [still_failing] predicate — "does this
    smaller candidate still exhibit the bug?" — and grind the input
    down until no enabled reduction step keeps it failing.  The
    predicate is expected to be deterministic (everything in the
    fuzzing subsystem replays from seeds), so the result is a local
    minimum: removing any single remaining piece makes the failure
    disappear. *)

val list : still_failing:('a list -> bool) -> 'a list -> 'a list
(** Delta-debugging style minimization of a sequence: repeatedly try
    to drop chunks (halving the chunk size down to single elements)
    and keep any reduction that still fails.  [still_failing] is never
    called on the empty list unless the input itself shrinks to it. *)

val fixpoint : candidates:('a -> 'a list) -> still_failing:('a -> bool) -> 'a -> 'a
(** Structural minimization: [candidates x] enumerates one-step
    reductions of [x] (most aggressive first); the first candidate
    that still fails is recursed into, until no candidate fails.
    Terminates as long as every candidate is strictly "smaller" in
    some well-founded sense — callers guarantee this. *)
