(** Deliberately broken variants for harness self-tests (fault
    injection).  A checker that cannot catch a planted bug proves
    nothing; these are the planted bugs — see the [--inject-fault]
    flag of [spfuzz] and the harness tests. *)

val sp_bags_flipped : Sp_check.algo
(** SP-bags with the S-bag/P-bag membership test flipped: [precedes]
    and [parallel] answers are swapped — the effect of flipping the
    one bag-kind comparison in the query path.  Invisible on a
    single-thread program, caught on the first parallel pair. *)

val om_broken_insert_before : (module Om_script.SUT)
(** The two-level {!Spr_om.Om} with [insert_before] silently replaced
    by [insert_after] — the classic wrong-neighbor bug.  Caught by any
    script that queries around an [Insert_before]. *)

val om_concurrent_unvalidated : (module Spr_om.Om_intf.CONCURRENT)
(** {!Spr_om.Om_concurrent} with [precedes] replaced by a single
    unvalidated read of each label (no stamp double-check, no retry).
    Correct under serial execution; wrong whenever a relabel pass lands
    between its two reads — an ordering bug of depth 2, the target the
    schedule-exploration harness ([spfuzz --sched pct --inject-fault
    om-unvalidated]) must find and shrink.  The extra yield between the
    reads is in the faulty code itself, so the controller can place a
    writer there. *)

val hb_vector_no_join : Sp_check.algo
(** The vector-clock detector with the join at every [Exit] skipped:
    the continuation never learns what the completed subtree did, so
    serialized accesses look concurrent — false positives on race-free
    programs.  Caught by the three-way differential the moment a
    spawned procedure's effects matter. *)

val hb_tree_no_restore : Sp_check.algo
(** The tree-clock detector with the snapshot restore at every [Mid]
    skipped: the right subtree inherits the left subtree's clock, so
    genuinely parallel accesses look ordered — false negatives on
    planted races.  The dual failure mode to [hb_vector_no_join]. *)
