module Sp_bags_flipped = struct
  include Spr_core.Sp_bags

  let name = "sp-bags-flipped"

  (* The planted bug: the bag-kind comparison in the query path is
     flipped, so the two answers trade places. *)
  let precedes t x y = Spr_core.Sp_bags.parallel t x y

  let parallel t x y = Spr_core.Sp_bags.precedes t x y
end

let sp_bags_flipped : Sp_check.algo =
  ( "sp-bags-flipped",
    fun tree ->
      Spr_core.Sp_maintainer.Instance ((module Sp_bags_flipped), Sp_bags_flipped.create tree) )

module Om_broken_insert_before = struct
  include Spr_om.Om

  let name = "om-broken-insert-before"

  let insert_before = Spr_om.Om.insert_after
end

let om_broken_insert_before : (module Om_script.SUT) = (module Om_broken_insert_before)
