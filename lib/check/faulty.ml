module Sp_bags_flipped = struct
  include Spr_core.Sp_bags

  let name = "sp-bags-flipped"

  (* The planted bug: the bag-kind comparison in the query path is
     flipped, so the two answers trade places. *)
  let precedes t x y = Spr_core.Sp_bags.parallel t x y

  let parallel t x y = Spr_core.Sp_bags.precedes t x y
end

let sp_bags_flipped : Sp_check.algo =
  ( "sp-bags-flipped",
    fun tree ->
      Spr_core.Sp_maintainer.Instance ((module Sp_bags_flipped), Sp_bags_flipped.create tree) )

module Om_broken_insert_before = struct
  include Spr_om.Om

  let name = "om-broken-insert-before"

  let insert_before = Spr_om.Om.insert_after
end

let om_broken_insert_before : (module Om_script.SUT) = (module Om_broken_insert_before)

module Om_concurrent_unvalidated = struct
  include Spr_om.Om_concurrent

  let name = "om-concurrent-unvalidated"

  (* The planted ordering bug: a query that reads each label once and
     skips the stamp-validation protocol entirely.  Serially (and on
     any schedule where no relabel lands between the two reads) the
     answers are right; a writer rebalancing between [uq-read-x] and
     [uq-read-y] can leave a stale label of one element compared
     against a fresh label of the other, flipping the answer.  Bug
     depth 2: one preemption of the reader at the right point
     suffices, so PCT with d >= 2 finds it and the DFS explorer hits
     it on every enumeration of a rebalancing script. *)
  let precedes _t x y =
    Spr_schedhook.Hook.yield ~kind:Spr_schedhook.Hook.Read ~layer:name ~name:"uq-read-x" ();
    let xl = debug_label x in
    Spr_schedhook.Hook.yield ~kind:Spr_schedhook.Hook.Read ~layer:name ~name:"uq-read-y" ();
    let yl = debug_label y in
    xl < yl
end

let om_concurrent_unvalidated : (module Spr_om.Om_intf.CONCURRENT) =
  (module Om_concurrent_unvalidated)

(* The planted clock bugs: each disables exactly one maintenance step
   of the happens-before clocks, so each of the three oracles in the
   [Fuzz.run_hb] differential independently proves it can catch a
   fault in the others. *)

let hb_vector_no_join : Sp_check.algo =
  ( "hb-vector-nojoin",
    fun tree ->
      Spr_core.Sp_maintainer.Instance
        ( (module Spr_hb.Sp_clock.Vector_no_join),
          Spr_hb.Sp_clock.Vector_no_join.create tree ) )

let hb_tree_no_restore : Sp_check.algo =
  ( "hb-tree-norestore",
    fun tree ->
      Spr_core.Sp_maintainer.Instance
        ( (module Spr_hb.Sp_clock.Tree_no_restore),
          Spr_hb.Sp_clock.Tree_no_restore.create tree ) )
