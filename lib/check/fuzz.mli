(** The differential fuzzer: random programs and OM op-scripts through
    every registered implementation, cross-validated against the
    oracles, with automatic shrinking of anything that diverges.

    Every iteration derives its own RNG from [(seed, iteration)], so a
    failure found at [--seed S --iters N] replays with the same seed
    regardless of how many earlier iterations ran — and the shrinking
    predicate re-runs the exact same battery on each candidate. *)

type config = {
  seed : int;
  iters : int;
  max_threads : int;  (** thread-count ceiling for generated programs *)
  schedules : int;  (** simulated hybrid schedules (procs, steal seed) per program *)
  algos : Sp_check.algo list;  (** serial maintainers under test *)
  sp_pairs : (Sp_check.algo * Sp_check.algo) list;
      (** maintainer cross-validation pairs run through
          {!Sp_check.check_pair} on every generated program *)
  hb_algos : Sp_check.algo list;
      (** clock detectors for the three-way race differential
          ({!run_hb}): each replaces the SP oracle inside
          {!Spr_race.Drivers.detect_serial} and its full output is
          compared against the sp-order-fused baseline *)
  om_suts : (string * (module Om_script.SUT)) list;
  om_pairs : (string * (module Om_script.SUT) * (module Om_script.SUT)) list;
      (** cross-validation pairs [(label, candidate, oracle)] replayed
          via {!Om_script.replay_vs} on every script *)
  log : string -> unit;  (** progress lines (e.g. [print_endline], or [ignore]) *)
  sink : Spr_obs.Sink.t;
      (** observability sink threaded into the hybrid schedule checks
          ([sched/], [hybrid/], OM events) and bumped with [fuzz/]
          iteration counters; {!Spr_obs.Sink.null} disables. *)
}

val default_om_suts : (string * (module Om_script.SUT)) list
(** Every OM implementation in the repo: [Om], [Om_packed], [Om_label],
    [Om_file], [Om_concurrent], [Om_concurrent2] — structures without a
    native [check_invariants] get a no-op one.  ([Om_naive] is the
    oracle, not a SUT.) *)

val default_om_pairs : (string * (module Om_script.SUT) * (module Om_script.SUT)) list
(** The packed backend cross-validated against the boxed two-level
    structure as oracle (same algorithm, answers must agree op for
    op). *)

val default_sp_pairs : (Sp_check.algo * Sp_check.algo) list
(** [sp-depa] cross-validated against [sp-order]: immutable fork-path
    labels vs a live OM structure, answers compared query for query on
    the same walk. *)

val default_hb_algos : Sp_check.algo list
(** The two clock detectors — [hb-vector] ({!Spr_hb.Vec_clock}) and
    [hb-tree] ({!Spr_hb.Tree_clock}) — compared against the
    [sp-order-fused] baseline by {!run_hb}. *)

val default : seed:int -> iters:int -> config
(** All maintainers ({!Spr_core.Algorithms.all}), the [sp-depa] vs
    [sp-order] pair, all OM SUTs and cross-validation pairs,
    [max_threads = 32], [schedules = 3], silent log, null sink. *)

type sp_failure = {
  sp_iter : int;
  sp_spec : Prog_spec.t;  (** shrunk to a local minimum *)
  sp_threads : int;  (** thread count of the shrunk repro *)
  sp_divergence : Sp_check.divergence;
}

type om_failure = {
  om_iter : int;
  om_structure : string;
  om_script : Om_script.script;  (** shrunk to a local minimum *)
  om_divergence : Om_script.divergence;
}

val pp_sp_failure : Format.formatter -> sp_failure -> unit
(** Replayable report: divergence, seed arithmetic, and the shrunk
    program as an OCaml literal. *)

val pp_om_failure : Format.formatter -> om_failure -> unit

val run_sp : config -> sp_failure option
(** Fuzz the SP maintainers: per iteration, one random program (shape
    cycling through {!Spr_workloads.Progs.random_adversarial}) through
    {!Sp_check.check_program} — serial walk for every algo, random
    legal unfoldings for SP-order, [schedules] simulated work-stealing
    schedules through SP-hybrid.  The first divergence is shrunk and
    returned. *)

type hb_failure = {
  hb_iter : int;
  hb_algo : string;  (** the clock detector that diverged *)
  hb_seed : int;  (** access-decoration seed of the repro *)
  hb_spec : Prog_spec.t;  (** shrunk to a local minimum *)
  hb_threads : int;
  hb_detail : string;  (** which field diverged, with both values *)
}

val pp_hb_failure : Format.formatter -> hb_failure -> unit

val run_hb : config -> hb_failure option
(** The three-way differential race oracle: per iteration, one random
    program (shape cycling as in {!run_sp}) is decorated with seeded
    shared-memory accesses and pushed through
    {!Spr_race.Drivers.detect_serial} once per oracle — the
    [sp-order-fused] baseline plus every entry of [hb_algos] (vector
    clocks and tree clocks by default).  Race reports (in order), racy
    locations and SP query counts must all be identical; the first
    divergence is shrunk (over the spec, with the decoration held
    fixed as a function of the seed) and returned. *)

val run_om : config -> om_failure option
(** Fuzz the OM structures: per iteration, one random script (mix
    cycling uniform / delete-heavy / head-heavy) replayed against the
    {!Spr_om.Om_naive} oracle by every SUT, invariants checked after
    every mutation.  The first divergence is shrunk and returned. *)
