open Spr_sptree
module Sm = Spr_core.Sp_maintainer

type divergence = { algo : string; schedule : string; detail : string }

let pp_divergence fmt d = Format.fprintf fmt "%s [%s]: %s" d.algo d.schedule d.detail

type algo = string * (Sp_tree.t -> Sm.instance)

(* Used to bail out of a walk at the first divergence: driving a
   maintainer further after a wrong answer only muddies the repro. *)
exception Diverged of divergence

let guard ~algo ~schedule f =
  try
    f ();
    None
  with
  | Diverged d -> Some d
  | e -> Some { algo; schedule; detail = "exception: " ^ Printexc.to_string e }

let compare_pair ~algo ~schedule inst prev current =
  let want_prec = Sp_reference.precedes prev current in
  let want_par = Sp_reference.parallel prev current in
  let got_prec = Sm.precedes inst prev current in
  let got_par = Sm.parallel inst prev current in
  let fail fmt =
    Format.kasprintf (fun detail -> raise (Diverged { algo; schedule; detail })) fmt
  in
  if got_prec <> want_prec then
    fail "precedes(u%d, u%d) = %b, reference says %b" prev.Sp_tree.id current.Sp_tree.id
      got_prec want_prec;
  if got_par <> want_par then
    fail "parallel(u%d, u%d) = %b, reference says %b" prev.Sp_tree.id current.Sp_tree.id
      got_par want_par;
  if not (Sm.requires_current_operand inst) then begin
    let got_rev = Sm.precedes inst current prev in
    let want_rev = Sp_reference.precedes current prev in
    if got_rev <> want_rev then
      fail "precedes(u%d, u%d) = %b, reference says %b (reverse)" current.Sp_tree.id
        prev.Sp_tree.id got_rev want_rev
  end

let check_serial tree (name, make) =
  let schedule = "serial" in
  guard ~algo:name ~schedule (fun () ->
      let inst = make tree in
      let executed = ref [] in
      Spr_core.Driver.run_with_queries tree inst ~on_thread:(fun inst ~current ->
          List.iter (fun prev -> compare_pair ~algo:name ~schedule inst prev current) !executed;
          executed := current :: !executed))

let check_pair tree ((name_a, make_a) : algo) ((name_b, make_b) : algo) =
  let algo = Printf.sprintf "%s vs %s" name_a name_b in
  let schedule = "serial pair" in
  guard ~algo ~schedule (fun () ->
      let a = make_a tree and b = make_b tree in
      let fail fmt =
        Format.kasprintf (fun detail -> raise (Diverged { algo; schedule; detail })) fmt
      in
      let both_directions =
        not (Sm.requires_current_operand a || Sm.requires_current_operand b)
      in
      let agree x y =
        let pa = Sm.precedes a x y and pb = Sm.precedes b x y in
        if pa <> pb then
          fail "precedes(u%d, u%d): %s says %b, %s says %b" x.Sp_tree.id y.Sp_tree.id name_a
            pa name_b pb;
        let qa = Sm.parallel a x y and qb = Sm.parallel b x y in
        if qa <> qb then
          fail "parallel(u%d, u%d): %s says %b, %s says %b" x.Sp_tree.id y.Sp_tree.id name_a
            qa name_b qb
      in
      let executed = ref [] in
      Sp_tree.iter_events tree (fun ev ->
          Sm.on_event a ev;
          Sm.on_event b ev;
          match ev with
          | Sp_tree.Thread current ->
              List.iter
                (fun prev ->
                  agree prev current;
                  if both_directions then agree current prev)
                !executed;
              executed := current :: !executed
          | _ -> ()))

let check_unfolded ~seed tree (name, make) =
  let schedule = Printf.sprintf "unfold seed=%d" seed in
  guard ~algo:name ~schedule (fun () ->
      let events = Unfold.random_events ~rng:(Spr_util.Rng.create seed) tree in
      let inst = make tree in
      let discovered = ref [] in
      let audit () =
        List.iter
          (fun a ->
            List.iter
              (fun b -> if not (a == b) then compare_pair ~algo:name ~schedule inst a b)
              !discovered)
          !discovered
      in
      let step = ref 0 in
      List.iter
        (fun ev ->
          Sm.on_event inst ev;
          (match ev with Sp_tree.Thread u -> discovered := u :: !discovered | _ -> ());
          incr step;
          if !step mod 7 = 0 then audit ())
        events;
      audit ())

let check_hybrid ?(sink = Spr_obs.Sink.null) ~procs ~seed program =
  let schedule = Printf.sprintf "hybrid procs=%d seed=%d" procs seed in
  let algo = "sp-hybrid" in
  guard ~algo ~schedule (fun () ->
      let module H = Spr_hybrid.Sp_hybrid in
      let pt = Spr_prog.Prog_tree.of_program program in
      let h = H.create ~sink program in
      let started = ref [] in
      let leaf tid = Spr_prog.Prog_tree.leaf_of_thread pt tid in
      let fail fmt =
        Format.kasprintf (fun detail -> raise (Diverged { algo; schedule; detail })) fmt
      in
      let on_thread_user h ~wid:_ ~now:_ (u : Spr_prog.Fj_program.thread) =
        let current = u.Spr_prog.Fj_program.tid in
        List.iter
          (fun e ->
            let want_prec = Sp_reference.precedes (leaf e) (leaf current) in
            let want_par = Sp_reference.parallel (leaf e) (leaf current) in
            let got_prec = H.precedes h ~executed:e ~current in
            let got_par = H.parallel h ~executed:e ~current in
            if got_prec <> want_prec then
              fail "precedes(t%d, t%d) = %b, reference says %b" e current got_prec want_prec;
            if got_par <> want_par then
              fail "parallel(t%d, t%d) = %b, reference says %b" e current got_par want_par)
          !started;
        started := current :: !started;
        0
      in
      ignore
        (Spr_sched.Sim.run
           ~hooks:(H.hooks ~on_thread_user h)
           ~sink ~seed ~max_ticks:50_000_000 ~procs program))

let check_program ?(sink = Spr_obs.Sink.null) ?algos ?(pairs = []) ?(unfold_seeds = [])
    ?(schedules = []) program =
  let algos = match algos with Some a -> a | None -> Spr_core.Algorithms.all in
  let tree = Spr_prog.Prog_tree.tree (Spr_prog.Prog_tree.of_program program) in
  let first_some f xs =
    List.fold_left (fun acc x -> match acc with Some _ -> acc | None -> f x) None xs
  in
  match first_some (check_serial tree) algos with
  | Some d -> Some d
  | None -> (
  match first_some (fun (a, b) -> check_pair tree a b) pairs with
  | Some d -> Some d
  | None -> (
      (* Out-of-order unfoldings: only the SP-order family advertises
         support. *)
      let sp_order =
        List.filter (fun (name, _) -> name = "sp-order" || name = "sp-order-fused") algos
      in
      match
        first_some
          (fun seed -> first_some (check_unfolded ~seed tree) sp_order)
          unfold_seeds
      with
      | Some d -> Some d
      | None ->
          first_some (fun (procs, seed) -> check_hybrid ~sink ~procs ~seed program) schedules))
