let list ~still_failing xs =
  (* Classic ddmin sweep: drop windows of [chunk] elements while the
     failure persists, halving the window until single elements. *)
  let drop_window xs i chunk = List.filteri (fun j _ -> j < i || j >= i + chunk) xs in
  let rec sweep chunk xs =
    if chunk < 1 then xs
    else begin
      let rec try_at i xs =
        if i >= List.length xs then xs
        else begin
          let cand = drop_window xs i chunk in
          if List.length cand < List.length xs && still_failing cand then
            (* Keep the reduction; the window now holds fresh elements,
               so retry at the same offset. *)
            try_at i cand
          else try_at (i + chunk) xs
        end
      in
      let xs' = try_at 0 xs in
      sweep (min (chunk / 2) (List.length xs')) xs'
    end
  in
  sweep (max 1 (List.length xs / 2)) xs

let fixpoint ~candidates ~still_failing x =
  let rec go x =
    let rec first = function
      | [] -> x
      | c :: rest -> if still_failing c then go c else first rest
    in
    first (candidates x)
  in
  go x
