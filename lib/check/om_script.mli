(** Model-based testing of order-maintenance structures.

    An {e OM script} is a list of index-based operations.  Indices are
    resolved modulo the number of live elements at replay time, so any
    sublist of a script is itself a valid script — which is exactly
    what {!Shrink.list} needs.  {!replay} runs a script through a
    candidate structure and through the {!Spr_om.Om_naive} oracle in
    lock-step, calling the candidate's [check_invariants] after every
    mutation and cross-checking every query answer (plus a full
    pairwise [precedes] sweep at the end), and reports the first
    divergence. *)

type op =
  | Insert_after of int  (** insert after live element [i mod n] *)
  | Insert_before of int  (** insert before live element [i mod n] *)
  | Delete of int
      (** delete live element [1 + i mod (n-1)] — the base element is
          never deleted; skipped when only the base is live *)
  | Query of int * int  (** compare [precedes] both ways vs the oracle *)

type script = op list

type mix =
  | Uniform  (** balanced op mix *)
  | Delete_heavy  (** ~45% deletes: exercises bucket emptying / merging *)
  | Head_heavy
      (** biased to [Insert_before 0] (before the current bucket head)
          plus bursts that split buckets at capacity *)

val random_script : rng:Spr_util.Rng.t -> mix:mix -> len:int -> script
(** A reproducible random script of [len] operations. *)

val pp : Format.formatter -> script -> unit
(** Print as an OCaml literal — paste back as an [Om_script.script] to
    replay a repro. *)

type divergence = {
  structure : string;  (** [name] of the structure under test *)
  step : int;  (** 0-based index of the failing op, or [length script] for the final sweep *)
  op : op option;  (** the failing op ([None] for the final sweep) *)
  detail : string;
}

val pp_divergence : Format.formatter -> divergence -> unit

(** A structure under test: the base ADT plus an O(n) self-check.
    Implementations without a native [check_invariants] are wrapped
    with a no-op (see {!Fuzz.om_suts}). *)
module type SUT = sig
  include Spr_om.Om_intf.S

  val check_invariants : t -> unit
end

val replay : ?sink:Spr_obs.Sink.t -> (module SUT) -> script -> divergence option
(** Run the script against the {!Spr_om.Om_naive} oracle; [None] means
    the candidate agreed with the oracle throughout and every invariant
    check passed.  Exceptions raised by the candidate (including
    [check_invariants] failures) are caught and reported as
    divergences. *)

val naive_oracle : (module SUT)
(** {!Spr_om.Om_naive} with a vacuous self-check — the oracle
    {!replay} uses. *)

val replay_vs :
  ?sink:Spr_obs.Sink.t ->
  oracle:(module SUT) ->
  (module SUT) ->
  script ->
  divergence option
(** [replay_vs ~oracle sut script] is {!replay} with an explicit
    oracle, for cross-validating two non-trivial structures against
    each other (e.g. the packed backend against the boxed two-level
    structure, whose answers must be identical op for op).  Only the
    candidate's [check_invariants] is called; the oracle is trusted. *)
