open Spr_prog

type item = T of int | S of t

and t = item list list

let rec normalize (spec : t) : t =
  let norm_item = function
    | T c -> T (max 1 c)
    | S p -> S (normalize p)
  in
  let blocks =
    List.filter_map
      (fun blk -> match List.map norm_item blk with [] -> None | blk -> Some blk)
      spec
  in
  if blocks = [] then [ [ T 1 ] ] else blocks

let to_program spec =
  let b = Fj_program.Builder.create () in
  let rec proc_of spec =
    Fj_program.Builder.proc b
      (List.map
         (List.map (function
           | T cost -> Fj_program.Run (Fj_program.Builder.thread b ~cost ())
           | S p -> Fj_program.Spawn (proc_of p)))
         spec)
  in
  Fj_program.Builder.finish b (proc_of (normalize spec))

let of_program program =
  let rec spec_of (p : Fj_program.proc) : t =
    Array.to_list
      (Array.map
         (fun blk ->
           Array.to_list
             (Array.map
                (function
                  | Fj_program.Run th -> T th.Fj_program.cost
                  | Fj_program.Spawn child -> S (spec_of child))
                blk))
         p.Fj_program.blocks)
  in
  spec_of (Fj_program.main program)

let thread_count spec =
  let rec count spec =
    List.fold_left
      (List.fold_left (fun acc -> function T _ -> acc + 1 | S p -> acc + count p))
      0 spec
  in
  count (normalize spec)

let rec pp fmt (spec : t) =
  let pp_item fmt = function
    | T c -> Format.fprintf fmt "T %d" c
    | S p -> Format.fprintf fmt "S %a" pp p
  in
  let pp_block fmt blk =
    Format.fprintf fmt "[%a]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_item)
      blk
  in
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_block)
    spec

(* Replacements for the [i]-th element of a list: [f x] proposes
   variants of the element; [None] in the output marks deletion. *)
let at_each xs f =
  List.concat
    (List.mapi
       (fun i _ ->
         List.filter_map
           (fun repl ->
             let ys =
               List.concat
                 (List.mapi
                    (fun j x -> if i <> j then [ x ] else match repl with None -> [] | Some r -> [ r ])
                    xs)
             in
             if ys = xs then None else Some ys)
           (f (List.nth xs i)))
       xs)

(* Well-founded size measure: items plus total cost.  Candidates are
   required to strictly decrease it, which is what lets
   [Shrink.fixpoint] terminate. *)
let rec size spec =
  List.fold_left
    (List.fold_left (fun acc -> function T c -> acc + 1 + c | S p -> acc + 1 + size p))
    0 spec

let rec candidates (spec : t) : t list =
  let spec = normalize spec in
  (* 1. Hoist: any spawned sub-procedure becomes the whole spec.  This
     is the big stride — it discards everything around the subtree
     that actually matters. *)
  let rec subspecs spec =
    List.concat_map
      (List.concat_map (function T _ -> [] | S p -> p :: subspecs p))
      spec
  in
  let hoists = subspecs spec in
  (* 2. Drop a whole block. *)
  let drop_blocks = if List.length spec > 1 then at_each spec (fun _ -> [ None ]) else [] in
  (* 3. Drop one item (normalization collapses a resulting empty block). *)
  let drop_items = at_each spec (fun blk -> at_each blk (fun _ -> [ None ]) |> List.map Option.some) in
  (* 4. Collapse a spawn to a single thread; 5. cut a cost to 1;
     6. shrink inside a sub-procedure. *)
  let item_rewrites =
    at_each spec (fun blk ->
        at_each blk (function
          | T c -> if c > 1 then [ Some (T 1) ] else []
          | S p -> Some (T 1) :: List.map (fun p' -> Some (S p')) (candidates p))
        |> List.map Option.some)
  in
  let sz = size spec in
  (* Dedup preserving order: the aggressive candidates must stay first. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      size c < sz
      &&
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    (List.map normalize (hoists @ drop_blocks @ drop_items @ item_rewrites))
