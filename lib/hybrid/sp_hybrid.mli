(** SP-hybrid — the paper's parallel SP-maintenance algorithm
    (Sections 3–7), instrumented onto the work-stealing simulator.

    Construct a maintainer with {!create}, then run the program through
    {!Spr_sched.Sim.run} with {!hooks}.  The hooks implement Figure 8:

    - a thread is inserted into its frame's current trace before it
      executes (line 3);
    - a steal splits the victim's trace into five subtraces, performs
      the two OM-MULTI-INSERTs on the global tier under the global lock
      (lines 19–24), moves the stolen frame's S-/P-bags to U{^(1)} and
      U{^(2)} in O(1), and continues the stolen continuation in
      U{^(4)};
    - passing the sync block's join switches the frame to U{^(5)}
      (line 27);
    - a procedure returning inline hands its trace to the parent's
      continuation (the U′ threading of lines 8–18).

    Queries follow Figure 9: one operand must be the {e currently
    executing} thread; same-trace pairs go to the local tier, others to
    the two global orderings.

    Virtual-time accounting mirrors Theorem 10's buckets: the returned
    hook charges include global-insert lock holding (B2), local-tier
    work (B3) and lock waiting (B4); steal-attempt buckets (B6/B7) are
    classified by the simulator via [lock_busy]. *)

type cost_model = {
  local_op : int;  (** ticks per local-tier disjoint-set operation *)
  global_insert : int;  (** ticks the global lock is held per split *)
  query : int;  (** ticks per SP-PRECEDES query (charged by clients) *)
}

val default_costs : cost_model

type t

val create :
  ?costs:cost_model ->
  ?sink:Spr_obs.Sink.t ->
  ?local_path_compression:bool ->
  Spr_prog.Fj_program.t ->
  t
(** [local_path_compression] (default false) enables path compression
    in the local tier's disjoint sets — the Section 7 conjecture; safe
    whenever finds are serialized (they are under the simulator), and
    measured by the ablation benchmark.

    [sink] (default {!Spr_obs.Sink.null}) receives a [Lock_span] (the
    wait/hold ticks of the global lock) and a [Trace_split] event per
    steal, the backing OM structures' insert/relabel events, and
    [hybrid/] counters (splits, lock wait, global-insert ticks). *)

val hooks :
  ?on_thread_user:(t -> wid:int -> now:int -> Spr_prog.Fj_program.thread -> int) ->
  t ->
  Spr_sched.Sim.hooks
(** Scheduler hooks driving this maintainer.  [on_thread_user] fires
    after the thread has been inserted (so it may issue queries against
    it as the currently executing thread — this is where a race
    detector lives); its result is added to the virtual-time charge. *)

val precedes : t -> executed:int -> current:int -> bool
(** SP-PRECEDES (Figure 9): did thread [executed] logically precede
    [current]?  [current] must be a currently (or most recently)
    executing thread — the weaker query semantics of Section 3. *)

val parallel : t -> executed:int -> current:int -> bool

val find_trace_id : t -> tid:int -> int
(** Trace currently containing the thread (tests/examples). *)

type stats = {
  splits : int;  (** successful steals seen = s *)
  traces : int;  (** 4s + 1 *)
  local_ops : int;  (** local-tier operations (bucket B3) *)
  global_insert_ticks : int;  (** bucket B2 *)
  lock_wait_ticks : int;  (** bucket B4 *)
  query_ticks : int;  (** query charges issued through [charge_query] *)
  query_retries : int;  (** failed lock-free attempts (bucket B5) *)
  uf_finds : int;  (** disjoint-set finds in the local tier *)
  uf_find_steps : int;  (** parent hops across those finds *)
}

val stats : t -> stats

val charge_query : t -> int
(** Ticks to charge for one query under the cost model (adds to the
    query accounting; race detectors call this per query). *)
