module type S = sig
  type trace

  type t

  val create : unit -> t

  val initial : t -> trace

  val trace_id : trace -> int

  type split = { u1 : trace; u2 : trace; u4 : trace; u5 : trace }

  val split : t -> trace -> split

  val precedes : t -> trace -> trace -> bool

  val parallel : t -> trace -> trace -> bool

  val trace_count : t -> int

  val query_retries : t -> int

  val set_sink : t -> Spr_obs.Sink.t -> unit
end

module Make (Omc : Spr_om.Om_intf.CONCURRENT) = struct
  type trace = { uid : int; eng : Omc.elt; heb : Omc.elt }

  type t = { eng : Omc.t; heb : Omc.t; initial_trace : trace; mutable next_uid : int }

  let create () =
    let eng = Omc.create () in
    let heb = Omc.create () in
    let initial_trace = { uid = 0; eng = Omc.base eng; heb = Omc.base heb } in
    { eng; heb; initial_trace; next_uid = 1 }

  let initial t = t.initial_trace

  let trace_id (u : trace) = u.uid

  type split = { u1 : trace; u2 : trace; u4 : trace; u5 : trace }

  let split t (u : trace) =
    (* English: U1, U2 before U; U4, U5 after U. *)
    let eng_before, eng_after = Omc.insert_around t.eng u.eng ~before:2 ~after:2 in
    (* Hebrew: U1, U4 before U; U2, U5 after U. *)
    let heb_before, heb_after = Omc.insert_around t.heb u.heb ~before:2 ~after:2 in
    match (eng_before, eng_after, heb_before, heb_after) with
    | [ e1; e2 ], [ e4; e5 ], [ h1; h4 ], [ h2; h5 ] ->
        let mk eng heb =
          let uid = t.next_uid in
          t.next_uid <- t.next_uid + 1;
          { uid; eng; heb }
        in
        let u1 = mk e1 h1 in
        let u2 = mk e2 h2 in
        let u4 = mk e4 h4 in
        let u5 = mk e5 h5 in
        { u1; u2; u4; u5 }
    | _ -> assert false

  let precedes t (a : trace) (b : trace) =
    Omc.precedes t.eng a.eng b.eng && Omc.precedes t.heb a.heb b.heb

  let parallel t (a : trace) (b : trace) =
    Omc.precedes t.eng a.eng b.eng <> Omc.precedes t.heb a.heb b.heb

  let trace_count t = t.next_uid

  let query_retries t = Omc.query_retries t.eng + Omc.query_retries t.heb

  let set_sink t sink =
    Omc.set_sink t.eng sink;
    Omc.set_sink t.heb sink
end

include Make (Spr_om.Om_concurrent)
