open Spr_prog
open Spr_sched

type cost_model = { local_op : int; global_insert : int; query : int }

let default_costs = { local_op = 1; global_insert = 8; query = 1 }

(* Per-frame walk state: the trace the frame currently inserts into and
   the trace to adopt once the current sync block's join is passed (set
   by the first — outermost — steal of the block, Figure 8 line 27). *)
type fstate = { mutable cur : Global_tier.trace; mutable post_block : Global_tier.trace option }

type stats = {
  splits : int;
  traces : int;
  local_ops : int;
  global_insert_ticks : int;
  lock_wait_ticks : int;
  query_ticks : int;
  query_retries : int;
  uf_finds : int;
  uf_find_steps : int;
}

type t = {
  costs : cost_model;
  sink : Spr_obs.Sink.t;
  global : Global_tier.t;
  local : Local_tier.t;
  frames : (int, fstate) Hashtbl.t;
  (* Serializes the *event* hooks (spawn/steal/return/sync bookkeeping)
     when the structure is driven by the real multi-domain runtime; the
     simulator is single-threaded so the lock is uncontended there.
     Queries never take it — they are the lock-free path the paper
     optimizes (Section 4). *)
  hook_lock : Mutex.t;
  mutable lock_until : int;  (* virtual time the global lock frees up *)
  mutable splits : int;
  mutable global_insert_ticks : int;
  mutable lock_wait_ticks : int;
  mutable query_ticks : int;
}

let create ?(costs = default_costs) ?(sink = Spr_obs.Sink.null) ?(local_path_compression = false)
    program =
  let global = Global_tier.create () in
  Global_tier.set_sink global sink;
  {
    costs;
    sink;
    global;
    local =
      Local_tier.create ~path_compression:local_path_compression
        ~thread_capacity:(Fj_program.thread_count program)
        ();
    frames = Hashtbl.create 64;
    hook_lock = Mutex.create ();
    lock_until = 0;
    splits = 0;
    global_insert_ticks = 0;
    lock_wait_ticks = 0;
    query_ticks = 0;
  }

let fstate t (f : Sim.frame) =
  match Hashtbl.find_opt t.frames f.Sim.fid with
  | Some s -> s
  | None ->
      (* Only the root frame materializes lazily; children are
         registered at spawn time. *)
      let s = { cur = Global_tier.initial t.global; post_block = None } in
      Hashtbl.add t.frames f.Sim.fid s;
      s

let hooks ?on_thread_user t =
  let locked f = Spr_schedhook.Hook.locked ~layer:"hybrid" ~name:"hook-lock" t.hook_lock f in
  let on_spawn ~wid:_ ~now:_ ~parent ~child =
    locked (fun () ->
        let ps = fstate t parent in
        Hashtbl.add t.frames child.Sim.fid { cur = ps.cur; post_block = None };
        t.costs.local_op)
  in
  let on_thread ~wid ~now (f : Sim.frame) (u : Fj_program.thread) =
    locked (fun () ->
        let s = fstate t f in
        Local_tier.thread_started t.local ~tid:u.Fj_program.tid ~frame_id:f.Sim.fid s.cur);
    (* The client callback runs outside the hook lock: its SP queries
       are exactly the lock-free concurrent reads of Section 4. *)
    let user =
      match on_thread_user with Some cb -> cb t ~wid ~now u | None -> 0
    in
    (2 * t.costs.local_op) + user
  in
  let on_steal ~thief:_ ~victim:_ ~now (f : Sim.frame) =
    locked @@ fun () ->
    (* The thief owns the stolen continuation; split the victim's trace
       around the stolen P-node (Figure 8 lines 19-24). *)
    let s = fstate t f in
    let wait = max 0 (t.lock_until - now) in
    let hold = t.costs.global_insert in
    t.lock_until <- now + wait + hold;
    t.lock_wait_ticks <- t.lock_wait_ticks + wait;
    t.global_insert_ticks <- t.global_insert_ticks + hold;
    let victim_trace = Global_tier.trace_id s.cur in
    let { Global_tier.u1; u2; u4; u5 } = Global_tier.split t.global s.cur in
    Local_tier.split t.local ~frame_id:f.Sim.fid ~u1 ~u2;
    t.splits <- t.splits + 1;
    Spr_obs.Sink.emit t.sink (Spr_obs.Trace.Lock_span { wait; hold });
    Spr_obs.Sink.emit t.sink
      (Spr_obs.Trace.Trace_split
         {
           victim_trace;
           u1 = Global_tier.trace_id u1;
           u2 = Global_tier.trace_id u2;
           u4 = Global_tier.trace_id u4;
           u5 = Global_tier.trace_id u5;
         });
    (match Spr_obs.Sink.metrics t.sink with
    | None -> ()
    | Some m ->
        Spr_obs.Metrics.incr (Spr_obs.Metrics.counter m "hybrid/splits");
        Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "hybrid/lock_wait_ticks") wait;
        Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "hybrid/global_insert_ticks") hold;
        Spr_obs.Metrics.observe (Spr_obs.Metrics.histogram m "hybrid/lock_wait") wait);
    s.cur <- u4;
    (* The first steal in a block is the outermost: its U5 is the trace
       of whatever follows the join (inner splits' U5 stay unused,
       matching the pseudocode's discarded return values). *)
    if s.post_block = None then s.post_block <- Some u5;
    wait + hold + (2 * t.costs.local_op)
  in
  let on_block_end ~wid:_ ~now:_ (f : Sim.frame) =
    locked @@ fun () ->
    let s = fstate t f in
    Local_tier.block_ended t.local ~frame_id:f.Sim.fid;
    (match s.post_block with
    | Some u5 ->
        (* Joining switches the frame into U5; what was bagged under U4
           stays behind in U4 (global tier orders U4 before U5 in both
           orders, so those threads read as serial history, exactly
           Lemma 8's cases). *)
        Local_tier.seal_bags t.local ~frame_id:f.Sim.fid;
        s.cur <- u5;
        s.post_block <- None
    | None -> ());
    t.costs.local_op
  in
  let on_return ~wid:_ ~now:_ ~(child : Sim.frame) ~parent ~inline =
    locked @@ fun () ->
    match parent with
    | None -> 0
    | Some (p : Sim.frame) ->
        let cs = fstate t child in
        let ps = fstate t p in
        let same_trace = cs.cur == ps.cur in
        (* Figure 8's U'-threading (lines 8-18) says an inline return
           hands the child's trace to the continuation; under Cilk's
           top-down steal order an inline return implies the child saw
           no steal at all, so the adoption is always the identity —
           asserted rather than performed.  The *merge* decision keys
           on [inline] rather than on trace equality: under real
           concurrency a non-inline return can race ahead of the
           thief's split hook and still observe equal traces, but its
           threads belong to U3 and must stay unmerged. *)
        if inline then assert same_trace;
        Local_tier.child_returned t.local ~child_frame:child.Sim.fid ~parent_frame:p.Sim.fid
          ~merge:inline;
        Hashtbl.remove t.frames child.Sim.fid;
        t.costs.local_op
  in
  let lock_busy ~now = now < t.lock_until in
  { Sim.on_spawn; on_thread; on_steal; on_block_end; on_return; lock_busy }

(* Figure 9. *)
let precedes t ~executed ~current =
  if executed = current then false
  else begin
    let ue = Local_tier.find_trace t.local ~tid:executed in
    let uc = Local_tier.find_trace t.local ~tid:current in
    if ue == uc then Local_tier.local_precedes t.local ~tid:executed
    else Global_tier.precedes t.global ue uc
  end

let parallel t ~executed ~current =
  if executed = current then false
  else begin
    let ue = Local_tier.find_trace t.local ~tid:executed in
    let uc = Local_tier.find_trace t.local ~tid:current in
    if ue == uc then Local_tier.local_parallel t.local ~tid:executed
    else Global_tier.parallel t.global ue uc
  end

let find_trace_id t ~tid = Global_tier.trace_id (Local_tier.find_trace t.local ~tid)

let stats t =
  {
    splits = t.splits;
    traces = Global_tier.trace_count t.global;
    local_ops = Local_tier.ops t.local;
    global_insert_ticks = t.global_insert_ticks;
    lock_wait_ticks = t.lock_wait_ticks;
    query_ticks = t.query_ticks;
    query_retries = Global_tier.query_retries t.global;
    uf_finds = Local_tier.find_count t.local;
    uf_find_steps = Local_tier.find_steps t.local;
  }

let charge_query t =
  t.query_ticks <- t.query_ticks + t.costs.query;
  t.costs.query
