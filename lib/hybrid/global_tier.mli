(** SP-hybrid's global tier (paper, Section 4).

    Maintains English and Hebrew orderings of {e traces} in two
    concurrent order-maintenance structures (lock-free queries, locked
    inserts).  A steal splits a trace U into ⟨U{^(1)}, U{^(2)},
    U{^(3)}, U{^(4)}, U{^(5)}⟩ with U{^(3)} = U; the four new traces
    enter the orders as Figure 8 lines 21–22 prescribe:

    - English: ⟨U{^(1)}, U{^(2)}, U, U{^(4)}, U{^(5)}⟩
    - Hebrew:  ⟨U{^(1)}, U{^(4)}, U, U{^(2)}, U{^(5)}⟩

    The tier is a functor over its concurrent OM backend; the default
    instantiation (this module itself) uses the one-level structure the
    paper's prose describes ({!Spr_om.Om_concurrent}); footnote 3's
    two-level hierarchy is available as
    [Make (Spr_om.Om_concurrent2)]. *)

module type S = sig
  type trace
  (** A trace: a dynamic set of threads executed on one processor,
      represented by its elements in the two orderings. *)

  type t

  val create : unit -> t
  (** A global tier whose single initial trace holds the whole
      computation until the first steal. *)

  val initial : t -> trace

  val trace_id : trace -> int
  (** Dense id (creation order; the initial trace is 0). *)

  type split = { u1 : trace; u2 : trace; u4 : trace; u5 : trace }

  val split : t -> trace -> split
  (** Split around a stolen P-node: create the four new traces and
      insert them into both orderings around the victim's trace
      (= U{^(3)}). *)

  val precedes : t -> trace -> trace -> bool
  (** Eng(a) < Eng(b) && Heb(a) < Heb(b) — the two lock-free
      OM-PRECEDES of Figure 9 line 32. *)

  val parallel : t -> trace -> trace -> bool
  (** The orders disagree (Corollary 2 lifted to traces). *)

  val trace_count : t -> int
  (** Total traces created; equals [4 s + 1] after [s] splits. *)

  val query_retries : t -> int
  (** Failed-and-retried lock-free query attempts across both orders. *)

  val set_sink : t -> Spr_obs.Sink.t -> unit
  (** Route both backing OM structures' events (inserts, relabel
      passes) to an observability sink. *)
end

module Make (_ : Spr_om.Om_intf.CONCURRENT) : S

include S
