The bounded smoke profile (the CI configuration) must come back clean:

  $ spfuzz --smoke --quiet
  spfuzz: OK — 60 program iterations (8 maintainers), 60 script iterations (6 OM structures + 1 cross-checks), 0 divergences

A planted SP-maintenance bug (SP-bags with the bag-kind comparison
flipped) must be caught and shrunk to a minimal replayable repro:

  $ spfuzz --mode sp --inject-fault bags-flip --iters 50 --quiet
  SP divergence at iteration 0:
    sp-bags-flipped [serial]: precedes(u0, u1) = false, reference says true
  shrunk repro (2 threads), as Prog_spec.t:
    [[T 1; T 1]]
  replay: spfuzz --mode sp --seed 1 --iters 1
  [1]

A planted order-maintenance bug (insert_before aliased to
insert_after) must be caught and shrunk too:

  $ spfuzz --mode om --inject-fault om-before-after --iters 50 --quiet
  OM divergence at iteration 0 (om-broken-insert-before):
    om-broken-insert-before: final sweep after 1 ops: precedes(#0, #1) = true, oracle says false
  shrunk script, as Om_script.script:
    [Insert_before 693078]
  replay: spfuzz --mode om --seed 1 --iters 1
  [1]
