The bounded smoke profile (the CI configuration) must come back clean:

  $ spfuzz --smoke --quiet
  spfuzz: OK — 60 program iterations (12 maintainers + 2 cross-checks), 60 HB triples (2 clock oracles vs sp-order-fused), 60 script iterations (6 OM structures + 1 cross-checks), 0 divergences

A planted SP-maintenance bug (SP-bags with the bag-kind comparison
flipped) must be caught and shrunk to a minimal replayable repro:

  $ spfuzz --mode sp --inject-fault bags-flip --iters 50 --quiet
  SP divergence at iteration 0:
    sp-bags-flipped [serial]: precedes(u0, u1) = false, reference says true
  shrunk repro (2 threads), as Prog_spec.t:
    [[T 1; T 1]]
  replay: spfuzz --mode sp --seed 1 --iters 1
  final metrics snapshot: {"fuzz/sp_programs":1,"om-concurrent-2level/queries":0,"om-concurrent-2level/retries":0,"om-concurrent/queries":0,"om-concurrent/retries":0,"sched/frames":9,"sched/hook_ticks":27,"sched/overhead_ticks":9,"sched/steal_attempts":39,"sched/steal_attempts_lock_held":0,"sched/steal_ticks":39,"sched/steals":0,"sched/time":4,"sched/work_ticks":21}
  flight recorder: 27 recent events (27 recorded) dumped to spfuzz.spr-flight
  [1]

The three-way differential race oracle (sp-order-fused vs vector
clocks vs tree clocks, full detection output compared) must catch a
vector clock that skips the join at procedure exit — the completed
subtree's effects are forgotten, so a race-free program yields a
false positive:

  $ spfuzz --mode hb --inject-fault hb-vec-nojoin --iters 50 --quiet
  HB oracle divergence at iteration 0 (hb-vector-nojoin vs sp-order-fused):
    races differ: baseline [], candidate [loc=2 1(r)->3(w)]
  shrunk repro (4 threads, accesses from seed 7368787), as Prog_spec.t:
    [[S [[T 1; T 1; T 1]]]; [T 1]]
  replay: spfuzz --mode hb --seed 1 --iters 1
  final metrics snapshot: {"fuzz/hb_programs":1,"om-concurrent-2level/queries":0,"om-concurrent-2level/retries":0,"om-concurrent/queries":0,"om-concurrent/retries":0}
  flight recorder: 0 recent events (0 recorded) dumped to spfuzz.spr-flight
  [1]

...and the dual fault, a tree clock that skips the snapshot restore
after a spawn — the continuation inherits the child's clock, so a
genuine race is missed (false negative):

  $ spfuzz --mode hb --inject-fault hb-tree-norestore --iters 50 --quiet
  HB oracle divergence at iteration 0 (hb-tree-norestore vs sp-order-fused):
    races differ: baseline [loc=2 1(r)->3(w)], candidate []
  shrunk repro (4 threads, accesses from seed 7368787), as Prog_spec.t:
    [[S [[T 1; T 1]; [T 1]]; T 1]]
  replay: spfuzz --mode hb --seed 1 --iters 1
  final metrics snapshot: {"fuzz/hb_programs":1,"om-concurrent-2level/queries":0,"om-concurrent-2level/retries":0,"om-concurrent/queries":0,"om-concurrent/retries":0}
  flight recorder: 0 recent events (0 recorded) dumped to spfuzz.spr-flight
  [1]

A planted order-maintenance bug (insert_before aliased to
insert_after) must be caught and shrunk too:

  $ spfuzz --mode om --inject-fault om-before-after --iters 50 --quiet
  OM divergence at iteration 0 (om-broken-insert-before):
    om-broken-insert-before: final sweep after 1 ops: precedes(#0, #1) = true, oracle says false
  shrunk script, as Om_script.script:
    [Insert_before 693078]
  replay: spfuzz --mode om --seed 1 --iters 1
  final metrics snapshot: {"fuzz/om_scripts":1,"om-concurrent-2level/queries":1910,"om-concurrent-2level/retries":0,"om-concurrent/queries":1910,"om-concurrent/retries":0}
  flight recorder: 159 recent events (159 recorded) dumped to spfuzz.spr-flight
  [1]

Schedule-exploration modes (--sched) print a digest folded over every
decision trace; running the same command twice must produce identical
output (deterministic replayable schedules):

  $ spfuzz --sched replay --smoke --quiet | tee first.out
  spfuzz: OK — sched replay: 40 scripts x 2 structures, 400 schedules explored, 0 pruned, max depth 35, digest 332a8c95884b6978
  $ spfuzz --sched replay --smoke --quiet | cmp - first.out

PCT and bounded exhaustive DFS (with sleep-set pruning) over the same
script generator:

  $ spfuzz --sched pct --depth 3 --smoke --quiet
  spfuzz: OK — sched pct: 40 scripts x 2 structures, 400 schedules explored, 0 pruned, max depth 29, digest 5719b120e5568e53
  $ spfuzz --sched dfs --smoke --quiet
  spfuzz: OK — sched dfs: 6 scripts x 2 structures, 16942 schedules explored, 1437 pruned, max depth 31 (budget-truncated), digest 2f0af8363e6d37ea

A planted concurrency bug (concurrent OM query with the
read-validation loop removed) must be caught by PCT and shrunk to a
minimal script plus a minimal schedule:

  $ spfuzz --sched pct --inject-fault om-unvalidated --smoke --quiet
  sched divergence (pct, om-concurrent-unvalidated, iteration 1):
    reader 1 query 1: precedes(pre.0, pre.1) = true, serial oracle says false
  shrunk script:
  { prelude_head = 2;
    prelude_base = 0;
    writer = [W_head_insert; W_head_insert];
    readers = [[{ qx = 0; qy = 0 }; { qx = 0; qy = 1 }]] }
  shrunk schedule (2 decisions): 1 1
  replay: spfuzz --sched pct --depth 3 --inject-fault om-unvalidated --seed 2 --iters 1
  final metrics snapshot: {"om-concurrent-2level/queries":580,"om-concurrent-2level/retries":0,"om-concurrent/queries":580,"om-concurrent/retries":1,"schedtest/max_depth":29,"schedtest/pruned":0,"schedtest/schedules":27}
  flight recorder: 156 recent events (156 recorded) dumped to spfuzz.spr-flight
  [1]

Unknown scheduler and fault names fail cleanly with the valid values:

  $ spfuzz --sched bogus
  spfuzz: unknown scheduler "bogus" (valid: replay, pct, dfs)
  [1]
  $ spfuzz --inject-fault bogus
  spfuzz: unknown fault "bogus" (valid: none, bags-flip, om-before-after, om-unvalidated, hb-vec-nojoin, hb-tree-norestore)
  [1]
  $ spfuzz --inject-fault om-unvalidated
  spfuzz: fault "om-unvalidated" races a query against a relabel — it needs a controlled scheduler; combine it with --sched (valid: replay, pct, dfs)
  [1]
