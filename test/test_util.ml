(* Coverage for the utility substrate: growable arrays, deques, the
   seeded PRNG, statistics, and the table renderer. *)

module Varint = Spr_util.Varint
module Vec = Spr_util.Vec
module Deque = Spr_util.Deque
module Rng = Spr_util.Rng
module Stats = Spr_util.Stats

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check (option int)) "last" (Some 99) (Vec.last v);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "after pop" 99 (Vec.length v);
  Alcotest.(check int) "fold" (List.fold_left ( + ) 0 (Vec.to_list v)) (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 3 out of bounds [0,3)") (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index -1 out of bounds [0,3)") (fun () -> ignore (Vec.get v (-1)))

let vec_model =
  QCheck2.Test.make ~count:100 ~name:"Vec behaves like a list"
    QCheck2.Gen.(list (int_bound 1000))
    (fun ops ->
      let v = Vec.create () in
      let model = ref [] in
      List.iter
        (fun x ->
          if x mod 7 = 0 then begin
            (match (Vec.pop v, !model) with
            | Some a, b :: rest ->
                assert (a = b);
                model := rest
            | None, [] -> ()
            | _ -> assert false)
          end
          else begin
            Vec.push v x;
            model := x :: !model
          end)
        ops;
      Vec.to_list v = List.rev !model)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)

let deque_model =
  QCheck2.Test.make ~count:150 ~name:"Deque behaves like a two-ended list"
    QCheck2.Gen.(list (int_bound 1000))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      (* model: list with head = top (oldest), tail end = bottom *)
      List.iter
        (fun x ->
          match x mod 4 with
          | 0 | 1 ->
              Deque.push_bottom d x;
              model := !model @ [ x ]
          | 2 -> begin
              match (Deque.pop_top d, !model) with
              | Some a, b :: rest ->
                  assert (a = b);
                  model := rest
              | None, [] -> ()
              | _ -> assert false
            end
          | _ -> begin
              match (Deque.pop_bottom d, List.rev !model) with
              | Some a, b :: rest ->
                  assert (a = b);
                  model := List.rev rest
              | None, [] -> ()
              | _ -> assert false
            end)
        ops;
      let out = ref [] in
      Deque.iter_top_to_bottom (fun x -> out := x :: !out) d;
      List.rev !out = !model && Deque.length d = List.length !model)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.failf "Rng.int out of range: %d" x;
    let y = Rng.int_in rng (-5) 5 in
    if y < -5 || y > 5 then Alcotest.failf "Rng.int_in out of range: %d" y;
    let f = Rng.float rng 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.failf "Rng.float out of range: %f" f
  done

let rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* The two streams should not be identical. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_uniform_ish () =
  let rng = Rng.create 31 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expect = n / 10 in
      if abs (c - expect) > expect / 5 then
        Alcotest.failf "bucket %d badly skewed: %d vs %d" i c expect)
    buckets

let rng_shuffle_permutes () =
  let rng = Rng.create 77 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.variance xs);
  let mn, mx = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 1.0 mn;
  Alcotest.(check (float 1e-9)) "max" 5.0 mx;
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0)

(* Sorted-array oracle for quantiles: the textbook linear-interpolation
   definition on a fully sorted copy.  [Stats.quantile] must agree
   despite computing via quickselect without sorting. *)
let quantile_oracle xs q =
  let ys = Array.copy xs in
  Array.sort compare ys;
  let n = Array.length ys in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then ys.(lo) else ys.(lo) +. ((pos -. float_of_int lo) *. (ys.(hi) -. ys.(lo)))

let quantile_model =
  QCheck2.Test.make ~count:300 ~name:"Stats.quantile agrees with sorted-array oracle"
    QCheck2.Gen.(pair (list_size (int_range 1 60) (int_bound 1000)) (int_bound 100))
    (fun (ints, qpct) ->
      let xs = Array.of_list (List.map float_of_int ints) in
      let q = float_of_int qpct /. 100.0 in
      let got = Stats.quantile xs q in
      let want = quantile_oracle xs q in
      if abs_float (got -. want) > 1e-9 then
        QCheck2.Test.fail_reportf "quantile %.2f of %d samples: got %g, oracle %g" q
          (Array.length xs) got want
      else begin
        (* The input must come back untouched (quickselect works on a
           scratch copy). *)
        let orig = Array.of_list (List.map float_of_int ints) in
        xs = orig
      end)

let quantile_counts_model =
  QCheck2.Test.make ~count:300
    ~name:"Stats.quantile_counts agrees with the expanded multiset"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (pair (int_bound 50) (int_range (-1) 4)))
        (int_bound 100))
    (fun (pairs, qpct) ->
      let q = float_of_int qpct /. 100.0 in
      let pairs = List.map (fun (v, c) -> (float_of_int v, c)) pairs in
      let expanded =
        List.concat_map (fun (v, c) -> List.init (max 0 c) (fun _ -> v)) pairs
      in
      match expanded with
      | [] ->
          (* Empty multiset must be rejected, same as an empty array. *)
          (try
             ignore (Stats.quantile_counts (Array.of_list pairs) q);
             false
           with Invalid_argument _ -> true)
      | _ ->
          let got = Stats.quantile_counts (Array.of_list pairs) q in
          let want = quantile_oracle (Array.of_list expanded) q in
          if abs_float (got -. want) > 1e-9 then
            QCheck2.Test.fail_reportf "quantile_counts %.2f: got %g, oracle %g" q got want
          else true)

let quantile_edges () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty input") (fun () ->
      ignore (Stats.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q out of range")
    (fun () -> ignore (Stats.quantile [| 1.0 |] 1.5));
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.quantile [| 7.0 |] 0.99);
  Alcotest.(check (float 1e-9))
    "matches percentile" (Stats.percentile [| 3.0; 1.0; 2.0 |] 50.0)
    (Stats.quantile [| 3.0; 1.0; 2.0 |] 0.5)

let stats_fits () =
  (* y = 3x + 1 *)
  let pts = Array.init 20 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept = Stats.linear_fit pts in
  Alcotest.(check (float 1e-6)) "slope" 3.0 slope;
  Alcotest.(check (float 1e-6)) "intercept" 1.0 intercept;
  Alcotest.(check (float 1e-6)) "r2" 1.0 (Stats.r_squared pts (slope, intercept));
  (* y = 2 x^1.5 *)
  let pts = Array.init 20 (fun i -> (float_of_int (i + 1), 2.0 *. (float_of_int (i + 1) ** 1.5))) in
  let k, c = Stats.fit_power pts in
  Alcotest.(check (float 1e-6)) "exponent" 1.5 k;
  Alcotest.(check (float 1e-6)) "constant" 2.0 c

(* ------------------------------------------------------------------ *)
(* Varint                                                              *)

let varint_roundtrip_one n =
  let buf = Buffer.create 10 in
  Varint.put buf n;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let got = Varint.get s pos in
  if got <> n then Alcotest.failf "varint roundtrip: put %d, got %d" n got;
  Alcotest.(check int) "consumed whole encoding" (String.length s) !pos

let varint_boundaries () =
  List.iter varint_roundtrip_one
    [ 0; 1; 127; 128; 16383; 16384; -1; -128; max_int; min_int; (1 lsl 62) - 1; -(1 lsl 62) ];
  (* Negative ints are the full 64-bit two's-complement pattern: ten
     bytes, sign group last. *)
  let buf = Buffer.create 10 in
  Varint.put buf (-1);
  Alcotest.(check int) "-1 is ten bytes" 10 (String.length (Buffer.contents buf));
  Alcotest.check_raises "empty input is truncated" Varint.Truncated (fun () ->
      ignore (Varint.get "" (ref 0)));
  Alcotest.check_raises "dangling continuation bit is truncated" Varint.Truncated (fun () ->
      ignore (Varint.get "\x80" (ref 0)))

let varint_model =
  QCheck2.Test.make ~count:500 ~name:"Varint roundtrips every int"
    QCheck2.Gen.(
      oneof
        [
          int;
          int_bound 1000;
          map (fun (b, s) -> b lsl s) (pair (int_bound 255) (int_bound 55));
          map Int.neg int;
        ])
    (fun n ->
      let buf = Buffer.create 10 in
      Varint.put buf n;
      let s = Buffer.contents buf in
      let pos = ref 0 in
      Varint.get s pos = n && !pos = String.length s)

let varint_concatenation () =
  (* Streams decode back-to-back with one shared cursor, the way the
     trace codec uses them. *)
  let xs = [ 0; 300; -7; max_int; 42; min_int; 1 ] in
  let buf = Buffer.create 64 in
  List.iter (Varint.put buf) xs;
  let s = Buffer.contents buf in
  let pos = ref 0 in
  let got = List.map (fun _ -> Varint.get s pos) xs in
  Alcotest.(check (list int)) "stream decodes in order" xs got;
  Alcotest.(check int) "cursor at end" (String.length s) !pos

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let table_renders () =
  let t =
    Spr_util.Table.create ~title:"t" [ ("a", Spr_util.Table.Left); ("b", Spr_util.Table.Right) ]
  in
  Spr_util.Table.add_row t [ "x"; "1" ];
  Spr_util.Table.add_sep t;
  Spr_util.Table.add_row t [ "longer"; "22" ];
  let s = Spr_util.Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 't');
  Alcotest.(check bool) "contains cell" true (contains s "longer");
  Alcotest.check_raises "arity checked" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Spr_util.Table.add_row t [ "only-one" ])

let table_formats () =
  Alcotest.(check string) "ns" "12.0ns" (Spr_util.Table.fmt_ns 12.0);
  Alcotest.(check string) "us" "1.50us" (Spr_util.Table.fmt_ns 1_500.0);
  Alcotest.(check string) "ms" "2.35ms" (Spr_util.Table.fmt_ns 2_350_000.0);
  Alcotest.(check string) "int" "1,234,567" (Spr_util.Table.fmt_int 1_234_567);
  Alcotest.(check string) "negative int" "-1,000" (Spr_util.Table.fmt_int (-1000))

let () =
  Alcotest.run "spr_util"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick vec_basics;
          Alcotest.test_case "bounds" `Quick vec_bounds;
          QCheck_alcotest.to_alcotest vec_model;
        ] );
      ("deque", [ QCheck_alcotest.to_alcotest deque_model ]);
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "bounds" `Quick rng_bounds;
          Alcotest.test_case "split independent" `Quick rng_split_independent;
          Alcotest.test_case "uniform-ish" `Quick rng_uniform_ish;
          Alcotest.test_case "shuffle permutes" `Quick rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick stats_basics;
          Alcotest.test_case "fits" `Quick stats_fits;
          Alcotest.test_case "quantile edges" `Quick quantile_edges;
          QCheck_alcotest.to_alcotest quantile_model;
          QCheck_alcotest.to_alcotest quantile_counts_model;
        ] );
      ( "varint",
        [
          Alcotest.test_case "boundaries" `Quick varint_boundaries;
          Alcotest.test_case "concatenation" `Quick varint_concatenation;
          QCheck_alcotest.to_alcotest varint_model;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick table_renders;
          Alcotest.test_case "formats" `Quick table_formats;
        ] );
    ]
