(* Clock-detector validation (lib/hb): the three-way differential race
   oracle — sp-order-fused vs vector clocks vs tree clocks, full
   detection output compared — over 10k random programs and the whole
   workload registry; the planted clock bugs must each be caught and
   shrunk; and the asymptotic separation the EXP-HB bench measures
   (vector joins move Θ(P) words, tree joins touch only the updated
   subtree) is pinned as an ordering fact on the fork chain. *)

open Spr_prog
module F = Spr_check.Fuzz
module W = Spr_workloads.Progs
module Drivers = Spr_race.Drivers
module Sm = Spr_core.Sp_maintainer

let race_repr (r : Spr_race.Detector.race) =
  Printf.sprintf "loc=%d %d(%c)->%d(%c)" r.loc r.earlier
    (if r.earlier_write then 'w' else 'r')
    r.later
    (if r.later_write then 'w' else 'r')

let detect p make = Drivers.detect_serial (Prog_tree.of_program p) make

let check_triple ctx p =
  let base = detect p Spr_core.Algorithms.sp_order_fused in
  List.iter
    (fun (name, make) ->
      let got = detect p make in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: %s races" ctx name)
        (List.map race_repr base.Drivers.races)
        (List.map race_repr got.Drivers.races);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: %s racy locs" ctx name)
        base.Drivers.racy_locs got.Drivers.racy_locs;
      Alcotest.(check int)
        (Printf.sprintf "%s: %s sp queries" ctx name)
        base.Drivers.sp_queries got.Drivers.sp_queries)
    F.default_hb_algos

(* ------------------------------------------------------------------ *)
(* The 10k-program differential, shapes cycling as in the fuzzer.      *)

let ten_k_triples () =
  match F.run_hb (F.default ~seed:11 ~iters:10_000) with
  | None -> ()
  | Some f -> Alcotest.failf "HB divergence: %s" (Format.asprintf "%a" F.pp_hb_failure f)

(* Every named workload generator, races and query counts included
   (the generators carry real access patterns, unlike the fuzzer's
   decorated specs). *)
let workload_registry_triples () =
  let size_for = function
    | "fib" | "matmul" | "matmul-buggy" -> 8
    | "serial" -> 12
    | "deep" | "locked" | "locked-buggy" -> 16
    | "wide" | "shared-readers" -> 24
    | "dcsum" | "dcsum-buggy" -> 32
    | _ -> 48
  in
  List.iter
    (fun (name, gen) -> check_triple name (gen ~size:(size_for name) ~seed:3))
    W.named

(* ------------------------------------------------------------------ *)
(* Planted clock bugs: each oracle must independently catch a fault in
   the others, with the repro shrunk to a handful of threads.          *)

let catches cfg_algos expect_algo =
  let cfg = { (F.default ~seed:3 ~iters:60) with F.hb_algos = cfg_algos } in
  match F.run_hb cfg with
  | None -> Alcotest.failf "planted fault %s not caught in 60 programs" expect_algo
  | Some f ->
      Alcotest.(check string) "diverging detector" expect_algo f.F.hb_algo;
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to a small repro (%d threads)" f.F.hb_threads)
        true (f.F.hb_threads <= 8)

let vector_no_join_caught () =
  catches (F.default_hb_algos @ [ Spr_check.Faulty.hb_vector_no_join ]) "hb-vector-nojoin"

let tree_no_restore_caught () =
  catches (F.default_hb_algos @ [ Spr_check.Faulty.hb_tree_no_restore ]) "hb-tree-norestore"

(* The healthy detectors must stay silent on the same battery, or the
   two tests above prove only that run_hb fails a lot. *)
let healthy_detectors_silent () =
  match F.run_hb (F.default ~seed:3 ~iters:60) with
  | None -> ()
  | Some f -> Alcotest.failf "unexpected divergence from %s" f.F.hb_algo

(* ------------------------------------------------------------------ *)
(* The join-cost separation (what EXP-HB measures, as an invariant):
   on a P-fork chain a vector-clock join moves Θ(P) words, so total
   joined words are Θ(P²); a tree-clock join attaches the other root
   in O(1) amortized, so total joined words stay Θ(P).               *)

let fork_chain_join_words () =
  let forks = 256 in
  let tree = Spr_sptree.Tree_gen.fork_chain ~forks in
  let module V = Spr_hb.Sp_clock.Vector in
  let module T = Spr_hb.Sp_clock.Tree in
  let v = V.create tree in
  Spr_core.Driver.run tree (Sm.Instance ((module V), v));
  let t = T.create tree in
  Spr_core.Driver.run tree (Sm.Instance ((module T), t));
  let vj = V.joined_words v and tj = T.joined_words t in
  Alcotest.(check bool)
    (Printf.sprintf "vector joins quadratic vs tree linear (%d vs %d)" vj tj)
    true
    (vj > (forks * forks) / 4 && tj < 16 * forks && vj > 10 * tj)

(* Against a doubling of the fork count, vector joined-words-per-fork
   must double too while the tree clock's stay flat — the crossover
   shape itself, not just one point of it. *)
let fork_chain_join_growth () =
  let joined forks =
    let tree = Spr_sptree.Tree_gen.fork_chain ~forks in
    let module V = Spr_hb.Sp_clock.Vector in
    let module T = Spr_hb.Sp_clock.Tree in
    let v = V.create tree in
    Spr_core.Driver.run tree (Sm.Instance ((module V), v));
    let t = T.create tree in
    Spr_core.Driver.run tree (Sm.Instance ((module T), t));
    (float_of_int (V.joined_words v) /. float_of_int forks,
     float_of_int (T.joined_words t) /. float_of_int forks)
  in
  let v1, t1 = joined 128 and v2, t2 = joined 512 in
  Alcotest.(check bool)
    (Printf.sprintf "vector per-fork grows ~4x (%.1f -> %.1f)" v1 v2)
    true
    (v2 > 3.0 *. v1);
  Alcotest.(check bool)
    (Printf.sprintf "tree per-fork stays flat (%.2f -> %.2f)" t1 t2)
    true
    (t2 < 2.0 *. t1 +. 1.0)

let () =
  Alcotest.run "hb"
    [
      ( "differential",
        [
          Alcotest.test_case "10k random programs, three oracles" `Quick ten_k_triples;
          Alcotest.test_case "workload registry, three oracles" `Quick
            workload_registry_triples;
        ] );
      ( "planted bugs",
        [
          Alcotest.test_case "vector no-join caught" `Quick vector_no_join_caught;
          Alcotest.test_case "tree no-restore caught" `Quick tree_no_restore_caught;
          Alcotest.test_case "healthy detectors silent" `Quick healthy_detectors_silent;
        ] );
      ( "asymptotics",
        [
          Alcotest.test_case "fork-chain join words" `Quick fork_chain_join_words;
          Alcotest.test_case "fork-chain join growth" `Quick fork_chain_join_growth;
        ] );
    ]
