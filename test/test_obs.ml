(* Unit tests for the observability layer (spr_obs): the JSON printer,
   the metrics registry, the trace ring buffer and its Chrome
   trace_event export, and the sink plumbing — including an end-to-end
   run of the simulator + SP-hybrid that validates the schema of every
   exported event. *)

open Spr_obs

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let json_printing () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\n");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("o", Json.Obj []);
      ]
  in
  Alcotest.(check string)
    "canonical print" {|{"s":"a\"b\n","i":-3,"f":1.5,"l":[true,null],"o":{}}|}
    (Json.to_string j);
  Alcotest.(check bool) "member hit" true (Json.member "i" j = Some (Json.Int (-3)));
  Alcotest.(check bool) "member miss" true (Json.member "zzz" j = None);
  Alcotest.(check bool) "member on non-object" true (Json.member "x" Json.Null = None)

let json_parsing () =
  let roundtrip j =
    match Json.of_string (Json.to_string j) with
    | Ok j' -> Alcotest.(check bool) ("roundtrip " ^ Json.to_string j) true (j = j')
    | Error e -> Alcotest.fail ("parse failed: " ^ e)
  in
  List.iter roundtrip
    [
      Json.Null;
      Json.Bool false;
      Json.Int 42;
      Json.Int (-7);
      Json.Float 1.25;
      Json.Float (-0.0625);
      Json.String "a\"b\\c\nd\te\r\x01";
      Json.List [];
      Json.Obj [];
      Json.Obj
        [
          ("samples", Json.List [ Json.Float 134.2; Json.Int 7; Json.Null ]);
          ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [ ("x", Json.Bool true) ] ]) ]);
        ];
    ];
  (* Whitespace and jq-style formatting are accepted. *)
  (match Json.of_string " {\n  \"a\" : [ 1 , 2.5 ] ,\n  \"b\" : null\n}\n" with
  | Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5 ]); ("b", Json.Null) ]) -> ()
  | Ok j -> Alcotest.fail ("wrong parse: " ^ Json.to_string j)
  | Error e -> Alcotest.fail e);
  (* Malformed inputs are errors, not exceptions. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed " ^ s))
    [ ""; "{"; "[1,"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let metrics_instruments () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a/c" in
  Metrics.incr c;
  Metrics.add c 4;
  let g = Metrics.gauge m "a/g" in
  Metrics.set g 2.5;
  let h = Metrics.histogram m "a/h" in
  List.iter (Metrics.observe h) [ 1; 2; 4; 100 ];
  (match Metrics.snapshot m with
  | [ ("a/c", Metrics.C 5); ("a/g", Metrics.G 2.5); ("a/h", Metrics.H hd) ] ->
      Alcotest.(check int) "hist count" 4 hd.Metrics.count;
      Alcotest.(check int) "hist sum" 107 hd.Metrics.sum;
      Alcotest.(check int) "hist max" 100 hd.Metrics.max
  | _ -> Alcotest.fail "unexpected snapshot shape (should be sorted by key)");
  (* Re-registering by key returns the same cell. *)
  Metrics.incr (Metrics.counter m "a/c");
  (match Metrics.snapshot m with
  | ("a/c", Metrics.C 6) :: _ -> ()
  | _ -> Alcotest.fail "counter lookup did not find the existing cell");
  (* A key cannot change kind. *)
  Alcotest.(check bool) "kind clash rejected" true
    (try
       ignore (Metrics.gauge m "a/c");
       false
     with Invalid_argument _ -> true)

let metrics_snapshot_diff_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x/c" in
  let h = Metrics.histogram m "x/h" in
  Metrics.add c 10;
  Metrics.observe h 8;
  let before = Metrics.snapshot m in
  Metrics.add c 7;
  Metrics.observe h 32;
  let after = Metrics.snapshot m in
  (match Metrics.diff after before with
  | [ ("x/c", Metrics.C 7); ("x/h", Metrics.H hd) ] ->
      Alcotest.(check int) "window count" 1 hd.Metrics.count;
      Alcotest.(check int) "window sum" 32 hd.Metrics.sum
  | _ -> Alcotest.fail "diff shape");
  Metrics.reset m;
  match Metrics.snapshot m with
  | [ ("x/c", Metrics.C 0); ("x/h", Metrics.H hd) ] ->
      Alcotest.(check int) "reset count" 0 hd.Metrics.count
  | _ -> Alcotest.fail "reset should keep registrations and zero values"

let metrics_json_and_quantiles () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "s/c") 3;
  let h = Metrics.histogram m "s/h" in
  for _ = 1 to 90 do
    Metrics.observe h 1
  done;
  for _ = 1 to 10 do
    Metrics.observe h 1000
  done;
  (* Log-bucketed approximation: p50 lands in the 1-bucket, p99 in the
     1000-bucket (whose answer is capped at the observed max). *)
  Alcotest.(check (float 1e-9)) "p50" 1.0 (Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 in the top bucket" true (Metrics.quantile h 0.99 > 500.0);
  Alcotest.(check bool) "p99 capped at max" true (Metrics.quantile h 0.99 <= 1000.0);
  let j = Metrics.to_json m in
  Alcotest.(check bool) "counter field" true (Json.member "s/c" j = Some (Json.Int 3));
  match Json.member "s/h" j with
  | Some hist ->
      Alcotest.(check bool) "hist count field" true
        (Json.member "count" hist = Some (Json.Int 100));
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (Json.member k hist <> None))
        [ "sum"; "max"; "p50"; "p90"; "p99" ]
  | None -> Alcotest.fail "histogram missing from JSON"

(* ------------------------------------------------------------------ *)
(* Trace ring buffer                                                   *)

let trace_ring () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.emit t ~ts:i ~wid:0 (Trace.Sync { frame = i })
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length t);
  Alcotest.(check int) "dropped counted" 2 (Trace.dropped t);
  (* The buffer keeps the tail of the run, oldest first. *)
  let frames =
    List.map
      (fun e -> match e.Trace.kind with Trace.Sync { frame } -> frame | _ -> -1)
      (Trace.events t)
  in
  Alcotest.(check (list int)) "keeps the tail" [ 3; 4; 5; 6 ] frames;
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t);
  Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped t)

(* Every exported trace_event must carry the Chrome-required fields;
   complete events ("ph":"X") additionally carry a duration, instants
   ("ph":"i") a scope. *)
let check_chrome_event ?(meta_ok = false) j =
  let require keys =
    List.iter
      (fun k ->
        if Json.member k j = None then
          Alcotest.failf "event %s lacks required field %S" (Json.to_string j) k)
      keys
  in
  match Json.member "ph" j with
  | Some (Json.String "X") ->
      require [ "name"; "ts"; "pid"; "tid"; "dur" ]
  | Some (Json.String "i") -> require [ "name"; "ts"; "pid"; "tid"; "s" ]
  | Some (Json.String "M") when meta_ok ->
      (* Metadata records (thread naming) carry no timestamp. *)
      require [ "name"; "pid"; "tid"; "args" ]
  | ph ->
      Alcotest.failf "event %s has unexpected ph %s" (Json.to_string j)
        (match ph with Some p -> Json.to_string p | None -> "<none>")

let all_kinds =
  [
    Trace.Spawn { parent = 1; child = 2 };
    Trace.Sync { frame = 1 };
    Trace.Steal { thief = 1; victim = 0; frame = 3 };
    Trace.Return { frame = 3; inline = true };
    Trace.Thread_run { tid = 7; cost = 5 };
    Trace.Trace_split { victim_trace = 1; u1 = 2; u2 = 3; u4 = 4; u5 = 5 };
    Trace.Lock_span { wait = 2; hold = 3 };
    Trace.Om_insert { om = "eng" };
    Trace.Om_relabel { om = "eng"; moved = 12 };
    Trace.Om_bucket_split { om = "heb" };
    Trace.Race_query { tid = 4; queries = 2 };
  ]

let trace_chrome_schema () =
  List.iter
    (fun kind -> check_chrome_event (Trace.chrome_of_event { Trace.ts = 5; wid = 1; kind }))
    all_kinds;
  (* Durations come from the payload: thread runs last their cost, the
     lock span covers wait + hold. *)
  let dur kind =
    match Json.member "dur" (Trace.chrome_of_event { Trace.ts = 0; wid = 0; kind }) with
    | Some (Json.Int d) -> d
    | _ -> Alcotest.fail "expected an integer dur"
  in
  Alcotest.(check int) "thread dur = cost" 5 (dur (Trace.Thread_run { tid = 0; cost = 5 }));
  Alcotest.(check int) "lock dur = wait+hold" 5 (dur (Trace.Lock_span { wait = 2; hold = 3 }))

let trace_to_chrome () =
  let t = Trace.create () in
  List.iteri (fun i kind -> Trace.emit t ~ts:i ~wid:(i mod 3) kind) all_kinds;
  let j = Trace.to_chrome ~other_data:[ ("workload", Json.String "unit") ] t in
  (match Json.member "traceEvents" j with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "metadata + events" true (List.length evs > List.length all_kinds);
      List.iter (check_chrome_event ~meta_ok:true) evs
  | _ -> Alcotest.fail "traceEvents missing");
  match Json.member "otherData" j with
  | Some od ->
      Alcotest.(check bool) "caller data kept" true
        (Json.member "workload" od = Some (Json.String "unit"));
      Alcotest.(check bool) "event accounting" true (Json.member "events" od <> None)
  | None -> Alcotest.fail "otherData missing"

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)

let sink_plumbing () =
  Alcotest.(check bool) "null is null" true (Sink.is_null Sink.null);
  (* Emitting and setting context on the null sink must be no-ops. *)
  Sink.set_context Sink.null ~now:99 ~wid:3;
  Sink.emit Sink.null (Trace.Sync { frame = 0 });
  Alcotest.(check int) "null clock untouched" 0 (Sink.now Sink.null);
  let t = Trace.create () in
  let m = Metrics.create () in
  let s = Sink.make ~trace:t ~metrics:m () in
  Alcotest.(check bool) "live sink" false (Sink.is_null s);
  Alcotest.(check bool) "metrics exposed" true (Sink.metrics s = Some m);
  Sink.set_context s ~now:42 ~wid:2;
  Sink.emit s (Trace.Sync { frame = 1 });
  Sink.emit_at s ~ts:7 ~wid:0 (Trace.Sync { frame = 2 });
  match Trace.events t with
  | [ a; b ] ->
      Alcotest.(check int) "context ts" 42 a.Trace.ts;
      Alcotest.(check int) "context wid" 2 a.Trace.wid;
      Alcotest.(check int) "explicit ts" 7 b.Trace.ts
  | _ -> Alcotest.fail "expected exactly two events"

(* ------------------------------------------------------------------ *)
(* Sharded counters: exact totals, single-domain parity                *)

let sharded_parity () =
  (* A sharded registry's snapshot is bit-identical to a serial Metrics
     registry fed the same bumps from one domain. *)
  let s = Sharded.create () in
  let m = Metrics.create () in
  let pairs =
    [ ("om/inserts", 17); ("om/relabels", 0); ("runtime/steals", 123456789) ]
  in
  List.iter
    (fun (k, n) ->
      Sharded.add (Sharded.counter s k) n;
      Metrics.add (Metrics.counter m k) n)
    pairs;
  Alcotest.(check bool)
    "snapshots bit-identical" true
    (Sharded.metrics_snapshot s = Metrics.snapshot m);
  (* find-or-register returns the same cell; bumps accumulate. *)
  Sharded.incr (Sharded.counter s "om/inserts");
  Alcotest.(check int) "accumulated" 18 (Sharded.read (Sharded.counter s "om/inserts"))

let sharded_domains () =
  (* 8 domains bump one counter concurrently with no synchronization on
     the bump path; after join the total is exact, not approximate. *)
  let s = Sharded.create () in
  let c = Sharded.counter s "test/exact" in
  let n_domains = 8 and per = 50_000 in
  let domains =
    Array.init n_domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per + d do
              Sharded.incr c
            done))
  in
  Array.iter Domain.join domains;
  let expect = (n_domains * per) + (n_domains * (n_domains - 1) / 2) in
  Alcotest.(check int) "exact cross-domain total" expect (Sharded.read c)

(* ------------------------------------------------------------------ *)
(* Probes: uninstalled passthrough, span accounting, alloc_words       *)

let probe_uninstalled () =
  Probe.reset ();
  Alcotest.(check bool) "not installed" false (Probe.is_installed ());
  let r = Probe.region "test/uninstalled" in
  let v = Probe.span r (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 v;
  let st = Probe.stats r in
  Alcotest.(check int) "no spans charged" 0 st.Probe.s_spans;
  Alcotest.(check int) "no words charged" 0 st.Probe.s_minor_words

let probe_span_accounting () =
  Probe.reset ();
  Probe.install ();
  let r = Probe.region "test/span" in
  let n = 10_000 in
  let v =
    Probe.span r (fun () ->
        (* n list conses: exactly 3 words each on the minor heap. *)
        let l = ref [] in
        for i = 1 to n do
          l := i :: !l
        done;
        List.length !l)
  in
  Probe.uninstall ();
  Alcotest.(check int) "thunk result" n v;
  let st = Probe.stats r in
  Alcotest.(check int) "one span" 1 st.Probe.s_spans;
  Alcotest.(check bool) "wall time advanced" true (st.Probe.s_wall_ns > 0);
  Alcotest.(check bool)
    (Printf.sprintf "minor words >= 3n (got %d)" st.Probe.s_minor_words)
    true
    (st.Probe.s_minor_words >= 3 * n);
  (* Exceptions still charge the region, then propagate. *)
  Probe.install ();
  (try Probe.span r (fun () -> failwith "boom") with Failure _ -> ());
  Probe.uninstall ();
  Alcotest.(check int) "span charged on exception" 2 (Probe.stats r).Probe.s_spans;
  (* Regions with activity appear in the sorted snapshot. *)
  Alcotest.(check bool) "in snapshot" true (List.mem_assoc "test/span" (Probe.snapshot ()))

let probe_alloc_words () =
  (* Calibrated: an allocation-free loop reads exactly 0... *)
  let sum = ref 0 in
  let (), w0 =
    Probe.alloc_words (fun () ->
        for i = 1 to 1_000 do
          sum := !sum + i
        done)
  in
  Alcotest.(check int) "allocation-free loop is 0 words" 0 w0;
  (* ...and n conses read exactly 3n words. *)
  let n = 1_000 in
  let l, w1 =
    Probe.alloc_words (fun () ->
        let l = ref [] in
        for i = 1 to n do
          l := i :: !l
        done;
        !l)
  in
  Alcotest.(check int) "list still usable" n (List.length l);
  Alcotest.(check int) "3 words per cons" (3 * n) w1

(* ------------------------------------------------------------------ *)
(* Flight recorder: wraparound, roundtrip, concurrent lanes            *)

let flight_ring () =
  let f = Flight.create ~lanes:2 ~capacity:8 () in
  for i = 0 to 19 do
    Flight.emit f ~lane:0 ~ts:i ~wid:0 (Trace.Sync { frame = i })
  done;
  Alcotest.(check int) "full lane holds capacity" 8 (Flight.lane_length f 0);
  Alcotest.(check int) "overwritten events counted" 12 (Flight.lane_dropped f 0);
  Alcotest.(check int) "untouched lane empty" 0 (Flight.lane_length f 1);
  (* The ring keeps the tail of the run, oldest first. *)
  let frames =
    List.map
      (fun (e : Trace.event) ->
        match e.Trace.kind with Trace.Sync { frame } -> frame | _ -> -1)
      (Flight.lane_events f 0)
  in
  Alcotest.(check (list int)) "tail, oldest first" [ 12; 13; 14; 15; 16; 17; 18; 19 ] frames;
  Flight.clear f;
  Alcotest.(check int) "clear empties" 0 (Flight.lane_length f 0)

let flight_roundtrip () =
  let f = Flight.create ~lanes:3 ~capacity:16 () in
  Flight.emit f ~lane:0 ~ts:1 ~wid:0 (Trace.Spawn { parent = 2; child = 3 });
  Flight.emit f ~lane:0 ~ts:2 ~wid:0 (Trace.Om_relabel { om = "om-packed"; moved = 7 });
  Flight.emit f ~lane:1 ~ts:3 ~wid:1
    (Trace.Trace_split { victim_trace = 4; u1 = 5; u2 = 6; u4 = 7; u5 = 8 });
  Flight.emit f ~lane:1 ~ts:4 ~wid:1 (Trace.Om_insert { om = "om-two-level" });
  let snapshot = Json.Obj [ ("om/inserts", Json.Int 2) ] in
  let bytes = Flight.to_bytes ~snapshot f in
  (* Deterministic image: same state, same bytes. *)
  Alcotest.(check string) "to_bytes deterministic" bytes (Flight.to_bytes ~snapshot f);
  let d = Flight.of_bytes bytes in
  Alcotest.(check int) "capacity" 16 d.Flight.d_capacity;
  Alcotest.(check (array int)) "per-lane counts" [| 2; 2; 0 |] d.Flight.d_counts;
  Alcotest.(check bool) "snapshot embedded" true (d.Flight.d_snapshot = Some snapshot);
  let lane0 = d.Flight.d_events.(0) in
  Alcotest.(check int) "lane 0 decoded" 2 (List.length lane0);
  (match lane0 with
  | [ a; b ] ->
      Alcotest.(check bool) "spawn payload" true (a.Trace.kind = Trace.Spawn { parent = 2; child = 3 });
      Alcotest.(check int) "ts survives" 1 a.Trace.ts;
      Alcotest.(check bool)
        "string field re-interned" true
        (b.Trace.kind = Trace.Om_relabel { om = "om-packed"; moved = 7 })
  | _ -> Alcotest.fail "lane 0 shape");
  (match d.Flight.d_events.(1) with
  | [ a; _ ] ->
      Alcotest.(check bool)
        "5-field payload survives" true
        (a.Trace.kind = Trace.Trace_split { victim_trace = 4; u1 = 5; u2 = 6; u4 = 7; u5 = 8 })
  | _ -> Alcotest.fail "lane 1 shape");
  (* Truncation and bad magic are Failure, not crashes. *)
  Alcotest.check_raises "bad magic" (Failure "Flight: bad magic (not a .spr-flight file)")
    (fun () -> ignore (Flight.of_bytes "XXXXXXXXXXXXXXXX"))

(* qcheck: N domains each own one lane and emit M events concurrently;
   every decoded event is untorn (payload satisfies c = a lxor b) and
   each lane is in its writer's program order.  Single-writer-per-lane
   is the recorder's whole concurrency contract. *)
let flight_concurrent_lanes =
  QCheck.Test.make ~count:25 ~name:"flight: N domains x M events, no tearing, lane order"
    QCheck.(pair (int_range 1 6) (int_range 1 200))
    (fun (n_domains, m_events) ->
      let f = Flight.create ~lanes:n_domains ~capacity:64 () in
      let domains =
        Array.init n_domains (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to m_events - 1 do
                  Flight.emit_raw f ~lane:d ~ts:i ~wid:d ~tag:Flight.tag_spawn ~a:i
                    ~b:(d * 1_000_003) ~c:(i lxor (d * 1_000_003)) ~d:0 ~e:0
                done))
      in
      Array.iter Domain.join domains;
      let ok = ref true in
      for d = 0 to n_domains - 1 do
        List.iter
          (fun (e : Trace.event) ->
            match e.Trace.kind with
            | Trace.Spawn { parent; child } ->
                (* An untorn slot satisfies parent = ts = i and
                   child = the lane's writer constant. *)
                if child <> d * 1_000_003 then ok := false;
                if parent <> e.Trace.ts then ok := false
            | _ -> ok := false)
          (Flight.lane_events f d);
        (* Program order within the lane: ts strictly increasing. *)
        let tss = List.map (fun (e : Trace.event) -> e.Trace.ts) (Flight.lane_events f d) in
        if tss <> List.sort_uniq compare tss then ok := false;
        if Flight.lane_length f d <> min m_events 64 then ok := false;
        if Flight.lane_dropped f d <> max 0 (m_events - 64) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)

let prom_render () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "om/inserts") 42;
  Metrics.set (Metrics.gauge m "sched/time") 17.0;
  let h = Metrics.histogram m "race/queries_per_access" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 9 ];
  Alcotest.(check string) "pinned exposition"
    "# TYPE spr_om_inserts counter\n\
     spr_om_inserts 42\n\
     # TYPE spr_race_queries_per_access histogram\n\
     spr_race_queries_per_access_bucket{le=\"1\"} 2\n\
     spr_race_queries_per_access_bucket{le=\"3\"} 4\n\
     spr_race_queries_per_access_bucket{le=\"7\"} 4\n\
     spr_race_queries_per_access_bucket{le=\"15\"} 5\n\
     spr_race_queries_per_access_bucket{le=\"+Inf\"} 5\n\
     spr_race_queries_per_access_sum 15\n\
     spr_race_queries_per_access_count 5\n\
     # TYPE spr_sched_time gauge\n\
     spr_sched_time 17\n"
    (Prom.render (Metrics.snapshot m));
  Alcotest.(check string) "sanitize" "x_om_2level_q" (Prom.sanitize ~prefix:"x" "om/2level.q")

(* ------------------------------------------------------------------ *)
(* End to end: simulator + SP-hybrid under a recording sink            *)

let end_to_end () =
  let t = Trace.create () in
  let m = Metrics.create () in
  let sink = Sink.make ~trace:t ~metrics:m () in
  let p = Spr_workloads.Progs.fib ~n:8 ~cost:3 () in
  let h = Spr_hybrid.Sp_hybrid.create ~sink p in
  let res = Spr_sched.Sim.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks h) ~sink ~seed:1 ~procs:4 p in
  Alcotest.(check bool) "events recorded" true (Trace.length t > 0);
  (* Every buffered event passes the Chrome schema check once exported. *)
  (match Trace.to_chrome t with
  | Json.Obj _ as j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) -> List.iter (check_chrome_event ~meta_ok:true) evs
      | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "to_chrome should build an object");
  (* Counters agree with the simulator's own accounting, and Theorem
     2's trace structure shows as steals == splits. *)
  let counter key =
    match List.assoc_opt key (Metrics.snapshot m) with
    | Some (Metrics.C n) -> n
    | _ -> Alcotest.failf "missing counter %s" key
  in
  Alcotest.(check int) "sched/steals matches result" res.Spr_sched.Sim.steals
    (counter "sched/steals");
  Alcotest.(check int) "steal = split" (counter "sched/steals") (counter "hybrid/splits");
  let stolen =
    List.length
      (List.filter
         (fun e -> match e.Trace.kind with Trace.Steal _ -> true | _ -> false)
         (Trace.events t))
  in
  Alcotest.(check int) "steal events buffered" res.Spr_sched.Sim.steals stolen

let () =
  Alcotest.run "spr_obs"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick json_printing;
          Alcotest.test_case "parsing" `Quick json_parsing;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "instruments" `Quick metrics_instruments;
          Alcotest.test_case "snapshot/diff/reset" `Quick metrics_snapshot_diff_reset;
          Alcotest.test_case "json + quantiles" `Quick metrics_json_and_quantiles;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick trace_ring;
          Alcotest.test_case "chrome schema" `Quick trace_chrome_schema;
          Alcotest.test_case "to_chrome" `Quick trace_to_chrome;
        ] );
      ("sink", [ Alcotest.test_case "plumbing" `Quick sink_plumbing ]);
      ( "sharded",
        [
          Alcotest.test_case "single-domain parity" `Quick sharded_parity;
          Alcotest.test_case "8-domain exact totals" `Quick sharded_domains;
        ] );
      ( "probe",
        [
          Alcotest.test_case "uninstalled passthrough" `Quick probe_uninstalled;
          Alcotest.test_case "span accounting" `Quick probe_span_accounting;
          Alcotest.test_case "alloc_words calibration" `Quick probe_alloc_words;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring wraparound" `Quick flight_ring;
          Alcotest.test_case "dump roundtrip" `Quick flight_roundtrip;
          QCheck_alcotest.to_alcotest flight_concurrent_lanes;
        ] );
      ("prom", [ Alcotest.test_case "text exposition" `Quick prom_render ]);
      ("end-to-end", [ Alcotest.test_case "sim + hybrid" `Quick end_to_end ]);
    ]
