(* Schedule-exploration harness tests: controller determinism and
   replay, exhaustive DFS enumeration (validated against the serial OM
   oracle), PCT bug-finding on the planted unvalidated-query fault with
   program+schedule shrinking, linearizability of the concurrent OM
   queries, and the controlled real runtime (work conservation, hybrid
   Theorem 9 and the 4s+1 law swept across scheduler seeds, plus the
   lost-wakeup regression). *)

module Hook = Spr_schedhook.Hook
module Control = Spr_schedtest.Control
module Cscript = Spr_schedtest.Cscript
module Explore = Spr_schedtest.Explore
module Sched_runtime = Spr_schedtest.Sched_runtime
module Rng = Spr_util.Rng
module W = Spr_workloads.Progs
module H = Spr_hybrid.Sp_hybrid
open Spr_prog

(* ------------------------------------------------------------------ *)
(* Controller basics on synthetic tasks.                               *)

let yields k () =
  for i = 1 to k do
    Hook.yield ~layer:"test" ~name:(Printf.sprintf "y%d" i) ()
  done

let controller_determinism () =
  let run seed = Control.run (Control.Random seed) ~tasks:[ yields 4; yields 4; yields 4 ] in
  let tr r = Array.to_list (Array.map (fun d -> d.Control.chosen) r.Control.decisions) in
  let a = run 42 and b = run 42 and c = run 43 in
  Alcotest.(check (list int)) "same seed, same trace" (tr a) (tr b);
  Alcotest.(check string)
    "same digest" (Control.digest (tr a)) (Control.digest (tr b));
  (* Not a hard guarantee for every pair of seeds, but 42/43 diverge. *)
  Alcotest.(check bool) "different seed explores differently" true (tr a <> tr c)

let fixed_replay () =
  let tasks () = [ yields 3; yields 2 ] in
  let r = Control.run (Control.Random 7) ~tasks:(tasks ()) in
  let tr = Array.to_list (Array.map (fun d -> d.Control.chosen) r.Control.decisions) in
  let r' =
    Control.run (Control.Fixed { prefix = tr; fallback = `Min_id }) ~tasks:(tasks ())
  in
  let tr' = Array.to_list (Array.map (fun d -> d.Control.chosen) r'.Control.decisions) in
  Alcotest.(check (list int)) "replay reproduces the trace" tr tr';
  Alcotest.(check bool) "completed" true (r'.Control.outcome = Control.Completed)

let dfs_exact_count () =
  (* Two tasks, two Write yields each: 3 decisions per task (the
     registration grant plus one per yield), every pair dependent —
     the schedule space is exactly C(6,3) = 20 interleavings. *)
  let stats, failures =
    Explore.dfs
      ~run:(fun strat ->
        (Control.run strat ~tasks:[ yields 2; yields 2 ], None))
      ()
  in
  Alcotest.(check int) "no failures" 0 (List.length failures);
  Alcotest.(check int) "C(6,3) schedules" 20 stats.Explore.schedules;
  Alcotest.(check int) "nothing pruned (all Write)" 0 stats.Explore.pruned;
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated

(* ------------------------------------------------------------------ *)
(* DFS over concurrent OM scripts.                                     *)

(* A 3-element head chain leaves the head-most prelude element with
   label 0, so the writer's single head-insert rebalances the whole
   small list (4 elements: h3, h2, h1, base get minimal then spread
   labels) during the concurrent phase; the reader's query spans the
   relabeled range, so every torn read the five-pass protocol defends
   against is reachable.  pre.(0) = base, pre.(1..3) = h1..h3, order
   h3 < h2 < h1 < base. *)
let rebalancing_script =
  {
    Cscript.prelude_head = 3;
    prelude_base = 0;
    writer = [ Cscript.W_head_insert ];
    readers = [ [ { Cscript.qx = 0; qy = 1 } ] ];
  }

(* The two-level structure cannot relabel in a handful of ops (labels
   start near 2^59 and buckets split at 62 items), so its exhaustive
   script races plain inserts against queries; its respace/split paths
   are exercised by the randomized linearizability sweep below. *)
let om2_script =
  {
    Cscript.prelude_head = 2;
    prelude_base = 1;
    writer = [ Cscript.W_head_insert; Cscript.W_base_insert; Cscript.W_delete_own ];
    readers = [ [ { Cscript.qx = 0; qy = 2 }; { Cscript.qx = 3; qy = 1 } ] ];
  }

let om_runner m script strat =
  let r = Cscript.run m script strat in
  (r.Cscript.report, r.Cscript.failure)

let dfs_om_oracle ?(check_pruning = true) ?(min_schedules = 100) (name, m) script () =
  let stats, failures = Explore.dfs ~max_schedules:200_000 ~run:(om_runner m script) () in
  (match failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "%s: %d failing schedules, e.g. %s" name (List.length failures) f.Explore.message);
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "explored many schedules (%d)" stats.Explore.schedules)
    true
    (stats.Explore.schedules >= min_schedules);
  if check_pruning then
    Alcotest.(check bool)
      (Printf.sprintf "sleep sets pruned something (%d)" stats.Explore.pruned)
      true (stats.Explore.pruned > 0)

let dfs_finds_unvalidated () =
  let m = Spr_check.Faulty.om_concurrent_unvalidated in
  let stats, failures =
    Explore.dfs ~max_schedules:200_000 ~run:(om_runner m rebalancing_script) ()
  in
  Alcotest.(check bool) "not truncated" false stats.Explore.truncated;
  (match failures with
  | [] -> Alcotest.fail "DFS missed the planted unvalidated-query bug"
  | f :: _ ->
      (* The failing trace must replay to a failure, and stay failing
         after ddmin. *)
      let runner = om_runner m rebalancing_script in
      let replayed =
        snd (runner (Control.Fixed { prefix = f.Explore.trace; fallback = `Min_id }))
      in
      Alcotest.(check bool) "failing trace replays to a failure" true (replayed <> None);
      let shrunk = Explore.shrink_schedule ~run:runner f.Explore.trace in
      Alcotest.(check bool) "shrunk trace still fails" true
        (snd (runner (Control.Fixed { prefix = shrunk; fallback = `Min_id })) <> None);
      Alcotest.(check bool) "shrunk trace no longer than original" true
        (List.length shrunk <= List.length f.Explore.trace))

(* ------------------------------------------------------------------ *)
(* PCT on the planted fault, with program + schedule shrinking.        *)

let pct_finds_unvalidated () =
  let m = Spr_check.Faulty.om_concurrent_unvalidated in
  (* A slightly larger script than the DFS one: PCT must find the bug
     without enumerating. *)
  (* pre.(0) = base, pre.(1) = b1 (huge stable label), pre.(2) = h1,
     pre.(3) = h2; the queries pair elements the third writer op
     relabels, where a stale-vs-fresh comparison flips the answer. *)
  let script =
    {
      Cscript.prelude_head = 2;
      prelude_base = 1;
      writer = [ Cscript.W_base_insert; Cscript.W_head_insert; Cscript.W_head_insert ];
      readers = [ [ { Cscript.qx = 0; qy = 2 }; { Cscript.qx = 2; qy = 3 } ] ];
    }
  in
  let seeds = List.init 200 (fun i -> i) in
  let _, failures = Explore.pct_search ~seeds ~depth:2 ~steps:40 ~run:(om_runner m script) in
  match failures with
  | [] -> Alcotest.fail "PCT (d=2) missed the planted bug in 200 seeds"
  | _ :: _ ->
      (* Identify the seed that failed so the whole repro (script +
         schedule) shrinks deterministically under that one strategy. *)
      let failing_seed =
        List.find
          (fun seed ->
            snd (om_runner m script (Control.Pct { seed; depth = 2; steps = 40 })) <> None)
          seeds
      in
      let strategy = Control.Pct { seed = failing_seed; depth = 2; steps = 40 } in
      let still_failing s = snd (om_runner m s strategy) <> None in
      let small = Cscript.shrink ~still_failing script in
      Alcotest.(check bool) "shrunk script still fails" true (still_failing small);
      Alcotest.(check bool) "script did not grow" true
        (List.length small.Cscript.writer <= List.length script.Cscript.writer);
      (* Now minimize the schedule of the shrunk script. *)
      let runner = om_runner m small in
      let report, fail = runner strategy in
      Alcotest.(check bool) "shrunk script fails under the found strategy" true (fail <> None);
      let trace =
        Array.to_list (Array.map (fun d -> d.Control.chosen) report.Control.decisions)
      in
      let min_trace = Explore.shrink_schedule ~run:runner trace in
      Alcotest.(check bool) "minimized schedule still fails" true
        (snd (runner (Control.Fixed { prefix = min_trace; fallback = `Min_id })) <> None);
      Alcotest.(check bool) "schedule got no longer" true
        (List.length min_trace <= List.length trace)

(* ------------------------------------------------------------------ *)
(* Linearizability of concurrent OM queries (qcheck).                  *)

let qcheck_linearizable (name, m) =
  QCheck2.Test.make ~count:25
    ~name:(Printf.sprintf "%s: concurrent queries match some serial state" name)
    QCheck2.Gen.(pair (0 -- 1_000_000) (0 -- 1_000_000))
    (fun (script_seed, sched_seed) ->
      let rng = Rng.create script_seed in
      let script =
        Cscript.random ~rng
          ~prelude_head:(2 + Rng.int rng 2)
          ~prelude_base:(1 + Rng.int rng 2)
          ~writer_len:(2 + Rng.int rng 3)
          ~readers:(1 + Rng.int rng 2)
          ~queries:2
      in
      match (Cscript.run m script (Control.Random sched_seed)).Cscript.failure with
      | None -> true
      | Some msg ->
          QCheck2.Test.fail_reportf "seed (%d, %d): %s@\nscript: %a" script_seed sched_seed
            msg Cscript.pp script)

(* The two-level structure's capacity-crossing path: a bucket at 62
   items splits on the writer's first insert, claiming ~31 items into
   the fresh bucket while readers race the move.  Too many yield points
   for exhaustive DFS, so this sweeps seeded-random schedules. *)
let om2_split_script =
  {
    Cscript.prelude_head = 0;
    prelude_base = 61;
    writer = [ Cscript.W_base_insert; Cscript.W_base_insert ];
    readers = [ [ { Cscript.qx = 1; qy = 30 }; { Cscript.qx = 30; qy = 60 } ] ];
  }

let om2_split_race () =
  for seed = 0 to 29 do
    match
      (Cscript.run (module Spr_om.Om_concurrent2) om2_split_script (Control.Random seed))
        .Cscript.failure
    with
    | None -> ()
    | Some msg -> Alcotest.failf "seed %d: %s" seed msg
  done

(* ------------------------------------------------------------------ *)
(* Controlled real runtime: schedule-independent properties under      *)
(* many deterministic schedules (satellites 1 and 3).                  *)

(* Same instrumentation as test_runtime's hybrid_on_runtime, inside a
   controlled run: every started thread queries all previously
   completed ones against the a-posteriori reference. *)
let hybrid_controlled ~workers ~strategy p =
  let pt = Prog_tree.of_program p in
  let h = H.create p in
  let started = ref [] in
  let slock = Mutex.create () in
  let errors = ref [] in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
    let current = u.Fj_program.tid in
    let snapshot = Mutex.protect slock (fun () -> !started) in
    List.iter
      (fun e ->
        let want_prec = Spr_sptree.Sp_reference.precedes (leaf e) (leaf current) in
        let want_par = Spr_sptree.Sp_reference.parallel (leaf e) (leaf current) in
        let got_prec = H.precedes h ~executed:e ~current in
        let got_par = H.parallel h ~executed:e ~current in
        if got_prec <> want_prec || got_par <> want_par then
          Mutex.protect slock (fun () -> errors := (e, current) :: !errors))
      snapshot;
    Mutex.protect slock (fun () -> started := current :: !started);
    0
  in
  let out = Sched_runtime.run ~hooks:(H.hooks ~on_thread_user h) ~workers strategy p in
  (out, H.stats h, !errors)

let runtime_properties_sweep () =
  (* >= 50 scheduler seeds; each run is fully deterministic, so this
     sweep is a reproducible sample of 50 distinct interleavings. *)
  let p = W.fib ~n:5 () in
  let threads = Fj_program.thread_count p in
  for seed = 0 to 49 do
    let out, st, errors = hybrid_controlled ~workers:2 ~strategy:(Control.Random seed) p in
    (match out.Sched_runtime.control with
    | Control.Completed -> ()
    | Control.Deadlock ids ->
        Alcotest.failf "seed %d: deadlock (tasks %s)" seed
          (String.concat "," (List.map string_of_int ids))
    | Control.Livelock -> Alcotest.failf "seed %d: livelock" seed);
    let res = Option.get out.Sched_runtime.result in
    Alcotest.(check int)
      (Printf.sprintf "work conservation (seed %d)" seed)
      threads res.Spr_runtime.Runtime.threads_run;
    (match errors with
    | [] -> ()
    | (e, c) :: _ ->
        Alcotest.failf "seed %d: %d wrong SP answers, e.g. (t%d, t%d)" seed
          (List.length errors) e c);
    Alcotest.(check int)
      (Printf.sprintf "4s+1 (seed %d)" seed)
      ((4 * res.Spr_runtime.Runtime.steals) + 1)
      st.H.traces
  done

let runtime_determinism () =
  let p = W.fib ~n:5 () in
  let go () = Sched_runtime.run ~workers:2 (Control.Random 11) p in
  let a = go () and b = go () in
  Alcotest.(check (list int)) "same strategy, same decision trace" a.Sched_runtime.trace
    b.Sched_runtime.trace;
  Alcotest.(check string) "same digest"
    (Control.digest a.Sched_runtime.trace)
    (Control.digest b.Sched_runtime.trace)

let runtime_no_lost_wakeup () =
  (* Regression companion to the lost-wakeup audit in runtime.ml: a
     park/resume race would strand the stalled frame and show up here
     as a livelock (workers spinning on empty deques forever) or a
     deadlock.  deep_spawn maximizes stall/resume traffic: every frame
     parks at its sync whenever the child is stolen. *)
  let p = W.deep_spawn ~cost:1 ~depth:8 () in
  let threads = Fj_program.thread_count p in
  for seed = 0 to 49 do
    let out = Sched_runtime.run ~workers:3 (Control.Random seed) p in
    (match out.Sched_runtime.control with
    | Control.Completed -> ()
    | _ -> Alcotest.failf "seed %d: park/resume hang" seed);
    Alcotest.(check int)
      (Printf.sprintf "all threads ran (seed %d)" seed)
      threads
      (Option.get out.Sched_runtime.result).Spr_runtime.Runtime.threads_run
  done

let () =
  Alcotest.run "spr_schedtest"
    [
      ( "controller",
        [
          Alcotest.test_case "determinism" `Quick controller_determinism;
          Alcotest.test_case "fixed replay" `Quick fixed_replay;
          Alcotest.test_case "dfs exact count" `Quick dfs_exact_count;
        ] );
      ( "dfs-om",
        [
          Alcotest.test_case "om-concurrent agrees with oracle" `Slow
            (dfs_om_oracle
               ("om-concurrent", (module Spr_om.Om_concurrent))
               rebalancing_script);
          Alcotest.test_case "om-concurrent-2level agrees with oracle" `Quick
            (dfs_om_oracle ~check_pruning:false ~min_schedules:50
               ("om-concurrent-2level", (module Spr_om.Om_concurrent2))
               om2_script);
          Alcotest.test_case "finds unvalidated query bug" `Quick dfs_finds_unvalidated;
        ] );
      ( "pct",
        [ Alcotest.test_case "finds and shrinks planted bug" `Quick pct_finds_unvalidated ] );
      ( "linearizability",
        [
          QCheck_alcotest.to_alcotest
            (qcheck_linearizable ("om-concurrent", (module Spr_om.Om_concurrent)));
          QCheck_alcotest.to_alcotest
            (qcheck_linearizable ("om-concurrent-2level", (module Spr_om.Om_concurrent2)));
          Alcotest.test_case "om-2level bucket split race (30 seeds)" `Quick om2_split_race;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "properties sweep (50 seeds)" `Quick runtime_properties_sweep;
          Alcotest.test_case "determinism" `Quick runtime_determinism;
          Alcotest.test_case "no lost wakeup (50 seeds)" `Quick runtime_no_lost_wakeup;
        ] );
    ]
