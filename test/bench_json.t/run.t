Machine-readable benchmark output (`spr-bench <exp> --json FILE`) and
the regression gate (spr-regress) that compares two such files.

A smoke-size run emits the versioned schema:

  $ spr-bench om --json out.json --json-n 2000 > /dev/null
  $ jq -r '.schema_version' out.json
  1
  $ jq -r '.experiments[]' out.json
  om

Entry identity — order, key set, backends, patterns, sizes — is
deterministic (only the timing values inside the entries vary run to
run):

  $ jq -r '.entries[] | "\(.backend) \(.pattern) n=\(.n) \(.metric) \(.kind)"' out.json
  om-two-level append n=2000 ns_per_insert time
  om-two-level append n=2000 items_moved_per_insert counter
  om-two-level hammer n=2000 ns_per_insert time
  om-two-level hammer n=2000 items_moved_per_insert counter
  om-two-level random n=2000 ns_per_insert time
  om-two-level random n=2000 items_moved_per_insert counter
  om-packed append n=2000 ns_per_insert time
  om-packed append n=2000 items_moved_per_insert counter
  om-packed hammer n=2000 ns_per_insert time
  om-packed hammer n=2000 items_moved_per_insert counter
  om-packed random n=2000 ns_per_insert time
  om-packed random n=2000 items_moved_per_insert counter
  sp-depa fork-chain n=2000 ns_per_query time
  sp-depa fork-chain n=2000 avg_label_words counter
  sp-depa deep-nest n=2000 ns_per_query time
  sp-depa deep-nest n=2000 avg_label_words counter
  sp-depa balanced n=2000 ns_per_query time
  sp-depa balanced n=2000 avg_label_words counter

Every entry carries numeric samples and quantiles:

  $ jq -r '[.entries[] | (.median|type), (.q25|type), (.q75|type), (.q90|type)] | unique | .[]' out.json
  number
  $ jq -r '[.entries[] | .samples | type] | unique | .[]' out.json
  array
  $ jq -r '[.entries[] | .samples[] | type] | unique | .[]' out.json
  number

Counter entries (items moved per insert) are exact for the fixed seed:
a second run reproduces them bit-for-bit, timing aside:

  $ spr-bench om --json out2.json --json-n 2000 > /dev/null
  $ jq -c '[.entries[] | select(.kind=="counter") | {backend,pattern,median}]' out.json > c1
  $ jq -c '[.entries[] | select(.kind=="counter") | {backend,pattern,median}]' out2.json > c2
  $ cmp c1 c2

The gate accepts a self-comparison:

  $ spr-regress out.json out.json
  regress: OK — 18 entries within 1.50x of baseline

A synthetically slowed timing entry trips it (exit 1):

  $ jq '(.entries[] | select(.kind=="time") | .median) |= . * 10' out.json > slow.json
  $ spr-regress out.json slow.json > /dev/null
  [1]

So does a drifted deterministic counter:

  $ jq '(.entries[] | select(.kind=="counter") | .median) |= . + 1' out.json > drift.json
  $ spr-regress out.json drift.json > /dev/null
  [1]

And a candidate that lost entries:

  $ jq '.entries |= .[0:6]' out.json > partial.json
  $ spr-regress out.json partial.json > /dev/null
  [1]

Malformed input is a usage error (exit 2), not a crash:

  $ echo 'not json' > bad.json
  $ spr-regress out.json bad.json 2> /dev/null
  [2]
