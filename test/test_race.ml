(* Race-detector validation: the Nondeterminator protocol against the
   naive all-pairs checker, with every serial SP-maintenance algorithm
   as the oracle, plus SP-hybrid as the parallel oracle, plus the
   lockset (All-Sets-style) extension. *)

open Spr_prog
module Rng = Spr_util.Rng
module W = Spr_workloads.Progs

let serial_racy_locs algo p =
  let pt = Prog_tree.of_program p in
  (Spr_race.Drivers.detect_serial pt algo).Spr_race.Drivers.racy_locs

(* ------------------------------------------------------------------ *)
(* Planted-bug workloads.                                              *)

let dc_sum_clean () =
  let p = W.dc_sum ~leaves:32 () in
  let pt = Prog_tree.of_program p in
  Alcotest.(check bool) "naive says race-free" true (Spr_race.Naive_checker.race_free pt);
  List.iter
    (fun (name, algo) ->
      Alcotest.(check (list int)) (name ^ ": no races") [] (serial_racy_locs algo p))
    Spr_core.Algorithms.all

let dc_sum_buggy () =
  let p = W.dc_sum ~buggy:true ~leaves:32 () in
  let pt = Prog_tree.of_program p in
  let want = Spr_race.Naive_checker.racy_locs pt in
  Alcotest.(check bool) "bug planted" true (want <> []);
  List.iter
    (fun (name, algo) ->
      Alcotest.(check (list int)) (name ^ ": finds planted races") want (serial_racy_locs algo p))
    Spr_core.Algorithms.all

(* Application workloads: parallel mergesort and blocked matmul, clean
   and with their classic planted bugs (overlapping scratch; missing
   sync between the two multiplication waves). *)
let applications () =
  let cases =
    [
      ("mergesort", fun buggy -> W.mergesort ~buggy ~n:64 ());
      ("matmul", fun buggy -> W.matmul ~buggy ~n:8 ());
    ]
  in
  List.iter
    (fun (name, make) ->
      let clean = Prog_tree.of_program (make false) in
      Alcotest.(check bool) (name ^ " clean is race-free") true
        (Spr_race.Naive_checker.race_free clean);
      Alcotest.(check (list int))
        (name ^ " detector agrees clean")
        []
        (Spr_race.Drivers.detect_serial clean Spr_core.Algorithms.sp_order)
          .Spr_race.Drivers.racy_locs;
      let buggy = Prog_tree.of_program (make true) in
      let want = Spr_race.Naive_checker.racy_locs buggy in
      Alcotest.(check bool) (name ^ " bug planted") true (want <> []);
      List.iter
        (fun (oracle, algo) ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s: %s localizes the bug" name oracle)
            want
            (Spr_race.Drivers.detect_serial buggy algo).Spr_race.Drivers.racy_locs)
        [ ("sp-order", Spr_core.Algorithms.sp_order); ("sp-bags", Spr_core.Algorithms.sp_bags) ];
      (* ... and through SP-hybrid on the simulator at P=4. *)
      let r = Spr_race.Drivers.detect_hybrid ~seed:3 ~procs:4 (make true) in
      Alcotest.(check bool) (name ^ " hybrid finds it") true (r.Spr_race.Drivers.racy_locs <> []);
      List.iter
        (fun l -> Alcotest.(check bool) (name ^ " hybrid loc real") true (List.mem l want))
        r.Spr_race.Drivers.racy_locs)
    cases

(* ------------------------------------------------------------------ *)
(* Random cross-validation: detector (serial, any oracle) = naive.     *)

let random_serial_matches_naive =
  QCheck2.Test.make ~count:80 ~name:"serial detector = naive checker (random programs)"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:8
          ~accesses_per_thread:4 ()
      in
      let pt = Prog_tree.of_program p in
      let want = Spr_race.Naive_checker.racy_locs pt in
      List.for_all
        (fun (_, algo) -> serial_racy_locs algo p = want)
        [ ("sp-order", Spr_core.Algorithms.sp_order); ("sp-bags", Spr_core.Algorithms.sp_bags) ])

(* ------------------------------------------------------------------ *)
(* Hybrid (parallel) detection.                                        *)

let hybrid_finds_planted () =
  let p = W.dc_sum ~buggy:true ~leaves:32 () in
  let pt = Prog_tree.of_program p in
  let want = Spr_race.Naive_checker.racy_locs pt in
  List.iter
    (fun procs ->
      let r = Spr_race.Drivers.detect_hybrid ~seed:17 ~procs p in
      Alcotest.(check bool)
        (Printf.sprintf "hybrid P=%d finds races" procs)
        true
        (r.Spr_race.Drivers.racy_locs <> []);
      (* Soundness: everything reported is a real race location. *)
      List.iter
        (fun l -> Alcotest.(check bool) "reported loc is racy" true (List.mem l want))
        r.Spr_race.Drivers.racy_locs)
    [ 1; 2; 4; 8 ]

let hybrid_clean_stays_clean =
  QCheck2.Test.make ~count:40 ~name:"hybrid reports nothing on race-free programs"
    QCheck2.Gen.(pair (0 -- 1_000_000) (1 -- 6))
    (fun (seed, procs) ->
      let p = W.dc_sum ~leaves:16 () in
      let r = Spr_race.Drivers.detect_hybrid ~seed ~procs p in
      r.Spr_race.Drivers.racy_locs = [])

let hybrid_sound_on_random =
  QCheck2.Test.make ~count:60 ~name:"hybrid is sound on random programs"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 50) (1 -- 6))
    (fun (seed, threads, procs) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:6
          ~accesses_per_thread:3 ()
      in
      let pt = Prog_tree.of_program p in
      let want = Spr_race.Naive_checker.racy_locs pt in
      let r = Spr_race.Drivers.detect_hybrid ~seed ~procs p in
      List.for_all (fun l -> List.mem l want) r.Spr_race.Drivers.racy_locs)

(* Regression: the shadow-reader policy.  With a single reader slot,
   an out-of-order (parallel) schedule could observe readers r1, r2
   (r1 recorded first, r2 ∥ r1 arriving second and therefore dropped);
   a later write parallel only to r2 then went unreported.  The
   two-reader shadow keeps both, and detection on programs of <= 5
   threads is exactly the naive checker: the smallest program that can
   record three pairwise-parallel readers before a conflicting write —
   the remaining, documented approximation — needs a 6-unit thread
   budget. *)
let hybrid_two_reader_exact_small =
  QCheck2.Test.make ~count:300 ~name:"hybrid = naive on small racy programs (two-reader shadow)"
    QCheck2.Gen.(triple (0 -- 1_000_000) (1 -- 4) (1 -- 3))
    (fun (seed, procs, sim_seed) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads:(3 + (seed mod 3)) ~spawn_prob:0.7
          ~locs:1 ~accesses_per_thread:3 ()
      in
      let pt = Prog_tree.of_program p in
      let r = Spr_race.Drivers.detect_hybrid ~seed:sim_seed ~procs p in
      r.Spr_race.Drivers.racy_locs = Spr_race.Naive_checker.racy_locs pt)

(* The deterministic sweep the bug was originally found in (single
   reader: 41 misses in this space; two readers: none). *)
let hybrid_two_reader_sweep () =
  let misses = ref 0 and total = ref 0 in
  for seed = 1 to 2_000 do
    let p =
      W.random_prog ~rng:(Rng.create seed) ~threads:(3 + (seed mod 4)) ~spawn_prob:0.7 ~locs:1
        ~accesses_per_thread:3 ()
    in
    let pt = Prog_tree.of_program p in
    let want = Spr_race.Naive_checker.racy_locs pt in
    for procs = 1 to 4 do
      for sim_seed = 1 to 3 do
        incr total;
        let r = Spr_race.Drivers.detect_hybrid ~seed:sim_seed ~procs p in
        if r.Spr_race.Drivers.racy_locs <> want then incr misses
      done
    done
  done;
  Alcotest.(check int) (Printf.sprintf "0 misses in %d runs" !total) 0 !misses

let hybrid_serial_complete =
  (* On one worker the hybrid run is the serial left-to-right walk, so
     the Feng-Leiserson completeness argument applies exactly. *)
  QCheck2.Test.make ~count:60 ~name:"hybrid on P=1 = naive checker"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:6
          ~accesses_per_thread:3 ()
      in
      let pt = Prog_tree.of_program p in
      let r = Spr_race.Drivers.detect_hybrid ~seed ~procs:1 p in
      r.Spr_race.Drivers.racy_locs = Spr_race.Naive_checker.racy_locs pt)

(* ------------------------------------------------------------------ *)
(* Lockset (All-Sets) extension.                                       *)

let lockset_discipline () =
  let check mode want_lockset_race =
    let p = W.locked_counter ~mode ~leaves:16 () in
    let pt = Prog_tree.of_program p in
    let vanilla = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
    (* Parallel writes to loc 0 are always a determinacy race. *)
    Alcotest.(check bool) "determinacy race present" true
      (vanilla.Spr_race.Drivers.racy_locs <> []);
    let locked = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
    Alcotest.(check bool)
      (Printf.sprintf "lockset race expectation (%b)" want_lockset_race)
      want_lockset_race
      (locked.Spr_race.Drivers.racy_locs <> [])
  in
  check `Common_lock false;
  check `Distinct_locks true;
  check `No_locks true

let lockset_hybrid () =
  (* The parallel, on-the-fly, lock-aware configuration. *)
  List.iter
    (fun procs ->
      let clean = W.locked_counter ~mode:`Common_lock ~leaves:12 () in
      let r = Spr_race.Drivers.detect_hybrid_locked ~seed:5 ~procs clean in
      Alcotest.(check (list int)) "common lock clean" [] r.Spr_race.Drivers.racy_locs;
      let buggy = W.locked_counter ~mode:`Distinct_locks ~leaves:12 () in
      let r = Spr_race.Drivers.detect_hybrid_locked ~seed:5 ~procs buggy in
      Alcotest.(check bool)
        (Printf.sprintf "distinct locks race (P=%d)" procs)
        true
        (r.Spr_race.Drivers.racy_locs <> []))
    [ 1; 2; 4 ]

let lockset_matches_naive =
  QCheck2.Test.make ~count:60 ~name:"lockset detector = naive lock-aware checker"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:5
          ~accesses_per_thread:3 ~lock_count:3 ()
      in
      let pt = Prog_tree.of_program p in
      let locked = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
      locked.Spr_race.Drivers.racy_locs = Spr_race.Naive_checker.racy_locs_locked pt)

(* Release protocol: deleting threads that left shadow memory must not
   change any verdict, and must keep the SP-order structures close to
   the live frontier instead of the whole history. *)
let releasing_matches_plain () =
  (* Verdict equivalence on the planted-bug workloads (where shadow
     churn is low)... *)
  List.iter
    (fun buggy ->
      let p = W.dc_sum ~buggy ~leaves:128 ~grain:2 () in
      let pt = Prog_tree.of_program p in
      let plain = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
      let rel = Spr_race.Drivers.detect_serial_releasing pt in
      Alcotest.(check (list int))
        "same racy locations" plain.Spr_race.Drivers.racy_locs
        rel.Spr_race.Drivers.result.Spr_race.Drivers.racy_locs)
    [ false; true ];
  (* ... and actual memory reclamation where shadow slots churn: many
     threads hammering a few locations. *)
  let p =
    W.random_prog ~rng:(Rng.create 5) ~threads:300 ~spawn_prob:0.4 ~locs:3
      ~accesses_per_thread:4 ()
  in
  let pt = Prog_tree.of_program p in
  let rel = Spr_race.Drivers.detect_serial_releasing pt in
  Alcotest.(check bool)
    (Printf.sprintf "threads released (%d)" rel.Spr_race.Drivers.released)
    true
    (rel.Spr_race.Drivers.released > 50);
  Alcotest.(check bool)
    (Printf.sprintf "final size %d below peak %d" rel.Spr_race.Drivers.final_om_nodes
       rel.Spr_race.Drivers.peak_om_nodes)
    true
    (rel.Spr_race.Drivers.final_om_nodes < rel.Spr_race.Drivers.peak_om_nodes)

let releasing_matches_naive =
  QCheck2.Test.make ~count:60 ~name:"releasing detector = naive checker"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:6
          ~accesses_per_thread:4 ()
      in
      let pt = Prog_tree.of_program p in
      let rel = Spr_race.Drivers.detect_serial_releasing pt in
      rel.Spr_race.Drivers.result.Spr_race.Drivers.racy_locs
      = Spr_race.Naive_checker.racy_locs pt)

(* ------------------------------------------------------------------ *)
(* Fused zero-allocation pipeline (arena tree + Om_fused + packed
   shadow cells): identical verdicts and query counts to the boxed
   detect_serial with sp-order, including across repeated in-place
   reruns of one pipeline instance.                                    *)

let fused_matches_serial =
  QCheck2.Test.make ~count:120 ~name:"fused pipeline = boxed detect_serial (races + queries)"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~locs:8
          ~accesses_per_thread:4 ()
      in
      let pt = Prog_tree.of_program p in
      let boxed = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
      let fused = Spr_race.Drivers.detect_serial_fused p in
      fused.Spr_race.Drivers.races = boxed.Spr_race.Drivers.races
      && fused.Spr_race.Drivers.racy_locs = boxed.Spr_race.Drivers.racy_locs
      && fused.Spr_race.Drivers.sp_queries = boxed.Spr_race.Drivers.sp_queries)

let fused_rerun_deterministic () =
  (* One pipeline instance, rewound in place: every rerun must
     reproduce the first run exactly (reset correctness of the arena,
     the fused OM and the packed detector). *)
  List.iter
    (fun buggy ->
      let p = W.dc_sum ~buggy ~leaves:64 () in
      let t = Spr_race.Drivers.Fused.create p in
      Spr_race.Drivers.Fused.run t;
      let first = Spr_race.Drivers.Fused.result t in
      for _ = 1 to 5 do
        Spr_race.Drivers.Fused.run t;
        let again = Spr_race.Drivers.Fused.result t in
        Alcotest.(check bool) "identical rerun" true (again = first)
      done;
      let pt = Prog_tree.of_program p in
      let boxed = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
      Alcotest.(check (list int))
        "matches boxed" boxed.Spr_race.Drivers.racy_locs first.Spr_race.Drivers.racy_locs)
    [ false; true ]

(* Corollary 6 bookkeeping: O(1) queries per access. *)
let query_budget () =
  let p = W.dc_sum ~leaves:64 () in
  let pt = Prog_tree.of_program p in
  let accesses = ref 0 in
  Fj_program.iter_threads p (fun u -> accesses := !accesses + Array.length u.Fj_program.accesses);
  let r = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
  Alcotest.(check bool)
    (Printf.sprintf "<= 3 queries per access (%d for %d)" r.Spr_race.Drivers.sp_queries !accesses)
    true
    (r.Spr_race.Drivers.sp_queries <= 3 * !accesses)

let () =
  Alcotest.run "spr_race"
    [
      ( "serial",
        [
          Alcotest.test_case "dc_sum clean" `Quick dc_sum_clean;
          Alcotest.test_case "dc_sum buggy" `Quick dc_sum_buggy;
          Alcotest.test_case "applications (mergesort, matmul)" `Quick applications;
          Alcotest.test_case "query budget" `Quick query_budget;
          Alcotest.test_case "release protocol" `Quick releasing_matches_plain;
          Alcotest.test_case "fused pipeline rerun determinism" `Quick fused_rerun_deterministic;
          QCheck_alcotest.to_alcotest fused_matches_serial;
          QCheck_alcotest.to_alcotest random_serial_matches_naive;
          QCheck_alcotest.to_alcotest releasing_matches_naive;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "finds planted" `Quick hybrid_finds_planted;
          Alcotest.test_case "two-reader shadow sweep" `Quick hybrid_two_reader_sweep;
          QCheck_alcotest.to_alcotest hybrid_clean_stays_clean;
          QCheck_alcotest.to_alcotest hybrid_sound_on_random;
          QCheck_alcotest.to_alcotest hybrid_two_reader_exact_small;
          QCheck_alcotest.to_alcotest hybrid_serial_complete;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "lock discipline" `Quick lockset_discipline;
          Alcotest.test_case "lock discipline (hybrid, parallel)" `Quick lockset_hybrid;
          QCheck_alcotest.to_alcotest lockset_matches_naive;
        ] );
    ]
