The clock-based happens-before detectors at the command line: both
must be registered under the names the ISSUE pins, answer detection
queries byte-identically to the SP-order oracles, and fail cleanly on
unknown names.

Vector clocks and tree clocks report the same races, the same
locations and the same query count as the fused SP-order baseline:

  $ spview detect --workload dcsum-buggy --size 4 --algo sp-order-fused > fused.out
  $ cat fused.out
  detection (sp-order-fused): 2 race report(s) on locations [17; 20], 9 SP queries
    loc 17: t0 (W) vs t1 (W)
    loc 20: t3 (W) vs t4 (W)

(the header names the detector, so normalize it before diffing)

  $ spview detect --workload dcsum-buggy --size 4 --algo hb-vector \
  >   | sed 's/hb-vector/sp-order-fused/' | diff - fused.out
  $ spview detect --workload dcsum-buggy --size 4 --algo hb-tree
  detection (hb-tree): 2 race report(s) on locations [17; 20], 9 SP queries
    loc 17: t0 (W) vs t1 (W)
    loc 20: t3 (W) vs t4 (W)

An unknown detector name exits 1 listing the full registry, clock
detectors included:

  $ spview detect --workload dcsum-buggy --size 4 --algo hb-bogus
  spview: unknown algorithm "hb-bogus" (valid: english-hebrew, offset-span, sp-bags, sp-order, sp-depa, sp-order-fused, hb-vector, hb-tree, sp-order-packed, sp-order-implicit, sp-bags-norank, lca-reference)
  [1]

The streaming ingestion service accepts the same detectors as SP
oracles, with byte-identical reports:

  $ spingest capture --workload dcsum-buggy --size 8 --seed 1 -o dc.spr-trace
  captured 1 dcsum-buggy program(s) (size 8, seed 1): 205 bytes -> dc.spr-trace

  $ spingest run dc.spr-trace --oracle sp-order-fused > fused-run.out
  $ spingest run dc.spr-trace --oracle hb-vector | diff - fused-run.out
  $ spingest run dc.spr-trace --oracle hb-tree | diff - fused-run.out
  $ cat fused-run.out
  dc.spr-trace: 1 program(s)
    prog 0: 4 race report(s) on locations [34; 37; 41; 44], 19 SP queries

Clock oracles track the evolving stream clock, so they cannot be
combined with deferred sharded shadow batches:

  $ spingest run dc.spr-trace --oracle hb-vector --shards 2
  spingest: clock oracles (hb-vector, hb-tree) require --shards 1
  [1]

Unknown oracle names exit 1 with the valid set:

  $ spingest run dc.spr-trace --oracle bogus
  spingest: unknown oracle "bogus" (valid: sp-order-fused, hb-vector, hb-tree)
  [1]
