The ingestion service CLI: capture a workload as a .spr-trace file,
replay it through the resident detector server, and check that the
decoder's totality contract holds at the command line — malformed
input exits 1 with a byte/frame-located diagnostic, never a backtrace
or a silent partial result.

Capture and replay; a planted-bug workload reports its races:

  $ spingest capture --workload dcsum-buggy --size 8 --seed 1 -o dc.spr-trace
  captured 1 dcsum-buggy program(s) (size 8, seed 1): 205 bytes -> dc.spr-trace
  $ spingest run dc.spr-trace
  dc.spr-trace: 1 program(s)
    prog 0: 4 race report(s) on locations [34; 37; 41; 44], 19 SP queries

Sharding the shadow memory across domains changes nothing observable:

  $ spingest run dc.spr-trace --shards 3 > sharded.out
  $ spingest run dc.spr-trace | diff - sharded.out

A race-free workload:

  $ spingest capture --workload fib --size 6 --seed 1 -o fib.spr-trace
  captured 1 fib program(s) (size 6, seed 1): 153 bytes -> fib.spr-trace
  $ spingest run fib.spr-trace
  fib.spr-trace: 1 program(s)
    prog 0: 0 race report(s) on locations [], 0 SP queries

Multi-program traces get per-program reports from one resident server:

  $ spingest capture --workload random --size 12 --seed 7 --count 3 -o r.spr-trace
  captured 3 random program(s) (size 12, seed 7): 265 bytes -> r.spr-trace
  $ spingest run r.spr-trace
  r.spr-trace: 3 program(s)
    prog 0: 3 race report(s) on locations [3; 5; 6], 25 SP queries
    prog 1: 2 race report(s) on locations [2], 20 SP queries
    prog 2: 2 race report(s) on locations [1; 5], 10 SP queries

Unknown workloads fail cleanly:

  $ spingest capture --workload nope -o x.spr-trace
  spingest: unknown workload "nope" (valid: dcsum, dcsum-buggy, fib, deep, wide, locked, locked-buggy, random, serial, mergesort, mergesort-buggy, matmul, matmul-buggy, shared-readers, adversarial)
  [1]

Not a trace file:

  $ printf 'junk' > junk.spr-trace
  $ spingest run junk.spr-trace
  spingest: junk.spr-trace: offset 0 (frame 0): bad magic (not a .spr-trace file)
  [1]

Truncation is diagnosed at the cut, and decoding never yields a
partial result — the complete programs before the cut are reported as
an error, not silently accepted:

  $ head -c 100 dc.spr-trace > cut.spr-trace
  $ spingest run cut.spr-trace
  spingest: cut.spr-trace: offset 100 (frame 49): truncated varint (unexpected end of trace)
  [1]

A corrupted frame tag is pinned to its offset and frame ordinal
(byte 11 is the first PROG tag, right after the 11-byte header):

  $ cp dc.spr-trace bad.spr-trace
  $ dd if=/dev/zero of=bad.spr-trace bs=1 count=1 seek=11 conv=notrunc 2>/dev/null
  $ spingest run bad.spr-trace
  spingest: bad.spr-trace: offset 12 (frame 0): expected a PROG frame, got tag 0
  [1]

One bad file does not stop the others (but the exit code remembers):

  $ spingest run fib.spr-trace junk.spr-trace dc.spr-trace
  spingest: junk.spr-trace: offset 0 (frame 0): bad magic (not a .spr-trace file)
  fib.spr-trace: 1 program(s)
    prog 0: 0 race report(s) on locations [], 0 SP queries
  dc.spr-trace: 1 program(s)
    prog 0: 4 race report(s) on locations [34; 37; 41; 44], 19 SP queries
  [1]

The bench smoke emits the bench-json schema (timings vary, so only
the deterministic shape is pinned):

  $ spingest bench --smoke --shards 1,2 --seed 1 --json smoke.json > /dev/null
  $ jq -r '.schema_version, (.experiments | join(",")), (.entries | length)' smoke.json
  1
  ingest
  12
  $ jq -r '[.entries[] | select(.kind == "counter")] | map(.metric) | unique | join(",")' smoke.json
  access_events,races,sp_queries,total_events,trace_bytes
  $ jq -e '[.entries[] | select(.metric == "races")] | map(.median) | unique | length == 1' smoke.json
  true

