(* Cross-validation of every serial SP-maintenance algorithm against
   the LCA reference, on the paper's example and on random trees, plus
   algorithm-specific facts (label growth, query semantics, partial
   unfoldings). *)

open Spr_sptree
module Sm = Spr_core.Sp_maintainer
module Rng = Spr_util.Rng

let random_tree seed leaves =
  Tree_gen.random_tree ~rng:(Rng.create seed) ~leaves ~p_prob:0.5

(* Drive [inst] through [tree]; at every thread execution, query the
   relation with every previously executed thread and compare with the
   reference.  Respects the algorithm's declared query semantics. *)
let validate_against_reference tree inst =
  let executed = ref [] in
  Spr_core.Driver.run_with_queries tree inst ~on_thread:(fun inst ~current ->
      List.iter
        (fun prev ->
          let want_prec = Sp_reference.precedes prev current in
          let want_par = Sp_reference.parallel prev current in
          let got_prec = Sm.precedes inst prev current in
          let got_par = Sm.parallel inst prev current in
          if got_prec <> want_prec then
            Alcotest.failf "%s: precedes(u%d, u%d) = %b, want %b" (Sm.name inst)
              prev.Sp_tree.id current.Sp_tree.id got_prec want_prec;
          if got_par <> want_par then
            Alcotest.failf "%s: parallel(u%d, u%d) = %b, want %b" (Sm.name inst)
              prev.Sp_tree.id current.Sp_tree.id got_par want_par;
          if not (Sm.requires_current_operand inst) then begin
            (* Symmetric direction also answerable. *)
            let got_rev = Sm.precedes inst current prev in
            let want_rev = Sp_reference.precedes current prev in
            if got_rev <> want_rev then
              Alcotest.failf "%s: reverse precedes mismatch" (Sm.name inst)
          end)
        !executed;
      executed := current :: !executed)

let validate_algorithm (name, make) seed leaves () =
  let tree = random_tree seed leaves in
  validate_against_reference tree (make tree);
  ignore name

let validate_on_shapes (name, make) () =
  let shapes =
    [
      Tree_gen.balanced ~leaves:32;
      Tree_gen.deep_nest ~depth:20;
      Tree_gen.fork_chain ~forks:15;
      Tree_gen.serial_chain ~leaves:25;
      Tree_gen.wide_flat ~leaves:24;
      Paper_example.tree ();
    ]
  in
  List.iter (fun tree -> validate_against_reference tree (make tree)) shapes;
  ignore name

let qcheck_validate (name, make) =
  QCheck2.Test.make ~count:60
    ~name:(Printf.sprintf "%s matches reference" name)
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, leaves) ->
      let tree = random_tree seed leaves in
      validate_against_reference tree (make tree);
      true)

(* ------------------------------------------------------------------ *)
(* Paper's worked example through every algorithm.                     *)

let paper_example_queries (name, make) () =
  let tree = Paper_example.tree () in
  let inst = make tree in
  Spr_core.Driver.run tree inst;
  let u i = Paper_example.thread tree i in
  (* u1 ≺ u4 and u1 ∥ u6 — the exact queries the paper walks through.
     Both have the executed operand first, so even SP-bags semantics
     would accept them under a walk; after a full run all threads are
     "executed", which every algorithm supports for (prev, later). *)
  if not (Sm.requires_current_operand inst) then begin
    Alcotest.(check bool) (name ^ ": u1 ≺ u4") true (Sm.precedes inst (u 1) (u 4));
    Alcotest.(check bool) (name ^ ": u1 ∥ u6") true (Sm.parallel inst (u 1) (u 6));
    Alcotest.(check bool) (name ^ ": ¬(u6 ≺ u1)") false (Sm.precedes inst (u 6) (u 1))
  end

(* SP-order answers queries between internal nodes too. *)
let sp_order_internal_nodes () =
  let tree = Paper_example.tree () in
  let inst = Spr_core.Algorithms.sp_order tree in
  Spr_core.Driver.run tree inst;
  let s1 = Paper_example.s1 tree and p1 = Paper_example.p1 tree in
  let u i = Paper_example.thread tree i in
  (* S1 is inside P1's left subtree: P1 precedes S1 in both orders. *)
  Alcotest.(check bool) "P1 before its descendant S1" true (Sm.precedes inst p1 s1);
  (* u5 is in P1's right subtree, S1 is P1's left: parallel. *)
  Alcotest.(check bool) "S1 ∥ u5" true (Sm.parallel inst s1 (u 5));
  (* u0 precedes the whole P1 subtree. *)
  Alcotest.(check bool) "u0 ≺ P1" true (Sm.precedes inst (u 0) p1)

(* SP-order on a partial unfolding: only discovered nodes are
   queryable, and answers are already correct. *)
let sp_order_partial_unfold () =
  let tree = Tree_gen.balanced ~leaves:16 in
  let total_events = 4 * 15 + 1 in
  ignore total_events;
  (* Feed successively longer prefixes; at each point, validate all
     pairs of discovered leaves. *)
  let all_events = ref 0 in
  Sp_tree.iter_events tree (fun _ -> incr all_events);
  let prefix = ref 1 in
  while !prefix <= !all_events do
    let inst = Spr_core.Algorithms.sp_order tree in
    let discovered = ref [] in
    let fed = ref 0 in
    Sp_tree.iter_events tree (fun ev ->
        if !fed < !prefix then begin
          Sm.on_event inst ev;
          incr fed;
          match ev with Sp_tree.Thread u -> discovered := u :: !discovered | _ -> ()
        end);
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if not (a == b) then begin
              let want = Sp_reference.precedes a b in
              let got = Sm.precedes inst a b in
              if got <> want then Alcotest.failf "partial unfold mismatch at prefix %d" !prefix
            end)
          !discovered)
      !discovered;
    prefix := !prefix + 7
  done

(* ------------------------------------------------------------------ *)
(* Label-size behaviour (the "Space per node" column of Figure 3).     *)

let label_growth () =
  (* English-Hebrew: label length grows along the fork chain. *)
  let chain = Tree_gen.fork_chain ~forks:64 in
  let eh = Spr_core.English_hebrew.create chain in
  Sp_tree.iter_events chain (Spr_core.English_hebrew.on_event eh);
  let ls = Sp_tree.leaves chain in
  let first_len = Spr_core.English_hebrew.label_length eh ls.(0) in
  let last_len = Spr_core.English_hebrew.label_length eh ls.(Array.length ls - 1) in
  Alcotest.(check bool) "EH labels grow with forks" true (last_len > first_len + 32);
  (* Offset-span: label length bounded by nesting depth, not forks. *)
  let os = Spr_core.Offset_span.create chain in
  Sp_tree.iter_events chain (Spr_core.Offset_span.on_event os);
  Array.iter
    (fun u ->
      let len = Spr_core.Offset_span.label_length os u in
      if len > 3 then Alcotest.failf "offset-span label %d on depth-1 chain" len)
    ls;
  (* ... and grows on the deeply nested tree. *)
  let deep = Tree_gen.deep_nest ~depth:50 in
  let os = Spr_core.Offset_span.create deep in
  Sp_tree.iter_events deep (Spr_core.Offset_span.on_event os);
  let deep_leaves = Sp_tree.leaves deep in
  let max_len =
    Array.fold_left
      (fun acc u -> max acc (Spr_core.Offset_span.label_length os u))
      0 deep_leaves
  in
  Alcotest.(check bool) "offset-span labels grow with nesting" true (max_len >= 50)

let avg_label_words_sane () =
  let tree = random_tree 77 200 in
  List.iter
    (fun (name, make) ->
      let inst = make tree in
      Spr_core.Driver.run tree inst;
      let w = Sm.avg_label_words inst in
      if w < 0.0 || w > 10_000.0 then Alcotest.failf "%s: absurd label words %f" name w)
    Spr_core.Algorithms.all

(* ------------------------------------------------------------------ *)
(* End of Section 2: SP-order works under *any* legal unfolding of the
   parse tree, not just left-to-right. *)

let unfolding_is_legal tree events =
  (* Replay and check the legality constraints the generator claims. *)
  let n = Sp_tree.node_count tree in
  let entered = Array.make n false in
  let complete = Array.make n false in
  let check c msg = if not c then Alcotest.fail msg in
  List.iter
    (fun ev ->
      let parent_ok (x : Sp_tree.node) =
        match x.Sp_tree.parent with
        | None -> true
        | Some p ->
            entered.(p.Sp_tree.id)
            && begin
                 match p.Sp_tree.shape with
                 | Sp_tree.Internal { kind = Sp_tree.Series; left; right }
                   when x == right ->
                     complete.(left.Sp_tree.id)
                 | _ -> true
               end
      in
      match ev with
      | Sp_tree.Enter x ->
          check (parent_ok x) "Enter before parent / S-left incomplete";
          entered.(x.Sp_tree.id) <- true
      | Sp_tree.Thread x ->
          check (parent_ok x) "Thread before parent / S-left incomplete";
          entered.(x.Sp_tree.id) <- true;
          complete.(x.Sp_tree.id) <- true
      | Sp_tree.Mid x -> check entered.(x.Sp_tree.id) "Mid before Enter"
      | Sp_tree.Exit x -> begin
          match x.Sp_tree.shape with
          | Sp_tree.Internal { left; right; _ } ->
              check (complete.(left.Sp_tree.id) && complete.(right.Sp_tree.id))
                "Exit before children complete";
              complete.(x.Sp_tree.id) <- true
          | Sp_tree.Leaf -> Alcotest.fail "Exit on leaf"
        end)
    events

let random_unfoldings_are_legal =
  QCheck2.Test.make ~count:80 ~name:"random unfoldings are legal"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, leaves) ->
      let tree = random_tree seed leaves in
      let events = Unfold.random_events ~rng:(Rng.create seed) tree in
      unfolding_is_legal tree events;
      (* Every node appears: 1 Thread per leaf, Enter/Mid/Exit per
         internal node. *)
      List.length events = Sp_tree.leaf_count tree + (3 * (Sp_tree.leaf_count tree - 1)))

let unfoldings_differ_from_serial () =
  let tree = Tree_gen.balanced ~leaves:32 in
  let rng = Rng.create 9 in
  let different = ref 0 in
  for _ = 1 to 10 do
    if not (Unfold.is_left_to_right tree (Unfold.random_events ~rng tree)) then incr different
  done;
  Alcotest.(check bool) "generator explores other schedules" true (!different >= 8);
  (* ... while on a purely serial tree there is only one legal order. *)
  let chain = Tree_gen.serial_chain ~leaves:20 in
  Alcotest.(check bool) "serial chain has a unique unfolding" true
    (Unfold.is_left_to_right chain (Unfold.random_events ~rng chain))

(* Drive SP-order with random legal unfoldings; check every pair of
   discovered nodes (threads and internal nodes) against the reference
   at several prefixes — the Lemma 3 invariant is prefix-wise. *)
let sp_order_any_unfolding =
  QCheck2.Test.make ~count:60 ~name:"SP-order under arbitrary unfoldings"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, leaves) ->
      let tree = random_tree seed leaves in
      let events = Unfold.random_events ~rng:(Rng.create (seed + 1)) tree in
      let inst = Spr_core.Algorithms.sp_order tree in
      let discovered = ref [ Sp_tree.root tree ] in
      let audit () =
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if not (a == b) then begin
                  let want = Sp_reference.relate a b in
                  let got_prec = Sm.precedes inst a b in
                  let got_par = Sm.parallel inst a b in
                  let ok =
                    match want with
                    | Sp_reference.Before -> got_prec && not got_par
                    | Sp_reference.After -> (not got_prec) && not got_par
                    | Sp_reference.Par -> got_par && not got_prec
                    | Sp_reference.Same -> false
                  in
                  if not ok then Alcotest.fail "unfolded SP-order disagrees with reference"
                end)
              !discovered)
          !discovered
      in
      let step = ref 0 in
      List.iter
        (fun ev ->
          Sm.on_event inst ev;
          (match ev with
          | Sp_tree.Enter (x : Sp_tree.node) -> begin
              match x.Sp_tree.shape with
              | Sp_tree.Internal { left; right; _ } ->
                  discovered := left :: right :: !discovered
              | Sp_tree.Leaf -> ()
            end
          | _ -> ());
          incr step;
          if !step mod 7 = 0 then audit ())
        events;
      audit ();
      true)

(* Lemma 3, directly: after a full unfolding the Eng/Heb structures
   realize exactly the pre-order English/Hebrew node orders. *)
let lemma3_orders_realized =
  QCheck2.Test.make ~count:60 ~name:"Lemma 3: OM structures = node pre-orders"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 50) bool)
    (fun (seed, leaves, left_to_right) ->
      let tree = random_tree seed leaves in
      let inst = Spr_core.Algorithms.sp_order tree in
      if left_to_right then Spr_core.Driver.run tree inst
      else
        List.iter (Sm.on_event inst) (Unfold.random_events ~rng:(Rng.create seed) tree);
      let e = Sp_tree.english_node_order tree in
      let h = Sp_tree.hebrew_node_order tree in
      let nodes = List.init (Sp_tree.node_count tree) (Sp_tree.node_of_id tree) in
      List.for_all
        (fun (a : Sp_tree.node) ->
          List.for_all
            (fun (b : Sp_tree.node) ->
              a == b
              || Sm.precedes inst a b
                 = (e.(a.Sp_tree.id) < e.(b.Sp_tree.id) && h.(a.Sp_tree.id) < h.(b.Sp_tree.id)))
            nodes)
        nodes)

(* ------------------------------------------------------------------ *)
(* Failure injection: the cross-validation harness must actually be
   able to fail.  A classically buggy maintainer — comparing only the
   English order, forgetting the Hebrew one — passes on serial chains
   but must be rejected on any tree with parallelism. *)

module Broken_english_only : Sm.S = struct
  type t = { eng : int array; mutable next : int }

  let name = "broken-english-only"

  let create tree = { eng = Array.make (Sp_tree.node_count tree) (-1); next = 0 }

  let on_event t = function
    | Sp_tree.Thread u ->
        t.eng.(u.Sp_tree.id) <- t.next;
        t.next <- t.next + 1
    | _ -> ()

  let precedes t x y = t.eng.(x.Sp_tree.id) < t.eng.(y.Sp_tree.id)

  let parallel _ _ _ = false

  let requires_current_operand = false

  let leaves_only = true

  let avg_label_words _ = 1.0
end

let harness_catches_broken_algorithm () =
  let tree = Tree_gen.balanced ~leaves:16 in
  let inst = Sm.Instance ((module Broken_english_only), Broken_english_only.create tree) in
  let caught =
    try
      validate_against_reference tree inst;
      false
    with _ -> true
  in
  Alcotest.(check bool) "broken algorithm rejected" true caught;
  (* ... while on a purely serial chain the bug is invisible, which is
     exactly why Lemma 1 needs *two* orders. *)
  let chain = Tree_gen.serial_chain ~leaves:16 in
  validate_against_reference chain
    (Sm.Instance ((module Broken_english_only), Broken_english_only.create chain))

(* Querying nodes the unfolding has not discovered is a programming
   error, reported as such. *)
let undiscovered_queries_rejected () =
  let tree = Tree_gen.balanced ~leaves:8 in
  let inst = Spr_core.Algorithms.sp_order tree in
  (* Feed only the first few events: the rightmost leaf is unknown. *)
  ignore (Spr_core.Driver.feed_prefix tree inst ~events:3);
  let ls = Sp_tree.leaves tree in
  Alcotest.check_raises "undiscovered operand rejected"
    (Invalid_argument "Sp_order: node not discovered (or released)") (fun () ->
      ignore (Sm.precedes inst ls.(0) ls.(7)))

(* SP-order deletion support: release what the client no longer needs
   and keep answering about the rest. *)
let sp_order_release () =
  let tree = Tree_gen.balanced ~leaves:32 in
  let inst = Spr_core.Sp_order.create tree in
  Sp_tree.iter_events tree (Spr_core.Sp_order.on_event inst);
  let before = Spr_core.Sp_order.om_size inst in
  let ls = Sp_tree.leaves tree in
  (* Release the first half of the threads. *)
  for i = 0 to 15 do
    Spr_core.Sp_order.release inst ls.(i)
  done;
  Alcotest.(check int) "size dropped" (before - 16) (Spr_core.Sp_order.om_size inst);
  (* Remaining pairs still answer correctly. *)
  for i = 16 to 31 do
    for j = 16 to 31 do
      if i <> j then begin
        let want = Sp_reference.precedes ls.(i) ls.(j) in
        let got = Spr_core.Sp_order.precedes inst ls.(i) ls.(j) in
        if got <> want then Alcotest.failf "post-release mismatch (%d, %d)" i j
      end
    done
  done;
  (* Released nodes are rejected. *)
  Alcotest.check_raises "released node rejected"
    (Invalid_argument "Sp_order: node not discovered (or released)") (fun () ->
      ignore (Spr_core.Sp_order.precedes inst ls.(0) ls.(20)));
  (* Double release is rejected too. *)
  Alcotest.check_raises "double release rejected"
    (Invalid_argument "Sp_order.release: node not discovered (or already released)") (fun () ->
      Spr_core.Sp_order.release inst ls.(0))

(* ------------------------------------------------------------------ *)
(* sp-depa: boundary depths around the 62-bit word spill, and the
   label-footprint formula 1 + 2 * ceil(depth / 62).                    *)

let sp_depa_boundary_depths () =
  List.iter
    (fun tree -> validate_against_reference tree (Spr_core.Algorithms.sp_depa tree))
    [
      Tree_gen.deep_nest ~depth:61;
      Tree_gen.deep_nest ~depth:62;
      Tree_gen.deep_nest ~depth:63;
      Tree_gen.deep_nest ~depth:200;
      Tree_gen.fork_chain ~forks:100;
      Tree_gen.serial_chain ~leaves:130;
    ]

let sp_depa_label_words () =
  List.iter
    (fun d ->
      let tree = Tree_gen.deep_nest ~depth:d in
      let t = Spr_core.Sp_depa.create tree in
      Sp_tree.iter_events tree (Spr_core.Sp_depa.on_event t);
      let ls = Sp_tree.leaves tree in
      let max_depth = ref 0 and max_words = ref 0 in
      Array.iter
        (fun u ->
          max_depth := max !max_depth (Spr_core.Sp_depa.label_depth t u);
          max_words := max !max_words (Spr_core.Sp_depa.label_words t u))
        ls;
      Alcotest.(check int) (Printf.sprintf "deepest label at depth %d" d) d !max_depth;
      Alcotest.(check int)
        (Printf.sprintf "label words at depth %d" d)
        (1 + (2 * ((d + 61) / 62)))
        !max_words)
    [ 10; 61; 62; 63; 124; 200 ]

let sp_depa_undiscovered_rejected () =
  let tree = Tree_gen.balanced ~leaves:8 in
  let inst = Spr_core.Algorithms.sp_depa tree in
  ignore (Spr_core.Driver.feed_prefix tree inst ~events:3);
  let ls = Sp_tree.leaves tree in
  Alcotest.check_raises "undiscovered operand rejected"
    (Invalid_argument "Sp_depa: node not yet discovered") (fun () ->
      ignore (Sm.precedes inst ls.(0) ls.(7)))

(* ------------------------------------------------------------------ *)
(* Registry: the one lookup helper behind every CLI.                   *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let registry_find () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Spr_core.Algorithms.find_opt name <> None))
    Spr_core.Algorithms.names;
  Alcotest.(check bool) "unknown name gives None" true
    (Spr_core.Algorithms.find_opt "sp-nonsense" = None);
  let msg = Spr_core.Algorithms.unknown "sp-nonsense" in
  Alcotest.(check bool) "message names the culprit" true
    (contains msg "\"sp-nonsense\"" && contains msg "sp-depa" && contains msg "valid:");
  Alcotest.check_raises "find raises Invalid_argument"
    (Invalid_argument ("Algorithms.find: " ^ msg)) (fun () ->
      ignore (Spr_core.Algorithms.find "sp-nonsense" (Tree_gen.balanced ~leaves:2)))

let () =
  let per_algo =
    List.concat_map
      (fun ((name, _) as algo) ->
        [
          Alcotest.test_case (name ^ " random tree") `Quick (validate_algorithm algo 13 80);
          Alcotest.test_case (name ^ " shapes") `Quick (validate_on_shapes algo);
          Alcotest.test_case (name ^ " paper example") `Quick (paper_example_queries algo);
          QCheck_alcotest.to_alcotest (qcheck_validate algo);
        ])
      Spr_core.Algorithms.all
  in
  Alcotest.run "spr_core"
    [
      ("cross-validation", per_algo);
      ( "sp-order",
        [
          Alcotest.test_case "internal nodes" `Quick sp_order_internal_nodes;
          Alcotest.test_case "partial unfolding" `Quick sp_order_partial_unfold;
          Alcotest.test_case "release (deletion)" `Quick sp_order_release;
          Alcotest.test_case "undiscovered rejected" `Quick undiscovered_queries_rejected;
        ] );
      ( "sp-depa",
        [
          Alcotest.test_case "spill boundary depths" `Quick sp_depa_boundary_depths;
          Alcotest.test_case "label words formula" `Quick sp_depa_label_words;
          Alcotest.test_case "undiscovered rejected" `Quick sp_depa_undiscovered_rejected;
        ] );
      ( "registry",
        [ Alcotest.test_case "find/find_opt/unknown" `Quick registry_find ] );
      ( "harness",
        [ Alcotest.test_case "failure injection" `Quick harness_catches_broken_algorithm ] );
      ( "unfoldings",
        [
          QCheck_alcotest.to_alcotest random_unfoldings_are_legal;
          Alcotest.test_case "schedules differ" `Quick unfoldings_differ_from_serial;
          QCheck_alcotest.to_alcotest sp_order_any_unfolding;
          QCheck_alcotest.to_alcotest lemma3_orders_realized;
        ] );
      ( "labels",
        [
          Alcotest.test_case "growth shapes" `Quick label_growth;
          Alcotest.test_case "avg words sane" `Quick avg_label_words_sane;
        ] );
    ]
