(* Tests for the order-maintenance structures: model-based comparison
   against the naive specification, structural invariants, amortized
   cost bounds, and concurrency stress for Om_concurrent. *)

module Rng = Spr_util.Rng

(* ------------------------------------------------------------------ *)
(* Model-based testing: run the same random operation script against a
   candidate structure and Om_naive, comparing every query result.     *)

type script_op = Insert_after of int | Insert_before of int | Delete of int | Query of int * int

let gen_script ~ops ~seed =
  let rng = Rng.create seed in
  let live = ref 1 in
  (* Element indices refer to the creation-order array of live handles;
     we never reference deleted ones. *)
  let script = ref [] in
  for _ = 1 to ops do
    let pick () = Rng.int rng !live in
    let op =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
          incr live;
          Insert_after (pick ())
      | 4 | 5 ->
          incr live;
          Insert_before (pick ())
      | 6 when !live > 2 ->
          decr live;
          Delete (Rng.int rng 1_000_000)
      | _ -> Query (pick (), pick ())
    in
    script := op :: !script
  done;
  List.rev !script

module Run_script (M : Spr_om.Om_intf.S) = struct
  (* Replays a script on [M] and the naive model simultaneously;
     asserts every query agrees.  Deleted slots are remembered so the
     script's indices can skip them. *)
  let run script =
    let t = M.create () in
    let model = Spr_om.Om_naive.create () in
    let elts = Spr_util.Vec.create () in
    Spr_util.Vec.push elts (Some (M.base t, Spr_om.Om_naive.base model));
    let nth_live i =
      (* i-th live element in creation order *)
      let seen = ref (-1) in
      let found = ref None in
      Spr_util.Vec.iter
        (fun slot ->
          match slot with
          | Some pair when !found = None ->
              incr seen;
              if !seen = i then found := Some pair
          | _ -> ())
        elts;
      Option.get !found
    in
    let live = ref 1 in
    List.iter
      (fun op ->
        match op with
        | Insert_after i ->
            let e, m = nth_live (i mod !live) in
            Spr_util.Vec.push elts (Some (M.insert_after t e, Spr_om.Om_naive.insert_after model m));
            incr live
        | Insert_before i ->
            let e, m = nth_live (i mod !live) in
            Spr_util.Vec.push elts
              (Some (M.insert_before t e, Spr_om.Om_naive.insert_before model m));
            incr live
        | Delete _ when !live < 2 -> ()
        | Delete i ->
            let i = 1 + (i mod (!live - 1)) in
            let e, m = nth_live i in
            M.delete t e;
            Spr_om.Om_naive.delete model m;
            (* blank the slot *)
            let seen = ref (-1) in
            Spr_util.Vec.iteri
              (fun slot_i slot ->
                match slot with
                | Some _ ->
                    incr seen;
                    if !seen = i then Spr_util.Vec.set elts slot_i None
                | None -> ())
              elts;
            decr live
        | Query (i, j) ->
            let ei, mi = nth_live (i mod !live) in
            let ej, mj = nth_live (j mod !live) in
            let got = M.precedes t ei ej in
            let want = Spr_om.Om_naive.precedes model mi mj in
            if got <> want then
              Alcotest.failf "%s: precedes mismatch (got %b, want %b)" M.name got want)
      script;
    Alcotest.(check int) (M.name ^ ": size agrees") (Spr_om.Om_naive.size model) (M.size t)
end

let model_test (module M : Spr_om.Om_intf.S) seed () =
  let module R = Run_script (M) in
  R.run (gen_script ~ops:400 ~seed)

(* ------------------------------------------------------------------ *)
(* Deterministic stress patterns.                                      *)

let insertion_pattern (module M : Spr_om.Om_intf.S) ~n pick_anchor () =
  let t = M.create () in
  let elts = Spr_util.Vec.create () in
  Spr_util.Vec.push elts (M.base t);
  for i = 1 to n do
    let anchor = Spr_util.Vec.get elts (pick_anchor i (Spr_util.Vec.length elts)) in
    Spr_util.Vec.push elts (M.insert_after t anchor)
  done;
  Alcotest.(check int) (M.name ^ ": size") (n + 1) (M.size t)

(* Always insert after the same element: each insert lands in the same
   gap, the worst case for label-based schemes. *)
let hammer_front m ~n = insertion_pattern m ~n (fun _ _ -> 0)

(* Always append at the end. *)
let append_only m ~n = insertion_pattern m ~n (fun _ len -> len - 1)

let om_invariants_after_hammer () =
  let t = Spr_om.Om.create () in
  let anchor = Spr_om.Om.base t in
  for _ = 1 to 5_000 do
    ignore (Spr_om.Om.insert_after t anchor)
  done;
  Spr_om.Om.check_invariants t;
  (* The first-inserted element is now last: base < it, it > later ones *)
  Alcotest.(check int) "size" 5_001 (Spr_om.Om.size t)

let om_order_after_mixed () =
  let t = Spr_om.Om.create () in
  let rng = Rng.create 42 in
  let elts = Spr_util.Vec.create () in
  Spr_util.Vec.push elts (Spr_om.Om.base t);
  (* Random interleavings of after/before inserts; record the expected
     total order in a plain list alongside. *)
  let order = ref [ 0 ] in
  for i = 1 to 2_000 do
    let pos = Rng.int rng (Spr_util.Vec.length elts) in
    let anchor = Spr_util.Vec.get elts pos in
    let before = Rng.bool rng in
    let e =
      if before then Spr_om.Om.insert_before t anchor else Spr_om.Om.insert_after t anchor
    in
    Spr_util.Vec.push elts e;
    let rec insert_pos acc = function
      | [] -> List.rev (i :: acc)
      | x :: rest when x = pos -> begin
          if before then List.rev_append acc (i :: x :: rest)
          else List.rev_append acc (x :: i :: rest)
        end
      | x :: rest -> insert_pos (x :: acc) rest
    in
    order := insert_pos [] !order
  done;
  Spr_om.Om.check_invariants t;
  (* Spot-check 2000 random pairs against the recorded order. *)
  let arr = Array.of_list !order in
  let index = Array.make (Array.length arr) 0 in
  Array.iteri (fun i v -> index.(v) <- i) arr;
  for _ = 1 to 2_000 do
    let a = Rng.int rng (Spr_util.Vec.length elts) in
    let b = Rng.int rng (Spr_util.Vec.length elts) in
    let want = index.(a) < index.(b) in
    let got = Spr_om.Om.precedes t (Spr_util.Vec.get elts a) (Spr_util.Vec.get elts b) in
    if got <> want then Alcotest.failf "order mismatch for (%d, %d)" a b
  done

(* Amortization: elements moved per insert stays bounded even under the
   hammer pattern.  [items_moved] counts both levels — a capacity-2h
   bucket respace charges O(lg n) moves to the O(lg n) inserts that
   filled it, so the two-level amortized cost is a constant a bit above
   the pure top-level rate (empirically ~2.5 under the hammer). *)
let amortized_bound () =
  let t = Spr_om.Om.create () in
  let anchor = Spr_om.Om.base t in
  let n = 50_000 in
  for _ = 1 to n do
    ignore (Spr_om.Om.insert_after t anchor)
  done;
  let st = Spr_om.Om.stats t in
  let per_insert = float_of_int st.items_moved /. float_of_int n in
  if per_insert > 8.0 then
    Alcotest.failf "two-level OM: %.3f elements moved per insert (expected O(1))" per_insert

let one_level_amortized_bound () =
  let t = Spr_om.Om_label.create () in
  let anchor = Spr_om.Om_label.base t in
  let n = 20_000 in
  for _ = 1 to n do
    ignore (Spr_om.Om_label.insert_after t anchor)
  done;
  let st = Spr_om.Om_label.stats t in
  let per_insert = float_of_int st.items_moved /. float_of_int n in
  (* One-level bound is O(lg n) amortized; lg 20000 ~ 14.3. *)
  if per_insert > 64.0 then
    Alcotest.failf "one-level OM: %.3f relabels per insert (expected O(lg n))" per_insert

let multi_insert_order (module M : Spr_om.Om_intf.S) () =
  let t = M.create () in
  let ys = M.insert_many_after t (M.base t) 5 in
  Alcotest.(check int) "five inserted" 5 (List.length ys);
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (M.name ^ ": multi-insert ordered") true (M.precedes t a b);
        check rest
    | _ -> ()
  in
  check (M.base t :: ys)

(* ------------------------------------------------------------------ *)
(* Om_concurrent specifics.                                            *)

let concurrent_insert_around (module C : Spr_om.Om_intf.CONCURRENT) () =
  let t = C.create () in
  let x = C.base t in
  let befores, afters = C.insert_around t x ~before:2 ~after:2 in
  let all = befores @ [ x ] @ afters in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) (C.name ^ ": insert_around ordered") true (C.precedes t a b);
        check rest
    | _ -> ()
  in
  check all;
  C.check_invariants t

(* One writer domain hammering inserts (forcing rebalances), several
   reader domains querying pairs whose order is known a priori; any
   torn read the validation protocol misses would flip an answer. *)
let concurrent_stress (module C : Spr_om.Om_intf.CONCURRENT) () =
  let t = C.create () in
  let n = 3_000 in
  (* Pre-build a chain whose order we know: chain.(i) precedes
     chain.(j) iff i < j. *)
  let chain = Array.make (n + 1) (C.base t) in
  for i = 1 to n do
    chain.(i) <- C.insert_after t chain.(i - 1)
  done;
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let reader seed () =
    let rng = Rng.create seed in
    while not (Atomic.get stop) do
      let i = Rng.int rng (n + 1) and j = Rng.int rng (n + 1) in
      let got = C.precedes t chain.(i) chain.(j) in
      if got <> (i < j) then Atomic.incr errors
    done
  in
  let readers = [ Domain.spawn (reader 1); Domain.spawn (reader 2) ] in
  (* Writer: hammer one gap to force repeated rebalances (and, for the
     two-level structure, bucket splits) overlapping the chain. *)
  let anchor = chain.(n / 2) in
  for _ = 1 to 3_000 do
    ignore (C.insert_after t anchor)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  C.check_invariants t;
  Alcotest.(check int) (C.name ^ ": no ordering errors") 0 (Atomic.get errors)

(* ------------------------------------------------------------------ *)
(* Deletion hygiene (regression).  [Om.delete] used to leave the
   deleted element's bkt/iprev/inext — and an emptied bucket's
   first/bprev/bnext — pointing into the live structure, so one stale
   handle retained a chain of buckets.  Now deletion fully detaches
   both, which [is_detached] observes and the extended
   [check_invariants] (link-agreement checks) guards. *)

let om_delete_fully_detaches () =
  let t = Spr_om.Om.create () in
  let anchor = Spr_om.Om.base t in
  (* Enough elements for several buckets (capacity 62)... *)
  let es = ref [] in
  for _ = 1 to 300 do
    es := Spr_om.Om.insert_after t anchor :: !es
  done;
  Alcotest.(check bool) "several buckets" true (Spr_om.Om.bucket_count t > 2);
  (* ... then delete all of them, draining and unlinking buckets, with
     the structure checked after every step. *)
  List.iter
    (fun e ->
      Spr_om.Om.delete t e;
      Spr_om.Om.check_invariants t)
    !es;
  Alcotest.(check int) "only base left" 1 (Spr_om.Om.size t);
  List.iter
    (fun e -> Alcotest.(check bool) "deleted handle detached" true (Spr_om.Om.is_detached e))
    !es;
  let live = Spr_om.Om.insert_after t anchor in
  Alcotest.(check bool) "live element not detached" false (Spr_om.Om.is_detached live)

(* insert_before at the head of a bucket, repeatedly: every insert
   relinks the bucket head and, at capacity, splits the bucket. *)
let insert_before_head_splits (module M : Spr_check.Om_script.SUT) () =
  let t = M.create () in
  let head = ref (M.base t) in
  for _ = 1 to 400 do
    head := M.insert_before t !head;
    M.check_invariants t
  done;
  Alcotest.(check int) (M.name ^ ": size after head inserts") 401 (M.size t)

(* Script-based property tests: adversarial op mixes replayed against
   the naive oracle with invariants checked after every mutation. *)
let script_mix (name, sut) (mix, mix_name) =
  QCheck2.Test.make ~count:50
    ~name:(Printf.sprintf "%s: %s scripts vs oracle" name mix_name)
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let script =
        Spr_check.Om_script.random_script ~rng:(Rng.create seed) ~mix ~len:250
      in
      match Spr_check.Om_script.replay sut script with
      | None -> true
      | Some d ->
          Alcotest.failf "%s" (Format.asprintf "%a" Spr_check.Om_script.pp_divergence d))

let script_suts : (string * (module Spr_check.Om_script.SUT)) list =
  [
    ("om", (module Spr_om.Om));
    ("om-packed", (module Spr_om.Om_packed));
    ("om-concurrent2", (module Spr_om.Om_concurrent2));
  ]

let script_mixes =
  [
    (Spr_check.Om_script.Delete_heavy, "delete-heavy");
    (Spr_check.Om_script.Head_heavy, "head-heavy");
  ]

(* ------------------------------------------------------------------ *)
(* Om_packed free-list hygiene: deletion recycles slots, so a
   delete/insert churn never grows the item arrays past their
   high-water mark — the packed structure stays proportional to the
   peak live set, not the operation count. *)

let packed_free_list_reuse =
  QCheck2.Test.make ~count:100 ~name:"om-packed: delete/insert churn reuses slots"
    QCheck2.Gen.(pair (0 -- 1_000_000) (10 -- 300))
    (fun (seed, n) ->
      let module P = Spr_om.Om_packed in
      let rng = Rng.create seed in
      let t = P.create () in
      let live = Spr_util.Vec.create () in
      Spr_util.Vec.push live (P.base t);
      for _ = 1 to n do
        let anchor = Spr_util.Vec.get live (Rng.int rng (Spr_util.Vec.length live)) in
        Spr_util.Vec.push live
          (if Rng.bool rng then P.insert_after t anchor else P.insert_before t anchor)
      done;
      let slots = P.item_slots t in
      Alcotest.(check int) "slots = live + free" (P.size t + P.free_items t) slots;
      (* Delete a random half (never the base)... *)
      let deleted = ref 0 in
      while Spr_util.Vec.length live > 1 && !deleted < n / 2 do
        let idx = 1 + Rng.int rng (Spr_util.Vec.length live - 1) in
        P.delete t (Spr_util.Vec.get live idx);
        (match Spr_util.Vec.pop live with
        | Some last -> if idx < Spr_util.Vec.length live then Spr_util.Vec.set live idx last
        | None -> assert false);
        incr deleted
      done;
      P.check_invariants t;
      Alcotest.(check int) "every delete lands on the free list" !deleted (P.free_items t);
      (* ... then insert the same number back: the free list must absorb
         every one of them without touching the high-water mark. *)
      for _ = 1 to !deleted do
        ignore (P.insert_after t (P.base t))
      done;
      P.check_invariants t;
      Alcotest.(check int) "item arrays did not grow" slots (P.item_slots t);
      Alcotest.(check int) "free list drained" 0 (P.free_items t);
      true)

let packed_use_after_delete () =
  let module P = Spr_om.Om_packed in
  let t = P.create () in
  let e = P.insert_after t (P.base t) in
  P.delete t e;
  Alcotest.check_raises "use after delete rejected"
    (Invalid_argument "Om_packed.precedes: deleted element") (fun () ->
      ignore (P.precedes t (P.base t) e))

(* ------------------------------------------------------------------ *)
(* Om_fused: English and Hebrew orders interleaved in one int array.
   The structure must behave exactly like a pair of boxed two-level
   [Om]s driven with the SP-order link discipline — same answers *and*
   bit-identical rebalance counters — while recycling slots like
   Om_packed. *)

(* Mirror of [Om_fused.insert_children]'s link order on a pair of boxed
   structures: English inserts l-then-r after the anchor in both
   planes; the Hebrew plane flips the pair at P-nodes. *)
let fused_link_boxed eng heb x_eng x_heb ~parallel =
  let module O = Spr_om.Om in
  let l_eng = O.insert_after eng x_eng in
  let r_eng = O.insert_after eng l_eng in
  if parallel then
    let r_heb = O.insert_after heb x_heb in
    let l_heb = O.insert_after heb r_heb in
    ((l_eng, l_heb), (r_eng, r_heb))
  else
    let l_heb = O.insert_after heb x_heb in
    let r_heb = O.insert_after heb l_heb in
    ((l_eng, l_heb), (r_eng, r_heb))

let check_same_stats label (got : Spr_om.Om_intf.stats) (want : Spr_om.Om_intf.stats) =
  Alcotest.(check int) (label ^ " inserts") want.inserts got.inserts;
  Alcotest.(check int) (label ^ " relabel passes") want.relabel_passes got.relabel_passes;
  Alcotest.(check int) (label ^ " items moved") want.items_moved got.items_moved;
  Alcotest.(check int) (label ^ " max range") want.max_range got.max_range

let fused_matches_boxed_pair =
  QCheck2.Test.make ~count:60
    ~name:"om-fused: counters bit-identical to boxed English+Hebrew pair"
    QCheck2.Gen.(pair (0 -- 1_000_000) (5 -- 120))
    (fun (seed, rounds) ->
      let module F = Spr_om.Om_fused in
      let module O = Spr_om.Om in
      let rng = Rng.create seed in
      let f = F.create () in
      let eng = O.create () and heb = O.create () in
      (* live.(i) = (fused elt, boxed English elt, boxed Hebrew elt) *)
      let live = Spr_util.Vec.create () in
      Spr_util.Vec.push live (F.base f, O.base eng, O.base heb);
      for _ = 1 to rounds do
        (match Rng.int rng 4 with
        | 3 when Spr_util.Vec.length live > 1 ->
            let idx = 1 + Rng.int rng (Spr_util.Vec.length live - 1) in
            let fe, be, bh = Spr_util.Vec.get live idx in
            F.delete f fe;
            O.delete eng be;
            O.delete heb bh;
            (match Spr_util.Vec.pop live with
            | Some last -> if idx < Spr_util.Vec.length live then Spr_util.Vec.set live idx last
            | None -> assert false)
        | _ ->
            let fe, be, bh = Spr_util.Vec.get live (Rng.int rng (Spr_util.Vec.length live)) in
            let parallel = Rng.bool rng in
            let fl, fr = F.insert_children f fe ~parallel in
            let (le, lh), (re, rh) = fused_link_boxed eng heb be bh ~parallel in
            Spr_util.Vec.push live (fl, le, lh);
            Spr_util.Vec.push live (fr, re, rh));
        F.check_invariants f
      done;
      check_same_stats "English" (F.stats_eng f) (O.stats eng);
      check_same_stats "Hebrew" (F.stats_heb f) (O.stats heb);
      (* ... and the answers agree on every sampled live pair. *)
      let n = Spr_util.Vec.length live in
      for _ = 1 to 200 do
        let fa, ba, ha = Spr_util.Vec.get live (Rng.int rng n) in
        let fb, bb, hb = Spr_util.Vec.get live (Rng.int rng n) in
        if fa <> fb then begin
          Alcotest.(check bool) "English precedes" (O.precedes eng ba bb) (F.precedes_eng f fa fb);
          Alcotest.(check bool) "Hebrew precedes" (O.precedes heb ha hb) (F.precedes_heb f fa fb);
          Alcotest.(check bool) "sp_precedes = both orders agree"
            (O.precedes eng ba bb && O.precedes heb ha hb)
            (F.sp_precedes f fa fb);
          Alcotest.(check bool) "sp_parallel = orders disagree"
            (O.precedes eng ba bb <> O.precedes heb ha hb)
            (F.sp_parallel f fa fb)
        end
      done;
      true)

let fused_free_list_reuse =
  QCheck2.Test.make ~count:100 ~name:"om-fused: delete/insert churn reuses slots"
    QCheck2.Gen.(pair (0 -- 1_000_000) (5 -- 120))
    (fun (seed, pairs) ->
      let module F = Spr_om.Om_fused in
      let rng = Rng.create seed in
      let t = F.create () in
      let live = Spr_util.Vec.create () in
      Spr_util.Vec.push live (F.base t);
      for _ = 1 to pairs do
        let anchor = Spr_util.Vec.get live (Rng.int rng (Spr_util.Vec.length live)) in
        let l, r = F.insert_children t anchor ~parallel:(Rng.bool rng) in
        Spr_util.Vec.push live l;
        Spr_util.Vec.push live r
      done;
      let slots = F.item_slots t in
      Alcotest.(check int) "slots = live + free" (F.size t + F.free_items t) slots;
      (* Delete an even number of non-base elements (insert_children
         consumes free slots two at a time)... *)
      let target = 2 * (pairs / 2) in
      let deleted = ref 0 in
      while !deleted < target do
        let idx = 1 + Rng.int rng (Spr_util.Vec.length live - 1) in
        F.delete t (Spr_util.Vec.get live idx);
        (match Spr_util.Vec.pop live with
        | Some last -> if idx < Spr_util.Vec.length live then Spr_util.Vec.set live idx last
        | None -> assert false);
        incr deleted
      done;
      F.check_invariants t;
      Alcotest.(check int) "every delete lands on the free list" target (F.free_items t);
      (* ... then insert the same number back: the free list must absorb
         every one of them without touching the high-water mark. *)
      for _ = 1 to target / 2 do
        ignore (F.insert_children t (F.base t) ~parallel:(Rng.bool rng))
      done;
      F.check_invariants t;
      Alcotest.(check int) "item array did not grow" slots (F.item_slots t);
      Alcotest.(check int) "free list drained" 0 (F.free_items t);
      true)

let fused_use_after_delete () =
  let module F = Spr_om.Om_fused in
  let t = F.create () in
  let l, r = F.insert_children t (F.base t) ~parallel:true in
  F.delete t r;
  Alcotest.check_raises "use after delete rejected"
    (Invalid_argument "Om_fused.sp_precedes: deleted element") (fun () ->
      ignore (F.sp_precedes t l r));
  Alcotest.check_raises "base cannot be deleted"
    (Invalid_argument "Om_fused.delete: cannot delete base") (fun () -> F.delete t (F.base t));
  (* reset rewinds to the one-element state and invalidates old handles *)
  F.reset t;
  Alcotest.(check int) "reset leaves only the base" 1 (F.size t);
  Alcotest.check_raises "stale handle rejected after reset"
    (Invalid_argument "Om_fused.delete: deleted element") (fun () -> F.delete t l)

(* ------------------------------------------------------------------ *)

let qcheck_model (module M : Spr_om.Om_intf.S) =
  QCheck2.Test.make ~count:60 ~name:("model:" ^ M.name) QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let module R = Run_script (M) in
      R.run (gen_script ~ops:200 ~seed);
      true)

let structures : (module Spr_om.Om_intf.S) list =
  [
    (module Spr_om.Om_label);
    (module Spr_om.Om);
    (module Spr_om.Om_packed);
    (module Spr_om.Om_concurrent);
    (module Spr_om.Om_concurrent2);
    (module Spr_om.Om_file);
  ]

let concurrent_structures : (module Spr_om.Om_intf.CONCURRENT) list =
  [ (module Spr_om.Om_concurrent); (module Spr_om.Om_concurrent2) ]

(* Section 8 separation: with a linear tag universe, amortized relabels
   per insert must grow (Ω(lg n) lower bound), in contrast to the flat
   O(1) of the two-level structure. *)
let file_maintenance_growth () =
  let relabels_per_insert n =
    let t = Spr_om.Om_file.create () in
    let anchor = Spr_om.Om_file.base t in
    for _ = 1 to n do
      ignore (Spr_om.Om_file.insert_after t anchor)
    done;
    Alcotest.(check bool) "universe stays O(n)" true (Spr_om.Om_file.universe t <= 16 * n);
    let st = Spr_om.Om_file.stats t in
    float_of_int st.items_moved /. float_of_int n
  in
  let small = relabels_per_insert 2_000 in
  let large = relabels_per_insert 64_000 in
  Alcotest.(check bool)
    (Printf.sprintf "relabels/insert grows (%.2f -> %.2f)" small large)
    true (large > small +. 1.0)

(* ------------------------------------------------------------------ *)
(* Fork_path: bit-packed (depth, fork-path) labels (sp-depa's core).
   Model: a path as an explicit step list, related by scanning for the
   first differing direction.                                          *)

module Fp = Spr_om.Fork_path

let fp_of_steps steps =
  List.fold_left (fun p (parallel, right) -> Fp.extend p ~parallel ~right) Fp.root steps

let naive_relate a b =
  let rec go i a b =
    match (a, b) with
    | (ka, da) :: ta, (kb, db) :: tb ->
        if da = db then begin
          assert (ka = kb);
          go (i + 1) ta tb
        end
        else if ka then `Par i
        else if not da then `Before i
        else `After i
    | _ -> `Ancestor
  in
  go 0 a b

(* Random pair with a shared prefix long enough to cross the 62-bit
   word boundary, then (usually) a divergence with matching kind. *)
let gen_fp_pair =
  QCheck.Gen.(
    let step = pair bool bool in
    let* prefix = list_size (int_bound 140) step in
    let* diverge = bool in
    if not diverge then
      (* One path a strict ancestor of the other. *)
      let* extra = list_size (int_range 1 70) step in
      return (prefix, prefix @ extra)
    else
      let* kind = bool in
      let* ta = list_size (int_bound 70) step in
      let* tb = list_size (int_bound 70) step in
      return (prefix @ ((kind, false) :: ta), prefix @ ((kind, true) :: tb)))

let fp_qcheck_vs_model =
  QCheck.Test.make ~count:2_000 ~name:"fork-path relate matches step-list model"
    (QCheck.make gen_fp_pair) (fun (sa, sb) ->
      let a = fp_of_steps sa and b = fp_of_steps sb in
      match naive_relate sa sb with
      | `Ancestor -> (
          match Fp.relate a b with
          | exception Invalid_argument _ -> true
          | _ -> false)
      | `Par i -> Fp.relate a b = Fp.Par && Fp.divergence_depth a b = i
      | `Before i -> Fp.relate a b = Fp.Before && Fp.divergence_depth a b = i
      | `After i -> Fp.relate a b = Fp.After && Fp.divergence_depth a b = i)

(* The 62-level word boundary: spill must kick in without changing any
   answer, and extending a frozen parent twice must not clobber the
   sibling (persistence across the spill copy). *)
let fp_boundary_depths () =
  List.iter
    (fun d ->
      let spine parallel =
        List.init d (fun _ -> (parallel, false))
      in
      (* Divergence at every level k below an S- and a P-node. *)
      List.iter
        (fun k ->
          let prefix lst = List.filteri (fun i _ -> i < k) lst in
          let par_a = fp_of_steps (spine true) in
          let par_b = fp_of_steps (prefix (spine true) @ [ (true, true) ]) in
          Alcotest.(check bool)
            (Printf.sprintf "P divergence d=%d k=%d" d k)
            true
            (Fp.relate par_a par_b = Fp.Par && Fp.divergence_depth par_a par_b = k);
          let ser_a = fp_of_steps (spine false) in
          let ser_b = fp_of_steps (prefix (spine false) @ [ (false, true) ]) in
          Alcotest.(check bool)
            (Printf.sprintf "S divergence d=%d k=%d" d k)
            true
            (Fp.relate ser_a ser_b = Fp.Before && Fp.relate ser_b ser_a = Fp.After))
        [ 0; d / 2; d - 1 ];
      (* Words accounting at the boundary. *)
      let p = fp_of_steps (spine true) in
      Alcotest.(check int) (Printf.sprintf "depth %d" d) d (Fp.depth p);
      Alcotest.(check int)
        (Printf.sprintf "words at depth %d" d)
        ((d + 61) / 62) (Fp.words p);
      Alcotest.(check int)
        (Printf.sprintf "size_words at depth %d" d)
        (1 + (2 * ((d + 61) / 62)))
        (Fp.size_words p))
    [ 1; 61; 62; 63; 124; 125; 200 ]

let fp_persistence_across_spill () =
  (* Parent exactly at the freeze point: both children must see the
     same frozen prefix, and relate as siblings. *)
  List.iter
    (fun d ->
      let parent = fp_of_steps (List.init d (fun i -> (i mod 3 = 0, i mod 2 = 0))) in
      let l = Fp.extend parent ~parallel:true ~right:false in
      let r = Fp.extend parent ~parallel:true ~right:true in
      Alcotest.(check bool)
        (Printf.sprintf "children at depth %d are Par" (d + 1))
        true
        (Fp.relate l r = Fp.Par && Fp.relate r l = Fp.Par);
      Alcotest.(check bool)
        (Printf.sprintf "grandchildren at depth %d order" (d + 2))
        true
        (let ll = Fp.extend l ~parallel:false ~right:false in
         let lr = Fp.extend l ~parallel:false ~right:true in
         Fp.relate ll lr = Fp.Before && Fp.relate ll r = Fp.Par))
    [ 60; 61; 62; 63; 123; 124 ]

let () =
  let per_structure =
    List.concat_map
      (fun (module M : Spr_om.Om_intf.S) ->
        [
          Alcotest.test_case (M.name ^ " model seed=7") `Quick (model_test (module M) 7);
          Alcotest.test_case (M.name ^ " model seed=99") `Quick (model_test (module M) 99);
          Alcotest.test_case (M.name ^ " hammer front") `Quick (hammer_front (module M) ~n:3_000);
          Alcotest.test_case (M.name ^ " append only") `Quick (append_only (module M) ~n:3_000);
          Alcotest.test_case (M.name ^ " multi-insert") `Quick (multi_insert_order (module M));
          QCheck_alcotest.to_alcotest (qcheck_model (module M));
        ])
      structures
  in
  Alcotest.run "spr_om"
    [
      ("structures", per_structure);
      ( "two-level",
        [
          Alcotest.test_case "invariants after hammer" `Quick om_invariants_after_hammer;
          Alcotest.test_case "order after mixed inserts" `Quick om_order_after_mixed;
          Alcotest.test_case "amortized O(1) top relabels" `Quick amortized_bound;
          Alcotest.test_case "delete fully detaches" `Quick om_delete_fully_detaches;
        ] );
      ( "scripts",
        List.concat_map
          (fun ((name, sut) as s) ->
            Alcotest.test_case (name ^ " insert_before head splits") `Quick
              (insert_before_head_splits sut)
            :: List.map (fun m -> QCheck_alcotest.to_alcotest (script_mix s m)) script_mixes)
          script_suts );
      ( "packed",
        [
          QCheck_alcotest.to_alcotest packed_free_list_reuse;
          Alcotest.test_case "use after delete rejected" `Quick packed_use_after_delete;
        ] );
      ( "fused",
        [
          QCheck_alcotest.to_alcotest fused_matches_boxed_pair;
          QCheck_alcotest.to_alcotest fused_free_list_reuse;
          Alcotest.test_case "use after delete / reset hygiene" `Quick fused_use_after_delete;
        ] );
      ( "fork-path",
        [
          QCheck_alcotest.to_alcotest fp_qcheck_vs_model;
          Alcotest.test_case "spill boundary depths 61/62/63" `Quick fp_boundary_depths;
          Alcotest.test_case "persistence across spill freeze" `Quick fp_persistence_across_spill;
        ] );
      ( "one-level",
        [ Alcotest.test_case "amortized O(lg n) relabels" `Quick one_level_amortized_bound ] );
      ( "file-maintenance",
        [ Alcotest.test_case "linear universe costs grow" `Quick file_maintenance_growth ] );
      ( "concurrent",
        List.concat_map
          (fun (module C : Spr_om.Om_intf.CONCURRENT) ->
            [
              Alcotest.test_case (C.name ^ " insert_around") `Quick
                (concurrent_insert_around (module C));
              Alcotest.test_case (C.name ^ " reader/writer stress") `Quick
                (concurrent_stress (module C));
            ])
          concurrent_structures );
    ]
