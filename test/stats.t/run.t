The flight recorder's post-mortem dump is deterministic: the same
failing command writes a byte-identical .spr-flight file, so its hash
can be pinned.  (A planted fault guarantees a failing execution.)

  $ spfuzz --mode sp --inject-fault bags-flip --iters 50 --quiet --flight-out fault.spr-flight > report.txt
  [1]
  $ grep -c "final metrics snapshot" report.txt
  1
  $ sha256sum fault.spr-flight
  7e8eb47344b931c7cda9faa3536e684f917200bac4d4657927f769ff483c4c76  fault.spr-flight

spview decodes the dump: per-lane event counts by kind, drop
accounting, and the embedded final metrics snapshot.

  $ spview stats --flight fault.spr-flight
  flight recorder: 8 lanes, capacity 512
    lane 0: 27 events, 0 dropped — return:9, sync:9, thread_run:9
    lane 1: 0 events, 0 dropped
    lane 2: 0 events, 0 dropped
    lane 3: 0 events, 0 dropped
    lane 4: 0 events, 0 dropped
    lane 5: 0 events, 0 dropped
    lane 6: 0 events, 0 dropped
    lane 7: 0 events, 0 dropped
  metrics snapshot: {"fuzz/sp_programs":1,"om-concurrent-2level/queries":0,"om-concurrent-2level/retries":0,"om-concurrent/queries":0,"om-concurrent/retries":0,"sched/frames":9,"sched/hook_ticks":27,"sched/overhead_ticks":9,"sched/steal_attempts":39,"sched/steal_attempts_lock_held":0,"sched/steal_ticks":39,"sched/steals":0,"sched/time":4,"sched/work_ticks":21}

A second run of the same failing command writes the same bytes:

  $ spfuzz --mode sp --inject-fault bags-flip --iters 50 --quiet --flight-out again.spr-flight > /dev/null
  [1]
  $ cmp fault.spr-flight again.spr-flight

The live stats subcommand runs the instrumented simulator assembly and
merges the registry with the process-wide domain-sharded counters; the
Prometheus text exposition is deterministic for a fixed seed:

  $ spview stats --workload fib --size 6 --procs 2 --seed 1 --format prom
  # TYPE spr_hybrid_global_insert_ticks counter
  spr_hybrid_global_insert_ticks 32
  # TYPE spr_hybrid_lock_wait histogram
  spr_hybrid_lock_wait_bucket{le="1"} 4
  spr_hybrid_lock_wait_bucket{le="+Inf"} 4
  spr_hybrid_lock_wait_sum 0
  spr_hybrid_lock_wait_count 4
  # TYPE spr_hybrid_lock_wait_ticks counter
  spr_hybrid_lock_wait_ticks 0
  # TYPE spr_hybrid_splits counter
  spr_hybrid_splits 4
  # TYPE spr_om_concurrent_queries counter
  spr_om_concurrent_queries 0
  # TYPE spr_om_concurrent_retries counter
  spr_om_concurrent_retries 0
  # TYPE spr_race_accesses counter
  spr_race_accesses 0
  # TYPE spr_race_queries counter
  spr_race_queries 0
  # TYPE spr_race_queries_per_access histogram
  spr_race_queries_per_access_bucket{le="+Inf"} 0
  spr_race_queries_per_access_sum 0
  spr_race_queries_per_access_count 0
  # TYPE spr_runtime_parks counter
  spr_runtime_parks 0
  # TYPE spr_runtime_steal_attempts counter
  spr_runtime_steal_attempts 0
  # TYPE spr_runtime_steals counter
  spr_runtime_steals 0
  # TYPE spr_runtime_threads_run counter
  spr_runtime_threads_run 0
  # TYPE spr_sched_frames counter
  spr_sched_frames 25
  # TYPE spr_sched_hook_ticks counter
  spr_sched_hook_ticks 175
  # TYPE spr_sched_overhead_ticks counter
  spr_sched_overhead_ticks 63
  # TYPE spr_sched_steal_attempts counter
  spr_sched_steal_attempts 38
  # TYPE spr_sched_steal_attempts_lock_held counter
  spr_sched_steal_attempts_lock_held 1
  # TYPE spr_sched_steal_ticks counter
  spr_sched_steal_ticks 38
  # TYPE spr_sched_steals counter
  spr_sched_steals 4
  # TYPE spr_sched_time gauge
  spr_sched_time 188
  # TYPE spr_sched_work_ticks counter
  spr_sched_work_ticks 100

Bad inputs fail cleanly:

  $ spview stats --flight no-such-file.spr-flight
  spview: no-such-file.spr-flight: No such file or directory
  [1]
  $ spview stats --format bogus
  spview: unknown stats format "bogus" (valid: pretty, json, prom)
  [1]
