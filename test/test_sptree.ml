(* Tests for parse trees: builder, statistics, walk events, English and
   Hebrew orders (Lemma 1 as a property), the reference relation, the
   paper's worked example, and the dag view. *)

open Spr_sptree
module Rng = Spr_util.Rng

let random_tree seed leaves =
  Tree_gen.random_tree ~rng:(Rng.create seed) ~leaves ~p_prob:0.5

(* ------------------------------------------------------------------ *)
(* Structure and statistics.                                           *)

let counts () =
  let t = random_tree 5 100 in
  Alcotest.(check int) "full binary: nodes = 2n-1" 199 (Sp_tree.node_count t);
  Alcotest.(check int) "leaf count" 100 (Sp_tree.leaf_count t);
  Alcotest.(check int) "work = leaves" 100 (Sp_tree.work t)

let generator_shapes () =
  let deep = Tree_gen.deep_nest ~depth:17 in
  Alcotest.(check int) "deep_nest leaves" 18 (Sp_tree.leaf_count deep);
  Alcotest.(check int) "deep_nest nesting depth" 17 (Sp_tree.nesting_depth deep);
  Alcotest.(check int) "deep_nest forks" 17 (Sp_tree.fork_count deep);
  let chain = Tree_gen.fork_chain ~forks:23 in
  Alcotest.(check int) "fork_chain forks" 23 (Sp_tree.fork_count chain);
  Alcotest.(check int) "fork_chain nesting depth" 1 (Sp_tree.nesting_depth chain);
  Alcotest.(check int) "fork_chain leaves" 46 (Sp_tree.leaf_count chain);
  (* Each fork's two unit threads run in parallel: span = #forks. *)
  Alcotest.(check int) "fork_chain span" 23 (Sp_tree.span chain);
  let serial = Tree_gen.serial_chain ~leaves:31 in
  Alcotest.(check int) "serial_chain forks" 0 (Sp_tree.fork_count serial);
  Alcotest.(check int) "serial_chain span = work" 31 (Sp_tree.span serial);
  let flat = Tree_gen.wide_flat ~leaves:64 in
  Alcotest.(check int) "wide_flat span" 1 (Sp_tree.span flat);
  Alcotest.(check int) "wide_flat forks" 63 (Sp_tree.fork_count flat);
  let bal = Tree_gen.balanced ~leaves:16 in
  Alcotest.(check int) "balanced leaves" 16 (Sp_tree.leaf_count bal)

let deep_tree_no_overflow () =
  (* Degenerate chains with 200k leaves must not blow the stack. *)
  let t = Tree_gen.serial_chain ~leaves:200_000 in
  Alcotest.(check int) "huge chain built" 200_000 (Sp_tree.leaf_count t);
  let events = ref 0 in
  Sp_tree.iter_events t (fun _ -> incr events);
  (* 2n-1 nodes: n Thread + (n-1) * (Enter + Mid + Exit) *)
  Alcotest.(check int) "event count" (200_000 + (3 * 199_999)) !events

let event_stream_wellformed () =
  let t = random_tree 11 200 in
  let open_nodes = Hashtbl.create 64 in
  let phase = Hashtbl.create 64 in
  (* 0 = entered, 1 = mid seen *)
  let threads = ref 0 in
  Sp_tree.iter_events t (fun ev ->
      match ev with
      | Sp_tree.Enter n ->
          Alcotest.(check bool) "enter once" false (Hashtbl.mem open_nodes n.id);
          Hashtbl.add open_nodes n.id ();
          Hashtbl.add phase n.id 0
      | Sp_tree.Mid n ->
          Alcotest.(check int) "mid after enter" 0 (Hashtbl.find phase n.id);
          Hashtbl.replace phase n.id 1
      | Sp_tree.Exit n ->
          Alcotest.(check int) "exit after mid" 1 (Hashtbl.find phase n.id);
          Hashtbl.remove open_nodes n.id
      | Sp_tree.Thread _ -> incr threads);
  Alcotest.(check int) "all nodes closed" 0 (Hashtbl.length open_nodes);
  Alcotest.(check int) "every leaf executed" 200 !threads

(* ------------------------------------------------------------------ *)
(* Orders and the reference relation.                                  *)

let orders_are_permutations () =
  let t = random_tree 3 300 in
  let check_perm name order =
    let n = Sp_tree.leaf_count t in
    let seen = Array.make n false in
    Array.iter
      (fun (leaf : Sp_tree.node) ->
        let v = order.(leaf.id) in
        Alcotest.(check bool) (name ^ " in range") true (v >= 0 && v < n);
        Alcotest.(check bool) (name ^ " no dup") false seen.(v);
        seen.(v) <- true)
      (Sp_tree.leaves t)
  in
  check_perm "english" (Sp_tree.english_order t);
  check_perm "hebrew" (Sp_tree.hebrew_order t)

let english_is_execution_order () =
  let t = random_tree 17 150 in
  let eng = Sp_tree.english_order t in
  Array.iteri
    (fun i (leaf : Sp_tree.node) -> Alcotest.(check int) "English = walk order" i eng.(leaf.id))
    (Sp_tree.leaves t)

(* Lemma 1: ui ≺ uj iff E[ui] < E[uj] and H[ui] < H[uj]; Corollary 2:
   parallel iff the orders disagree. *)
let lemma1 seed leaves =
  let t = random_tree seed leaves in
  let eng = Sp_tree.english_order t in
  let heb = Sp_tree.hebrew_order t in
  let ls = Sp_tree.leaves t in
  Array.iter
    (fun (a : Sp_tree.node) ->
      Array.iter
        (fun (b : Sp_tree.node) ->
          if not (a == b) then begin
            let e = eng.(a.id) < eng.(b.id) and h = heb.(a.id) < heb.(b.id) in
            match Sp_reference.relate a b with
            | Sp_reference.Before ->
                if not (e && h) then Alcotest.fail "Lemma 1 (⇒) violated for Before"
            | Sp_reference.After ->
                if e && h then Alcotest.fail "Lemma 1 violated for After"
            | Sp_reference.Par -> if e = h then Alcotest.fail "Corollary 2 violated"
            | Sp_reference.Same -> Alcotest.fail "distinct leaves reported Same"
          end)
        ls)
    ls

let lemma1_qcheck =
  QCheck2.Test.make ~count:50 ~name:"Lemma 1 on random trees"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, leaves) ->
      lemma1 seed leaves;
      true)

let reference_consistency =
  QCheck2.Test.make ~count:50 ~name:"reference relation is consistent"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, leaves) ->
      let t = random_tree seed leaves in
      let ls = Sp_tree.leaves t in
      Array.iter
        (fun (a : Sp_tree.node) ->
          Array.iter
            (fun (b : Sp_tree.node) ->
              let ab = Sp_reference.relate a b and ba = Sp_reference.relate b a in
              let ok =
                match (ab, ba) with
                | Sp_reference.Before, Sp_reference.After
                | Sp_reference.After, Sp_reference.Before
                | Sp_reference.Par, Sp_reference.Par ->
                    not (a == b)
                | Sp_reference.Same, Sp_reference.Same -> a == b
                | _ -> false
              in
              if not ok then Alcotest.fail "relate not antisymmetric")
            ls)
        ls;
      true)

(* ------------------------------------------------------------------ *)
(* The paper's worked example (Figures 1, 2, 4).                       *)

let paper_example_orders () =
  let t = Paper_example.tree () in
  Alcotest.(check int) "9 threads" 9 (Sp_tree.leaf_count t);
  let eng = Sp_tree.english_order t in
  let heb = Sp_tree.hebrew_order t in
  for i = 0 to 8 do
    let u = Paper_example.thread t i in
    Alcotest.(check int)
      (Printf.sprintf "E[u%d]" i)
      Paper_example.expected_english.(i)
      eng.(u.id);
    Alcotest.(check int)
      (Printf.sprintf "H[u%d]" i)
      Paper_example.expected_hebrew.(i)
      heb.(u.id)
  done

let paper_example_relations () =
  let t = Paper_example.tree () in
  let u i = Paper_example.thread t i in
  (* The paper's two worked queries. *)
  Alcotest.(check bool) "u1 ≺ u4" true (Sp_reference.precedes (u 1) (u 4));
  Alcotest.(check bool) "u1 ∥ u6" true (Sp_reference.parallel (u 1) (u 6));
  (* lca identities quoted in Section 1. *)
  let s1 = Paper_example.s1 t and p1 = Paper_example.p1 t in
  Alcotest.(check bool) "lca(u1,u4) = S1" true (Sp_reference.lca (u 1) (u 4) == s1);
  Alcotest.(check bool) "S1 is an S-node" true (Sp_tree.kind s1 = Sp_tree.Series);
  Alcotest.(check bool) "lca(u1,u6) = P1" true (Sp_reference.lca (u 1) (u 6) == p1);
  Alcotest.(check bool) "P1 is a P-node" true (Sp_tree.kind p1 = Sp_tree.Parallel);
  (* u0 precedes everything; u8 follows everything except parallels. *)
  for i = 1 to 8 do
    Alcotest.(check bool) "u0 first" true (Sp_reference.precedes (u 0) (u i))
  done

let dag_structure =
  QCheck2.Test.make ~count:60 ~name:"dag structure on random trees"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, leaves) ->
      let t = random_tree seed leaves in
      let d = Sp_dag.of_tree t in
      let edges = Sp_dag.edges d in
      (* One edge per thread, in English order. *)
      Array.length edges = leaves
      && Array.for_all (fun i -> edges.(i).Sp_dag.label = i) (Array.init leaves Fun.id)
      && begin
           (* In- and out-degrees: source has no in-edges, sink no
              out-edges, every vertex is touched. *)
           let indeg = Array.make (Sp_dag.vertex_count d) 0 in
           let outdeg = Array.make (Sp_dag.vertex_count d) 0 in
           Array.iter
             (fun (e : Sp_dag.edge) ->
               indeg.(e.Sp_dag.dst) <- indeg.(e.Sp_dag.dst) + 1;
               outdeg.(e.Sp_dag.src) <- outdeg.(e.Sp_dag.src) + 1)
             edges;
           indeg.(Sp_dag.source d) = 0
           && outdeg.(Sp_dag.sink d) = 0
           && Array.for_all (fun v -> indeg.(v) + outdeg.(v) > 0)
                (Array.init (Sp_dag.vertex_count d) Fun.id)
           && List.length (Sp_dag.topological d) = Sp_dag.vertex_count d
         end)

let paper_example_dag () =
  let t = Paper_example.tree () in
  let d = Sp_dag.of_tree t in
  Alcotest.(check int) "9 thread edges" 9 (Array.length (Sp_dag.edges d));
  (* Figure 1's dag under edge composition: source, post-u0 fork (= the
     outer fork), per branch one inner fork and one inner join, and the
     sink (= the outer join): 7 vertices. *)
  Alcotest.(check int) "vertex count" 7 (Sp_dag.vertex_count d);
  let topo = Sp_dag.topological d in
  Alcotest.(check int) "topological covers vertices" (Sp_dag.vertex_count d) (List.length topo);
  Alcotest.(check bool) "source first" true (List.hd topo = Sp_dag.source d)

(* ------------------------------------------------------------------ *)
(* Sp_arena: the int-array parse tree behind the fused pipeline.       *)

(* Rebuild a boxed tree's shape inside an arena, returning the arena
   root.  Bottom-up, so child ids exist before the internal node. *)
let arena_of_tree a t =
  let rec build (n : Sp_tree.node) =
    match n.shape with
    | Sp_tree.Leaf -> Sp_arena.leaf a
    | Sp_tree.Internal { kind; left; right } -> (
        let l = build left in
        let r = build right in
        match kind with
        | Sp_tree.Series -> Sp_arena.series a l r
        | Sp_tree.Parallel -> Sp_arena.parallel a l r)
  in
  build (Sp_tree.root t)

let arena_walk_matches_tree =
  QCheck2.Test.make ~count:80 ~name:"sp-arena: walk order matches Sp_tree events"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, leaves) ->
      let t = random_tree seed leaves in
      let a = Sp_arena.create () in
      (* Build while recording boxed-node-id -> arena-id, then compare
         the Enter/Thread projections of the two walks. *)
      let map = Array.make (Sp_tree.node_count t) (-1) in
      let rec build (n : Sp_tree.node) =
        let id =
          match n.shape with
          | Sp_tree.Leaf -> Sp_arena.leaf a
          | Sp_tree.Internal { kind; left; right } -> (
              let l = build left in
              let r = build right in
              match kind with
              | Sp_tree.Series -> Sp_arena.series a l r
              | Sp_tree.Parallel -> Sp_arena.parallel a l r)
        in
        map.(n.id) <- id;
        id
      in
      let root = build (Sp_tree.root t) in
      Alcotest.(check int) "slots = node count" (Sp_tree.node_count t) (Sp_arena.slots a);
      let expect = ref [] in
      Sp_tree.iter_events t (fun ev ->
          match ev with
          | Sp_tree.Enter n -> expect := (`E, map.(n.id)) :: !expect
          | Sp_tree.Thread n -> expect := (`T, map.(n.id)) :: !expect
          | Sp_tree.Mid _ | Sp_tree.Exit _ -> ());
      let got = ref [] in
      Sp_arena.iter a root
        ~enter:(fun id -> got := (`E, id) :: !got)
        ~thread:(fun id -> got := (`T, id) :: !got);
      !expect = !got)

let arena_recycling =
  QCheck2.Test.make ~count:80 ~name:"sp-arena: release/rebuild reuses slots"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, leaves) ->
      let t = random_tree seed leaves in
      let a = Sp_arena.create () in
      let root = arena_of_tree a t in
      let slots = Sp_arena.slots a in
      Alcotest.(check int) "all slots live" slots (Sp_arena.live a);
      (* Exit-style churn: release the whole tree, rebuild the same
         shape — the free list must absorb every node, keeping the
         high-water mark flat across rounds. *)
      for _ = 1 to 3 do
        let freed = ref 0 in
        let stack = ref [ root ] in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | n :: rest ->
              stack := rest;
              if not (Sp_arena.is_leaf a n) then
                stack := Sp_arena.left_of a n :: Sp_arena.right_of a n :: !stack;
              Sp_arena.release a n;
              incr freed
        done;
        Alcotest.(check int) "every node freed" slots !freed;
        Alcotest.(check int) "free list holds them" slots (Sp_arena.free_count a);
        let root' = arena_of_tree a t in
        ignore root';
        Alcotest.(check int) "arena did not grow" slots (Sp_arena.slots a);
        Alcotest.(check int) "free list drained" 0 (Sp_arena.free_count a)
      done;
      (* reset is the O(1) bulk form of the same thing. *)
      Sp_arena.reset a;
      Alcotest.(check int) "reset empties" 0 (Sp_arena.live a);
      ignore (arena_of_tree a t);
      Alcotest.(check int) "rebuild after reset stays flat" slots (Sp_arena.slots a);
      true)

let arena_use_after_release () =
  let a = Sp_arena.create () in
  let l = Sp_arena.leaf a in
  let r = Sp_arena.leaf a in
  let s = Sp_arena.series a l r in
  Sp_arena.release a s;
  Alcotest.check_raises "released node rejected"
    (Invalid_argument "Sp_arena.kind_of: released node") (fun () ->
      ignore (Sp_arena.kind_of a s));
  Alcotest.check_raises "released node rejected as operand"
    (Invalid_argument "Sp_arena.parallel: released node") (fun () ->
      ignore (Sp_arena.parallel a s l))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spr_sptree"
    [
      ( "structure",
        [
          Alcotest.test_case "counts" `Quick counts;
          Alcotest.test_case "generator shapes" `Quick generator_shapes;
          Alcotest.test_case "deep trees" `Quick deep_tree_no_overflow;
          Alcotest.test_case "event stream" `Quick event_stream_wellformed;
        ] );
      ( "orders",
        [
          Alcotest.test_case "permutations" `Quick orders_are_permutations;
          Alcotest.test_case "english = execution order" `Quick english_is_execution_order;
          Alcotest.test_case "lemma 1 (fixed)" `Quick (fun () -> lemma1 123 40);
          QCheck_alcotest.to_alcotest lemma1_qcheck;
          QCheck_alcotest.to_alcotest reference_consistency;
        ] );
      ( "paper-example",
        [
          Alcotest.test_case "figure 4 orders" `Quick paper_example_orders;
          Alcotest.test_case "section 1 relations" `Quick paper_example_relations;
          Alcotest.test_case "figure 1 dag" `Quick paper_example_dag;
        ] );
      ("dag", [ QCheck_alcotest.to_alcotest dag_structure ]);
      ( "arena",
        [
          QCheck_alcotest.to_alcotest arena_walk_matches_tree;
          QCheck_alcotest.to_alcotest arena_recycling;
          Alcotest.test_case "use after release rejected" `Quick arena_use_after_release;
        ] );
    ]
