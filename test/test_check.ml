(* Tests for the differential fuzzing subsystem (lib/check): the
   shrinkers, the spec/script representations, bounded smoke runs of
   the fuzzer, and — most importantly — harness self-tests: planted
   bugs must be caught and shrunk to minimal repros. *)

module Rng = Spr_util.Rng
module Shrink = Spr_check.Shrink
module Prog_spec = Spr_check.Prog_spec
module Om_script = Spr_check.Om_script
module Fuzz = Spr_check.Fuzz

(* ------------------------------------------------------------------ *)
(* Shrinkers.                                                          *)

let shrink_list_single () =
  let out = Shrink.list ~still_failing:(List.mem 13) (List.init 20 Fun.id) in
  Alcotest.(check (list int)) "minimal sublist" [ 13 ] out

let shrink_list_pair () =
  let still_failing l = List.mem 3 l && List.mem 17 l in
  let out = Shrink.list ~still_failing (List.init 30 Fun.id) in
  Alcotest.(check (list int)) "both culprits kept, nothing else" [ 3; 17 ] out

let shrink_list_preserves_failure =
  QCheck2.Test.make ~count:100 ~name:"Shrink.list output still fails"
    QCheck2.Gen.(pair (0 -- 1_000_000) (1 -- 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let xs = List.init n (fun _ -> Rng.int rng 10) in
      let still_failing l = List.exists (fun x -> x >= 7) l in
      if still_failing xs then begin
        let out = Shrink.list ~still_failing xs in
        still_failing out && List.length out = 1
      end
      else true)

(* Prog_spec.candidates strictly decrease, so fixpoint must terminate —
   and with an always-true predicate it must grind any spec down to the
   one-thread program. *)
let spec_fixpoint_terminates =
  QCheck2.Test.make ~count:60 ~name:"Prog_spec shrinking reaches the minimal program"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, threads) ->
      let p = Spr_workloads.Progs.random_prog ~rng:(Rng.create seed) ~threads () in
      let spec = Prog_spec.of_program p in
      Shrink.fixpoint ~candidates:Prog_spec.candidates ~still_failing:(fun _ -> true) spec
      = [ [ Prog_spec.T 1 ] ])

(* ------------------------------------------------------------------ *)
(* Representations.                                                    *)

let spec_roundtrip =
  QCheck2.Test.make ~count:100 ~name:"Prog_spec round-trips through Fj_program"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, threads) ->
      let p = Spr_workloads.Progs.random_prog ~rng:(Rng.create seed) ~threads () in
      let spec = Prog_spec.of_program p in
      let spec' = Prog_spec.of_program (Prog_spec.to_program spec) in
      Prog_spec.normalize spec = spec'
      && Spr_prog.Fj_program.thread_count (Prog_spec.to_program spec)
         = Prog_spec.thread_count spec)

let adversarial_shapes_build =
  QCheck2.Test.make ~count:60 ~name:"random_adversarial produces valid programs"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, threads) ->
      List.for_all
        (fun shape ->
          let p =
            Spr_workloads.Progs.random_adversarial ~rng:(Rng.create seed) ~threads ~shape ()
          in
          Spr_prog.Fj_program.thread_count p >= 1
          && Spr_sptree.Sp_tree.leaf_count
               (Spr_prog.Prog_tree.tree (Spr_prog.Prog_tree.of_program p))
             >= 1)
        [ `Uniform; `Deep_serial; `Wide; `Spawn_heavy ])

let om_scripts_replay_clean =
  QCheck2.Test.make ~count:40 ~name:"every OM structure passes random scripts"
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      List.for_all
        (fun mix ->
          let script = Om_script.random_script ~rng:(Rng.create seed) ~mix ~len:120 in
          List.for_all
            (fun (_, sut) -> Om_script.replay sut script = None)
            Fuzz.default_om_suts)
        [ Om_script.Uniform; Om_script.Delete_heavy; Om_script.Head_heavy ])

(* ------------------------------------------------------------------ *)
(* Fuzzer smoke: bounded clean runs.                                   *)

let fuzz_smoke_sp () =
  match Fuzz.run_sp (Fuzz.default ~seed:3 ~iters:25) with
  | None -> ()
  | Some f -> Alcotest.failf "%s" (Format.asprintf "%a" Fuzz.pp_sp_failure f)

let fuzz_smoke_om () =
  match Fuzz.run_om (Fuzz.default ~seed:3 ~iters:40) with
  | None -> ()
  | Some f -> Alcotest.failf "%s" (Format.asprintf "%a" Fuzz.pp_om_failure f)

(* ------------------------------------------------------------------ *)
(* Fault injection: the harness must catch planted bugs and shrink
   them to small repros (a checker that cannot fail proves nothing).   *)

let fuzz_catches_flipped_sp_bags () =
  let cfg =
    {
      (Fuzz.default ~seed:1 ~iters:50) with
      Fuzz.algos = Spr_core.Algorithms.all @ [ Spr_check.Faulty.sp_bags_flipped ];
    }
  in
  match Fuzz.run_sp cfg with
  | None -> Alcotest.fail "planted SP-bags bug not caught"
  | Some f ->
      Alcotest.(check string)
        "attributed to the planted bug" "sp-bags-flipped" f.Fuzz.sp_divergence.Spr_check.Sp_check.algo;
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 8 threads (got %d)" f.Fuzz.sp_threads)
        true (f.Fuzz.sp_threads <= 8)

let fuzz_catches_broken_insert_before () =
  let cfg =
    {
      (Fuzz.default ~seed:1 ~iters:50) with
      Fuzz.om_suts = [ ("om-broken-insert-before", Spr_check.Faulty.om_broken_insert_before) ];
    }
  in
  match Fuzz.run_om cfg with
  | None -> Alcotest.fail "planted OM bug not caught"
  | Some f ->
      Alcotest.(check bool)
        (Printf.sprintf "script shrunk to <= 4 ops (got %d)" (List.length f.Fuzz.om_script))
        true
        (List.length f.Fuzz.om_script <= 4)

(* The SP checker also catches the classic broken-english-only
   maintainer (only one of Lemma 1's two orders), but never on a
   purely serial program — the reason the harness cycles adversarial
   shapes with parallelism. *)
module Broken_english_only : Spr_core.Sp_maintainer.S = struct
  open Spr_sptree

  type t = { eng : int array; mutable next : int }

  let name = "broken-english-only"

  let create tree = { eng = Array.make (Sp_tree.node_count tree) (-1); next = 0 }

  let on_event t = function
    | Sp_tree.Thread u ->
        t.eng.(u.Sp_tree.id) <- t.next;
        t.next <- t.next + 1
    | _ -> ()

  let precedes t x y = t.eng.(x.Sp_tree.id) < t.eng.(y.Sp_tree.id)

  let parallel _ _ _ = false

  let requires_current_operand = false

  let leaves_only = true

  let avg_label_words _ = 1.0
end

let sp_check_catches_english_only () =
  let algo =
    ( "broken-english-only",
      fun tree ->
        Spr_core.Sp_maintainer.Instance ((module Broken_english_only), Broken_english_only.create tree)
    )
  in
  let parallel_prog = Spr_workloads.Progs.fib ~n:5 () in
  let tree p = Spr_prog.Prog_tree.tree (Spr_prog.Prog_tree.of_program p) in
  Alcotest.(check bool) "caught on parallel program" true
    (Spr_check.Sp_check.check_serial (tree parallel_prog) algo <> None);
  let serial_prog = Spr_workloads.Progs.serial ~n:10 () in
  Alcotest.(check (option string)) "invisible on serial program" None
    (Option.map
       (fun (d : Spr_check.Sp_check.divergence) -> d.Spr_check.Sp_check.detail)
       (Spr_check.Sp_check.check_serial (tree serial_prog) algo))

(* ------------------------------------------------------------------ *)
(* Maintainer cross-validation pairs (Sp_check.check_pair): the default
   sp-depa vs sp-order pair runs clean, and the pair check alone — no
   reference oracle — still catches a planted bug.                     *)

let check_pair_default_clean =
  QCheck2.Test.make ~count:60 ~name:"sp-depa vs sp-order pair agrees"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, leaves) ->
      let tree =
        Spr_sptree.Tree_gen.random_tree ~rng:(Rng.create seed) ~leaves ~p_prob:0.5
      in
      List.for_all
        (fun (a, b) -> Spr_check.Sp_check.check_pair tree a b = None)
        Fuzz.default_sp_pairs)

let check_pair_catches_planted () =
  let broken =
    ( "broken-english-only",
      fun tree ->
        Spr_core.Sp_maintainer.Instance
          ((module Broken_english_only), Broken_english_only.create tree) )
  in
  let tree p = Spr_prog.Prog_tree.tree (Spr_prog.Prog_tree.of_program p) in
  let parallel_prog = tree (Spr_workloads.Progs.fib ~n:5 ()) in
  match
    Spr_check.Sp_check.check_pair parallel_prog broken
      ("sp-order", Spr_core.Algorithms.sp_order)
  with
  | None -> Alcotest.fail "pair check missed the planted divergence"
  | Some d ->
      Alcotest.(check string) "pair label" "broken-english-only vs sp-order"
        d.Spr_check.Sp_check.algo;
      Alcotest.(check string) "schedule label" "serial pair" d.Spr_check.Sp_check.schedule

let () =
  Alcotest.run "spr_check"
    [
      ( "shrink",
        [
          Alcotest.test_case "list: single culprit" `Quick shrink_list_single;
          Alcotest.test_case "list: pair of culprits" `Quick shrink_list_pair;
          QCheck_alcotest.to_alcotest shrink_list_preserves_failure;
          QCheck_alcotest.to_alcotest spec_fixpoint_terminates;
        ] );
      ( "representations",
        [
          QCheck_alcotest.to_alcotest spec_roundtrip;
          QCheck_alcotest.to_alcotest adversarial_shapes_build;
          QCheck_alcotest.to_alcotest om_scripts_replay_clean;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "sp fuzz, 25 iterations" `Quick fuzz_smoke_sp;
          Alcotest.test_case "om fuzz, 40 iterations" `Quick fuzz_smoke_om;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "flipped SP-bags caught + shrunk" `Quick fuzz_catches_flipped_sp_bags;
          Alcotest.test_case "broken insert_before caught + shrunk" `Quick
            fuzz_catches_broken_insert_before;
          Alcotest.test_case "english-only maintainer caught" `Quick sp_check_catches_english_only;
        ] );
      ( "cross-pairs",
        [
          QCheck_alcotest.to_alcotest check_pair_default_clean;
          Alcotest.test_case "pair check catches planted bug" `Quick check_pair_catches_planted;
        ] );
    ]
