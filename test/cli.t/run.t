The paper's worked example through the CLI:

  $ spview tree --gen paper --labels
  parse tree (9 threads, 3 forks, nesting depth 2, span 4):
    S(u0, P(S(S(u1, P(u2, u3)), u4), S(S(u5, P(u6, u7)), u8)))
  
  thread : (E, H)
    u0    : (0, 0)
    u1    : (1, 5)
    u2    : (2, 7)
    u3    : (3, 6)
    u4    : (4, 8)
    u5    : (5, 1)
    u6    : (6, 3)
    u7    : (7, 2)
    u8    : (8, 4)

Detecting a planted determinacy race:

  $ spview detect --workload dcsum-buggy --size 4 --algo sp-order
  detection (sp-order): 2 race report(s) on locations [17; 20], 9 SP queries
    loc 17: t0 (W) vs t1 (W)
    loc 20: t3 (W) vs t4 (W)

The fused English/Hebrew backend answers the same queries the same way
(an earlier revision noted a fused-specific breakage here; it no longer
reproduces, so the correct output is pinned):

  $ spview detect --workload dcsum-buggy --size 4 --algo sp-order-fused
  detection (sp-order-fused): 2 race report(s) on locations [17; 20], 9 SP queries
    loc 17: t0 (W) vs t1 (W)
    loc 20: t3 (W) vs t4 (W)

Unknown generator/workload/algorithm names fail cleanly (exit 1, valid
names listed) instead of dying with a backtrace:

  $ spview tree --gen nope
  spview: unknown generator "nope" (valid: paper, balanced, deep, forks, serial, wide, random)
  [1]

  $ spview detect --workload nope
  spview: unknown workload "nope" (valid: dcsum, dcsum-buggy, fib, deep, wide, locked, locked-buggy, random, serial, mergesort, mergesort-buggy, matmul, matmul-buggy, shared-readers, adversarial)
  [1]

  $ spview hybrid --workload nope
  spview: unknown workload "nope" (valid: dcsum, dcsum-buggy, fib, deep, wide, locked, locked-buggy, random, serial, mergesort, mergesort-buggy, matmul, matmul-buggy, shared-readers, adversarial)
  [1]

  $ spview detect --workload dcsum --algo nope
  spview: unknown algorithm "nope" (valid: english-hebrew, offset-span, sp-bags, sp-order, sp-depa, sp-order-fused, hb-vector, hb-tree, sp-order-packed, sp-order-implicit, sp-bags-norank, lca-reference)
  [1]

