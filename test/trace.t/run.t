The trace recorder is deterministic: the same workload, seed and
worker count must serialize byte-for-byte identical Chrome traces.

  $ spview trace --workload fib --size 8 --procs 4 --seed 1 --out a.json --metrics json > m1.json
  $ spview trace --workload fib --size 8 --procs 4 --seed 1 --out b.json --metrics json > m2.json
  $ cmp a.json b.json
  $ cmp m1.json m2.json

A different seed steers the scheduler differently:

  $ spview trace --workload fib --size 8 --procs 4 --seed 2 --out c.json --metrics json > /dev/null
  $ cmp -s a.json c.json
  [1]

The file is Chrome trace_event JSON-object format: a traceEvents
array (worker-name metadata, then events from the sched, hybrid and
om subsystems) plus run parameters under otherData.

  $ head -c 75 a.json; echo
  {"traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"nam
  $ grep -c '"cat":"sched"' a.json > /dev/null && echo has-sched
  has-sched
  $ grep -c '"cat":"hybrid"' a.json > /dev/null && echo has-hybrid
  has-hybrid
  $ grep -c '"cat":"om"' a.json > /dev/null && echo has-om
  has-om
  $ grep -o '"otherData":{[^}]*' a.json | grep -o '"workload":"fib"'
  "workload":"fib"

The metrics summary holds the Theorem 10 accounting; every steal is
one trace split:

  $ grep -o '"hybrid/splits":[0-9]*' m1.json
  "hybrid/splits":14
  $ grep -o '"sched/steals":[0-9]*' m1.json
  "sched/steals":14

The default summary is the pretty renderer:

  $ spview trace --workload fib --size 6 --procs 2 --seed 1 --out d.json | head -n 5
  wrote d.json: 160 events (0 dropped) — load in chrome://tracing or ui.perfetto.dev
  hybrid/
    global_insert_ticks          32
    lock_wait                    n=4 mean=0.0 p50=0 p90=0 p99=0 max=0
    lock_wait_ticks              0
