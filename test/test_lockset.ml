(* Dedicated coverage for the All-Sets-style lock-aware detector
   (lib/race/lockset.ml): the lockset algebra driven directly with a
   hand-built SP predicate (disjointness, nesting, read/write
   conflicts, pruning), nested-critical-section programs through the
   full pipeline, and a qcheck differential against the naive all-pairs
   set-model oracle with every reported race re-validated against the
   LCA reference relation. *)

open Spr_prog
module L = Spr_race.Lockset
module W = Spr_workloads.Progs
module Rng = Spr_util.Rng

(* ------------------------------------------------------------------ *)
(* The lockset algebra, driven directly.  The SP predicate is under
   the test's control, so each case isolates one clause of the
   race condition: conflict AND disjoint locksets AND parallel. *)

let all_parallel ~executed:_ ~current:_ = false

let feed t accesses =
  List.iter
    (fun (tid, loc, write, locks) ->
      L.access t ~current:tid { Fj_program.loc; write; locks })
    accesses

let race_repr (r : L.race) =
  Printf.sprintf "loc=%d %d(%c)->%d(%c)" r.L.loc r.L.earlier
    (if r.L.earlier_write then 'w' else 'r')
    r.L.later
    (if r.L.later_write then 'w' else 'r')

let disjoint_parallel_writes () =
  let t = L.create ~precedes:all_parallel in
  feed t [ (0, 7, true, [ 0 ]); (1, 7, true, [ 1 ]) ];
  Alcotest.(check (list string)) "one race, both writes" [ "loc=7 0(w)->1(w)" ]
    (List.map race_repr (L.races t))

let common_lock_suppresses () =
  let t = L.create ~precedes:all_parallel in
  (* Pairwise-shared locks: every pair intersects though no single
     lock is held by all three. *)
  feed t [ (0, 7, true, [ 0; 1 ]); (1, 7, true, [ 1; 2 ]); (2, 7, true, [ 2; 0 ]) ];
  Alcotest.(check (list int)) "no race under shared locks" [] (L.racy_locs t)

let nested_stacks () =
  (* Nesting units: lock stacks [0], [0;1], [0;1;2] model acquiring
     deeper nested sections around the same outer lock — every pair
     shares lock 0, so the location stays clean.  A fourth access
     holding only an unrelated lock races with all of them. *)
  let t = L.create ~precedes:all_parallel in
  feed t [ (0, 3, true, [ 0 ]); (1, 3, true, [ 0; 1 ]); (2, 3, true, [ 0; 1; 2 ]) ];
  Alcotest.(check (list int)) "nested stacks share the outer lock" [] (L.racy_locs t);
  feed t [ (3, 3, true, [ 9 ]) ];
  (* History records are kept newest-first, so races surface against
     the most recent nesting level first. *)
  Alcotest.(check (list string)) "unrelated lock races with every nesting level"
    [ "loc=3 2(w)->3(w)"; "loc=3 1(w)->3(w)"; "loc=3 0(w)->3(w)" ]
    (List.map race_repr (L.races t))

let unsorted_duplicate_locks () =
  (* Lock lists arrive as held-lock multisets; the detector must
     normalize them before the disjointness test. *)
  let t = L.create ~precedes:all_parallel in
  feed t [ (0, 1, true, [ 2; 1; 1 ]); (1, 1, true, [ 1 ]) ];
  Alcotest.(check (list int)) "duplicate/unsorted locksets still intersect" [] (L.racy_locs t)

let reads_never_race () =
  let t = L.create ~precedes:all_parallel in
  feed t [ (0, 4, false, []); (1, 4, false, []) ];
  Alcotest.(check (list int)) "read/read is not a conflict" [] (L.racy_locs t);
  feed t [ (2, 4, true, []) ];
  Alcotest.(check (list string)) "a write conflicts with both reads"
    [ "loc=4 1(r)->2(w)"; "loc=4 0(r)->2(w)" ]
    (List.map race_repr (L.races t))

let ordered_threads_never_race () =
  let t = L.create ~precedes:(fun ~executed ~current -> executed < current) in
  feed t [ (0, 2, true, []); (1, 2, true, []); (2, 2, false, []) ];
  Alcotest.(check (list int)) "serialized accesses are clean" [] (L.racy_locs t)

let pruning_bounds_history () =
  (* Under a total order with identical locksets every new write
     subsumes the whole history, so the per-location record list never
     grows (the interface's pruning argument, observable through
     [max_history]). *)
  let t = L.create ~precedes:(fun ~executed ~current -> executed < current) in
  for tid = 0 to 99 do
    L.access t ~current:tid { Fj_program.loc = 0; write = true; locks = [] }
  done;
  Alcotest.(check (list int)) "still clean" [] (L.racy_locs t);
  Alcotest.(check bool) "history stays at one record" true (L.max_history t = 1);
  (* A read does NOT subsume an earlier write: dropping the write
     would lose the conflict with a later read. *)
  let t = L.create ~precedes:(fun ~executed ~current -> executed < current) in
  feed t [ (0, 0, true, []); (1, 0, false, []) ];
  Alcotest.(check bool) "write survives a serialized read" true (L.max_history t = 2)

(* ------------------------------------------------------------------ *)
(* Nested critical sections through the full pipeline.                 *)

let nested_sections_program () =
  (* Two parallel threads whose accesses to loc 5 are wrapped in
     nested critical sections: sharing the inner lock keeps the
     location clean even though the outer locks differ; replacing the
     sharer with a foreign lockset exposes the race.  Cross-checked
     against the naive all-pairs oracle both ways. *)
  let build locks_b =
    let b = Fj_program.Builder.create () in
    let thread locks =
      Fj_program.Run
        (Fj_program.Builder.thread b
           ~accesses:[ { Fj_program.loc = 5; write = true; locks } ]
           ~cost:1 ())
    in
    let spawn body = Fj_program.Spawn (Fj_program.Builder.proc b [ [ body ] ]) in
    Fj_program.Builder.finish b
      (Fj_program.Builder.proc b [ [ spawn (thread [ 1; 2 ]); spawn (thread locks_b) ] ])
  in
  List.iter
    (fun (locks_b, want) ->
      let pt = Prog_tree.of_program (build locks_b) in
      let got =
        (Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order)
          .Spr_race.Drivers.racy_locs
      in
      Alcotest.(check (list int))
        (Printf.sprintf "locks [%s]" (String.concat ";" (List.map string_of_int locks_b)))
        want got;
      Alcotest.(check (list int)) "agrees with the naive oracle"
        (Spr_race.Naive_checker.racy_locs_locked pt)
        got)
    [ ([ 2; 7 ], []); ([ 3 ], [ 5 ]); ([], [ 5 ]) ]

let locked_counter_modes () =
  List.iter
    (fun (mode, want_race) ->
      let pt = Prog_tree.of_program (W.locked_counter ~mode ~leaves:16 ()) in
      let locked = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
      Alcotest.(check bool) "lockset verdict" want_race
        (locked.Spr_race.Drivers.racy_locs <> []))
    [ (`Common_lock, false); (`Distinct_locks, true); (`No_locks, true) ]

(* ------------------------------------------------------------------ *)
(* qcheck differential: random locked programs vs the naive set-model
   oracle, with each reported race re-validated independently.        *)

let lockset_vs_set_model =
  QCheck2.Test.make ~count:200 ~name:"lockset racy locs = naive set-model oracle"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, threads) ->
      let rng = Rng.create seed in
      let p =
        W.random_prog ~rng ~threads ~spawn_prob:0.5 ~locs:4 ~accesses_per_thread:3
          ~lock_count:3 ()
      in
      let pt = Prog_tree.of_program p in
      let locked = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
      locked.Spr_race.Drivers.racy_locs = Spr_race.Naive_checker.racy_locs_locked pt)

(* Every race the detector reports must satisfy all three clauses of
   the All-Sets condition, checked from scratch: threads parallel per
   the LCA reference, some pair of their accesses to that location
   conflicting with disjoint locksets. *)
let reported_races_are_true_positives =
  QCheck2.Test.make ~count:120 ~name:"every reported lockset race is a true positive"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 30))
    (fun (seed, threads) ->
      let rng = Rng.create seed in
      let p =
        W.random_prog ~rng ~threads ~spawn_prob:0.6 ~locs:3 ~accesses_per_thread:3
          ~lock_count:2 ()
      in
      let pt = Prog_tree.of_program p in
      let locked = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
      let accesses_of tid loc =
        let th = (Fj_program.threads p).(tid) in
        Array.to_list th.Fj_program.accesses
        |> List.filter (fun (a : Fj_program.access) -> a.loc = loc)
      in
      let disjoint a b = not (List.exists (fun x -> List.mem x b) a) in
      List.for_all
        (fun (r : L.race) ->
          Spr_sptree.Sp_reference.parallel
            (Prog_tree.leaf_of_thread pt r.L.earlier)
            (Prog_tree.leaf_of_thread pt r.L.later)
          && List.exists
               (fun (a : Fj_program.access) ->
                 List.exists
                   (fun (b : Fj_program.access) ->
                     (a.write || b.write)
                     && disjoint (List.sort_uniq compare a.locks)
                          (List.sort_uniq compare b.locks))
                   (accesses_of r.L.later r.L.loc))
               (accesses_of r.L.earlier r.L.loc))
        locked.Spr_race.Drivers.lock_races)

let () =
  Alcotest.run "lockset"
    [
      ( "algebra",
        [
          Alcotest.test_case "disjoint parallel writes race" `Quick disjoint_parallel_writes;
          Alcotest.test_case "common lock suppresses" `Quick common_lock_suppresses;
          Alcotest.test_case "nested lock stacks" `Quick nested_stacks;
          Alcotest.test_case "unsorted duplicate locksets" `Quick unsorted_duplicate_locks;
          Alcotest.test_case "read/read never races" `Quick reads_never_race;
          Alcotest.test_case "ordered threads never race" `Quick ordered_threads_never_race;
          Alcotest.test_case "pruning bounds history" `Quick pruning_bounds_history;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "nested critical sections" `Quick nested_sections_program;
          Alcotest.test_case "locked-counter modes" `Quick locked_counter_modes;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest lockset_vs_set_model;
          QCheck_alcotest.to_alcotest reported_races_are_true_positives;
        ] );
    ]
