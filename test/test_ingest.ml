(* Ingestion-service validation: the streaming server's capture/replay
   pipeline is pinned differentially against [Drivers.detect_serial] —
   same races in the same order, same racy locations, same SP query
   count — over every named workload generator, over random programs
   on a resident reused server, and with the shadow memory sharded
   across real worker domains or a schedtest-controlled hand-off.
   Decoder totality: truncated or corrupted traces yield [Error] with
   a frame-located diagnostic, never an exception, never a partial
   result, and leave the server usable. *)

open Spr_prog
module W = Spr_workloads.Progs
module Fj = Fj_program
module Codec = Spr_ingest.Codec
module Server = Spr_ingest.Server
module Drivers = Spr_race.Drivers
module Control = Spr_schedtest.Control
module Rng = Spr_util.Rng

(* ------------------------------------------------------------------ *)
(* Oracle and comparison plumbing.                                     *)

let oracle p =
  let pt = Prog_tree.of_program p in
  Drivers.detect_serial pt Spr_core.Algorithms.sp_order

let race_repr (r : Spr_race.Detector.race) =
  Printf.sprintf "loc=%d %d(%c)->%d(%c)" r.loc r.earlier
    (if r.earlier_write then 'w' else 'r')
    r.later
    (if r.later_write then 'w' else 'r')

let check_result ctx (want : Drivers.serial_result) (got : Server.program_result) =
  Alcotest.(check (list string))
    (ctx ^ ": races")
    (List.map race_repr want.Drivers.races)
    (List.map race_repr got.Server.races);
  Alcotest.(check (list int)) (ctx ^ ": racy locs") want.Drivers.racy_locs got.Server.racy_locs;
  Alcotest.(check int) (ctx ^ ": sp queries") want.Drivers.sp_queries got.Server.sp_queries

let run_one ?(ctx = "run") srv trace =
  match Server.run_string srv trace with
  | Ok [ r ] -> r
  | Ok rs -> Alcotest.failf "%s: expected 1 program result, got %d" ctx (List.length rs)
  | Error e -> Alcotest.failf "%s: unexpected decode error: %a" ctx Codec.pp_error e

let with_server ?shards ?batch ?runner f =
  let srv = Server.create ?shards ?batch ?runner () in
  Fun.protect ~finally:(fun () -> Server.close srv) (fun () -> f srv)

(* Per-workload sizes keeping each program in the hundreds-to-few-
   thousand-events range (fib/matmul sizes are exponential/cubic). *)
let size_for = function
  | "fib" -> 8
  | "matmul" | "matmul-buggy" -> 8
  | "serial" -> 12
  | "deep" | "locked" | "locked-buggy" -> 16
  | "wide" | "shared-readers" -> 24
  | "dcsum" | "dcsum-buggy" -> 32
  | "random" | "adversarial" -> 60
  | "mergesort" | "mergesort-buggy" -> 64
  | name -> Alcotest.failf "size_for: unknown workload %s" name

(* ------------------------------------------------------------------ *)
(* 1. Capture -> replay differential over the whole registry.          *)

let registry_roundtrip () =
  with_server (fun srv ->
      List.iter
        (fun (name, gen) ->
          let p = gen ~size:(size_for name) ~seed:3 in
          let trace = Codec.capture [ p ] in
          let got = run_one ~ctx:name srv trace in
          check_result name (oracle p) got;
          Alcotest.(check int) (name ^ ": accesses") (Fj.access_count p) got.Server.accesses;
          Alcotest.(check int) (name ^ ": threads") (Fj.thread_count p) got.Server.threads)
        W.named)

(* The buggy variants must actually exercise the race path, or the
   differential above proves nothing about reports. *)
let buggy_variants_report () =
  with_server (fun srv ->
      List.iter
        (fun name ->
          let gen = Option.get (W.find_opt name) in
          let p = gen ~size:(size_for name) ~seed:3 in
          let got = run_one ~ctx:name srv (Codec.capture [ p ]) in
          Alcotest.(check bool) (name ^ ": reports races") true (got.Server.races <> []))
        [ "dcsum-buggy"; "mergesort-buggy"; "matmul-buggy"; "locked-buggy" ])

(* ------------------------------------------------------------------ *)
(* 2. Random programs vs the oracle, one resident server throughout.   *)

let random_matches_oracle =
  let srv = Server.create () in
  QCheck2.Test.make ~count:80 ~name:"ingest replay matches detect_serial on random programs"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, threads) ->
      let rng = Rng.create seed in
      let p = W.random_prog ~rng ~threads ~locs:8 ~accesses_per_thread:4 () in
      let want = oracle p in
      let got = run_one srv (Codec.capture [ p ]) in
      List.map race_repr want.Drivers.races = List.map race_repr got.Server.races
      && want.Drivers.racy_locs = got.Server.racy_locs
      && want.Drivers.sp_queries = got.Server.sp_queries)

let adversarial_matches_oracle =
  let srv = Server.create () in
  QCheck2.Test.make ~count:40
    ~name:"ingest replay matches detect_serial on adversarial shapes"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 40))
    (fun (seed, threads) ->
      let rng = Rng.create seed in
      let shape =
        match seed mod 4 with
        | 0 -> `Uniform
        | 1 -> `Spawn_heavy
        | 2 -> `Deep_serial
        | _ -> `Wide
      in
      let p = W.random_adversarial ~rng ~threads ~shape () in
      let want = oracle p in
      let got = run_one srv (Codec.capture [ p ]) in
      List.map race_repr want.Drivers.races = List.map race_repr got.Server.races
      && want.Drivers.racy_locs = got.Server.racy_locs)

(* ------------------------------------------------------------------ *)
(* 3. Sharded shadow memory: real worker domains, byte-identical.      *)

let sharded_matches_serial () =
  (* A small batch forces many mid-program flushes, so the deferred
     drain really interleaves with decoding. *)
  with_server ~shards:3 ~batch:64 (fun srv ->
      List.iter
        (fun name ->
          let gen = Option.get (W.find_opt name) in
          let p = gen ~size:(size_for name) ~seed:11 in
          let got = run_one ~ctx:name srv (Codec.capture [ p ]) in
          check_result ("sharded " ^ name) (oracle p) got)
        [
          "dcsum-buggy";
          "mergesort-buggy";
          "matmul-buggy";
          "locked";
          "locked-buggy";
          "shared-readers";
          "random";
          "adversarial";
        ])

let sharded_random_matches_serial =
  let srv = Server.create ~shards:4 ~batch:32 () in
  QCheck2.Test.make ~count:40 ~name:"sharded detection matches serial on random programs"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 50))
    (fun (seed, threads) ->
      let rng = Rng.create seed in
      let p = W.random_prog ~rng ~threads ~locs:8 ~accesses_per_thread:4 () in
      let want = oracle p in
      let got = run_one srv (Codec.capture [ p ]) in
      List.map race_repr want.Drivers.races = List.map race_repr got.Server.races
      && want.Drivers.sp_queries = got.Server.sp_queries)

(* ------------------------------------------------------------------ *)
(* 4. Residency: in-place reset across programs, stable answers.       *)

let resident_reuse () =
  with_server (fun srv ->
      let a = W.mergesort ~buggy:true ~n:64 () in
      let b = W.dc_sum ~leaves:128 () in
      let first = run_one ~ctx:"A" srv (Codec.capture [ a ]) in
      let _middle = run_one ~ctx:"B" srv (Codec.capture [ b ]) in
      let again = run_one ~ctx:"A again" srv (Codec.capture [ a ]) in
      Alcotest.(check (list string))
        "A's races unchanged after B"
        (List.map race_repr first.Server.races)
        (List.map race_repr again.Server.races);
      Alcotest.(check int) "A's queries unchanged" first.Server.sp_queries again.Server.sp_queries;
      let st = Server.stats srv in
      Alcotest.(check int) "3 programs ingested" 3 st.Server.programs;
      Alcotest.(check int)
        "accesses accumulate"
        (2 * Fj.access_count a + Fj.access_count b)
        st.Server.accesses)

(* ------------------------------------------------------------------ *)
(* 5. Multi-program traces: one stream, per-program results.           *)

let multi_program_trace () =
  let progs =
    [
      W.dc_sum ~leaves:32 ();
      W.mergesort ~buggy:true ~n:32 ();
      W.fib ~n:7 ();
      W.matmul ~buggy:true ~n:6 ();
    ]
  in
  let trace = Codec.capture progs in
  with_server (fun srv ->
      match Server.run_string srv trace with
      | Error e -> Alcotest.failf "multi: %a" Codec.pp_error e
      | Ok results ->
          Alcotest.(check int) "result per program" (List.length progs) (List.length results);
          List.iteri
            (fun i ((p, (r : Server.program_result))) ->
              Alcotest.(check int) "index" i r.Server.index;
              check_result (Printf.sprintf "multi[%d]" i) (oracle p) r)
            (List.combine progs results))

let empty_trace () =
  let buf = Buffer.create 16 in
  Codec.write_header buf;
  with_server (fun srv ->
      match Server.run_string srv (Buffer.contents buf) with
      | Ok [] -> ()
      | Ok rs -> Alcotest.failf "header-only trace: %d results" (List.length rs)
      | Error e -> Alcotest.failf "header-only trace: %a" Codec.pp_error e)

(* ------------------------------------------------------------------ *)
(* 6. Decoder totality on malformed input.                             *)

(* The reference trace plus its only two valid cut points: a prefix
   ending exactly after the header or after the first program is
   itself a well-formed (shorter) trace; every other cut must fail. *)
let reference =
  lazy
    (let buf = Buffer.create 1024 in
     Codec.write_header buf;
     let header_end = Buffer.length buf in
     Codec.encode_program buf (W.mergesort ~buggy:true ~n:32 ());
     let first_end = Buffer.length buf in
     Codec.encode_program buf (W.locked_counter ~mode:`Common_lock ~leaves:8 ());
     (Buffer.contents buf, [ header_end; first_end ]))

let reference_trace = lazy (fst (Lazy.force reference))

let truncation_is_an_error =
  let srv = Server.create () in
  QCheck2.Test.make ~count:120 ~name:"every truncation yields Error, server stays usable"
    QCheck2.Gen.(0 -- 10_000)
    (fun cut ->
      let full, boundaries = Lazy.force reference in
      let cut = cut mod String.length full in
      let prefix = String.sub full 0 cut in
      let truncated_ok =
        match Server.run_string srv prefix with
        | Error e -> (not (List.mem cut boundaries)) && e.Codec.offset <= String.length prefix
        | Ok rs -> List.mem cut boundaries && List.length rs = (if cut = List.hd boundaries then 0 else 1)
      in
      (* The error must not wedge the resident server. *)
      let recovers = match Server.run_string srv full with Ok _ -> true | Error _ -> false in
      truncated_ok && recovers)

let corruption_never_escapes =
  let srv = Server.create () in
  QCheck2.Test.make ~count:200 ~name:"byte corruption yields Ok or Error, never an exception"
    QCheck2.Gen.(pair (0 -- 1_000_000) (0 -- 255))
    (fun (at, byte) ->
      let full = Lazy.force reference_trace in
      let at = at mod String.length full in
      let b = Bytes.of_string full in
      Bytes.set b at (Char.chr byte);
      match Server.run_string srv (Bytes.to_string b) with
      | Ok _ | Error _ -> (
          (* And again: no lingering poisoned state. *)
          match Server.run_string srv full with Ok _ -> true | Error _ -> false))

let diagnostics_locate_the_frame () =
  with_server (fun srv ->
      (match Server.run_string srv "not a trace at all" with
      | Error e ->
          Alcotest.(check int) "bad magic at offset 0" 0 e.Codec.offset;
          Alcotest.(check string) "bad magic message" "bad magic (not a .spr-trace file)" e.Codec.msg
      | Ok _ -> Alcotest.fail "garbage accepted");
      let full = Lazy.force reference_trace in
      (* Flip the PROG_END trailer's event count: the last varint byte
         of the trace. *)
      let b = Bytes.of_string full in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 1));
      match Server.run_string srv (Bytes.to_string b) with
      | Error e ->
          Alcotest.(check bool)
            "event-count mismatch diagnosed" true
            (String.length e.Codec.msg >= 20
            && String.sub e.Codec.msg 0 20 = "event-count mismatch")
      | Ok _ -> Alcotest.fail "corrupted trailer accepted")

(* ------------------------------------------------------------------ *)
(* 7. schedtest-controlled shard hand-off.                             *)

let controlled_handoff () =
  let p = W.random_prog ~rng:(Rng.create 5) ~threads:40 ~locs:8 ~accesses_per_thread:4 () in
  let want = oracle p in
  let trace = Codec.capture [ p ] in
  for seed = 0 to 9 do
    let outcomes = ref [] in
    let runner tasks =
      let r = Control.run (Control.Random seed) ~tasks:(Array.to_list tasks) in
      outcomes := r.Control.outcome :: !outcomes
    in
    with_server ~shards:3 ~batch:16 ~runner (fun srv ->
        let got = run_one ~ctx:(Printf.sprintf "seed %d" seed) srv trace in
        check_result (Printf.sprintf "controlled seed %d" seed) want got;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: flushes completed" seed)
          true
          (!outcomes <> [] && List.for_all (fun o -> o = Control.Completed) !outcomes))
  done

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spr_ingest"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "registry differential" `Quick registry_roundtrip;
          Alcotest.test_case "buggy variants report" `Quick buggy_variants_report;
          Alcotest.test_case "multi-program trace" `Quick multi_program_trace;
          Alcotest.test_case "header-only trace" `Quick empty_trace;
          QCheck_alcotest.to_alcotest random_matches_oracle;
          QCheck_alcotest.to_alcotest adversarial_matches_oracle;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "registry differential" `Quick sharded_matches_serial;
          Alcotest.test_case "controlled hand-off" `Quick controlled_handoff;
          QCheck_alcotest.to_alcotest sharded_random_matches_serial;
        ] );
      ( "resident",
        [ Alcotest.test_case "in-place reuse" `Quick resident_reuse ] );
      ( "decoder",
        [
          Alcotest.test_case "diagnostics locate the frame" `Quick diagnostics_locate_the_frame;
          QCheck_alcotest.to_alcotest truncation_is_an_error;
          QCheck_alcotest.to_alcotest corruption_never_escapes;
        ] );
    ]
