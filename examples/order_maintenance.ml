(* A tour of the order-maintenance substrate (paper Section 2 and 4).

   1. The ADT: insert-after / insert-before / precedes / delete.
   2. Amortization in action: hammering one gap forces rebalances, yet
      the relabel counters stay O(1) per insertion for the two-level
      structure.
   3. The concurrent structure: lock-free queries validated against a
      writer forcing rebalances from another domain — the Section 4
      machinery (timestamps, five passes, double reads) observable via
      its retry counter.

   Run with:  dune exec examples/order_maintenance.exe *)

module Om = Spr_om.Om
module Omc = Spr_om.Om_concurrent

let () =
  Format.printf "== 1. The order-maintenance ADT ==@.";
  let om = Om.create () in
  let a = Om.base om in
  let c = Om.insert_after om a in
  let b = Om.insert_after om a in
  (* order now: a, b, c *)
  let z = Om.insert_before om a in
  (* order now: z, a, b, c *)
  assert (Om.precedes om z a);
  assert (Om.precedes om a b);
  assert (Om.precedes om b c);
  assert (not (Om.precedes om c a));
  Format.printf "  inserted 4 elements; order z < a < b < c verified.@.";
  Om.delete om b;
  assert (Om.precedes om a c);
  Format.printf "  deleted the middle element; a < c still answers in O(1).@.";

  Format.printf "@.== 2. Amortized O(1) insertions under the worst-case pattern ==@.";
  let om = Om.create () in
  let anchor = Om.base om in
  let n = 100_000 in
  for _ = 1 to n do
    ignore (Om.insert_after om anchor)
  done;
  Om.check_invariants om;
  let st = Om.stats om in
  Format.printf
    "  %d inserts into one gap: %d relabel passes, %.3f elements moved/insert,@.  largest \
     relabeled range %d, %d buckets@."
    n st.Spr_om.Om_intf.relabel_passes
    (float_of_int st.Spr_om.Om_intf.items_moved /. float_of_int n)
    st.Spr_om.Om_intf.max_range (Om.bucket_count om);

  Format.printf "@.== 3. Lock-free concurrent queries (Section 4) ==@.";
  let t = Omc.create () in
  let chain = Array.make 2_001 (Omc.base t) in
  for i = 1 to 2_000 do
    chain.(i) <- Omc.insert_after t chain.(i - 1)
  done;
  let stop = Atomic.make false in
  let errors = Atomic.make 0 in
  let queries = Atomic.make 0 in
  let reader seed () =
    let rng = Spr_util.Rng.create seed in
    while not (Atomic.get stop) do
      let i = Spr_util.Rng.int rng 2_001 and j = Spr_util.Rng.int rng 2_001 in
      Atomic.incr queries;
      if Omc.precedes t chain.(i) chain.(j) <> (i < j) then Atomic.incr errors
    done
  in
  let readers = [ Domain.spawn (reader 1); Domain.spawn (reader 2) ] in
  (* Writer: hammer one gap, forcing rebalances that overlap the
     readers' double-read windows. *)
  for _ = 1 to 5_000 do
    ignore (Omc.insert_after t chain.(1_000))
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Omc.check_invariants t;
  Format.printf
    "  2 reader domains issued %d lock-free queries against a rebalancing writer:@.  %d wrong \
     answers, %d retried attempts.@.  (A retry is a query that caught a concurrent rebalance via \
     the timestamps;@.  on a single-core machine domains rarely interleave mid-rebalance, so@.  \
     0 retries is common here — the protocol itself is what keeps errors at 0.)@."
    (Atomic.get queries) (Atomic.get errors) (Omc.query_retries t);
  assert (Atomic.get errors = 0);
  Format.printf "@.All order-maintenance assertions hold.@."
