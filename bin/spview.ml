(* spview — command-line explorer for the SP-maintenance library.

   Subcommands:
     tree    generate a parse tree; print it, its English/Hebrew labels
             and (optionally) its computation dag
     detect  run a determinacy-race detector over a workload
     hybrid  simulate SP-hybrid on the work-stealing scheduler

   Examples:
     spview tree --gen paper --labels --dag
     spview tree --gen random --size 12 --seed 3
     spview detect --workload dcsum-buggy --size 64 --algo sp-order
     spview hybrid --workload fib --size 12 --procs 8
     spview trace --workload fib --size 8 --procs 4 --seed 1           *)

open Cmdliner
open Spr_sptree

(* A user-facing input error (unknown generator/workload/algorithm
   name): report it cleanly on stderr and exit 1 instead of dying with
   an uncaught exception and a backtrace. *)
exception Usage of string

let usage_error what name valid =
  raise
    (Usage (Printf.sprintf "unknown %s %S (valid: %s)" what name (String.concat ", " valid)))

let with_usage f =
  try f ()
  with Usage msg ->
    Printf.eprintf "spview: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* tree                                                                *)

let tree_kinds = [ "paper"; "balanced"; "deep"; "forks"; "serial"; "wide"; "random" ]

let gen_tree kind size seed =
  match kind with
  | "paper" -> Paper_example.tree ()
  | "balanced" -> Tree_gen.balanced ~leaves:size
  | "deep" -> Tree_gen.deep_nest ~depth:size
  | "forks" -> Tree_gen.fork_chain ~forks:size
  | "serial" -> Tree_gen.serial_chain ~leaves:size
  | "wide" -> Tree_gen.wide_flat ~leaves:size
  | "random" ->
      Tree_gen.random_tree ~rng:(Spr_util.Rng.create seed) ~leaves:size ~p_prob:0.5
  | other -> usage_error "generator" other tree_kinds

let tree_cmd_run kind size seed labels dag =
  with_usage @@ fun () ->
  let t = gen_tree kind size seed in
  Format.printf "parse tree (%d threads, %d forks, nesting depth %d, span %d):@.  %a@."
    (Sp_tree.leaf_count t) (Sp_tree.fork_count t) (Sp_tree.nesting_depth t) (Sp_tree.span t)
    Sp_tree.pp t;
  if labels then begin
    let eng = Sp_tree.english_order t and heb = Sp_tree.hebrew_order t in
    Format.printf "@.thread : (E, H)@.";
    Array.iteri
      (fun i (leaf : Sp_tree.node) ->
        Format.printf "  u%-4d : (%d, %d)@." i eng.(leaf.Sp_tree.id) heb.(leaf.Sp_tree.id))
      (Sp_tree.leaves t)
  end;
  if dag then begin
    Format.printf "@.computation dag:@.";
    Format.printf "%a" Sp_dag.pp (Sp_dag.of_tree t)
  end;
  0

let gen_arg =
  let doc = "Tree generator: paper, balanced, deep, forks, serial, wide, random." in
  Arg.(value & opt string "paper" & info [ "gen"; "g" ] ~docv:"KIND" ~doc)

let size_arg =
  Arg.(value & opt int 16 & info [ "size"; "n" ] ~docv:"N" ~doc:"Generator size parameter.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let tree_cmd =
  let labels = Arg.(value & flag & info [ "labels" ] ~doc:"Print English/Hebrew orders.") in
  let dag = Arg.(value & flag & info [ "dag" ] ~doc:"Print the computation dag.") in
  Cmd.v
    (Cmd.info "tree" ~doc:"Generate and display an SP parse tree")
    Term.(const tree_cmd_run $ gen_arg $ size_arg $ seed_arg $ labels $ dag)

(* ------------------------------------------------------------------ *)
(* detect                                                              *)

(* Workloads come from the shared registry ({!Spr_workloads.Progs.named})
   so spview, spingest and the capture/replay tests agree on names. *)
let gen_workload kind size seed =
  match Spr_workloads.Progs.find_opt kind with
  | Some gen -> gen ~size ~seed
  | None -> raise (Usage (Spr_workloads.Progs.unknown kind))

let detect_cmd_run kind size seed algo locked =
  with_usage @@ fun () ->
  let p = gen_workload kind size seed in
  let pt = Spr_prog.Prog_tree.of_program p in
  let make =
    match Spr_core.Algorithms.find_opt algo with
    | Some f -> f
    | None -> raise (Usage (Spr_core.Algorithms.unknown algo))
  in
  if locked then begin
    let r = Spr_race.Drivers.detect_serial_locked pt make in
    Format.printf "lock-aware detection (%s): %d race report(s) on locations [%s]@." algo
      (List.length r.Spr_race.Drivers.lock_races)
      (String.concat "; " (List.map string_of_int r.Spr_race.Drivers.racy_locs))
  end
  else begin
    let r = Spr_race.Drivers.detect_serial pt make in
    Format.printf "detection (%s): %d race report(s) on locations [%s], %d SP queries@." algo
      (List.length r.Spr_race.Drivers.races)
      (String.concat "; " (List.map string_of_int r.Spr_race.Drivers.racy_locs))
      r.Spr_race.Drivers.sp_queries;
    List.iteri
      (fun i (race : Spr_race.Detector.race) ->
        if i < 10 then
          Format.printf "  loc %d: t%d (%s) vs t%d (%s)@." race.Spr_race.Detector.loc
            race.Spr_race.Detector.earlier
            (if race.Spr_race.Detector.earlier_write then "W" else "R")
            race.Spr_race.Detector.later
            (if race.Spr_race.Detector.later_write then "W" else "R"))
      r.Spr_race.Drivers.races
  end;
  0

let workload_arg =
  let doc =
    "Workload: dcsum, dcsum-buggy, fib, deep, wide, locked, locked-buggy, random."
  in
  Arg.(value & opt string "dcsum-buggy" & info [ "workload"; "w" ] ~docv:"KIND" ~doc)

let detect_cmd =
  let algo =
    Arg.(
      value & opt string "sp-order"
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"SP oracle: sp-order, sp-bags, english-hebrew, offset-span, ...")
  in
  let locked =
    Arg.(value & flag & info [ "locked" ] ~doc:"Use the lock-aware (All-Sets) detector.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Run a determinacy-race detector")
    Term.(const detect_cmd_run $ workload_arg $ size_arg $ seed_arg $ algo $ locked)

(* ------------------------------------------------------------------ *)
(* hybrid                                                              *)

let hybrid_cmd_run kind size seed procs =
  with_usage @@ fun () ->
  let p = gen_workload kind size seed in
  Format.printf "workload: %a@." Spr_prog.Fj_program.pp_stats p;
  let h = Spr_hybrid.Sp_hybrid.create p in
  let res =
    Spr_sched.Sim.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks h) ~seed ~procs p
  in
  let st = Spr_hybrid.Sp_hybrid.stats h in
  Format.printf
    "P=%d: virtual time %d, steals %d, traces %d (= 4s+1: %b),@\n\
     local ops %d, global-insert ticks %d, lock-wait ticks %d@." procs res.Spr_sched.Sim.time
    res.Spr_sched.Sim.steals st.Spr_hybrid.Sp_hybrid.traces
    (st.Spr_hybrid.Sp_hybrid.traces = (4 * st.Spr_hybrid.Sp_hybrid.splits) + 1)
    st.Spr_hybrid.Sp_hybrid.local_ops st.Spr_hybrid.Sp_hybrid.global_insert_ticks
    st.Spr_hybrid.Sp_hybrid.lock_wait_ticks;
  0

let hybrid_cmd =
  let procs = Arg.(value & opt int 4 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Workers.") in
  Cmd.v
    (Cmd.info "hybrid" ~doc:"Simulate SP-hybrid under work stealing")
    Term.(const hybrid_cmd_run $ workload_arg $ size_arg $ seed_arg $ procs)

(* ------------------------------------------------------------------ *)
(* trace — record a run through the observability layer               *)

let trace_cmd_run kind size seed procs out metrics_fmt =
  with_usage @@ fun () ->
  (match metrics_fmt with
  | "pretty" | "json" -> ()
  | other -> usage_error "metrics format" other [ "pretty"; "json" ]);
  let p = gen_workload kind size seed in
  let tr = Spr_obs.Trace.create () in
  let m = Spr_obs.Metrics.create () in
  let sink = Spr_obs.Sink.make ~trace:tr ~metrics:m () in
  let h = Spr_hybrid.Sp_hybrid.create ~sink p in
  let precedes ~executed ~current = Spr_hybrid.Sp_hybrid.precedes h ~executed ~current in
  let det =
    Spr_race.Detector.create ~sink ~locs:(Spr_race.Detector.max_loc p + 1) ~precedes ()
  in
  (* SP-hybrid under the simulator with the race detector riding on
     each executing thread — the same assembly as `spview detect
     --algo` runs serially, but parallel, and with every layer
     reporting into the sink. *)
  let on_thread_user h ~wid:_ ~now:_ (u : Spr_prog.Fj_program.thread) =
    let before = Spr_race.Detector.query_count det in
    Spr_race.Detector.run_thread det u;
    let queries = Spr_race.Detector.query_count det - before in
    let cost = ref 0 in
    for _ = 1 to queries do
      cost := !cost + Spr_hybrid.Sp_hybrid.charge_query h
    done;
    !cost
  in
  let res =
    Spr_sched.Sim.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks ~on_thread_user h) ~sink ~seed ~procs p
  in
  let other_data =
    [
      ("workload", Spr_obs.Json.String kind);
      ("size", Spr_obs.Json.Int size);
      ("seed", Spr_obs.Json.Int seed);
      ("procs", Spr_obs.Json.Int procs);
      ("virtualTime", Spr_obs.Json.Int res.Spr_sched.Sim.time);
      ("steals", Spr_obs.Json.Int res.Spr_sched.Sim.steals);
      ("races", Spr_obs.Json.Int (List.length (Spr_race.Detector.races det)));
    ]
  in
  let oc = open_out out in
  Spr_obs.Json.to_channel oc (Spr_obs.Trace.to_chrome ~other_data tr);
  output_char oc '\n';
  close_out oc;
  (match metrics_fmt with
  | "json" -> print_endline (Spr_obs.Json.to_string (Spr_obs.Metrics.to_json m))
  | _ ->
      Format.printf
        "wrote %s: %d events (%d dropped) — load in chrome://tracing or ui.perfetto.dev@."
        out (Spr_obs.Trace.length tr) (Spr_obs.Trace.dropped tr);
      Format.printf "%a" Spr_obs.Metrics.pp m);
  0

let trace_cmd =
  let procs = Arg.(value & opt int 4 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Workers.") in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Chrome trace_event output file.")
  in
  let metrics_fmt =
    Arg.(
      value & opt string "pretty"
      & info [ "metrics" ] ~docv:"FMT" ~doc:"Metrics summary format: pretty or json.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record an instrumented SP-hybrid run as Chrome trace_event JSON plus metrics")
    Term.(const trace_cmd_run $ workload_arg $ size_arg $ seed_arg $ procs $ out $ metrics_fmt)

(* ------------------------------------------------------------------ *)
(* runtime — the same instrumented execution, on real domains          *)

let runtime_cmd_run kind size seed procs spin =
  with_usage @@ fun () ->
  let p = gen_workload kind size seed in
  Format.printf "workload: %a@." Spr_prog.Fj_program.pp_stats p;
  let h = Spr_hybrid.Sp_hybrid.create p in
  let res =
    Spr_runtime.Runtime.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks h) ~seed ~spin ~workers:procs p
  in
  let st = Spr_hybrid.Sp_hybrid.stats h in
  Format.printf
    "workers=%d: %.1f ms wall, %d steals (%d attempts), %d threads, traces %d (4s+1: %b)@."
    procs
    (res.Spr_runtime.Runtime.elapsed_s *. 1e3)
    res.Spr_runtime.Runtime.steals res.Spr_runtime.Runtime.steal_attempts
    res.Spr_runtime.Runtime.threads_run st.Spr_hybrid.Sp_hybrid.traces
    (st.Spr_hybrid.Sp_hybrid.traces = (4 * res.Spr_runtime.Runtime.steals) + 1);
  0

let runtime_cmd =
  let procs = Arg.(value & opt int 4 & info [ "workers"; "p" ] ~docv:"P" ~doc:"Domains.") in
  let spin =
    Arg.(
      value & opt int 5_000
      & info [ "spin" ] ~docv:"N"
          ~doc:
            "Busy-loop iterations per instruction of thread cost.  On a \
             single-core machine larger values create the preemption windows \
             in which steals can land.")
  in
  Cmd.v
    (Cmd.info "runtime" ~doc:"Run SP-hybrid on real OCaml domains")
    Term.(const runtime_cmd_run $ workload_arg $ size_arg $ seed_arg $ procs $ spin)

(* ------------------------------------------------------------------ *)
(* stats — metrics exposition and flight-dump decoding                 *)

let stats_cmd_run kind size seed procs fmt flight_file =
  with_usage @@ fun () ->
  (match fmt with
  | "pretty" | "json" | "prom" -> ()
  | other -> usage_error "stats format" other [ "pretty"; "json"; "prom" ]);
  match flight_file with
  | Some file ->
      (* Post-mortem: decode a binary .spr-flight dump (written by
         spfuzz or the bench alloc gate on a failing execution). *)
      let d =
        try Spr_obs.Flight.read_file file with
        | Sys_error e -> raise (Usage e)
        | Failure e -> raise (Usage (file ^ ": " ^ e))
      in
      Format.printf "%a" Spr_obs.Flight.pp_dump d;
      (match d.Spr_obs.Flight.d_snapshot with
      | None -> Format.printf "no metrics snapshot embedded@."
      | Some j -> Format.printf "metrics snapshot: %s@." (Spr_obs.Json.to_string j));
      0
  | None ->
      (* Live run: the same instrumented assembly as `spview trace`
         (SP-hybrid + race detector under the simulator, all layers
         reporting into one sink), then one merged snapshot — registry
         instruments plus the process-wide domain-sharded counters
         (concurrent-OM queries/retries, runtime steals/parks). *)
      let p = gen_workload kind size seed in
      let m = Spr_obs.Metrics.create () in
      let flight = Spr_obs.Flight.create ~lanes:procs () in
      let sink = Spr_obs.Sink.make ~metrics:m ~flight () in
      let h = Spr_hybrid.Sp_hybrid.create ~sink p in
      let precedes ~executed ~current = Spr_hybrid.Sp_hybrid.precedes h ~executed ~current in
      let det =
        Spr_race.Detector.create ~sink ~locs:(Spr_race.Detector.max_loc p + 1) ~precedes ()
      in
      let on_thread_user h ~wid:_ ~now:_ (u : Spr_prog.Fj_program.thread) =
        let before = Spr_race.Detector.query_count det in
        Spr_race.Detector.run_thread det u;
        let queries = Spr_race.Detector.query_count det - before in
        let cost = ref 0 in
        for _ = 1 to queries do
          cost := !cost + Spr_hybrid.Sp_hybrid.charge_query h
        done;
        !cost
      in
      ignore
        (Spr_sched.Sim.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks ~on_thread_user h) ~sink ~seed
           ~procs p);
      let merged =
        List.merge compare (Spr_obs.Metrics.snapshot m)
          (Spr_obs.Sharded.metrics_snapshot Spr_obs.Sharded.default)
      in
      (match fmt with
      | "prom" -> print_string (Spr_obs.Prom.render merged)
      | "json" ->
          print_endline (Spr_obs.Json.to_string (Spr_obs.Metrics.snapshot_to_json merged))
      | _ ->
          Format.printf "stats: %s n=%d seed=%d procs=%d@." kind size seed procs;
          Format.printf "%a" Spr_obs.Metrics.pp_snapshot merged);
      0

let stats_cmd =
  let procs = Arg.(value & opt int 4 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Workers.") in
  let fmt =
    Arg.(
      value & opt string "pretty"
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:
            "Output format: pretty (grouped table), json (flat object), prom (Prometheus \
             text exposition 0.0.4).")
  in
  let flight_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Instead of running a workload, decode a binary .spr-flight post-mortem dump: \
             per-lane event counts by kind plus the embedded final metrics snapshot.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an instrumented workload and print the merged metrics snapshot (registry + \
          domain-sharded counters), or decode a .spr-flight dump")
    Term.(const stats_cmd_run $ workload_arg $ size_arg $ seed_arg $ procs $ fmt $ flight_file)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "spview" ~version:"1.0.0"
      ~doc:"Explore on-the-fly series-parallel maintenance (SPAA 2004 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ tree_cmd; detect_cmd; hybrid_cmd; trace_cmd; runtime_cmd; stats_cmd ]))
