(* spingest — the streaming trace-ingestion service CLI.

   Subcommands:
     capture  generate a workload and write its .spr-trace file
     run      ingest trace files through a resident detector server
     bench    resident-server throughput on the spmix trace

   Examples:
     spingest capture --workload mergesort-buggy --size 64 -o m.spr-trace
     spingest run m.spr-trace --shards 4
     spingest bench --smoke --json ingest.json                         *)

open Cmdliner
module Codec = Spr_ingest.Codec
module Server = Spr_ingest.Server
module B = Spr_ingest.Ingest_bench
module J = Spr_obs.Json
module T = Spr_util.Table

exception Usage of string

let with_usage f =
  try f ()
  with Usage msg ->
    Printf.eprintf "spingest: %s\n" msg;
    1

let size_arg =
  Arg.(value & opt int 64 & info [ "size"; "n" ] ~docv:"N" ~doc:"Generator size parameter.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"S" ~doc:"Shadow-memory shards (domains).")

let batch_arg =
  Arg.(value & opt int 8192 & info [ "batch" ] ~docv:"B" ~doc:"Per-shard batch capacity.")

(* ------------------------------------------------------------------ *)
(* capture                                                             *)

let capture_cmd_run kind size seed count out =
  with_usage @@ fun () ->
  let gen =
    match Spr_workloads.Progs.find_opt kind with
    | Some gen -> gen
    | None -> raise (Usage (Spr_workloads.Progs.unknown kind))
  in
  if count < 1 then raise (Usage "--count must be at least 1");
  let progs = List.init count (fun i -> gen ~size ~seed:(seed + i)) in
  let bytes = Codec.capture_file out progs in
  Printf.printf "captured %d %s program(s) (size %d, seed %d): %d bytes -> %s\n" count kind
    size seed bytes out;
  0

let capture_cmd =
  let workload =
    Arg.(value & opt string "dcsum" & info [ "workload"; "w" ] ~docv:"KIND" ~doc:"Workload kind.")
  in
  let count =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"K" ~doc:"Programs per trace (seeds SEED..SEED+K-1).")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  Cmd.v
    (Cmd.info "capture" ~doc:"Capture a workload as a .spr-trace file")
    Term.(const capture_cmd_run $ workload $ size_arg $ seed_arg $ count $ out)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let parse_oracle = function
  | "sp-order-fused" -> Server.Sp_fused
  | "hb-vector" -> Server.Hb_vector
  | "hb-tree" -> Server.Hb_tree
  | s ->
      raise
        (Usage
           (Printf.sprintf "unknown oracle %S (valid: sp-order-fused, hb-vector, hb-tree)" s))

let run_cmd_run files shards batch oracle =
  with_usage @@ fun () ->
  if files = [] then raise (Usage "run needs at least one trace file");
  let oracle = parse_oracle oracle in
  if oracle <> Server.Sp_fused && shards > 1 then
    raise (Usage "clock oracles (hb-vector, hb-tree) require --shards 1");
  let srv =
    try Server.create ~shards ~batch ~oracle ()
    with Invalid_argument msg -> raise (Usage msg)
  in
  Fun.protect ~finally:(fun () -> Server.close srv) @@ fun () ->
  let code = ref 0 in
  List.iter
    (fun file ->
      match Server.run_file srv file with
      | Error e ->
          Format.eprintf "spingest: %s: %a@." file Codec.pp_error e;
          code := 1
      | Ok results ->
          Printf.printf "%s: %d program(s)\n" file (List.length results);
          List.iter
            (fun (r : Server.program_result) ->
              Printf.printf
                "  prog %d: %d race report(s) on locations [%s], %d SP queries\n"
                r.Server.index (List.length r.Server.races)
                (String.concat "; " (List.map string_of_int r.Server.racy_locs))
                r.Server.sp_queries)
            results)
    files;
  !code

let run_cmd =
  let files = Arg.(value & pos_all string [] & info [] ~docv:"FILE") in
  let oracle =
    Arg.(
      value
      & opt string "sp-order-fused"
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"SP oracle: sp-order-fused (default), hb-vector or hb-tree.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Ingest trace files through a resident detector server")
    Term.(const run_cmd_run $ files $ shards_arg $ batch_arg $ oracle)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)

(* The JSON mirrors bench_json.ml's schema exactly, so regress.exe can
   threshold either producer's output against BENCH_ingest.json. *)
let entry_json ~events (r : B.result) =
  let backend = if r.B.shards = 1 then "serial" else Printf.sprintf "sharded-%d" r.B.shards in
  let entry metric kind samples =
    let arr = Array.of_list samples in
    let q p = Spr_util.Stats.quantile arr p in
    J.Obj
      [
        ("experiment", J.String "ingest");
        ("backend", J.String backend);
        ("pattern", J.String "spmix");
        ("n", J.Int events);
        ("metric", J.String metric);
        ("kind", J.String kind);
        ("samples", J.List (List.map (fun s -> J.Float s) samples));
        ("median", J.Float (q 0.5));
        ("q25", J.Float (q 0.25));
        ("q75", J.Float (q 0.75));
        ("q90", J.Float (q 0.9));
      ]
  in
  let counter metric v = entry metric "counter" [ float_of_int v ] in
  [
    entry "ns_per_access" "time" r.B.samples;
    counter "access_events" r.B.access_events;
    counter "total_events" r.B.total_events;
    counter "races" r.B.races;
    counter "sp_queries" r.B.sp_queries;
    counter "trace_bytes" r.B.trace_bytes;
  ]

let parse_shards s =
  let parts = String.split_on_char ',' s in
  let shards =
    List.map
      (fun p ->
        match int_of_string_opt (String.trim p) with
        | Some n when n >= 1 -> n
        | _ -> raise (Usage (Printf.sprintf "bad --shards list %S (want e.g. \"1,2,4\")" s)))
      parts
  in
  if shards = [] then raise (Usage "--shards list is empty") else shards

let bench_cmd_run events repeats shards_list seed smoke json =
  with_usage @@ fun () ->
  let events = if smoke then min events 50_000 else events in
  let repeats = if smoke then min repeats 2 else repeats in
  let shard_counts = parse_shards shards_list in
  let trace = B.capture_spmix ~events ~seed in
  Printf.printf "spmix trace: >= %s access events, %s bytes\n%!" (T.fmt_int events)
    (T.fmt_int (String.length trace));
  let table =
    T.create ~title:"resident ingestion throughput"
      [ ("shards", T.Right); ("ns/access", T.Right); ("events/sec", T.Right); ("races", T.Right) ]
  in
  let entries = ref [] in
  List.iter
    (fun shards ->
      let r = B.measure ~repeats ~shards trace in
      let med = Spr_util.Stats.median (Array.of_list r.B.samples) in
      T.add_row table
        [
          string_of_int shards;
          T.fmt_ns med;
          T.fmt_int (int_of_float (B.events_per_sec med));
          T.fmt_int r.B.races;
        ];
      entries := !entries @ entry_json ~events r)
    shard_counts;
  print_string (T.render table);
  (match json with
  | None -> ()
  | Some path ->
      let doc =
        J.Obj
          [
            ("schema_version", J.Int 1);
            ("experiments", J.List [ J.String "ingest" ]);
            ("entries", J.List !entries);
          ]
      in
      let oc = open_out path in
      J.to_channel oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let bench_cmd =
  let events =
    Arg.(value & opt int 2_000_000 & info [ "events" ] ~docv:"N" ~doc:"Minimum access events in the spmix trace.")
  in
  let repeats =
    Arg.(value & opt int 5 & info [ "repeats" ] ~docv:"R" ~doc:"Timed repeats per shard count.")
  in
  let shards =
    Arg.(value & opt string "1,2,4" & info [ "shards" ] ~docv:"LIST" ~doc:"Comma-separated shard counts.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Tiny trace and 2 repeats (CI; schema unchanged).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc:"Write bench-json samples.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Measure resident-server ingestion throughput")
    Term.(const bench_cmd_run $ events $ repeats $ shards $ seed_arg $ smoke $ json)

(* ------------------------------------------------------------------ *)

let () =
  let info = Cmd.info "spingest" ~doc:"Streaming trace-ingestion service" in
  exit (Cmd.eval' (Cmd.group info [ capture_cmd; run_cmd; bench_cmd ]))
