(* spfuzz — differential fuzzer for the SP-maintenance library.

   Generates seeded random fork-join programs and order-maintenance
   op-scripts, runs them through every registered SP maintainer (serial
   walk, random legal unfoldings, SP-hybrid under simulated
   work-stealing schedules) and every OM structure, cross-validates
   against the reference oracles, and shrinks any divergence to a
   minimal replayable repro.

   With --sched the fuzzer instead drives concurrent OM scripts
   (lib/schedtest) under a controlled scheduler: seeded replayable
   random schedules, PCT with bug depth d, or bounded exhaustive DFS
   with sleep-set pruning.  Every run folds its decision trace into a
   digest printed on success, so reproducibility is checkable as
   "same command, same digest".

   Examples:
     spfuzz --iters 500
     spfuzz --mode sp --seed 7 --iters 200 --schedules 4
     spfuzz --mode om --iters 300
     spfuzz --algo sp-bags --iters 100
     spfuzz --inject-fault bags-flip --iters 50     # must exit 1
     spfuzz --sched replay --iters 100              # seeded-schedule sweep
     spfuzz --sched pct --depth 3 --iters 100       # probabilistic concurrency testing
     spfuzz --sched dfs --iters 10                  # exhaustive small-script DFS
     spfuzz --sched pct --inject-fault om-unvalidated   # must exit 1
     spfuzz --smoke                                  # bounded CI run   *)

open Cmdliner
module F = Spr_check.Fuzz

(* A user-facing input error (unknown scheduler/fault name): report it
   cleanly on stderr and exit 1 instead of dying with an uncaught
   exception and a backtrace (same convention as spview). *)
exception Usage of string

let usage_error what name valid =
  raise
    (Usage (Printf.sprintf "unknown %s %S (valid: %s)" what name (String.concat ", " valid)))

let with_usage f =
  try f ()
  with Usage msg ->
    Printf.eprintf "spfuzz: %s\n" msg;
    1

let say quiet fmt =
  if quiet then Printf.ifprintf stdout fmt else Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Post-mortem observability.

   Metrics and the flight recorder are always on (a null-sink run
   records nothing anyone will read, but the emit cost is a handful of
   int stores — see the bench alloc/probe gates).  On a failing
   execution the failure report gains the final metrics snapshot as
   one JSON line, and the flight recorder's event tail + that same
   snapshot are dumped to a deterministic binary [.spr-flight] file —
   same command, byte-identical dump. *)

let flight_lanes = 8

let final_snapshot metrics =
  (* Registry instruments plus the process-wide domain-sharded
     counters (concurrent-OM query/retry, runtime steal/park); both
     sides are sorted by key and the key spaces are disjoint. *)
  List.merge compare
    (Spr_obs.Metrics.snapshot metrics)
    (Spr_obs.Sharded.metrics_snapshot Spr_obs.Sharded.default)

let post_mortem ~metrics ~flight ~flight_out =
  let snapshot = Spr_obs.Metrics.snapshot_to_json (final_snapshot metrics) in
  Format.printf "final metrics snapshot: %s@." (Spr_obs.Json.to_string snapshot);
  Spr_obs.Flight.write_file ~snapshot flight flight_out;
  let recent = ref 0 and total = ref 0 in
  for l = 0 to Spr_obs.Flight.lanes flight - 1 do
    recent := !recent + Spr_obs.Flight.lane_length flight l;
    total := !total + Spr_obs.Flight.lane_length flight l + Spr_obs.Flight.lane_dropped flight l
  done;
  Format.printf "flight recorder: %d recent events (%d recorded) dumped to %s@." !recent !total
    flight_out

let config ~seed ~iters ~max_threads ~schedules ~algo ~inject ~quiet ~sink =
  let algos =
    match algo with
    | None -> Spr_core.Algorithms.all
    | Some name -> [ (name, Spr_core.Algorithms.find name) ]
  in
  let algos, om_suts =
    match inject with
    | `Bags_flip -> (algos @ [ Spr_check.Faulty.sp_bags_flipped ], F.default_om_suts)
    | `Om_before_after ->
        ( algos,
          F.default_om_suts
          @ [ ("om-broken-insert-before", Spr_check.Faulty.om_broken_insert_before) ] )
    | `None | `Om_unvalidated | `Hb_vec_nojoin | `Hb_tree_norestore -> (algos, F.default_om_suts)
  in
  let hb_algos =
    match inject with
    | `Hb_vec_nojoin -> F.default_hb_algos @ [ Spr_check.Faulty.hb_vector_no_join ]
    | `Hb_tree_norestore -> F.default_hb_algos @ [ Spr_check.Faulty.hb_tree_no_restore ]
    | _ -> F.default_hb_algos
  in
  (* Cross-validation pairs only make sense when both members run:
     --algo restricts the battery to one maintainer, so drop them. *)
  let sp_pairs = match algo with None -> F.default_sp_pairs | Some _ -> [] in
  {
    F.seed;
    iters;
    max_threads;
    schedules;
    algos;
    sp_pairs;
    hb_algos;
    om_suts;
    om_pairs = F.default_om_pairs;
    log = (fun line -> say quiet "%s" line);
    sink;
  }

(* ------------------------------------------------------------------ *)
(* --sched: schedule exploration over concurrent OM scripts           *)

module Control = Spr_schedtest.Control
module Cscript = Spr_schedtest.Cscript
module Explore = Spr_schedtest.Explore

let trace_of (r : Control.report) =
  Array.to_list (Array.map (fun (d : Control.decision) -> d.Control.chosen) r.Control.decisions)

(* Rolling FNV-1a over every per-run trace digest: one 16-hex-digit
   summary of everything the controller decided, byte-identical across
   reruns of the same command. *)
let fnv_offset = 0xcbf29ce484222325L

let fold_digest h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let sched_structures inject : (string * (module Spr_om.Om_intf.CONCURRENT)) list =
  let base =
    [
      ("om-concurrent", (module Spr_om.Om_concurrent : Spr_om.Om_intf.CONCURRENT));
      ("om-concurrent-2level", (module Spr_om.Om_concurrent2));
    ]
  in
  match inject with
  | `Om_unvalidated ->
      base @ [ ("om-concurrent-unvalidated", Spr_check.Faulty.om_concurrent_unvalidated) ]
  | _ -> base

(* Replay/PCT scripts: big enough that head-insert chains trigger label
   rebalances (the interesting torn states).  DFS scripts are one size
   down: head = 3 with one insert rebalances immediately (the full
   validated state space of that shape is ~1.2e5 interleavings, see
   EXPERIMENTS.md, so those runs lean on the schedule budget), while
   head <= 2 shapes stay rebalance-free and fully enumerable in a few
   hundred schedules. *)
let gen_script ~dfs rng =
  let ii = Spr_util.Rng.int_in rng in
  if dfs then begin
    let prelude_head = ii 1 3 in
    Cscript.random ~rng ~prelude_head ~prelude_base:(ii 0 1)
      ~writer_len:(if prelude_head >= 2 then 1 else ii 1 2)
      ~readers:(ii 1 2) ~queries:1
  end
  else
    Cscript.random ~rng ~prelude_head:(ii 2 3) ~prelude_base:(ii 0 1) ~writer_len:(ii 2 4)
      ~readers:(ii 1 2) ~queries:2

let pct_steps = 64

let replay_line ~sched ~depth ~inject ~seed =
  Format.printf "replay: spfuzz --sched %s%s%s --seed %d --iters 1@." sched
    (if sched = "pct" then Printf.sprintf " --depth %d" depth else "")
    (if inject = `Om_unvalidated then " --inject-fault om-unvalidated" else "")
    seed

let run_sched ~sched ~seed ~iters ~depth ~inject ~smoke ~quiet ~metrics_fmt ~flight_out =
  (match sched with
  | "replay" | "pct" | "dfs" -> ()
  | other -> usage_error "scheduler" other [ "replay"; "pct"; "dfs" ]);
  ignore quiet;
  let metrics = Spr_obs.Metrics.create () in
  let flight = Spr_obs.Flight.create ~lanes:flight_lanes () in
  let sink = Spr_obs.Sink.make ~metrics ~flight () in
  let iters = if smoke then min iters (if sched = "dfs" then 6 else 40) else iters in
  let max_schedules = if smoke then 5_000 else 20_000 in
  let structures = sched_structures inject in
  let digest = ref fnv_offset in
  let totals = { Explore.schedules = 0; pruned = 0; max_depth = 0; truncated = false } in
  let failed = ref false in
  (* Per script, try several scheduler seeds (derived from the script
     seed, so a one-iteration replay regenerates them all). *)
  let tries = 5 in
  let strategy_of s =
    if sched = "pct" then Control.Pct { seed = s; depth; steps = pct_steps }
    else Control.Random s
  in
  let record (r : Control.report) =
    let tr = trace_of r in
    digest := fold_digest !digest (Control.digest tr);
    totals.Explore.schedules <- totals.Explore.schedules + 1;
    totals.Explore.max_depth <- max totals.Explore.max_depth (List.length tr)
  in
  let report_failure ~name ~i ~msg ~shrunk ~strategy =
    (* Shrink the schedule of the *shrunk* script: ddmin the decision
       trace while a Fixed replay of it still fails. *)
    let runner strat =
      let r = Cscript.run ~sink (List.assoc name structures) shrunk strat in
      (r.Cscript.report, r.Cscript.failure)
    in
    let r, _ = runner strategy in
    let tr = Explore.shrink_schedule ~run:runner (trace_of r) in
    Format.printf "sched divergence (%s, %s, iteration %d):@.  %s@." sched name i msg;
    Format.printf "shrunk script:@.%a@." Cscript.pp shrunk;
    Format.printf "shrunk schedule (%d decisions): %a@." (List.length tr) Control.pp_trace tr;
    replay_line ~sched ~depth ~inject ~seed:(seed + i);
    failed := true
  in
  for i = 0 to iters - 1 do
       if not !failed then begin
         let rng = Spr_util.Rng.create (seed + i) in
         let script = gen_script ~dfs:(sched = "dfs") rng in
         List.iter
           (fun (name, m) ->
             if not !failed then
               if sched = "dfs" then begin
                 let runner strat =
                   let r = Cscript.run ~sink m script strat in
                   record r.Cscript.report;
                   (r.Cscript.report, r.Cscript.failure)
                 in
                 (* [record] already counts schedules; take pruning and
                    truncation from the DFS stats. *)
                 let st, failures = Explore.dfs ~max_schedules ~run:runner () in
                 totals.Explore.pruned <- totals.Explore.pruned + st.Explore.pruned;
                 totals.Explore.truncated <- totals.Explore.truncated || st.Explore.truncated;
                 match failures with
                 | [] -> ()
                 | f :: _ ->
                     let tr = Explore.shrink_schedule ~run:runner f.Explore.trace in
                     Format.printf "sched divergence (dfs, %s, iteration %d):@.  %s@." name i
                       f.Explore.message;
                     Format.printf "script:@.%a@." Cscript.pp script;
                     Format.printf "shrunk schedule (%d decisions): %a@." (List.length tr)
                       Control.pp_trace tr;
                     replay_line ~sched ~depth ~inject ~seed:(seed + i);
                     failed := true
               end
               else
                 for k = 0 to tries - 1 do
                   if not !failed then begin
                     let strategy = strategy_of (((seed + i) * 31) + k) in
                     let r = Cscript.run ~sink m script strategy in
                     record r.Cscript.report;
                     match r.Cscript.failure with
                     | None -> ()
                     | Some msg ->
                         let still_failing s =
                           (Cscript.run ~sink m s strategy).Cscript.failure <> None
                         in
                         let shrunk = Cscript.shrink ~still_failing script in
                         report_failure ~name ~i ~msg ~shrunk ~strategy
                   end
                 done)
          structures
      end
  done;
  Spr_obs.Metrics.add (Spr_obs.Metrics.counter metrics "schedtest/schedules") totals.Explore.schedules;
  Spr_obs.Metrics.add (Spr_obs.Metrics.counter metrics "schedtest/pruned") totals.Explore.pruned;
  Spr_obs.Metrics.set
    (Spr_obs.Metrics.gauge metrics "schedtest/max_depth")
    (float_of_int totals.Explore.max_depth);
  if !failed then begin
    post_mortem ~metrics ~flight ~flight_out;
    1
  end
  else begin
    (match metrics_fmt with
    | Some "json" -> print_endline (Spr_obs.Json.to_string (Spr_obs.Metrics.to_json metrics))
    | fmt ->
        Printf.printf
          "spfuzz: OK — sched %s: %d scripts x %d structures, %d schedules explored, %d pruned, max depth %d%s, digest %016Lx\n"
          sched iters (List.length structures) totals.Explore.schedules totals.Explore.pruned
          totals.Explore.max_depth
          (if totals.Explore.truncated then " (budget-truncated)" else "")
          !digest;
        if fmt <> None then Format.printf "%a" Spr_obs.Metrics.pp metrics);
    0
  end

let run mode seed iters max_threads schedules algo inject sched depth smoke quiet metrics_fmt
    flight_out =
  with_usage @@ fun () ->
  let inject =
    match inject with
    | "none" -> `None
    | "bags-flip" -> `Bags_flip
    | "om-before-after" -> `Om_before_after
    | "om-unvalidated" -> `Om_unvalidated
    | "hb-vec-nojoin" -> `Hb_vec_nojoin
    | "hb-tree-norestore" -> `Hb_tree_norestore
    | other ->
        usage_error "fault" other
          [
            "none";
            "bags-flip";
            "om-before-after";
            "om-unvalidated";
            "hb-vec-nojoin";
            "hb-tree-norestore";
          ]
  in
  match sched with
  | Some sched -> run_sched ~sched ~seed ~iters ~depth ~inject ~smoke ~quiet ~metrics_fmt ~flight_out
  | None ->
  if inject = `Om_unvalidated then
    raise
      (Usage
         "fault \"om-unvalidated\" races a query against a relabel — it needs a controlled \
          scheduler; combine it with --sched (valid: replay, pct, dfs)");
  (* The smoke profile is the CI configuration: small and bounded
     (~seconds), still covering every maintainer, every OM structure
     and several schedules. *)
  let iters = if smoke then min iters 60 else iters in
  let max_threads = if smoke then min max_threads 16 else max_threads in
  (* Metrics and the flight recorder are always armed; --metrics only
     controls whether the success path prints the registry (pure JSON
     on stdout for --metrics json). *)
  let metrics = Spr_obs.Metrics.create () in
  let flight = Spr_obs.Flight.create ~lanes:flight_lanes () in
  let sink = Spr_obs.Sink.make ~metrics ~flight () in
  let quiet = quiet || metrics_fmt = Some "json" in
  let cfg = config ~seed ~iters ~max_threads ~schedules ~algo ~inject ~quiet ~sink in
  let failed = ref false in
  let sp_checked = ref 0 and hb_checked = ref 0 and om_checked = ref 0 in
  if mode = "sp" || mode = "all" then begin
    sp_checked := cfg.F.iters;
    match F.run_sp cfg with
    | None -> ()
    | Some f ->
        failed := true;
        Format.printf "%a@." F.pp_sp_failure f;
        Format.printf "replay: spfuzz --mode sp --seed %d --iters %d@." cfg.F.seed (f.F.sp_iter + 1)
  end;
  if (not !failed) && (mode = "hb" || mode = "all") then begin
    hb_checked := cfg.F.iters;
    match F.run_hb cfg with
    | None -> ()
    | Some f ->
        failed := true;
        Format.printf "%a@." F.pp_hb_failure f;
        Format.printf "replay: spfuzz --mode hb --seed %d --iters %d@." cfg.F.seed (f.F.hb_iter + 1)
  end;
  if (not !failed) && (mode = "om" || mode = "all") then begin
    om_checked := cfg.F.iters;
    match F.run_om cfg with
    | None -> ()
    | Some f ->
        failed := true;
        Format.printf "%a@." F.pp_om_failure f;
        Format.printf "replay: spfuzz --mode om --seed %d --iters %d@." cfg.F.seed (f.F.om_iter + 1)
  end;
  if !failed then begin
    post_mortem ~metrics ~flight ~flight_out;
    1
  end
  else begin
    (match metrics_fmt with
    | Some "json" -> print_endline (Spr_obs.Json.to_string (Spr_obs.Metrics.to_json metrics))
    | fmt ->
        Printf.printf
          "spfuzz: OK — %d program iterations (%d maintainers + %d cross-checks), %d HB triples (%d clock oracles vs sp-order-fused), %d script iterations (%d OM structures + %d cross-checks), 0 divergences\n"
          !sp_checked (List.length cfg.F.algos)
          (List.length cfg.F.sp_pairs)
          !hb_checked
          (List.length cfg.F.hb_algos)
          !om_checked (List.length cfg.F.om_suts)
          (List.length cfg.F.om_pairs);
        if fmt <> None then Format.printf "%a" Spr_obs.Metrics.pp metrics);
    0
  end

let mode_arg =
  let doc =
    "What to fuzz: sp (maintainers), hb (three-way differential race oracle: sp-order-fused vs \
     vector clocks vs tree clocks), om (order maintenance), all."
  in
  Arg.(
    value
    & opt (enum [ ("sp", "sp"); ("hb", "hb"); ("om", "om"); ("all", "all") ]) "all"
    & info [ "mode" ] ~docv:"MODE" ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")

let iters_arg =
  Arg.(value & opt int 500 & info [ "iters" ] ~docv:"N" ~doc:"Iterations per mode.")

let max_threads_arg =
  Arg.(
    value & opt int 32
    & info [ "max-threads" ] ~docv:"N" ~doc:"Thread-count ceiling for generated programs.")

let schedules_arg =
  Arg.(
    value & opt int 3
    & info [ "schedules" ] ~docv:"N"
        ~doc:"Simulated work-stealing schedules (worker count, steal seed) per program.")

let algo_conv =
  let parse s =
    match Spr_core.Algorithms.find_opt s with
    | Some _ -> Ok s
    | None -> Error (`Msg (Spr_core.Algorithms.unknown s))
  in
  Arg.conv (parse, Format.pp_print_string)

let algo_arg =
  Arg.(
    value
    & opt (some algo_conv) None
    & info [ "algo" ] ~docv:"NAME" ~doc:"Fuzz only this SP maintainer (default: all).")

let inject_arg =
  let doc =
    "Plant a known bug and expect the fuzzer to catch it: none, bags-flip (SP-bags with the \
     bag-kind comparison flipped), om-before-after (OM insert_before aliased to insert_after), \
     om-unvalidated (concurrent OM query without the read-validation loop; needs --sched), \
     hb-vec-nojoin (vector clocks that skip the join at procedure exit), hb-tree-norestore \
     (tree clocks that skip the snapshot restore after a spawn)."
  in
  Arg.(value & opt string "none" & info [ "inject-fault" ] ~docv:"FAULT" ~doc)

let sched_arg =
  let doc =
    "Fuzz concurrent OM scripts under a controlled scheduler instead of the differential modes: \
     replay (seeded random schedules, replayable by seed), pct (probabilistic concurrency \
     testing with bug depth $(b,--depth)), dfs (bounded exhaustive interleaving enumeration \
     with sleep-set pruning)."
  in
  Arg.(value & opt (some string) None & info [ "sched" ] ~docv:"SCHED" ~doc)

let depth_arg =
  Arg.(
    value & opt int 3
    & info [ "depth" ] ~docv:"D"
        ~doc:"PCT bug depth: number of priority change points is D-1 (with --sched pct).")

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ] ~doc:"Bounded CI profile (caps iterations and sizes).")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress output.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("pretty", "pretty"); ("json", "json") ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Collect observability metrics across all checked schedules and print them on \
           success (pretty or json; json prints only the JSON object).")

let flight_out_arg =
  Arg.(
    value
    & opt string "spfuzz.spr-flight"
    & info [ "flight-out" ] ~docv:"FILE"
        ~doc:
          "Where to write the post-mortem flight-recorder dump (binary .spr-flight: recent \
           trace events + final metrics snapshot) when a failing execution is found.  \
           Deterministic: the same failing command writes a byte-identical file.")

let cmd =
  Cmd.v
    (Cmd.info "spfuzz" ~doc:"Differential fuzzer for SP maintenance and order maintenance")
    Term.(
      const run $ mode_arg $ seed_arg $ iters_arg $ max_threads_arg $ schedules_arg $ algo_arg
      $ inject_arg $ sched_arg $ depth_arg $ smoke_arg $ quiet_arg $ metrics_arg
      $ flight_out_arg)

let () = exit (Cmd.eval' cmd)
