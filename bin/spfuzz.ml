(* spfuzz — differential fuzzer for the SP-maintenance library.

   Generates seeded random fork-join programs and order-maintenance
   op-scripts, runs them through every registered SP maintainer (serial
   walk, random legal unfoldings, SP-hybrid under simulated
   work-stealing schedules) and every OM structure, cross-validates
   against the reference oracles, and shrinks any divergence to a
   minimal replayable repro.

   Examples:
     spfuzz --iters 500
     spfuzz --mode sp --seed 7 --iters 200 --schedules 4
     spfuzz --mode om --iters 300
     spfuzz --algo sp-bags --iters 100
     spfuzz --inject-fault bags-flip --iters 50     # must exit 1
     spfuzz --smoke                                  # bounded CI run   *)

open Cmdliner
module F = Spr_check.Fuzz

let say quiet fmt =
  if quiet then Printf.ifprintf stdout fmt else Printf.printf (fmt ^^ "\n%!")

let config ~seed ~iters ~max_threads ~schedules ~algo ~inject ~quiet ~sink =
  let algos =
    let all = Spr_core.Algorithms.all in
    match algo with
    | None -> all
    | Some name -> [ (name, List.assoc name all) ]
  in
  let algos, om_suts =
    match inject with
    | `Bags_flip -> (algos @ [ Spr_check.Faulty.sp_bags_flipped ], F.default_om_suts)
    | `Om_before_after ->
        ( algos,
          F.default_om_suts
          @ [ ("om-broken-insert-before", Spr_check.Faulty.om_broken_insert_before) ] )
    | `None -> (algos, F.default_om_suts)
  in
  {
    F.seed;
    iters;
    max_threads;
    schedules;
    algos;
    om_suts;
    om_pairs = F.default_om_pairs;
    log = (fun line -> say quiet "%s" line);
    sink;
  }

let run mode seed iters max_threads schedules algo inject smoke quiet metrics_fmt =
  (* The smoke profile is the CI configuration: small and bounded
     (~seconds), still covering every maintainer, every OM structure
     and several schedules. *)
  let iters = if smoke then min iters 60 else iters in
  let max_threads = if smoke then min max_threads 16 else max_threads in
  (* With --metrics the success line is replaced by the metrics dump
     (pure JSON on stdout for --metrics json). *)
  let registry = match metrics_fmt with None -> None | Some _ -> Some (Spr_obs.Metrics.create ()) in
  let sink =
    match registry with
    | None -> Spr_obs.Sink.null
    | Some m -> Spr_obs.Sink.make ~metrics:m ()
  in
  let quiet = quiet || metrics_fmt = Some "json" in
  let cfg = config ~seed ~iters ~max_threads ~schedules ~algo ~inject ~quiet ~sink in
  let failed = ref false in
  let sp_checked = ref 0 and om_checked = ref 0 in
  if mode = "sp" || mode = "all" then begin
    sp_checked := cfg.F.iters;
    match F.run_sp cfg with
    | None -> ()
    | Some f ->
        failed := true;
        Format.printf "%a@." F.pp_sp_failure f;
        Format.printf "replay: spfuzz --mode sp --seed %d --iters %d@." cfg.F.seed (f.F.sp_iter + 1)
  end;
  if (not !failed) && (mode = "om" || mode = "all") then begin
    om_checked := cfg.F.iters;
    match F.run_om cfg with
    | None -> ()
    | Some f ->
        failed := true;
        Format.printf "%a@." F.pp_om_failure f;
        Format.printf "replay: spfuzz --mode om --seed %d --iters %d@." cfg.F.seed (f.F.om_iter + 1)
  end;
  if !failed then 1
  else begin
    (match registry with
    | Some m when metrics_fmt = Some "json" ->
        print_endline (Spr_obs.Json.to_string (Spr_obs.Metrics.to_json m))
    | Some m ->
        Printf.printf
          "spfuzz: OK — %d program iterations (%d maintainers), %d script iterations (%d OM structures + %d cross-checks), 0 divergences\n"
          !sp_checked (List.length cfg.F.algos) !om_checked (List.length cfg.F.om_suts)
          (List.length cfg.F.om_pairs);
        Format.printf "%a" Spr_obs.Metrics.pp m
    | None ->
        Printf.printf
          "spfuzz: OK — %d program iterations (%d maintainers), %d script iterations (%d OM structures + %d cross-checks), 0 divergences\n"
          !sp_checked (List.length cfg.F.algos) !om_checked (List.length cfg.F.om_suts)
          (List.length cfg.F.om_pairs));
    0
  end

let mode_arg =
  let doc = "What to fuzz: sp (maintainers), om (order maintenance), all." in
  Arg.(
    value
    & opt (enum [ ("sp", "sp"); ("om", "om"); ("all", "all") ]) "all"
    & info [ "mode" ] ~docv:"MODE" ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")

let iters_arg =
  Arg.(value & opt int 500 & info [ "iters" ] ~docv:"N" ~doc:"Iterations per mode.")

let max_threads_arg =
  Arg.(
    value & opt int 32
    & info [ "max-threads" ] ~docv:"N" ~doc:"Thread-count ceiling for generated programs.")

let schedules_arg =
  Arg.(
    value & opt int 3
    & info [ "schedules" ] ~docv:"N"
        ~doc:"Simulated work-stealing schedules (worker count, steal seed) per program.")

let algo_conv =
  let parse s =
    if List.mem_assoc s Spr_core.Algorithms.all then Ok s
    else
      let names = String.concat ", " (List.map fst Spr_core.Algorithms.all) in
      Error (`Msg (Printf.sprintf "unknown algorithm %S (have: %s)" s names))
  in
  Arg.conv (parse, Format.pp_print_string)

let algo_arg =
  Arg.(
    value
    & opt (some algo_conv) None
    & info [ "algo" ] ~docv:"NAME" ~doc:"Fuzz only this SP maintainer (default: all).")

let inject_arg =
  let doc =
    "Plant a known bug and expect the fuzzer to catch it: none, bags-flip (SP-bags with the \
     bag-kind comparison flipped), om-before-after (OM insert_before aliased to insert_after)."
  in
  Arg.(
    value
    & opt
        (enum [ ("none", `None); ("bags-flip", `Bags_flip); ("om-before-after", `Om_before_after) ])
        `None
    & info [ "inject-fault" ] ~docv:"FAULT" ~doc)

let smoke_arg =
  Arg.(value & flag & info [ "smoke" ] ~doc:"Bounded CI profile (caps iterations and sizes).")

let quiet_arg = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress output.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("pretty", "pretty"); ("json", "json") ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Collect observability metrics across all checked schedules and print them on \
           success (pretty or json; json prints only the JSON object).")

let cmd =
  Cmd.v
    (Cmd.info "spfuzz" ~doc:"Differential fuzzer for SP maintenance and order maintenance")
    Term.(
      const run $ mode_arg $ seed_arg $ iters_arg $ max_threads_arg $ schedules_arg $ algo_arg
      $ inject_arg $ smoke_arg $ quiet_arg $ metrics_arg)

let () = exit (Cmd.eval' cmd)
