(* Benchmark regression gates.

   Three modes:

     regress BASELINE.json CANDIDATE.json [--threshold R]
       Compare bench --json files (schema bench_json.ml).  Every entry
       in the baseline must be present in the candidate, matched on
       (experiment, backend, pattern, n, metric).  Rules:
         - kind "time":    fail if candidate median > R x baseline
                           median (default R = 1.5; CI uses 3.0 to
                           absorb machine-to-machine variance);
         - kind "counter": fail on any drift beyond float noise —
                           counters are deterministic for the fixed
                           seed, so a change means the algorithm
                           changed and the baseline needs a deliberate
                           refresh.
       Baseline entries with no candidate match fail the run and are
       named in the summary line; an empty baseline is an error, not a
       silent pass.

     regress --alloc-gate [--plant] [--iters N]
       Drive the sp-order-packed (Om_packed) delete/insert/relabel/
       query steady state — with a flight-recorder-armed sink, i.e.
       the always-on production configuration — under
       Spr_obs.Probe.alloc_words and fail unless it allocated zero
       minor-heap words.  --plant plants one allocation per iteration
       so CI can check the gate actually trips.

     regress --alloc-gate --e2e [--plant] [--iters N]
       The end-to-end variant: a full sp-order-fused race-detection
       run per iteration — arena parse-tree rebuild, fused
       English/Hebrew fork/join walk, every shadow access and SP
       query (Spr_race.Drivers.Fused) — over a deterministic
       race-free fork-join program, pinned at zero minor words in
       steady state.

     regress --alloc-gate --ingest [--plant] [--iters N]
       The ingestion-service variant: one full Spr_ingest.Server.drive
       per iteration — trace header check, every frame decoded,
       streaming SP construction and every shadow access — over the
       captured trace of the same race-free program, pinned at zero
       minor words in steady state.

     regress --probe-gate [--max-ns F]
       Bechamel-measure an uninstalled Spr_obs.Probe.span and fail if
       it estimates above F ns/span (default 5.0) — the "one atomic
       load" claim, kept honest.

   Exit codes: 0 clean, 1 gate failed, 2 usage or parse error.  To
   refresh the committed baseline after an intentional change:
   dune exec bench/main.exe -- om --json BENCH_om.json *)

module J = Spr_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("regress: " ^ s); exit 2) fmt

(* ------------------------------------------------------------------ *)
(* Mode 1: baseline/candidate comparison.                              *)

let load path =
  let ic = try open_in path with Sys_error e -> die "%s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match J.of_string s with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

let get_string key j =
  match J.member key j with Some (J.String s) -> s | _ -> die "entry missing %S" key

let get_int key j =
  match J.member key j with Some (J.Int i) -> i | _ -> die "entry missing %S" key

let get_num key j =
  match J.member key j with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> die "entry missing %S" key

let entries path j =
  match J.member "entries" j with
  | Some (J.List es) -> es
  | _ -> die "%s: no \"entries\" array (not a bench --json file?)" path

let entry_key e =
  Printf.sprintf "%s/%s/%s/n=%d/%s" (get_string "experiment" e) (get_string "backend" e)
    (get_string "pattern" e) (get_int "n" e) (get_string "metric" e)

let compare_mode base_path cand_path threshold =
  let base = load base_path and cand = load cand_path in
  let base_entries = entries base_path base in
  if base_entries = [] then
    die "%s: baseline has no entries — nothing would be checked" base_path;
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace cand_tbl (entry_key e) e) (entries cand_path cand);
  let failures = ref 0 in
  let checked = ref 0 in
  let missing = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL %s\n" s) fmt in
  List.iter
    (fun b ->
      let key = entry_key b in
      incr checked;
      match Hashtbl.find_opt cand_tbl key with
      | None ->
          missing := key :: !missing;
          fail "%s: missing from candidate" key
      | Some c -> (
          let bm = get_num "median" b and cm = get_num "median" c in
          match get_string "kind" b with
          | "time" ->
              if cm > bm *. threshold then
                fail "%s: median %.1f vs baseline %.1f (%.2fx > %.2fx threshold)" key cm bm
                  (cm /. bm) threshold
          | "counter" ->
              let tol = 1e-6 *. Float.max 1.0 (Float.abs bm) in
              if Float.abs (cm -. bm) > tol then
                fail "%s: counter %.6f vs baseline %.6f — deterministic counter drifted; \
                      refresh the baseline if the change is intentional"
                  key cm bm
          | k -> fail "%s: unknown kind %S" key k))
    base_entries;
  if !missing <> [] then
    Printf.printf "regress: %d baseline entr%s missing from candidate: %s\n"
      (List.length !missing)
      (if List.length !missing = 1 then "y" else "ies")
      (String.concat ", " (List.rev !missing));
  if !failures > 0 then begin
    Printf.printf "regress: %d/%d entries FAILED (threshold %.2fx)\n" !failures !checked threshold;
    exit 1
  end
  else Printf.printf "regress: OK — %d entries within %.2fx of baseline\n" !checked threshold

(* ------------------------------------------------------------------ *)
(* Mode 2: the allocation gate.                                        *)

module P = Spr_om.Om_packed
module Probe = Spr_obs.Probe

(* The packed-OM steady state: a window of elements cycling through
   delete -> insert_after (which triggers respace/rebalance relabels
   and bucket splits against recycled slots) -> precedes queries.  All
   index arithmetic is deterministic and allocation-free; anchors and
   query operands are fixed elements outside the churn window. *)
let alloc_gate ~plant ~iters () =
  let om = P.create () in
  (* Always-on production shape: flight recorder armed, no trace
     buffer — the relabel/split events go through the typed no-alloc
     emitters into plain int rings. *)
  let flight = Spr_obs.Flight.create ~lanes:1 ~capacity:256 () in
  let sink = Spr_obs.Sink.make ~flight () in
  P.set_sink om sink;
  let n_anchors = 64 and window = 4096 in
  let anchors = Array.init n_anchors (fun _ -> P.base om) in
  let a = ref (P.base om) in
  for i = 0 to n_anchors - 1 do
    a := P.insert_after om !a;
    anchors.(i) <- !a
  done;
  (* Bucket-slot slack: grow past the steady population, then delete,
     leaving recycled item and bucket slots for the churn to reuse. *)
  let extra = Array.init (2 * window) (fun i -> ignore i; P.insert_after om anchors.(0)) in
  Array.iter (fun e -> P.delete om e) extra;
  let handles = Array.init window (fun i -> P.insert_after om anchors.(i mod n_anchors)) in
  let qa = Array.init 128 (fun i -> anchors.(i mod n_anchors)) in
  let qb = Array.init 128 (fun i -> handles.(i * 31 mod window)) in
  let hits = ref 0 in
  let steady k =
    for iter = 0 to k - 1 do
      let slot = iter * 17 mod window in
      P.delete om handles.(slot);
      handles.(slot) <- P.insert_after om anchors.(iter * 7 mod n_anchors);
      let q = iter mod 128 in
      if P.precedes om qa.(q) handles.(slot) then incr hits;
      if P.precedes om handles.(slot) qb.(q) then incr hits;
      if plant then ignore (Sys.opaque_identity (ref iter))
    done
  in
  (* Reach steady state (slot high-water marks, bucket population)
     before measuring: run the identical loop unmeasured first. *)
  steady (3 * iters);
  let slots0 = P.item_slots om and bslots0 = P.bucket_slots om in
  (* The gate proper: measure with probes uninstalled, so the loop is
     exactly the production configuration. *)
  let (), words = Probe.alloc_words (fun () -> steady iters) in
  (* Attribution pass for the report: same loop again under an
     installed probe, with GC pauses bridged from runtime events. *)
  Probe.install ~runtime_events:true ();
  let region = Probe.region "sp-order-packed/steady" in
  Probe.span region (fun () -> steady iters);
  Probe.uninstall ();
  Printf.printf "alloc-gate: %d iterations of sp-order-packed delete/insert/relabel/query\n"
    iters;
  Printf.printf "alloc-gate: minor-heap words in steady state: %d%s\n" words
    (if plant then " (with planted allocation)" else "");
  Printf.printf "alloc-gate: item slots %d -> %d, bucket slots %d -> %d, flight events %d\n"
    slots0 (P.item_slots om) bslots0 (P.bucket_slots om)
    (Spr_obs.Flight.lane_length flight 0 + Spr_obs.Flight.lane_dropped flight 0);
  Format.printf "%a" Probe.pp_snapshot
    (List.filter (fun (n, _) -> n = "sp-order-packed/steady") (Probe.snapshot ()));
  ignore !hits;
  if words > 0 then begin
    Printf.printf "alloc-gate: FAIL — steady state allocated on the minor heap\n";
    exit 1
  end
  else Printf.printf "alloc-gate: OK — steady state is allocation-free\n"

(* ------------------------------------------------------------------ *)
(* Mode 2b: the end-to-end allocation gate.                            *)

module Fj = Spr_prog.Fj_program

(* A deterministic, race-free program with real SP structure: thread
   w0 writes the shared location in the main procedure's first sync
   block, then a depth-[d] spawn tree runs — every leaf reads the
   shared location (w0 precedes them all, so the reads exercise
   writer-precedes and reader-subsumption queries without racing) and
   writes one private location. *)
let e2e_program ~depth =
  let b = Fj.Builder.create () in
  let next = ref 0 in
  let fresh_loc () = incr next; !next in
  let shared = 0 in
  let worker () =
    Fj.Builder.thread b
      ~accesses:
        [
          { Fj.loc = shared; write = false; locks = [] };
          { Fj.loc = fresh_loc (); write = true; locks = [] };
        ]
      ~cost:1 ()
  in
  let rec sub d =
    if d = 0 then Fj.Builder.proc b [ [ Fj.Run (worker ()) ] ]
    else
      Fj.Builder.proc b
        [ [ Fj.Spawn (sub (d - 1)); Fj.Spawn (sub (d - 1)); Fj.Run (worker ()) ] ]
  in
  let w0 =
    Fj.Builder.thread b ~accesses:[ { Fj.loc = shared; write = true; locks = [] } ] ~cost:1 ()
  in
  let main =
    Fj.Builder.proc b [ [ Fj.Run w0 ]; [ Fj.Spawn (sub depth); Fj.Run (worker ()) ] ]
  in
  Fj.Builder.finish b main

(* One iteration = one complete detection pass, rewound in place:
   arena tree rebuild + fused English/Hebrew fork/join walk + every
   access and SP query.  Steady state must stay at zero minor words
   with the boxed option/record traffic gone from tree, OM pair and
   shadow cells alike. *)
let alloc_gate_e2e ~plant ~iters () =
  let program = e2e_program ~depth:7 in
  let pipeline = Spr_race.Drivers.Fused.create program in
  let runs k =
    for i = 0 to k - 1 do
      Spr_race.Drivers.Fused.run pipeline;
      if plant then ignore (Sys.opaque_identity (ref i))
    done
  in
  (* Reach steady state (arena/elt-map/stack high-water marks) before
     measuring. *)
  runs 3;
  let first = Spr_race.Drivers.Fused.result pipeline in
  if first.Spr_race.Drivers.races <> [] then
    die "alloc-gate --e2e: the fixed program must be race-free (internal bug)";
  let (), words = Probe.alloc_words (fun () -> runs iters) in
  Probe.install ~runtime_events:true ();
  let region = Probe.region "sp-order-fused/e2e" in
  Probe.span region (fun () -> runs iters);
  Probe.uninstall ();
  Printf.printf
    "alloc-gate: %d end-to-end sp-order-fused runs (%d threads, %d SP queries/run)\n" iters
    (Fj.thread_count program) first.Spr_race.Drivers.sp_queries;
  Printf.printf "alloc-gate: minor-heap words in steady state: %d%s\n" words
    (if plant then " (with planted allocation)" else "");
  Format.printf "%a" Probe.pp_snapshot
    (List.filter (fun (n, _) -> n = "sp-order-fused/e2e") (Probe.snapshot ()));
  if words > 0 then begin
    Printf.printf "alloc-gate: FAIL — end-to-end steady state allocated on the minor heap\n";
    exit 1
  end
  else Printf.printf "alloc-gate: OK — end-to-end steady state is allocation-free\n"

(* ------------------------------------------------------------------ *)
(* Mode 2c: the ingestion-service allocation gate.                     *)

module Server = Spr_ingest.Server

(* One iteration = one resident-server pass over the captured trace of
   the same race-free program the e2e gate replays: header check,
   every frame decoded, the streaming SP walk, every shadow access and
   SP query.  The decode loop keeps all its state in the server
   record, so steady state must stay at zero minor words. *)
let alloc_gate_ingest ~plant ~iters () =
  let trace = Spr_ingest.Codec.capture [ e2e_program ~depth:7 ] in
  let srv = Server.create () in
  let runs k =
    for i = 0 to k - 1 do
      Server.drive srv trace;
      if plant then ignore (Sys.opaque_identity (ref i))
    done
  in
  (* Reach steady state (shadow width, leaf table, SP capacity). *)
  runs 3;
  let st = Server.stats srv in
  if st.Server.races <> 0 then
    die "alloc-gate --ingest: the fixed trace must be race-free (internal bug)";
  let (), words = Probe.alloc_words (fun () -> runs iters) in
  Probe.install ~runtime_events:true ();
  let region = Probe.region "ingest/drive" in
  Probe.span region (fun () -> runs iters);
  Probe.uninstall ();
  let st = Server.stats srv in
  Printf.printf
    "alloc-gate: %d resident-server drives (%d-byte trace, %d events, %d SP queries/run)\n"
    iters (String.length trace)
    (st.Server.events / st.Server.programs)
    (st.Server.sp_queries / st.Server.programs);
  Printf.printf "alloc-gate: minor-heap words in steady state: %d%s\n" words
    (if plant then " (with planted allocation)" else "");
  Format.printf "%a" Probe.pp_snapshot
    (List.filter (fun (n, _) -> n = "ingest/drive") (Probe.snapshot ()));
  Server.close srv;
  if words > 0 then begin
    Printf.printf "alloc-gate: FAIL — ingestion steady state allocated on the minor heap\n";
    exit 1
  end
  else Printf.printf "alloc-gate: OK — ingestion steady state is allocation-free\n"

(* ------------------------------------------------------------------ *)
(* Mode 3: uninstalled-probe overhead gate.                            *)

let probe_gate ~max_ns () =
  let open Bechamel in
  let open Toolkit in
  assert (not (Probe.is_installed ()));
  let r = Probe.region "probe-gate/empty" in
  let test =
    Test.make ~name:"probe/uninstalled-span"
      (Staged.stage (fun () -> Probe.span r (fun () -> ())))
  in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 0.5) ~stabilize:true ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let est = ref nan in
  Hashtbl.iter
    (fun _ ols ->
      match Analyze.OLS.estimates ols with Some (e :: _) -> est := e | _ -> ())
    results;
  if Float.is_nan !est then die "probe-gate: no estimate from bechamel";
  Printf.printf "probe-gate: uninstalled span estimated at %.2f ns (limit %.1f ns)\n" !est max_ns;
  if !est > max_ns then begin
    Printf.printf "probe-gate: FAIL — uninstalled probe too expensive\n";
    exit 1
  end
  else Printf.printf "probe-gate: OK\n"

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse paths threshold alloc e2e ingest plant probe max_ns iters = function
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r >= 1.0 -> parse paths r alloc e2e ingest plant probe max_ns iters rest
        | _ -> die "--threshold takes a ratio >= 1.0")
    | "--threshold" :: [] -> die "--threshold takes a ratio >= 1.0"
    | "--alloc-gate" :: rest -> parse paths threshold true e2e ingest plant probe max_ns iters rest
    | "--e2e" :: rest -> parse paths threshold alloc true ingest plant probe max_ns iters rest
    | "--ingest" :: rest -> parse paths threshold alloc e2e true plant probe max_ns iters rest
    | "--plant" :: rest -> parse paths threshold alloc e2e ingest true probe max_ns iters rest
    | "--probe-gate" :: rest -> parse paths threshold alloc e2e ingest plant true max_ns iters rest
    | "--max-ns" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 -> parse paths threshold alloc e2e ingest plant probe f iters rest
        | _ -> die "--max-ns takes a positive float")
    | "--max-ns" :: [] -> die "--max-ns takes a positive float"
    | "--iters" :: v :: rest -> (
        match int_of_string_opt v with
        | Some i when i > 0 ->
            parse paths threshold alloc e2e ingest plant probe max_ns (Some i) rest
        | _ -> die "--iters takes a positive int")
    | "--iters" :: [] -> die "--iters takes a positive int"
    | a :: rest -> parse (a :: paths) threshold alloc e2e ingest plant probe max_ns iters rest
    | [] -> (List.rev paths, threshold, alloc, e2e, ingest, plant, probe, max_ns, iters)
  in
  let paths, threshold, alloc, e2e, ingest, plant, probe, max_ns, iters =
    parse [] 1.5 false false false false false 5.0 None args
  in
  match (alloc, e2e, ingest, probe, paths) with
  (* An e2e or ingest iteration is a whole detection run (~500
     fork/joins and ~800 accesses), so the default iteration count is
     scaled down from the per-operation gate's. *)
  | true, true, false, false, [] ->
      alloc_gate_e2e ~plant ~iters:(Option.value ~default:2_000 iters) ()
  | true, false, true, false, [] ->
      alloc_gate_ingest ~plant ~iters:(Option.value ~default:2_000 iters) ()
  | true, false, false, false, [] ->
      alloc_gate ~plant ~iters:(Option.value ~default:100_000 iters) ()
  | false, false, false, true, [] -> probe_gate ~max_ns ()
  | false, false, false, false, [ b; c ] -> compare_mode b c threshold
  | _ ->
      die
        "usage: regress BASELINE.json CANDIDATE.json [--threshold R] | regress --alloc-gate \
         [--e2e | --ingest] [--plant] [--iters N] | regress --probe-gate [--max-ns F]"
