(* Benchmark regression gate.

   Usage:
     regress BASELINE.json CANDIDATE.json [--threshold R]

   Both files follow the schema bench_json.ml emits (`main.exe --
   <exp> --json FILE`).  Every entry in the baseline must be present
   in the candidate, matched on (experiment, backend, pattern, n,
   metric).  Rules:

     - kind "time":    fail if candidate median > R x baseline median
                       (default R = 1.5; CI uses 3.0 to absorb
                       machine-to-machine variance);
     - kind "counter": fail on any drift beyond float noise — counters
                       are deterministic for the fixed seed, so a
                       change means the algorithm changed and the
                       baseline needs a deliberate refresh.

   Exit codes: 0 clean, 1 regression/missing entry, 2 usage or parse
   error.  To refresh the committed baseline after an intentional
   change: dune exec bench/main.exe -- om --json BENCH_om.json *)

module J = Spr_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("regress: " ^ s); exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "%s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match J.of_string s with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

let get_string key j =
  match J.member key j with Some (J.String s) -> s | _ -> die "entry missing %S" key

let get_int key j =
  match J.member key j with Some (J.Int i) -> i | _ -> die "entry missing %S" key

let get_num key j =
  match J.member key j with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> die "entry missing %S" key

let entries path j =
  match J.member "entries" j with
  | Some (J.List es) -> es
  | _ -> die "%s: no \"entries\" array (not a bench --json file?)" path

let entry_key e =
  Printf.sprintf "%s/%s/%s/n=%d/%s" (get_string "experiment" e) (get_string "backend" e)
    (get_string "pattern" e) (get_int "n" e) (get_string "metric" e)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse paths threshold = function
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some r when r >= 1.0 -> parse paths r rest
        | _ -> die "--threshold takes a ratio >= 1.0")
    | "--threshold" :: [] -> die "--threshold takes a ratio >= 1.0"
    | a :: rest -> parse (a :: paths) threshold rest
    | [] -> (List.rev paths, threshold)
  in
  let paths, threshold = parse [] 1.5 args in
  let base_path, cand_path =
    match paths with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: regress BASELINE.json CANDIDATE.json [--threshold R]"
  in
  let base = load base_path and cand = load cand_path in
  let cand_tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace cand_tbl (entry_key e) e) (entries cand_path cand);
  let failures = ref 0 in
  let checked = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> incr failures; Printf.printf "FAIL %s\n" s) fmt in
  List.iter
    (fun b ->
      let key = entry_key b in
      incr checked;
      match Hashtbl.find_opt cand_tbl key with
      | None -> fail "%s: missing from candidate" key
      | Some c -> (
          let bm = get_num "median" b and cm = get_num "median" c in
          match get_string "kind" b with
          | "time" ->
              if cm > bm *. threshold then
                fail "%s: median %.1f vs baseline %.1f (%.2fx > %.2fx threshold)" key cm bm
                  (cm /. bm) threshold
          | "counter" ->
              let tol = 1e-6 *. Float.max 1.0 (Float.abs bm) in
              if Float.abs (cm -. bm) > tol then
                fail "%s: counter %.6f vs baseline %.6f — deterministic counter drifted; \
                      refresh the baseline if the change is intentional"
                  key cm bm
          | k -> fail "%s: unknown kind %S" key k))
    (entries base_path base);
  if !failures > 0 then begin
    Printf.printf "regress: %d/%d entries FAILED (threshold %.2fx)\n" !failures !checked threshold;
    exit 1
  end
  else Printf.printf "regress: OK — %d entries within %.2fx of baseline\n" !checked threshold
