(* EXP-THM5 — Theorem 5: on-the-fly construction of the SP-order data
   structure is O(n) total, i.e. flat ns/node as n doubles; and the
   order-maintenance substrate performs O(1) amortized relabels per
   insertion. *)

open Spr_sptree
module T = Spr_util.Table

let run () =
  Bench_util.header "EXP-THM5: SP-order construction is O(n) (Theorem 5)";
  let sizes = [ 4096; 16_384; 65_536; 262_144 ] in
  let tbl =
    T.create
      [
        ("tree", T.Left);
        ("n (leaves)", T.Right);
        ("total ms", T.Right);
        ("ns/node", T.Right);
        ("OM relabels/insert", T.Right);
      ]
  in
  let points = ref [] in
  let families =
    [
      ("balanced", fun n -> Tree_gen.balanced ~leaves:n);
      ( "random",
        fun n -> Tree_gen.random_tree ~rng:(Spr_util.Rng.create 5) ~leaves:n ~p_prob:0.5 );
    ]
  in
  List.iter
    (fun (fname, gen) ->
      List.iter
        (fun n ->
          let tree = gen n in
          (* Best of three runs: isolates the algorithmic cost from GC
             scheduling noise. *)
          let s =
            List.fold_left min infinity
              (List.init 3 (fun _ ->
                   let inst = Spr_core.Algorithms.sp_order tree in
                   snd (Bench_util.time (fun () -> Spr_core.Driver.run tree inst))))
          in
          let nodes = Sp_tree.node_count tree in
          if fname = "balanced" then points := (float_of_int nodes, s) :: !points;
          (* Reconstruct to read the OM counters via a fresh run. *)
          let om = Spr_om.Om.create () in
          let anchor = ref (Spr_om.Om.base om) in
          for _ = 1 to nodes do
            anchor := Spr_om.Om.insert_after om !anchor
          done;
          let st = Spr_om.Om.stats om in
          (* Under --metrics json the Theorem 5 amortization check reads
             the measured OM counters, not just the ns/node column. *)
          (match Spr_obs.Sink.metrics !Bench_util.sink with
          | None -> ()
          | Some m ->
              Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "om/inserts") st.inserts;
              Spr_obs.Metrics.add
                (Spr_obs.Metrics.counter m "om/relabel_passes")
                st.relabel_passes;
              Spr_obs.Metrics.add (Spr_obs.Metrics.counter m "om/items_moved") st.items_moved);
          T.add_row tbl
            [
              fname;
              T.fmt_int n;
              Printf.sprintf "%.2f" (s *. 1e3);
              Printf.sprintf "%.1f" (s *. 1e9 /. float_of_int nodes);
              Printf.sprintf "%.3f" (float_of_int st.items_moved /. float_of_int st.inserts);
            ])
        sizes;
      T.add_sep tbl)
    families;
  T.print tbl;
  let k, _ = Spr_util.Stats.fit_power (Array.of_list !points) in
  Printf.printf
    "power-law fit of total time vs n (balanced family): exponent = %.3f\n\
     (Theorem 5 predicts 1.0 — linear in n)\n"
    k
