(* Shared helpers for the benchmark harness. *)

module T = Spr_util.Table

let now () = Unix.gettimeofday ()

(* Wall-clock a thunk once; seconds. *)
let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

(* ns per iteration of [f], amortized over [iters] runs. *)
let time_ns ~iters f =
  let t0 = now () in
  for _ = 1 to iters do
    f ()
  done;
  (now () -. t0) *. 1e9 /. float_of_int iters

let header title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let note fmt = Printf.printf fmt

(* Growth summary: factor between the measurement at the smallest and
   largest parameter — the "shape" the experiment tables compare
   against the paper's asymptotic rows. *)
let growth_factor first last = if first <= 0.0 then infinity else last /. first

(* Observability sink the experiments route their simulator runs and OM
   counters through.  Null (free) by default; [main.ml] arms it with the
   process-wide registry under [--metrics json] and snapshots it between
   experiments, so each experiment's JSON carries only its own window. *)
let sink = ref Spr_obs.Sink.null

let enable_metrics () = sink := Spr_obs.Sink.make ~metrics:Spr_obs.Metrics.default ()

(* Counter value out of the live registry, for experiments that check
   their table columns against the measured counters. *)
let counter_value key =
  match Spr_obs.Sink.metrics !sink with
  | None -> None
  | Some m -> (
      match List.assoc_opt key (Spr_obs.Metrics.snapshot m) with
      | Some (Spr_obs.Metrics.C n) -> Some n
      | _ -> Some 0)
