(* EXP-STEALS — the structural bounds of Sections 3 and 7:

     - successful steals s = O(P * Tinf) (the work-stealing bound the
       analysis leans on);
     - the computation always splits into exactly |C| = 4s + 1 traces;
     - the seven-bucket accounting of Theorem 10's proof, observed
       directly on an instrumented run. *)

open Spr_prog
open Spr_sched
module H = Spr_hybrid.Sp_hybrid
module T = Spr_util.Table

let run () =
  Bench_util.header "EXP-STEALS: steal bound, 4s+1 traces, bucket accounting";
  let tbl =
    T.create
      [
        ("workload", T.Left);
        ("P", T.Right);
        ("Tinf", T.Right);
        ("steals s", T.Right);
        ("s/(P*Tinf)", T.Right);
        ("traces", T.Right);
        ("4s+1 ok", T.Right);
      ]
  in
  let workloads =
    [
      ("fib(14)", Spr_workloads.Progs.fib ~n:14 ~cost:4 ());
      ("deep(300)", Spr_workloads.Progs.deep_spawn ~cost:2 ~depth:300 ());
      ("wide(600)", Spr_workloads.Progs.wide ~cost:4 ~n:600 ());
    ]
  in
  List.iter
    (fun (name, p) ->
      let tinf = Fj_program.span p in
      List.iter
        (fun procs ->
          let sink = !Bench_util.sink in
          let h = H.create ~sink p in
          let res = Sim.run ~hooks:(H.hooks h) ~sink ~seed:9 ~procs p in
          let st = H.stats h in
          T.add_row tbl
            [
              name;
              string_of_int procs;
              T.fmt_int tinf;
              T.fmt_int res.Sim.steals;
              Printf.sprintf "%.3f" (float_of_int res.Sim.steals /. float_of_int (procs * tinf));
              T.fmt_int st.H.traces;
              (if st.H.traces = (4 * st.H.splits) + 1 then "yes" else "NO");
            ])
        [ 2; 4; 8; 16 ];
      T.add_sep tbl)
    workloads;
  T.print tbl;
  Printf.printf
    "Paper shape: s/(P*Tinf) bounded by a small constant; traces always 4s+1.\n\n";

  (* One run dissected into Theorem 10's buckets. *)
  let p = Spr_workloads.Progs.fib ~n:14 ~cost:4 () in
  let sink = !Bench_util.sink in
  let h = H.create ~sink p in
  let res = Sim.run ~hooks:(H.hooks h) ~sink ~seed:9 ~procs:8 p in
  let st = H.stats h in
  let tbl2 =
    T.create ~title:"Seven-bucket accounting (fib(14), P=8)"
      [ ("bucket", T.Left); ("meaning", T.Left); ("ticks", T.Right) ]
  in
  let rows =
    [
      ("B1", "work of the original computation", res.Sim.work_ticks);
      ("B2", "global-tier insertions (lock held)", st.H.global_insert_ticks);
      ("B3", "local-tier SP-bags operations", st.H.local_ops);
      ("B4", "waiting on the global lock", st.H.lock_wait_ticks);
      ("B5", "failed lock-free query retries", st.H.query_retries);
      ( "B6",
        "steal attempts while lock free",
        res.Sim.steal_attempts - res.Sim.steal_attempts_lock_held );
      ("B7", "steal attempts while lock held", res.Sim.steal_attempts_lock_held);
      ("--", "scheduler bookkeeping (spawn/sync/return)", res.Sim.overhead_ticks);
    ]
  in
  List.iter (fun (b, m, v) -> T.add_row tbl2 [ b; m; T.fmt_int v ]) rows;
  T.print tbl2;
  Printf.printf "total virtual makespan: %s ticks on P=8\n" (T.fmt_int res.Sim.time)
