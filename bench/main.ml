(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- fig3         # one experiment
     dune exec bench/main.exe -- list         # available experiments
     dune exec bench/main.exe -- thm10 --metrics json
        # also print per-experiment measured-counter snapshots as the
        # last stdout line: {"experiments":{"thm10":{...}}}
     dune exec bench/main.exe -- om --json out.json
        # also write machine-readable samples/medians/quantiles for
        # the regression gate (schema in bench_json.ml); --json-n N
        # shrinks the measured size for smoke runs

   Each experiment regenerates one table/figure/theorem of the paper;
   see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md
   for paper-vs-measured notes. *)

let experiments =
  [
    ("fig3", "Figure 3: serial algorithm comparison", Exp_fig3.run);
    ("thm5", "Theorem 5: SP-order construction is O(n)", Exp_thm5.run);
    ("cor6", "Corollary 6: race detection in O(T1)", Exp_cor6.run);
    ("thm10", "Theorem 10: SP-hybrid vs naive parallel SP-order", Exp_thm10.run);
    ("steals", "Steal bound, 4s+1 traces, bucket accounting", Exp_steals.run);
    ("om", "Order-maintenance substrate", Exp_om.run);
    ("fig11-12", "Subtrace split structure", Exp_traces.run);
    ("ablation", "Design-choice ablations (OM backend, path compression)", Exp_ablation.run);
    ("ingest", "Streaming trace-ingestion service throughput", Exp_ingest.run);
    ("hb", "Vector/tree-clock baselines vs sp-order-fused", Exp_hb.run);
    ("bechamel", "Bechamel micro-benchmarks (one per experiment)", Bechamel_suite.run);
  ]

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter (fun (k, d, _) -> Printf.printf "  %-10s %s\n" k d) experiments

(* Per-experiment metric snapshots under --metrics json: diff the
   process-wide registry around each experiment so the emitted object
   attributes counters (relabels, steals, splits, lock waits) to the
   experiment that produced them. *)
let snapshots : (string * Spr_obs.Metrics.snapshot) list ref = ref []

let run_experiment ~metrics (key, _, f) =
  if not metrics then f ()
  else begin
    let before = Spr_obs.Metrics.snapshot Spr_obs.Metrics.default in
    f ();
    let after = Spr_obs.Metrics.snapshot Spr_obs.Metrics.default in
    snapshots := (key, Spr_obs.Metrics.diff after before) :: !snapshots
  end

let emit_snapshots () =
  let experiments =
    List.rev_map
      (fun (key, snap) -> (key, Spr_obs.Metrics.snapshot_to_json snap))
      !snapshots
  in
  print_endline
    (Spr_obs.Json.to_string (Spr_obs.Json.Obj [ ("experiments", Spr_obs.Json.Obj experiments) ]))

let () =
  (* A roomy minor heap keeps GC noise out of the asymptotic-shape
     measurements (they allocate many small linked nodes). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  let args = List.tl (Array.to_list Sys.argv) in
  let metrics, args =
    let rec strip acc = function
      | "--metrics" :: "json" :: rest -> (true, List.rev_append acc rest)
      | "--metrics" :: _ ->
          Printf.eprintf "bench: --metrics takes the single format \"json\"\n";
          exit 1
      | a :: rest -> strip (a :: acc) rest
      | [] -> (false, List.rev acc)
    in
    strip [] args
  in
  let json_file, json_n, args =
    let rec strip ~file ~n acc = function
      | "--json" :: path :: rest when path <> "" && path.[0] <> '-' ->
          strip ~file:(Some path) ~n acc rest
      | "--json" :: _ ->
          Printf.eprintf "bench: --json takes an output file path\n";
          exit 1
      | "--json-n" :: v :: rest -> (
          match int_of_string_opt v with
          | Some size when size > 0 -> strip ~file ~n:(Some size) acc rest
          | _ ->
              Printf.eprintf "bench: --json-n takes a positive integer\n";
              exit 1)
      | "--json-n" :: [] ->
          Printf.eprintf "bench: --json-n takes a positive integer\n";
          exit 1
      | a :: rest -> strip ~file ~n (a :: acc) rest
      | [] -> (file, n, List.rev acc)
    in
    strip ~file:None ~n:None [] args
  in
  if metrics then Bench_util.enable_metrics ();
  (match json_file with
  | Some _ -> Bench_json.enable ?n:json_n ()
  | None ->
      if json_n <> None then begin
        Printf.eprintf "bench: --json-n only makes sense with --json\n";
        exit 1
      end);
  (match args with
  | [] | [ "all" ] -> List.iter (run_experiment ~metrics) experiments
  | [ "list" ] -> list_experiments ()
  | [ key ] -> begin
      match List.find_opt (fun (k, _, _) -> k = key) experiments with
      | Some e -> run_experiment ~metrics e
      | None ->
          Printf.eprintf "unknown experiment %S\n" key;
          list_experiments ();
          exit 1
    end
  | _ ->
      Printf.eprintf
        "usage: main.exe [all|list|<experiment>] [--metrics json] [--json FILE [--json-n N]]\n";
      exit 1);
  (match json_file with Some path -> Bench_json.write_file path | None -> ());
  if metrics then emit_snapshots ()
