(* EXP-ABLATION — design-choice ablations called out in DESIGN.md:

   1. SP-order's order-maintenance backend: the two-level O(1)
      structure (the paper's choice) vs the one-level O(lg n) labeled
      list vs the naive O(n)-insert specification.  Quantifies what
      Theorem 5 buys.

   2. The Section 7 conjecture: SP-hybrid's local tier with union by
      rank only (required for concurrent FIND-TRACE) vs with path
      compression (safe once finds synchronize, e.g. via CAS).  The
      paper conjectures compression brings the T1/P coefficient down
      from O(lg n) to O(alpha); we measure mean find depth and
      operation counts.

   3. The same comparison for the serial SP-bags detector. *)

open Spr_prog
open Spr_sched
module H = Spr_hybrid.Sp_hybrid
module T = Spr_util.Table

module Sp_order_two_level = Spr_core.Sp_order
module Sp_order_one_level = Spr_core.Sp_order_generic.Make (Spr_om.Om_label)
module Sp_order_packed = Spr_core.Sp_order_generic.Make (Spr_om.Om_packed)
module Sp_order_naive_om = Spr_core.Sp_order_generic.Make (Spr_om.Om_naive)

let om_backend () =
  Printf.printf "\n-- 1. SP-order's OM backend --\n";
  let tbl =
    T.create
      [ ("backend", T.Left); ("n (leaves)", T.Right); ("construct ms", T.Right); ("ns/node", T.Right) ]
  in
  let measure name n run =
    let tree = Spr_sptree.Tree_gen.balanced ~leaves:n in
    let _, s = Bench_util.time (fun () -> run tree) in
    T.add_row tbl
      [
        name;
        T.fmt_int n;
        Printf.sprintf "%.2f" (s *. 1e3);
        Printf.sprintf "%.1f" (s *. 1e9 /. float_of_int (Spr_sptree.Sp_tree.node_count tree));
      ]
  in
  List.iter
    (fun n ->
      measure "two-level (paper)" n (fun tree ->
          let t = Sp_order_two_level.create tree in
          Spr_sptree.Sp_tree.iter_events tree (Sp_order_two_level.on_event t));
      measure "one-level labels" n (fun tree ->
          let t = Sp_order_one_level.create tree in
          Spr_sptree.Sp_tree.iter_events tree (Sp_order_one_level.on_event t));
      measure "two-level packed" n (fun tree ->
          let t = Sp_order_packed.create tree in
          Spr_sptree.Sp_tree.iter_events tree (Sp_order_packed.on_event t)))
    [ 16_384; 131_072 ];
  (* Footnote 2: drop the English OM structure entirely. *)
  List.iter
    (fun n ->
      measure "implicit English (fn. 2)" n (fun tree ->
          let inst = Spr_core.Algorithms.sp_order_implicit tree in
          Spr_core.Driver.run tree inst))
    [ 16_384; 131_072 ];
  (* The naive OM relabels everything per insert: only feasible tiny. *)
  measure "naive OM (spec)" 2_048 (fun tree ->
      let t = Sp_order_naive_om.create tree in
      Spr_sptree.Sp_tree.iter_events tree (Sp_order_naive_om.on_event t));
  T.print tbl

let local_tier_compression () =
  Printf.printf "\n-- 2. SP-hybrid local tier: union-by-rank vs + path compression --\n";
  Printf.printf "(after the run, three FIND-TRACE sweeps over every thread — the\n";
  Printf.printf " query load a race detector generates)\n";
  let p = Spr_workloads.Progs.dc_sum ~leaves:8_192 ~grain:2 () in
  let nthreads = Fj_program.thread_count p in
  let tbl =
    T.create
      [
        ("local tier", T.Left);
        ("sweep 1 hops/find", T.Right);
        ("sweep 2", T.Right);
        ("sweep 3", T.Right);
      ]
  in
  List.iter
    (fun compress ->
      let h = H.create ~local_path_compression:compress p in
      ignore (Sim.run ~hooks:(H.hooks h) ~seed:4 ~procs:8 p);
      let sweep () =
        let st0 = H.stats h in
        for tid = 0 to nthreads - 1 do
          ignore (H.find_trace_id h ~tid)
        done;
        let st1 = H.stats h in
        float_of_int (st1.H.uf_find_steps - st0.H.uf_find_steps)
        /. float_of_int (max 1 (st1.H.uf_finds - st0.H.uf_finds))
      in
      let s1 = sweep () and s2 = sweep () and s3 = sweep () in
      T.add_row tbl
        [
          (if compress then "rank + compression (conjecture)" else "rank only (paper 5)");
          Printf.sprintf "%.2f" s1;
          Printf.sprintf "%.2f" s2;
          Printf.sprintf "%.2f" s3;
        ])
    [ false; true ];
  T.print tbl;
  Printf.printf
    "Section 7 conjecture shape: with compression, repeated finds flatten the\n\
     forest (later sweeps approach 1 hop); rank-only pays the same depth\n\
     every time.\n"

(* Footnote 3: the global tier's concurrent OM, one-level vs the
   two-level hierarchy. *)
let concurrent_backend () =
  Printf.printf "\n-- 4. concurrent OM backend (global tier, footnote 3) --\n";
  let n = 100_000 in
  let tbl =
    T.create
      [
        ("backend", T.Left);
        ("pattern", T.Left);
        ("ns/insert", T.Right);
        ("ns/query", T.Right);
      ]
  in
  let bench (module C : Spr_om.Om_intf.CONCURRENT) =
    List.iter
      (fun (pname, pick) ->
        let t = C.create () in
        let rng = Spr_util.Rng.create 3 in
        let elts = Array.make (n + 1) (C.base t) in
        let len = ref 1 in
        let _, secs =
          Bench_util.time (fun () ->
              for _ = 1 to n do
                let anchor = elts.(pick rng !len) in
                elts.(!len) <- C.insert_after t anchor;
                incr len
              done)
        in
        let pairs =
          Array.init 100_000 (fun _ ->
              (elts.(Spr_util.Rng.int rng !len), elts.(Spr_util.Rng.int rng !len)))
        in
        let sink = ref 0 in
        let _, qsecs =
          Bench_util.time (fun () ->
              Array.iter (fun (a, b) -> if C.precedes t a b then incr sink) pairs)
        in
        ignore !sink;
        T.add_row tbl
          [
            C.name;
            pname;
            Printf.sprintf "%.1f" (secs *. 1e9 /. float_of_int n);
            Printf.sprintf "%.1f" (qsecs *. 1e9 /. 100_000.0);
          ])
      [
        ("hammer", fun _ _ -> 0);
        ("random", fun rng len -> Spr_util.Rng.int rng len);
      ];
    T.add_sep tbl
  in
  bench (module Spr_om.Om_concurrent);
  bench (module Spr_om.Om_concurrent2);
  T.print tbl

let serial_spbags_compression () =
  Printf.printf "\n-- 3. serial SP-bags detector: with vs without compression --\n";
  let p = Spr_workloads.Progs.dc_sum ~leaves:16_384 ~grain:8 () in
  let pt = Prog_tree.of_program p in
  let tbl = T.create [ ("oracle", T.Left); ("detect ms", T.Right) ] in
  List.iter
    (fun (name, algo) ->
      let _, s = Bench_util.time (fun () -> Spr_race.Drivers.detect_serial pt algo) in
      T.add_row tbl [ name; Printf.sprintf "%.2f" (s *. 1e3) ])
    [
      ("sp-bags (rank + compression)", Spr_core.Algorithms.sp_bags);
      ("sp-bags (rank only)", Spr_core.Algorithms.sp_bags_no_compression);
      ("sp-order", Spr_core.Algorithms.sp_order);
    ];
  T.print tbl

let run () =
  Bench_util.header "EXP-ABLATION: design-choice ablations";
  om_backend ();
  local_tier_compression ();
  serial_spbags_compression ();
  concurrent_backend ()
