(* EXP-OM — the order-maintenance substrate (Sections 2 and 4):

     - insert cost across structures and insertion patterns, with the
       amortized relabel counters (O(1) per insert for the two-level
       structure, O(lg n) for the one-level);
     - O(1) worst-case queries;
     - the concurrent structure's lock-free query machinery. *)

module T = Spr_util.Table

type pattern = Append | Hammer | Random

let pattern_name = function Append -> "append" | Hammer -> "hammer" | Random -> "random"

let run_pattern (module M : Spr_om.Om_intf.S) pattern n =
  (* Reset major-heap state between structures: each measurement
     otherwise pays for its predecessors' garbage (the one-level list
     leaves 3 x n dead records behind), which distorted cross-backend
     comparisons by up to 5x. *)
  Gc.compact ();
  let t = M.create () in
  let rng = Spr_util.Rng.create 4 in
  let elts = Array.make (n + 1) (M.base t) in
  let len = ref 1 in
  let _, secs =
    Bench_util.time (fun () ->
        for _ = 1 to n do
          let anchor =
            match pattern with
            | Append -> elts.(!len - 1)
            | Hammer -> elts.(0)
            | Random -> elts.(Spr_util.Rng.int rng !len)
          in
          elts.(!len) <- M.insert_after t anchor;
          incr len
        done)
  in
  let ns_insert = secs *. 1e9 /. float_of_int n in
  (* Query cost over random pairs. *)
  let pairs =
    Array.init 100_000 (fun _ ->
        (elts.(Spr_util.Rng.int rng !len), elts.(Spr_util.Rng.int rng !len)))
  in
  let sink = ref 0 in
  let _, qsecs =
    Bench_util.time (fun () ->
        Array.iter (fun (a, b) -> if M.precedes t a b then incr sink) pairs)
  in
  ignore !sink;
  (ns_insert, qsecs *. 1e9 /. float_of_int (Array.length pairs))

(* The --json measurement needs per-run counters as well as the clock,
   so it is typed against the stats-carrying backends (the two the
   regression gate compares). *)
module type OM_STATS = sig
  include Spr_om.Om_intf.S

  val stats : t -> Spr_om.Om_intf.stats
end

let insert_run (module M : OM_STATS) pattern n =
  let t = M.create () in
  let rng = Spr_util.Rng.create 4 in
  let elts = Array.make (n + 1) (M.base t) in
  let len = ref 1 in
  let _, secs =
    Bench_util.time (fun () ->
        for _ = 1 to n do
          let anchor =
            match pattern with
            | Append -> elts.(!len - 1)
            | Hammer -> elts.(0)
            | Random -> elts.(Spr_util.Rng.int rng !len)
          in
          elts.(!len) <- M.insert_after t anchor;
          incr len
        done)
  in
  (secs *. 1e9 /. float_of_int n, M.stats t)

(* Machine-readable entries for the regression gate: the insert-heavy
   comparison the PR's acceptance criterion is stated over — om-packed
   vs om-two-level at n = 10^6 (or --json-n for smoke runs).  Timing
   rows carry [repeats] samples; counter rows (items moved per insert)
   are exact and deterministic for the fixed seed. *)
let emit_json () =
  let n = Bench_json.scaled_n ~default:1_000_000 in
  let repeats = 5 in
  let backends : (module OM_STATS) list =
    [ (module Spr_om.Om); (module Spr_om.Om_packed) ]
  in
  List.iter
    (fun (module M : OM_STATS) ->
      List.iter
        (fun pat ->
          (* Two discarded warm-up runs per configuration: the first
             runs in a reshaped heap pay page-fault, heap-regrowth and
             predecessor-garbage collection transients that aren't the
             structure's cost (observed 2-5x on early samples).  No
             compaction here — the point is a steady-state heap, and
             Gc.compact would re-introduce the transient it hides. *)
          ignore (insert_run (module M) pat n);
          ignore (insert_run (module M) pat n);
          let samples = ref [] in
          let last_stats = ref None in
          for _ = 1 to repeats do
            let ns, st = insert_run (module M) pat n in
            samples := ns :: !samples;
            last_stats := Some st
          done;
          let add = Bench_json.add ~experiment:"om" ~backend:M.name ~pattern:(pattern_name pat) ~n in
          add ~metric:"ns_per_insert" ~kind:Bench_json.Time (List.rev !samples);
          match !last_stats with
          | Some st ->
              add ~metric:"items_moved_per_insert" ~kind:Bench_json.Counter
                [ float_of_int st.items_moved /. float_of_int (max 1 st.inserts) ]
          | None -> ())
        [ Append; Hammer; Random ])
    backends

(* The fused English/Hebrew backend measures per child-pair insertion
   (its unit of work: two elements spliced into both orders at once),
   reported per inserted element so the row is comparable with the
   single-structure rows above — each element still lands in one order
   apiece there, two orders here, so the fused number carries twice the
   logical work per element.  The counter sums both planes' relabel
   accounting; per-plane it is bit-identical to boxed [Om] (pinned by
   test_om). *)
let insert_run_fused pattern n =
  let module F = Spr_om.Om_fused in
  let t = F.create () in
  let rng = Spr_util.Rng.create 4 in
  let ops = n / 2 in
  let elts = Array.make ((2 * ops) + 1) (F.base t) in
  let len = ref 1 in
  let _, secs =
    Bench_util.time (fun () ->
        for i = 1 to ops do
          let anchor =
            match pattern with
            | Append -> elts.(!len - 1)
            | Hammer -> elts.(0)
            | Random -> elts.(Spr_util.Rng.int rng !len)
          in
          let l, r = F.insert_children t anchor ~parallel:(i land 1 = 0) in
          elts.(!len) <- l;
          elts.(!len + 1) <- r;
          len := !len + 2
        done)
  in
  let eng = F.stats_eng t and heb = F.stats_heb t in
  let moved = eng.Spr_om.Om_intf.items_moved + heb.Spr_om.Om_intf.items_moved in
  let inserts = eng.Spr_om.Om_intf.inserts + heb.Spr_om.Om_intf.inserts in
  ( secs *. 1e9 /. float_of_int (2 * ops),
    float_of_int moved /. float_of_int (max 1 inserts) )

let emit_json_fused () =
  let n = Bench_json.scaled_n ~default:1_000_000 in
  List.iter
    (fun pat ->
      ignore (insert_run_fused pat n);
      ignore (insert_run_fused pat n);
      let samples = ref [] in
      let counter = ref 0.0 in
      for _ = 1 to 5 do
        let ns, c = insert_run_fused pat n in
        samples := ns :: !samples;
        counter := c
      done;
      let add =
        Bench_json.add ~experiment:"om" ~backend:"om-fused" ~pattern:(pattern_name pat) ~n
      in
      add ~metric:"ns_per_insert" ~kind:Bench_json.Time (List.rev !samples);
      add ~metric:"items_moved_per_insert" ~kind:Bench_json.Counter [ !counter ])
    [ Append; Hammer; Random ]

(* The sp-order insert/query mix the fused backend's acceptance
   criterion is stated over: one full fork/join walk of a balanced
   n-leaf tree (a child-pair insertion into both orders per internal
   node) plus a random-leaf-pair query sweep, through the uniform
   maintainer interface — boxed sp-order vs sp-order-fused on
   identical work. *)
let spmix_queries = 200_000

let spmix_run make tree =
  let module Sm = Spr_core.Sp_maintainer in
  Gc.compact ();
  let ls = Spr_sptree.Sp_tree.leaves tree in
  let nl = Array.length ls in
  let rng = Spr_util.Rng.create 7 in
  let pairs =
    Array.init spmix_queries (fun _ ->
        (ls.(Spr_util.Rng.int rng nl), ls.(Spr_util.Rng.int rng nl)))
  in
  let sink = ref 0 in
  let _, secs =
    Bench_util.time (fun () ->
        let inst = make tree in
        Spr_core.Driver.run tree inst;
        Array.iter (fun (a, b) -> if Sm.precedes inst a b then incr sink) pairs)
  in
  ignore !sink;
  secs *. 1e9 /. float_of_int (nl - 1 + spmix_queries)

let emit_json_spmix () =
  let n = Bench_json.scaled_n ~default:1_000_000 in
  let tree = Spr_sptree.Tree_gen.balanced ~leaves:n in
  List.iter
    (fun (backend, make) ->
      ignore (spmix_run make tree);
      let samples = ref [] in
      for _ = 1 to 5 do
        samples := spmix_run make tree :: !samples
      done;
      let add = Bench_json.add ~experiment:"om" ~backend ~pattern:"spmix" ~n in
      add ~metric:"ns_per_op" ~kind:Bench_json.Time (List.rev !samples))
    [
      ("sp-order", Spr_core.Algorithms.sp_order);
      ("sp-order-fused", Spr_core.Algorithms.sp_order_fused);
    ]

(* sp-depa rides in the "om" gate: its labels are the label-based
   alternative to the OM substrate (DESIGN.md section 5), and the CI
   perf smoke only regenerates this experiment's entries.  One warmed
   query-cost sample set plus the deterministic label-footprint
   counter, per tree family. *)
let depa_query_samples = 20_000

let depa_run tree =
  let module Sm = Spr_core.Sp_maintainer in
  let inst = Spr_core.Algorithms.sp_depa tree in
  Spr_core.Driver.run tree inst;
  let ls = Spr_sptree.Sp_tree.leaves tree in
  let n = Array.length ls in
  let rng = Spr_util.Rng.create 99 in
  let pairs =
    Array.init depa_query_samples (fun _ ->
        (ls.(Spr_util.Rng.int rng n), ls.(Spr_util.Rng.int rng n)))
  in
  let sink = ref 0 in
  let _, qsecs =
    Bench_util.time (fun () ->
        Array.iter (fun (a, b) -> if (not (a == b)) && Sm.precedes inst a b then incr sink) pairs)
  in
  ignore !sink;
  (qsecs *. 1e9 /. float_of_int depa_query_samples, Sm.avg_label_words inst)

let emit_json_depa () =
  let n = Bench_json.scaled_n ~default:1_000_000 in
  (* Label depth equals parse-tree depth, so the chain families are
     capped: at n = 10^6 a fork-chain leaf would sit ~5*10^5 levels
     deep and the spill copies alone would dominate.  4096 matches the
     largest EXP-FIG3 family size. *)
  let capped = min n 4096 in
  let families =
    [
      ("fork-chain", capped, Spr_sptree.Tree_gen.fork_chain ~forks:capped);
      ("deep-nest", capped, Spr_sptree.Tree_gen.deep_nest ~depth:capped);
      ("balanced", n, Spr_sptree.Tree_gen.balanced ~leaves:n);
    ]
  in
  List.iter
    (fun (pat, size, tree) ->
      ignore (depa_run tree);
      let samples = ref [] in
      let words = ref 0.0 in
      for _ = 1 to 5 do
        let q, w = depa_run tree in
        samples := q :: !samples;
        words := w
      done;
      let add = Bench_json.add ~experiment:"om" ~backend:"sp-depa" ~pattern:pat ~n:size in
      add ~metric:"ns_per_query" ~kind:Bench_json.Time (List.rev !samples);
      add ~metric:"avg_label_words" ~kind:Bench_json.Counter [ !words ])
    families

(* Allocation/GC attribution per backend: the hammer insert pattern and
   a random-pair query sweep, each wrapped in an installed Probe span so
   minor-heap words, promotions, collection counts and (runtime-events-
   bridged) GC pause time are charged to the right (structure, phase)
   region.  Display only — the numbers are machine- and GC-sensitive,
   so no entries ride the JSON regression gate; the gate-worthy claim
   (packed steady state allocates nothing) is pinned exactly by
   `regress --alloc-gate`. *)
module Probe = Spr_obs.Probe

let attribution structures n =
  Probe.reset ();
  Probe.install ~runtime_events:true ();
  (* Column units are machine words (not bytes): Probe reports
     Gc.minor_words-style word counts, divided by ops. *)
  let tbl =
    T.create
      ~title:
        (Printf.sprintf
           "allocation/GC attribution (probe spans, words = machine words), n = %s ops/phase"
           (T.fmt_int n))
      [
        ("structure", T.Left);
        ("phase", T.Left);
        ("minor words/op", T.Right);
        ("promoted words/op", T.Right);
        ("minor GCs", T.Right);
        ("major GCs", T.Right);
        ("GC pause us", T.Right);
      ]
  in
  let row name phase n (st : Probe.stat) =
    T.add_row tbl
      [
        name;
        phase;
        Printf.sprintf "%.2f" (float_of_int st.Probe.s_minor_words /. float_of_int n);
        Printf.sprintf "%.2f" (float_of_int st.Probe.s_promoted_words /. float_of_int n);
        T.fmt_int st.Probe.s_minor_gcs;
        T.fmt_int st.Probe.s_major_gcs;
        Printf.sprintf "%.1f"
          (float_of_int (st.Probe.s_minor_pause_ns + st.Probe.s_major_pause_ns) /. 1e3);
      ]
  in
  List.iter
    (fun (module M : Spr_om.Om_intf.S) ->
      Gc.compact ();
      let t = M.create () in
      let rng = Spr_util.Rng.create 4 in
      let elts = Array.make (n + 1) (M.base t) in
      let len = ref 1 in
      let r_ins = Probe.region ("om/" ^ M.name ^ "/insert") in
      let r_q = Probe.region ("om/" ^ M.name ^ "/query") in
      Probe.span r_ins (fun () ->
          for _ = 1 to n do
            elts.(!len) <- M.insert_after t elts.(0);
            incr len
          done);
      let pairs =
        Array.init n (fun _ ->
            (elts.(Spr_util.Rng.int rng !len), elts.(Spr_util.Rng.int rng !len)))
      in
      let hits = ref 0 in
      Probe.span r_q (fun () ->
          Array.iter (fun (a, b) -> if M.precedes t a b then incr hits) pairs);
      ignore !hits;
      row M.name "insert" n (Probe.stats r_ins);
      row M.name "query" n (Probe.stats r_q);
      T.add_sep tbl)
    structures;
  (* The fused English/Hebrew backend has its own (child-pair) insert
     API, so it cannot ride the Om_intf.S loop above — hand-rolled
     hammer/query phases, same span protocol.  Ops are counted per
     inserted element / per sp query, same as the other rows. *)
  begin
    let module F = Spr_om.Om_fused in
    Gc.compact ();
    let t = F.create () in
    let rng = Spr_util.Rng.create 4 in
    let ops = n / 2 in
    let elts = Array.make ((2 * ops) + 1) (F.base t) in
    let len = ref 1 in
    let r_ins = Probe.region "om/om-fused/insert" in
    let r_q = Probe.region "om/om-fused/query" in
    Probe.span r_ins (fun () ->
        for i = 1 to ops do
          let lr = F.insert_children_packed t elts.(0) ~parallel:(i land 1 = 0) in
          elts.(!len) <- F.packed_left lr;
          elts.(!len + 1) <- F.packed_right lr;
          len := !len + 2
        done);
    let pairs =
      Array.init n (fun _ ->
          (elts.(Spr_util.Rng.int rng !len), elts.(Spr_util.Rng.int rng !len)))
    in
    let hits = ref 0 in
    Probe.span r_q (fun () ->
        Array.iter (fun (a, b) -> if F.sp_precedes t a b then incr hits) pairs);
    ignore !hits;
    row F.name "insert" (2 * ops) (Probe.stats r_ins);
    row F.name "query" n (Probe.stats r_q);
    T.add_sep tbl
  end;
  Probe.uninstall ();
  T.print tbl;
  Printf.printf
    "Paper shape: the packed backend's query phase allocates nothing (the\n\
     alloc-gate pins its full delete/insert/relabel steady state at zero);\n\
     the boxed structures pay words per insert and the GC pauses land on\n\
     the phase that triggered them.\n\n"

let run () =
  Bench_util.header "EXP-OM: order-maintenance substrate";
  (* --json-n shrinks the human-readable table too, so smoke runs (the
     cram test, CI) don't pay for a 200k-element sweep per structure. *)
  let n = Bench_json.scaled_n ~default:200_000 in
  let tbl =
    T.create
      ~title:(Printf.sprintf "insert/query cost, n = %s" (T.fmt_int n))
      [
        ("structure", T.Left);
        ("pattern", T.Left);
        ("ns/insert", T.Right);
        ("ns/query", T.Right);
      ]
  in
  let structures : (module Spr_om.Om_intf.S) list =
    [
      (module Spr_om.Om_label);
      (module Spr_om.Om);
      (module Spr_om.Om_packed);
      (module Spr_om.Om_concurrent);
    ]
  in
  List.iter
    (fun (module M : Spr_om.Om_intf.S) ->
      List.iter
        (fun pat ->
          let ins, q = run_pattern (module M) pat n in
          T.add_row tbl
            [ M.name; pattern_name pat; Printf.sprintf "%.1f" ins; Printf.sprintf "%.1f" q ])
        [ Append; Hammer; Random ];
      T.add_sep tbl)
    structures;
  T.print tbl;
  attribution structures (min n 100_000);

  (* Amortization counters: elements moved per insert as n doubles. *)
  let tbl2 =
    T.create ~title:"amortized relabels per insert (hammer pattern)"
      [
        ("n", T.Right);
        ("1-level moved/ins", T.Right);
        ("2-level moved/ins", T.Right);
        ("2-level max range", T.Right);
      ]
  in
  List.iter
    (fun n ->
      let one = Spr_om.Om_label.create () in
      let a1 = Spr_om.Om_label.base one in
      for _ = 1 to n do
        ignore (Spr_om.Om_label.insert_after one a1)
      done;
      let s1 = Spr_om.Om_label.stats one in
      let two = Spr_om.Om.create () in
      let a2 = Spr_om.Om.base two in
      for _ = 1 to n do
        ignore (Spr_om.Om.insert_after two a2)
      done;
      let s2 = Spr_om.Om.stats two in
      T.add_row tbl2
        [
          T.fmt_int n;
          Printf.sprintf "%.2f" (float_of_int s1.items_moved /. float_of_int s1.inserts);
          Printf.sprintf "%.3f" (float_of_int s2.items_moved /. float_of_int s2.inserts);
          T.fmt_int s2.max_range;
        ])
    [ 25_000; 50_000; 100_000; 200_000 ];
  T.print tbl2;
  Printf.printf
    "Paper shape: two-level relabels/insert stays O(1) flat; one-level grows\n\
     slowly (O(lg n) amortized).  Lock-free query retries under real domains\n\
     are exercised by the test suite (test_om: concurrent stress).\n\n";

  (* Section 8's separation: restrict the tag universe to O(n) (online
     list labeling / file maintenance) and the amortized cost is forced
     up to Omega(lg n) — order maintenance strictly needs the bigger
     universe. *)
  let tbl3 =
    T.create
      ~title:"Section 8 — list labeling (u = O(n)) vs order maintenance (hammer)"
      [
        ("n", T.Right);
        ("list-labeling moved/ins", T.Right);
        ("rebuilds", T.Right);
        ("two-level OM moved/ins", T.Right);
      ]
  in
  List.iter
    (fun n ->
      let f = Spr_om.Om_file.create () in
      let af = Spr_om.Om_file.base f in
      for _ = 1 to n do
        ignore (Spr_om.Om_file.insert_after f af)
      done;
      let sf = Spr_om.Om_file.stats f in
      let two = Spr_om.Om.create () in
      let a2 = Spr_om.Om.base two in
      for _ = 1 to n do
        ignore (Spr_om.Om.insert_after two a2)
      done;
      let s2 = Spr_om.Om.stats two in
      T.add_row tbl3
        [
          T.fmt_int n;
          Printf.sprintf "%.2f" (float_of_int sf.items_moved /. float_of_int n);
          T.fmt_int (Spr_om.Om_file.rebuilds f);
          Printf.sprintf "%.3f" (float_of_int s2.items_moved /. float_of_int n);
        ])
    [ 8_000; 32_000; 128_000 ];
  T.print tbl3;
  Printf.printf
    "Paper shape: the linear-universe column grows with lg n (the\n\
     Dietz-Seiferas-Zhang lower bound); order maintenance stays flat.\n";
  if Bench_json.enabled () then begin
    emit_json ();
    emit_json_fused ();
    emit_json_spmix ();
    emit_json_depa ()
  end
