(* EXP-THM10 — Theorem 10: SP-hybrid executes in
   O((T1/P + P*Tinf) lg n) virtual time, against the naive locked
   parallelization of SP-order whose apparent work degrades to
   Theta(P*T1).

   Reported per worker count P:
     - instrumented virtual makespan T_P and speedup;
     - the Theorem 10 bound (T1/P + P*Tinf) lg n and the ratio
       T_P / bound (should stay below a constant);
     - the same program under the *naive* instrumentation (a global
       lock around every SP operation): total apparent work P*T_P,
       which grows like P*T1.

   Linear speedup should persist while P = O(sqrt(T1/Tinf)) — the
   crossover the paper highlights. *)

open Spr_prog
open Spr_sched
module H = Spr_hybrid.Sp_hybrid
module T = Spr_util.Table

(* The naive parallelization of Section 3: every SP-maintenance
   operation (2 OM inserts per thread, 1 per query) takes the global
   lock.  We model its apparent work through the same virtual-lock
   device SP-hybrid uses for its (rare) global inserts. *)
let naive_hooks () =
  let lock_until = ref 0 in
  let grab ~now ticks =
    let wait = max 0 (!lock_until - now) in
    lock_until := now + wait + ticks;
    wait + ticks
  in
  {
    Sim.no_hooks with
    Sim.on_thread = (fun ~wid:_ ~now _ _ -> grab ~now 2);
    Sim.on_spawn = (fun ~wid:_ ~now ~parent:_ ~child:_ -> grab ~now 2);
    Sim.lock_busy = (fun ~now -> now < !lock_until);
  }

let sweep name p ps =
  let t1 = Fj_program.work p in
  let tinf = Fj_program.span p in
  let n = Fj_program.thread_count p in
  let lg_n = log (float_of_int n) /. log 2.0 in
  Printf.printf "\nworkload %s: T1=%d Tinf=%d n=%d sqrt(T1/Tinf)=%.1f\n" name t1 tinf n
    (sqrt (float_of_int t1 /. float_of_int tinf));
  let tbl =
    T.create
      [
        ("P", T.Right);
        ("hybrid T_P", T.Right);
        ("speedup", T.Right);
        ("bound", T.Right);
        ("T_P/bound", T.Right);
        ("steals", T.Right);
        ("naive T_P", T.Right);
        ("naive P*T_P", T.Right);
      ]
  in
  (* Theorem 10 is an expectation over the scheduler's random choices:
     aggregate each configuration over several seeds (median time,
     total steals averaged). *)
  let seeds = [ 42; 43; 44; 45; 46 ] in
  let tp1 = ref 0 in
  List.iter
    (fun procs ->
      let hybrid_runs =
        List.map
          (fun seed ->
            let sink = !Bench_util.sink in
            let h = H.create ~sink p in
            Sim.run ~hooks:(H.hooks h) ~sink ~seed ~procs p)
          seeds
      in
      let times = Array.of_list (List.map (fun r -> float_of_int r.Sim.time) hybrid_runs) in
      let time = Spr_util.Stats.median times in
      let steals =
        List.fold_left (fun acc r -> acc + r.Sim.steals) 0 hybrid_runs / List.length seeds
      in
      if procs = 1 then tp1 := int_of_float time;
      let bound =
        ((float_of_int t1 /. float_of_int procs) +. float_of_int (procs * tinf)) *. lg_n
      in
      let naive_times =
        Array.of_list
          (List.map
             (fun seed -> float_of_int (Sim.run ~hooks:(naive_hooks ()) ~seed ~procs p).Sim.time)
             seeds)
      in
      let naive = Spr_util.Stats.median naive_times in
      T.add_row tbl
        [
          string_of_int procs;
          T.fmt_int (int_of_float time);
          Printf.sprintf "%.2fx" (float_of_int !tp1 /. time);
          T.fmt_int (int_of_float bound);
          Printf.sprintf "%.2f" (time /. bound);
          T.fmt_int steals;
          T.fmt_int (int_of_float naive);
          T.fmt_int (procs * int_of_float naive);
        ])
    ps;
  T.print tbl;
  Printf.printf "(each row: median of %d scheduler seeds)\n" (List.length seeds)

let run () =
  Bench_util.header
    "EXP-THM10: SP-hybrid vs naive locked SP-order (Theorem 10)";
  sweep "fib(16) (huge parallelism)" (Spr_workloads.Progs.fib ~n:16 ~cost:6 ())
    [ 1; 2; 4; 8; 16; 32; 64 ];
  sweep "deep_spawn(400) (parallelism ~ 2)"
    (Spr_workloads.Progs.deep_spawn ~cost:3 ~depth:400 ())
    [ 1; 2; 4; 8; 16 ];
  (* Under --metrics json the steals column above must agree with the
     instrumentation's own counters, and every steal must have split a
     trace (the |C| = 4s+1 invariant seen from the counter side). *)
  (match (Bench_util.counter_value "sched/steals", Bench_util.counter_value "hybrid/splits") with
  | Some steals, Some splits ->
      Printf.printf "\nmeasured counters: sched/steals=%d hybrid/splits=%d (%s)\n" steals splits
        (if steals = splits then "consistent" else "MISMATCH")
  | _ -> ());
  Printf.printf
    "\nPaper shape: hybrid T_P/bound stays below a constant; hybrid keeps\n\
     near-linear speedup while P <~ sqrt(T1/Tinf); the naive scheme's\n\
     apparent work (P*T_P column) grows ~linearly with P, i.e. Theta(P*T1).\n"
