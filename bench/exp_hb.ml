(* EXP-HB — clock-based happens-before baselines vs the SP-order
   detector (ISSUE-10; EXPERIMENTS.md EXP-HB).

   For sp-order-fused and the two clock detectors (vector clocks,
   tree clocks) on the fork-chain and balanced families, measure:

     - time per thread creation (drive the whole on-the-fly walk,
       divide by thread count);
     - time per SP query (random executed pairs vs the current
       thread);
     - clock words copied (snapshots) and joined per thread — the
       engines' own counters, reached by calling the [Sp_clock]
       functor output directly rather than through the maintainer
       registry.

   Expected shape (the crossover the paper's Figure 3 argument
   predicts for vector clocks): every detector answers a query in
   O(1), but a vector-clock join moves Θ(P) words, so on the
   fork-chain its joined words-per-thread grow linearly with the
   number of forks while tree clocks keep the join flat (they pay
   instead in deep snapshots) and sp-order-fused pays O(1) amortized
   per event throughout.  regress.exe thresholds the committed
   BENCH_hb.json medians; the word counters are deterministic and
   must match the baseline exactly. *)

open Spr_sptree
module Sm = Spr_core.Sp_maintainer
module T = Spr_util.Table

let query_samples = 20_000

(* Fig3-style timing through the registry instance. *)
let measure_time tree make =
  let inst = make tree in
  let n = Sp_tree.leaf_count tree in
  let (), build_s = Bench_util.time (fun () -> Spr_core.Driver.run tree inst) in
  let ns_create = build_s *. 1e9 /. float_of_int n in
  let rng = Spr_util.Rng.create 99 in
  let ls = Sp_tree.leaves tree in
  let current = ls.(n - 1) in
  let pairs =
    Array.init query_samples (fun _ ->
        let a = ls.(Spr_util.Rng.int rng n) in
        if Sm.requires_current_operand inst then (a, current)
        else (a, ls.(Spr_util.Rng.int rng n)))
  in
  let sink = ref 0 in
  let ns_query =
    Bench_util.time_ns ~iters:1 (fun () ->
        Array.iter
          (fun (a, b) -> if not (a == b) && Sm.precedes inst a b then incr sink)
          pairs)
    /. float_of_int query_samples
  in
  ignore !sink;
  (ns_create, ns_query)

(* Word counters through the functor output (per fresh walk, so the
   engine counters cover exactly this tree). *)
type words = { copied : int; joined : int; label : float }

let vector_words tree =
  let module V = Spr_hb.Sp_clock.Vector in
  let c = V.create tree in
  Spr_core.Driver.run tree (Sm.Instance ((module V), c));
  let n = Sp_tree.leaf_count tree in
  {
    copied = V.copied_words c / n;
    joined = V.joined_words c / n;
    label = V.avg_label_words c;
  }

let tree_words tree =
  let module Tc = Spr_hb.Sp_clock.Tree in
  let c = Tc.create tree in
  Spr_core.Driver.run tree (Sm.Instance ((module Tc), c));
  let n = Sp_tree.leaf_count tree in
  {
    copied = Tc.copied_words c / n;
    joined = Tc.joined_words c / n;
    label = Tc.avg_label_words c;
  }

let detectors =
  [
    ("sp-order-fused", Spr_core.Algorithms.sp_order_fused, None);
    ("hb-vector", Spr_core.Algorithms.hb_vector, Some vector_words);
    ("hb-tree", Spr_core.Algorithms.hb_tree, Some tree_words);
  ]

let family name pattern trees =
  let tbl =
    T.create
      ~title:(Printf.sprintf "clock detectors on the %s family" name)
      [
        ("detector", T.Left);
        ("P", T.Right);
        ("ns/creation", T.Right);
        ("ns/query", T.Right);
        ("copied w/thread", T.Right);
        ("joined w/thread", T.Right);
        ("label words", T.Right);
      ]
  in
  let growth = Hashtbl.create 8 in
  List.iter
    (fun (det, make, words) ->
      List.iter
        (fun (param, tree) ->
          let c, q = measure_time tree make in
          let w = Option.map (fun f -> f tree) words in
          let joined = match w with Some w -> float_of_int w.joined | None -> 0.0 in
          (match Hashtbl.find_opt growth det with
          | None -> Hashtbl.add growth det ((q, joined), (q, joined))
          | Some (first, _) -> Hashtbl.replace growth det (first, (q, joined)));
          T.add_row tbl
            [
              det;
              T.fmt_int param;
              Printf.sprintf "%.1f" c;
              Printf.sprintf "%.1f" q;
              (match w with Some w -> T.fmt_int w.copied | None -> "-");
              (match w with Some w -> T.fmt_int w.joined | None -> "-");
              (match w with Some w -> Printf.sprintf "%.1f" w.label | None -> "-");
            ];
          let add = Bench_json.add ~experiment:"hb" ~backend:det ~pattern ~n:param in
          add ~metric:"ns_per_thread" ~kind:Bench_json.Time [ c ];
          add ~metric:"ns_per_query" ~kind:Bench_json.Time [ q ];
          match w with
          | None -> ()
          | Some w ->
              add ~metric:"copied_words_per_thread" ~kind:Bench_json.Counter
                [ float_of_int w.copied ];
              add ~metric:"joined_words_per_thread" ~kind:Bench_json.Counter
                [ float_of_int w.joined ])
        trees;
      T.add_sep tbl)
    detectors;
  T.print tbl;
  Printf.printf "growth (largest/smallest P) — ns/query, joined words/thread:\n";
  List.iter
    (fun (det, _, _) ->
      let (q0, j0), (q1, j1) = Hashtbl.find growth det in
      Printf.printf "  %-16s %.1fx, %s\n" det
        (Bench_util.growth_factor q0 q1)
        (if j0 <= 0.0 then "-" else Printf.sprintf "%.1fx" (j1 /. j0)))
    detectors;
  print_newline ()

let run () =
  Bench_util.header "EXP-HB: vector/tree-clock baselines vs sp-order-fused";
  let max_p = Bench_json.scaled_n ~default:4096 in
  let ps = List.filter (fun p -> p <= max_p) [ 64; 256; 1024; 4096 ] in
  let ps = if ps = [] then [ max_p ] else ps in
  family "fork-chain (P forks, join per fork; stresses vector clocks)" "fork-chain"
    (List.map (fun p -> (p, Tree_gen.fork_chain ~forks:p)) ps);
  family "balanced divide-and-conquer (the friendly case)" "balanced"
    (List.map (fun p -> (p, Tree_gen.balanced ~leaves:p)) ps);
  Printf.printf
    "Paper shape: all three answer queries in O(1), and sp-order-fused\n\
     also maintains in O(1) amortized per event.  A vector-clock join\n\
     moves Theta(P) words, so hb-vector's joined words/thread grow\n\
     linearly with the fork count; tree clocks cut the join to the\n\
     updated subtree (flat in P), at the price of snapshots that still\n\
     deep-copy the 6-word-per-node tree.\n"
