(* Bechamel micro-benchmarks: one Test.make per experiment/table, all
   registered in this one executable.  These give statistically sound
   ns/run estimates (OLS over run counts) for each experiment's kernel
   operation; the shaped tables printed by the exp_* modules put the
   numbers in the paper's coordinates. *)

open Bechamel
open Toolkit

(* EXP-FIG3 kernel: one SP-order query on a fully built structure. *)
let test_fig3_query =
  let tree = Spr_sptree.Tree_gen.balanced ~leaves:4096 in
  let inst = Spr_core.Algorithms.sp_order tree in
  Spr_core.Driver.run tree inst;
  let ls = Spr_sptree.Sp_tree.leaves tree in
  let a = ls.(17) and b = ls.(4090) in
  Test.make ~name:"fig3/sp-order-query"
    (Staged.stage (fun () -> Spr_core.Sp_maintainer.precedes inst a b))

(* Same query kernel on the DePa-style fork-path labels: a word-packed
   xor/ctz compare against sp-order's two OM queries. *)
let test_fig3_depa_query =
  let tree = Spr_sptree.Tree_gen.balanced ~leaves:4096 in
  let inst = Spr_core.Algorithms.sp_depa tree in
  Spr_core.Driver.run tree inst;
  let ls = Spr_sptree.Sp_tree.leaves tree in
  let a = ls.(17) and b = ls.(4090) in
  Test.make ~name:"fig3/sp-depa-query"
    (Staged.stage (fun () -> Spr_core.Sp_maintainer.precedes inst a b))

(* EXP-THM5 kernel: full on-the-fly SP-order construction. *)
let test_thm5_construct =
  let tree = Spr_sptree.Tree_gen.balanced ~leaves:1024 in
  Test.make ~name:"thm5/sp-order-construct-1024"
    (Staged.stage (fun () ->
         let inst = Spr_core.Algorithms.sp_order tree in
         Spr_core.Driver.run tree inst))

(* EXP-COR6 kernel: a full detection pass over a dc_sum program. *)
let test_cor6_detect =
  let p = Spr_workloads.Progs.dc_sum ~leaves:256 ~grain:4 () in
  let pt = Spr_prog.Prog_tree.of_program p in
  Test.make ~name:"cor6/detect-dcsum-256"
    (Staged.stage (fun () ->
         Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order))

(* EXP-THM10 kernel: one instrumented hybrid simulation. *)
let test_thm10_hybrid =
  let p = Spr_workloads.Progs.fib ~n:10 ~cost:4 () in
  Test.make ~name:"thm10/hybrid-sim-fib10-P8"
    (Staged.stage (fun () ->
         let h = Spr_hybrid.Sp_hybrid.create p in
         Spr_sched.Sim.run ~hooks:(Spr_hybrid.Sp_hybrid.hooks h) ~seed:3 ~procs:8 p))

(* EXP-STEALS kernel: one bare simulator run. *)
let test_steals_sim =
  let p = Spr_workloads.Progs.fib ~n:10 ~cost:4 () in
  Test.make ~name:"steals/sim-fib10-P8"
    (Staged.stage (fun () -> Spr_sched.Sim.run ~seed:3 ~procs:8 p))

(* EXP-OM kernel: two-level OM insertion (the hot operation of the
   whole paper). *)
let test_om_insert =
  let om = Spr_om.Om.create () in
  let anchor = Spr_om.Om.base om in
  Test.make ~name:"om/two-level-insert-hammer"
    (Staged.stage (fun () -> ignore (Spr_om.Om.insert_after om anchor)))

(* Same kernel on the packed (array-backed) two-level structure. *)
let test_om_packed_insert =
  let om = Spr_om.Om_packed.create () in
  let anchor = Spr_om.Om_packed.base om in
  Test.make ~name:"om/packed-insert-hammer"
    (Staged.stage (fun () -> ignore (Spr_om.Om_packed.insert_after om anchor)))

(* Observability kernels: what always-on instrumentation costs.  The
   uninstalled probe span is the "one atomic load" claim (the regress
   --probe-gate fails CI if it estimates above 5 ns); the sharded
   counter bump is one Domain.DLS read plus an unsynchronized int-array
   store; the typed emitter against a null sink is the price every
   packed-OM insert pays in production. *)
let test_probe_span =
  let r = Spr_obs.Probe.region "bench/uninstalled" in
  Test.make ~name:"obs/probe-span-uninstalled"
    (Staged.stage (fun () -> Spr_obs.Probe.span r (fun () -> ())))

let test_sharded_incr =
  let c = Spr_obs.Sharded.counter Spr_obs.Sharded.default "bench/sharded_incr" in
  Test.make ~name:"obs/sharded-counter-incr"
    (Staged.stage (fun () -> Spr_obs.Sharded.incr c))

let test_null_emit =
  Test.make ~name:"obs/typed-emit-null-sink"
    (Staged.stage (fun () -> Spr_obs.Sink.emit_om_relabel Spr_obs.Sink.null ~om:"b" ~moved:3))

let test_flight_emit =
  let f = Spr_obs.Flight.create ~lanes:1 ~capacity:256 () in
  let name_id = Spr_obs.Flight.intern f "bench" in
  Test.make ~name:"obs/flight-emit-raw"
    (Staged.stage (fun () ->
         Spr_obs.Flight.emit_raw f ~lane:0 ~ts:0 ~wid:0 ~tag:Spr_obs.Flight.tag_om_relabel
           ~a:name_id ~b:3 ~c:0 ~d:0 ~e:0))

(* EXP-FIG11-12 kernel: a global-tier split (5-trace multi-insert). *)
let test_split =
  let g = Spr_hybrid.Global_tier.create () in
  let u = ref (Spr_hybrid.Global_tier.initial g) in
  Test.make ~name:"fig11-12/global-tier-split"
    (Staged.stage (fun () ->
         let s = Spr_hybrid.Global_tier.split g !u in
         u := s.Spr_hybrid.Global_tier.u4))

let all_tests =
  [
    test_fig3_query;
    test_fig3_depa_query;
    test_thm5_construct;
    test_cor6_detect;
    test_thm10_hybrid;
    test_steals_sim;
    test_om_insert;
    test_om_packed_insert;
    test_probe_span;
    test_sharded_incr;
    test_null_emit;
    test_flight_emit;
    test_split;
  ]

let run () =
  Bench_util.header "Bechamel micro-benchmarks (one Test.make per experiment)";
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) ~stabilize:true ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let tbl =
    Spr_util.Table.create
      [
        ("benchmark", Spr_util.Table.Left);
        ("ns/run", Spr_util.Table.Right);
        ("r²", Spr_util.Table.Right);
      ]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Spr_util.Table.fmt_ns e
            | _ -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          Spr_util.Table.add_row tbl [ name; est; r2 ])
        results)
    all_tests;
  Spr_util.Table.print tbl
