(* EXP-FIG3 — the paper's Figure 3 comparison table.

   For each of the four serial SP-maintenance algorithms — plus the
   post-paper DePa-style fork-path labeling as a fifth row — on workloads
   chosen to stress each row's weakness, measure:

     - time per thread creation (drive the whole on-the-fly walk,
       divide by thread count);
     - time per SP query (random executed pairs);
     - space per thread in label words.

   Paper shapes to reproduce:
     english-hebrew : query/space grow with the number of forks f
     offset-span    : query/space grow with the nesting depth d
     sp-bags        : ~alpha() per op, constant space
     sp-order       : O(1) per op, constant space
     sp-depa        : O(1) create, query/space grow ~d/62 (word-packed) *)

open Spr_sptree
module Sm = Spr_core.Sp_maintainer
module T = Spr_util.Table

let query_samples = 20_000

(* Build, walk, then time queries over random executed leaf pairs. *)
let measure tree make =
  let inst = make tree in
  let n = Sp_tree.leaf_count tree in
  let (), build_s = Bench_util.time (fun () -> Spr_core.Driver.run tree inst) in
  let ns_create = build_s *. 1e9 /. float_of_int n in
  let rng = Spr_util.Rng.create 99 in
  let ls = Sp_tree.leaves tree in
  let current = ls.(n - 1) in
  let pairs =
    Array.init query_samples (fun _ ->
        let a = ls.(Spr_util.Rng.int rng n) in
        if Sm.requires_current_operand inst then (a, current)
        else (a, ls.(Spr_util.Rng.int rng n)))
  in
  let sink = ref 0 in
  let ns_query =
    Bench_util.time_ns ~iters:1 (fun () ->
        Array.iter
          (fun (a, b) -> if not (a == b) && Sm.precedes inst a b then incr sink)
          pairs)
    /. float_of_int query_samples
  in
  ignore !sink;
  (ns_create, ns_query, Sm.avg_label_words inst)

let family name trees =
  let tbl =
    T.create
      ~title:(Printf.sprintf "Figure 3 on the %s family" name)
      [
        ("algorithm", T.Left);
        ("param", T.Right);
        ("ns/creation", T.Right);
        ("ns/query", T.Right);
        ("label words", T.Right);
      ]
  in
  let growth = Hashtbl.create 8 in
  List.iter
    (fun (algo_name, make) ->
      List.iter
        (fun (param, tree) ->
          let c, q, w = measure tree make in
          (match Hashtbl.find_opt growth algo_name with
          | None -> Hashtbl.add growth algo_name (q, q)
          | Some (first, _) -> Hashtbl.replace growth algo_name (first, q));
          T.add_row tbl
            [
              algo_name;
              T.fmt_int param;
              Printf.sprintf "%.1f" c;
              Printf.sprintf "%.1f" q;
              Printf.sprintf "%.2f" w;
            ])
        trees;
      T.add_sep tbl)
    Spr_core.Algorithms.figure3_modern;
  T.print tbl;
  Printf.printf "query-cost growth (largest/smallest param):\n";
  List.iter
    (fun (algo_name, _) ->
      let first, last = Hashtbl.find growth algo_name in
      Printf.printf "  %-16s %.1fx\n" algo_name (Bench_util.growth_factor first last))
    Spr_core.Algorithms.figure3_modern;
  print_newline ()

let run () =
  Bench_util.header
    "EXP-FIG3: serial SP-maintenance comparison (paper Figure 3)";
  family "fork-chain (f grows, d = 1; stresses english-hebrew)"
    (List.map (fun f -> (f, Tree_gen.fork_chain ~forks:f)) [ 64; 512; 4096 ]);
  family "deep-nest (d grows; stresses offset-span)"
    (List.map (fun d -> (d, Tree_gen.deep_nest ~depth:d)) [ 64; 512; 4096 ]);
  family "balanced divide-and-conquer (the friendly case)"
    (List.map (fun n -> (n, Tree_gen.balanced ~leaves:n)) [ 1024; 8192 ]);
  Printf.printf
    "Paper shape: english-hebrew explodes with f, offset-span with d,\n\
     sp-bags and sp-order stay flat with sp-order the cheapest per query.\n\
     sp-depa (post-paper) stays flat in time until d crosses a 62-level\n\
     word boundary; its label words grow ~2d/62 instead of sp-order's O(1).\n"
