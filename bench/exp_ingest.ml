(* EXP-INGEST — the streaming trace-ingestion service (lib/ingest):
   resident-server throughput over the spmix trace, single-shard and
   address-sharded across worker domains.

   The acceptance bar from the roadmap is >= 10^7 access events/sec on
   the captured spmix trace at the full measured size; regress.exe
   thresholds the committed BENCH_ingest.json medians, and CI reruns
   the smoke size on every push. *)

module T = Spr_util.Table
module B = Spr_ingest.Ingest_bench

let shard_counts = [ 1; 2; 4 ]

let run () =
  let events = Bench_json.scaled_n ~default:2_000_000 in
  let trace = B.capture_spmix ~events ~seed:1 in
  Printf.printf "EXP-INGEST: spmix trace, >= %s access events (%s bytes)\n%!"
    (T.fmt_int events)
    (T.fmt_int (String.length trace));
  let table =
    T.create ~title:"resident ingestion throughput"
      [
        ("shards", T.Right);
        ("ns/access", T.Right);
        ("events/sec", T.Right);
        ("programs", T.Right);
        ("accesses", T.Right);
        ("races", T.Right);
      ]
  in
  List.iter
    (fun shards ->
      let r = B.measure ~shards trace in
      let med = Spr_util.Stats.median (Array.of_list r.B.samples) in
      T.add_row table
        [
          string_of_int shards;
          T.fmt_ns med;
          T.fmt_int (int_of_float (B.events_per_sec med));
          T.fmt_int r.B.programs;
          T.fmt_int r.B.access_events;
          T.fmt_int r.B.races;
        ];
      let backend = if shards = 1 then "serial" else Printf.sprintf "sharded-%d" shards in
      let add = Bench_json.add ~experiment:"ingest" ~backend ~pattern:"spmix" ~n:events in
      add ~metric:"ns_per_access" ~kind:Bench_json.Time r.B.samples;
      add ~metric:"access_events" ~kind:Bench_json.Counter [ float_of_int r.B.access_events ];
      add ~metric:"total_events" ~kind:Bench_json.Counter [ float_of_int r.B.total_events ];
      add ~metric:"races" ~kind:Bench_json.Counter [ float_of_int r.B.races ];
      add ~metric:"sp_queries" ~kind:Bench_json.Counter [ float_of_int r.B.sp_queries ];
      add ~metric:"trace_bytes" ~kind:Bench_json.Counter [ float_of_int r.B.trace_bytes ])
    shard_counts;
  print_string (T.render table)
