(* Machine-readable benchmark output behind `main.exe -- <exp> --json
   FILE`, and the schema the regression gate (regress.exe) compares
   against committed baselines (BENCH_om.json).

   Schema (version 1):

     { "schema_version": 1,
       "experiments": ["om"],
       "entries": [
         { "experiment": "om",
           "backend":    "om-packed",
           "pattern":    "append",
           "n":          1000000,
           "metric":     "ns_per_insert",   // or a counter metric
           "kind":       "time",            // "time" | "counter"
           "samples":    [134.2, ...],      // raw per-repeat values
           "median":     134.2,
           "q25": ..., "q75": ..., "q90": ... } ] }

   Everything except the values inside "samples"/"median"/"q*" of
   kind:"time" entries is deterministic for a fixed seed: entry order
   is the code's emission order, counter entries are exact, and the
   key set is fixed.  The cram test (test/bench_json.t) checks exactly
   that split, and regress.exe only thresholds kind:"time" rows. *)

module J = Spr_obs.Json

type kind = Time | Counter

type entry = {
  experiment : string;
  backend : string;
  pattern : string;
  n : int;
  metric : string;
  kind : kind;
  samples : float list;
}

(* Armed by main.ml when --json is given.  [n_override] lets the cram
   test and CI smoke run the insert-heavy measurement at a tiny size
   (schema identical, wall clock negligible). *)
let collector : entry list ref option ref = ref None
let n_override : int option ref = ref None

let enable ?n () =
  collector := Some (ref []);
  n_override := n

let enabled () = !collector <> None

(* The measured size for JSON entries: the acceptance size 10^6 unless
   the command line asked for a smaller smoke size. *)
let scaled_n ~default = match !n_override with Some n -> n | None -> default

let add ~experiment ~backend ~pattern ~n ~metric ~kind samples =
  match !collector with
  | None -> ()
  | Some entries ->
      entries := { experiment; backend; pattern; n; metric; kind; samples } :: !entries

let entry_to_json e =
  let arr = Array.of_list e.samples in
  let q p = Spr_util.Stats.quantile arr p in
  J.Obj
    [
      ("experiment", J.String e.experiment);
      ("backend", J.String e.backend);
      ("pattern", J.String e.pattern);
      ("n", J.Int e.n);
      ("metric", J.String e.metric);
      ("kind", J.String (match e.kind with Time -> "time" | Counter -> "counter"));
      ("samples", J.List (List.map (fun s -> J.Float s) e.samples));
      ("median", J.Float (q 0.5));
      ("q25", J.Float (q 0.25));
      ("q75", J.Float (q 0.75));
      ("q90", J.Float (q 0.9));
    ]

let to_json () =
  match !collector with
  | None -> J.Null
  | Some entries ->
      let es = List.rev !entries in
      let experiments =
        List.fold_left
          (fun acc e -> if List.mem e.experiment acc then acc else e.experiment :: acc)
          [] es
        |> List.rev
      in
      J.Obj
        [
          ("schema_version", J.Int 1);
          ("experiments", J.List (List.map (fun x -> J.String x) experiments));
          ("entries", J.List (List.map entry_to_json es));
        ]

let write_file path =
  let oc = open_out path in
  J.to_channel oc (to_json ());
  output_char oc '\n';
  close_out oc
