(* Tests for the program IR, the canonical parse-tree derivation, and
   the work-stealing scheduler simulator. *)

open Spr_prog
open Spr_sched
module Rng = Spr_util.Rng
module W = Spr_workloads.Progs

(* ------------------------------------------------------------------ *)
(* Program IR and parse-tree derivation.                               *)

let fib_shape () =
  let p = W.fib ~n:5 () in
  (* fib(5): leaves fib(1)/fib(0) = 8 base threads, internal adds =
     #internal calls = 7; threads = 15; procs = 15. *)
  Alcotest.(check int) "threads" 15 (Fj_program.thread_count p);
  Alcotest.(check int) "procs" 15 (Fj_program.proc_count p);
  Alcotest.(check int) "work" 60 (Fj_program.work p);
  Alcotest.(check int) "spawns" 14 (Fj_program.spawn_count p)

let span_shapes () =
  let serial = W.serial ~cost:3 ~n:10 () in
  Alcotest.(check int) "serial span = work" 30 (Fj_program.span serial);
  let wide = W.wide ~cost:3 ~n:50 () in
  (* Everything in one sync block runs in parallel. *)
  Alcotest.(check int) "wide span" 3 (Fj_program.span wide);
  let deep = W.deep_spawn ~cost:2 ~depth:40 () in
  (* Each level contributes its continuation thread serially... the
     chain spawns nest, so the span is the max single path = the
     deepest procedure's thread plus nothing serial above it. *)
  Alcotest.(check bool) "deep span small" true (Fj_program.span deep <= 4)

let builder_validation () =
  let b = Fj_program.Builder.create () in
  Alcotest.check_raises "no blocks"
    (Invalid_argument "Fj_program.Builder.proc: need at least one block") (fun () ->
      ignore (Fj_program.Builder.proc b []));
  Alcotest.check_raises "empty block"
    (Invalid_argument "Fj_program.Builder.proc: empty sync block") (fun () ->
      ignore (Fj_program.Builder.proc b [ [] ]));
  Alcotest.check_raises "zero-cost thread"
    (Invalid_argument "Fj_program.Builder.thread: cost must be >= 1") (fun () ->
      ignore (Fj_program.Builder.thread b ~cost:0 ()));
  let u = Fj_program.Builder.thread b ~cost:1 () in
  let main = Fj_program.Builder.proc b [ [ Fj_program.Run u ] ] in
  let p = Fj_program.Builder.finish b main in
  Alcotest.(check int) "one thread" 1 (Fj_program.thread_count p);
  Alcotest.check_raises "builder closed"
    (Invalid_argument "Fj_program.Builder: already finished") (fun () ->
      ignore (Fj_program.Builder.thread b ~cost:1 ()))

let tree_matches_program =
  QCheck2.Test.make ~count:80 ~name:"parse tree work/span = program work/span"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 120))
    (fun (seed, threads) ->
      let p =
        W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 ~max_cost:6 ()
      in
      let pt = Prog_tree.of_program p in
      let cost_of leaf =
        match Prog_tree.thread_of_leaf pt leaf with
        | Some u -> u.Fj_program.cost
        | None -> 0
      in
      let tree = Prog_tree.tree pt in
      let twork =
        Spr_sptree.Sp_tree.fold tree ~leaf:cost_of ~node:(fun _ l r -> l + r)
      in
      let tspan =
        Spr_sptree.Sp_tree.fold tree ~leaf:cost_of ~node:(fun k l r ->
            match k with Spr_sptree.Sp_tree.Series -> l + r | Spr_sptree.Sp_tree.Parallel -> max l r)
      in
      twork = Fj_program.work p && tspan = Fj_program.span p)

let tree_relations_fib () =
  let p = W.fib ~n:4 () in
  let pt = Prog_tree.of_program p in
  (* In fib, the two recursive children of main are parallel; the add
     thread of main is serial after everything. *)
  let main = Fj_program.main p in
  let first_block = main.Fj_program.blocks.(0) in
  let child_first_thread = function
    | Fj_program.Spawn child -> begin
        (* First Run item reachable in the child. *)
        let rec first (pr : Fj_program.proc) =
          let rec scan bi ii =
            if bi >= Array.length pr.Fj_program.blocks then None
            else if ii >= Array.length pr.Fj_program.blocks.(bi) then scan (bi + 1) 0
            else begin
              match pr.Fj_program.blocks.(bi).(ii) with
              | Fj_program.Run u -> Some u
              | Fj_program.Spawn c -> (match first c with Some u -> Some u | None -> scan bi (ii + 1))
            end
          in
          scan 0 0
        in
        first child
      end
    | Fj_program.Run u -> Some u
  in
  let u1 = Option.get (child_first_thread first_block.(0)) in
  let u2 = Option.get (child_first_thread first_block.(1)) in
  let add =
    match main.Fj_program.blocks.(1).(0) with
    | Fj_program.Run u -> u
    | Fj_program.Spawn _ -> Alcotest.fail "expected Run"
  in
  let leaf u = Prog_tree.leaf_of_thread pt u.Fj_program.tid in
  Alcotest.(check bool) "children parallel" true
    (Spr_sptree.Sp_reference.parallel (leaf u1) (leaf u2));
  Alcotest.(check bool) "add after child1" true
    (Spr_sptree.Sp_reference.precedes (leaf u1) (leaf add));
  Alcotest.(check bool) "add after child2" true
    (Spr_sptree.Sp_reference.precedes (leaf u2) (leaf add))

(* ------------------------------------------------------------------ *)
(* Scheduler.                                                          *)

let count_thread_executions ?(seed = 1) ~procs p =
  let executed = Array.make (Fj_program.thread_count p) 0 in
  let order = ref [] in
  let hooks =
    {
      Sim.no_hooks with
      Sim.on_thread =
        (fun ~wid:_ ~now:_ _ u ->
          executed.(u.Fj_program.tid) <- executed.(u.Fj_program.tid) + 1;
          order := u.Fj_program.tid :: !order;
          0);
    }
  in
  let res = Sim.run ~hooks ~seed ~max_ticks:10_000_000 ~procs p in
  (res, executed, List.rev !order)

let serial_execution_is_english_order () =
  let p = W.fib ~n:8 () in
  let pt = Prog_tree.of_program p in
  let _, executed, order = count_thread_executions ~procs:1 p in
  Array.iter (fun c -> Alcotest.(check int) "each thread once" 1 c) executed;
  (* On one worker the scheduler must walk the parse tree left to
     right: execution order = English order of the derived tree. *)
  let eng = Spr_sptree.Sp_tree.english_order (Prog_tree.tree pt) in
  let positions =
    List.map (fun tid -> eng.((Prog_tree.leaf_of_thread pt tid).Spr_sptree.Sp_tree.id)) order
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "english order" true (ascending positions)

let no_steals_when_serial () =
  let p = W.serial ~n:50 () in
  let res, _, _ = count_thread_executions ~procs:4 p in
  Alcotest.(check int) "no successful steals on serial program" 0 res.Sim.steals

let work_conservation () =
  List.iter
    (fun procs ->
      let p = W.fib ~n:10 () in
      let res, executed, _ = count_thread_executions ~procs p in
      Array.iter (fun c -> Alcotest.(check int) "once" 1 c) executed;
      Alcotest.(check int)
        (Printf.sprintf "work ticks (P=%d)" procs)
        (Fj_program.work p) res.Sim.work_ticks)
    [ 1; 2; 3; 8 ]

(* On one worker every tick belongs to exactly one accounting bucket,
   so the makespan decomposes exactly. *)
let serial_time_identity () =
  List.iter
    (fun p ->
      let res = Sim.run ~procs:1 p in
      Alcotest.(check int) "T_1 = work + overhead + hooks"
        (res.Sim.work_ticks + res.Sim.overhead_ticks + res.Sim.hook_ticks)
        res.Sim.time)
    [ W.fib ~n:10 (); W.serial ~n:40 (); W.deep_spawn ~depth:25 (); W.dc_sum ~leaves:32 () ]

let determinism () =
  let p = W.fib ~n:12 () in
  let r1 = Sim.run ~seed:7 ~procs:4 p in
  let r2 = Sim.run ~seed:7 ~procs:4 p in
  Alcotest.(check int) "same time" r1.Sim.time r2.Sim.time;
  Alcotest.(check int) "same steals" r1.Sim.steals r2.Sim.steals;
  Alcotest.(check int) "same attempts" r1.Sim.steal_attempts r2.Sim.steal_attempts

let speedup () =
  let p = W.fib ~n:16 ~cost:8 () in
  let t1 = (Sim.run ~seed:3 ~procs:1 p).Sim.time in
  let t8 = (Sim.run ~seed:3 ~procs:8 p).Sim.time in
  Alcotest.(check bool)
    (Printf.sprintf "8 workers at least 3x faster (t1=%d t8=%d)" t1 t8)
    true
    (t8 * 3 < t1)

let greedy_bound () =
  (* T_P <= T1 + T_inf + overheads; check a generous version of the
     bound on several shapes and worker counts. *)
  List.iter
    (fun (p, name) ->
      List.iter
        (fun procs ->
          let res = Sim.run ~seed:11 ~procs ~max_ticks:50_000_000 p in
          let t1 = Fj_program.work p + res.Sim.overhead_ticks in
          let bound = (t1 / procs) + (3 * Fj_program.span p) + (res.Sim.steal_ticks / procs) + 64 in
          ignore bound;
          (* makespan can't beat perfect speedup *)
          Alcotest.(check bool)
            (Printf.sprintf "%s P=%d: T_P >= T1/P" name procs)
            true
            (res.Sim.time * procs >= Fj_program.work p))
        [ 1; 2; 4; 16 ])
    [ (W.fib ~n:12 (), "fib12"); (W.deep_spawn ~depth:60 (), "deep60"); (W.wide ~n:100 (), "wide100") ]

let steal_targets_are_spawn_continuations () =
  let p = W.fib ~n:12 () in
  let saw_steal = ref 0 in
  let hooks =
    {
      Sim.no_hooks with
      Sim.on_steal =
        (fun ~thief:_ ~victim:_ ~now:_ f ->
          incr saw_steal;
          (* The stolen continuation resumes right after a Spawn. *)
          let items = f.Sim.proc.Fj_program.blocks.(f.Sim.block) in
          Alcotest.(check bool) "position > 0" true (f.Sim.item > 0);
          (match items.(f.Sim.item - 1) with
          | Fj_program.Spawn _ -> ()
          | Fj_program.Run _ -> Alcotest.fail "stolen frame not after a spawn");
          0);
    }
  in
  ignore (Sim.run ~hooks ~seed:5 ~procs:8 ~max_ticks:10_000_000 p);
  Alcotest.(check bool) "some steals happened" true (!saw_steal > 0)

let random_programs_complete =
  QCheck2.Test.make ~count:60 ~name:"random programs complete on random P"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 150) (1 -- 12))
    (fun (seed, threads, procs) ->
      let p = W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 () in
      let res, executed, _ = count_thread_executions ~seed ~procs p in
      Array.for_all (fun c -> c = 1) executed && res.Sim.work_ticks = Fj_program.work p)

let steals_scale_with_span =
  (* O(P * T_inf) steals: verify empirically that a generous multiple
     holds over random fib-like runs. *)
  QCheck2.Test.make ~count:20 ~name:"steal bound O(P*span)"
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 8))
    (fun (seed, procs) ->
      let p = W.fib ~n:13 () in
      let res = Sim.run ~seed ~procs ~max_ticks:10_000_000 p in
      let bound = 40 * procs * Fj_program.span p in
      res.Sim.steals <= bound)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spr_sched"
    [
      ( "program-ir",
        [
          Alcotest.test_case "fib shape" `Quick fib_shape;
          Alcotest.test_case "span shapes" `Quick span_shapes;
          Alcotest.test_case "builder validation" `Quick builder_validation;
          Alcotest.test_case "fib tree relations" `Quick tree_relations_fib;
          QCheck_alcotest.to_alcotest tree_matches_program;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "serial = english order" `Quick serial_execution_is_english_order;
          Alcotest.test_case "no steals when serial" `Quick no_steals_when_serial;
          Alcotest.test_case "work conservation" `Quick work_conservation;
          Alcotest.test_case "serial time identity" `Quick serial_time_identity;
          Alcotest.test_case "determinism" `Quick determinism;
          Alcotest.test_case "speedup" `Quick speedup;
          Alcotest.test_case "greedy bound" `Quick greedy_bound;
          Alcotest.test_case "steals follow spawns" `Quick steal_targets_are_spawn_continuations;
          QCheck_alcotest.to_alcotest random_programs_complete;
          QCheck_alcotest.to_alcotest steals_scale_with_span;
        ] );
    ]
