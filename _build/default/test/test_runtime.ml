(* Real-domain runtime tests.  Runs are nondeterministic, so every
   check is schedule-independent: work conservation, the Cilk deque
   discipline, SP-hybrid correctness against the a-posteriori reference
   (valid for *any* legal schedule), and the 4s+1 trace law with s the
   actually observed steal count. *)

open Spr_prog
module W = Spr_workloads.Progs
module H = Spr_hybrid.Sp_hybrid
module Rt = Spr_runtime.Runtime
module Rng = Spr_util.Rng

let work_conservation () =
  List.iter
    (fun workers ->
      let p = W.fib ~n:10 () in
      let executed = Array.make (Fj_program.thread_count p) 0 in
      let lock = Mutex.create () in
      let hooks =
        {
          Spr_sched.Sim.no_hooks with
          Spr_sched.Sim.on_thread =
            (fun ~wid:_ ~now:_ _ u ->
              Mutex.protect lock (fun () ->
                  executed.(u.Fj_program.tid) <- executed.(u.Fj_program.tid) + 1);
              0);
        }
      in
      let res = Rt.run ~hooks ~spin:20 ~workers p in
      Array.iteri
        (fun tid c ->
          if c <> 1 then Alcotest.failf "thread %d ran %d times (workers=%d)" tid c workers)
        executed;
      Alcotest.(check int)
        (Printf.sprintf "threads_run (workers=%d)" workers)
        (Fj_program.thread_count p) res.Rt.threads_run)
    [ 1; 2; 4 ]

let no_steals_on_one_worker () =
  let p = W.fib ~n:8 () in
  let res = Rt.run ~spin:5 ~workers:1 p in
  Alcotest.(check int) "no steals" 0 res.Rt.steals

let serial_order_on_one_worker () =
  (* On one worker the runtime must walk the tree left-to-right, same
     as the simulator. *)
  let p = W.fib ~n:8 () in
  let pt = Prog_tree.of_program p in
  let order = ref [] in
  let hooks =
    {
      Spr_sched.Sim.no_hooks with
      Spr_sched.Sim.on_thread =
        (fun ~wid:_ ~now:_ _ u ->
          order := u.Fj_program.tid :: !order;
          0);
    }
  in
  ignore (Rt.run ~hooks ~spin:5 ~workers:1 p);
  let eng = Spr_sptree.Sp_tree.english_order (Prog_tree.tree pt) in
  let positions =
    List.rev_map
      (fun tid -> eng.((Prog_tree.leaf_of_thread pt tid).Spr_sptree.Sp_tree.id))
      !order
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "english order" true (ascending positions)

(* SP-hybrid on the real runtime: Theorem 9 under true concurrency.
   Every thread, as it starts, queries all previously *completed*
   threads (tracked under a mutex) against the maintainer; answers are
   compared with the schedule-independent reference relation. *)
let hybrid_on_runtime ~workers ~seed p =
  let pt = Prog_tree.of_program p in
  let h = H.create p in
  let started = ref [] in
  let slock = Mutex.create () in
  let errors = ref [] in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
    let current = u.Fj_program.tid in
    let snapshot = Mutex.protect slock (fun () -> !started) in
    List.iter
      (fun e ->
        let want_prec = Spr_sptree.Sp_reference.precedes (leaf e) (leaf current) in
        let want_par = Spr_sptree.Sp_reference.parallel (leaf e) (leaf current) in
        let got_prec = H.precedes h ~executed:e ~current in
        let got_par = H.parallel h ~executed:e ~current in
        if got_prec <> want_prec || got_par <> want_par then
          Mutex.protect slock (fun () -> errors := (e, current) :: !errors))
      snapshot;
    Mutex.protect slock (fun () -> started := current :: !started);
    0
  in
  let res = Rt.run ~hooks:(H.hooks ~on_thread_user h) ~seed ~spin:30 ~workers p in
  let st = H.stats h in
  (res, st, !errors)

let hybrid_theorem9_real () =
  List.iter
    (fun (p, name) ->
      List.iter
        (fun workers ->
          List.iter
            (fun seed ->
              let res, st, errors = hybrid_on_runtime ~workers ~seed p in
              (match errors with
              | [] -> ()
              | (e, c) :: _ ->
                  Alcotest.failf "%s workers=%d: %d wrong answers, e.g. (t%d, t%d)" name workers
                    (List.length errors) e c);
              Alcotest.(check int)
                (Printf.sprintf "%s: 4s+1 (workers=%d)" name workers)
                ((4 * res.Rt.steals) + 1)
                st.H.traces)
            [ 1; 2 ])
        [ 1; 2; 4 ])
    [
      (W.fib ~n:9 (), "fib9");
      (W.deep_spawn ~cost:1 ~depth:40 (), "deep40");
      (W.dc_sum ~leaves:16 (), "dcsum16");
    ]

let hybrid_random_real () =
  (* Random programs under real concurrency; a handful of iterations to
     keep the suite fast (domains are expensive to spin up). *)
  let rng = Rng.create 77 in
  for _ = 1 to 8 do
    let p =
      W.random_prog ~rng ~threads:(10 + Rng.int rng 40) ~spawn_prob:0.6 ()
    in
    let res, st, errors = hybrid_on_runtime ~workers:4 ~seed:(Rng.int rng 10_000) p in
    Alcotest.(check (list (pair int int))) "no wrong answers" [] errors;
    Alcotest.(check int) "4s+1" ((4 * res.Rt.steals) + 1) st.H.traces
  done

let race_detection_real () =
  (* The full stack end-to-end on domains: SP-hybrid + Nondeterminator
     on a buggy workload.  The planted race must be found under every
     worker count; no false locations may appear. *)
  let p = W.dc_sum ~buggy:true ~leaves:16 () in
  let pt = Prog_tree.of_program p in
  let want = Spr_race.Naive_checker.racy_locs pt in
  List.iter
    (fun workers ->
      let h = H.create p in
      let det =
        Spr_race.Detector.create
          ~locs:(Spr_race.Detector.max_loc p + 1)
          ~precedes:(fun ~executed ~current -> H.precedes h ~executed ~current)
          ()
      in
      let dlock = Mutex.create () in
      let on_thread_user _h ~wid:_ ~now:_ (u : Fj_program.thread) =
        (* Serialize detector updates (its shadow memory is the shared
           resource here; the SP queries inside remain the lock-free
           part). *)
        Mutex.protect dlock (fun () -> Spr_race.Detector.run_thread det u);
        0
      in
      ignore (Rt.run ~hooks:(H.hooks ~on_thread_user h) ~spin:20 ~workers p);
      let locs = Spr_race.Detector.racy_locs det in
      Alcotest.(check bool)
        (Printf.sprintf "found planted race (workers=%d)" workers)
        true (locs <> []);
      List.iter
        (fun l ->
          Alcotest.(check bool) "reported loc is real" true (List.mem l want))
        locs)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "spr_runtime"
    [
      ( "scheduler",
        [
          Alcotest.test_case "work conservation" `Quick work_conservation;
          Alcotest.test_case "no steals on 1 worker" `Quick no_steals_on_one_worker;
          Alcotest.test_case "serial order on 1 worker" `Quick serial_order_on_one_worker;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "theorem 9 (real domains)" `Quick hybrid_theorem9_real;
          Alcotest.test_case "random programs (real domains)" `Quick hybrid_random_real;
          Alcotest.test_case "race detection end-to-end" `Quick race_detection_real;
        ] );
    ]
