  $ spview tree --gen paper --labels
  $ spview detect --workload dcsum-buggy --size 4 --algo sp-order
