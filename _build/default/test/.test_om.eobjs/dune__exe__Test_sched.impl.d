test/test_sched.ml: Alcotest Array Fj_program List Option Printf Prog_tree QCheck2 QCheck_alcotest Sim Spr_prog Spr_sched Spr_sptree Spr_util Spr_workloads
