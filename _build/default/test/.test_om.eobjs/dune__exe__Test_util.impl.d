test/test_util.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Spr_util String
