test/test_algorithms.ml: Alcotest Array List Paper_example Printf QCheck2 QCheck_alcotest Sp_reference Sp_tree Spr_core Spr_sptree Spr_util Tree_gen Unfold
