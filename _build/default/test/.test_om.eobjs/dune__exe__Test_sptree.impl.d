test/test_sptree.ml: Alcotest Array Fun Hashtbl List Paper_example Printf QCheck2 QCheck_alcotest Sp_dag Sp_reference Sp_tree Spr_sptree Spr_util Tree_gen
