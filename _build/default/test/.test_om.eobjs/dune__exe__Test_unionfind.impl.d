test/test_unionfind.ml: Alcotest Array Fun List Printf QCheck2 QCheck_alcotest Spr_unionfind Spr_util
