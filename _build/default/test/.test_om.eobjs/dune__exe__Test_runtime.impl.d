test/test_runtime.ml: Alcotest Array Fj_program List Mutex Printf Prog_tree Spr_hybrid Spr_prog Spr_race Spr_runtime Spr_sched Spr_sptree Spr_util Spr_workloads
