test/test_race.ml: Alcotest Array Fj_program List Printf Prog_tree QCheck2 QCheck_alcotest Spr_core Spr_prog Spr_race Spr_util Spr_workloads
