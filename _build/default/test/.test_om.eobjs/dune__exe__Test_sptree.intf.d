test/test_sptree.mli:
