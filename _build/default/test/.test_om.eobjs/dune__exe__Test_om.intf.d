test/test_om.mli:
