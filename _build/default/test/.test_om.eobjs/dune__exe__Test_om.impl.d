test/test_om.ml: Alcotest Array Atomic Domain List Option Printf QCheck2 QCheck_alcotest Spr_om Spr_util
