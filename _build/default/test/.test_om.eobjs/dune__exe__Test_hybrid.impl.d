test/test_hybrid.ml: Alcotest Array Fj_program List Printf Prog_tree QCheck2 QCheck_alcotest Sim Spr_hybrid Spr_om Spr_prog Spr_sched Spr_sptree Spr_util Spr_workloads
