(* SP-hybrid validation: Theorem 9 (SP-PRECEDES correct between any
   executed thread and the currently executing thread) checked against
   the LCA reference on the derived parse tree, across programs, worker
   counts and scheduler seeds; plus the structural facts — |C| = 4s+1
   traces, buckets populated, determinism. *)

open Spr_prog
open Spr_sched
module Rng = Spr_util.Rng
module W = Spr_workloads.Progs
module H = Spr_hybrid.Sp_hybrid

(* Run [p] under SP-hybrid on [procs] workers; at every thread start,
   check precedes/parallel against the reference for every
   already-started thread.  Returns (sim result, hybrid stats, #queries). *)
let validate ?(seed = 1) ?(compress = false) ~procs p =
  let pt = Prog_tree.of_program p in
  let h = H.create ~local_path_compression:compress p in
  let started : int list ref = ref [] in
  let queries = ref 0 in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
    let current = u.Fj_program.tid in
    List.iter
      (fun e ->
        incr queries;
        let want_prec = Spr_sptree.Sp_reference.precedes (leaf e) (leaf current) in
        let want_par = Spr_sptree.Sp_reference.parallel (leaf e) (leaf current) in
        let got_prec = H.precedes h ~executed:e ~current in
        let got_par = H.parallel h ~executed:e ~current in
        if got_prec <> want_prec then
          Alcotest.failf "precedes(t%d, t%d): got %b want %b (traces %d/%d)" e current got_prec
            want_prec (H.find_trace_id h ~tid:e) (H.find_trace_id h ~tid:current);
        if got_par <> want_par then
          Alcotest.failf "parallel(t%d, t%d): got %b want %b" e current got_par want_par)
      !started;
    started := current :: !started;
    0
  in
  let res =
    Sim.run ~hooks:(H.hooks ~on_thread_user h) ~seed ~max_ticks:50_000_000 ~procs p
  in
  (res, H.stats h, !queries)

let check_trace_count (res : Sim.result) (st : H.stats) =
  Alcotest.(check int) "splits = steals" res.Sim.steals st.H.splits;
  Alcotest.(check int) "|C| = 4s + 1" ((4 * st.H.splits) + 1) st.H.traces

let hybrid_serial () =
  let res, st, q = validate ~procs:1 (W.fib ~n:8 ()) in
  check_trace_count res st;
  Alcotest.(check int) "one trace on one worker" 1 st.H.traces;
  Alcotest.(check bool) "queries happened" true (q > 1000)

let hybrid_parallel_fib () =
  List.iter
    (fun procs ->
      let res, st, _ = validate ~seed:42 ~procs (W.fib ~n:9 ()) in
      check_trace_count res st;
      if procs > 1 then
        Alcotest.(check bool) (Printf.sprintf "steals happen at P=%d" procs) true (res.Sim.steals > 0))
    [ 2; 4; 8 ]

let hybrid_shapes () =
  List.iter
    (fun (p, name) ->
      List.iter
        (fun procs ->
          let res, st, _ = validate ~seed:7 ~procs p in
          ignore name;
          check_trace_count res st)
        [ 2; 5 ])
    [
      (W.deep_spawn ~depth:30 (), "deep30");
      (W.wide ~n:40 (), "wide40");
      (W.serial ~n:30 (), "serial30");
      (W.dc_sum ~leaves:16 (), "dcsum16");
    ]

let hybrid_random =
  QCheck2.Test.make ~count:120 ~name:"Theorem 9 on random programs/schedules"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 80) (1 -- 10))
    (fun (seed, threads, procs) ->
      let p = W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 () in
      let res, st, _ = validate ~seed ~procs p in
      res.Sim.steals = st.H.splits && st.H.traces = (4 * st.H.splits) + 1)

(* The Section 7 conjecture configuration (path compression in the
   local tier) must preserve correctness. *)
let hybrid_random_compressed =
  QCheck2.Test.make ~count:60 ~name:"Theorem 9 with local path compression"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 60) (1 -- 8))
    (fun (seed, threads, procs) ->
      let p = W.random_prog ~rng:(Rng.create seed) ~threads ~spawn_prob:0.5 () in
      let res, st, _ = validate ~seed ~compress:true ~procs p in
      res.Sim.steals = st.H.splits && st.H.traces = (4 * st.H.splits) + 1)

(* Arbitrary parse trees through the hybrid: compile any random SP tree
   to a program (footnote 6 transformation) and re-validate.  Also
   checks that the compilation preserved the SP relation exactly. *)
let hybrid_on_random_trees =
  QCheck2.Test.make ~count:80 ~name:"tree -> program compilation + Theorem 9"
    QCheck2.Gen.(triple (0 -- 1_000_000) (2 -- 40) (1 -- 8))
    (fun (seed, leaves, procs) ->
      let tree =
        Spr_sptree.Tree_gen.random_tree ~rng:(Rng.create seed) ~leaves ~p_prob:0.5
      in
      let p, tid_of_leaf = W.of_tree tree in
      (* 1. compilation preserves the SP relation *)
      let pt = Prog_tree.of_program p in
      let ls = Spr_sptree.Sp_tree.leaves tree in
      Array.iter
        (fun (a : Spr_sptree.Sp_tree.node) ->
          Array.iter
            (fun (b : Spr_sptree.Sp_tree.node) ->
              let la = Prog_tree.leaf_of_thread pt tid_of_leaf.(a.Spr_sptree.Sp_tree.id) in
              let lb = Prog_tree.leaf_of_thread pt tid_of_leaf.(b.Spr_sptree.Sp_tree.id) in
              let want = Spr_sptree.Sp_reference.relate a b in
              let got = Spr_sptree.Sp_reference.relate la lb in
              if want <> got then Alcotest.fail "of_tree changed an SP relation")
            ls)
        ls;
      (* 2. the hybrid answers correctly on the compiled program *)
      let res, st, _ = validate ~seed ~procs p in
      res.Sim.steals = st.H.splits && st.H.traces = (4 * st.H.splits) + 1)

(* Steal-heavy stress: deep_spawn with tiny costs forces a steal at
   nearly every level; great at shaking out split bookkeeping. *)
let hybrid_steal_storm () =
  List.iter
    (fun seed ->
      let p = W.deep_spawn ~cost:1 ~depth:120 () in
      let res, st, _ = validate ~seed ~procs:8 p in
      check_trace_count res st;
      Alcotest.(check bool) "many steals" true (res.Sim.steals > 10))
    [ 1; 2; 3; 4; 5 ]

(* The global tier over both concurrent OM backends (one-level per the
   paper's prose, two-level per its footnote 3): identical split
   semantics under random split sequences. *)
module G1 = Spr_hybrid.Global_tier
module G2 = Spr_hybrid.Global_tier.Make (Spr_om.Om_concurrent2)

let global_tier_backends_agree =
  QCheck2.Test.make ~count:60 ~name:"global tier: 1-level = 2-level backend"
    QCheck2.Gen.(pair (0 -- 1_000_000) (1 -- 60))
    (fun (seed, splits) ->
      let rng = Rng.create seed in
      let g1 = G1.create () and g2 = G2.create () in
      let traces = ref [ (G1.initial g1, G2.initial g2) ] in
      for _ = 1 to splits do
        let idx = Rng.int rng (List.length !traces) in
        let t1, t2 = List.nth !traces idx in
        let s1 = G1.split g1 t1 and s2 = G2.split g2 t2 in
        traces :=
          (s1.G1.u1, s2.G2.u1) :: (s1.G1.u2, s2.G2.u2) :: (s1.G1.u4, s2.G2.u4)
          :: (s1.G1.u5, s2.G2.u5) :: !traces
      done;
      List.for_all
        (fun (a1, a2) ->
          List.for_all
            (fun (b1, b2) ->
              G1.precedes g1 a1 b1 = G2.precedes g2 a2 b2
              && G1.parallel g1 a1 b1 = G2.parallel g2 a2 b2)
            !traces)
        !traces)

let buckets_populated () =
  let p = W.fib ~n:11 () in
  let h = H.create p in
  let res = Sim.run ~hooks:(H.hooks h) ~seed:9 ~procs:8 ~max_ticks:50_000_000 p in
  let st = H.stats h in
  Alcotest.(check bool) "local ops counted (B3)" true (st.H.local_ops > 0);
  if res.Sim.steals > 0 then
    Alcotest.(check bool) "global insert ticks (B2)" true (st.H.global_insert_ticks > 0);
  Alcotest.(check bool) "hook ticks flowed into sim" true (res.Sim.hook_ticks > 0)

let hybrid_determinism () =
  let run () =
    let p = W.fib ~n:10 () in
    let h = H.create p in
    let res = Sim.run ~hooks:(H.hooks h) ~seed:5 ~procs:4 p in
    let st = H.stats h in
    (res.Sim.time, res.Sim.steals, st.H.traces, st.H.local_ops)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical instrumented runs" true (a = b)

(* The performance shape of Theorem 10: instrumented virtual time is
   within a moderate constant of (T1/P + P*Tinf) * lg n. *)
let theorem10_shape () =
  let p = W.fib ~n:14 ~cost:6 () in
  let t1 = Fj_program.work p and tinf = Fj_program.span p in
  let n = float_of_int (Fj_program.thread_count p) in
  let lg_n = log n /. log 2.0 in
  List.iter
    (fun procs ->
      let h = H.create p in
      let res = Sim.run ~hooks:(H.hooks h) ~seed:3 ~procs ~max_ticks:100_000_000 p in
      let bound =
        30.0 *. ((float_of_int t1 /. float_of_int procs) +. float_of_int (procs * tinf)) *. lg_n
      in
      Alcotest.(check bool)
        (Printf.sprintf "T_P within Theorem 10 shape at P=%d (T=%d bound=%.0f)" procs res.Sim.time
           bound)
        true
        (float_of_int res.Sim.time <= bound))
    [ 1; 2; 4; 8; 16 ]

let () =
  Alcotest.run "spr_hybrid"
    [
      ( "correctness",
        [
          Alcotest.test_case "serial run" `Quick hybrid_serial;
          Alcotest.test_case "parallel fib" `Quick hybrid_parallel_fib;
          Alcotest.test_case "shapes" `Quick hybrid_shapes;
          Alcotest.test_case "steal storm" `Quick hybrid_steal_storm;
          QCheck_alcotest.to_alcotest hybrid_random;
          QCheck_alcotest.to_alcotest hybrid_random_compressed;
          QCheck_alcotest.to_alcotest hybrid_on_random_trees;
        ] );
      ("global-tier", [ QCheck_alcotest.to_alcotest global_tier_backends_agree ]);
      ( "accounting",
        [
          Alcotest.test_case "buckets populated" `Quick buckets_populated;
          Alcotest.test_case "determinism" `Quick hybrid_determinism;
          Alcotest.test_case "theorem 10 shape" `Quick theorem10_shape;
        ] );
    ]
