(* Disjoint-set forest tests: model-based against a brute-force
   partition, payload semantics, rank balancing, and the behavioural
   difference between the two configurations (read-only finds vs path
   compression). *)

module Uf = Spr_unionfind.Union_find
module Rng = Spr_util.Rng

let basics config () =
  let t = Uf.create config in
  let a = Uf.make_set t "a" and b = Uf.make_set t "b" and c = Uf.make_set t "c" in
  Alcotest.(check int) "three sets" 3 (Uf.count_sets t);
  Alcotest.(check bool) "distinct" false (Uf.same_set t a b);
  Uf.union t ~into:a b;
  Alcotest.(check bool) "merged" true (Uf.same_set t a b);
  Alcotest.(check string) "payload follows ~into" "a" (Uf.payload t b);
  Alcotest.(check int) "two sets" 2 (Uf.count_sets t);
  Uf.union t ~into:a b;
  Alcotest.(check int) "idempotent union" 2 (Uf.count_sets t);
  Uf.set_payload t b "z";
  Alcotest.(check string) "payload shared" "z" (Uf.payload t a);
  Alcotest.(check bool) "c alone" false (Uf.same_set t a c);
  Alcotest.(check int) "nodes" 3 (Uf.count_nodes t)

(* Model test: compare against a naive partition structure (array of
   group ids). *)
let model config =
  QCheck2.Test.make ~count:100
    ~name:
      (Printf.sprintf "model (compression=%b)" config.Uf.path_compression)
    QCheck2.Gen.(pair (0 -- 1_000_000) (2 -- 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let t = Uf.create config in
      let nodes = Array.init n (fun i -> Uf.make_set t i) in
      let group = Array.init n Fun.id in
      let regroup a b =
        let ga = group.(a) and gb = group.(b) in
        Array.iteri (fun i g -> if g = gb then group.(i) <- ga) group
      in
      for _ = 1 to 3 * n do
        let a = Rng.int rng n and b = Rng.int rng n in
        match Rng.int rng 3 with
        | 0 ->
            Uf.union t ~into:nodes.(a) nodes.(b);
            regroup a b
        | 1 -> if Uf.same_set t nodes.(a) nodes.(b) <> (group.(a) = group.(b)) then failwith "same_set"
        | _ ->
            (* payload of the set = payload set by the latest union's
               ~into chain; too history-dependent for the model, so
               just check it's *some* member of the same group. *)
            let p = Uf.payload t nodes.(a) in
            if group.(p) <> group.(a) then failwith "payload not in group"
      done;
      let groups = List.sort_uniq compare (Array.to_list group) in
      Uf.count_sets t = List.length groups)

(* Union by rank keeps find depth logarithmic even without
   compression. *)
let rank_balancing () =
  let t = Uf.create { Uf.path_compression = false } in
  let n = 1 lsl 12 in
  let nodes = Array.init n (fun i -> Uf.make_set t i) in
  (* Binary-tournament unions: the adversarial-ish pattern. *)
  let step = ref 1 in
  while !step < n do
    let i = ref 0 in
    while !i + !step < n do
      Uf.union t ~into:nodes.(!i) nodes.(!i + !step);
      i := !i + (2 * !step)
    done;
    step := !step * 2
  done;
  Alcotest.(check int) "single set" 1 (Uf.count_sets t);
  let f0 = Uf.find_steps t in
  let k0 = Uf.find_count t in
  Array.iter (fun nd -> ignore (Uf.find t nd)) nodes;
  let mean_depth =
    float_of_int (Uf.find_steps t - f0) /. float_of_int (Uf.find_count t - k0)
  in
  (* lg(4096) = 12; union by rank guarantees depth <= lg n. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean find depth %.2f <= 12" mean_depth)
    true (mean_depth <= 12.0)

let compression_flattens () =
  let build config =
    let t = Uf.create config in
    let n = 4096 in
    let nodes = Array.init n (fun i -> Uf.make_set t i) in
    let step = ref 1 in
    while !step < n do
      let i = ref 0 in
      while !i + !step < n do
        Uf.union t ~into:nodes.(!i) nodes.(!i + !step);
        i := !i + (2 * !step)
      done;
      step := !step * 2
    done;
    (* Two find sweeps; measure the second. *)
    Array.iter (fun nd -> ignore (Uf.find t nd)) nodes;
    let s0 = Uf.find_steps t and c0 = Uf.find_count t in
    Array.iter (fun nd -> ignore (Uf.find t nd)) nodes;
    float_of_int (Uf.find_steps t - s0) /. float_of_int (Uf.find_count t - c0)
  in
  let without = build { Uf.path_compression = false } in
  let with_ = build { Uf.path_compression = true } in
  Alcotest.(check bool)
    (Printf.sprintf "compression flattens (%.3f < %.3f)" with_ without)
    true
    (with_ < without /. 2.0);
  Alcotest.(check bool) "compressed second sweep ~ direct" true (with_ <= 1.01)

let readonly_find_never_mutates () =
  let t = Uf.create { Uf.path_compression = true } in
  let a = Uf.make_set t 0 and b = Uf.make_set t 1 and c = Uf.make_set t 2 in
  Uf.union t ~into:a b;
  Uf.union t ~into:a c;
  (* find_readonly must return the same root as find without changing
     future behaviour; verified indirectly: repeated readonly finds on
     a no-compression forest leave step counts identical each time. *)
  let t2 = Uf.create { Uf.path_compression = false } in
  let nodes = Array.init 64 (fun i -> Uf.make_set t2 i) in
  for i = 1 to 63 do
    Uf.union t2 ~into:nodes.(0) nodes.(i)
  done;
  let sweep () =
    let s0 = Uf.find_steps t2 in
    Array.iter (fun nd -> ignore (Uf.find_readonly t2 nd)) nodes;
    Uf.find_steps t2 - s0
  in
  let s1 = sweep () and s2 = sweep () in
  Alcotest.(check int) "identical cost every sweep" s1 s2;
  Alcotest.(check bool) "roots agree" true (Uf.find_readonly t a == Uf.find_readonly t c)

let () =
  Alcotest.run "spr_unionfind"
    [
      ( "basics",
        [
          Alcotest.test_case "with compression" `Quick (basics { Uf.path_compression = true });
          Alcotest.test_case "without compression" `Quick
            (basics { Uf.path_compression = false });
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest (model { Uf.path_compression = true });
          QCheck_alcotest.to_alcotest (model { Uf.path_compression = false });
        ] );
      ( "structure",
        [
          Alcotest.test_case "rank balancing" `Quick rank_balancing;
          Alcotest.test_case "compression flattens" `Quick compression_flattens;
          Alcotest.test_case "readonly find" `Quick readonly_find_never_mutates;
        ] );
    ]
