(** Online list labeling with linear tag space (file maintenance) —
    the special case of order maintenance discussed in the paper's
    Section 8.

    Elements carry integer tags from a universe of size u = O(n)
    (here u stays within [4n, 16n], doubling by global rebuild when the
    file gets too full).  Insertions use the same
    smallest-sparse-enclosing-range relabeling as {!Om_label}, but with
    a density calibration appropriate for the tiny universe.

    The point of carrying this structure in the repo is the paper's
    observation: any list-labeling solution yields an order-maintenance
    structure, but not vice versa — list labeling has an Ω(lg n)
    amortized lower bound [Dietz–Seiferas–Zhang], so the paper's O(1)
    bounds genuinely need the extra freedom of a polynomial universe
    (and the two-level trick).  EXP-OM shows the measured gap:
    relabels/insert grows with lg n here and stays flat for {!Om}. *)

include Om_intf.S

val tag : t -> elt -> int
(** Current tag; tags lie in [\[0, universe())]. *)

val universe : t -> int
(** Current tag-universe size, always O(n). *)

val stats : t -> Om_intf.stats

val rebuilds : t -> int
(** Number of global doubling rebuilds so far. *)
