(** One-level label-based order maintenance.

    Elements live in a doubly linked list and carry integer tags from a
    62-bit universe; tag order equals list order, so [precedes] is a
    single integer comparison (O(1) worst case).  Insertion takes the
    midpoint of the neighbouring tags; when no room remains it
    rebalances the smallest sufficiently sparse enclosing aligned tag
    range (see {!Labeling}).  This is the classic list-labeling
    structure (Dietz 1982 as simplified by Bender et al. 2002) with
    O(lg n) amortized relabels per insertion.

    {!Om} wraps this idea in a two-level hierarchy to reach the O(1)
    amortized bound quoted by the paper; this one-level version is kept
    both as a baseline for EXP-OM and as the engine for {!Om}'s top
    level. *)

include Om_intf.S

val create_tuned : t_param:float -> t
(** [create_tuned ~t_param] selects the density constant T (in (1,2));
    [create] uses 1.3. *)

val tag : t -> elt -> int
(** Current tag (introspection for tests/benches; tags change across
    rebalances). *)

val stats : t -> Om_intf.stats
(** Live operation counters (see {!Om_intf.stats}). *)
