lib/om/labeling.ml:
