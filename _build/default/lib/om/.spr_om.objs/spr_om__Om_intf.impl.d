lib/om/om_intf.ml:
