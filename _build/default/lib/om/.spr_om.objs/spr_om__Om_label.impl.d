lib/om/om_label.ml: Labeling List Om_intf
