lib/om/om_concurrent.mli: Om_intf
