lib/om/labeling.mli:
