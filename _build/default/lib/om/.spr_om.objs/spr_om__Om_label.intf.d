lib/om/om_label.mli: Om_intf
