lib/om/om_concurrent.ml: Array Atomic Fun Labeling List Mutex Om_intf Option
