lib/om/om_file.ml: List Om_intf
