lib/om/om.mli: Om_intf
