lib/om/om_concurrent2.mli: Om_intf
