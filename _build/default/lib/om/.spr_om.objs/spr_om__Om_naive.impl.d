lib/om/om_naive.ml: List
