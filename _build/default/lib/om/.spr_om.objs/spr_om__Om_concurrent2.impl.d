lib/om/om_concurrent2.ml: Array Atomic Fun Labeling List Mutex Om_intf Option
