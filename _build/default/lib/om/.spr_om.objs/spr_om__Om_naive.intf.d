lib/om/om_naive.mli: Om_intf
