lib/om/om_file.mli: Om_intf
