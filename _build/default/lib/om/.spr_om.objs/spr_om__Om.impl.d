lib/om/om.ml: Labeling List Om_intf Option
