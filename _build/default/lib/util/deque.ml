type 'a t = { mutable buf : 'a option array; mutable top : int; mutable len : int }
(* [top] indexes the oldest element; elements occupy
   buf[(top + k) mod cap] for k in [0, len). *)

let create () = { buf = Array.make 8 None; top = 0; len = 0 }

let length d = d.len

let is_empty d = d.len = 0

let grow d =
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) None in
  for k = 0 to d.len - 1 do
    buf'.(k) <- d.buf.((d.top + k) mod cap)
  done;
  d.buf <- buf';
  d.top <- 0

let push_bottom d x =
  if d.len = Array.length d.buf then grow d;
  let cap = Array.length d.buf in
  d.buf.((d.top + d.len) mod cap) <- Some x;
  d.len <- d.len + 1

let pop_bottom d =
  if d.len = 0 then None
  else begin
    let cap = Array.length d.buf in
    let idx = (d.top + d.len - 1) mod cap in
    let x = d.buf.(idx) in
    d.buf.(idx) <- None;
    d.len <- d.len - 1;
    x
  end

let pop_top d =
  if d.len = 0 then None
  else begin
    let x = d.buf.(d.top) in
    d.buf.(d.top) <- None;
    d.top <- (d.top + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    x
  end

let peek_top d = if d.len = 0 then None else d.buf.(d.top)

let clear d =
  Array.fill d.buf 0 (Array.length d.buf) None;
  d.top <- 0;
  d.len <- 0

let iter_top_to_bottom f d =
  let cap = Array.length d.buf in
  for k = 0 to d.len - 1 do
    match d.buf.((d.top + k) mod cap) with Some x -> f x | None -> assert false
  done
