let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty input";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty input";
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0)) xs

let linear_fit points =
  let n = float_of_int (Array.length points) in
  if n < 2.0 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let denom = (n *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = ((n *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. n in
  (slope, intercept)

let fit_power points =
  let logs =
    Array.of_list
      (Array.fold_left
         (fun acc (x, y) -> if x > 0.0 && y > 0.0 then (log x, log y) :: acc else acc)
         [] points
      |> List.rev)
  in
  let k, logc = linear_fit logs in
  (k, exp logc)

let r_squared points (slope, intercept) =
  let ys = Array.map snd points in
  let m = mean ys in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. m) ** 2.0)) 0.0 ys in
  let ss_res =
    Array.fold_left
      (fun acc (x, y) ->
        let fy = (slope *. x) +. intercept in
        acc +. ((y -. fy) ** 2.0))
      0.0 points
  in
  if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)
