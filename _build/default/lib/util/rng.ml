(* xoshiro256** by Blackman & Vigna (public domain reference
   implementation), seeded via splitmix64.  All state is local to [t];
   no global mutable state anywhere. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a child from two fresh outputs; child streams are independent
     for all practical purposes. *)
  let a = bits64 t and b = bits64 t in
  let state = ref (Int64.logxor a (Int64.mul b 0x2545F4914F6CDD1DL)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub bound64 1L) then loop ()
    else Int64.to_int v
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53 *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
