(** Deterministic, splittable pseudo-random number generator.

    The whole repository (workload generators, the work-stealing
    scheduler simulator, qcheck shrink seeds) derives randomness from
    this module so every experiment is reproducible from a single
    integer seed.  The implementation is xoshiro256** seeded through
    splitmix64, which is both fast and statistically strong — we never
    rely on [Stdlib.Random] whose sequence may change between compiler
    releases. *)

type t

val create : int -> t
(** [create seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Splitting lets one seed drive many components (scheduler, workload,
    detector) without correlation. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future sequence). *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
