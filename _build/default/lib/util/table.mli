(** ASCII table rendering for the benchmark harness and examples.

    Produces aligned, boxed tables in the spirit of the paper's
    Figure 3 so that bench output can be compared to the paper at a
    glance. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers and
    alignments. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row; the cell count must match the
    header count. *)

val add_sep : t -> unit
(** [add_sep t] inserts a horizontal rule between data rows. *)

val render : t -> string
(** Render the table to a string (trailing newline included). *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val fmt_ns : float -> string
(** Human format for a duration in nanoseconds: "12.3ns", "4.5us", ... *)

val fmt_float : float -> string
(** Compact float: 3 significant-ish decimals. *)

val fmt_int : int -> string
(** Thousands-separated integer: 1_234_567 -> "1,234,567". *)
