type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

(* Doubling growth keeps pushes amortized O(1).  The first push allocates
   a small fixed capacity. *)
let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    let x = v.data.(v.len) in
    (* Release the slot so the GC can reclaim [x] early. *)
    if v.len > 0 then v.data.(v.len) <- v.data.(0);
    Some x
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let clear v =
  (* Overwrite live slots so cleared elements do not leak. *)
  if v.len > 0 then begin
    let filler = v.data.(0) in
    for i = 1 to v.len - 1 do
      v.data.(i) <- filler
    done
  end;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v
