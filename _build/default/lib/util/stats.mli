(** Small statistics toolkit for the benchmark harness.

    Besides the usual summary statistics, [fit_power] estimates the
    exponent of a power-law relationship, which the benches use to check
    asymptotic claims ("construction is O(n)" shows up as an exponent
    close to 1 of total time against n, i.e. flat per-node cost). *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val median : float array -> float
(** Median (input is not modified). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation. *)

val min_max : float array -> float * float

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] is the least-squares [(slope, intercept)]. *)

val fit_power : (float * float) array -> float * float
(** [fit_power points] fits [y = c * x^k] by regression in log-log
    space and returns [(k, c)].  Points with non-positive coordinates
    are ignored. *)

val r_squared : (float * float) array -> float * float -> float
(** [r_squared points (slope, intercept)] is the coefficient of
    determination of the linear fit. *)
