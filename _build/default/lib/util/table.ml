type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  rows : row Vec.t;
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = Vec.create () }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  Vec.push t.rows (Cells cells)

let add_sep t = Vec.push t.rows Sep

let render t =
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  Vec.iter (function Cells cells -> measure cells | Sep -> ()) t.rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row cells aligns =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let pad = widths.(i) - String.length c in
        let l, r = match List.nth aligns i with Left -> (0, pad) | Right -> (pad, 0) in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (String.make l ' ');
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make r ' ');
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  emit_row t.headers (List.map (fun _ -> Left) t.headers);
  rule ();
  Vec.iter (function Cells cells -> emit_row cells t.aligns | Sep -> rule ()) t.rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_ns ns =
  let abs = Float.abs ns in
  if abs < 1e3 then Printf.sprintf "%.1fns" ns
  else if abs < 1e6 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else if abs < 1e9 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else Printf.sprintf "%.3fs" (ns /. 1e9)

let fmt_float x =
  let abs = Float.abs x in
  if abs <> 0.0 && (abs < 0.01 || abs >= 1e6) then Printf.sprintf "%.3e" x
  else Printf.sprintf "%.3f" x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
