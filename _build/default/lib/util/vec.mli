(** Growable arrays (the stdlib gains [Dynarray] only in OCaml 5.2).

    A [Vec.t] is a resizable array with amortized O(1) [push] and O(1)
    random access.  Used throughout the repo wherever nodes, threads or
    measurements accumulate on the fly. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x]; amortized O(1). *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, if any. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit
(** [clear v] logically empties [v] (capacity retained, slots released). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t
