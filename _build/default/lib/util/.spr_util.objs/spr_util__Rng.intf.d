lib/util/rng.mli:
