lib/util/stats.mli:
