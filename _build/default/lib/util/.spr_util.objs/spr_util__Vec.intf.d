lib/util/vec.mli:
