lib/util/table.mli:
