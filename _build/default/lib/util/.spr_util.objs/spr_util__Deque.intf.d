lib/util/deque.mli:
