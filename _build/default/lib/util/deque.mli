(** Double-ended queue (ring buffer).

    The work-stealing simulator uses one per virtual worker: the owner
    pushes and pops continuations at the {e bottom}; thieves take from
    the {e top} — the oldest continuation, which in Cilk corresponds to
    the P-node highest in the victim's parse-tree walk. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_bottom : 'a t -> 'a -> unit

val pop_bottom : 'a t -> 'a option
(** Most recently pushed element (LIFO end). *)

val pop_top : 'a t -> 'a option
(** Oldest element (FIFO end) — the steal operation. *)

val peek_top : 'a t -> 'a option

val clear : 'a t -> unit

val iter_top_to_bottom : ('a -> unit) -> 'a t -> unit
