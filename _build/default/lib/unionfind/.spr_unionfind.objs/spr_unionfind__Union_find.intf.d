lib/unionfind/union_find.mli:
