lib/unionfind/union_find.ml:
