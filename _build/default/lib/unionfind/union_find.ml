type 'a node = {
  mutable parent : 'a node option;  (* None iff root *)
  mutable rank : int;
  mutable data : 'a;  (* meaningful at roots only *)
}

type config = { path_compression : bool }

type 'a t = {
  config : config;
  mutable nodes : int;
  mutable sets : int;
  mutable finds : int;
  mutable steps : int;
}

let create config = { config; nodes = 0; sets = 0; finds = 0; steps = 0 }

let make_set t data =
  t.nodes <- t.nodes + 1;
  t.sets <- t.sets + 1;
  { parent = None; rank = 0; data }

let rec find_root t n =
  match n.parent with
  | None -> n
  | Some p ->
      t.steps <- t.steps + 1;
      find_root t p

let find_readonly t n =
  t.finds <- t.finds + 1;
  find_root t n

let find t n =
  t.finds <- t.finds + 1;
  let root = find_root t n in
  if t.config.path_compression then begin
    (* Second pass: point every node on the path directly at the root. *)
    let rec compress n =
      match n.parent with
      | Some p when not (p == root) ->
          n.parent <- Some root;
          compress p
      | _ -> ()
    in
    compress n
  end;
  root

let union t ~into other =
  let ra = find t into in
  let rb = find t other in
  if ra == rb then ()
  else begin
    let keep = ra.data in
    let winner, loser = if ra.rank >= rb.rank then (ra, rb) else (rb, ra) in
    (* Publish the surviving payload *before* linking: a concurrent
       read-only find then observes either the pre-union state (two
       roots, old payloads) or the post-union state (one root with the
       kept payload) — never a root with a stale payload.  This is the
       write ordering SP-hybrid's lock-free FIND-TRACE relies on. *)
    winner.data <- keep;
    if winner.rank = loser.rank then winner.rank <- winner.rank + 1;
    loser.parent <- Some winner;
    t.sets <- t.sets - 1
  end

let same_set t a b = find t a == find t b

let payload t n = (find t n).data

let set_payload t n v = (find t n).data <- v

let count_sets t = t.sets

let count_nodes t = t.nodes

let find_count t = t.finds

let find_steps t = t.steps
