(** Disjoint-set forests.

    Two variants, matching the paper's Section 5 discussion:

    - {!Make} with [path_compression = true] is the classical structure
      (union by rank + path compression, Θ(α(m,n)) amortized) used by
      the serial SP-bags algorithm [Feng–Leiserson 1997].
    - [path_compression = false] is union-by-rank only, O(lg n)
      worst-case per operation but with {e read-only finds}, which is
      what SP-hybrid's local tier needs so that concurrent FIND-TRACE
      operations never write to the structure.

    Sets carry a mutable payload at their representative; [union] lets
    the caller decide which payload survives.  Payloads are how SP-bags
    tags sets as S-bags or P-bags and how the local tier maps a set to
    its trace. *)

type 'a node
(** An element; its set is identified by the representative node. *)

type config = { path_compression : bool }

type 'a t
(** A forest (a universe of elements). *)

val create : config -> 'a t

val make_set : 'a t -> 'a -> 'a node
(** New singleton set with the given payload. *)

val find : 'a t -> 'a node -> 'a node
(** Representative of the node's set.  Performs path compression only
    when the forest was configured with it. *)

val find_readonly : 'a t -> 'a node -> 'a node
(** Representative computed {e without any mutation}, regardless of
    configuration — safe under concurrent readers. *)

val union : 'a t -> into:'a node -> 'a node -> unit
(** [union t ~into other] merges the two sets.  The surviving
    representative (chosen by rank) receives [into]'s payload, so
    "union [other]'s set into [into]'s set" keeps [into]'s identity in
    the payload sense even if rank dictates the other root wins. *)

val same_set : 'a t -> 'a node -> 'a node -> bool

val payload : 'a t -> 'a node -> 'a
(** Payload of the node's {e set} (i.e. of its representative). *)

val set_payload : 'a t -> 'a node -> 'a -> unit
(** Replace the payload of the node's set. *)

val count_sets : 'a t -> int
(** Number of disjoint sets currently in the forest. *)

val count_nodes : 'a t -> int

val find_count : 'a t -> int
(** Total find operations performed (including those inside [union],
    [payload], ...). *)

val find_steps : 'a t -> int
(** Total parent-pointer hops across all finds — the quantity path
    compression shrinks.  [find_steps / find_count] is the mean find
    depth, the metric of the paper's Section 7 conjecture about using
    path compression in SP-hybrid's local tier. *)
