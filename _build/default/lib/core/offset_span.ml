open Spr_sptree

(* Pair lists are kept reversed (head = innermost fork) and shared with
   the enclosing context, so extending at a fork is O(1). *)
type pairs = (int * int) list

type info = { label : pairs; len : int; seq : int }

type t = {
  info : info option array;  (* per-leaf assignment *)
  (* Walk state: the current segment's label and intra-segment counter. *)
  mutable cur : pairs;
  mutable cur_len : int;
  mutable seq : int;
  (* Per-P-node saved pre-fork state, restored at the join. *)
  saved : (pairs * int) option array;
  mutable total_pairs : int;
  mutable threads : int;
}

let name = "offset-span"

let create tree =
  let n = Sp_tree.node_count tree in
  {
    info = Array.make n None;
    cur = [ (0, 1) ];
    cur_len = 1;
    seq = 0;
    saved = Array.make n None;
    total_pairs = 0;
    threads = 0;
  }

let info t (n : Sp_tree.node) =
  match t.info.(n.id) with
  | Some i -> i
  | None -> invalid_arg "Offset_span: thread not yet discovered"

let bump_head = function
  | (o, s) :: rest -> (o + s, s) :: rest
  | [] -> assert false

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind = Series; _ } -> ()
      | Internal { kind = Parallel; _ } ->
          t.saved.(x.id) <- Some (t.cur, t.seq);
          t.cur <- (1, 2) :: t.cur;
          t.cur_len <- t.cur_len + 1;
          t.seq <- 0
    end
  | Sp_tree.Mid x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind = Series; _ } -> ()
      | Internal { kind = Parallel; _ } ->
          let pre, _ = Option.get t.saved.(x.id) in
          t.cur <- (2, 2) :: pre;
          t.seq <- 0
    end
  | Sp_tree.Exit x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind = Series; _ } -> ()
      | Internal { kind = Parallel; _ } ->
          let pre, _ = Option.get t.saved.(x.id) in
          t.saved.(x.id) <- None;
          (* The join: offset of the pre-fork head pair advances by its
             span, starting a fresh segment serial to both branches. *)
          t.cur <- bump_head pre;
          t.cur_len <- t.cur_len - 1;
          t.seq <- 0
    end
  | Sp_tree.Thread u ->
      t.info.(u.id) <- Some { label = t.cur; len = t.cur_len; seq = t.seq };
      t.seq <- t.seq + 1;
      t.total_pairs <- t.total_pairs + t.cur_len;
      t.threads <- t.threads + 1

type order = Lt | Gt | Par

(* Root-first comparison; labels arrive reversed, so materialize. *)
let order_labels (a : info) (b : info) =
  let ra = Array.of_list (List.rev a.label) in
  let rb = Array.of_list (List.rev b.label) in
  let la = Array.length ra and lb = Array.length rb in
  let rec walk i =
    if i >= la && i >= lb then
      (* Same segment: program order. *)
      if a.seq < b.seq then Lt else Gt
    else if i >= la then Lt (* a's segment forked b's region later *)
    else if i >= lb then Gt
    else begin
      let oa, sa = ra.(i) and ob, sb = rb.(i) in
      if oa = ob && sa = sb then walk (i + 1)
      else if sa = sb && (oa - ob) mod sa = 0 then if oa < ob then Lt else Gt
      else Par
    end
  in
  walk 0

let precedes t x y =
  if x == y then false
  else begin
    match order_labels (info t x) (info t y) with Lt -> true | Gt | Par -> false
  end

let parallel t x y =
  if x == y then false
  else begin
    match order_labels (info t x) (info t y) with Par -> true | Lt | Gt -> false
  end

let requires_current_operand = false

let leaves_only = true

let avg_label_words t =
  if t.threads = 0 then 0.0 else float_of_int (2 * t.total_pairs) /. float_of_int t.threads

let label_length t n = (info t n).len
