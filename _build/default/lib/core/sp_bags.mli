(** SP-bags — the Feng–Leiserson (1997) algorithm, adapted to binary
    parse trees with bags of threads (paper, Section 5 footnote 7).

    Every executed thread lives in a disjoint-set; each set is flagged
    as an {e S-bag} or a {e P-bag}.  The invariant maintained by the
    left-to-right walk is the classical one: while thread [u] executes,
    an executed thread [e] satisfies [e ≺ u] iff [e]'s set is flagged
    S, and [e ∥ u] iff it is flagged P.

    Per internal node the walk keeps one S-bag and one P-bag; when a
    subtree finishes, its (already merged) set is unioned into the
    enclosing node's S-bag (series) or P-bag (parallel); when the node
    finishes, its two bags merge and flow upward.  With union by rank +
    path compression every operation costs Θ(α) amortized — the
    SP-bags row of Figure 3.

    Queries require the second operand to be the {e currently
    executing} thread (the weaker semantics that race detection — and
    the paper's SP-hybrid local tier — needs). *)

include Sp_maintainer.S

val create_no_compression : Spr_sptree.Sp_tree.t -> t
(** Variant with union-by-rank only (O(lg n) worst-case finds, no
    mutation on find) — the configuration Section 5 requires when finds
    may run concurrently.  Used for the ablation benchmark. *)
