(** SP-order parameterised by its order-maintenance backend.

    The algorithm of Section 2 only needs the OM abstract data type, so
    it is written once as a functor; {!Sp_order} instantiates it with
    the two-level O(1) structure (the paper's configuration), and the
    ablation benchmark instantiates it with the one-level structure and
    with the naive specification to measure what the substrate choice
    is worth. *)

open Spr_sptree

module Make (Om : Spr_om.Om_intf.S) = struct
  type t = {
    eng : Om.t;
    heb : Om.t;
    (* Node id -> its element in each order; None until discovered (or
       after release). *)
    eng_elt : Om.elt option array;
    heb_elt : Om.elt option array;
  }

  let name = "sp-order(" ^ Om.name ^ ")"

  let create tree =
    let n = Sp_tree.node_count tree in
    let eng = Om.create () in
    let heb = Om.create () in
    let eng_elt = Array.make n None in
    let heb_elt = Array.make n None in
    (* The root is the base element of both orders. *)
    let root = Sp_tree.root tree in
    eng_elt.(root.id) <- Some (Om.base eng);
    heb_elt.(root.id) <- Some (Om.base heb);
    { eng; heb; eng_elt; heb_elt }

  let elt arr (n : Sp_tree.node) =
    match arr.(n.id) with
    | Some e -> e
    | None -> invalid_arg "Sp_order: node not discovered (or released)"

  (* Lines 4-7 of Figure 5: on visiting internal node X, insert its
     children after X in both orderings. *)
  let on_event t ev =
    match ev with
    | Sp_tree.Enter x -> begin
        match x.shape with
        | Leaf -> assert false
        | Internal { kind; left; right } ->
            let ex = elt t.eng_elt x in
            (match Om.insert_many_after t.eng ex 2 with
            | [ el; er ] ->
                t.eng_elt.(left.id) <- Some el;
                t.eng_elt.(right.id) <- Some er
            | _ -> assert false);
            let hx = elt t.heb_elt x in
            (match (kind, Om.insert_many_after t.heb hx 2) with
            | Series, [ hl; hr ] ->
                t.heb_elt.(left.id) <- Some hl;
                t.heb_elt.(right.id) <- Some hr
            | Parallel, [ hr; hl ] ->
                t.heb_elt.(left.id) <- Some hl;
                t.heb_elt.(right.id) <- Some hr
            | _ -> assert false)
      end
    | Sp_tree.Mid _ | Sp_tree.Thread _ | Sp_tree.Exit _ -> ()

  (* Lines 10-12 of Figure 5. *)
  let precedes t x y =
    Om.precedes t.eng (elt t.eng_elt x) (elt t.eng_elt y)
    && Om.precedes t.heb (elt t.heb_elt x) (elt t.heb_elt y)

  (* Corollary 2: parallel iff the two orders disagree. *)
  let parallel t x y =
    let e = Om.precedes t.eng (elt t.eng_elt x) (elt t.eng_elt y) in
    let h = Om.precedes t.heb (elt t.heb_elt x) (elt t.heb_elt y) in
    e <> h

  let requires_current_operand = false

  let leaves_only = false

  (* Two order-maintenance elements of a few words each, independent of
     everything — the Θ(1) "space per node" row of Figure 3. *)
  let avg_label_words _ = 2.0

  let om_size t = Om.size t.eng

  (* Deletion support (the OM ADT of Section 2 supports it): a client
     that knows it will never again query a node — e.g. a race detector
     whose shadow memory no longer references any thread of a completed
     subtree — can release it and keep the structures proportional to
     the *live* frontier rather than the whole history. *)
  let release t (n : Sp_tree.node) =
    match (t.eng_elt.(n.id), t.heb_elt.(n.id)) with
    | Some e, Some h ->
        Om.delete t.eng e;
        Om.delete t.heb h;
        t.eng_elt.(n.id) <- None;
        t.heb_elt.(n.id) <- None
    | _ -> invalid_arg "Sp_order.release: node not discovered (or already released)"
end
