open Spr_sptree

(* A label is the root path in reversed order (head = deepest step).
   Because children's labels are consed onto their parent's, the part
   of two labels above the divergence point is physically shared, which
   both makes construction O(1) and lets comparison detect the
   divergence with pointer equality. *)
type label = int list

type info = { e_label : label; h_label : label; depth : int }

type t = { info : info option array; mutable total_len : int; mutable threads : int }

let name = "english-hebrew"

let create tree =
  let n = Sp_tree.node_count tree in
  let t = { info = Array.make n None; total_len = 0; threads = 0 } in
  let root = Sp_tree.root tree in
  t.info.(root.id) <- Some { e_label = []; h_label = []; depth = 0 };
  t

let info t (n : Sp_tree.node) =
  match t.info.(n.id) with
  | Some i -> i
  | None -> invalid_arg "English_hebrew: node not yet discovered"

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind; left; right } ->
          let parent = info t x in
          let extend child e_dir =
            (* Hebrew flips direction at P-nodes. *)
            let h_dir = match kind with Series -> e_dir | Parallel -> 1 - e_dir in
            t.info.((child : Sp_tree.node).id) <-
              Some
                {
                  e_label = e_dir :: parent.e_label;
                  h_label = h_dir :: parent.h_label;
                  depth = parent.depth + 1;
                }
          in
          extend left 0;
          extend right 1
    end
  | Sp_tree.Thread u ->
      let i = info t u in
      t.total_len <- t.total_len + i.depth;
      t.threads <- t.threads + 1
  | Sp_tree.Mid _ | Sp_tree.Exit _ -> ()

(* Compare two equal-depth reversed labels: walk down both in lockstep
   until their tails are physically shared (that shared tail is the
   path above the lca); the heads at that point are the two divergence
   directions. *)
let rec divergence a b =
  match (a, b) with
  | xa :: ta, xb :: tb -> if ta == tb then compare xa xb else divergence ta tb
  | _ -> invalid_arg "English_hebrew: comparing a node with its ancestor"

let rec strip l k = if k = 0 then l else strip (List.tl l) (k - 1)

(* -1 / 0 / +1 order of x and y in the E (resp. H) total order. *)
let cmp_in sel ix iy =
  if ix == iy then 0
  else begin
    let la, lb = (sel ix, sel iy) in
    if ix.depth = iy.depth && la == lb then 0
    else begin
      let la = strip la (max 0 (ix.depth - iy.depth)) in
      let lb = strip lb (max 0 (iy.depth - ix.depth)) in
      if la == lb then invalid_arg "English_hebrew: ancestor query on non-leaf"
      else divergence la lb
    end
  end

let relate t x y =
  let ix = info t x and iy = info t y in
  (cmp_in (fun i -> i.e_label) ix iy, cmp_in (fun i -> i.h_label) ix iy)

let precedes t x y =
  if x == y then false
  else begin
    let e, h = relate t x y in
    e < 0 && h < 0
  end

let parallel t x y =
  if x == y then false
  else begin
    let e, h = relate t x y in
    (e < 0) <> (h < 0)
  end

let requires_current_operand = false

let leaves_only = true

let avg_label_words t =
  if t.threads = 0 then 0.0 else float_of_int (2 * t.total_len) /. float_of_int t.threads

let label_length t n = (info t n).depth
