(** The common interface of all serial SP-maintenance algorithms.

    A maintainer is driven by the event stream of a left-to-right parse
    tree walk ({!Spr_sptree.Sp_tree.iter_events}) — the on-the-fly
    unfolding of Section 2 — and answers SP queries about nodes seen so
    far.  {!Driver} runs a tree through a maintainer and invokes a
    client callback while each thread "executes", which is when a race
    detector would issue its queries. *)

module type S = sig
  type t

  val name : string
  (** Short name used in Figure-3 style tables. *)

  val create : Spr_sptree.Sp_tree.t -> t
  (** A maintainer for (an unfolding of) the given tree.  The tree
      value is used for capacity and node-id indexing only; no
      algorithm peeks at structure before its events arrive. *)

  val on_event : t -> Spr_sptree.Sp_tree.event -> unit
  (** Feed the next step of the unfolding. *)

  val precedes : t -> Spr_sptree.Sp_tree.node -> Spr_sptree.Sp_tree.node -> bool
  (** [precedes t x y]: has it been established that x ≺ y?  Both nodes
      must already have been discovered by the walk. *)

  val parallel : t -> Spr_sptree.Sp_tree.node -> Spr_sptree.Sp_tree.node -> bool
  (** [parallel t x y]: x ∥ y. *)

  val requires_current_operand : bool
  (** If true, queries are only valid when the {e second} operand is the
      currently executing thread (SP-bags semantics, also all that
      SP-hybrid — and a race detector — needs). *)

  val leaves_only : bool
  (** If true, queries are only valid between threads (leaves). *)

  val avg_label_words : t -> float
  (** Average per-thread label footprint in machine words — the
      "Space per node" column of Figure 3.  For centralized structures
      this is the per-node constant; for labeling schemes it is the
      mean logical label length. *)
end

(** A maintainer packaged with its state, so heterogeneous algorithm
    lists can be iterated uniformly (Figure-3 table, cross-validation
    tests). *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

let name (Instance ((module M), _)) = M.name

let on_event (Instance ((module M), st)) ev = M.on_event st ev

let precedes (Instance ((module M), st)) x y = M.precedes st x y

let parallel (Instance ((module M), st)) x y = M.parallel st x y

let requires_current_operand (Instance ((module M), _)) = M.requires_current_operand

let leaves_only (Instance ((module M), _)) = M.leaves_only

let avg_label_words (Instance ((module M), st)) = M.avg_label_words st
