open Spr_sptree

let run tree inst = Sp_tree.iter_events tree (Sp_maintainer.on_event inst)

let run_with_queries tree inst ~on_thread =
  Sp_tree.iter_events tree (fun ev ->
      Sp_maintainer.on_event inst ev;
      match ev with
      | Sp_tree.Thread u -> on_thread inst ~current:u
      | Sp_tree.Enter _ | Sp_tree.Mid _ | Sp_tree.Exit _ -> ())

let feed_prefix tree inst ~events =
  let fed = ref 0 in
  Sp_tree.iter_events tree (fun ev ->
      if !fed < events then begin
        Sp_maintainer.on_event inst ev;
        incr fed
      end);
  !fed
