(** SP-order — the paper's serial algorithm (Section 2, Figure 5).

    Two order-maintenance structures hold an {e English} and a
    {e Hebrew} ordering of the parse-tree nodes discovered so far.  On
    entering an internal node X, its children are inserted right after
    X in both orders: left-then-right in English; for the Hebrew order
    left-then-right if X is an S-node, right-then-left if it is a
    P-node (Figures 6, 7).  SP-PRECEDES(X, Y) is then simply
    OM-PRECEDES in both orders (Lemma 1 / Theorem 4).

    With the two-level {!Spr_om.Om} structure every parse-tree node
    costs O(1) amortized and every query O(1) worst case, which is
    Theorem 5 and the SP-order row of Figure 3.

    Unlike the other serial algorithms, queries are valid between
    {e any} two discovered nodes — internal nodes included — and do not
    require one operand to be currently executing. *)

include Sp_maintainer.S

val om_size : t -> int
(** Elements currently in each order-maintenance structure
    (introspection: parse-tree nodes discovered so far and not
    released). *)

val release : t -> Spr_sptree.Sp_tree.node -> unit
(** Delete a node from both orderings (the OM ADT supports deletion).
    For clients — e.g. a race detector whose shadow memory no longer
    mentions any thread of a completed subtree — that want the
    structure to track the live frontier instead of the full history.
    Querying a released node afterwards is an error. *)
