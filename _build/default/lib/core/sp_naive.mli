(** Trivial maintainer wrapping the LCA reference relation.

    Ignores all events and answers queries straight from
    {!Spr_sptree.Sp_reference} — an a posteriori oracle, O(height) per
    query.  It anchors the cross-validation tests and appears in the
    Figure-3 bench as the "no data structure" baseline. *)

include Sp_maintainer.S
