(** Offset-span labeling — the Mellor-Crummey (1991) baseline.

    Every thread gets a static label: a list of (offset, span) pairs
    plus a sequence number within its {e segment} (the run of threads
    between two consecutive fork/join events, which all share one
    pair-list).  During the left-to-right walk:

    - entering a P-node appends the pair [(1, 2)] for the left branch
      and [(2, 2)] for the right branch;
    - leaving a P-node (the join) replaces the head pair [(o, s)] of
      the pre-fork label by [(o + s, s)];
    - S-nodes leave the label unchanged (pure program order, handled by
      the per-segment sequence number).

    Two labels are ordered iff one is a prefix of the other (the prefix
    side is earlier), or at their first differing pair the spans agree
    and the offsets are congruent mod the span (then smaller offset is
    earlier); otherwise the threads are parallel.

    Label length — and hence query time — is proportional to the
    nesting depth of parallelism [d]: the offset-span row of Figure 3.
    Queries are valid between any two discovered leaves. *)

include Sp_maintainer.S

val label_length : t -> Spr_sptree.Sp_tree.node -> int
(** Number of (offset, span) pairs in the thread's label. *)
