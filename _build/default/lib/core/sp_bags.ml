open Spr_sptree
module Uf = Spr_unionfind.Union_find

(* The payload at each set representative tells which kind of bag the
   set currently is. *)
type bag_kind = S_bag | P_bag

type frame = { mutable sbag : bag_kind Uf.node option; mutable pbag : bag_kind Uf.node option }

type t = {
  uf : bag_kind Uf.t;
  set_of : bag_kind Uf.node option array;  (* leaf id -> its set *)
  frames : frame option array;  (* internal node id -> open frame *)
  results : bag_kind Uf.node Spr_util.Vec.t;  (* completed-subtree stack *)
}

let name = "sp-bags"

let create_with config tree =
  let n = Sp_tree.node_count tree in
  {
    uf = Uf.create config;
    set_of = Array.make n None;
    frames = Array.make n None;
    results = Spr_util.Vec.create ();
  }

let create tree = create_with { Uf.path_compression = true } tree

let create_no_compression tree = create_with { Uf.path_compression = false } tree

let frame t (x : Sp_tree.node) =
  match t.frames.(x.id) with
  | Some f -> f
  | None -> invalid_arg "Sp_bags: node has no open frame"

(* Union a completed subtree's set into a bag slot, flagging the merged
   set with the bag's kind. *)
let into_bag t slot kind set =
  match slot with
  | None ->
      Uf.set_payload t.uf set kind;
      Some set
  | Some bag ->
      Uf.union t.uf ~into:bag set;
      Some bag

let pop_result t =
  match Spr_util.Vec.pop t.results with
  | Some r -> r
  | None -> invalid_arg "Sp_bags: event stream out of order"

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> t.frames.(x.id) <- Some { sbag = None; pbag = None }
  | Sp_tree.Thread u ->
      let set = Uf.make_set t.uf S_bag in
      t.set_of.(u.id) <- Some set;
      Spr_util.Vec.push t.results set
  | Sp_tree.Mid x ->
      (* The left subtree just completed: serial before the right
         subtree under an S-node, parallel to it under a P-node. *)
      let f = frame t x in
      let left_set = pop_result t in
      (match Sp_tree.kind x with
      | Series -> f.sbag <- into_bag t f.sbag S_bag left_set
      | Parallel -> f.pbag <- into_bag t f.pbag P_bag left_set)
  | Sp_tree.Exit x ->
      (* Both subtrees done: merge this node's bags into one set that
         represents the whole subtree for the enclosing node. *)
      let f = frame t x in
      let right_set = pop_result t in
      f.sbag <- into_bag t f.sbag S_bag right_set;
      let combined =
        match (f.sbag, f.pbag) with
        | Some s, Some p ->
            Uf.union t.uf ~into:s p;
            s
        | Some s, None -> s
        | None, _ -> assert false (* sbag just received right_set *)
      in
      t.frames.(x.id) <- None;
      Spr_util.Vec.push t.results combined

let set_of t (n : Sp_tree.node) =
  match t.set_of.(n.id) with
  | Some s -> s
  | None -> invalid_arg "Sp_bags: thread not yet executed"

(* While [cur] executes, [e]'s bag kind decides the relation. *)
let precedes t e cur = (not (e == cur)) && Uf.payload t.uf (set_of t e) = S_bag

let parallel t e cur = (not (e == cur)) && Uf.payload t.uf (set_of t e) = P_bag

let requires_current_operand = true

let leaves_only = true

(* One disjoint-set node per thread: constant space. *)
let avg_label_words _ = 1.0
