open Spr_sptree

type t = {
  heb : Spr_om.Om.t;
  heb_elt : Spr_om.Om.elt option array;
  eng_index : int array;  (* leaf id -> execution index; -1 if not yet run *)
  mutable next_eng : int;
}

let name = "sp-order-implicit-english"

let create tree =
  let n = Sp_tree.node_count tree in
  let heb = Spr_om.Om.create () in
  let heb_elt = Array.make n None in
  let root = Sp_tree.root tree in
  heb_elt.(root.id) <- Some (Spr_om.Om.base heb);
  { heb; heb_elt; eng_index = Array.make n (-1); next_eng = 0 }

let elt t (n : Sp_tree.node) =
  match t.heb_elt.(n.id) with
  | Some e -> e
  | None -> invalid_arg "Sp_order_implicit: node not yet discovered"

let on_event t ev =
  match ev with
  | Sp_tree.Enter x -> begin
      match x.shape with
      | Leaf -> assert false
      | Internal { kind; left; right } ->
          let hx = elt t x in
          (match (kind, Spr_om.Om.insert_many_after t.heb hx 2) with
          | Series, [ hl; hr ] ->
              t.heb_elt.(left.id) <- Some hl;
              t.heb_elt.(right.id) <- Some hr
          | Parallel, [ hr; hl ] ->
              t.heb_elt.(left.id) <- Some hl;
              t.heb_elt.(right.id) <- Some hr
          | _ -> assert false)
    end
  | Sp_tree.Thread u ->
      t.eng_index.(u.id) <- t.next_eng;
      t.next_eng <- t.next_eng + 1
  | Sp_tree.Mid _ | Sp_tree.Exit _ -> ()

let eng t (n : Sp_tree.node) =
  let i = t.eng_index.(n.id) in
  if i < 0 then invalid_arg "Sp_order_implicit: thread not yet executed";
  i

let precedes t x y = eng t x < eng t y && Spr_om.Om.precedes t.heb (elt t x) (elt t y)

let parallel t x y = eng t x < eng t y <> Spr_om.Om.precedes t.heb (elt t x) (elt t y)

let requires_current_operand = false

let leaves_only = true

(* One integer plus one Hebrew OM element per thread. *)
let avg_label_words _ = 1.5
