(** SP-order with the English order maintained implicitly — the
    optimization of the paper's footnote 2.

    During a serial left-to-right unfolding, threads {e execute} in
    English order, so for thread-to-thread queries the English index
    can simply be the execution counter; only the Hebrew order needs a
    real order-maintenance structure.  This halves the OM work per
    parse-tree node at the price of answering queries about threads
    (leaves) only.

    Validated against the reference like every other algorithm and
    compared against the two-OM SP-order in the ablation benchmark. *)

include Sp_maintainer.S
