(** Static English-Hebrew labeling — the Nudler–Rudolph baseline.

    Each thread receives, once and for all, two static labels: its
    root-path in {e English} coordinates (left = 0, right = 1 at every
    node) and in {e Hebrew} coordinates (directions flipped at
    P-nodes).  Lexicographic label order equals the English (resp.
    Hebrew) total order, so Lemma 1 applies: x ≺ y iff x's labels are
    smaller in both.

    Labels are persistent lists consed from the parent's label: O(1)
    work per node (the "Θ(1) thread creation" entry of Figure 3), and
    physically shared — but a {e query} must walk to the divergence
    point, so both logical label size and query time grow with the
    nesting of the tree, reproducing the Θ(f)-flavoured costs of the
    English-Hebrew row of Figure 3 (on the fork-chain workload the
    divergence depth is proportional to the number of forks).

    Queries are valid between any two discovered {e leaves}. *)

include Sp_maintainer.S

val label_length : t -> Spr_sptree.Sp_tree.node -> int
(** Logical length (components) of the thread's labels. *)
