include Sp_order_generic.Make (Spr_om.Om)

let name = "sp-order"
