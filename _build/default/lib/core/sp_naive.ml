open Spr_sptree

type t = unit

let name = "lca-reference"

let create _tree = ()

let on_event () _ = ()

let precedes () x y = Sp_reference.precedes x y

let parallel () x y = Sp_reference.parallel x y

let requires_current_operand = false

let leaves_only = false

(* Parent pointer and depth per node. *)
let avg_label_words () = 2.0
