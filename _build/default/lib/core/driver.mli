(** Drive a maintainer through the on-the-fly unfolding of a tree.

    [run] replays the left-to-right walk (the serial execution order of
    a Cilk-like program, Section 2) into the maintainer.
    [run_with_queries] additionally invokes a callback at each thread's
    execution — the moment a race detector would issue SP queries. *)

val run : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance -> unit

val run_with_queries :
  Spr_sptree.Sp_tree.t ->
  Sp_maintainer.instance ->
  on_thread:(Sp_maintainer.instance -> current:Spr_sptree.Sp_tree.node -> unit) ->
  unit

val feed_prefix : Spr_sptree.Sp_tree.t -> Sp_maintainer.instance -> events:int -> int
(** Feed only the first [events] events of the walk (for tests of
    partial unfoldings); returns the number of events actually fed. *)
