lib/core/algorithms.ml: English_hebrew List Offset_span Sp_bags Sp_maintainer Sp_naive Sp_order Sp_order_implicit
