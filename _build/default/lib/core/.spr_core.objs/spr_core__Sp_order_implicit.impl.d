lib/core/sp_order_implicit.ml: Array Sp_tree Spr_om Spr_sptree
