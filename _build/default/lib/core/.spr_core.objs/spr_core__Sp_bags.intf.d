lib/core/sp_bags.mli: Sp_maintainer Spr_sptree
