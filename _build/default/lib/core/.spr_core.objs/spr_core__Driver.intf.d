lib/core/driver.mli: Sp_maintainer Spr_sptree
