lib/core/offset_span.ml: Array List Option Sp_tree Spr_sptree
