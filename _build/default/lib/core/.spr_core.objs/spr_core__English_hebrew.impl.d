lib/core/english_hebrew.ml: Array List Sp_tree Spr_sptree
