lib/core/offset_span.mli: Sp_maintainer Spr_sptree
