lib/core/sp_maintainer.ml: Spr_sptree
