lib/core/sp_bags.ml: Array Sp_tree Spr_sptree Spr_unionfind Spr_util
