lib/core/english_hebrew.mli: Sp_maintainer Spr_sptree
