lib/core/sp_naive.mli: Sp_maintainer
