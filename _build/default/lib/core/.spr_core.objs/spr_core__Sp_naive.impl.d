lib/core/sp_naive.ml: Sp_reference Spr_sptree
