lib/core/sp_order_implicit.mli: Sp_maintainer
