lib/core/sp_order_generic.ml: Array Sp_tree Spr_om Spr_sptree
