lib/core/driver.ml: Sp_maintainer Sp_tree Spr_sptree
