lib/core/sp_order.mli: Sp_maintainer Spr_sptree
