lib/core/algorithms.mli: Sp_maintainer Spr_sptree
