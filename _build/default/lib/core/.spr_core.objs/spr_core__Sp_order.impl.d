lib/core/sp_order.ml: Sp_order_generic Spr_om
