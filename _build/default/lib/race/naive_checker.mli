(** Executable specification of determinacy-race existence.

    Checks all pairs of accesses to each location against the LCA
    reference relation on the program's parse tree: a determinacy race
    exists on location [l] iff two logically parallel threads access
    [l] and at least one writes.  The lock-aware variant additionally
    requires the two accesses' locksets to be disjoint (the All-Sets
    condition of Cheng et al., the extension the paper's abstract
    mentions).

    O(accesses²) per location — for tests and small examples only. *)

val racy_locs : Spr_prog.Prog_tree.t -> int list
(** Sorted locations with at least one determinacy race. *)

val racy_locs_locked : Spr_prog.Prog_tree.t -> int list
(** Sorted locations with at least one {e apparent data race} under the
    lockset discipline (parallel, conflicting, disjoint locksets). *)

val race_free : Spr_prog.Prog_tree.t -> bool
