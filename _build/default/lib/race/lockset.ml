open Spr_prog

type race = {
  loc : int;
  earlier : int;
  later : int;
  earlier_write : bool;
  later_write : bool;
}

type entry = { tid : int; write : bool; lockset : int list (* sorted *) }

type t = {
  history : (int, entry list ref) Hashtbl.t;
  races : race Spr_util.Vec.t;
  precedes : executed:int -> current:int -> bool;
  mutable max_history : int;
}

let create ~precedes =
  { history = Hashtbl.create 64; races = Spr_util.Vec.create (); precedes; max_history = 0 }

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

let subset a b = List.for_all (fun x -> List.mem x b) a

let access t ~current (a : Fj_program.access) =
  let lockset = List.sort_uniq compare a.locks in
  let slot =
    match Hashtbl.find_opt t.history a.loc with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.history a.loc l;
        l
  in
  let concurrent e = e.tid <> current && not (t.precedes ~executed:e.tid ~current) in
  List.iter
    (fun e ->
      if (e.write || a.write) && disjoint e.lockset lockset && concurrent e then
        Spr_util.Vec.push t.races
          {
            loc = a.loc;
            earlier = e.tid;
            later = current;
            earlier_write = e.write;
            later_write = a.write;
          })
    !slot;
  (* Prune records subsumed by the new one (see interface comment). *)
  let keep e =
    let serial_before = e.tid = current || t.precedes ~executed:e.tid ~current in
    not (serial_before && subset lockset e.lockset && ((not e.write) || a.write))
  in
  slot := { tid = current; write = a.write; lockset } :: List.filter keep !slot;
  let len = List.length !slot in
  if len > t.max_history then t.max_history <- len

let run_thread t (u : Fj_program.thread) =
  Array.iter (fun a -> access t ~current:u.Fj_program.tid a) u.Fj_program.accesses

let races t = Spr_util.Vec.to_list t.races

let racy_locs t = List.sort_uniq compare (List.map (fun r -> r.loc) (races t))

let max_history t = t.max_history
