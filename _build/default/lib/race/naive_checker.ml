open Spr_prog

(* Gather, per location, the list of (tid, write, locks) accesses. *)
let by_location pt =
  let program = Prog_tree.program pt in
  let table : (int, (int * bool * int list) list ref) Hashtbl.t = Hashtbl.create 64 in
  Fj_program.iter_threads program (fun u ->
      Array.iter
        (fun (a : Fj_program.access) ->
          let slot =
            match Hashtbl.find_opt table a.loc with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add table a.loc l;
                l
          in
          slot := (u.Fj_program.tid, a.write, List.sort_uniq compare a.locks) :: !slot)
        u.Fj_program.accesses);
  table

let disjoint a b = not (List.exists (fun x -> List.mem x b) a)

let racy_with pt ~use_locks =
  let table = by_location pt in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  let locs = ref [] in
  Hashtbl.iter
    (fun loc accesses ->
      let arr = Array.of_list !accesses in
      let racy = ref false in
      let n = Array.length arr in
      (try
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             let ti, wi, li = arr.(i) and tj, wj, lj = arr.(j) in
             if
               ti <> tj && (wi || wj)
               && ((not use_locks) || disjoint li lj)
               && Spr_sptree.Sp_reference.parallel (leaf ti) (leaf tj)
             then begin
               racy := true;
               raise Exit
             end
           done
         done
       with Exit -> ());
      if !racy then locs := loc :: !locs)
    table;
  List.sort compare !locs

let racy_locs pt = racy_with pt ~use_locks:false

let racy_locs_locked pt = racy_with pt ~use_locks:true

let race_free pt = racy_locs pt = []
