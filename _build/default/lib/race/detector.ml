open Spr_prog

type race = {
  loc : int;
  earlier : int;
  later : int;
  earlier_write : bool;
  later_write : bool;
}

type t = {
  writer : int option array;
  reader : int option array;
  races : race Spr_util.Vec.t;
  precedes : executed:int -> current:int -> bool;
  mutable queries : int;
  (* Shadow reference counts, for the release protocol. *)
  refs : (int, int) Hashtbl.t;
  on_unreferenced : (int -> unit) option;
}

let create ?on_unreferenced ~locs ~precedes () =
  {
    writer = Array.make (max 1 locs) None;
    reader = Array.make (max 1 locs) None;
    races = Spr_util.Vec.create ();
    precedes;
    queries = 0;
    refs = Hashtbl.create 64;
    on_unreferenced;
  }

(* Replace the occupant of a shadow slot, maintaining reference counts
   and notifying when a thread drops out of shadow memory entirely. *)
let assign t slot loc tid =
  match t.on_unreferenced with
  | None -> slot.(loc) <- Some tid
  | Some notify ->
      let old = slot.(loc) in
      if old <> Some tid then begin
        Hashtbl.replace t.refs tid (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs tid));
        slot.(loc) <- Some tid;
        match old with
        | None -> ()
        | Some o ->
            let c = Hashtbl.find t.refs o - 1 in
            if c = 0 then begin
              Hashtbl.remove t.refs o;
              notify o
            end
            else Hashtbl.replace t.refs o c
      end

let report t loc earlier later earlier_write later_write =
  Spr_util.Vec.push t.races { loc; earlier; later; earlier_write; later_write }

(* "recorded thread e is concurrent with u": e was seen before, so if
   it does not precede u it runs logically in parallel with u. *)
let concurrent t e ~current =
  t.queries <- t.queries + 1;
  e <> current && not (t.precedes ~executed:e ~current)

let access t ~current (a : Fj_program.access) =
  let loc = a.loc in
  if a.write then begin
    (match t.writer.(loc) with
    | Some w when concurrent t w ~current -> report t loc w current true true
    | _ -> ());
    (match t.reader.(loc) with
    | Some r when concurrent t r ~current -> report t loc r current false true
    | _ -> ());
    assign t t.writer loc current
  end
  else begin
    (match t.writer.(loc) with
    | Some w when concurrent t w ~current -> report t loc w current true false
    | _ -> ());
    match t.reader.(loc) with
    | None -> assign t t.reader loc current
    | Some r ->
        t.queries <- t.queries + 1;
        if r = current || t.precedes ~executed:r ~current then assign t t.reader loc current
  end

let run_thread t (u : Fj_program.thread) =
  Array.iter (fun a -> access t ~current:u.Fj_program.tid a) u.Fj_program.accesses

let races t = Spr_util.Vec.to_list t.races

let racy_locs t =
  List.sort_uniq compare (List.map (fun r -> r.loc) (races t))

let query_count t = t.queries

let max_loc program =
  let m = ref (-1) in
  Fj_program.iter_threads program (fun u ->
      Array.iter (fun (a : Fj_program.access) -> if a.loc > !m then m := a.loc) u.Fj_program.accesses);
  !m
