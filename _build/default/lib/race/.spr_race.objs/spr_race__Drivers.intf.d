lib/race/drivers.mli: Detector Lockset Spr_core Spr_hybrid Spr_prog Spr_sched Spr_sptree
