lib/race/naive_checker.ml: Array Fj_program Hashtbl List Prog_tree Spr_prog Spr_sptree
