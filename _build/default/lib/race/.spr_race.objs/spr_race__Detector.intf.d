lib/race/detector.mli: Spr_prog
