lib/race/drivers.ml: Detector Fj_program Lockset Mutex Prog_tree Spr_core Spr_hybrid Spr_prog Spr_sched Spr_sptree
