lib/race/lockset.mli: Spr_prog
