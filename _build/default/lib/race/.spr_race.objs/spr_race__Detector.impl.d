lib/race/detector.ml: Array Fj_program Hashtbl List Option Spr_prog Spr_util
