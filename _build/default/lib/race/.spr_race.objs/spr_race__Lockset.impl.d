lib/race/lockset.ml: Array Fj_program Hashtbl List Spr_prog Spr_util
