lib/race/naive_checker.mli: Spr_prog
