(** Lock-aware (All-Sets-style) race detection.

    The paper's abstract notes that the improved SP-maintenance bounds
    carry over to "more sophisticated data-race detectors, for example,
    those that use locks" — the Nondeterminator's ALL-SETS algorithm
    (Cheng, Feng, Leiserson, Randall, Stark 1998).  This module
    implements that detector on top of any SP oracle: per location it
    keeps a history of (thread, lockset, kind) access records; an
    access races with a recorded one iff they conflict, their locksets
    are disjoint, and the threads are logically parallel.

    Redundant records are pruned with the standard argument: once
    thread [e] precedes the current thread [u], any {e future} thread
    is parallel to [e] iff it is parallel to [u]; so a record by [e]
    whose lockset is a superset of [u]'s (and which is not a write
    where [u]'s is a read) can never catch a race that [u]'s new record
    would miss. *)

type race = {
  loc : int;
  earlier : int;
  later : int;
  earlier_write : bool;
  later_write : bool;
}

type t

val create : precedes:(executed:int -> current:int -> bool) -> t

val access : t -> current:int -> Spr_prog.Fj_program.access -> unit

val run_thread : t -> Spr_prog.Fj_program.thread -> unit

val races : t -> race list

val racy_locs : t -> int list

val max_history : t -> int
(** Largest per-location record list observed (pruning effectiveness). *)
