lib/runtime/runtime.ml: Array Atomic Domain Fj_program Fun Mutex Sim Spr_prog Spr_sched Spr_util Unix
