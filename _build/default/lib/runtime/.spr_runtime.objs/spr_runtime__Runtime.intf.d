lib/runtime/runtime.mli: Spr_prog Spr_sched
