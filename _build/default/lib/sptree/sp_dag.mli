(** Computation-dag view of an SP parse tree (paper, Figure 1).

    Threads become edges; forks and joins become vertices.  The dag is
    built by standard series-parallel edge composition: a leaf is one
    edge between its subtree's entry and exit; an S-node chains its
    children through a fresh middle vertex; a P-node runs both children
    between the same entry (fork) and exit (join).  Used by the
    examples to print Figure 1 and by tests as a sanity-check of
    series-parallel structure. *)

type vertex = int

type edge = {
  src : vertex;
  dst : vertex;
  thread : Sp_tree.node;  (** the leaf this edge represents *)
  label : int;  (** English index of the thread, for printing u{_i} *)
}

type t

val of_tree : Sp_tree.t -> t

val source : t -> vertex
(** The unique vertex with no incoming edge. *)

val sink : t -> vertex

val vertex_count : t -> int

val edges : t -> edge array
(** All edges, in English (serial-execution) order. *)

val successors : t -> vertex -> edge list
(** Outgoing edges of a vertex, in English order. *)

val topological : t -> vertex list
(** Vertices in a topological order of the dag. *)

val pp : Format.formatter -> t -> unit
(** Adjacency listing: one line per vertex with its outgoing thread
    edges, e.g. ["v0 --u0--> v1"]. *)
