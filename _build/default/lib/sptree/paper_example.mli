(** The worked example of the paper's Figures 1, 2 and 4.

    The paper does not print the tree as a term, but it pins it down:
    threads are u0…u8 in English order; Figure 4 gives
    H[u1] = 5, H[u4] = 8, H[u6] = 3 (0-based); lca(u1, u4) is the
    S-node S1 with u1 on its left; lca(u1, u6) is the P-node P1.  The
    natural tree satisfying all of these — and matching Figure 1's dag
    (u0 feeds a fork whose two symmetric branches each run a thread,
    fork two parallel threads, join, and run a final thread) — is

    {v S(u0, P1( S1( S(u1, P2(u2, u3)), u4 ),
             S2( S(u5, P3(u6, u7)), u8 ) )) v}

    This module builds exactly that tree; the test suite re-checks
    every fact quoted above plus the Lemma 1 examples (u1 ≺ u4,
    u1 ∥ u6). *)

val tree : unit -> Sp_tree.t
(** A fresh copy of the Figure 2 parse tree. *)

val thread : Sp_tree.t -> int -> Sp_tree.node
(** [thread t i] is u{_i} (by English index, 0..8). *)

val s1 : Sp_tree.t -> Sp_tree.node
(** The S-node the paper calls S1 (= lca(u1, u4)). *)

val p1 : Sp_tree.t -> Sp_tree.node
(** The P-node the paper calls P1 (= lca(u1, u6)). *)

val expected_english : int array
(** E[u0..u8] = [|0;1;2;3;4;5;6;7;8|]. *)

val expected_hebrew : int array
(** H[u0..u8] = [|0;5;7;6;8;1;3;2;4|] — includes the paper's quoted
    H[u1]=5, H[u4]=8, H[u6]=3. *)
