type vertex = int

type edge = { src : vertex; dst : vertex; thread : Sp_tree.node; label : int }

type t = {
  nvertices : int;
  edges_arr : edge array;
  succ : edge list array;  (* outgoing edges per vertex, English order *)
  source : vertex;
  sink : vertex;
}

let of_tree tree =
  let eng = Sp_tree.english_order tree in
  let next_vertex = ref 0 in
  let fresh () =
    let v = !next_vertex in
    incr next_vertex;
    v
  in
  let acc = Spr_util.Vec.create () in
  let rec go (n : Sp_tree.node) entry exit_ =
    match n.shape with
    | Leaf -> Spr_util.Vec.push acc { src = entry; dst = exit_; thread = n; label = eng.(n.id) }
    | Internal { kind = Series; left; right } ->
        let mid = fresh () in
        go left entry mid;
        go right mid exit_
    | Internal { kind = Parallel; left; right } ->
        go left entry exit_;
        go right entry exit_
  in
  let source = fresh () in
  let sink = fresh () in
  go (Sp_tree.root tree) source sink;
  let edges_arr = Spr_util.Vec.to_array acc in
  Array.sort (fun a b -> compare a.label b.label) edges_arr;
  let succ = Array.make !next_vertex [] in
  Array.iter (fun e -> succ.(e.src) <- e :: succ.(e.src)) edges_arr;
  Array.iteri (fun v l -> succ.(v) <- List.rev l) succ;
  { nvertices = !next_vertex; edges_arr; succ; source; sink }

let source t = t.source

let sink t = t.sink

let vertex_count t = t.nvertices

let edges t = t.edges_arr

let successors t v = t.succ.(v)

let topological t =
  let indegree = Array.make t.nvertices 0 in
  Array.iter (fun e -> indegree.(e.dst) <- indegree.(e.dst) + 1) t.edges_arr;
  let ready = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v ready) indegree;
  let order = ref [] in
  while not (Queue.is_empty ready) do
    let v = Queue.pop ready in
    order := v :: !order;
    List.iter
      (fun e ->
        indegree.(e.dst) <- indegree.(e.dst) - 1;
        if indegree.(e.dst) = 0 then Queue.add e.dst ready)
      t.succ.(v)
  done;
  List.rev !order

let pp ppf t =
  List.iter
    (fun v ->
      match t.succ.(v) with
      | [] -> if v = t.sink then Format.fprintf ppf "v%d (sink)@." v
      | out ->
          Format.fprintf ppf "v%d" v;
          List.iter (fun e -> Format.fprintf ppf "  --u%d--> v%d" e.label e.dst) out;
          Format.fprintf ppf "@.")
    (topological t)
