type kind = Series | Parallel

type node = {
  id : int;
  mutable parent : node option;
  mutable depth : int;
  shape : shape;
}

and shape = Leaf | Internal of { kind : kind; left : node; right : node }

type t = { root : node; nodes : node array; leaves_arr : node array }

module Builder = struct
  type b = { mutable next_id : int; built : node Spr_util.Vec.t }

  let create () = { next_id = 0; built = Spr_util.Vec.create () }

  let alloc b shape =
    let n = { id = b.next_id; parent = None; depth = 0; shape } in
    b.next_id <- b.next_id + 1;
    Spr_util.Vec.push b.built n;
    n

  let leaf b = alloc b Leaf

  let series b left right = alloc b (Internal { kind = Series; left; right })

  let parallel b left right = alloc b (Internal { kind = Parallel; left; right })

  let finish b root =
    let nodes = Array.make b.next_id root in
    let leaves = Spr_util.Vec.create () in
    let seen = Array.make b.next_id false in
    (* Explicit stack: trees can be deep (degenerate chains in the
       adversarial workloads), so avoid OCaml stack recursion here. *)
    let stack = Spr_util.Vec.create () in
    Spr_util.Vec.push stack root;
    root.parent <- None;
    root.depth <- 0;
    while not (Spr_util.Vec.is_empty stack) do
      let n = Option.get (Spr_util.Vec.pop stack) in
      if seen.(n.id) then invalid_arg "Sp_tree.Builder.finish: node used twice";
      seen.(n.id) <- true;
      nodes.(n.id) <- n;
      match n.shape with
      | Leaf -> Spr_util.Vec.push leaves n
      | Internal { left; right; _ } ->
          left.parent <- Some n;
          left.depth <- n.depth + 1;
          right.parent <- Some n;
          right.depth <- n.depth + 1;
          (* Push right first so the left subtree is processed first and
             leaves come out in English order. *)
          Spr_util.Vec.push stack right;
          Spr_util.Vec.push stack left
    done;
    if Array.exists not seen then
      invalid_arg "Sp_tree.Builder.finish: unreachable node left in builder";
    { root; nodes; leaves_arr = Spr_util.Vec.to_array leaves }
end

let root t = t.root

let node_count t = Array.length t.nodes

let leaves t = t.leaves_arr

let leaf_count t = Array.length t.leaves_arr

let node_of_id t i = t.nodes.(i)

let is_leaf n = match n.shape with Leaf -> true | Internal _ -> false

let kind n =
  match n.shape with
  | Internal { kind = k; _ } -> k
  | Leaf -> invalid_arg "Sp_tree.kind: leaf"

type event = Enter of node | Mid of node | Thread of node | Exit of node

let iter_events t f =
  (* Iterative walk mirroring SP-ORDER's recursion, robust to deep
     trees.  [`Down n] = first visit, [`Between n] = after the left
     subtree, [`Up n] = after both subtrees. *)
  let stack = Spr_util.Vec.create () in
  Spr_util.Vec.push stack (`Down t.root);
  while not (Spr_util.Vec.is_empty stack) do
    match Option.get (Spr_util.Vec.pop stack) with
    | `Down n -> begin
        match n.shape with
        | Leaf -> f (Thread n)
        | Internal { left; right; _ } ->
            f (Enter n);
            Spr_util.Vec.push stack (`Up n);
            Spr_util.Vec.push stack (`Down right);
            Spr_util.Vec.push stack (`Between n);
            Spr_util.Vec.push stack (`Down left)
      end
    | `Between n -> f (Mid n)
    | `Up n -> f (Exit n)
  done

(* Generic fold over subtrees without stack recursion: compute a value
   for every node bottom-up. *)
let fold t ~leaf ~node =
  let values = Array.make (node_count t) None in
  iter_events t (function
    | Thread n -> values.(n.id) <- Some (leaf n)
    | Exit n -> begin
        (* Post-order: both children are done by now. *)
        match n.shape with
        | Leaf -> assert false
        | Internal { kind = k; left; right } ->
            values.(n.id) <-
              Some (node k (Option.get values.(left.id)) (Option.get values.(right.id)))
      end
    | Enter _ | Mid _ -> ());
  Option.get values.(t.root.id)

let fold_nodes t ~leaf_v ~node_v = fold t ~leaf:(fun _ -> leaf_v) ~node:node_v

let fork_count t =
  fold_nodes t ~leaf_v:0 ~node_v:(fun k l r ->
      l + r + match k with Parallel -> 1 | Series -> 0)

let nesting_depth t =
  fold_nodes t ~leaf_v:0 ~node_v:(fun k l r ->
      max l r + match k with Parallel -> 1 | Series -> 0)

let height t = fold_nodes t ~leaf_v:0 ~node_v:(fun _ l r -> 1 + max l r)

let work t = leaf_count t

let span t =
  fold_nodes t ~leaf_v:1 ~node_v:(fun k l r ->
      match k with Series -> l + r | Parallel -> max l r)

let english_order t =
  let order = Array.make (node_count t) (-1) in
  let next = ref 0 in
  iter_events t (function
    | Thread n ->
        order.(n.id) <- !next;
        incr next
    | Enter _ | Mid _ | Exit _ -> ());
  order

let hebrew_order t =
  let order = Array.make (node_count t) (-1) in
  let next = ref 0 in
  (* Hebrew walk: iterative, right child first at P-nodes. *)
  let stack = Spr_util.Vec.create () in
  Spr_util.Vec.push stack t.root;
  while not (Spr_util.Vec.is_empty stack) do
    let n = Option.get (Spr_util.Vec.pop stack) in
    match n.shape with
    | Leaf ->
        order.(n.id) <- !next;
        incr next
    | Internal { kind = Series; left; right } ->
        Spr_util.Vec.push stack right;
        Spr_util.Vec.push stack left
    | Internal { kind = Parallel; left; right } ->
        Spr_util.Vec.push stack left;
        Spr_util.Vec.push stack right
  done;
  order

(* Pre-order numbering of every node, flipping subtree order at P-nodes
   when [flip_p].  This is exactly where SP-ORDER's insertions converge:
   children are placed right after their parent, so a fully unfolded
   order reads parent-then-left-subtree-then-right-subtree (or swapped
   at P-nodes for the Hebrew structure). *)
let node_preorder ~flip_p t =
  let order = Array.make (node_count t) (-1) in
  let next = ref 0 in
  let stack = Spr_util.Vec.create () in
  Spr_util.Vec.push stack t.root;
  while not (Spr_util.Vec.is_empty stack) do
    let n = Option.get (Spr_util.Vec.pop stack) in
    order.(n.id) <- !next;
    incr next;
    match n.shape with
    | Leaf -> ()
    | Internal { kind; left; right } ->
        let first, second =
          if flip_p && kind = Parallel then (right, left) else (left, right)
        in
        (* Stack: push the later one first. *)
        Spr_util.Vec.push stack second;
        Spr_util.Vec.push stack first
  done;
  order

let english_node_order t = node_preorder ~flip_p:false t

let hebrew_node_order t = node_preorder ~flip_p:true t

let pp ppf t =
  let eng = english_order t in
  let rec go ppf n =
    match n.shape with
    | Leaf -> Format.fprintf ppf "u%d" eng.(n.id)
    | Internal { kind = k; left; right } ->
        let label = match k with Series -> "S" | Parallel -> "P" in
        Format.fprintf ppf "@[<hv 2>%s(@,%a,@ %a)@]" label go left go right
  in
  go ppf t.root
