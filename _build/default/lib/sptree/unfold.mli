(** Arbitrary legal unfoldings of an SP parse tree.

    The end of Section 2 observes that SP-ORDER does not need the
    left-to-right walk: the recursion "could be executed on nodes in
    any order that respects the parent-child and SP relationships" —
    e.g. breadth-first at P-nodes — because the insertion invariant of
    Lemma 3 is local to a node and its children.  A {e legal unfolding}
    is any interleaving in which

    - a node is expanded/executed only after its parent was expanded;
    - the right child of an S-node is touched only after the left
      subtree has fully completed (a partial execution must be a
      series-parallel-consistent prefix);
    - both children of a P-node may progress in any interleaving.

    [random_events] draws such an unfolding at random (uniformly among
    ready nodes at each step), emitting the same event alphabet as
    {!Sp_tree.iter_events} — [Mid x] fires when x's left subtree
    completes, [Exit x] when both do — so maintainers that tolerate
    out-of-order unfolding (SP-order) can be driven and checked against
    the reference on every prefix. *)

val random_events : rng:Spr_util.Rng.t -> Sp_tree.t -> Sp_tree.event list
(** A random legal unfolding of the whole tree. *)

val is_left_to_right : Sp_tree.t -> Sp_tree.event list -> bool
(** Whether the given unfolding is exactly the serial left-to-right
    walk (used by tests to make sure the generator really produces
    different schedules). *)
