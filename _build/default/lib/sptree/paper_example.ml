open Sp_tree

let tree () =
  let b = Builder.create () in
  let u = Array.init 9 (fun _ -> Builder.leaf b) in
  let p2 = Builder.parallel b u.(2) u.(3) in
  let s1 = Builder.series b (Builder.series b u.(1) p2) u.(4) in
  let p3 = Builder.parallel b u.(6) u.(7) in
  let s2 = Builder.series b (Builder.series b u.(5) p3) u.(8) in
  let p1 = Builder.parallel b s1 s2 in
  Builder.finish b (Builder.series b u.(0) p1)

let thread t i =
  if i < 0 || i > 8 then invalid_arg "Paper_example.thread: index in 0..8";
  (leaves t).(i)

(* Structural navigation keeps this robust to builder id details. *)
let right_child n =
  match n.shape with
  | Internal { right; _ } -> right
  | Leaf -> invalid_arg "Paper_example: expected internal node"

let left_child n =
  match n.shape with
  | Internal { left; _ } -> left
  | Leaf -> invalid_arg "Paper_example: expected internal node"

let p1 t = right_child (root t)

let s1 t = left_child (p1 t)

let expected_english = [| 0; 1; 2; 3; 4; 5; 6; 7; 8 |]

let expected_hebrew = [| 0; 5; 7; 6; 8; 1; 3; 2; 4 |]
