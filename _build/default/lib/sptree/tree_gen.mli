(** Parse-tree generators for tests and benchmarks.

    Each generator targets one row/column of the paper's Figure 3
    comparison: [deep_nest] maximizes the nesting depth [d] (hurting
    offset-span labels), [fork_chain] maximizes the fork count [f] at
    small depth (hurting static English-Hebrew labels), [balanced] is
    the well-behaved divide-and-conquer shape, [serial_chain] has no
    parallelism at all, and [random_tree] draws uniform-ish random SP
    structure for property-based testing. *)

val balanced : leaves:int -> Sp_tree.t
(** Perfect divide-and-conquer: alternating S over P levels, [leaves]
    rounded up to the next power of two.  d ≈ f ≈ lg n. *)

val deep_nest : depth:int -> Sp_tree.t
(** P-nodes nested [depth] deep along the left spine:
    P(P(P(...,u),u),u).  n = depth+1 leaves, d = depth. *)

val fork_chain : forks:int -> Sp_tree.t
(** A serial chain of [forks] independent two-thread forks:
    S(P(u,u), S(P(u,u), ...)).  f = forks, d = 1. *)

val serial_chain : leaves:int -> Sp_tree.t
(** Right-leaning chain of S-nodes; no P-node at all. *)

val wide_flat : leaves:int -> Sp_tree.t
(** A balanced tree of P-nodes only: everything parallel with
    everything.  d = lg n. *)

val random_tree : rng:Spr_util.Rng.t -> leaves:int -> p_prob:float -> Sp_tree.t
(** Random full binary tree over [leaves] threads; each internal node is
    a P-node with probability [p_prob], S-node otherwise.  Leaf-count
    splits are uniform, giving a good mix of skewed and balanced
    shapes. *)
