lib/sptree/tree_gen.mli: Sp_tree Spr_util
