lib/sptree/sp_tree.ml: Array Format Option Spr_util
