lib/sptree/sp_dag.mli: Format Sp_tree
