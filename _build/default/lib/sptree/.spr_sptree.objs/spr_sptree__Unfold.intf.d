lib/sptree/unfold.mli: Sp_tree Spr_util
