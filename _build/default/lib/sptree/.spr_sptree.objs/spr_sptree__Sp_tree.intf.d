lib/sptree/sp_tree.mli: Format
