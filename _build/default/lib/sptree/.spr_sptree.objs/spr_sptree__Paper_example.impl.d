lib/sptree/paper_example.ml: Array Builder Sp_tree
