lib/sptree/unfold.ml: Array List Sp_tree Spr_util
