lib/sptree/sp_reference.mli: Sp_tree
