lib/sptree/sp_reference.ml: Option Sp_tree
