lib/sptree/sp_dag.ml: Array Format List Queue Sp_tree Spr_util
