lib/sptree/tree_gen.ml: Builder Sp_tree Spr_util
