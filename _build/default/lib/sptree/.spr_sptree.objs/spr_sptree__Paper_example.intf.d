lib/sptree/paper_example.mli: Sp_tree
