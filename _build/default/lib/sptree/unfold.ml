open Sp_tree

(* Frontier simulation: [ready] holds nodes whose expansion is legal
   right now.  Completion propagates upward; completing the left child
   of an S-node unlocks the right child, completing it under a P-node
   does not gate anything (the right child was unlocked at Enter). *)
let random_events ~rng tree =
  let n = node_count tree in
  let complete = Array.make n false in
  let events = ref [] in
  let ready = Spr_util.Vec.create () in
  let emit e = events := e :: !events in
  (* Mark [x] complete and propagate: fire Mid/Exit events and unlock
     S-node right children. *)
  let rec completed (x : node) =
    complete.(x.id) <- true;
    match x.parent with
    | None -> ()
    | Some p -> begin
        match p.shape with
        | Leaf -> assert false
        | Internal { kind; left; right } ->
            if x == left then begin
              emit (Mid p);
              (* The right child of an S-node becomes ready only now;
                 under a P-node it has been ready since Enter. *)
              if kind = Series then Spr_util.Vec.push ready right
            end;
            if complete.(left.id) && complete.(right.id) then begin
              emit (Exit p);
              completed p
            end
      end
  in
  Spr_util.Vec.push ready (root tree);
  while not (Spr_util.Vec.is_empty ready) do
    (* Swap a uniformly random ready node to the end and pop it. *)
    let len = Spr_util.Vec.length ready in
    let i = Spr_util.Rng.int rng len in
    let x = Spr_util.Vec.get ready i in
    Spr_util.Vec.set ready i (Spr_util.Vec.get ready (len - 1));
    Spr_util.Vec.set ready (len - 1) x;
    ignore (Spr_util.Vec.pop ready);
    match x.shape with
    | Leaf ->
        emit (Thread x);
        completed x
    | Internal { kind; left; right } ->
        emit (Enter x);
        Spr_util.Vec.push ready left;
        if kind = Parallel then Spr_util.Vec.push ready right
  done;
  List.rev !events

let is_left_to_right tree events =
  let reference = ref [] in
  iter_events tree (fun e -> reference := e :: !reference);
  let same a b =
    match (a, b) with
    | Enter x, Enter y | Mid x, Mid y | Exit x, Exit y | Thread x, Thread y -> x == y
    | _ -> false
  in
  List.length events = List.length !reference
  && List.for_all2 same events (List.rev !reference)
