(** Reference (a posteriori) SP relation via least common ancestors.

    This is the executable specification every on-the-fly
    SP-maintenance algorithm is validated against: [ui ≺ uj] iff
    [lca(ui, uj)] is an S-node with [ui] in its left subtree; [ui ∥ uj]
    iff the lca is a P-node (paper, Section 1).  Queries walk parent
    links — O(height); meant for tests and examples, not hot paths.

    The relation is defined between any two parse-tree nodes, not just
    threads (leaves).  When one node is a proper ancestor of the other
    we report the ancestor as [Before]: in both the English and Hebrew
    orders a node precedes its descendants, so this matches what
    SP-order answers for internal nodes.  For two distinct leaves the
    ancestor case cannot arise and the relation is the paper's. *)

type relation = Before | After | Par | Same

val lca : Sp_tree.node -> Sp_tree.node -> Sp_tree.node
(** Least common ancestor (the nodes must belong to the same tree). *)

val relate : Sp_tree.node -> Sp_tree.node -> relation
(** Relation of [a] to [b]: [Before] if [a ≺ b], [After] if [b ≺ a],
    [Par] if [a ∥ b], [Same] if [a == b]. *)

val precedes : Sp_tree.node -> Sp_tree.node -> bool
(** [precedes a b] iff [relate a b = Before]. *)

val parallel : Sp_tree.node -> Sp_tree.node -> bool
