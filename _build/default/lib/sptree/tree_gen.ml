open Sp_tree

let balanced ~leaves =
  if leaves < 1 then invalid_arg "Tree_gen.balanced: need at least one leaf";
  let b = Builder.create () in
  (* Round up to a power of two; alternate S (even levels) / P (odd). *)
  let rec pow2 p = if p >= leaves then p else pow2 (2 * p) in
  let n = pow2 1 in
  let rec build size level =
    if size = 1 then Builder.leaf b
    else begin
      let l = build (size / 2) (level + 1) in
      let r = build (size / 2) (level + 1) in
      if level mod 2 = 0 then Builder.series b l r else Builder.parallel b l r
    end
  in
  Builder.finish b (build n 0)

let deep_nest ~depth =
  if depth < 0 then invalid_arg "Tree_gen.deep_nest: negative depth";
  let b = Builder.create () in
  let rec build d acc =
    if d = 0 then acc else build (d - 1) (Builder.parallel b acc (Builder.leaf b))
  in
  Builder.finish b (build depth (Builder.leaf b))

let fork_chain ~forks =
  if forks < 1 then invalid_arg "Tree_gen.fork_chain: need at least one fork";
  let b = Builder.create () in
  let fork () = Builder.parallel b (Builder.leaf b) (Builder.leaf b) in
  (* Built right-to-left iteratively: chains can be very long. *)
  let rec build k acc = if k = 0 then acc else build (k - 1) (Builder.series b (fork ()) acc) in
  Builder.finish b (build (forks - 1) (fork ()))

let serial_chain ~leaves =
  if leaves < 1 then invalid_arg "Tree_gen.serial_chain: need at least one leaf";
  let b = Builder.create () in
  let rec build k acc =
    if k = 0 then acc else build (k - 1) (Builder.series b (Builder.leaf b) acc)
  in
  Builder.finish b (build (leaves - 1) (Builder.leaf b))

let wide_flat ~leaves =
  if leaves < 1 then invalid_arg "Tree_gen.wide_flat: need at least one leaf";
  let b = Builder.create () in
  let rec build k =
    if k = 1 then Builder.leaf b
    else begin
      let l = build ((k + 1) / 2) in
      let r = build (k / 2) in
      Builder.parallel b l r
    end
  in
  Builder.finish b (build leaves)

let random_tree ~rng ~leaves ~p_prob =
  if leaves < 1 then invalid_arg "Tree_gen.random_tree: need at least one leaf";
  let b = Builder.create () in
  let rec build k =
    if k = 1 then Builder.leaf b
    else begin
      let split = 1 + Spr_util.Rng.int rng (k - 1) in
      let l = build split in
      let r = build (k - split) in
      if Spr_util.Rng.bernoulli rng p_prob then Builder.parallel b l r
      else Builder.series b l r
    end
  in
  Builder.finish b (build leaves)
