type relation = Before | After | Par | Same

let rec lift n k = if k = 0 then n else lift (Option.get n.Sp_tree.parent) (k - 1)

(* Walk both nodes up to their LCA, remembering the child each path
   came through — that child tells us which subtree each node lies in. *)
let lca_with_sides a b =
  let open Sp_tree in
  if a == b then (a, None, None)
  else begin
    let a, b, swapped = if a.depth >= b.depth then (a, b, false) else (b, a, true) in
    let a' = lift a (a.depth - b.depth) in
    if a' == b then
      (* [b] is an ancestor of [a]. *)
      if swapped then (b, None, Some a) else (b, Some a, None)
    else begin
      let rec climb x y =
        let px = Option.get x.parent and py = Option.get y.parent in
        if px == py then (px, x, y) else climb px py
      in
      let anc, ca, cb = climb a' b in
      if swapped then (anc, Some cb, Some ca) else (anc, Some ca, Some cb)
    end
  end

let lca a b =
  let anc, _, _ = lca_with_sides a b in
  anc

let relate a b =
  let open Sp_tree in
  let anc, ca, cb = lca_with_sides a b in
  match (ca, cb) with
  | None, None -> Same
  | None, Some _ -> Before (* [a] is a proper ancestor of [b] *)
  | Some _, None -> After
  | Some ca, Some cb -> begin
      match anc.shape with
      | Leaf -> assert false
      | Internal { kind = Parallel; _ } -> Par
      | Internal { kind = Series; left; _ } ->
          if ca == left then Before
          else begin
            assert (cb == left);
            After
          end
    end

let precedes a b = relate a b = Before

let parallel a b = relate a b = Par
