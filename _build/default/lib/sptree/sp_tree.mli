(** Series-parallel (SP) parse trees.

    The execution of a fork-join program is a series-parallel dag whose
    structure is captured by a {e parse tree} (paper, Section 1 and
    Figure 2): leaves are threads; an internal S-node composes its left
    subtree {e before} its right subtree; an internal P-node composes
    them {e in parallel}.  Following the paper we only deal with full
    binary parse trees (footnote 1).

    Nodes carry dense integer ids in creation order, plus parent/depth
    links so the reference LCA relation ({!Sp_reference}) is cheap.

    On-the-fly algorithms consume the tree through {!iter_events}, the
    event stream of a left-to-right walk — exactly the unfolding order
    assumed by the serial algorithms of Section 2. *)

type kind = Series | Parallel

type node = private {
  id : int;  (** dense id, creation order *)
  mutable parent : node option;
  mutable depth : int;  (** root has depth 0 *)
  shape : shape;
}

and shape = Leaf | Internal of { kind : kind; left : node; right : node }

type t
(** A finished parse tree (root + indexes). *)

(** Trees are constructed bottom-up through a builder so that ids stay
    dense per tree. *)
module Builder : sig
  type b

  val create : unit -> b

  val leaf : b -> node
  (** A fresh thread. *)

  val series : b -> node -> node -> node
  (** S-node over two previously built, not-yet-attached nodes. *)

  val parallel : b -> node -> node -> node

  val finish : b -> node -> t
  (** Close the builder with the given root.  Sets parent/depth links,
      collects leaves.
      @raise Invalid_argument if some built node is unreachable from
      the root (the tree must use every node exactly once). *)
end

val root : t -> node

val node_count : t -> int

val leaves : t -> node array
(** All threads, in English (left-to-right) order. *)

val leaf_count : t -> int

val node_of_id : t -> int -> node

val is_leaf : node -> bool

val kind : node -> kind
(** @raise Invalid_argument on a leaf. *)

val fork_count : t -> int
(** Number of P-nodes — the paper's [f]. *)

val nesting_depth : t -> int
(** Maximum number of P-nodes on a root-to-leaf path — the paper's
    maximum depth of nested parallelism [d]. *)

val height : t -> int
(** Tree height in edges. *)

val work : t -> int
(** Work T{_1} with unit-cost threads: the number of leaves. *)

val span : t -> int
(** Critical path T{_∞} with unit-cost threads: S adds, P maxes. *)

val fold : t -> leaf:(node -> 'a) -> node:(kind -> 'a -> 'a -> 'a) -> 'a
(** Bottom-up fold over the tree (iterative — safe on degenerate
    chains).  [work]/[span] with non-unit thread costs are one-liners
    over this. *)

(** Events of the left-to-right on-the-fly walk.  For an internal node,
    [Enter] fires before either child is walked, [Mid] between the two
    subtrees, and [Exit] after both; [Thread] fires when a leaf
    executes.  [Mid] is where serial algorithms fold a completed left
    subtree into their state (e.g. SP-bags unions the left subtree's
    set into the S- or P-bag). *)
type event = Enter of node | Mid of node | Thread of node | Exit of node

val iter_events : t -> (event -> unit) -> unit

val english_order : t -> int array
(** [english_order t] maps leaf id to its 0-based index in the English
    order (left-to-right at every node).  Indexed by [node.id]; entries
    for internal nodes are [-1]. *)

val hebrew_order : t -> int array
(** Hebrew order: right-before-left at P-nodes, left-before-right at
    S-nodes (paper, Section 2). *)

val english_node_order : t -> int array
(** English order extended to {e all} nodes — the total order SP-order's
    [Eng] structure converges to after a full unfolding: a node
    immediately precedes its left subtree, which precedes its right
    subtree (pre-order).  Indexed by node id. *)

val hebrew_node_order : t -> int array
(** All-nodes Hebrew order: pre-order with the subtrees swapped at
    P-nodes — SP-order's [Heb] structure after a full unfolding. *)

val pp : Format.formatter -> t -> unit
(** Multi-line rendering of the parse tree, S/P internal nodes and
    [u<i>] leaves numbered in English order. *)
