lib/sched/sim.ml: Array Fj_program Spr_prog Spr_util
