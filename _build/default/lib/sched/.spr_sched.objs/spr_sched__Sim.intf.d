lib/sched/sim.mli: Spr_prog
