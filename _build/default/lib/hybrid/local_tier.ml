module Uf = Spr_unionfind.Union_find

type kind = S_bag | P_bag

type payload = { trace : Global_tier.trace; kind : kind }

type bags = {
  mutable sbag : payload Uf.node option;
  mutable pbag : payload Uf.node option;
}

type t = {
  uf : payload Uf.t;
  set_of : payload Uf.node option array;  (* tid -> set *)
  frames : (int, bags) Hashtbl.t;  (* frame id -> its bags *)
  mutable ops : int;
}

let create ?(path_compression = false) ~thread_capacity () =
  {
    (* Union by rank only by default: finds are read-only (Section 5).
       Compression implements the Section 7 conjecture. *)
    uf = Uf.create { Uf.path_compression };
    set_of = Array.make thread_capacity None;
    frames = Hashtbl.create 64;
    ops = 0;
  }

let bags t frame_id =
  match Hashtbl.find_opt t.frames frame_id with
  | Some b -> b
  | None ->
      let b = { sbag = None; pbag = None } in
      Hashtbl.add t.frames frame_id b;
      b

let set_of t tid =
  match t.set_of.(tid) with
  | Some s -> s
  | None -> invalid_arg "Local_tier: thread not started"

(* Union a set into a bag slot, retagging the merged set.  A bag only
   ever aggregates threads of one trace epoch: the frame's bags are
   moved out at splits and sealed at trace switches. *)
let into_bag t slot_get slot_set kind trace set =
  t.ops <- t.ops + 1;
  match slot_get () with
  | None ->
      Uf.set_payload t.uf set { trace; kind };
      slot_set (Some set)
  | Some bag ->
      assert ((Uf.payload t.uf bag).trace == trace);
      Uf.union t.uf ~into:bag set

let thread_started t ~tid ~frame_id trace =
  let b = bags t frame_id in
  let set = Uf.make_set t.uf { trace; kind = S_bag } in
  t.set_of.(tid) <- Some set;
  t.ops <- t.ops + 1;
  into_bag t (fun () -> b.sbag) (fun s -> b.sbag <- s) S_bag trace set

let child_returned t ~child_frame ~parent_frame ~merge =
  let cb = bags t child_frame in
  (* The final sync of the child merged its P-bag into its S-bag. *)
  assert (cb.pbag = None);
  (match (merge, cb.sbag) with
  | true, Some child_set ->
      let pb = bags t parent_frame in
      let trace = (Uf.payload t.uf child_set).trace in
      into_bag t (fun () -> pb.pbag) (fun s -> pb.pbag <- s) P_bag trace child_set
  | _ -> ());
  Hashtbl.remove t.frames child_frame

let block_ended t ~frame_id =
  let b = bags t frame_id in
  match (b.sbag, b.pbag) with
  | _, None -> ()
  | None, Some p ->
      (* Everything in the block was spawned: the P-bag becomes serial
         history wholesale. *)
      let trace = (Uf.payload t.uf p).trace in
      Uf.set_payload t.uf p { trace; kind = S_bag };
      b.sbag <- Some p;
      b.pbag <- None;
      t.ops <- t.ops + 1
  | Some s, Some p ->
      let trace = (Uf.payload t.uf s).trace in
      Uf.union t.uf ~into:s p;
      Uf.set_payload t.uf s { trace; kind = S_bag };
      b.pbag <- None;
      t.ops <- t.ops + 1

let seal_bags t ~frame_id =
  let b = bags t frame_id in
  b.sbag <- None;
  b.pbag <- None

let split t ~frame_id ~u1 ~u2 =
  let b = bags t frame_id in
  (match b.sbag with
  | Some s -> Uf.set_payload t.uf s { trace = u1; kind = S_bag }
  | None -> ());
  (match b.pbag with
  | Some p -> Uf.set_payload t.uf p { trace = u2; kind = P_bag }
  | None -> ());
  b.sbag <- None;
  b.pbag <- None;
  t.ops <- t.ops + 2

(* [Uf.find] mutates nothing when the forest was configured without
   path compression (the Section 5 default), so FIND-TRACE is read-only
   exactly when it must be; with the Section 7 conjecture configuration
   it compresses. *)
let find_trace t ~tid =
  t.ops <- t.ops + 1;
  (Uf.payload t.uf (Uf.find t.uf (set_of t tid))).trace

let kind_of t tid = (Uf.payload t.uf (Uf.find t.uf (set_of t tid))).kind

let local_precedes t ~tid =
  t.ops <- t.ops + 1;
  kind_of t tid = S_bag

let local_parallel t ~tid =
  t.ops <- t.ops + 1;
  kind_of t tid = P_bag

let started t ~tid = t.set_of.(tid) <> None

let ops t = t.ops

let find_count t = Uf.find_count t.uf

let find_steps t = Uf.find_steps t.uf
