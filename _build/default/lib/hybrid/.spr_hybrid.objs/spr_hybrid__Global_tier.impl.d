lib/hybrid/global_tier.ml: Spr_om
