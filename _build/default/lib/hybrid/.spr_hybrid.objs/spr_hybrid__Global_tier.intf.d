lib/hybrid/global_tier.mli: Spr_om
