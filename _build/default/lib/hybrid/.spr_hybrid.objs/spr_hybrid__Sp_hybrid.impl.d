lib/hybrid/sp_hybrid.ml: Fj_program Global_tier Hashtbl Local_tier Mutex Sim Spr_prog Spr_sched
