lib/hybrid/local_tier.mli: Global_tier
