lib/hybrid/local_tier.ml: Array Global_tier Hashtbl Spr_unionfind
