lib/hybrid/sp_hybrid.mli: Spr_prog Spr_sched
