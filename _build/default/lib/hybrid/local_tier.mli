(** SP-hybrid's local tier: SP-bags with traces (paper, Section 5).

    Every executed thread lives in a disjoint-set; the payload at each
    set's representative records (a) the {e trace} the set's threads
    belong to — so FIND-TRACE is one read-only find — and (b) whether
    the set is currently an S-bag or a P-bag relative to the executing
    position of its procedure.

    Bags belong to procedure activations (frames, keyed by their
    scheduler id): the S-bag holds the frame's completed work that
    precedes its current position, the P-bag the threads of returned
    children that run parallel to it.  A SPLIT moves the stolen frame's
    two bags wholesale into the subtraces U{^(1)} and U{^(2)} — two
    payload writes, the O(1) split the paper gets from SP-bags — and
    resets them.

    Per Section 5, the disjoint-set forest uses union by rank {e
    without} path compression, so FIND-TRACE never mutates shared state
    (O(lg n) worst-case finds). *)

type t

val create : ?path_compression:bool -> thread_capacity:int -> unit -> t
(** [path_compression] defaults to false, the configuration Section 5
    mandates for concurrent FIND-TRACE.  Setting it true implements the
    Section 7 conjecture (compression is safe when finds are serialized
    — as they are under the deterministic simulator — or done with
    compare-and-swap); the ablation benchmark measures what it buys. *)

val thread_started : t -> tid:int -> frame_id:int -> Global_tier.trace -> unit
(** Insert a thread into the given trace (Figure 8 line 3) and into its
    frame's S-bag: it precedes everything the frame does next. *)

val child_returned : t -> child_frame:int -> parent_frame:int -> merge:bool -> unit
(** A procedure returned.  With [merge] (the parent continues inline in
    the same trace) the child's accumulated set joins the parent's
    P-bag — its threads run logically in parallel with the rest of the
    parent's sync block.  Without [merge] (the continuation was stolen)
    the child's sets stay behind in their own trace; cross-trace
    relations are the global tier's job. *)

val block_ended : t -> frame_id:int -> unit
(** The sync at the end of a block: S-bag ∪= P-bag (everything spawned
    in the block is serial before whatever follows the join). *)

val split : t -> frame_id:int -> u1:Global_tier.trace -> u2:Global_tier.trace -> unit
(** O(1) SPLIT: the frame's S-bag becomes U{^(1)}'s thread set, its
    P-bag becomes U{^(2)}'s; the frame's bags restart empty. *)

val seal_bags : t -> frame_id:int -> unit
(** Restart the frame's bags without retagging the old sets — used when
    the frame switches trace at a join (U{^(4)} → U{^(5)}): threads
    already bagged stay in their old trace, and relations to them are
    the global tier's job from now on. *)

val find_trace : t -> tid:int -> Global_tier.trace
(** FIND-TRACE: the trace the thread currently belongs to.  In the
    default (no-compression) configuration the find is read-only, safe
    under concurrent readers, as Section 5 requires. *)

val local_precedes : t -> tid:int -> bool
(** LOCAL-PRECEDES against the currently executing thread of the same
    trace: true iff the thread's set is an S-bag. *)

val local_parallel : t -> tid:int -> bool

val started : t -> tid:int -> bool

val ops : t -> int
(** Local-tier operation count (bucket B3 accounting). *)

val find_count : t -> int

val find_steps : t -> int
(** Parent hops over all finds; [find_steps / find_count] is the mean
    find depth (see {!create} on the Section 7 conjecture). *)
