open Spr_sptree

type t = {
  program : Fj_program.t;
  tree : Sp_tree.t;
  leaf_of_tid : Sp_tree.node array;
  tid_of_leaf : int array;  (* node id -> tid, or -1 for synthetic/internal *)
  (* pid -> block -> item -> P-node (spawn items only) *)
  spawn_nodes : Sp_tree.node option array array array;
  mutable synthetic : int;
}

let of_program program =
  let b = Sp_tree.Builder.create () in
  let nthreads = Fj_program.thread_count program in
  let placeholder_fixups = ref [] in
  let spawn_nodes =
    Array.make (Fj_program.proc_count program) [||]
  in
  let synthetic = ref 0 in
  let rec build_proc (p : Fj_program.proc) =
    let per_block =
      Array.map (fun blk -> Array.make (Array.length blk) None) p.Fj_program.blocks
    in
    spawn_nodes.(p.Fj_program.pid) <- per_block;
    let block_trees =
      Array.to_list (Array.mapi (fun bi blk -> build_items p bi blk 0) p.Fj_program.blocks)
    in
    (* S-compose the sync blocks right to left. *)
    let rec compose = function
      | [ last ] -> last
      | first :: rest -> Sp_tree.Builder.series b first (compose rest)
      | [] -> assert false
    in
    compose block_trees
  and build_items p bi blk i =
    if i >= Array.length blk then begin
      (* Only reached when a block ends in a Spawn: synthetic leaf. *)
      incr synthetic;
      Sp_tree.Builder.leaf b
    end
    else begin
      let rest_empty = i = Array.length blk - 1 in
      match blk.(i) with
      | Fj_program.Run u ->
          let leaf = Sp_tree.Builder.leaf b in
          placeholder_fixups := (u.Fj_program.tid, leaf) :: !placeholder_fixups;
          if rest_empty then leaf
          else Sp_tree.Builder.series b leaf (build_items p bi blk (i + 1))
      | Fj_program.Spawn f ->
          let child = build_proc f in
          let cont = build_items p bi blk (i + 1) in
          let pn = Sp_tree.Builder.parallel b child cont in
          spawn_nodes.(p.Fj_program.pid).(bi).(i) <- Some pn;
          pn
    end
  in
  let root = build_proc (Fj_program.main program) in
  let tree = Sp_tree.Builder.finish b root in
  let leaf_of_tid = Array.make nthreads (Sp_tree.root tree) in
  List.iter (fun (tid, leaf) -> leaf_of_tid.(tid) <- leaf) !placeholder_fixups;
  let tid_of_leaf = Array.make (Sp_tree.node_count tree) (-1) in
  Array.iteri (fun tid (leaf : Sp_tree.node) -> tid_of_leaf.(leaf.id) <- tid) leaf_of_tid;
  { program; tree; leaf_of_tid; tid_of_leaf; spawn_nodes; synthetic = !synthetic }

let tree t = t.tree

let program t = t.program

let leaf_of_thread t tid = t.leaf_of_tid.(tid)

let thread_of_leaf t (n : Sp_tree.node) =
  let tid = t.tid_of_leaf.(n.id) in
  if tid < 0 then None else Some (Fj_program.threads t.program).(tid)

let p_node_of_spawn t ~pid ~block ~item =
  match t.spawn_nodes.(pid).(block).(item) with
  | Some n -> n
  | None -> invalid_arg "Prog_tree.p_node_of_spawn: not a spawn item"

let synthetic_count t = t.synthetic
