lib/prog/prog_tree.ml: Array Fj_program List Sp_tree Spr_sptree
