lib/prog/fj_program.ml: Array Format List Spr_util
