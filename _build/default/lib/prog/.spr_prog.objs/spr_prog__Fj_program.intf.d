lib/prog/fj_program.mli: Format
