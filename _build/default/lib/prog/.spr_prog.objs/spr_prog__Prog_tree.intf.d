lib/prog/prog_tree.mli: Fj_program Spr_sptree
