lib/workloads/progs.ml: Array Fj_program List Spr_prog Spr_sptree Spr_util
