lib/workloads/progs.mli: Spr_prog Spr_sptree Spr_util
