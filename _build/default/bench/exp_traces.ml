(* EXP-FIG11-12 — the subtrace structure of a split (Figures 11, 12).

   Verifies and prints, for the global tier:
     - the relation matrix of one split (Figure 12's ordering);
     - nested splits preserve the orderings (Lemma 8's insertion-
       contiguity argument);
   and, from a real steal-heavy hybrid run, the per-trace thread
   population, showing which subtraces stay empty (U1/U2/U5 of late
   splits), as the paper's Lemma 7 case analysis predicts. *)

open Spr_sched
module G = Spr_hybrid.Global_tier
module H = Spr_hybrid.Sp_hybrid
module T = Spr_util.Table

let relation g a b =
  if a == b then "=" else if G.precedes g a b then "<" else if G.parallel g a b then "||" else ">"

let run () =
  Bench_util.header "EXP-FIG11-12: subtraces and their ordering";
  let g = G.create () in
  let u3 = G.initial g in
  let { G.u1; u2; u4; u5 } = G.split g u3 in
  let traces = [ ("U1", u1); ("U2", u2); ("U3", u3); ("U4", u4); ("U5", u5) ] in
  let tbl =
    T.create ~title:"Figure 12 — relation matrix after one split"
      (("", T.Left) :: List.map (fun (n, _) -> (n, T.Right)) traces)
  in
  List.iter
    (fun (na, a) ->
      T.add_row tbl (na :: List.map (fun (_, b) -> relation g a b) traces))
    traces;
  T.print tbl;
  assert (G.precedes g u1 u2 && G.precedes g u1 u5 && G.precedes g u2 u5);
  assert (G.parallel g u2 u3 && G.parallel g u3 u4 && G.parallel g u2 u4);

  (* Nested split inside U4 (a second steal on the thief): all new
     traces must land between U3 and U5 in English order. *)
  let { G.u1 = v1; u2 = v2; u4 = v4; u5 = v5 } = G.split g u4 in
  List.iter
    (fun v ->
      assert (G.precedes g u1 v);
      assert (G.precedes g v u5))
    [ v1; v2; v4; v5 ];
  Printf.printf "nested split: U4's subtraces all sit between U1 and U5 — ok\n\n";

  (* Thread population per trace from a steal-heavy run. *)
  let p = Spr_workloads.Progs.deep_spawn ~cost:1 ~depth:60 () in
  let h = H.create p in
  let res = Sim.run ~hooks:(H.hooks h) ~seed:5 ~procs:8 p in
  let st = H.stats h in
  let pop = Hashtbl.create 64 in
  for tid = 0 to Spr_prog.Fj_program.thread_count p - 1 do
    let id = H.find_trace_id h ~tid in
    Hashtbl.replace pop id (1 + Option.value ~default:0 (Hashtbl.find_opt pop id))
  done;
  let nonempty = Hashtbl.length pop in
  Printf.printf
    "deep_spawn(60) on P=8: %d steals, %d traces created (4s+1), %d hold threads\n"
    res.Sim.steals st.H.traces nonempty;
  Printf.printf
    "(empty traces are the U1/U2/U5 of splits whose regions saw no further\n\
     threads — exactly the vacuous cases of Lemma 7's invariant proof)\n"
