bench/exp_thm5.ml: Array Bench_util List Printf Sp_tree Spr_core Spr_om Spr_sptree Spr_util Tree_gen
