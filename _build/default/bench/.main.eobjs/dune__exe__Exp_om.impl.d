bench/exp_om.ml: Array Bench_util List Printf Spr_om Spr_util
