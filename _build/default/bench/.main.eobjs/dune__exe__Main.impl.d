bench/main.ml: Array Bechamel_suite Exp_ablation Exp_cor6 Exp_fig3 Exp_om Exp_steals Exp_thm10 Exp_thm5 Exp_traces Gc List Printf Sys
