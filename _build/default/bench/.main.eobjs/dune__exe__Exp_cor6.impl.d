bench/exp_cor6.ml: Array Bench_util Fj_program List Printf Prog_tree Spr_core Spr_prog Spr_race Spr_sptree Spr_util Spr_workloads
