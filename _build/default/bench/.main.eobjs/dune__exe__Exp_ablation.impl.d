bench/exp_ablation.ml: Array Bench_util Fj_program List Printf Prog_tree Sim Spr_core Spr_hybrid Spr_om Spr_prog Spr_race Spr_sched Spr_sptree Spr_util Spr_workloads
