bench/bench_util.ml: Printf Spr_util Unix
