bench/exp_traces.ml: Bench_util Hashtbl List Option Printf Sim Spr_hybrid Spr_prog Spr_sched Spr_util Spr_workloads
