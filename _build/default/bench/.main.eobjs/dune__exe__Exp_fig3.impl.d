bench/exp_fig3.ml: Array Bench_util Hashtbl List Printf Sp_tree Spr_core Spr_sptree Spr_util Tree_gen
