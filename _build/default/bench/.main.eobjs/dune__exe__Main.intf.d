bench/main.mli:
