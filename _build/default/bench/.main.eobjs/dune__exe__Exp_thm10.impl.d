bench/exp_thm10.ml: Array Bench_util Fj_program List Printf Sim Spr_hybrid Spr_prog Spr_sched Spr_util Spr_workloads
