(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                 # every experiment
     dune exec bench/main.exe -- fig3         # one experiment
     dune exec bench/main.exe -- list         # available experiments

   Each experiment regenerates one table/figure/theorem of the paper;
   see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md
   for paper-vs-measured notes. *)

let experiments =
  [
    ("fig3", "Figure 3: serial algorithm comparison", Exp_fig3.run);
    ("thm5", "Theorem 5: SP-order construction is O(n)", Exp_thm5.run);
    ("cor6", "Corollary 6: race detection in O(T1)", Exp_cor6.run);
    ("thm10", "Theorem 10: SP-hybrid vs naive parallel SP-order", Exp_thm10.run);
    ("steals", "Steal bound, 4s+1 traces, bucket accounting", Exp_steals.run);
    ("om", "Order-maintenance substrate", Exp_om.run);
    ("fig11-12", "Subtrace split structure", Exp_traces.run);
    ("ablation", "Design-choice ablations (OM backend, path compression)", Exp_ablation.run);
    ("bechamel", "Bechamel micro-benchmarks (one per experiment)", Bechamel_suite.run);
  ]

let list_experiments () =
  Printf.printf "available experiments:\n";
  List.iter (fun (k, d, _) -> Printf.printf "  %-10s %s\n" k d) experiments

let () =
  (* A roomy minor heap keeps GC noise out of the asymptotic-shape
     measurements (they allocate many small linked nodes). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> List.iter (fun (_, _, f) -> f ()) experiments
  | [ _; "list" ] -> list_experiments ()
  | [ _; key ] -> begin
      match List.find_opt (fun (k, _, _) -> k = key) experiments with
      | Some (_, _, f) -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S\n" key;
          list_experiments ();
          exit 1
    end
  | _ ->
      Printf.eprintf "usage: main.exe [all|list|<experiment>]\n";
      exit 1
