(* EXP-COR6 — Corollary 6: a determinacy-race detector built on
   SP-order runs in O(T1): the overhead factor over the plain serial
   execution stays flat as the work grows; and among the oracles,
   SP-order's detection pass is the cheapest asymptotically. *)

open Spr_prog
module T = Spr_util.Table

let plain_walk pt =
  let tree = Prog_tree.tree pt in
  let sink = ref 0 in
  Spr_sptree.Sp_tree.iter_events tree (fun ev ->
      match ev with
      | Spr_sptree.Sp_tree.Thread n -> begin
          match Prog_tree.thread_of_leaf pt n with
          | Some u -> sink := !sink + Array.length u.Fj_program.accesses
          | None -> ()
        end
      | _ -> ());
  !sink

let run () =
  Bench_util.header
    "EXP-COR6: race detection in O(T1) with SP-order (Corollary 6)";
  let tbl =
    T.create
      [
        ("leaves", T.Right);
        ("T1 (instr)", T.Right);
        ("plain ms", T.Right);
        ("detect ms", T.Right);
        ("overhead x", T.Right);
        ("SP queries", T.Right);
      ]
  in
  let overheads = ref [] in
  List.iter
    (fun leaves ->
      let p = Spr_workloads.Progs.dc_sum ~leaves ~grain:8 () in
      let pt = Prog_tree.of_program p in
      let _, plain_s = Bench_util.time (fun () -> plain_walk pt) in
      let r, detect_s =
        Bench_util.time (fun () ->
            Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order)
      in
      let overhead = detect_s /. max 1e-9 plain_s in
      overheads := overhead :: !overheads;
      T.add_row tbl
        [
          T.fmt_int leaves;
          T.fmt_int (Fj_program.work p);
          Printf.sprintf "%.2f" (plain_s *. 1e3);
          Printf.sprintf "%.2f" (detect_s *. 1e3);
          Printf.sprintf "%.1f" overhead;
          T.fmt_int r.Spr_race.Drivers.sp_queries;
        ])
    [ 1_024; 4_096; 16_384; 65_536 ];
  T.print tbl;
  Printf.printf
    "Corollary 6 shape: the overhead column stays bounded as T1 grows\n\
     (detection is a constant factor on top of the T1-time execution).\n\n";

  (* Oracle comparison at a fixed size: which SP-maintenance algorithm
     makes the cheapest detector? *)
  let p = Spr_workloads.Progs.dc_sum ~leaves:8_192 ~grain:8 () in
  let pt = Prog_tree.of_program p in
  let tbl2 =
    T.create ~title:"Detection pass by oracle (dc_sum, 8192 leaves)"
      [ ("oracle", T.Left); ("detect ms", T.Right); ("races", T.Right) ]
  in
  List.iter
    (fun (name, algo) ->
      let r, s = Bench_util.time (fun () -> Spr_race.Drivers.detect_serial pt algo) in
      T.add_row tbl2
        [ name; Printf.sprintf "%.2f" (s *. 1e3); T.fmt_int (List.length r.Spr_race.Drivers.races) ])
    Spr_core.Algorithms.figure3;
  T.print tbl2
