(* Determinacy-race detection demo — the paper's motivating
   application.

   A divide-and-conquer reduction is checked three ways:
     1. clean version, serial Nondeterminator with SP-order: no races;
     2. buggy version (leaves write their parent's accumulator): the
        detector pinpoints the racing threads and locations;
     3. lock-based variants through the All-Sets-style detector.

   Run with:  dune exec examples/race_demo.exe *)

open Spr_prog
module W = Spr_workloads.Progs

let show_serial name p =
  let pt = Prog_tree.of_program p in
  let r = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
  Format.printf "%s: %s@." name
    (match r.Spr_race.Drivers.racy_locs with
    | [] -> "race-free"
    | locs ->
        Printf.sprintf "RACES on %d location(s): %s" (List.length locs)
          (String.concat ", " (List.map string_of_int locs)));
  List.iteri
    (fun i (race : Spr_race.Detector.race) ->
      if i < 5 then
        Format.printf "    loc %d: thread %d (%s) races with thread %d (%s)@."
          race.Spr_race.Detector.loc race.Spr_race.Detector.earlier
          (if race.Spr_race.Detector.earlier_write then "write" else "read")
          race.Spr_race.Detector.later
          (if race.Spr_race.Detector.later_write then "write" else "read"))
    r.Spr_race.Drivers.races;
  r

let () =
  Format.printf "== Serial detection (Nondeterminator protocol over SP-order) ==@.";
  let clean = show_serial "dc_sum (correct)" (W.dc_sum ~leaves:16 ()) in
  assert (clean.Spr_race.Drivers.racy_locs = []);
  let buggy = show_serial "dc_sum (buggy)  " (W.dc_sum ~buggy:true ~leaves:16 ()) in
  assert (buggy.Spr_race.Drivers.racy_locs <> []);

  Format.printf "@.== Parallel detection (SP-hybrid on the work-stealing simulator) ==@.";
  let p = W.dc_sum ~buggy:true ~leaves:16 () in
  List.iter
    (fun procs ->
      let r = Spr_race.Drivers.detect_hybrid ~seed:11 ~procs p in
      Format.printf
        "  P=%d: %d race report(s), %d steals, %d traces, virtual time %d@." procs
        (List.length r.Spr_race.Drivers.races)
        r.Spr_race.Drivers.sim.Spr_sched.Sim.steals
        r.Spr_race.Drivers.hybrid_stats.Spr_hybrid.Sp_hybrid.traces
        r.Spr_race.Drivers.sim.Spr_sched.Sim.time;
      assert (r.Spr_race.Drivers.racy_locs <> []))
    [ 1; 4; 8 ];

  Format.printf "@.== Lock-aware detection (All-Sets style) ==@.";
  List.iter
    (fun (name, mode, expect_race) ->
      let p = W.locked_counter ~mode ~leaves:8 () in
      let pt = Prog_tree.of_program p in
      let r = Spr_race.Drivers.detect_serial_locked pt Spr_core.Algorithms.sp_order in
      let racy = r.Spr_race.Drivers.racy_locs <> [] in
      Format.printf "  %-30s -> %s@." name
        (if racy then "data race (disjoint locksets)" else "clean (common lock)");
      assert (racy = expect_race))
    [
      ("counter with a common lock", `Common_lock, false);
      ("counter with distinct locks", `Distinct_locks, true);
      ("counter with no locks", `No_locks, true);
    ];
  Format.printf "@.All race-demo assertions hold.@."
