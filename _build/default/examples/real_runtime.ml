(* SP-hybrid on real OCaml domains.

   The simulator (examples/hybrid_sim.exe) studies the *performance
   model* of Theorem 10 deterministically; this example runs the same
   instrumented computation on actual domains — real work stealing,
   real lock-free global-tier queries — and audits the results that are
   schedule-independent: SP answers against the a-posteriori reference,
   and the 4s+1 trace law against the observed steal count.

   Run with:  dune exec examples/real_runtime.exe *)

open Spr_prog
module H = Spr_hybrid.Sp_hybrid
module Rt = Spr_runtime.Runtime

let () =
  let p = Spr_workloads.Progs.fib ~n:12 ~cost:6 () in
  Format.printf "Workload: fib(12) — %a@.@." Fj_program.pp_stats p;
  let pt = Prog_tree.of_program p in
  let leaf tid = Prog_tree.leaf_of_thread pt tid in
  List.iter
    (fun workers ->
      let h = H.create p in
      let started = ref [] in
      let lock = Mutex.create () in
      let queries = ref 0 and wrong = ref 0 in
      let on_thread_user h ~wid:_ ~now:_ (u : Fj_program.thread) =
        let current = u.Fj_program.tid in
        let snapshot = Mutex.protect lock (fun () -> !started) in
        List.iter
          (fun e ->
            incr queries;
            let want = Spr_sptree.Sp_reference.precedes (leaf e) (leaf current) in
            if H.precedes h ~executed:e ~current <> want then incr wrong)
          snapshot;
        Mutex.protect lock (fun () -> started := current :: !started);
        0
      in
      let res = Rt.run ~hooks:(H.hooks ~on_thread_user h) ~workers ~spin:100 p in
      let st = H.stats h in
      Format.printf
        "workers=%d: %.1f ms wall, %d steals, %d traces (4s+1 %s), %d lock-free@.  SP queries \
         issued from running threads, %d wrong answers, %d query retries@."
        workers (res.Rt.elapsed_s *. 1e3) res.Rt.steals st.H.traces
        (if st.H.traces = (4 * res.Rt.steals) + 1 then "ok" else "VIOLATED")
        !queries !wrong st.H.query_retries;
      assert (!wrong = 0);
      assert (st.H.traces = (4 * res.Rt.steals) + 1))
    [ 1; 2; 4; 8 ];
  Format.printf "@.All real-runtime assertions hold.@."
