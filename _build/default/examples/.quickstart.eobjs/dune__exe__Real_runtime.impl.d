examples/real_runtime.ml: Fj_program Format List Mutex Prog_tree Spr_hybrid Spr_prog Spr_runtime Spr_sptree Spr_workloads
