examples/quickstart.ml: Format List Sp_reference Sp_tree Spr_core Spr_sptree
