examples/quickstart.mli:
