examples/applications.mli:
